package core

import (
	"fmt"
	"runtime"
	"testing"

	"kite/internal/netstack"
)

// BenchmarkForwardPathMQ sweeps the vif queue count and reports both
// wall-clock time per 512-frame wave and SIMULATED frames per simulated
// second. The simulated-time throughput scales with the queue count
// because per-queue pushers burn their per-frame CPU cost on distinct
// vCPUs in parallel inside the simulation. The wall-clock number tracks
// the parallel event core: sharded configurations run one goroutine per
// cluster shard (capped at the host's core count, so a single-core host
// measures the serial fallback), and benchjson derives each entry's
// parallel_speedup against the queues=1 baseline. `make bench` snapshots
// the sweep into BENCH_net.json.
func BenchmarkForwardPathMQ(b *testing.B) {
	for _, queues := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			rig, err := NewNetworkRigCfg(NetworkRigConfig{
				Kind: KindKite, Seed: 0xbe7c4, Queues: queues,
			})
			if err != nil {
				b.Fatal(err)
			}
			if c := rig.System.Cluster; c != nil {
				c.SetWorkers(min(c.Shards(), runtime.NumCPU()))
			}
			delivered := 0
			rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) { delivered++ })
			payload := pattern(128)
			eng := rig.System.Eng
			send := func(i int) {
				rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i%64), payload)
			}
			for i := 0; i < 256; i++ { // warm pools, slots, grant caches
				send(i)
				eng.Run()
			}
			const perWave = 512 // under every per-queue ring/qdisc cap
			// Warm at wave scale too: a full wave's in-flight peak is far
			// above the single-frame working set, and the framepool arenas
			// (plus ring-haul scratch) grow to their high-water mark on the
			// first few waves. Growing inside the timed loop would smear
			// kilobytes per op across the measurement; after these waves the
			// steady state allocates nothing.
			for w := 0; w < 8; w++ {
				for i := 0; i < perWave; i++ {
					send(i)
				}
				eng.Run()
			}
			delivered = 0
			simStart := eng.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := 0; i < perWave; i++ {
					send(i)
				}
				eng.Run()
			}
			b.StopTimer()
			if delivered != b.N*perWave {
				b.Fatalf("delivered %d of %d", delivered, b.N*perWave)
			}
			simElapsed := (eng.Now() - simStart).Seconds()
			b.ReportMetric(float64(b.N*perWave)/simElapsed, "simframes/sec")
		})
	}
}

// BenchmarkBlockPathMQ sweeps the vbd hardware-queue count and reports
// SIMULATED bytes per simulated second for a deep 4 KiB write workload
// laid out in stripe-major runs: sixteen consecutive ops per 512 KiB
// stripe, eight stripes per 128-op wave. Runs keep each queue's device
// access sequential at every queue count (so the NVMe random penalty and
// blkback's merge window hit all configurations alike), while distinct
// stripes land on distinct submission queues that pay their per-command
// overhead in parallel. `make bench` snapshots the sweep into
// BENCH_blk.json.
func BenchmarkBlockPathMQ(b *testing.B) {
	for _, queues := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			rig, err := NewStorageRig(StorageRigConfig{
				Kind: KindKite, Seed: 0xb10c4, DiskBytes: 1 << 30, Queues: queues,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng := rig.System.Eng
			const ioBytes = 4 << 10
			const depth = 128 // ops in flight per iteration
			payload := pattern(ioBytes)
			sectorOf := func(i int) int64 {
				return int64(i/16%8)*1024 + int64(i%16)*(ioBytes/512)
			}
			completed := 0
			wcb := func(err error) {
				if err != nil {
					b.Fatal(err)
				}
				completed++
			}
			for i := 0; i < 1024; i++ { // warm pools, grants, sparse store
				rig.Guest.Disk.WriteSectors(sectorOf(i), payload, wcb)
				eng.Run()
			}
			// Warm at full depth too: the first 128-deep waves grow ring
			// free lists and merge scratch to their high-water marks, which
			// must not bleed bytes into the timed loop.
			for w := 0; w < 8; w++ {
				for i := 0; i < depth; i++ {
					rig.Guest.Disk.WriteSectors(sectorOf(w*depth+i), payload, wcb)
				}
				eng.Run()
			}
			completed = 0
			simStart := eng.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := 0; i < depth; i++ {
					rig.Guest.Disk.WriteSectors(sectorOf(n*depth+i), payload, wcb)
				}
				eng.Run()
			}
			b.StopTimer()
			if completed != b.N*depth {
				b.Fatalf("completed %d of %d", completed, b.N*depth)
			}
			simElapsed := (eng.Now() - simStart).Seconds()
			b.ReportMetric(float64(b.N*depth*ioBytes)/simElapsed, "simbytes/sec")
		})
	}
}
