// Package atomicscope exercises the kitelint determinism-scope check: a
// deterministic package may touch atomics, locks, and channels only
// inside //kite:synccore functions.
//
//kite:deterministic
package atomicscope

import (
	"sync"
	"sync/atomic"
)

type shard struct {
	mu      sync.Mutex
	epoch   atomic.Uint64
	wake    chan struct{}
	pending []int
}

// step is ordinary shard code: no synchronization primitives allowed.
func (s *shard) step(v int) {
	s.mu.Lock()             // want `sync\.Lock call in deterministic shard code`
	s.pending = append(s.pending, v)
	s.mu.Unlock()           // want `sync\.Unlock call in deterministic shard code`
	s.epoch.Add(1)          // want `atomic operation Add in deterministic shard code`
	s.wake <- struct{}{}    // want `channel send in deterministic shard code`
}

func (s *shard) drainSignal() {
	<-s.wake // want `channel receive in deterministic shard code`
	select { // want `select in deterministic shard code`
	case <-s.wake: // want `channel receive in deterministic shard code`
	default:
	}
}

func (s *shard) reset() {
	s.wake = make(chan struct{}, 1) // want `channel creation in deterministic shard code`
	close(s.wake)                   // want `channel close in deterministic shard code`
}

// park is the barrier machinery itself: synchronization is its job.
//
//kite:synccore worker parking; runs between windows, not inside one
func (s *shard) park() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch.Add(1)
	select {
	case <-s.wake:
	default:
	}
}

// pure shard code stays untouched by the analyzer.
func (s *shard) apply(v int) {
	s.pending = append(s.pending, v)
}
