package core

import (
	"fmt"
	"sort"
	"strings"

	"kite/internal/netback"
)

// The network application carries ports of NetBSD's ifconfig(8) and
// brconfig(8) (Table 1's "Utilities" row: 222 LOC of changes). They speak
// the same command-line dialect the artifact's ifconf.sh/run.sh scripts
// use, operating on the domain's interfaces: the physical IF, the bridge,
// and the VIFs netback creates.

// Ifconfig executes an ifconfig-style command against the network domain.
//
//	ifconfig -a                 list all interfaces
//	ifconfig <ifname>           show one interface
//	ifconfig <ifname> up|down   set a VIF's administrative state
func (nd *NetworkDomain) Ifconfig(args ...string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("ifconfig: usage: ifconfig -a | <ifname> [up|down]")
	}
	if args[0] == "-a" {
		names := nd.interfaceNames()
		var b strings.Builder
		for _, name := range names {
			b.WriteString(nd.describeInterface(name))
		}
		return b.String(), nil
	}
	name := args[0]
	if !nd.hasInterface(name) {
		return "", fmt.Errorf("ifconfig: interface %s does not exist", name)
	}
	if len(args) == 1 {
		return nd.describeInterface(name), nil
	}
	switch args[1] {
	case "up", "down":
		vif := nd.vifByName(name)
		if vif == nil {
			return "", fmt.Errorf("ifconfig: %s is not a configurable VIF", name)
		}
		vif.SetUp(args[1] == "up")
		return nd.describeInterface(name), nil
	default:
		return "", fmt.Errorf("ifconfig: unknown directive %q", args[1])
	}
}

// Brconfig executes a brconfig-style command against the bridge.
//
//	brconfig <bridge>                    show ports
//	brconfig <bridge> add <ifname>       attach a detached VIF
//	brconfig <bridge> delete <ifname>    detach a VIF
func (nd *NetworkDomain) Brconfig(args ...string) (string, error) {
	if len(args) == 0 || args[0] != nd.Bridge.Name() {
		return "", fmt.Errorf("brconfig: usage: brconfig %s [add|delete <if>]", nd.Bridge.Name())
	}
	if len(args) == 1 {
		var b strings.Builder
		fmt.Fprintf(&b, "%s: flags=41<UP,RUNNING>\n", nd.Bridge.Name())
		for _, p := range nd.Bridge.Ports() {
			fmt.Fprintf(&b, "\tmember: %s\n", p.PortName())
		}
		st := nd.Bridge.Stats()
		fmt.Fprintf(&b, "\tforwarded %d flooded %d learned %d\n",
			st.Forwarded, st.Flooded, st.Learned)
		return b.String(), nil
	}
	if len(args) != 3 {
		return "", fmt.Errorf("brconfig: usage: brconfig %s add|delete <if>", nd.Bridge.Name())
	}
	vif := nd.vifByName(args[2])
	if vif == nil {
		return "", fmt.Errorf("brconfig: interface %s does not exist", args[2])
	}
	switch args[1] {
	case "add":
		for _, p := range nd.Bridge.Ports() {
			if p.PortName() == args[2] {
				return "", fmt.Errorf("brconfig: %s already a member", args[2])
			}
		}
		nd.Bridge.AddPort(vif)
	case "delete":
		nd.Bridge.RemovePort(vif)
	default:
		return "", fmt.Errorf("brconfig: unknown directive %q", args[1])
	}
	return nd.Brconfig(nd.Bridge.Name())
}

func (nd *NetworkDomain) interfaceNames() []string {
	names := []string{"if0"}
	for _, v := range nd.Driver.VIFs() {
		names = append(names, v.Name())
	}
	sort.Strings(names[1:])
	return names
}

func (nd *NetworkDomain) hasInterface(name string) bool {
	for _, n := range nd.interfaceNames() {
		if n == name {
			return true
		}
	}
	return false
}

func (nd *NetworkDomain) vifByName(name string) *netback.VIF {
	for _, v := range nd.Driver.VIFs() {
		if v.Name() == name {
			return v
		}
	}
	return nil
}

func (nd *NetworkDomain) describeInterface(name string) string {
	if name == "if0" {
		st := nd.NIC.Stats()
		mode := "bridge member"
		if nd.router != nil {
			mode = fmt.Sprintf("nat gateway %v", nd.router.gateway)
		}
		return fmt.Sprintf("if0: flags=8843<UP,BROADCAST,RUNNING> mtu 1500\n"+
			"\taddress: %v (%s)\n\tinput %d packets %d bytes; output %d packets %d bytes\n",
			nd.NIC.MAC(), mode, st.RxFrames, st.RxBytes, st.TxFrames, st.TxBytes)
	}
	v := nd.vifByName(name)
	if v == nil {
		return ""
	}
	st := v.Stats()
	flag := "UP,RUNNING"
	if !v.Up() {
		flag = "DOWN"
	}
	return fmt.Sprintf("%s: flags=<%s> mtu 1500\n"+
		"\tinput %d packets %d bytes; output %d packets %d bytes; %d rx drops\n",
		name, flag, st.TxFrames, st.TxBytes, st.RxFrames, st.RxBytes, st.RxQueueDrops)
}
