GO ?= go

.PHONY: verify build test race vet zeroalloc bench

# verify is the tree-must-be-green gate: vet, build everything, the
# zero-allocation forward-path assertion (which the race detector's
# instrumentation would distort, so it runs in a normal build), then the
# full test suite under the race detector (which also exercises the
# parallel experiment runner's determinism tests).
verify: vet build zeroalloc race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

zeroalloc:
	$(GO) test -count=1 -run 'TestForwardPathZeroAlloc|TestBlockPathZeroAlloc' ./internal/core

# bench snapshots the forward-path pipeline benchmark into BENCH_net.json
# (simulated frames per wall second, ns and allocs per forwarded frame) and
# the storage pipeline benchmark into BENCH_blk.json (bytes per wall second,
# ns and allocs per 256 KiB write+read round trip).
bench:
	$(GO) test -run '^$$' -bench BenchmarkForwardPath -benchmem -count=1 ./internal/core \
		| $(GO) run ./cmd/benchjson > BENCH_net.json
	cat BENCH_net.json
	$(GO) test -run '^$$' -bench BenchmarkBlockPath -benchmem -count=1 ./internal/core \
		| $(GO) run ./cmd/benchjson > BENCH_blk.json
	cat BENCH_blk.json
