package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAllocZeroed(t *testing.T) {
	a := NewArena("d0", 1<<20)
	p, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range p.Data {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %d, want 0", i, b)
		}
	}
	if len(p.Data) != PageSize {
		t.Fatalf("page size %d, want %d", len(p.Data), PageSize)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := NewArena("tiny", 2*PageSize)
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

func TestFreeAndReuseZeroes(t *testing.T) {
	a := NewArena("d0", PageSize)
	p := a.MustAlloc()
	p.Data[0] = 0xAB
	a.Free(p)
	q := a.MustAlloc()
	if q.Data[0] != 0 {
		t.Fatal("recycled page not zeroed")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewArena("d0", 1<<20)
	p := a.MustAlloc()
	a.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p)
}

func TestCrossArenaFreePanics(t *testing.T) {
	a := NewArena("a", 1<<20)
	b := NewArena("b", 1<<20)
	p := a.MustAlloc()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-arena free did not panic")
		}
	}()
	b.Free(p)
}

func TestAllocNRollsBack(t *testing.T) {
	a := NewArena("d0", 4*PageSize)
	if _, err := a.AllocN(3); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocN(2); err == nil {
		t.Fatal("AllocN beyond capacity succeeded")
	}
	// The failed AllocN must have rolled back its partial page.
	if a.InUse() != 3 {
		t.Fatalf("in-use after failed AllocN = %d, want 3", a.InUse())
	}
}

func TestLookup(t *testing.T) {
	a := NewArena("d0", 1<<20)
	p := a.MustAlloc()
	if a.Lookup(p.ID) != p {
		t.Fatal("Lookup did not return live page")
	}
	a.Free(p)
	if a.Lookup(p.ID) != nil {
		t.Fatal("Lookup returned a freed page")
	}
	if a.Lookup(99999) != nil {
		t.Fatal("Lookup returned a page for unknown ID")
	}
}

func TestCopyRoundTrip(t *testing.T) {
	a := NewArena("d0", 1<<20)
	p := a.MustAlloc()
	src := []byte("hello, grant tables")
	p.CopyInto(100, src)
	got := p.CopyFrom(100, len(src))
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip = %q, want %q", got, src)
	}
}

func TestCopyBoundsPanics(t *testing.T) {
	a := NewArena("d0", 1<<20)
	p := a.MustAlloc()
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing CopyInto did not panic")
		}
	}()
	p.CopyInto(PageSize-4, make([]byte, 8))
}

func TestArenaTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sub-page arena did not panic")
		}
	}()
	NewArena("bad", 100)
}

// Property: alloc/free sequences never exceed capacity, never lose pages,
// and InUse always equals allocated-minus-freed.
func TestArenaAccountingProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		a := NewArena("p", 8*PageSize)
		var live []*Page
		inUse := 0
		for _, alloc := range ops {
			if alloc {
				p, err := a.Alloc()
				if err != nil {
					if inUse != 8 {
						return false // failed before capacity
					}
					continue
				}
				live = append(live, p)
				inUse++
			} else if len(live) > 0 {
				a.Free(live[len(live)-1])
				live = live[:len(live)-1]
				inUse--
			}
			if a.InUse() != inUse {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
