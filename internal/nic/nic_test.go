package nic

import (
	"bytes"
	"testing"

	"kite/internal/framepool"
	"kite/internal/netpkt"
	"kite/internal/sim"
)

var testPool = framepool.New()

// buf wraps raw bytes in a pooled frame buffer.
func buf(b []byte) *framepool.Buf {
	f := testPool.Get()
	copy(f.Extend(len(b)), b)
	return f
}

func pair(eng *sim.Engine, cfg LinkConfig) (*NIC, *NIC) {
	a := New(eng, "eth-a", netpkt.MAC{0, 0, 0, 0, 0, 1}, "03:00.0")
	b := New(eng, "eth-b", netpkt.MAC{0, 0, 0, 0, 0, 2}, "04:00.0")
	Connect(a, b, cfg)
	return a, b
}

func TestFrameDelivery(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var got []byte
	b.SetRecv(func(f *framepool.Buf) {
		got = append([]byte(nil), f.Bytes()...)
		f.Release()
	})
	payload := []byte("hello wire")
	if !a.Send(buf(payload)) {
		t.Fatal("send failed")
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q", got)
	}
	if a.Stats().TxFrames != 1 || b.Stats().RxFrames != 1 {
		t.Fatal("stats not updated")
	}
}

func TestWireTimeMatchesLineRate(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLink()
	a, b := pair(eng, cfg)
	var at sim.Time = -1
	b.SetRecv(func(f *framepool.Buf) { at = eng.Now(); f.Release() })
	a.Send(buf(make([]byte, 1500)))
	eng.Run()
	// (1500+24)*8 bits at 10 Gb/s = 1219.2ns, plus 600ns propagation.
	want := sim.Time((1500+24)*8*100/1000) + cfg.PropDelay
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSerializationBackToBack(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var times []sim.Time
	b.SetRecv(func(f *framepool.Buf) { times = append(times, eng.Now()); f.Release() })
	for i := 0; i < 3; i++ {
		a.Send(buf(make([]byte, 1500)))
	}
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d frames", len(times))
	}
	gap1 := times[1] - times[0]
	gap2 := times[2] - times[1]
	if gap1 != gap2 || gap1 <= 0 {
		t.Fatalf("frames not serialized at line rate: gaps %v %v", gap1, gap2)
	}
}

func TestTailDropWhenQueueFull(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLink()
	cfg.TxQueueBytes = 16 << 10 // tiny queue
	a, _ := pair(eng, cfg)
	dropped := 0
	for i := 0; i < 100; i++ {
		if !a.Send(buf(make([]byte, 1500))) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops despite overrun")
	}
	if a.Stats().TxDrops != uint64(dropped) {
		t.Fatal("drop stats mismatch")
	}
	// After draining, sends succeed again.
	eng.Run()
	if !a.Send(buf(make([]byte, 1500))) {
		t.Fatal("send failed after drain")
	}
}

func TestBidirectional(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var fromA, fromB string
	a.SetRecv(func(f *framepool.Buf) { fromB = string(f.Bytes()); f.Release() })
	b.SetRecv(func(f *framepool.Buf) { fromA = string(f.Bytes()); f.Release() })
	a.Send(buf([]byte("a->b")))
	b.Send(buf([]byte("b->a")))
	eng.Run()
	if fromA != "a->b" || fromB != "b->a" {
		t.Fatalf("duplex exchange failed: %q %q", fromA, fromB)
	}
}

func TestSendUnconnectedPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, "lonely", netpkt.MAC{}, "00:00.0")
	defer func() {
		if recover() == nil {
			t.Fatal("send on unconnected NIC did not panic")
		}
	}()
	n.Send(buf([]byte("x")))
}

func TestZeroCopyDelivery(t *testing.T) {
	// The receiver gets the sender's buffer itself — one reference moves
	// through the wire without any intermediate copy.
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var got *framepool.Buf
	b.SetRecv(func(f *framepool.Buf) { got = f })
	sent := buf([]byte("same bytes"))
	a.Send(sent)
	eng.Run()
	if got != sent {
		t.Fatalf("received buffer %p, want the sent buffer %p", got, sent)
	}
	if string(got.Bytes()) != "same bytes" {
		t.Fatalf("payload corrupted: %q", got.Bytes())
	}
	got.Release()
}

func TestThroughputApproachesLineRate(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var rxBytes int64
	b.SetRecv(func(f *framepool.Buf) { rxBytes += int64(f.Len()); f.Release() })
	// Offer 2000 MTU frames as fast as the queue allows.
	sent := 0
	var offer func()
	offer = func() {
		for sent < 2000 && a.Send(buf(make([]byte, 1500))) {
			sent++
		}
		if sent < 2000 {
			eng.After(100*sim.Microsecond, offer)
		}
	}
	offer()
	eng.Run()
	elapsed := eng.Now()
	gbps := float64(rxBytes*8) / elapsed.Seconds() / 1e9
	if gbps < 9.0 || gbps > 10.0 {
		t.Fatalf("bulk throughput = %.2f Gbps, want ~9.8", gbps)
	}
}
