// Package sim provides the deterministic discrete-event simulation core on
// which the whole Kite reproduction runs: a virtual clock with an event
// heap, virtual CPUs with busy-time accounting, and wakeable tasks that
// model the paper's threaded execution model (netback's pusher/soft_start
// threads, blkback's request thread, the backend-invocation thread).
//
// Virtual time is measured in integer nanoseconds (sim.Time). All mechanism
// in the repository (rings, grant copies, packet movement) executes for
// real; sim only decides *when* each step happens and how much virtual CPU
// it consumes.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since engine start.
type Time int64

// Convenient duration units (all expressed in Time nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the whole simulation runs on the caller's goroutine, which
// is what makes runs bit-for-bit deterministic.
type Engine struct {
	now       Time
	heap      eventHeap
	seq       uint64
	processed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far (useful as a
// livelock guard in tests).
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn at virtual time at. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.heap, &event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes every event with timestamp <= t and then advances the
// clock to exactly t (even if the queue drained earlier or further events
// remain beyond t).
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for len(e.heap) > 0 && e.heap.peek().at <= t {
		e.Step()
	}
	e.now = t
}

// RunFor executes events for the next d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// RunCapped runs until the queue drains or maxEvents have been processed,
// reporting whether the queue drained. It guards tests against livelock.
func (e *Engine) RunCapped(maxEvents uint64) bool {
	start := e.processed
	for e.Step() {
		if e.processed-start >= maxEvents {
			return false
		}
	}
	return true
}
