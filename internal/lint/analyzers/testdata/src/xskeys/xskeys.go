// Package xskeys exercises the kitelint xenstore key registry check:
// raw string literals in path/key arguments are rejected, registry
// constants and bare "/" separators pass.
package xskeys

import (
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

func writes(st *xenstore.Store, devPath string) {
	st.Write(devPath+"/frontend", "p")              // want `raw xenstore key literal "/frontend"`
	st.Write(devPath+"/"+xenstore.KeyFrontend, "p") // registry constant + separator: clean
	st.Writef(devPath+"/"+"event-chanel", "%d", 1)  // want `raw xenstore key literal "event-chanel"`
	v, _ := st.Read(devPath + "/" + xenstore.KeyState)
	st.Write(devPath+"/"+xenstore.KeyBackend, v)
}

func features(b *xenbus.Bus, devPath string) {
	b.WriteFeature(devPath, "feature-persistent", true) // want `raw xenstore key literal "feature-persistent"`
	b.WriteFeature(devPath, xenstore.KeyFeaturePersistent, true)
	_ = b.ReadFeature(devPath, xenstore.KeyFeatureFlushCache)
}

func paths(frontDom xenstore.DomID) string {
	bad := xenbus.FrontendPath(frontDom, "vif", 0) // want `raw xenstore key literal "vif"`
	good := xenbus.FrontendPath(frontDom, xenstore.DevVif, 0)
	return bad + good
}
