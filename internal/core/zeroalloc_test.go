//go:build !race

// The race detector instruments allocations, so the exact-zero assertions
// here only hold in normal builds; `go test -race` skips this file.

package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"kite/internal/netstack"
)

// heapBytesPerRun reports the average heap bytes allocated per call to f,
// with the collector paused so TotalAlloc deltas are exact. AllocsPerRun
// counts objects; this counts bytes, which catches amortized growth
// (free-list doubling, arena high-water creep) that rounds to zero
// objects per op but still bleeds kilobytes across a sweep.
func heapBytesPerRun(runs int, f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f() // settle any first-call growth outside the measured window
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// TestForwardPathZeroAlloc asserts the tentpole property: after warmup
// (pool population, FIFO/map high-water marks, ARP and grant caches), one
// forwarded frame allocates nothing on the heap in either direction —
// guest→netfront→netback→bridge→NIC→client (Tx) and the reverse (Rx).
func TestForwardPathZeroAlloc(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 0xa110c)
	if err != nil {
		t.Fatal(err)
	}
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {})
	rig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {})
	payload := pattern(1400)
	eng := rig.System.Eng

	tx := func() {
		rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, 9001, payload)
		eng.Run()
	}
	rx := func() {
		rig.Client.Stack.SendUDP(rig.GuestIP, 9001, 9000, payload)
		eng.Run()
	}
	for i := 0; i < 300; i++ {
		tx()
		rx()
	}

	if allocs := testing.AllocsPerRun(100, tx); allocs != 0 {
		t.Errorf("Tx direction: %.1f allocs per forwarded frame, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, rx); allocs != 0 {
		t.Errorf("Rx direction: %.1f allocs per forwarded frame, want 0", allocs)
	}
	if n := rig.System.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked", n)
	}
}

// TestForwardPathZeroAllocMQ asserts the multi-queue variant of the same
// property at EVERY negotiable queue count: per-queue cluster shards,
// framepool arenas, preallocated Tx slot tables, and grant caches must keep
// the steady-state forwarded frame at exactly zero heap allocations in both
// directions — one stray byte per op fails the sweep.
func TestForwardPathZeroAllocMQ(t *testing.T) {
	for _, queues := range []int{1, 2, 4, 8} {
		queues := queues
		t.Run(fmt.Sprintf("queues=%d", queues), func(t *testing.T) {
			rig, err := NewNetworkRigCfg(NetworkRigConfig{Kind: KindKite, Seed: 0xa110c4, Queues: queues})
			if err != nil {
				t.Fatal(err)
			}
			if n := rig.Guest.Net.NumQueues(); n != queues {
				t.Fatalf("negotiated %d queues, want %d", n, queues)
			}
			rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {})
			rig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {})
			payload := pattern(1400)
			eng := rig.System.Eng

			// Warm every queue: 64 source ports hash across all queues,
			// populating each queue's Tx slots, arenas, and persistent
			// mappings. The frontend cycles its 256 posted Rx buffers
			// round-robin, so each queue needs >256 Rx frames before the
			// backend's persistent-grant cache stops missing.
			warm := 1300
			if queues == 8 {
				warm = 2500
			}
			for i := 0; i < warm; i++ {
				rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i%64), payload)
				eng.Run()
				rig.Client.Stack.SendUDP(rig.GuestIP, 9001, uint16(9000+i%64), payload)
				eng.Run()
			}
			for port := 0; port < queues; port++ {
				port := uint16(9001 + port*16)
				tx := func() {
					rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, port, payload)
					eng.Run()
				}
				rx := func() {
					rig.Client.Stack.SendUDP(rig.GuestIP, 9001, port, payload)
					eng.Run()
				}
				if allocs := testing.AllocsPerRun(50, tx); allocs != 0 {
					t.Errorf("Tx srcport %d: %.1f allocs per frame, want 0", port, allocs)
				}
				if allocs := testing.AllocsPerRun(50, rx); allocs != 0 {
					t.Errorf("Rx srcport %d: %.1f allocs per frame, want 0", port, allocs)
				}
			}
			// Byte invariant at wave scale: a 512-frame burst holds far
			// more buffers in flight than one frame, and remote releases
			// reach their free lists a lookahead window late — the
			// preallocated pools and arenas must absorb that pipeline, not
			// grow through it. Bytes, not just objects: high-water creep
			// rounds to 0 allocs/op while still leaking kilobytes per sweep.
			wave := func() {
				for i := 0; i < 512; i++ {
					rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i%64), payload)
				}
				eng.Run()
			}
			for w := 0; w < 8; w++ {
				wave()
			}
			if bytes := heapBytesPerRun(50, wave); bytes != 0 {
				t.Errorf("512-frame wave: %.1f heap bytes per wave, want 0", bytes)
			}
			if n := rig.System.Pool.Outstanding(); n != 0 {
				t.Fatalf("%d frame buffers leaked", n)
			}
		})
	}
}

// TestBlockPathZeroAlloc asserts the storage tentpole property: once pools,
// persistent grants, and the NVMe sparse store are warm, a 256 KiB write
// and a 256 KiB read through the full PV storage pipeline allocate nothing
// on the heap — requests ride pooled records with pre-bound closures,
// merged device ops hand the device an iovec of grant-mapped views, and
// read completions borrow pooled sector buffers.
func TestBlockPathZeroAlloc(t *testing.T) {
	rig, err := NewStorageRig(StorageRigConfig{Kind: KindKite, Seed: 0xb10c, DiskBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	const ioBytes = 256 << 10
	payload := pattern(ioBytes)
	eng := rig.System.Eng
	wcb := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	rcb := func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	write := func() {
		rig.Guest.Disk.WriteSectors(0, payload, wcb)
		eng.Run()
	}
	read := func() {
		rig.Guest.Disk.ReadSectors(0, ioBytes, rcb)
		eng.Run()
	}
	for i := 0; i < 100; i++ { // warm pools, grants, and the sparse store
		write()
		read()
	}

	if allocs := testing.AllocsPerRun(100, write); allocs != 0 {
		t.Errorf("write path: %.1f allocs per 256 KiB write, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, read); allocs != 0 {
		t.Errorf("read path: %.1f allocs per 256 KiB read, want 0", allocs)
	}
	if n := rig.System.BlkPool.Outstanding(); n != 0 {
		t.Fatalf("%d sector buffers leaked", n)
	}
}

// TestBlockPathZeroAllocMQ asserts the same property at every vbd
// hardware-queue count: a 256 KiB op that straddles a 512 KiB stripe
// boundary (so its chunks ride two queues with separate rings, page pools,
// and blkback shards) still allocates nothing once warm — any per-op byte
// creep fails the sweep.
func TestBlockPathZeroAllocMQ(t *testing.T) {
	for _, queues := range []int{2, 4, 8} {
		queues := queues
		t.Run(fmt.Sprintf("queues=%d", queues), func(t *testing.T) {
			rig, err := NewStorageRig(StorageRigConfig{
				Kind: KindKite, Seed: 0xb10c4, DiskBytes: 1 << 30, Queues: queues,
			})
			if err != nil {
				t.Fatal(err)
			}
			if n := rig.Guest.Disk.NumQueues(); n != queues {
				t.Fatalf("negotiated %d queues, want %d", n, queues)
			}
			const ioBytes = 256 << 10
			payload := pattern(ioBytes)
			eng := rig.System.Eng
			wcb := func(err error) {
				if err != nil {
					t.Fatal(err)
				}
			}
			rcb := func(data []byte, err error) {
				if err != nil {
					t.Fatal(err)
				}
			}
			// sector 896 puts the op across the stripe-0/stripe-1 boundary;
			// the warmup loop also walks the remaining stripes so every
			// queue's pools and persistent grants are populated.
			write := func() {
				rig.Guest.Disk.WriteSectors(896, payload, wcb)
				eng.Run()
			}
			read := func() {
				rig.Guest.Disk.ReadSectors(896, ioBytes, rcb)
				eng.Run()
			}
			for i := 0; i < 100; i++ {
				write()
				read()
				base := int64(2048 + (i%(queues-1))*1024) // stripes 2..queues
				rig.Guest.Disk.WriteSectors(base, payload[:4096], wcb)
				eng.Run()
			}

			if allocs := testing.AllocsPerRun(100, write); allocs != 0 {
				t.Errorf("striped write: %.1f allocs per 256 KiB write, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(100, read); allocs != 0 {
				t.Errorf("striped read: %.1f allocs per 256 KiB read, want 0", allocs)
			}
			// Byte invariant at depth: a 128-deep stripe-major wave keeps
			// every queue's rings and merge scratch at their high-water
			// marks; once warm, the whole wave must not allocate a byte.
			wave := func() {
				for i := 0; i < 128; i++ {
					base := int64(i/16%queues)*1024 + int64(i%16)*8
					rig.Guest.Disk.WriteSectors(base, payload[:4096], wcb)
				}
				eng.Run()
			}
			for w := 0; w < 8; w++ {
				wave()
			}
			if bytes := heapBytesPerRun(50, wave); bytes != 0 {
				t.Errorf("128-deep wave: %.1f heap bytes per wave, want 0", bytes)
			}
			if n := rig.System.BlkPool.Outstanding(); n != 0 {
				t.Fatalf("%d sector buffers leaked", n)
			}
		})
	}
}
