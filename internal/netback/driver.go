package netback

import (
	"fmt"

	"kite/internal/bridge"
	"kite/internal/framepool"
	"kite/internal/netif"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

// scanCost is the CPU cost of one backend-invocation pass (xenstore reads
// are charged separately via their latency).
const scanCost = 5 * sim.Microsecond

// Driver is the per-domain network backend driver: it watches the driver
// domain's backend/vif subtree and a dedicated thread pairs every waiting
// frontend with a fresh VIF instance (§4.1 backend invocation). This is
// the single-process replacement for Linux's `xl devd` + hotplug scripts.
type Driver struct {
	eng   *sim.Engine
	dom   *xen.Domain
	bus   *xenbus.Bus
	reg   *netif.Registry
	br    *bridge.Bridge
	costs Costs
	pool  *framepool.Pool

	shards   []*sim.Engine
	lanes    []*ServiceLane // fleet mode: shared DRR workers, one per shard
	laneNext int            // round-robin lane assignment cursor
	tenants  *xenbus.TenantRegistry
	thread   *sim.Task
	vifs     map[string]*VIF // by backend path
	order    []*VIF          // live instances in attach order (deterministic walks)
	watched  map[string]bool // frontend paths already under watch

	// OnVIF is invoked when a new instance connects (the network
	// application uses it to log/track interfaces).
	OnVIF func(*VIF)

	invocations uint64
}

// NewDriver starts the backend driver in dom, serving frontends through
// the given bridge. All VIFs draw frame buffers from pool (nil for a
// private pool).
func NewDriver(eng *sim.Engine, dom *xen.Domain, bus *xenbus.Bus,
	reg *netif.Registry, br *bridge.Bridge, costs Costs,
	pool *framepool.Pool) *Driver {

	if pool == nil {
		pool = framepool.New()
	}
	drv := &Driver{
		eng: eng, dom: dom, bus: bus, reg: reg, br: br, costs: costs, pool: pool,
		vifs:    make(map[string]*VIF),
		watched: make(map[string]bool),
	}
	drv.thread = sim.NewTask(eng, dom.CPUs.CPU(0), dom.Name+"/vif-invoker",
		costs.WakeLatency, drv.scan)
	bus.Store().Watch(xenbus.BackendRoot(xenbus.DomID(dom.ID), xenstore.DevVif), "netback",
		func(string, string) { drv.thread.Wake() })
	return drv
}

// SetShards pins each VIF queue i to shards[i] (cluster shard engines);
// the backend-invocation thread moves to the domain's last vCPU, leaving
// vCPUs 0..len(shards)-1 to the queues. Must be called before any frontend
// connects.
func (d *Driver) SetShards(shards []*sim.Engine) {
	d.shards = shards
	d.thread = sim.NewTask(d.eng, d.dom.CPUs.CPU(d.dom.CPUs.Len()-1),
		d.dom.Name+"/vif-invoker", d.costs.WakeLatency, d.scan)
	// Every queue<->bridge dispatch models at least shardHandoff of
	// latency, so that is the conservative edge bound between the bridge
	// shard and each queue shard.
	for _, sh := range shards {
		sim.DeclareLink(d.eng, sh, shardHandoff)
	}
}

// SetFleet switches the driver into fleet mode: instead of dedicated
// pusher/soft_start threads per VIF, it creates one ServiceLane per shard
// (lane i pinned to vCPU i on shards[i], forwarding on the vCPUs after
// the lane block) and assigns connecting single-queue frontends to lanes
// round-robin. The backend-invocation thread moves to the domain's last
// vCPU. Must be called before any frontend connects.
func (d *Driver) SetFleet(shards []*sim.Engine) {
	d.thread = sim.NewTask(d.eng, d.dom.CPUs.CPU(d.dom.CPUs.Len()-1),
		d.dom.Name+"/vif-invoker", d.costs.WakeLatency, d.scan)
	d.lanes = make([]*ServiceLane, len(shards))
	for _, sh := range shards {
		// Lane workers hand frames to/from the bridge shard with at least
		// the queue dispatch latency, like dedicated-worker queues.
		sim.DeclareLink(d.eng, sh, shardHandoff)
	}
	for i, sh := range shards {
		fwd := len(shards) + i
		if fwd > d.dom.CPUs.Len()-1 {
			fwd = d.dom.CPUs.Len() - 1
		}
		d.lanes[i] = NewServiceLane(i, d.dom, sh, d.dom.CPUs.CPU(i),
			d.br, d.dom.CPUs.CPU(fwd), d.costs)
	}
}

// SetTenantRegistry installs the control-plane ledger the driver reports
// attach/detach events to.
func (d *Driver) SetTenantRegistry(r *xenbus.TenantRegistry) { d.tenants = r }

// Lanes returns the fleet service lanes (nil in dedicated-worker mode).
func (d *Driver) Lanes() []*ServiceLane { return d.lanes }

// VIFs returns the live instances in attach order.
func (d *Driver) VIFs() []*VIF {
	out := make([]*VIF, len(d.order))
	copy(out, d.order)
	return out
}

// Invocations returns how many pairing attempts the thread performed.
func (d *Driver) Invocations() uint64 { return d.invocations }

// scan is the backend-invocation thread body: walk the backend subtree and
// pair any unpaired frontend.
func (d *Driver) scan() {
	d.dom.CPUs.Charge(scanCost)
	st := d.bus.Store()
	root := xenbus.BackendRoot(xenbus.DomID(d.dom.ID), xenstore.DevVif)
	for _, frontStr := range st.List(root) {
		var frontDom int
		if _, err := fmt.Sscanf(frontStr, "%d", &frontDom); err != nil {
			continue
		}
		for _, devStr := range st.List(root + "/" + frontStr) {
			var devid int
			if _, err := fmt.Sscanf(devStr, "%d", &devid); err != nil {
				continue
			}
			backPath := root + "/" + frontStr + "/" + devStr
			if _, exists := d.vifs[backPath]; exists {
				continue
			}
			d.tryPair(backPath, xen.DomID(frontDom), devid)
		}
	}
}

func (d *Driver) tryPair(backPath string, frontDom xen.DomID, devid int) {
	st := d.bus.Store()
	frontPath, ok := st.Read(backPath + "/" + xenstore.KeyFrontend)
	if !ok {
		return
	}
	switch d.bus.State(backPath) {
	case xenbus.StateInitialising:
		// Announce ourselves and advertise features, including how many
		// queues we can serve: one per driver-domain vCPU, capped like
		// xen-netback's module parameter.
		d.bus.WriteFeature(backPath, xenstore.KeyFeatureRxCopy, true)
		maxq := d.dom.CPUs.Len()
		if maxq > netif.MaxQueues {
			maxq = netif.MaxQueues
		}
		st.Writef(backPath+"/"+xenstore.KeyMultiQueueMaxQueues, "%d", maxq)
		_ = d.bus.SwitchState(backPath, xenbus.StateInitWait)
	case xenbus.StateClosed, xenbus.StateClosing:
		return
	}

	fs := d.bus.State(frontPath)
	if fs != xenbus.StateInitialised && fs != xenbus.StateConnected {
		// Frontend not ready: watch it (once) and retry on transitions.
		if !d.watched[frontPath] {
			d.watched[frontPath] = true
			d.bus.OnStateChange(frontPath, func(xenbus.State) { d.thread.Wake() })
		}
		return
	}

	d.invocations++
	// Multi-queue frontends publish per-queue event channels under
	// queue-N/; single-queue ones keep the legacy flat key.
	nq := d.bus.ReadNumQueues(frontPath, xenstore.KeyMultiQueueNumQueues)
	ports := make([]xen.Port, nq)
	var rssSeed uint64
	if nq == 1 {
		port, ok := st.ReadInt(frontPath + "/" + xenstore.KeyEventChannel)
		if !ok {
			return
		}
		ports[0] = xen.Port(port)
	} else {
		for i := 0; i < nq; i++ {
			port, ok := st.ReadInt(xenbus.QueuePath(frontPath, i) + "/" + xenstore.KeyEventChannel)
			if !ok {
				return
			}
			ports[i] = xen.Port(port)
		}
		seed, ok := st.ReadInt(frontPath + "/" + xenstore.KeyMultiQueueHashSeed)
		if !ok {
			return // multi-queue frontends must publish their steering seed
		}
		rssSeed = uint64(seed)
	}
	ch, err := d.reg.Claim(frontDom, devid)
	if err != nil {
		return // ring refs not published yet; a later watch retries
	}
	if ch.NumQueues() != nq {
		return // store and registry disagree; a later watch retries
	}
	var vif *VIF
	laneID := -1
	if d.lanes != nil && nq == 1 {
		// The toolstack may pin the tenant to a lane (it pinned the
		// frontend's shard to match); otherwise assign round-robin.
		lane := d.lanes[d.laneNext%len(d.lanes)]
		if hint, ok := st.ReadInt(backPath + "/" + xenstore.KeyTenantLane); ok {
			lane = d.lanes[int(hint)%len(d.lanes)]
		} else {
			d.laneNext++
		}
		laneID = lane.ID()
		vif, err = NewVIFOnLane(d.eng, d.dom, frontDom, devid, ch,
			ports, d.br, d.costs, d.pool, lane)
	} else {
		vif, err = NewVIF(d.eng, d.dom, frontDom, devid, ch,
			ports, d.br, d.costs, d.pool, rssSeed, d.shards)
	}
	if err != nil {
		_ = d.bus.SwitchState(backPath, xenbus.StateClosed)
		return
	}
	d.vifs[backPath] = vif
	d.order = append(d.order, vif)
	d.br.AddPort(vif)
	if laneID >= 0 {
		// Fleet tenants speak only through the NAT router: isolating their
		// ports keeps one tenant's broadcasts (gateway ARP, mostly) from
		// fanning a copy into every other tenant's RX queue.
		d.br.SetIsolated(vif, true)
	}
	if d.tenants != nil {
		d.tenants.AttachVIF(xenbus.DomID(frontDom), laneID)
	}
	_ = d.bus.SwitchState(backPath, xenbus.StateConnected)

	// Tear the instance down when the frontend goes away.
	d.bus.OnStateChange(frontPath, func(s xenbus.State) {
		if s == xenbus.StateClosing || s == xenbus.StateClosed || s == xenbus.StateUnknown {
			d.removeVIF(backPath)
		}
	})
	if d.OnVIF != nil {
		d.OnVIF(vif)
	}
}

func (d *Driver) removeVIF(backPath string) {
	vif := d.vifs[backPath]
	if vif == nil {
		return
	}
	delete(d.vifs, backPath)
	for i, v := range d.order {
		if v == vif {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.br.RemovePort(vif)
	vif.Shutdown()
	if d.tenants != nil {
		d.tenants.DetachVIF(xenbus.DomID(vif.frontDom))
	}
	if d.bus.Store().Exists(backPath) {
		_ = d.bus.SwitchState(backPath, xenbus.StateClosed)
	}
}

// Shutdown tears down every instance (driver domain exit) in attach order.
func (d *Driver) Shutdown() {
	for len(d.order) > 0 {
		vif := d.order[0]
		for path, v := range d.vifs {
			if v == vif {
				d.removeVIF(path)
				break
			}
		}
	}
}
