// Package analysistest runs one kitelint analyzer over a fixture package
// and checks its findings against expectations written in the fixture
// source, in the style of golang.org/x/tools' analysistest:
//
//	st.Write("typo-key", "v") // want `raw xenstore key literal`
//
// A `// want` comment holds one or more backquoted or double-quoted
// regular expressions; each must match a distinct diagnostic reported on
// that line. A diagnostic with no matching expectation, or an expectation
// no diagnostic matched, fails the test. Fixture import paths start with
// the module path (kite/fixtures/...) so module-membership predicates in
// the analyzers hold.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"kite/internal/lint/analysis"
	"kite/internal/lint/loader"
)

// sharedLoader is the process-wide loader: one stdlib + module typecheck
// amortized across every analyzer test instead of one per Run call, which
// is the difference between the suite finishing in seconds and in
// minutes. The loader is not concurrency-safe, so loaderMu serializes
// fixture registration and loading.
var (
	loaderMu   sync.Mutex
	loaderOnce = sync.OnceValues(func() (*loader.Loader, error) {
		return loader.New(".")
	})
)

// expectation is one regexp expected on one fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture rooted at dir under importPath, runs the
// analyzers over it, and reports mismatches on t.
func Run(t *testing.T, importPath, dir string, as ...*analysis.Analyzer) {
	t.Helper()

	loaderMu.Lock()
	defer loaderMu.Unlock()
	l, err := loaderOnce()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	// Register the absolute directory so fixture positions (and the
	// fixture filter below) share one spelling.
	dir = mustAbs(t, dir)
	l.RegisterDir(importPath, dir)
	pkg, err := l.Load(importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", importPath, err)
	}
	mod := analysis.NewModule(l.ModulePath, l.Loaded())

	var diags []analysis.Diagnostic
	for _, a := range as {
		pass := &analysis.Pass{
			Analyzer: a,
			Pkg:      pkg,
			Module:   mod,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}

	wants := parseWants(t, pkg)

	// Only findings inside the fixture participate; analyzer descent into
	// real module packages is covered by the clean-tree test.
	for _, d := range diags {
		pos := mod.Fset.Position(d.Pos)
		if !strings.HasPrefix(pos.Filename, dir) {
			continue
		}
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected finding: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func mustAbs(t *testing.T, dir string) string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("abs %s: %v", dir, err)
	}
	return abs
}

// claim marks the first unmatched expectation on (file, line) whose regexp
// matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRe pulls the expectation regexps out of a `// want ...` comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats := wantRe.FindAllString(rest, -1)
				if len(pats) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, p := range pats {
					var lit string
					if p[0] == '`' {
						lit = p[1 : len(p)-1]
					} else {
						var err error
						lit, err = strconv.Unquote(p)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, p, err)
						}
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}
