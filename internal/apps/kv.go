package apps

import (
	"bytes"
	"fmt"
	"strconv"

	"kite/internal/netstack"
	"kite/internal/sim"
)

// KVServer stands in for Redis and Memcached (Figs 7 and 9): an in-memory
// key-value store speaking a line-oriented protocol that pipelines
// naturally over one connection:
//
//	SET <key> <len>\r\n<len bytes>\r\n  ->  OK\r\n
//	GET <key>\r\n                       ->  VALUE <len>\r\n<bytes>\r\n | NIL\r\n
type KVServer struct {
	stack *netstack.Stack
	cpu   *sim.CPU // Redis is single-threaded: one core serves all commands
	data  map[string][]byte

	// PerOp is the CPU charged per command (hashing, dispatch).
	PerOp sim.Time
	// PerKB is the CPU charged per KiB of value moved.
	PerKB sim.Time

	sets, gets, misses uint64
}

// NewKVServer starts a key-value server on port.
func NewKVServer(stack *netstack.Stack, port uint16) (*KVServer, error) {
	s := &KVServer{
		stack: stack,
		cpu:   stack.CPUs().CPU(0),
		data:  make(map[string][]byte),
		PerOp: 5 * sim.Microsecond,
		PerKB: 60 * sim.Nanosecond,
	}
	if err := stack.Listen(port, s.accept); err != nil {
		return nil, err
	}
	return s, nil
}

// Counts returns (sets, gets, misses).
func (s *KVServer) Counts() (sets, gets, misses uint64) { return s.sets, s.gets, s.misses }

// Keys returns the number of stored keys.
func (s *KVServer) Keys() int { return len(s.data) }

func (s *KVServer) accept(c *netstack.Conn) {
	var buf []byte
	c.OnData(func(data []byte) {
		buf = append(buf, data...)
		var reply []byte
		before := s.cpu.BusyTotal()
		for {
			consumed, out, ok := s.step(buf)
			if !ok {
				break
			}
			buf = buf[consumed:]
			reply = append(reply, out...)
		}
		if len(reply) == 0 {
			return
		}
		// The batch's replies leave when the worker finishes the charged
		// command processing — a single-threaded Redis loop, not an
		// infinitely parallel one.
		_ = before
		done := s.cpu.Charge(0) // current completion horizon
		out := reply
		s.stack.Engine().After(done-s.stack.Engine().Now(), func() { c.Send(out) })
	})
}

// step consumes one complete command from buf, returning bytes consumed
// and the response; ok=false means more bytes are needed.
func (s *KVServer) step(buf []byte) (consumed int, reply []byte, ok bool) {
	nl := bytes.Index(buf, []byte("\r\n"))
	if nl < 0 {
		return 0, nil, false
	}
	line := string(buf[:nl])
	fields := bytes.Fields(buf[:nl])
	switch {
	case len(fields) == 3 && string(fields[0]) == "SET":
		n, err := strconv.Atoi(string(fields[2]))
		if err != nil || n < 0 {
			return nl + 2, []byte("ERR bad length\r\n"), true
		}
		total := nl + 2 + n + 2
		if len(buf) < total {
			return 0, nil, false
		}
		val := make([]byte, n)
		copy(val, buf[nl+2:nl+2+n])
		s.data[string(fields[1])] = val
		s.sets++
		s.charge(n)
		return total, []byte("OK\r\n"), true
	case len(fields) == 2 && string(fields[0]) == "GET":
		s.gets++
		val, found := s.data[string(fields[1])]
		if !found {
			s.misses++
			s.charge(0)
			return nl + 2, []byte("NIL\r\n"), true
		}
		s.charge(len(val))
		out := make([]byte, 0, len(val)+24)
		out = append(out, fmt.Sprintf("VALUE %d\r\n", len(val))...)
		out = append(out, val...)
		out = append(out, '\r', '\n')
		return nl + 2, out, true
	default:
		_ = line
		return nl + 2, []byte("ERR unknown command\r\n"), true
	}
}

func (s *KVServer) charge(n int) {
	s.cpu.Charge(s.PerOp + sim.Time(n)*s.PerKB/1024)
}

// EncodeSet builds the wire form of a SET (used by the memtier and
// redis-benchmark clients).
func EncodeSet(key string, value []byte) []byte {
	out := make([]byte, 0, len(value)+len(key)+24)
	out = append(out, fmt.Sprintf("SET %s %d\r\n", key, len(value))...)
	out = append(out, value...)
	out = append(out, '\r', '\n')
	return out
}

// EncodeGet builds the wire form of a GET.
func EncodeGet(key string) []byte { return []byte(fmt.Sprintf("GET %s\r\n", key)) }
