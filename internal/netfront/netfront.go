// Package netfront implements the paravirtual network frontend driver that
// runs inside DomU guests. It exposes the netstack.NetIf interface — the
// guest's network stack uses it exactly like a physical NIC — and speaks
// the netif ring protocol to whatever netback serves it (Linux or Kite;
// the frontend is identical in both cases, which is the paper's point:
// guests need no modification, §2.2).
//
// Frames arrive and leave as pooled buffers. Tx grants are persistent:
// each ring slot lazily allocates one page and grants it to the backend
// once, then reuses page and grant for the device's lifetime — the same
// recycling the Rx path always had, and what lets the backend keep
// persistent mappings of our pages (§3.3).
package netfront

import (
	"fmt"

	"kite/internal/framepool"
	"kite/internal/mem"
	"kite/internal/netif"
	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
)

// txBacklogCap bounds the qdisc backlog (frames).
const txBacklogCap = 1024

// Stats counts frontend activity.
type Stats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	TxRingFull         uint64
	TxErrors           uint64
}

// txSlot is a persistently granted Tx page, reused across frames.
type txSlot struct {
	page     *mem.Page
	ref      xen.GrantRef
	inFlight bool
}

type rxBuf struct {
	page *mem.Page
	ref  xen.GrantRef
}

// Device is one vif frontend instance.
type Device struct {
	eng     *sim.Engine
	dom     *xen.Domain
	bus     *xenbus.Bus
	reg     *netif.Registry
	devID   int
	backDom xen.DomID
	mac     netpkt.MAC
	pool    *framepool.Pool

	frontPath string
	backPath  string

	txRing *netif.TxRing
	rxRing *netif.RxRing
	port   xen.Port

	txSlots map[uint16]*txSlot
	txNext  uint16
	txFree  []uint16
	// txBacklog queues frames while the ring is full (the guest's qdisc);
	// reapTx drains it as slots free up. Each entry holds one buffer
	// reference.
	txBacklog sim.FIFO[*framepool.Buf]
	rxBufs    [netif.RingSize]rxBuf
	rxAlive   bool

	recv    func(frame *framepool.Buf)
	onReady func()
	ready   bool

	stats Stats
}

// Config describes a frontend to create.
type Config struct {
	Dom      *xen.Domain
	Bus      *xenbus.Bus
	Registry *netif.Registry
	DevID    int
	BackDom  xen.DomID
	MAC      netpkt.MAC
	// Pool supplies frame buffers for the Rx path (nil for a private pool).
	Pool *framepool.Pool
	// OnReady fires when the device reaches Connected on both ends.
	OnReady func()
}

// New creates the frontend for an already tool-stack-created vif device
// and begins negotiation.
func New(eng *sim.Engine, cfg Config) *Device {
	pool := cfg.Pool
	if pool == nil {
		pool = framepool.New()
	}
	d := &Device{
		eng:       eng,
		dom:       cfg.Dom,
		bus:       cfg.Bus,
		reg:       cfg.Registry,
		devID:     cfg.DevID,
		backDom:   cfg.BackDom,
		mac:       cfg.MAC,
		pool:      pool,
		frontPath: xenbus.FrontendPath(xenbus.DomID(cfg.Dom.ID), "vif", cfg.DevID),
		txSlots:   make(map[uint16]*txSlot),
		onReady:   cfg.OnReady,
	}
	d.backPath = xenbus.BackendPath(xenbus.DomID(cfg.BackDom), "vif", xenbus.DomID(cfg.Dom.ID), cfg.DevID)
	d.start()
	return d
}

// MAC implements netstack.NetIf.
func (d *Device) MAC() netpkt.MAC { return d.mac }

// SetRecv implements netstack.NetIf. The callback receives one buffer
// reference per frame and owns it.
func (d *Device) SetRecv(fn func(frame *framepool.Buf)) { d.recv = fn }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// Ready reports whether the device is connected end to end.
func (d *Device) Ready() bool { return d.ready }

// start performs the frontend's side of the xenbus handshake: allocate
// rings and the event channel, publish references, move to Initialised,
// then wait for the backend to connect.
func (d *Device) start() {
	d.txRing = netif.NewTxRing()
	d.rxRing = netif.NewRxRing()
	d.reg.Publish(d.dom.ID, d.devID, &netif.Channel{Tx: d.txRing, Rx: d.rxRing})

	d.port = d.dom.AllocUnbound(d.backDom)
	if err := d.dom.SetHandler(d.port, d.onEvent); err != nil {
		panic(fmt.Sprintf("netfront: %v", err))
	}

	st := d.bus.Store()
	st.Writef(d.frontPath+"/tx-ring-ref", "%d", d.devID*2+1)
	st.Writef(d.frontPath+"/rx-ring-ref", "%d", d.devID*2+2)
	st.Writef(d.frontPath+"/event-channel", "%d", d.port)
	st.Write(d.frontPath+"/mac", d.mac.String())
	d.bus.WriteFeature(d.frontPath, "request-rx-copy", true)
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateInitialised); err != nil {
		panic(fmt.Sprintf("netfront: %v", err))
	}

	d.bus.OnStateChange(d.backPath, func(s xenbus.State) {
		switch s {
		case xenbus.StateConnected:
			if !d.ready {
				d.connect()
			}
		case xenbus.StateClosing, xenbus.StateClosed:
			d.backendGone()
		}
	})
}

// connect finishes the handshake: post the full Rx buffer set and go
// Connected.
func (d *Device) connect() {
	for i := 0; i < netif.RingSize; i++ {
		page := d.dom.Arena.MustAlloc()
		ref := d.dom.GrantAccess(d.backDom, page, false)
		d.rxBufs[i] = rxBuf{page: page, ref: ref}
		if !d.rxRing.PushRequest(netif.RxRequest{ID: uint16(i), Ref: ref}) {
			panic("netfront: fresh rx ring full")
		}
	}
	d.rxAlive = true
	if d.rxRing.PushRequestsAndCheckNotify() {
		d.dom.Notify(d.port)
	}
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateConnected); err != nil {
		panic(fmt.Sprintf("netfront: %v", err))
	}
	d.ready = true
	if d.onReady != nil {
		d.onReady()
	}
}

// backendGone quiesces the device when its backend disappears (driver
// domain crash/restart). Backlogged frames are released; sends fail until
// a new backend connects. Persistent Tx grants stay in place — the same
// slots are reused after a reattach (and EndAccess would fail anyway while
// the backend still holds mappings).
func (d *Device) backendGone() {
	if !d.ready {
		return
	}
	d.ready = false
	d.rxAlive = false
	for d.txBacklog.Len() > 0 {
		d.txBacklog.Pop().Release()
	}
}

// Send implements netstack.NetIf: copy the frame into a persistently
// granted page, push a Tx request, kick the backend. Send consumes the
// caller's buffer reference on every path, including failures.
func (d *Device) Send(frame *framepool.Buf) bool {
	if !d.ready {
		frame.Release()
		return false
	}
	if frame.Len() > mem.PageSize {
		d.stats.TxErrors++
		frame.Release()
		return false
	}
	if d.txRing.Full() {
		if d.txBacklog.Len() >= txBacklogCap {
			d.stats.TxRingFull++
			frame.Release()
			return false
		}
		d.txBacklog.Push(frame)
		return true
	}
	if !d.pushTx(frame) {
		return false
	}
	if d.txRing.PushRequestsAndCheckNotify() {
		d.dom.Notify(d.port)
	}
	return true
}

// pushTx copies one frame into a Tx slot and pushes its request, consuming
// the buffer reference. The caller batches the notify check.
func (d *Device) pushTx(frame *framepool.Buf) bool {
	slot, id, ok := d.allocTxSlot()
	if !ok {
		d.stats.TxErrors++
		frame.Release()
		return false
	}
	n := frame.Len()
	slot.page.CopyInto(0, frame.Bytes())
	slot.inFlight = true
	frame.Release()
	d.txRing.PushRequest(netif.TxRequest{ID: id, Ref: slot.ref, Offset: 0, Len: n})
	d.stats.TxFrames++
	d.stats.TxBytes += uint64(n)
	return true
}

// allocTxSlot returns a free persistent Tx slot, lazily allocating and
// granting its page the first time an id is used.
func (d *Device) allocTxSlot() (*txSlot, uint16, bool) {
	if n := len(d.txFree); n > 0 {
		id := d.txFree[n-1]
		d.txFree = d.txFree[:n-1]
		return d.txSlots[id], id, true
	}
	page, err := d.dom.Arena.Alloc()
	if err != nil {
		return nil, 0, false
	}
	d.txNext++
	id := d.txNext
	slot := &txSlot{page: page, ref: d.dom.GrantAccess(d.backDom, page, true)}
	d.txSlots[id] = slot
	return slot, id, true
}

// onEvent is the frontend's interrupt handler: reap Tx completions and
// deliver Rx frames.
func (d *Device) onEvent() {
	d.reapTx()
	d.reapRx()
}

func (d *Device) reapTx() {
	defer d.drainBacklog()
	for {
		rsp, ok := d.txRing.TakeResponse()
		if !ok {
			if d.txRing.FinalCheckForResponses() {
				continue
			}
			return
		}
		slot := d.txSlots[rsp.ID]
		if slot == nil || !slot.inFlight {
			continue // backend answered an unknown id; ignore
		}
		// The slot's page and grant persist; only the id is recycled.
		slot.inFlight = false
		d.txFree = append(d.txFree, rsp.ID)
		if rsp.Status != netif.StatusOK {
			d.stats.TxErrors++
		}
	}
}

func (d *Device) reapRx() {
	posted := 0
	for {
		rsp, ok := d.rxRing.TakeResponse()
		if !ok {
			if d.rxRing.FinalCheckForResponses() {
				continue
			}
			break
		}
		buf := d.rxBufs[rsp.ID%netif.RingSize]
		if rsp.Status == netif.StatusOK && rsp.Len > 0 &&
			rsp.Offset >= 0 && rsp.Len <= framepool.MaxFrame &&
			rsp.Offset+rsp.Len <= mem.PageSize {
			d.stats.RxFrames++
			d.stats.RxBytes += uint64(rsp.Len)
			if d.recv != nil {
				b := d.pool.Get()
				copy(b.Extend(rsp.Len), buf.page.Data[rsp.Offset:rsp.Offset+rsp.Len])
				d.recv(b)
			}
		}
		// Recycle the same granted page (Linux netfront's page reuse).
		if d.rxAlive && d.rxRing.PushRequest(netif.RxRequest{ID: rsp.ID, Ref: buf.ref}) {
			posted++
		}
	}
	if posted > 0 && d.rxRing.PushRequestsAndCheckNotify() {
		d.dom.Notify(d.port)
	}
}

// EventPort returns the frontend's event channel port (read by the backend
// from xenstore during its handshake).
func (d *Device) EventPort() xen.Port { return d.port }

// drainBacklog pushes queued qdisc frames into freed ring slots.
func (d *Device) drainBacklog() {
	pushed := false
	for d.txBacklog.Len() > 0 && !d.txRing.Full() {
		if d.pushTx(d.txBacklog.Pop()) {
			pushed = true
		}
	}
	if pushed && d.txRing.PushRequestsAndCheckNotify() {
		d.dom.Notify(d.port)
	}
}
