package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/simdet", "testdata/src/simdet", analyzers.Simdet)
}
