package fsim

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"kite/internal/bufpool"
	"kite/internal/sim"
)

// memDisk is a simple in-memory Disk.
type memDisk struct {
	eng  *sim.Engine
	data []byte
}

func (d *memDisk) ReadSectors(sector int64, n int, cb func([]byte, error)) {
	out := make([]byte, n)
	copy(out, d.data[sector*bufpool.SectorSize:])
	d.eng.After(10*sim.Microsecond, func() { cb(out, nil) })
}
func (d *memDisk) ReadSectorsInto(sector int64, dst []byte, cb func(error)) {
	copy(dst, d.data[sector*bufpool.SectorSize:])
	d.eng.After(10*sim.Microsecond, func() { cb(nil) })
}
func (d *memDisk) WriteSectors(sector int64, data []byte, cb func(error)) {
	copy(d.data[sector*bufpool.SectorSize:], data)
	d.eng.After(10*sim.Microsecond, func() { cb(nil) })
}
func (d *memDisk) Flush(cb func(error)) { d.eng.After(10*sim.Microsecond, func() { cb(nil) }) }
func (d *memDisk) SectorCount() int64   { return int64(len(d.data) / bufpool.SectorSize) }

func newFS(t *testing.T, diskBytes int64) (*sim.Engine, *FS) {
	t.Helper()
	eng := sim.NewEngine()
	disk := &memDisk{eng: eng, data: make([]byte, diskBytes)}
	pool := bufpool.New(eng, disk, bufpool.Config{CapacityBytes: 4 << 20})
	return eng, New(eng, pool, nil, DefaultCosts())
}

func TestCreateWriteReadDelete(t *testing.T) {
	eng, fs := newFS(t, 16<<20)
	f, err := fs.Create("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100000)
	sim.NewRand(1).Bytes(payload)
	var got []byte
	fs.Write(f, 0, payload, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		fs.Read(f, 0, len(payload), func(b []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = b
		})
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip corrupted")
	}
	if f.Size() != int64(len(payload)) {
		t.Fatalf("size = %d", f.Size())
	}
	if err := fs.Delete("a.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a.dat"); err == nil {
		t.Fatal("open after delete succeeded")
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	_, fs := newFS(t, 16<<20)
	fs.Create("x")
	if _, err := fs.Create("x"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestAppendGrowsFile(t *testing.T) {
	eng, fs := newFS(t, 16<<20)
	f, _ := fs.Create("log")
	var final []byte
	fs.Append(f, []byte("one,"), func(error) {
		fs.Append(f, []byte("two,"), func(error) {
			fs.Append(f, []byte("three"), func(error) {
				fs.Read(f, 0, int(f.Size()), func(b []byte, _ error) { final = b })
			})
		})
	})
	eng.Run()
	if string(final) != "one,two,three" {
		t.Fatalf("appended content = %q", final)
	}
}

func TestReadBeyondEOFShort(t *testing.T) {
	eng, fs := newFS(t, 16<<20)
	f, _ := fs.Create("short")
	var got []byte
	gotNil := false
	fs.Write(f, 0, []byte("12345"), func(error) {
		fs.Read(f, 3, 100, func(b []byte, _ error) { got = b })
		fs.Read(f, 99, 10, func(b []byte, _ error) { gotNil = b == nil })
	})
	eng.Run()
	if string(got) != "45" {
		t.Fatalf("short read = %q", got)
	}
	if !gotNil {
		t.Fatal("read past EOF returned data")
	}
}

func TestSparseWriteMiddle(t *testing.T) {
	eng, fs := newFS(t, 16<<20)
	f, _ := fs.Create("sparse")
	var got []byte
	fs.Write(f, 200000, []byte("tail"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		fs.Read(f, 199998, 8, func(b []byte, _ error) { got = b })
	})
	eng.Run()
	// EOF is at 200004, so the 8-byte read shortens to 6.
	want := []byte{0, 0, 't', 'a', 'i', 'l'}
	if !bytes.Equal(got, want) {
		t.Fatalf("sparse read = %q", got)
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	eng, fs := newFS(t, 4<<20)
	free0 := fs.FreeBytes()
	f, _ := fs.Create("big")
	done := false
	fs.Write(f, 0, make([]byte, 2<<20), func(error) { done = true })
	eng.Run()
	if !done {
		t.Fatal("write incomplete")
	}
	if fs.FreeBytes() >= free0 {
		t.Fatal("allocation did not consume space")
	}
	fs.Delete("big")
	if fs.FreeBytes() != free0 {
		t.Fatalf("free bytes after delete = %d, want %d", fs.FreeBytes(), free0)
	}
}

func TestOutOfSpace(t *testing.T) {
	eng, fs := newFS(t, 1<<20)
	f, _ := fs.Create("huge")
	var gotErr error
	fs.Write(f, 0, make([]byte, 2<<20), func(err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("overcommit write succeeded")
	}
}

func TestManyFilesListStat(t *testing.T) {
	eng, fs := newFS(t, 64<<20)
	const n = 50
	pending := n
	for i := 0; i < n; i++ {
		f, err := fs.Create(fmt.Sprintf("file%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		fs.Write(f, 0, make([]byte, 1000+i), func(error) { pending-- })
	}
	eng.Run()
	if pending != 0 {
		t.Fatalf("%d writes incomplete", pending)
	}
	if got := len(fs.List()); got != n {
		t.Fatalf("List len = %d", got)
	}
	if size, ok := fs.Stat("file007"); !ok || size != 1007 {
		t.Fatalf("Stat = %d,%v", size, ok)
	}
}

func TestGrownFileStaysMostlySequential(t *testing.T) {
	eng, fs := newFS(t, 64<<20)
	f, _ := fs.Create("seq")
	done := 0
	for i := 0; i < 20; i++ {
		fs.Append(f, make([]byte, 100000), func(error) { done++ })
	}
	eng.Run()
	if done != 20 {
		t.Fatal("appends incomplete")
	}
	// All growth should have extended the first extent.
	if len(f.extents) != 1 {
		t.Fatalf("sequential growth produced %d extents", len(f.extents))
	}
}

func TestAllocatorProperty(t *testing.T) {
	// Alloc/free sequences never corrupt the free list: total free bytes
	// are conserved and allocations never overlap.
	prop := func(ops []uint8) bool {
		a := newAllocator(1 << 20)
		type block struct{ off, n int64 }
		var live []block
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := int64(op%8+1) * 4096
				off, err := a.alloc(n, 0)
				if err != nil {
					continue
				}
				for _, b := range live {
					if off < b.off+b.n && b.off < off+n {
						return false // overlap
					}
				}
				live = append(live, block{off, n})
			} else {
				b := live[len(live)-1]
				live = live[:len(live)-1]
				a.release(b.off, b.n)
			}
		}
		var liveBytes int64
		for _, b := range live {
			liveBytes += b.n
		}
		return a.freeBytes()+liveBytes == 1<<20
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncPersists(t *testing.T) {
	eng := sim.NewEngine()
	disk := &memDisk{eng: eng, data: make([]byte, 16<<20)}
	pool := bufpool.New(eng, disk, bufpool.Config{CapacityBytes: 4 << 20})
	fs := New(eng, pool, nil, DefaultCosts())
	f, _ := fs.Create("durable")
	marker := []byte("persist-me-please")
	synced := false
	fs.Write(f, 0, marker, func(error) {
		fs.Sync(func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			synced = true
		})
	})
	eng.Run()
	if !synced || !bytes.Contains(disk.data, marker) {
		t.Fatal("sync did not persist file data")
	}
}
