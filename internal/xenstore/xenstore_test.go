package xenstore

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"kite/internal/sim"
)

func newStore() (*sim.Engine, *Store) {
	eng := sim.NewEngine()
	return eng, New(eng)
}

func TestReadWrite(t *testing.T) {
	_, s := newStore()
	s.Write("/local/domain/1/name", "domU")
	v, ok := s.Read("/local/domain/1/name")
	if !ok || v != "domU" {
		t.Fatalf("read = %q,%v", v, ok)
	}
	if _, ok := s.Read("/missing"); ok {
		t.Fatal("missing path read succeeded")
	}
}

func TestPathNormalization(t *testing.T) {
	_, s := newStore()
	s.Write("a/b//c/", "v")
	if v, ok := s.Read("/a/b/c"); !ok || v != "v" {
		t.Fatalf("normalized read = %q,%v", v, ok)
	}
}

func TestReadInt(t *testing.T) {
	_, s := newStore()
	s.Write("/x", "42")
	s.Write("/y", "notanumber")
	if v, ok := s.ReadInt("/x"); !ok || v != 42 {
		t.Fatalf("ReadInt = %d,%v", v, ok)
	}
	if _, ok := s.ReadInt("/y"); ok {
		t.Fatal("malformed int parsed")
	}
	if _, ok := s.ReadInt("/absent"); ok {
		t.Fatal("absent int parsed")
	}
}

func TestListSorted(t *testing.T) {
	_, s := newStore()
	s.Write("/dev/vif/2", "b")
	s.Write("/dev/vif/0", "a")
	s.Write("/dev/vif/1", "c")
	got := s.List("/dev/vif")
	want := []string{"0", "1", "2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("List = %v, want %v", got, want)
	}
	if s.List("/nothing") != nil {
		t.Fatal("List of missing dir returned non-nil")
	}
}

func TestRemoveSubtree(t *testing.T) {
	_, s := newStore()
	s.Write("/a/b/c", "1")
	s.Write("/a/b/d", "2")
	if err := s.Remove("/a/b"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a/b/c") || s.Exists("/a/b") {
		t.Fatal("subtree survived Remove")
	}
	if !s.Exists("/a") {
		t.Fatal("parent removed too")
	}
	if err := s.Remove("/a/b"); err == nil {
		t.Fatal("removing missing path succeeded")
	}
	if err := s.Remove("/"); err == nil {
		t.Fatal("removing root succeeded")
	}
}

func TestWatchInitialFire(t *testing.T) {
	eng, s := newStore()
	var got []string
	s.Watch("/backend/vif", "tok", func(path, token string) {
		got = append(got, path+"|"+token)
	})
	eng.Run()
	if len(got) != 1 || got[0] != "/backend/vif|tok" {
		t.Fatalf("initial fire = %v", got)
	}
}

func TestWatchFiresOnSubtreeChange(t *testing.T) {
	eng, s := newStore()
	var paths []string
	s.Watch("/backend/vif", "t", func(path, _ string) { paths = append(paths, path) })
	eng.Run() // drain initial fire
	paths = nil

	s.Write("/backend/vif/1/0/state", "1")
	s.Write("/frontend/other", "x") // outside subtree
	eng.Run()
	if len(paths) != 1 || paths[0] != "/backend/vif/1/0/state" {
		t.Fatalf("watch fires = %v, want exactly the subtree change", paths)
	}
}

func TestWatchFiresOnAncestorRemoval(t *testing.T) {
	eng, s := newStore()
	s.Write("/backend/vif/1/0/state", "4")
	fired := 0
	s.Watch("/backend/vif/1/0/state", "t", func(string, string) { fired++ })
	eng.Run()
	fired = 0
	// Removing an ancestor of the watched path must fire the watch.
	s.Remove("/backend/vif/1")
	eng.Run()
	if fired != 1 {
		t.Fatalf("ancestor removal fired %d times, want 1", fired)
	}
}

func TestUnwatchSuppressesInFlight(t *testing.T) {
	eng, s := newStore()
	fired := 0
	w := s.Watch("/x", "t", func(string, string) { fired++ })
	s.Write("/x", "1") // queues a fire
	s.Unwatch(w)
	eng.Run()
	if fired != 0 {
		t.Fatalf("unwatched callback ran %d times", fired)
	}
}

func TestWatchAsyncOrdering(t *testing.T) {
	eng, s := newStore()
	var order []string
	s.Watch("/k", "t", func(string, string) { order = append(order, "watch") })
	eng.Run()
	order = nil
	s.Write("/k", "v")
	order = append(order, "write-returned")
	eng.Run()
	if len(order) != 2 || order[0] != "write-returned" {
		t.Fatalf("watch fired synchronously: %v", order)
	}
}

func TestPermissions(t *testing.T) {
	_, s := newStore()
	s.Write("/local/domain/5/secret", "key")
	s.SetPerms("/local/domain/5", 5, []DomID{5})

	if _, err := s.ReadAs(7, "/local/domain/5/secret"); err == nil {
		t.Fatal("foreign domain read allowed")
	}
	if v, err := s.ReadAs(5, "/local/domain/5/secret"); err != nil || v != "key" {
		t.Fatalf("owner read = %q, %v", v, err)
	}
	if _, err := s.ReadAs(0, "/local/domain/5/secret"); err != nil {
		t.Fatal("Dom0 read denied")
	}
	if err := s.WriteAs(7, "/local/domain/5/secret", "x"); err == nil {
		t.Fatal("foreign write allowed")
	}
	if err := s.WriteAs(5, "/local/domain/5/secret", "x"); err != nil {
		t.Fatal(err)
	}
}

func TestWorldReadableByDefault(t *testing.T) {
	_, s := newStore()
	s.Write("/public", "v")
	if _, err := s.ReadAs(9, "/public"); err != nil {
		t.Fatalf("world-readable read denied: %v", err)
	}
}

func TestTxnCommitApplies(t *testing.T) {
	_, s := newStore()
	txn := s.Begin()
	txn.Write("/a", "1")
	txn.Write("/b", "2")
	if _, ok := s.Read("/a"); ok {
		t.Fatal("txn write visible before commit")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read("/a"); v != "1" {
		t.Fatal("txn write lost")
	}
}

func TestTxnReadsOwnWrites(t *testing.T) {
	_, s := newStore()
	s.Write("/a", "old")
	txn := s.Begin()
	txn.Write("/a", "new")
	if v, ok := txn.Read("/a"); !ok || v != "new" {
		t.Fatalf("txn read-own-write = %q,%v", v, ok)
	}
	txn.Remove("/a")
	if _, ok := txn.Read("/a"); ok {
		t.Fatal("txn read after own delete succeeded")
	}
	txn.Abort()
	if v, _ := s.Read("/a"); v != "old" {
		t.Fatal("aborted txn modified store")
	}
}

func TestTxnConflictOnRead(t *testing.T) {
	_, s := newStore()
	s.Write("/seq", "1")
	txn := s.Begin()
	txn.Read("/seq")
	s.Write("/seq", "2") // concurrent writer
	txn.Write("/out", "computed")
	if err := txn.Commit(); err == nil {
		t.Fatal("conflicting txn committed")
	}
	if s.Exists("/out") {
		t.Fatal("failed txn leaked writes")
	}
}

func TestTxnConflictOnWrite(t *testing.T) {
	_, s := newStore()
	txn := s.Begin()
	txn.Write("/slot", "mine")
	s.Write("/slot", "theirs")
	if err := txn.Commit(); err == nil {
		t.Fatal("write-write conflict committed")
	}
	if v, _ := s.Read("/slot"); v != "theirs" {
		t.Fatal("conflicting txn clobbered concurrent write")
	}
}

func TestTxnUseAfterFinishPanics(t *testing.T) {
	_, s := newStore()
	txn := s.Begin()
	txn.Abort()
	defer func() {
		if recover() == nil {
			t.Fatal("use after abort did not panic")
		}
	}()
	txn.Write("/x", "1")
}

func TestTxnRetrySucceeds(t *testing.T) {
	_, s := newStore()
	s.Write("/counter", "1")
	// First attempt conflicts; retry like a real client would.
	for attempt := 0; ; attempt++ {
		txn := s.Begin()
		v, _ := txn.Read("/counter")
		if attempt == 0 {
			s.Write("/counter", "5") // induce conflict only once
		}
		txn.Write("/counter", v+"0")
		if err := txn.Commit(); err == nil {
			break
		}
		if attempt > 3 {
			t.Fatal("retry never succeeded")
		}
	}
	if v, _ := s.Read("/counter"); v != "50" {
		t.Fatalf("counter = %q, want 50 (retry saw fresh value)", v)
	}
}

// Property: a write is always readable back, and List contains the new
// child, regardless of path shape.
func TestWriteReadProperty(t *testing.T) {
	prop := func(rawSegs []string, value string) bool {
		segs := make([]string, 0, len(rawSegs))
		for _, seg := range rawSegs {
			seg = strings.Map(func(r rune) rune {
				if r == '/' || r == 0 {
					return 'x'
				}
				return r
			}, seg)
			if seg != "" {
				segs = append(segs, seg)
			}
		}
		if len(segs) == 0 {
			return true
		}
		_, s := newStore()
		path := "/" + strings.Join(segs, "/")
		s.Write(path, value)
		got, ok := s.Read(path)
		return ok && got == value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaEnforced(t *testing.T) {
	_, s := newStore()
	s.Quota = 5
	s.SetPerms("/local/domain/7", 7, nil)
	for i := 0; i < 5; i++ {
		if err := s.WriteAs(7, fmt.Sprintf("/local/domain/7/key%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteAs(7, "/local/domain/7/one-too-many", "v"); err == nil {
		t.Fatal("quota not enforced")
	}
	// Overwrites of existing nodes do not consume quota.
	if err := s.WriteAs(7, "/local/domain/7/key0", "v2"); err != nil {
		t.Fatalf("overwrite hit quota: %v", err)
	}
	// Dom0 is exempt.
	for i := 0; i < 20; i++ {
		if err := s.WriteAs(0, fmt.Sprintf("/admin/%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if s.OwnedNodes(7) != 5 {
		t.Fatalf("owned = %d, want 5", s.OwnedNodes(7))
	}
	s.ReleaseQuota(7, 3)
	if err := s.WriteAs(7, "/local/domain/7/after-release", "v"); err != nil {
		t.Fatalf("write after release failed: %v", err)
	}
}
