// Package poolref exercises the kitelint pool ownership analysis against
// the real framepool API: leaks on early returns, double releases, and
// the legal endings (release, handoff, defer, retain).
package poolref

import "kite/internal/framepool"

func consume(b *framepool.Buf) {}

// leakOnEarlyReturn drops the buffer when n is negative.
func leakOnEarlyReturn(p *framepool.Pool, n int) {
	b := p.Get() // want `not released or handed off on every path`
	if n < 0 {
		return
	}
	b.Release()
}

// doubleRelease releases twice on the n<0 path.
func doubleRelease(p *framepool.Pool, n int) {
	b := p.Get()
	if n < 0 {
		b.Release()
	}
	b.Release() // want `double release`
}

// balanced releases exactly once on every path.
func balanced(p *framepool.Pool, n int) int {
	b := p.Get()
	if n < 0 {
		b.Release()
		return 0
	}
	n = b.Len()
	b.Release()
	return n
}

// handoff transfers ownership to consume; no Release required here.
func handoff(p *framepool.Pool) {
	b := p.Get()
	consume(b)
}

// deferred releases via defer on all return paths.
func deferred(p *framepool.Pool, n int) int {
	b := p.Get()
	defer b.Release()
	if n < 0 {
		return -1
	}
	return b.Len()
}

// retained hands a second reference to another holder before releasing
// its own.
func retained(p *framepool.Pool, keep func(*framepool.Buf)) {
	b := p.Get()
	keep(b.Retain())
	b.Release()
}

// loopBalanced acquires and releases inside one loop iteration.
func loopBalanced(p *framepool.Pool, rounds int) {
	for i := 0; i < rounds; i++ {
		b := p.Get()
		consume(b.Retain())
		b.Release()
	}
}
