package netback

import (
	"fmt"

	"kite/internal/bridge"
	"kite/internal/sim"
	"kite/internal/xen"
)

// A ServiceLane is the fleet-mode execution unit of the netback driver:
// one worker thread on one pinned vCPU (and one cluster shard) serving
// the single-queue VIFs of many tenant guests. One guest per
// pusher+soft_start pair does not survive contact with hundreds of
// guests — the task count explodes and a noisy guest's full rings keep
// its threads perpetually runnable, starving quieter tenants on the same
// vCPU. The lane replaces the per-VIF threads with one deficit-round-
// robin scheduler: every active member queue earns a byte quantum per
// round, a round serves each member's Tx ring and Rx backlog up to its
// accumulated deficit, and a member with remaining backlog stays in the
// round while a drained member leaves (and forfeits its deficit, per
// DRR). A tenant offering 10x load therefore gets exactly its share per
// round and no more.
//
// Round state lives in a slot-indexed member slab — deficit, owed-doorbell
// flag, and the active-ring links packed per member — rather than behind
// per-queue pointers: a round walks an intrusive doubly-linked ring of
// backlogged members only, doorbell arrival re-links a member in O(1), and
// teardown unlinks in O(1), so nothing in the lane's hot path costs
// O(members). Idle tenants are not in the ring and cost zero.
//
// Doorbells are batched the same way: the lane owns one xen.Demux group,
// every member port joins it, and a single scan per doorbell quantum
// drains the pending bitmap — one wake serves rings for many domains
// instead of one upcall per (domain, queue). Completion notifications
// are batched too: drains during a round mark the member slot instead of
// raising the tenant's event channel inline, and the round flushes every
// owed doorbell once at the end — at most one notification per member per
// round, issued back to back.
type ServiceLane struct {
	id  int
	eng *sim.Engine // the lane's cluster shard
	cpu *sim.CPU    // the backend worker vCPU
	// brLane is the lane's pinned bridge forwarding lane. All members
	// charge the lane vCPU in execution order, so their stamped bridge
	// arrival times are monotone — the single-producer contract
	// bridge.Lane.InputAt requires holds across tenants.
	brLane *bridge.Lane
	demux  *xen.Demux
	worker *sim.Task

	// quantum is the DRR byte allotment added to each active member per
	// round. It is deliberately several MTUs so a round moves a useful
	// burst per tenant; fairness is unaffected by the exact value.
	quantum int

	// members is the slot-indexed slab of per-member round state; slots
	// are assigned at join, recycled through freeSlots at detach, and
	// addressed by vifQueue.laneSlot.
	members   []laneMember
	freeSlots []int32
	// head is the active ring: a circular doubly-linked list (slot
	// indices) of members with backlog, in activation order; -1 when
	// empty.
	head    int32
	activeN int
	// served is the round's scratch list of visited slots, reused so the
	// end-of-round doorbell flush allocates nothing.
	served []int32

	rounds uint64
}

// laneMember is one tenant queue's round state, packed in the lane slab.
type laneMember struct {
	q       *vifQueue
	deficit int
	// notify records a completion doorbell owed to this member, flushed
	// once at the end of the round instead of per drain call.
	notify bool
	// next/prev are the active-ring links (slot indices); next == -1 means
	// the member is not backlogged and costs no round time.
	next, prev int32
}

// laneQuantum is the default per-tenant byte allotment per DRR round.
const laneQuantum = 16 << 10

// NewServiceLane creates fleet lane id for dom: worker pinned to cpu on
// shard, forwarding on fwdCPU, doorbells demuxed at the costs' wake
// latency.
func NewServiceLane(id int, dom *xen.Domain, shard *sim.Engine, cpu *sim.CPU,
	br *bridge.Bridge, fwdCPU *sim.CPU, costs Costs) *ServiceLane {

	l := &ServiceLane{id: id, eng: shard, cpu: cpu, quantum: laneQuantum, head: -1}
	cpu.SetEngine(shard)
	l.brLane = br.NewLane(fwdCPU)
	l.demux = dom.NewDemux(cpu, costs.WakeLatency)
	l.worker = sim.NewTask(shard, cpu, fmt.Sprintf("netback/lane%d", id),
		costs.WakeLatency, l.round)
	return l
}

// ID returns the lane index.
func (l *ServiceLane) ID() int { return l.id }

// Members returns how many tenant queues have joined the lane's demux.
func (l *ServiceLane) Members() int { return l.demux.Members() }

// Rounds returns how many DRR rounds the worker has executed.
func (l *ServiceLane) Rounds() uint64 { return l.rounds }

// DemuxStats reports the lane's doorbell batching: scans executed and
// member doorbells absorbed into them.
func (l *ServiceLane) DemuxStats() (scans, marks uint64) { return l.demux.Stats() }

// join assigns q a member slot in the lane slab (recycling departed
// tenants' slots) and returns its index.
func (l *ServiceLane) join(q *vifQueue) int32 {
	var s int32
	if n := len(l.freeSlots); n > 0 {
		s = l.freeSlots[n-1]
		l.freeSlots = l.freeSlots[:n-1]
	} else {
		s = int32(len(l.members))
		l.members = append(l.members, laneMember{}) //kite:alloc-ok slab grows to the member high-water mark
	}
	l.members[s] = laneMember{q: q, next: -1, prev: -1}
	return s
}

// link appends slot s to the active ring's tail (activation order).
//
//kite:hotpath
//kite:ringlink link
func (l *ServiceLane) link(s int32) {
	m := &l.members[s]
	if l.head < 0 {
		m.next, m.prev = s, s
		l.head = s
	} else {
		tail := l.members[l.head].prev
		m.prev, m.next = tail, l.head
		l.members[tail].next = s
		l.members[l.head].prev = s
	}
	l.activeN++
}

// unlink removes slot s from the active ring in O(1).
//
//kite:hotpath
//kite:ringlink unlink
func (l *ServiceLane) unlink(s int32) {
	m := &l.members[s]
	if m.next == s {
		l.head = -1
	} else {
		l.members[m.prev].next = m.next
		l.members[m.next].prev = m.prev
		if l.head == s {
			l.head = m.next
		}
	}
	m.next, m.prev = -1, -1
	l.activeN--
}

// detach removes a departing tenant's queue from the lane: its doorbell
// leaves the demux group, any spot in the current DRR round is forfeited
// in O(1), and its slab slot returns to the free list. Runs during
// VIF.Shutdown, before the queue's port closes — a churning fleet must not
// pin one dead member slot per departure.
func (l *ServiceLane) detach(q *vifQueue) {
	l.demux.Leave(q.port)
	s := q.laneSlot
	if s < 0 {
		return
	}
	if l.members[s].next >= 0 {
		l.unlink(s)
	}
	l.members[s] = laneMember{next: -1, prev: -1}
	l.freeSlots = append(l.freeSlots, s)
	q.laneSlot = -1
}

// activate links q into the DRR round (if not already there) in O(1) and
// wakes the worker.
//
//kite:hotpath
func (l *ServiceLane) activate(q *vifQueue) {
	if l.members[q.laneSlot].next < 0 {
		l.link(q.laneSlot)
	}
	l.worker.Wake()
}

// round is the worker body: one deficit-round-robin pass over the active
// ring. Each backlogged member earns a quantum, serves its Tx ring then
// its Rx backlog against the accumulated deficit, and stays linked only if
// budget — not work — ran out. Members are visited in activation order;
// the pass touches exactly the backlogged members plus one owed-doorbell
// flush per served member at the end, never the full fleet. Another round
// is scheduled while anyone still has backlog.
//
//kite:hotpath
func (l *ServiceLane) round() {
	n := l.activeN
	if n == 0 {
		return
	}
	l.rounds++
	served := l.served[:0]
	s := l.head
	for i := 0; i < n; i++ {
		m := &l.members[s]
		next := m.next
		q := m.q
		m.deficit += l.quantum
		used, more := q.drainTxBudget(m.deficit)
		m.deficit -= used
		rx := m.deficit
		if rx < 0 {
			rx = 0
		}
		used, rxMore := q.drainRxBudget(rx)
		m.deficit -= used
		if !more && !rxMore {
			// Drained: leave the round and forfeit the unused deficit, so
			// idle tenants cannot bank credit against future backlogs.
			l.unlink(s)
			m.deficit = 0
		}
		served = append(served, s) //kite:alloc-ok scratch grows to the round high-water mark
		s = next
	}
	// Flush completion doorbells once per round across members: each served
	// member raises at most one notification, issued back to back so the
	// event-channel warm path prices the burst.
	for _, s := range served {
		m := &l.members[s]
		if m.notify {
			m.notify = false
			m.q.v.dom.Notify(m.q.port)
		}
	}
	l.served = served[:0]
	if l.activeN > 0 {
		l.worker.Wake()
	}
}
