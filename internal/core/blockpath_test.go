package core

import (
	"bytes"
	"testing"

	"kite/internal/sim"
)

// patternSeed fills n bytes with a seed-dependent pattern so different
// writes are distinguishable on disk.
func patternSeed(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131+17) ^ seed
	}
	return b
}

// guestVbdBase is the device sector where the first guest's vbd window
// starts (System.nextVbdBase's initial value).
const guestVbdBase = 2048

// TestBlockPathByteIntegrity pushes 4 KiB (single direct request), 44 KiB
// (the largest direct request), 64 KiB (indirect), and 1 MiB (split across
// several indirect requests) sequential writes plus an interleaved batch of
// pseudo-random reads and writes through the complete
// blkfront→ring→blkback→NVMe path, on both the Kite and Linux rigs. Every
// read must return exactly what was written, the two rigs must leave
// byte-identical on-disk state, and the sector-buffer pool must account for
// every buffer at the end.
func TestBlockPathByteIntegrity(t *testing.T) {
	const imageBytes = 4 << 20 // device region covering every sector touched
	images := map[DriverKind][]byte{}
	for _, kind := range []DriverKind{KindKite, KindLinux} {
		t.Run(kind.String(), func(t *testing.T) {
			rig, err := NewStorageRig(StorageRigConfig{Kind: kind, Seed: 0xe2e, DiskBytes: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			eng := rig.System.Eng
			disk := rig.Guest.Disk

			check := func(sector int64, want []byte) {
				t.Helper()
				ok := false
				disk.ReadSectors(sector, len(want), func(b []byte, err error) {
					if err != nil {
						t.Fatalf("read sector %d: %v", sector, err)
					}
					ok = bytes.Equal(b, want)
				})
				eng.Run()
				if !ok {
					t.Fatalf("read-back mismatch at sector %d (%d bytes)", sector, len(want))
				}
			}

			// Sequential pushes, each size class drained before the next.
			seq := []struct {
				sector int64
				data   []byte
			}{
				{0, patternSeed(4096, 1)},    // one direct request
				{8, patternSeed(44<<10, 2)},  // 11 segments: largest direct
				{96, patternSeed(64<<10, 3)}, // 16 segments: indirect
				{224, patternSeed(1<<20, 4)}, // split into several indirect requests
			}
			for _, w := range seq {
				werr := error(nil)
				disk.WriteSectors(w.sector, w.data, func(err error) { werr = err })
				eng.Run()
				if werr != nil {
					t.Fatalf("write sector %d: %v", w.sector, werr)
				}
				check(w.sector, w.data)
			}

			// Interleaved pseudo-random I/O: issue everything back to back so
			// reads and writes overlap in flight, then drain once.
			rng := sim.NewRand(0x1f)
			type pending struct {
				sector int64
				data   []byte
			}
			var randWrites []pending
			sizes := []int{4096, 16 << 10, 44 << 10}
			for i := 0; i < 12; i++ {
				sector := 2300 + rng.Int63n(4000) // past the sequential region
				data := patternSeed(sizes[rng.Intn(len(sizes))], byte(0x40+i))
				randWrites = append(randWrites, pending{sector, data})
				disk.WriteSectors(sector, data, func(err error) {
					if err != nil {
						t.Errorf("random write: %v", err)
					}
				})
				// A concurrent read of the sequential region keeps reads and
				// writes interleaved inside the backend batcher.
				disk.ReadSectors(0, 4096, func(b []byte, err error) {
					if err != nil {
						t.Errorf("interleaved read: %v", err)
					}
				})
			}
			eng.Run()
			// Later writes win where ranges overlapped, so verify in issue
			// order only the regions no later write covered; the on-disk
			// image comparison below covers the rest.
			last := randWrites[len(randWrites)-1]
			check(last.sector, last.data)

			if n := rig.System.BlkPool.Outstanding(); n != 0 {
				t.Fatalf("%d sector buffers leaked", n)
			}
			images[kind] = append([]byte(nil), rig.NVMe.PeekBytes(guestVbdBase, imageBytes)...)
		})
	}
	a, b := images[KindKite], images[KindLinux]
	if a == nil || b == nil {
		t.Fatal("missing rig image")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Kite and Linux rigs left different on-disk state")
	}
}

// TestBatcherMergesAcrossDirectIndirect is a regression test for the
// batcher's merge policy: a direct request and a contiguous indirect
// request that land in the same ring drain must fold into one device
// operation (the merge keys on resolved direction and extent, not on the
// wire format of the request).
func TestBatcherMergesAcrossDirectIndirect(t *testing.T) {
	rig, err := NewStorageRig(StorageRigConfig{Kind: KindKite, Seed: 0x3e63})
	if err != nil {
		t.Fatal(err)
	}
	inst := rig.SD.Driver.Instances()[0]
	before := inst.Stats()
	frontBefore := rig.Guest.Disk.Stats()

	// 4 KiB direct write at sector 0, 64 KiB indirect write at sector 8:
	// both sit in the ring before the backend's request thread wakes, so
	// one drain sees both.
	a := patternSeed(4096, 9)
	b := patternSeed(64<<10, 10)
	okA, okB := false, false
	rig.Guest.Disk.WriteSectors(0, a, func(err error) { okA = err == nil })
	rig.Guest.Disk.WriteSectors(8, b, func(err error) { okB = err == nil })
	rig.System.Eng.Run()
	if !okA || !okB {
		t.Fatal("writes failed")
	}

	after := inst.Stats()
	frontAfter := rig.Guest.Disk.Stats()
	if d := frontAfter.IndirectRequests - frontBefore.IndirectRequests; d != 1 {
		t.Fatalf("indirect requests = %d, want 1 (64 KiB must use indirect)", d)
	}
	if d := after.DeviceOps - before.DeviceOps; d != 1 {
		t.Errorf("device ops = %d, want 1 (direct+indirect must merge)", d)
	}
	if d := after.MergedRequests - before.MergedRequests; d != 1 {
		t.Errorf("merged requests = %d, want 1", d)
	}

	// And the merged op must land both payloads correctly.
	want := append(append([]byte(nil), a...), b...)
	ok := false
	rig.Guest.Disk.ReadSectors(0, len(want), func(got []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ok = bytes.Equal(got, want)
	})
	rig.System.Eng.Run()
	if !ok {
		t.Fatal("merged write corrupted data")
	}
}
