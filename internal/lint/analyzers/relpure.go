package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"kite/internal/lint/analysis"
	"kite/internal/lint/loader"
)

// Relpure proves the PriRelease purity contract from PR 6: a cross-shard
// post carrying sim.PriRelease runs AT THE BARRIER, in merge order, with
// no shard goroutine live — the cluster executes `p.fn(p.arg)` directly
// instead of queueing an inbox event. That is only sound if the handler
// is pure local bookkeeping: returning a resource one window early must
// only ever add availability. A release handler that schedules, posts,
// wakes a task, or touches device state would perturb the event timeline
// from outside any shard's window and break bit-for-bit determinism in a
// way no test matrix reliably catches.
//
// The analyzer finds every Engine.Post call whose priority argument is
// sim.PriRelease, statically resolves the handler argument — a func
// literal, a named function, or a long-lived func variable/field
// (framepool's recycleArg, a stage's flush, netback's txOutFreeF), for
// which every module-wide assignment of a literal to that variable is a
// candidate body — and walks the handler's transitive static call
// closure. Inside the closure it forbids:
//
//   - any call into kite/internal/sim (scheduling, posting, waking: the
//     barrier must not re-enter the scheduler)
//   - goroutine launches, channel operations, select (the barrier runs
//     single-threaded by design)
//   - calls outside the module other than sync/atomic, math, math/bits
//     (everything else is unvetted side effects)
//   - indirect calls through func values or interfaces (an unresolvable
//     callee cannot be proven pure)
//
// Pool free-list pushes, magazine splices, and counter increments — the
// sanctioned bookkeeping — all pass these rules without escapes.
var Relpure = &analysis.Analyzer{
	Name: "relpure",
	Doc:  "sim.PriRelease handlers must be pure local bookkeeping: no scheduling, posting, concurrency, or unvetted calls",
	Run:  runRelpure,
}

const enginePostFunc = "(*kite/internal/sim.Engine).Post"

func runRelpure(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 5 {
				return true
			}
			fn := staticCallee(pass.Pkg.Info, call)
			if fn == nil || fn.FullName() != enginePostFunc {
				return true
			}
			if !isPriRelease(pass.Pkg.Info, call.Args[2]) {
				return true
			}
			checkReleaseHandler(pass, call.Args[3])
			return true
		})
	}
	return nil
}

// isPriRelease reports whether the priority argument resolves to the
// sim.PriRelease constant.
func isPriRelease(info *types.Info, arg ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Name() == "PriRelease" && c.Pkg() != nil &&
		c.Pkg().Path() == "kite/internal/sim"
}

// handlerBody is one candidate function body a release post may execute.
type handlerBody struct {
	pkg  *loader.Package
	body *ast.BlockStmt
	name string
}

// checkReleaseHandler resolves the handler expression to its candidate
// bodies and purity-checks each.
func checkReleaseHandler(pass *analysis.Pass, h ast.Expr) {
	bodies, resolved := resolveHandler(pass, h, 0)
	if !resolved {
		pass.Reportf(h.Pos(),
			"relpure: PriRelease handler cannot be resolved statically; its purity is unprovable")
		return
	}
	w := &relWalk{pass: pass, site: h, seenFn: map[*types.Func]bool{}, seenBody: map[*ast.BlockStmt]bool{}}
	for _, b := range bodies {
		w.checkBody(b)
	}
}

// resolveHandler maps a handler expression to the function bodies it can
// denote: a literal is itself; a named function is its declaration; a
// variable or field is every literal/function assigned to it anywhere in
// the module (release handlers are long-lived values bound once, so the
// assignment set IS the candidate set).
func resolveHandler(pass *analysis.Pass, h ast.Expr, depth int) ([]handlerBody, bool) {
	if depth > 4 {
		return nil, false
	}
	info := pass.Pkg.Info
	switch e := ast.Unparen(h).(type) {
	case *ast.FuncLit:
		return []handlerBody{{pkg: pass.Pkg, body: e.Body, name: "func literal"}}, true
	case *ast.Ident, *ast.SelectorExpr:
		id := identOf(e)
		switch obj := info.Uses[id].(type) {
		case *types.Func:
			fd := pass.Module.FuncDecl(obj)
			if fd == nil {
				return nil, false
			}
			return []handlerBody{{pkg: fd.Pkg, body: fd.Decl.Body, name: obj.Name()}}, true
		case *types.Var:
			return assignedHandlers(pass, obj, depth)
		}
	}
	return nil, false
}

func identOf(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// assignedHandlers finds every module-wide binding of a func value to the
// variable or struct field obj.
func assignedHandlers(pass *analysis.Pass, obj *types.Var, depth int) ([]handlerBody, bool) {
	var out []handlerBody
	ok := true
	for _, pkg := range pass.Module.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ValueSpec:
					for i, name := range x.Names {
						if pkg.Info.Defs[name] == obj && i < len(x.Values) {
							sub := &analysis.Pass{Analyzer: pass.Analyzer, Pkg: pkg, Module: pass.Module, Report: pass.Report}
							bs, r := resolveHandler(sub, x.Values[i], depth+1)
							out = append(out, bs...)
							ok = ok && r
						}
					}
				case *ast.AssignStmt:
					for i, l := range x.Lhs {
						if i >= len(x.Rhs) || !lhsIs(pkg.Info, l, obj) {
							continue
						}
						if isNilIdent(x.Rhs[i]) {
							continue
						}
						sub := &analysis.Pass{Analyzer: pass.Analyzer, Pkg: pkg, Module: pass.Module, Report: pass.Report}
						bs, r := resolveHandler(sub, x.Rhs[i], depth+1)
						out = append(out, bs...)
						ok = ok && r
					}
				}
				return true
			})
		}
	}
	return out, ok && len(out) > 0
}

// lhsIs reports whether an assignment target denotes obj (a plain
// variable or a field selector).
func lhsIs(info *types.Info, l ast.Expr, obj *types.Var) bool {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		return info.Defs[x] == obj || info.Uses[x] == obj
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj() == obj
		}
		return info.Uses[x.Sel] == obj
	}
	return false
}

// relWalk purity-checks the transitive static call closure of one release
// handler.
type relWalk struct {
	pass     *analysis.Pass
	site     ast.Expr
	seenFn   map[*types.Func]bool
	seenBody map[*ast.BlockStmt]bool
}

func (w *relWalk) checkBody(b handlerBody) {
	if b.body == nil || w.seenBody[b.body] {
		return
	}
	w.seenBody[b.body] = true
	info := b.pkg.Info
	ast.Inspect(b.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			w.pass.Reportf(x.Pos(), "relpure: PriRelease handler %s launches a goroutine; the barrier runs single-threaded", b.name)
		case *ast.SendStmt:
			w.pass.Reportf(x.Pos(), "relpure: PriRelease handler %s sends on a channel", b.name)
		case *ast.SelectStmt:
			w.pass.Reportf(x.Pos(), "relpure: PriRelease handler %s selects on channels", b.name)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.pass.Reportf(x.Pos(), "relpure: PriRelease handler %s receives from a channel", b.name)
			}
		case *ast.CallExpr:
			w.checkCall(b, x, info)
		}
		return true
	})
}

func (w *relWalk) checkCall(b handlerBody, call *ast.CallExpr, info *types.Info) {
	fun := ast.Unparen(call.Fun)
	// Type conversions and builtins (append to a free list, clear, copy,
	// panic on a violated invariant) are pure bookkeeping.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	fn := staticCallee(info, call)
	if fn == nil {
		// A call through a func value or interface: the target is unknown,
		// so its purity is unprovable. (Method expressions on funclit-typed
		// fields land here too.)
		w.pass.Reportf(call.Pos(),
			"relpure: PriRelease handler %s makes an indirect call that cannot be proven pure", b.name)
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error and friends
	}
	if pkg.Path() == "kite/internal/sim" {
		w.pass.Reportf(call.Pos(),
			"relpure: PriRelease handler %s re-enters the scheduler via sim.%s; release posts run at the barrier and must not schedule, post, or wake",
			b.name, fn.Name())
		return
	}
	if !w.pass.Module.InModule(pkg) {
		if extAllowed(fn) {
			return
		}
		w.pass.Reportf(call.Pos(),
			"relpure: PriRelease handler %s calls %s.%s outside the module; only sync/atomic and math are purity-vetted",
			b.name, pkg.Path(), fn.Name())
		return
	}
	// In-module callee: descend.
	if w.seenFn[fn] {
		return
	}
	w.seenFn[fn] = true
	fd := w.pass.Module.FuncDecl(fn)
	if fd == nil || fd.Decl.Body == nil {
		return
	}
	w.checkBody(handlerBody{pkg: fd.Pkg, body: fd.Decl.Body, name: b.name + " -> " + fn.Name()})
}
