// Package lint wires the kitelint analyzer suite together: it loads the
// whole module through internal/lint/loader, runs every analyzer over
// every package, and returns position-sorted, deduplicated diagnostics.
// Both cmd/kitelint and the clean-tree meta-test drive this entry point,
// so the CLI and `go test` enforce exactly the same rules.
package lint

import (
	"fmt"
	"sort"
	"time"

	"kite/internal/lint/analysis"
	"kite/internal/lint/analyzers"
	"kite/internal/lint/loader"
)

// LoadModule typechecks every package of the module containing dir and
// returns the whole-program view.
func LoadModule(dir string) (*analysis.Module, error) {
	l, err := loader.New(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	return analysis.NewModule(l.ModulePath, pkgs), nil
}

// Timing records one analyzer's wall-clock over the whole module; the
// module load/typecheck happens once before any analyzer runs, so these
// measure analysis alone.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run executes the given analyzers over every package of the module and
// returns the findings sorted by position. Findings that landed on the
// same position from different passes (a shared callee reached from hot
// roots in two packages) are reported once.
func Run(mod *analysis.Module, as []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	diags, _, err := RunTimed(mod, as)
	return diags, err
}

// RunTimed is Run plus per-analyzer wall-clock, for `kitelint -v`.
func RunTimed(mod *analysis.Module, as []*analysis.Analyzer) ([]analysis.Diagnostic, []Timing, error) {
	type key struct {
		analyzer string
		pos      string
		msg      string
	}
	seen := make(map[key]bool)
	var out []analysis.Diagnostic
	timings := make([]Timing, 0, len(as))
	for _, a := range as {
		start := time.Now()
		for _, pkg := range mod.Pkgs {
			pass := &analysis.Pass{
				Analyzer: a,
				Pkg:      pkg,
				Module:   mod,
				Report: func(d analysis.Diagnostic) {
					k := key{d.Analyzer, mod.Fset.Position(d.Pos).String(), d.Message}
					if seen[k] {
						return
					}
					seen[k] = true
					out = append(out, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Since(start)})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := mod.Fset.Position(out[i].Pos), mod.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Message < out[j].Message
	})
	return out, timings, nil
}

// All returns the full analyzer suite.
func All() []*analysis.Analyzer { return analyzers.All() }

// Format renders one diagnostic the way go vet does.
func Format(mod *analysis.Module, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: [%s] %s", mod.Fset.Position(d.Pos), d.Analyzer, d.Message)
}
