package blkback

import (
	"fmt"

	"kite/internal/blkif"
	"kite/internal/nvme"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

const scanCost = 5 * sim.Microsecond

// Driver is the storage backend driver: it watches the driver domain's
// backend/vbd subtree, advertises device properties for each new vbd
// (§4.4: sectors, sector size, flush, persistent grants, indirect limit),
// and pairs frontends with blkback instances through the same
// backend-invocation thread pattern as networking (§4.1). The vbd window
// on the physical device comes from the toolstack-written "params" key
// ("<base>:<sectors>").
type Driver struct {
	eng   *sim.Engine
	dom   *xen.Domain
	bus   *xenbus.Bus
	reg   *blkif.Registry
	dev   *nvme.Device
	costs Costs

	lanes    []*ServiceLane // fleet mode: shared DRR workers
	laneNext int            // round-robin lane assignment cursor
	tenants  *xenbus.TenantRegistry

	thread    *sim.Task
	instances map[string]*Instance
	order     []*Instance     // live instances in attach order (deterministic walks)
	watched   map[string]bool // frontend paths already under watch

	// OnInstance is invoked when a new vbd connects (the block status
	// application uses it).
	OnInstance func(*Instance)

	invocations uint64
}

// NewDriver starts the backend driver in dom, exporting windows of dev.
func NewDriver(eng *sim.Engine, dom *xen.Domain, bus *xenbus.Bus,
	reg *blkif.Registry, dev *nvme.Device, costs Costs) *Driver {

	drv := &Driver{
		eng: eng, dom: dom, bus: bus, reg: reg, dev: dev, costs: costs,
		instances: make(map[string]*Instance),
		watched:   make(map[string]bool),
	}
	drv.thread = sim.NewTask(eng, dom.CPUs.CPU(0), dom.Name+"/vbd-invoker",
		costs.WakeLatency, drv.scan)
	bus.Store().Watch(xenbus.BackendRoot(xenbus.DomID(dom.ID), xenstore.DevVbd), "blkback",
		func(string, string) { drv.thread.Wake() })
	return drv
}

// SetFleet switches the driver into fleet mode with n shared DRR lanes:
// lane i's worker runs on vCPU i (mod the domain's vCPU count), and
// connecting single-queue frontends are assigned to lanes round-robin
// instead of getting dedicated request threads. The backend-invocation
// thread moves to the domain's last vCPU. Must be called before any
// frontend connects.
func (d *Driver) SetFleet(n int) {
	d.thread = sim.NewTask(d.eng, d.dom.CPUs.CPU(d.dom.CPUs.Len()-1),
		d.dom.Name+"/vbd-invoker", d.costs.WakeLatency, d.scan)
	d.lanes = make([]*ServiceLane, n)
	for i := range d.lanes {
		d.lanes[i] = NewServiceLane(i, d.dom, d.eng, i%d.dom.CPUs.Len(), d.costs)
	}
}

// SetTenantRegistry installs the control-plane ledger the driver reports
// attach/detach events to.
func (d *Driver) SetTenantRegistry(r *xenbus.TenantRegistry) { d.tenants = r }

// Lanes returns the fleet service lanes (nil in dedicated-worker mode).
func (d *Driver) Lanes() []*ServiceLane { return d.lanes }

// Instances returns the live blkback instances in attach order.
func (d *Driver) Instances() []*Instance {
	out := make([]*Instance, len(d.order))
	copy(out, d.order)
	return out
}

// Invocations counts pairing attempts.
func (d *Driver) Invocations() uint64 { return d.invocations }

func (d *Driver) scan() {
	d.dom.CPUs.Charge(scanCost)
	st := d.bus.Store()
	root := xenbus.BackendRoot(xenbus.DomID(d.dom.ID), xenstore.DevVbd)
	for _, frontStr := range st.List(root) {
		var frontDom int
		if _, err := fmt.Sscanf(frontStr, "%d", &frontDom); err != nil {
			continue
		}
		for _, devStr := range st.List(root + "/" + frontStr) {
			var devid int
			if _, err := fmt.Sscanf(devStr, "%d", &devid); err != nil {
				continue
			}
			backPath := root + "/" + frontStr + "/" + devStr
			if _, exists := d.instances[backPath]; exists {
				continue
			}
			d.tryPair(backPath, xen.DomID(frontDom), devid)
		}
	}
}

func (d *Driver) tryPair(backPath string, frontDom xen.DomID, devid int) {
	st := d.bus.Store()
	frontPath, ok := st.Read(backPath + "/" + xenstore.KeyFrontend)
	if !ok {
		return
	}
	switch d.bus.State(backPath) {
	case xenbus.StateClosed, xenbus.StateClosing:
		return
	}
	base, sectors, err := d.window(backPath)
	if err != nil {
		_ = d.bus.SwitchState(backPath, xenbus.StateClosed)
		return
	}

	if d.bus.State(backPath) == xenbus.StateInitialising {
		// Advertise device properties (§4.4 initialization), including how
		// many hardware queues we can serve: one per driver-domain vCPU,
		// capped like xen-blkback's max_queues module parameter.
		st.Writef(backPath+"/"+xenstore.KeySectors, "%d", sectors)
		st.Writef(backPath+"/"+xenstore.KeySectorSize, "%d", blkif.SectorSize)
		d.bus.WriteFeature(backPath, xenstore.KeyFeatureFlushCache, true)
		d.bus.WriteFeature(backPath, xenstore.KeyFeaturePersistent, d.costs.Persistent)
		if d.costs.Indirect {
			st.Writef(backPath+"/"+xenstore.KeyFeatureMaxIndirect, "%d", blkif.MaxSegsIndirect)
		}
		maxq := d.dom.CPUs.Len()
		if maxq > blkif.MaxQueues {
			maxq = blkif.MaxQueues
		}
		st.Writef(backPath+"/"+xenstore.KeyMultiQueueMaxQueues, "%d", maxq)
		_ = d.bus.SwitchState(backPath, xenbus.StateInitWait)
	}

	fs := d.bus.State(frontPath)
	if fs != xenbus.StateInitialised && fs != xenbus.StateConnected {
		if !d.watched[frontPath] {
			d.watched[frontPath] = true
			d.bus.OnStateChange(frontPath, func(xenbus.State) { d.thread.Wake() })
		}
		return
	}

	d.invocations++
	// Multi-queue frontends publish per-queue event channels under
	// queue-N/; single-queue ones keep the legacy flat key.
	nq := d.bus.ReadNumQueues(frontPath, xenstore.KeyMultiQueueNumQueues)
	ports := make([]xen.Port, nq)
	if nq == 1 {
		port, ok := st.ReadInt(frontPath + "/" + xenstore.KeyEventChannel)
		if !ok {
			return
		}
		ports[0] = xen.Port(port)
	} else {
		for i := 0; i < nq; i++ {
			port, ok := st.ReadInt(xenbus.QueuePath(frontPath, i) + "/" + xenstore.KeyEventChannel)
			if !ok {
				return
			}
			ports[i] = xen.Port(port)
		}
	}
	ch, ok := d.reg.Claim(frontDom, devid)
	if !ok {
		return
	}
	if ch.NumQueues() != nq {
		return // store and registry disagree; a later watch retries
	}
	var inst *Instance
	if d.lanes != nil && nq == 1 {
		lane := d.lanes[d.laneNext%len(d.lanes)]
		d.laneNext++
		inst, err = NewInstanceOnLane(d.eng, d.dom, frontDom, devid, ch, ports,
			d.dev, base, sectors, d.costs, lane)
	} else {
		inst, err = NewInstance(d.eng, d.dom, frontDom, devid, ch, ports,
			d.dev, base, sectors, d.costs)
	}
	if err != nil {
		_ = d.bus.SwitchState(backPath, xenbus.StateClosed)
		return
	}
	d.instances[backPath] = inst
	d.order = append(d.order, inst)
	if d.tenants != nil {
		d.tenants.AttachVBD(xenbus.DomID(frontDom))
	}
	_ = d.bus.SwitchState(backPath, xenbus.StateConnected)

	d.bus.OnStateChange(frontPath, func(s xenbus.State) {
		if s == xenbus.StateClosing || s == xenbus.StateClosed || s == xenbus.StateUnknown {
			d.removeInstance(backPath)
		}
	})
	if d.OnInstance != nil {
		d.OnInstance(inst)
	}
}

// window parses the toolstack's "params" key: "<baseSector>:<sectors>".
func (d *Driver) window(backPath string) (base, sectors int64, err error) {
	v, ok := d.bus.Store().Read(backPath + "/" + xenstore.KeyParams)
	if !ok {
		return 0, 0, fmt.Errorf("blkback: %s missing params", backPath)
	}
	if _, err := fmt.Sscanf(v, "%d:%d", &base, &sectors); err != nil {
		return 0, 0, fmt.Errorf("blkback: bad params %q: %w", v, err)
	}
	if base < 0 || sectors <= 0 || base+sectors > d.dev.CapacitySectors() {
		return 0, 0, fmt.Errorf("blkback: window %d:%d exceeds device", base, sectors)
	}
	return base, sectors, nil
}

func (d *Driver) removeInstance(backPath string) {
	inst := d.instances[backPath]
	if inst == nil {
		return
	}
	delete(d.instances, backPath)
	for i, in := range d.order {
		if in == inst {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	inst.Shutdown()
	if d.tenants != nil {
		d.tenants.DetachVBD(xenbus.DomID(inst.frontDom))
	}
	if d.bus.Store().Exists(backPath) {
		_ = d.bus.SwitchState(backPath, xenbus.StateClosed)
	}
}

// Shutdown tears down every instance in attach order.
func (d *Driver) Shutdown() {
	for len(d.order) > 0 {
		inst := d.order[0]
		for path, in := range d.instances {
			if in == inst {
				d.removeInstance(path)
				break
			}
		}
	}
}
