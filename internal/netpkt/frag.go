package netpkt

import "fmt"

// FragmentIPv4 splits an IP payload into MTU-sized IPv4 packets sharing
// one identification value. Payloads that fit return a single packet.
// Fragment offsets are in 8-byte units per RFC 791, so the per-fragment
// payload is rounded down to a multiple of 8.
//
// This allocating form is kept for tests and cold paths; the netstack hot
// path fragments directly into pooled buffers.
func FragmentIPv4(h IPv4Header, payload []byte, mtu int) [][]byte {
	maxData := (mtu - IPHeaderLen) &^ 7
	if maxData <= 0 {
		panic(fmt.Sprintf("netpkt: mtu %d cannot carry ipv4", mtu))
	}
	if len(payload) <= mtu-IPHeaderLen {
		hh := h
		hh.Flags = 0
		hh.FragOff = 0
		return [][]byte{hh.Marshal(payload)}
	}
	var out [][]byte
	for off := 0; off < len(payload); off += maxData {
		end := off + maxData
		more := uint8(FlagMoreFragments)
		if end >= len(payload) {
			end = len(payload)
			more = 0
		}
		hh := h
		hh.Flags = more
		hh.FragOff = uint16(off / 8)
		out = append(out, hh.Marshal(payload[off:end]))
	}
	return out
}

type fragKey struct {
	src, dst IP
	id       uint16
	proto    uint8
}

// span is a contiguous byte range [off, end) already received.
type span struct {
	off, end int
}

// fragBuf accumulates one datagram directly in place: each fragment is
// copied once at its final offset, and coverage is tracked as a sorted list
// of merged spans. fragBufs are recycled through the Reassembler's freelist
// so steady-state reassembly does not allocate.
type fragBuf struct {
	buf      []byte
	spans    []span
	haveLast bool
	total    int
}

// Reassembler reassembles fragmented IPv4 packets. It is used by receive
// paths (guest network stacks and host endpoints).
type Reassembler struct {
	pending  map[fragKey]*fragBuf
	freelist []*fragBuf
	// Drops counts datagrams abandoned because of overlapping/duplicate
	// fragments; exposed for diagnostics.
	Drops uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[fragKey]*fragBuf)}
}

// PendingCount returns how many partially reassembled datagrams are held.
func (r *Reassembler) PendingCount() int { return len(r.pending) }

// Push offers one IPv4 packet. If it completes a datagram (or was never
// fragmented) the full payload is returned with done=true. The returned
// slice aliases reassembler-owned storage for completed fragmented
// datagrams and is only valid until the next Push — callers must consume
// (or copy) it synchronously.
func (r *Reassembler) Push(h *IPv4Header, payload []byte) (full []byte, done bool) {
	if h.FragOff == 0 && h.Flags&FlagMoreFragments == 0 {
		return payload, true
	}
	key := fragKey{src: h.Src, dst: h.Dst, id: h.ID, proto: h.Proto}
	buf := r.pending[key]
	if buf == nil {
		buf = r.getFragBuf()
		r.pending[key] = buf
	}
	off := int(h.FragOff) * 8
	end := off + len(payload)
	// Copy once, directly at the fragment's final position.
	if end > len(buf.buf) {
		buf.grow(end)
	}
	copy(buf.buf[off:end], payload)
	buf.addSpan(off, end)
	if h.Flags&FlagMoreFragments == 0 {
		buf.haveLast = true
		buf.total = end
	}
	if !buf.haveLast || !buf.covers(buf.total) {
		return nil, false
	}
	out := buf.buf[:buf.total]
	delete(r.pending, key)
	r.putFragBuf(buf)
	return out, true
}

func (r *Reassembler) getFragBuf() *fragBuf {
	if n := len(r.freelist); n > 0 {
		b := r.freelist[n-1]
		r.freelist = r.freelist[:n-1]
		return b
	}
	return &fragBuf{}
}

// putFragBuf recycles b. Its byte storage stays allocated (and may still be
// aliased by a just-returned payload until the next Push reuses it).
func (r *Reassembler) putFragBuf(b *fragBuf) {
	b.spans = b.spans[:0]
	b.haveLast = false
	b.total = 0
	r.freelist = append(r.freelist, b)
}

// grow extends the backing buffer to at least n bytes, geometrically so a
// stream of fragments costs O(log n) allocations until the freelist's
// high-water mark absorbs them entirely.
func (b *fragBuf) grow(n int) {
	c := cap(b.buf)
	if c < 2048 {
		c = 2048
	}
	for c < n {
		c *= 2
	}
	nb := make([]byte, c)
	copy(nb, b.buf)
	b.buf = nb
}

// addSpan records coverage of [off, end), merging with overlapping or
// adjacent spans. The span list stays sorted by offset.
func (b *fragBuf) addSpan(off, end int) {
	// Find insertion point (lists are tiny: linear scan beats sort).
	i := 0
	for i < len(b.spans) && b.spans[i].off < off {
		i++
	}
	b.spans = append(b.spans, span{})
	copy(b.spans[i+1:], b.spans[i:])
	b.spans[i] = span{off: off, end: end}
	// Merge backward with predecessor, then forward over successors.
	if i > 0 && b.spans[i-1].end >= b.spans[i].off {
		if b.spans[i].end > b.spans[i-1].end {
			b.spans[i-1].end = b.spans[i].end
		}
		copy(b.spans[i:], b.spans[i+1:])
		b.spans = b.spans[:len(b.spans)-1]
		i--
	}
	for i+1 < len(b.spans) && b.spans[i].end >= b.spans[i+1].off {
		if b.spans[i+1].end > b.spans[i].end {
			b.spans[i].end = b.spans[i+1].end
		}
		copy(b.spans[i+1:], b.spans[i+2:])
		b.spans = b.spans[:len(b.spans)-1]
	}
}

// covers reports whether [0, total) is fully received.
func (b *fragBuf) covers(total int) bool {
	return len(b.spans) == 1 && b.spans[0].off == 0 && b.spans[0].end >= total
}
