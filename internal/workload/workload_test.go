package workload

import (
	"testing"

	"kite/internal/apps"
	"kite/internal/core"
	"kite/internal/netpkt"
	"kite/internal/sim"
)

func netRig(t *testing.T, kind core.DriverKind) *core.NetworkRig {
	t.Helper()
	rig, err := core.NewNetworkRig(kind, 42)
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func storRig(t *testing.T, kind core.DriverKind, disk, cache int64) *core.StorageRig {
	t.Helper()
	rig, err := core.NewStorageRig(core.StorageRigConfig{
		Kind: kind, Seed: 42, DiskBytes: disk, CacheBytes: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func TestNuttcpMeasuresThroughputAndLoss(t *testing.T) {
	rig := netRig(t, core.KindKite)
	var res NuttcpResult
	got := false
	Nuttcp(rig.Client, rig.Guest.Stack, 7.0, 8192, 20*sim.Millisecond, func(r NuttcpResult) {
		res = r
		got = true
	})
	if !rig.Testbed.System.RunReady(func() bool { return got }, 5_000_000) {
		t.Fatal("nuttcp livelocked")
	}
	if res.AchievedGbps < 4 || res.AchievedGbps > 10 {
		t.Fatalf("achieved = %.2f Gbps", res.AchievedGbps)
	}
	if res.LossPct < 0 || res.LossPct > 60 {
		t.Fatalf("loss = %.2f%%", res.LossPct)
	}
}

func TestPingSweep(t *testing.T) {
	rig := netRig(t, core.KindKite)
	var res PingResult
	got := false
	Ping(rig.Client.Stack, rig.GuestIP, 10, 100*sim.Microsecond, 56, func(r PingResult) {
		res = r
		got = true
	})
	if !rig.Testbed.System.RunReady(func() bool { return got }, 2_000_000) {
		t.Fatal("ping livelocked")
	}
	if res.Count != 10 || res.AvgRTT <= 0 || res.MaxRTT < res.AvgRTT {
		t.Fatalf("ping result = %+v", res)
	}
}

func TestNetperfRR(t *testing.T) {
	rig := netRig(t, core.KindKite)
	if err := EchoServer(rig.Guest.Stack, 12865); err != nil {
		t.Fatal(err)
	}
	var res NetperfResult
	got := false
	NetperfRR(rig.Client, rig.GuestIP, 12865, 50, 100*sim.Microsecond, func(r NetperfResult) {
		res = r
		got = true
	})
	if !rig.Testbed.System.RunReady(func() bool { return got }, 2_000_000) {
		t.Fatal("netperf livelocked")
	}
	if res.Transactions != 50 || res.AvgLatency <= 0 {
		t.Fatalf("netperf = %+v", res)
	}
}

func TestMemtierMix(t *testing.T) {
	rig := netRig(t, core.KindKite)
	srv, err := apps.NewKVServer(rig.Guest.Stack, 11211)
	if err != nil {
		t.Fatal(err)
	}
	var res MemtierResult
	got := false
	Memtier(rig.Client, rig.GuestIP, 11211, 110, 8192, 2, func(r MemtierResult) {
		res = r
		got = true
	})
	if !rig.Testbed.System.RunReady(func() bool { return got }, 5_000_000) {
		t.Fatal("memtier livelocked")
	}
	if res.Ops != 110 || res.AvgLatency <= 0 {
		t.Fatalf("memtier = %+v", res)
	}
	sets, gets, _ := srv.Counts()
	// 1:10 SET:GET plus two seeding SETs.
	if gets < 8*sets {
		t.Fatalf("ratio off: sets=%d gets=%d", sets, gets)
	}
}

func TestApacheBench(t *testing.T) {
	rig := netRig(t, core.KindKite)
	srv, err := apps.NewHTTPServer(rig.Guest.Stack, 80)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddRandomFile("/f512k", 512<<10, 5)
	var res ABResult
	got := false
	ApacheBench(rig.Client, rig.GuestIP, 80, "/f512k", 40, 8, func(r ABResult) {
		res = r
		got = true
	})
	if !rig.Testbed.System.RunReady(func() bool { return got }, 10_000_000) {
		t.Fatal("ab livelocked")
	}
	if res.Requests != 40 || res.Errors != 0 {
		t.Fatalf("ab = %+v", res)
	}
	if res.BodyBytes != 40*512<<10 {
		t.Fatalf("body bytes = %d", res.BodyBytes)
	}
	if res.ThroughputMBps <= 0 || res.RequestsPerSec <= 0 {
		t.Fatalf("rates = %+v", res)
	}
}

func TestWget(t *testing.T) {
	rig := netRig(t, core.KindKite)
	srv, _ := apps.NewHTTPServer(rig.Guest.Stack, 80)
	srv.AddRandomFile("/one", 64<<10, 9)
	var res WgetResult
	got := false
	Wget(rig.Client, rig.GuestIP, 80, "/one", func(r WgetResult) { res = r; got = true })
	if !rig.Testbed.System.RunReady(func() bool { return got }, 2_000_000) {
		t.Fatal("wget livelocked")
	}
	if res.Bytes != 64<<10 || res.MBps <= 0 {
		t.Fatalf("wget = %+v", res)
	}
}

func TestRedisBenchPipeline(t *testing.T) {
	rig := netRig(t, core.KindKite)
	if _, err := apps.NewKVServer(rig.Guest.Stack, 6379); err != nil {
		t.Fatal(err)
	}
	var set, get RedisBenchResult
	done := 0
	RedisBench(rig.Client, rig.GuestIP, 6379, "SET", 5, 100, 2000, 128, func(r RedisBenchResult) {
		set = r
		done++
		RedisBench(rig.Client, rig.GuestIP, 6379, "GET", 5, 100, 2000, 128, func(r RedisBenchResult) {
			get = r
			done++
		})
	})
	if !rig.Testbed.System.RunReady(func() bool { return done == 2 }, 10_000_000) {
		t.Fatal("redis bench livelocked")
	}
	if set.Ops != 2000 || get.Ops != 2000 {
		t.Fatalf("ops = %d/%d", set.Ops, get.Ops)
	}
	if set.OpsPerSec <= 0 || get.OpsPerSec <= 0 {
		t.Fatal("zero rates")
	}
	// GETs should be at least as fast as SETs.
	if get.OpsPerSec < set.OpsPerSec*0.7 {
		t.Fatalf("GET (%f) much slower than SET (%f)", get.OpsPerSec, set.OpsPerSec)
	}
}

func TestOLTPNetwork(t *testing.T) {
	rig := netRig(t, core.KindKite)
	db, err := apps.NewSQLDB(rig.Testbed.System.Eng, rig.Guest.Dom.CPUs,
		apps.SQLConfig{Tables: 10, Rows: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apps.NewSQLServer(rig.Guest.Stack, 3306, db); err != nil {
		t.Fatal(err)
	}
	var res OLTPResult
	got := false
	OLTPNetwork(rig.Client, rig.GuestIP, 3306, rig.Guest.Dom.CPUs,
		10, 100000, 5, 20*sim.Millisecond, func(r OLTPResult) {
			res = r
			got = true
		})
	if !rig.Testbed.System.RunReady(func() bool { return got }, 10_000_000) {
		t.Fatal("oltp livelocked")
	}
	if res.Transactions == 0 || res.QPS <= 0 {
		t.Fatalf("oltp = %+v", res)
	}
	if res.Queries != res.Transactions*(oltpPointsPerTx+oltpRangesPerTx) {
		t.Fatalf("query count %d for %d tx", res.Queries, res.Transactions)
	}
	if res.GuestCPUUtil <= 0 || res.GuestCPUUtil > 1 {
		t.Fatalf("cpu util = %f", res.GuestCPUUtil)
	}
}

func TestDDReadWrite(t *testing.T) {
	rig := storRig(t, core.KindKite, 2<<30, 0)
	var w, r DDResult
	done := 0
	DDWrite(rig.Guest.Disk, 32<<20, 128<<10, func(res DDResult) {
		w = res
		done++
		DDRead(rig.Guest.Disk, 32<<20, 128<<10, func(res DDResult) {
			r = res
			done++
		})
	})
	if !rig.Testbed.System.RunReady(func() bool { return done == 2 }, 5_000_000) {
		t.Fatal("dd livelocked")
	}
	if w.Bytes != 32<<20 || r.Bytes != 32<<20 {
		t.Fatalf("dd bytes = %d/%d", w.Bytes, r.Bytes)
	}
	if w.MBps < 100 || r.MBps < 100 {
		t.Fatalf("dd rates = %.0f/%.0f MB/s, implausibly low", w.MBps, r.MBps)
	}
}

func TestSysbenchFileIO(t *testing.T) {
	rig := storRig(t, core.KindKite, 4<<30, 8<<20)
	var res FileIOResult
	got := false
	SysbenchFileIO(rig.Testbed.System.Eng, rig.Guest.FS, FileIOConfig{
		Files: 8, TotalBytes: 64 << 20, BlockSize: 256 << 10,
		Threads: 4, Duration: 20 * sim.Millisecond, Seed: 1,
	}, func(r FileIOResult) { res = r; got = true })
	if !rig.Testbed.System.RunReady(func() bool { return got }, 20_000_000) {
		t.Fatal("fileio livelocked")
	}
	if res.Reads == 0 || res.Writes == 0 || res.MBps <= 0 {
		t.Fatalf("fileio = %+v", res)
	}
	// 3:2 ratio within statistical slack.
	ratio := float64(res.Reads) / float64(res.Writes)
	if ratio < 1.0 || ratio > 2.4 {
		t.Fatalf("read:write ratio = %.2f, want ~1.5", ratio)
	}
}

func TestFilebenchFileserver(t *testing.T) {
	rig := storRig(t, core.KindKite, 4<<30, 16<<20)
	var res FilebenchResult
	got := false
	Fileserver(rig.Testbed.System.Eng, rig.Guest.FS, FileserverConfig{
		Files: 20, MeanFile: 128 << 10, AppendSz: 1 << 10, IOSize: 64 << 10,
		Threads: 5, Duration: 20 * sim.Millisecond, Seed: 2, CPUs: rig.Guest.Dom.CPUs,
	}, func(r FilebenchResult) { res = r; got = true })
	if !rig.Testbed.System.RunReady(func() bool { return got }, 20_000_000) {
		t.Fatal("fileserver livelocked")
	}
	if res.Ops == 0 || res.MBps <= 0 || res.AvgLatency <= 0 {
		t.Fatalf("fileserver = %+v", res)
	}
}

func TestFilebenchWebserver(t *testing.T) {
	rig := storRig(t, core.KindKite, 4<<30, 16<<20)
	var res FilebenchResult
	got := false
	Webserver(rig.Testbed.System.Eng, rig.Guest.FS, WebserverConfig{
		Files: 40, MeanFile: 64 << 10, AppendSz: 16 << 10, IOSize: 64 << 10,
		Threads: 5, Duration: 20 * sim.Millisecond, Seed: 3, CPUs: rig.Guest.Dom.CPUs,
	}, func(r FilebenchResult) { res = r; got = true })
	if !rig.Testbed.System.RunReady(func() bool { return got }, 20_000_000) {
		t.Fatal("webserver livelocked")
	}
	if res.Ops == 0 || res.MBps <= 0 {
		t.Fatalf("webserver = %+v", res)
	}
}

func TestFilebenchMongo(t *testing.T) {
	rig := storRig(t, core.KindKite, 4<<30, 32<<20)
	var res FilebenchResult
	got := false
	Mongo(rig.Testbed.System.Eng, rig.Guest.FS, rig.Guest.Dom.CPUs, MongoConfig{
		Docs: 6, DocSize: 4 << 20, Users: 1, Duration: 30 * sim.Millisecond, Seed: 4,
	}, func(r FilebenchResult) { res = r; got = true })
	if !rig.Testbed.System.RunReady(func() bool { return got }, 20_000_000) {
		t.Fatal("mongo livelocked")
	}
	if res.Ops == 0 || res.MBps <= 0 || res.CPUPerOp <= 0 {
		t.Fatalf("mongo = %+v", res)
	}
}

func TestPerfDHCP(t *testing.T) {
	tb := core.NewTestbed(99)
	nd, err := tb.System.CreateNetworkDomain(core.NetworkDomainConfig{
		Kind: core.KindKite, NIC: tb.ServerNIC,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := tb.System.CreateDHCPDaemonVM(nd, netpkt.IPv4(10, 0, 0, 53),
		netpkt.IPv4(10, 0, 0, 100), 200)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(vm.Guest.Ready, 500000) {
		t.Fatal("daemon VM never ready")
	}
	var res PerfDHCPResult
	got := false
	PerfDHCP(tb.Client, 20, func(r PerfDHCPResult) { res = r; got = true })
	if !tb.System.RunReady(func() bool { return got }, 5_000_000) {
		t.Fatal("perfdhcp livelocked")
	}
	if res.Exchanges != 20 {
		t.Fatalf("exchanges = %d", res.Exchanges)
	}
	if res.AvgDiscoverOfer <= 0 || res.AvgRequestAck <= 0 {
		t.Fatalf("latencies = %+v", res)
	}
	// Both should be sub-5ms on the direct link (paper: ~0.7-0.8ms through
	// a real Xen stack).
	if res.AvgDiscoverOfer > 5*sim.Millisecond || res.AvgRequestAck > 5*sim.Millisecond {
		t.Fatalf("latencies implausible: %+v", res)
	}
}

func TestOLTPLocalStorage(t *testing.T) {
	rig := storRig(t, core.KindKite, 8<<30, 2<<20)
	db, err := apps.NewSQLDB(rig.Testbed.System.Eng, rig.Guest.Dom.CPUs,
		apps.SQLConfig{Tables: 4, Rows: 100000, Pool: rig.Guest.Pool})
	if err != nil {
		t.Fatal(err)
	}
	var res OLTPResult
	got := false
	OLTPLocal(db, rig.Guest.Dom.CPUs, rig.Testbed.System.Eng,
		4, 100000, 5, 20*sim.Millisecond, func(r OLTPResult) {
			res = r
			got = true
		})
	if !rig.Testbed.System.RunReady(func() bool { return got }, 20_000_000) {
		t.Fatal("local oltp livelocked")
	}
	if res.Transactions == 0 || res.TPS <= 0 {
		t.Fatalf("local oltp = %+v", res)
	}
	if rig.Guest.Pool.Stats().Misses == 0 {
		t.Fatal("disk-mode OLTP produced no cache misses")
	}
}
