package guestos

import (
	"fmt"
	"sort"
)

// RumprunProvidedSyscalls is the full syscall-equivalent surface the rump
// kernel layers can provide (NetBSD's anykernel components). A unikernel
// image links only the subset its single application declares — the rest
// is discarded at link time (§5.1.1), which is what makes Figure 4a's
// 14/18 counts possible and makes the discarded syscalls unexploitable.
var RumprunProvidedSyscalls = []string{
	// files + vnode layer
	"read", "write", "open", "close", "lseek", "pread", "pwrite",
	"fstat", "stat", "fsync", "sync", "ftruncate", "mkdir", "rmdir",
	"rename", "unlink", "chmod",
	// descriptors + control
	"ioctl", "fcntl", "dup", "pipe", "poll", "kqueue", "kevent",
	// memory
	"mmap", "munmap", "mprotect", "madvise",
	// time + sched
	"clock_gettime", "clock_settime", "nanosleep", "setitimer", "getitimer",
	// networking
	"socket", "bind", "listen", "accept", "connect", "sendto", "recvfrom",
	"sendmsg", "recvmsg", "setsockopt", "getsockopt", "shutdown",
	"getsockname", "getpeername",
	// misc
	"sysctl", "getpid", "getrandom", "umask",
}

// AppSpec declares a unikernel application: its footprint and the
// syscalls it actually calls (what the linker keeps).
type AppSpec struct {
	Name      string
	SizeBytes int64
	CodeBytes int64
	Syscalls  []string
}

// LinkUnikernel "compiles" an application against rumprun: it validates
// that every requested syscall is available from the rump kernel layers,
// discards everything else, and returns the resulting single-image
// profile. It is the reproduction's analogue of Kite's build (the
// build-rr.sh step of the artifact).
func LinkUnikernel(app AppSpec, drivers Component) (*Profile, error) {
	provided := make(map[string]bool, len(RumprunProvidedSyscalls))
	for _, s := range RumprunProvidedSyscalls {
		provided[s] = true
	}
	seen := make(map[string]bool, len(app.Syscalls))
	kept := make([]string, 0, len(app.Syscalls))
	for _, s := range app.Syscalls {
		if !provided[s] {
			return nil, fmt.Errorf("guestos: %s requires syscall %q, which rumprun cannot provide", app.Name, s)
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		kept = append(kept, s)
	}
	sort.Strings(kept)

	p := kiteBase("kite-"+app.Name,
		Component{Name: app.Name, Kind: KindApp, SizeBytes: app.SizeBytes, CodeBytes: app.CodeBytes},
		drivers, kept)
	return p, nil
}

// NetDriversComponent returns the NetBSD network driver bundle used by
// network-facing images.
func NetDriversComponent() Component {
	return Component{Name: "netbsd-net-drivers+tcpip", Kind: KindModule,
		SizeBytes: 1600 * kb, CodeBytes: 1200 * kb}
}

// BlockDriversComponent returns the NVMe/vnode bundle for storage images.
func BlockDriversComponent() Component {
	return Component{Name: "netbsd-nvme-driver+vnode", Kind: KindModule,
		SizeBytes: 1700 * kb, CodeBytes: 1300 * kb}
}
