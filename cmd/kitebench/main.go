// Command kitebench regenerates the paper's evaluation (§5): every figure
// and table, printed as text tables, plus the design-choice ablations.
//
// Usage:
//
//	kitebench [-full] [-only FIG7,FIG11] [-parallel N] [-ablations] [-blk] [-queues N] [-cores N]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// -full runs paper-scale workloads (more virtual seconds; wall-clock
// minutes); the default quick scale preserves every comparison's shape.
// -parallel N spreads independent experiments (and the Linux/Kite rig pair
// inside each) over up to N OS threads; output is byte-identical for any N
// because every simulation leg owns its entire world.
// -queues N runs the deterministic multi-queue workload (RSS-steered vif
// queues, striped vbd hardware queues) on rigs with N queues per device;
// its summary prints only queue-invariant totals and checksums, so the
// whole output stays byte-identical for any -parallel x -queues choice
// (scaling numbers live in the MQ benchmarks and BENCH_*.json instead).
// -cores N runs the sharded network leg's per-queue cluster shards on up
// to N worker goroutines; conservative lookahead windows make every line
// bit-identical to -cores 1 at any GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"kite/internal/experiments"
	"kite/internal/metrics"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. FIG7,FIG11)")
	parallel := flag.Int("parallel", 1, "max experiment legs to run concurrently")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	blk := flag.Bool("blk", false, "also run the deterministic block-path workload and print its summary")
	queues := flag.Int("queues", 0, "also run the deterministic multi-queue workload with this many queues per device")
	guests := flag.Int("guests", 0, "also run the fleet workload: this many single-queue tenants on shared DRR service lanes")
	cores := flag.Int("cores", 1, "worker goroutines for the multi-queue and fleet workloads' cluster shards")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit (after a final GC)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kitebench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kitebench: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kitebench: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "kitebench: %v\n", err)
				os.Exit(2)
			}
		}()
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	fmt.Printf("kitebench: scale=%s parallel=%d\n\n", scale.Name, *parallel)

	specs := experiments.Registry()
	if *only != "" {
		var err error
		specs, err = experiments.Lookup(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kitebench: %v\n", err)
			os.Exit(2)
		}
	}

	start := time.Now()
	results := experiments.RunAll(specs, scale, *parallel)
	elapsed := time.Since(start)

	for _, res := range results {
		fmt.Println(res.Table.String())
		for _, note := range res.Notes {
			fmt.Printf("  note: %s\n", note)
		}
		fmt.Println()
	}

	events := experiments.EventsProcessed()
	// Counter totals are order-independent (atomic adds commute), so this
	// line is byte-identical for any -parallel. Gets and recycles differ by
	// the buffers still held when each simulation stops mid-flight.
	fmt.Printf("kitebench: framepool %d gets / %d recycles, persistent-rx %d hits / %d misses\n",
		metrics.FramePoolGets.Load(), metrics.FramePoolRecycles.Load(),
		metrics.NetRxPersistHits.Load(), metrics.NetRxPersistMisses.Load())
	fmt.Printf("kitebench: blkpool %d gets / %d recycles, nvme vectored %d reads / %d writes\n",
		metrics.BlkPoolGets.Load(), metrics.BlkPoolRecycles.Load(),
		metrics.NVMeVecReads.Load(), metrics.NVMeVecWrites.Load())

	if *blk {
		// A single self-contained simulation: the figures come from
		// simulated time and its own pool counters, so this line too is
		// byte-identical for any -parallel.
		bs := experiments.BlkSummary(scale)
		fmt.Printf("kitebench: blk %d ops / %d MB: %.1f ops/sec, %.1f MB/sec simulated, pool hit rate %.3f\n",
			bs.Ops, bs.Bytes>>20, bs.OpsPerSec, bs.BytesPerSec/1e6, bs.PoolHitRate)
	}
	if *queues > 0 {
		// Self-contained simulations whose printed totals and checksums are
		// queue-invariant: RSS steering and extent striping reorder work
		// across queues but never change what arrives. The same lines print
		// for -queues 1 and -queues 8 — scaling shows up in the MQ
		// benchmarks, not here.
		mq := experiments.MQSummary(scale, *queues, *cores)
		fmt.Println(mq.String())
		fmt.Println(mq.ShardLine())
	}
	if *guests > 0 {
		// The fleet workload: N single-queue tenants served by one network
		// and one storage driver domain through shared DRR service lanes.
		// Every line is a timeline fact, byte-identical for any
		// -parallel x -cores choice.
		fl := experiments.FleetSummary(scale, *guests, *cores)
		fmt.Println(fl.String())
		fmt.Println(fl.ShardLine())
	}
	fmt.Printf("kitebench: %d experiments, %d simulation events in %.2fs wall (%.2fM events/sec)\n",
		len(results), events, elapsed.Seconds(),
		float64(events)/elapsed.Seconds()/1e6)

	if *ablations {
		fmt.Println("\n== Design-choice ablations ==")
		for _, a := range []*experiments.AblationResult{
			experiments.AblationPersistentGrants(scale),
			experiments.AblationIndirectSegments(scale),
			experiments.AblationBatching(scale),
			experiments.AblationThreadedModel(scale),
		} {
			fmt.Println(a.Table.String())
		}
	}
}
