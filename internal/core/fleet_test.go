package core

import (
	"testing"

	"kite/internal/netstack"
)

// TestFleetRigServesTenants builds a small fleet and checks the whole
// multi-tenant path: every tenant's vif lands on its hinted lane, the
// tenant registry mirrors the fleet, datagrams flow both ways for every
// tenant, and (with storage) every tenant's vbd round-trips data through
// its fleet lane.
func TestFleetRigServesTenants(t *testing.T) {
	const guests, lanes = 12, 4
	rig, err := NewFleetRig(FleetConfig{
		Guests: guests, Lanes: lanes, Seed: 0xf1ee7,
		Storage: true, DiskBytes: 4 << 20,
	})
	if err != nil {
		t.Fatalf("NewFleetRig: %v", err)
	}
	sys := rig.Testbed.System

	if got := len(rig.ND.Driver.VIFs()); got != guests {
		t.Fatalf("driver serves %d vifs, want %d", got, guests)
	}
	if rig.ND.Tenants.Len() != guests {
		t.Fatalf("net tenant registry has %d tenants, want %d", rig.ND.Tenants.Len(), guests)
	}
	if rig.SD.Tenants.Len() != guests {
		t.Fatalf("blk tenant registry has %d tenants, want %d", rig.SD.Tenants.Len(), guests)
	}
	for i, v := range rig.ND.Driver.VIFs() {
		if v.Lane() == nil {
			t.Fatalf("vif %d has no service lane", i)
		}
	}
	for i, lane := range rig.ND.Driver.Lanes() {
		if lane.Members() == 0 {
			t.Errorf("net lane %d has no members", i)
		}
	}
	for _, tn := range rig.ND.Tenants.Tenants() {
		if tn.Vifs != 1 || tn.Lane < 0 {
			t.Errorf("tenant dom%d: vifs=%d lane=%d, want 1 vif on a lane", tn.Dom, tn.Vifs, tn.Lane)
		}
	}

	// Every tenant pings the client and the client answers.
	got := make([]int, guests)
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {
		for i := 0; i < guests; i++ {
			if p.Src == rig.GuestIPOf(i) {
				got[i]++
			}
		}
	})
	var backAll int
	for i, g := range rig.Guests {
		i := i
		g.Stack.BindUDP(9001, func(p netstack.UDPPacket) {
			_ = i
			backAll++
		})
	}
	payload := make([]byte, 200)
	for i, g := range rig.Guests {
		for j := range payload {
			payload[j] = byte(i*17 + j)
		}
		g.Stack.SendUDP(rig.ClientIP, 9000, 12000, payload)
	}
	if !sys.RunReady(func() bool {
		for i := range got {
			if got[i] == 0 {
				return false
			}
		}
		return true
	}, 5_000_000) {
		t.Fatalf("client did not hear every tenant: %v", got)
	}
	for i := 0; i < guests; i++ {
		rig.Client.Stack.SendUDP(rig.GuestIPOf(i), 9001, 13000, payload)
	}
	if !sys.RunReady(func() bool { return backAll == guests }, 5_000_000) {
		t.Fatalf("tenants heard %d/%d replies", backAll, guests)
	}

	// Storage: every tenant writes and reads back through its lane.
	okRead := make([]bool, guests)
	buf := make([]byte, 4096)
	for i, g := range rig.Guests {
		for j := range buf {
			buf[j] = byte(i*13 + j*7)
		}
		i, g := i, g
		g.Disk.WriteSectors(0, buf, func(err error) {
			if err != nil {
				t.Errorf("tenant %d write: %v", i, err)
				return
			}
			g.Disk.ReadSectors(0, 4096, func(data []byte, err error) {
				if err != nil {
					t.Errorf("tenant %d read: %v", i, err)
					return
				}
				for j := range data {
					if data[j] != byte(i*13+j*7) {
						t.Errorf("tenant %d read corrupt at %d", i, j)
						return
					}
				}
				okRead[i] = true
			})
		})
	}
	if !sys.RunReady(func() bool {
		for _, ok := range okRead {
			if !ok {
				return false
			}
		}
		return true
	}, 10_000_000) {
		t.Fatalf("storage round-trips incomplete: %v", okRead)
	}
	var laneMembers int
	for _, lane := range rig.SD.Driver.Lanes() {
		laneMembers += lane.Members()
	}
	if laneMembers != guests {
		t.Errorf("blk lanes serve %d members, want %d", laneMembers, guests)
	}
}

// TestFleetRigDeterministicAcrossWorkers checks the fleet produces
// bit-identical results at any cluster worker count.
func TestFleetRigDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (frames uint64, sum uint64) {
		rig, err := NewFleetRig(FleetConfig{Guests: 8, Lanes: 4, Seed: 0xdead})
		if err != nil {
			t.Fatalf("NewFleetRig: %v", err)
		}
		rig.Testbed.System.Cluster.SetWorkers(workers)
		var n int
		rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {
			n++
			frames++
			for _, b := range p.Data {
				sum = sum*31 + uint64(b)
			}
		})
		payload := make([]byte, 128)
		for i, g := range rig.Guests {
			for j := range payload {
				payload[j] = byte(i + j)
			}
			for k := 0; k < 4; k++ {
				g.Stack.SendUDP(rig.ClientIP, 9000, uint16(12000+k), payload)
			}
		}
		rig.Testbed.System.RunReady(func() bool { return n == 8*4 }, 5_000_000)
		return frames, sum
	}
	f1, s1 := run(1)
	f4, s4 := run(4)
	if f1 != f4 || s1 != s4 {
		t.Fatalf("fleet not deterministic across workers: (%d,%x) vs (%d,%x)", f1, s1, f4, s4)
	}
}
