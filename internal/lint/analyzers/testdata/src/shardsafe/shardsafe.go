// Package shardsafe exercises the kitelint shard-confinement check:
// shard-executed handlers must not write globals, must not schedule
// through foreign components, and //kite:shared structures demand
// //kite:shardok writers.
package shardsafe

import "kite/internal/sim"

// queue is an engine-bearing component: it owns a scheduling handle.
type queue struct {
	eng   *sim.Engine
	depth int
}

// peer is another engine-bearing component that also references a queue,
// so reaching p.q.eng crosses an ownership boundary.
type peer struct {
	eng *sim.Engine
	q   *queue
}

// stats is a sanctioned cross-shard structure; writes to it are exempt
// from rule 1 by declaration.
//
//kite:shared
var stats = map[string]int{}

// hits is an ordinary global: any shard-reachable write is a race.
var hits int

func onEvent(e *sim.Engine, p *peer) {
	e.Schedule(0, func() {
		hits++         // want `shard-reachable code writes package-level var hits`
		stats["rx"]++  // shared by declaration: clean
		p.depth()      // descend into a named helper
		p.eng.Schedule(1, func() {}) // one hop: self-scheduling, clean
		p.q.eng.Schedule(1, func() {}) // want `Schedule reaches through 2 engine-bearing components`
	})
}

// depth is reached from the handler above; rule 1 follows the call.
func (p *peer) depth() {
	hits = p.q.depth // want `shard-reachable code writes package-level var hits`
}

// testHook shows a site-level escape: the write is justified in place.
func testHook(e *sim.Engine) {
	e.After(1, func() {
		hits++ //kite:shardok fixture-only instrumentation counter
	})
}

// remoteBox is a shared magazine: every field write must be justified.
//
//kite:shared
type remoteBox struct {
	head *node
	n    int
}

type node struct{ next *node }

func (m *remoteBox) push(b *node) {
	b.next = m.head // node is not shared: clean
	m.head = b      // want `write to field head of a //kite:shared structure`
	m.n++           // want `write to field n of a //kite:shared structure`
}

// drain runs at the barrier with every shard goroutine parked, so its
// writes are sanctioned wholesale.
//
//kite:shardok barrier-side drain; no shard goroutine is live
func (m *remoteBox) drain() *node {
	h := m.head
	m.head = nil
	m.n = 0
	return h
}

// cursor has exactly one shared field; its sibling stays unconstrained.
type cursor struct {
	// remote is spliced by other shards' release handlers.
	//
	//kite:shared
	remote *node
	local  int
}

func (c *cursor) advance() {
	c.local++       // unshared sibling field: clean
	c.remote = nil  // want `write to field remote of a //kite:shared structure`
}

// postHandlers are shard roots too: the handler runs on the destination
// shard's goroutine.
func postSide(local, dst *sim.Engine) {
	local.Post(dst, 1, sim.PriData, func(any) {
		hits++ // want `shard-reachable code writes package-level var hits`
	}, nil)
}
