// Package netback implements the network backend driver of a driver
// domain — the component Kite had to build from scratch (Table 1, 2791
// LOC). Each VIF instance serves one netfront: the Tx path drains
// guest-originated frames to the bridge via a dedicated *pusher* thread,
// and the Rx path copies bridge-delivered frames into posted guest buffers
// via a dedicated *soft_start* thread, so the event handler itself never
// monopolizes the CPU (§3.2, §4.2). Two cost profiles exist: KiteCosts
// (rumprun threads) and LinuxCosts (softirq + kthread path).
//
// Frames move through pooled buffers end to end: guest Tx frames are
// grant-copied straight into a framepool.Buf handed to the bridge, and
// bridge-delivered Rx frames are copied from their Buf into guest-posted
// pages — through a persistent-grant mapping cache mirroring blkback §3.3,
// so steady-state Rx skips the per-burst hypercall entirely.
//
// A VIF is sharded per negotiated queue, like multi-queue xen-netback: one
// pusher + one soft_start per queue, pinned to distinct vCPUs of the
// driver domain, each with its own persistent-grant cache, framepool
// arena, scratch slices, and pending queues, so queues share nothing on
// the hot path. Guest-bound frames are steered with the same seeded RSS
// hash the frontend uses, so both directions of a flow ride one queue.
//
// Under a sharded cluster each queue additionally runs on its own cluster
// shard (the same shard as its frontend peer, so the ring pair has a single
// owner): workers, event channel, grant copies, and the Tx arena all live
// there, and the only cross-shard traffic is the matured-frame hand-off to
// the bridge and the bridge's guest-bound delivery — conservative posts at
// the bridge hand-off latency.
package netback

import (
	"fmt"

	"kite/internal/bridge"
	"kite/internal/framepool"
	"kite/internal/metrics"
	"kite/internal/netif"
	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/xen"
)

// shardHandoff is the queue<->bridge dispatch latency when queues are
// pinned to cluster shards; it doubles as the posts' conservative lookahead
// bound, so it must be at least the cluster's lookahead.
const shardHandoff = 2 * sim.Microsecond

// Costs parameterizes the backend's software path per OS.
type Costs struct {
	PerPacketTx sim.Time // guest→world processing per frame (beyond copies)
	PerPacketRx sim.Time // world→guest processing per frame (beyond copies)
	WakeLatency sim.Time // handler→worker-thread dispatch latency
	// InHandler disables the dedicated threads and processes rings inside
	// the event handler itself — the design the paper rejects (§3.2); kept
	// as an ablation knob.
	InHandler bool
	// PersistentRx caches grant mappings of the frontend's (recycled) Rx
	// pages so steady-state guest-bound copies are plain memcpys instead of
	// grant-copy hypercalls — the §3.3 persistent-grant idea applied to the
	// network Rx path. Enabled in both profiles (like blkback's cache).
	PersistentRx bool
	// RxQueueFrames bounds each queue's guest-bound queue; overflow drops
	// (this is where UDP overload loss materializes).
	RxQueueFrames int
}

// KiteCosts returns the rumprun backend profile: cheap cooperative thread
// wakeups, lean NetBSD driver path.
func KiteCosts() Costs {
	return Costs{
		// Per-frame path tuned so a single-vCPU domain forwards ~7.3 Gbps
		// of MTU frames — the bottleneck Figure 6 measures.
		PerPacketTx:   450 * sim.Nanosecond,
		PerPacketRx:   450 * sim.Nanosecond,
		WakeLatency:   2 * sim.Microsecond,
		PersistentRx:  true,
		RxQueueFrames: 2048,
	}
}

// LinuxCosts returns the Ubuntu driver-domain profile: softirq + kthread
// scheduling on the wake path and a heavier per-frame path (netfilter
// hooks, qdisc, skb management).
func LinuxCosts() Costs {
	return Costs{
		PerPacketTx:   470 * sim.Nanosecond,
		PerPacketRx:   470 * sim.Nanosecond,
		WakeLatency:   9 * sim.Microsecond,
		PersistentRx:  true,
		RxQueueFrames: 2048,
	}
}

// Stats counts per-VIF activity.
type Stats struct {
	TxFrames, TxBytes uint64 // guest -> world
	RxFrames, RxBytes uint64 // world -> guest
	RxQueueDrops      uint64
	RxNoBufDrops      uint64
	TxErrors          uint64
	// RxPersistHits/Misses count Rx grant resolutions served from /
	// added to the persistent mapping cache.
	RxPersistHits   uint64
	RxPersistMisses uint64
}

// VIF is one netback instance: the virtual interface paired with exactly
// one netfront (§3.2: one instance per virtual channel), sharded into the
// negotiated number of queues.
type VIF struct {
	eng      *sim.Engine
	dom      *xen.Domain // the driver domain
	frontDom xen.DomID
	name     string
	costs    Costs
	pool     *framepool.Pool

	ch     *netif.Channel
	br     *bridge.Bridge
	queues []*vifQueue
	rss    netpkt.RSS

	// brInputF is the cached cross-shard post target handing a matured
	// guest frame to the bridge on the device shard; brBatchF is its
	// one-post-per-haul counterpart carrying a txBatch.
	brInputF func(any)
	brBatchF func(any)

	dead bool
	down bool // administratively down (ifconfig vifX.Y down)
}

// vifQueue is one queue's shard: its ring pair, event channel, worker
// threads pinned to one vCPU, persistent-grant cache, framepool arena, and
// scratch — nothing here is shared with other queues.
type vifQueue struct {
	v       *VIF
	id      int
	eng     *sim.Engine // this queue's shard engine (the VIF engine unsharded)
	sharded bool
	tx      *netif.TxRing
	rx      *netif.RxRing
	port    xen.Port
	cpu     *sim.CPU

	// rxEnqueueF is the cached cross-shard post target for guest-bound
	// frames steered to this queue by Deliver.
	rxEnqueueF func(any)

	pusher    *sim.Task
	softStart *sim.Task

	// lane is non-nil in fleet mode: the queue has no dedicated worker
	// threads and is served by its ServiceLane's DRR rounds instead.
	// laneSlot addresses the queue's round state (deficit, ring links,
	// owed doorbell) in the lane's member slab; -1 after detach.
	lane     *ServiceLane
	laneSlot int32

	rxQueue sim.FIFO[*framepool.Buf]

	// pgrants caches mappings of the frontend's Rx grant refs (which the
	// frontend recycles for the device's lifetime), keyed by ref. The
	// frontend posts each ref on one queue only, so per-queue caches never
	// duplicate mappings.
	pgrants map[xen.GrantRef]*xen.Mapping

	// arena partitions the shared frame pool per queue: Tx frames are
	// grant-copied into arena buffers that recycle back here, so queues
	// never trade buffers.
	arena *framepool.Arena

	// Reusable batch scratch: request/op/buffer slices grow to the burst
	// high-water mark and are then reused forever (zero steady-state
	// allocations per burst).
	txReqs []netif.TxRequest
	rxReqs []netif.RxRequest
	ops    []xen.CopyOp
	bufs   []*framepool.Buf

	// txPending holds bridge-bound frames whose hypervisor copy has been
	// issued; txDone flushes them when the copy matures. One coalesced
	// event covers a whole pusher burst instead of one event per frame.
	txPending sim.FIFO[timedFrame]
	txDone    *sim.Batch

	// Sharded, matured frames ride to the bridge in txBatch carriers
	// instead: one cross-shard post per pusher haul, each entry stamped
	// with its true bridge-arrival time (see VIF.inputBatch). txOut is the
	// carrier being filled; txOutFree recycles consumed carriers, returned
	// by the barrier via txOutFreeF.
	txOut      *txBatch
	txOutFree  []*txBatch
	txOutFreeF func(any)

	// brLane is this queue's pinned forwarding lane on the bridge (one
	// forwarding vCPU + egress FIFO per source queue), which is what makes
	// the one-post-per-haul replay time-exact: the lane has a single
	// producer with monotone arrival times.
	brLane *bridge.Lane

	stats Stats
}

// timedFrame is a frame due for bridge input at a virtual time; the FIFO
// holds one buffer reference per entry.
type timedFrame struct {
	at    sim.Time
	frame *framepool.Buf
}

// txBatch carries one pusher haul's guest frames to the bridge shard as a
// single conservative post. Entries are stamped with each frame's true
// bridge-arrival time (copy maturity + hand-off latency, nondecreasing
// within a haul), and the bridge replays them through InputAt, so the
// one-post-per-haul execution reproduces the exact per-frame timeline.
// Consumed carriers ride a PriRelease post home and are reclaimed at the
// window barrier.
type txBatch struct {
	q       *vifQueue
	entries []timedFrame
}

// takeTxBatch draws a carrier from the queue's free list; the steady state
// recycles the per-haul high-water set and never allocates.
func (q *vifQueue) takeTxBatch() *txBatch {
	if n := len(q.txOutFree); n > 0 {
		bt := q.txOutFree[n-1]
		q.txOutFree = q.txOutFree[:n-1]
		return bt
	}
	return &txBatch{q: q, entries: make([]timedFrame, 0, netif.RingSize)} //kite:alloc-ok carrier set grows to the in-flight high-water mark, then recycles
}

// inputBatch replays one haul's frames into the bridge at their stamped
// arrival times, then sends the carrier home for barrier reclamation.
// Runs on the device shard.
func (v *VIF) inputBatch(a any) {
	bt := a.(*txBatch)
	for i := range bt.entries {
		e := &bt.entries[i]
		bt.q.brLane.InputAt(v, e.frame, e.at)
		bt.entries[i] = timedFrame{}
	}
	bt.entries = bt.entries[:0]
	v.eng.Post(bt.q.eng, shardHandoff, sim.PriRelease, bt.q.txOutFreeF, bt) //kite:alloc-ok pointer boxing does not allocate
}

// NewVIF creates a connected netback instance. The caller (the backend
// driver) has already read the per-queue ring refs and event channels from
// xenstore; here the ring pages are mapped (hypercalls charged), event
// channels are bound, and per-queue workers are pinned round-robin across
// the driver domain's vCPUs starting at the frontend's home CPU. rssSeed
// is the frontend's published steering seed (ignored for one queue).
func NewVIF(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *netif.Channel, frontPorts []xen.Port, br *bridge.Bridge, costs Costs,
	pool *framepool.Pool, rssSeed uint64, shards []*sim.Engine) (*VIF, error) {

	if pool == nil {
		pool = framepool.New()
	}
	nq := ch.NumQueues()
	sharded := len(shards) > 0
	if sharded && (nq > len(shards) || dom.CPUs.Len() < nq+1) {
		return nil, fmt.Errorf("netback: vif%d.%d: %d queues need %d shards and %d vCPUs (have %d, %d)",
			frontDom, devid, nq, nq, nq+1, len(shards), dom.CPUs.Len())
	}
	if len(frontPorts) != nq {
		return nil, fmt.Errorf("netback: vif%d.%d: %d event channels for %d queues",
			frontDom, devid, len(frontPorts), nq)
	}
	v := &VIF{
		eng:      eng,
		dom:      dom,
		frontDom: frontDom,
		name:     fmt.Sprintf("vif%d.%d", frontDom, devid),
		costs:    costs,
		pool:     pool,
		ch:       ch,
		br:       br,
		rss:      netpkt.NewRSS(rssSeed),
		queues:   make([]*vifQueue, nq),
	}
	v.brInputF = func(a any) { v.br.Input(v, a.(*framepool.Buf)) }
	v.brBatchF = v.inputBatch
	// Map every queue's two ring pages (2 map hypercalls per queue, charged
	// to the backend; on the misc vCPU when the queue vCPUs are pinned).
	mapCost := dom.Hypervisor().Costs.Base +
		sim.Time(2*nq)*dom.Hypervisor().Costs.GrantMapPage
	if sharded {
		dom.CPUs.CPU(dom.CPUs.Len() - 1).Charge(mapCost)
	} else {
		dom.CPUs.Charge(mapCost)
	}

	for i := 0; i < nq; i++ {
		q := &vifQueue{
			v:       v,
			id:      i,
			eng:     eng,
			sharded: sharded,
			tx:      ch.Tx.Queue(i),
			rx:      ch.Rx.Queue(i),
			pgrants: make(map[xen.GrantRef]*xen.Mapping),
			arena:   pool.NewArena(),
			txReqs:  make([]netif.TxRequest, 0, netif.RingSize),
			ops:     make([]xen.CopyOp, 0, netif.RingSize),
			bufs:    make([]*framepool.Buf, 0, netif.RingSize),
		}
		q.rxEnqueueF = func(a any) { q.rxEnqueue(a.(*framepool.Buf)) }
		q.txOutFreeF = func(a any) { q.txOutFree = append(q.txOutFree, a.(*txBatch)) } //kite:alloc-ok free list grows to the in-flight high-water mark
		port, err := dom.BindInterdomain(frontDom, frontPorts[i])
		if err != nil {
			return nil, fmt.Errorf("netback: %s: %w", v.name, err)
		}
		q.port = port
		if err := dom.SetHandler(port, q.onEvent); err != nil {
			return nil, err
		}
		// Per-queue workers spread across the domain's vCPUs (§3.1:
		// multicore driver domains scale to several guests/NICs; with
		// multi-queue, to several queues of one guest). Sharded, queue i is
		// pinned to vCPU i on shard i — the same shard as its frontend peer,
		// so each ring pair has exactly one owning shard.
		if sharded {
			q.eng = shards[i]
			q.cpu = dom.CPUs.CPU(i)
			q.cpu.SetEngine(q.eng)
			q.arena.SetHome(q.eng)
			// Remote releases reach this arena a lookahead window late;
			// a ring's worth of slack keeps the Tx haul allocation-free
			// through that pipeline (fleet lanes skip this: hundreds of
			// tenants would pin megabytes each, and their rings drain in
			// DRR quanta well under a full ring).
			q.arena.Prealloc(netif.RingSize)
			dom.BindPortCPU(q.port, q.cpu)
			// Forwarding thread for this queue: vCPU nq+i of the driver
			// domain (the width beyond the queue workers), degrading to the
			// last vCPU when the domain is narrower.
			fwd := nq + i
			if fwd >= dom.CPUs.Len() {
				fwd = dom.CPUs.Len() - 1
			}
			q.brLane = br.NewLane(dom.CPUs.CPU(fwd))
		} else {
			q.cpu = dom.CPUs.CPU((int(frontDom) + i) % dom.CPUs.Len())
		}
		name := v.name
		if nq > 1 {
			name = fmt.Sprintf("%s-q%d", v.name, i)
		}
		q.pusher = sim.NewTask(q.eng, q.cpu, name+"/pusher", costs.WakeLatency, q.drainTx)
		q.softStart = sim.NewTask(q.eng, q.cpu, name+"/soft_start", costs.WakeLatency, q.drainRx)
		q.txDone = sim.NewBatch(q.eng, q.flushTx)
		v.queues[i] = q
	}
	return v, nil
}

// NewVIFOnLane creates a single-queue netback instance served by a shared
// fleet ServiceLane instead of dedicated pusher/soft_start threads: the
// queue lives on the lane's shard and vCPU, its doorbell joins the lane's
// demux group, and its rings are drained by the lane's DRR rounds. This is
// how one driver domain serves hundreds of guests with a fixed number of
// worker threads.
func NewVIFOnLane(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *netif.Channel, frontPorts []xen.Port, br *bridge.Bridge, costs Costs,
	pool *framepool.Pool, lane *ServiceLane) (*VIF, error) {

	if pool == nil {
		pool = framepool.New()
	}
	if ch.NumQueues() != 1 || len(frontPorts) != 1 {
		return nil, fmt.Errorf("netback: vif%d.%d: fleet lanes serve single-queue frontends (%d queues)",
			frontDom, devid, ch.NumQueues())
	}
	v := &VIF{
		eng:      eng,
		dom:      dom,
		frontDom: frontDom,
		name:     fmt.Sprintf("vif%d.%d", frontDom, devid),
		costs:    costs,
		pool:     pool,
		ch:       ch,
		br:       br,
		queues:   make([]*vifQueue, 1),
	}
	v.brInputF = func(a any) { v.br.Input(v, a.(*framepool.Buf)) }
	v.brBatchF = v.inputBatch
	// Both ring pages map on the lane's vCPU (the lane owns this tenant's
	// hypercall work end to end).
	lane.cpu.Charge(dom.Hypervisor().Costs.Base + 2*dom.Hypervisor().Costs.GrantMapPage)

	q := &vifQueue{
		v:       v,
		id:      0,
		eng:     lane.eng,
		sharded: true,
		tx:      ch.Tx.Queue(0),
		rx:      ch.Rx.Queue(0),
		pgrants: make(map[xen.GrantRef]*xen.Mapping),
		arena:   pool.NewArena(),
		txReqs:  make([]netif.TxRequest, 0, netif.RingSize),
		ops:     make([]xen.CopyOp, 0, netif.RingSize),
		bufs:    make([]*framepool.Buf, 0, netif.RingSize),
		lane:    lane,
		cpu:     lane.cpu,
		brLane:  lane.brLane,
	}
	q.arena.SetHome(q.eng)
	q.rxEnqueueF = func(a any) { q.rxEnqueue(a.(*framepool.Buf)) }
	q.txOutFreeF = func(a any) { q.txOutFree = append(q.txOutFree, a.(*txBatch)) } //kite:alloc-ok free list grows to the in-flight high-water mark
	port, err := dom.BindInterdomain(frontDom, frontPorts[0])
	if err != nil {
		return nil, fmt.Errorf("netback: %s: %w", v.name, err)
	}
	q.port = port
	if err := dom.SetHandler(port, q.onEvent); err != nil {
		return nil, err
	}
	if err := lane.demux.Join(port); err != nil {
		return nil, fmt.Errorf("netback: %s: %w", v.name, err)
	}
	q.laneSlot = lane.join(q)
	q.txDone = sim.NewBatch(q.eng, q.flushTx)
	v.queues[0] = q
	return v, nil
}

// Lane returns the fleet service lane serving the VIF, or nil for a
// dedicated-worker instance.
func (v *VIF) Lane() *ServiceLane { return v.queues[0].lane }

// FrontDom returns the tenant guest's domain ID.
func (v *VIF) FrontDom() xen.DomID { return v.frontDom }

// Name returns the VIF name (vif<dom>.<dev>).
func (v *VIF) Name() string { return v.name }

// PortName implements bridge.Port.
func (v *VIF) PortName() string { return v.name }

// NumQueues returns the queue count.
func (v *VIF) NumQueues() int { return len(v.queues) }

// Stats aggregates the per-queue counters in queue order, so totals are
// identical however queue work interleaved.
func (v *VIF) Stats() Stats {
	var s Stats
	for _, q := range v.queues {
		s.TxFrames += q.stats.TxFrames
		s.TxBytes += q.stats.TxBytes
		s.RxFrames += q.stats.RxFrames
		s.RxBytes += q.stats.RxBytes
		s.RxQueueDrops += q.stats.RxQueueDrops
		s.RxNoBufDrops += q.stats.RxNoBufDrops
		s.TxErrors += q.stats.TxErrors
		s.RxPersistHits += q.stats.RxPersistHits
		s.RxPersistMisses += q.stats.RxPersistMisses
	}
	return s
}

// QueueStats returns queue i's counters.
func (v *VIF) QueueStats(i int) Stats { return v.queues[i].stats }

// SetInHandler toggles the in-handler processing ablation on a live VIF.
func (v *VIF) SetInHandler(on bool) { v.costs.InHandler = on }

// SetUp sets the interface's administrative state (ifconfig up/down): a
// downed VIF forwards no traffic in either direction.
func (v *VIF) SetUp(up bool) { v.down = !up }

// Up reports the administrative state.
func (v *VIF) Up() bool { return !v.down }

// PusherRuns exposes thread activity for the threaded-model ablation,
// summed over queues.
func (v *VIF) PusherRuns() (wakes, runs uint64) {
	for _, q := range v.queues {
		if q.pusher == nil {
			continue // fleet mode: the lane worker serves this queue
		}
		wakes += q.pusher.Wakes()
		runs += q.pusher.Runs()
	}
	return wakes, runs
}

// Shutdown quiesces the instance (backend teardown or domain restart):
// queued frames are released, persistent Rx mappings are unmapped.
func (v *VIF) Shutdown() {
	if v.dead {
		return
	}
	v.dead = true
	for _, q := range v.queues {
		if q.lane != nil {
			q.lane.detach(q)
		}
		_ = v.dom.Close(q.port)
		for q.rxQueue.Len() > 0 {
			q.rxQueue.Pop().Release()
		}
		for q.txPending.Len() > 0 {
			q.txPending.Pop().frame.Release()
		}
		if q.txOut != nil {
			for i := range q.txOut.entries {
				q.txOut.entries[i].frame.Release()
			}
			q.txOut.entries = q.txOut.entries[:0]
			q.txOut = nil
		}
		if len(q.pgrants) > 0 {
			ms := make([]*xen.Mapping, 0, len(q.pgrants))
			for _, m := range q.pgrants {
				if m.Live() {
					ms = append(ms, m)
				}
			}
			_ = v.dom.Hypervisor().UnmapGrantBatch(v.dom, ms)
			q.pgrants = make(map[xen.GrantRef]*xen.Mapping)
		}
	}
}

// onEvent is the queue's frontend-notification handler. Per the paper's
// design it only wakes the queue's worker threads — unless the InHandler
// ablation is active, in which case the rings are drained right here,
// blocking further notifications for the duration.
//
//kite:hotpath
func (q *vifQueue) onEvent() {
	if q.v.dead {
		return
	}
	if q.lane != nil {
		// Fleet mode: no dedicated threads — put the queue into its lane's
		// DRR round if the doorbell brought actionable work.
		if q.tx.RequestAvailable() || (q.rxQueue.Len() > 0 && q.rx.RequestAvailable()) {
			q.lane.activate(q)
		}
		return
	}
	if q.v.costs.InHandler {
		q.drainTx()
		q.drainRx()
		return
	}
	if q.tx.RequestAvailable() {
		q.pusher.Wake()
	}
	if q.rxQueue.Len() > 0 && q.rx.RequestAvailable() {
		q.softStart.Wake()
	}
}

// unlimited is the drain budget that disables DRR accounting (dedicated
// per-queue workers drain their whole ring, as before fleet mode).
const unlimited = int(^uint(0) >> 1)

// drainTx is the pusher thread body: move guest frames to the bridge.
func (q *vifQueue) drainTx() { q.drainTxBudget(unlimited) }

// drainTxBudget moves guest frames to the bridge, stopping once budget
// bytes have been taken from the ring (the last frame may overshoot — DRR
// serves a packet while credit remains). Each frame is grant-copied once,
// directly into a pooled buffer that then travels the bridge/NAT/NIC path.
// Per-frame processing is charged to this queue's pinned vCPU, which is
// what lets queues overlap in time. Returns the bytes consumed and whether
// requests remain because the budget — not the ring — ran out.
func (q *vifQueue) drainTxBudget(budget int) (used int, more bool) {
	v := q.v
	if v.dead || v.down {
		return 0, false
	}
	hv := v.dom.Hypervisor()
	for {
		// Gather a batch of requests into the reusable scratch.
		reqs := q.txReqs[:0]
		for used < budget {
			req, ok := q.tx.TakeRequest()
			if !ok {
				break
			}
			reqs = append(reqs, req)
			if req.Len > 0 {
				used += req.Len
			} else {
				used++ // malformed requests still consume a slot of credit
			}
		}
		q.txReqs = reqs[:0]
		if len(reqs) == 0 {
			if used >= budget {
				more = q.tx.RequestAvailable()
				break
			}
			if q.tx.FinalCheckForRequests() {
				continue
			}
			break
		}
		// One batched hypervisor copy for the whole run of requests, each
		// landing in its own pooled buffer. bufs[i] is nil for a request
		// rejected up front (malformed length).
		ops := q.ops[:0]
		bufs := q.bufs[:0]
		for _, req := range reqs {
			if req.Len < 0 || req.Len > framepool.MaxFrame {
				bufs = append(bufs, nil)
				continue
			}
			b := q.arena.Get()
			ops = append(ops, xen.CopyOp{
				Src: xen.CopyPtr{Dom: v.frontDom, Ref: req.Ref, Offset: req.Offset},
				Dst: xen.CopyPtr{Data: b.Extend(req.Len)},
				Len: req.Len,
			})
			bufs = append(bufs, b)
		}
		err := q.copyGrant(hv, ops)
		// Charge per frame so maturities spread across the haul: frame k is
		// ready after k+1 packet costs, not when the whole batch retires.
		// Lumping the charge would stall the bridge (and the next upcall,
		// which waits for the vCPU to drain) behind the full haul.
		now := q.eng.Now()
		var firstDone sim.Time
		for i, req := range reqs {
			done := q.cpu.Charge(v.costs.PerPacketTx)
			if i == 0 {
				firstDone = done
			}
			status := int8(netif.StatusOK)
			b := bufs[i]
			if b == nil || err != nil {
				status = netif.StatusError
				q.stats.TxErrors++
				if b != nil {
					b.ReleaseOn(q.eng)
				}
			} else {
				q.stats.TxFrames++
				q.stats.TxBytes += uint64(req.Len)
				metrics.NetQueueTxFrames.Add(1)
				if q.sharded {
					// Stage the frame in the haul's carrier, stamped with its
					// bridge-arrival time; one post moves the whole haul below.
					if q.txOut == nil {
						q.txOut = q.takeTxBatch()
					}
					q.txOut.entries = append(q.txOut.entries, //kite:alloc-ok entries grow to the haul high-water mark, then recycle
						timedFrame{at: done + shardHandoff, frame: b})
				} else {
					q.txPending.Push(timedFrame{at: done, frame: b})
				}
			}
			q.tx.PushResponse(netif.TxResponse{ID: req.ID, Status: status})
		}
		q.ops = ops[:0]
		q.bufs = bufs[:0]
		clearBufs(bufs)
		// Sharded: one conservative post carries the whole haul, maturing at
		// the first frame's arrival; InputAt replays the rest at their
		// stamped times. firstDone >= now keeps the lookahead bound.
		if q.txOut != nil && len(q.txOut.entries) > 0 {
			q.eng.Post(v.eng, q.txOut.entries[0].at-now, sim.PriData, v.brBatchF, q.txOut) //kite:alloc-ok pointer boxing does not allocate
			q.txOut = nil
		}
		// Unsharded: wake the bridge hand-off at the first maturity;
		// flushTx re-arms itself for the rest of the burst as frames ripen.
		if q.txPending.Len() > 0 {
			q.txDone.Arm(firstDone)
		}
		if q.tx.PushResponsesAndCheckNotify() {
			q.notifyFront()
		}
	}
	return used, more
}

// notifyFront raises the frontend's completion doorbell. Dedicated-worker
// queues notify immediately; a lane-served queue instead marks its member
// slot so the round flushes one batched notification per member at the
// end, however many drain calls owed one.
//
//kite:hotpath
func (q *vifQueue) notifyFront() {
	if q.lane != nil {
		q.lane.members[q.laneSlot].notify = true
		return
	}
	q.v.dom.Notify(q.port)
}

// clearBufs zeroes the recycled scratch slots so the scratch slice does not
// pin buffers that have already been handed off or released.
func clearBufs(bufs []*framepool.Buf) {
	for i := range bufs {
		bufs[i] = nil
	}
}

// flushTx hands every matured guest frame to the bridge in FIFO order and
// re-arms for the next burst still in flight.
func (q *vifQueue) flushTx() {
	v := q.v
	if v.dead {
		return
	}
	now := q.eng.Now()
	for q.txPending.Len() > 0 && q.txPending.Peek().at <= now {
		frame := q.txPending.Pop().frame
		if q.sharded {
			// The bridge lives on the device shard: conservative hand-off.
			q.eng.Post(v.eng, shardHandoff, sim.PriData, v.brInputF, frame)
		} else {
			v.br.Input(v, frame)
		}
	}
	if p := q.txPending.Peek(); p != nil {
		q.txDone.Arm(p.at)
	}
}

// copyGrant issues the batched hypervisor copy, charging the queue's pinned
// vCPU when sharded (the pool-level pick would race across shards).
func (q *vifQueue) copyGrant(hv *xen.Hypervisor, ops []xen.CopyOp) error {
	if q.sharded {
		return hv.CopyGrantOn(q.v.dom, q.cpu, ops)
	}
	return hv.CopyGrant(q.v.dom, ops)
}

// Deliver implements bridge.Port: steer a guest-bound frame to its queue
// with the shared RSS hash (so a flow's two directions use one queue),
// queue it there (consuming the bridge's reference), and wake that queue's
// soft_start thread.
//
//kite:hotpath
func (v *VIF) Deliver(frame *framepool.Buf) {
	if v.dead || v.down {
		frame.Release()
		return
	}
	q := v.queues[v.rss.Queue(frame.Bytes(), len(v.queues))]
	if q.sharded {
		// A flooded frame carries one reference per egress port; refcounts
		// are shard-local, so cut the sharing with a private copy before the
		// frame leaves this shard (flooding is cold: ARP/broadcast only).
		if frame.Refs() > 1 {
			c := v.pool.Get()
			copy(c.Extend(frame.Len()), frame.Bytes())
			frame.Release()
			frame = c
		}
		v.eng.Post(q.eng, shardHandoff, sim.PriData, q.rxEnqueueF, frame) //kite:alloc-ok pointer boxing does not allocate
		return
	}
	q.rxEnqueue(frame)
}

// rxEnqueue queues one guest-bound frame on the queue's shard and wakes its
// soft_start thread, consuming the reference (dropping when over bound).
func (q *vifQueue) rxEnqueue(frame *framepool.Buf) {
	v := q.v
	if v.dead || v.down {
		frame.ReleaseOn(q.eng)
		return
	}
	if q.rxQueue.Len() >= v.costs.RxQueueFrames {
		q.stats.RxQueueDrops++
		frame.ReleaseOn(q.eng)
		return
	}
	q.rxQueue.Push(frame)
	if q.lane != nil {
		q.lane.activate(q)
		return
	}
	if v.costs.InHandler {
		q.drainRx()
		return
	}
	q.softStart.Wake()
}

// drainRx is the soft_start thread body: copy queued frames into posted
// guest Rx buffers, preferring the persistent mapping cache.
func (q *vifQueue) drainRx() { q.drainRxBudget(unlimited) }

// drainRxBudget copies queued guest-bound frames into posted Rx buffers,
// stopping once budget bytes have been delivered (last frame may
// overshoot). Returns bytes consumed and whether deliverable work remains
// only because the budget ran out — a backlog stalled on missing guest
// buffers is not "more": the frontend's next buffer post raises an event
// that reactivates the queue.
func (q *vifQueue) drainRxBudget(budget int) (used int, more bool) {
	v := q.v
	if v.dead {
		return 0, false
	}
	hv := v.dom.Hypervisor()
	notify := false
	for q.rxQueue.Len() > 0 && used < budget {
		batch := q.bufs[:0]
		reqs := q.rxReqs[:0]
		for q.rxQueue.Len() > 0 && used < budget {
			req, ok := q.rx.TakeRequest()
			if !ok {
				break
			}
			reqs = append(reqs, req)
			frame := q.rxQueue.Pop()
			batch = append(batch, frame)
			if n := frame.Len(); n > 0 {
				used += n
			} else {
				used++
			}
		}
		q.rxReqs = reqs[:0]
		if len(reqs) == 0 {
			q.bufs = batch[:0]
			// No posted buffers. Re-arm the request event threshold before
			// sleeping, or the frontend's next buffer post would suppress
			// its notification and strand the queued frames forever.
			if q.rx.FinalCheckForRequests() {
				continue
			}
			break
		}
		// Copy each frame into its guest page: through the persistent
		// mapping when cached (plain memcpy), falling back to a batched
		// grant copy for uncached refs.
		ops := q.ops[:0]
		var memcpyBytes int
		for i, frame := range batch {
			if m := q.rxMapping(reqs[i].Ref); m != nil {
				copy(m.Page.Data[:frame.Len()], frame.Bytes())
				memcpyBytes += frame.Len()
				continue
			}
			ops = append(ops, xen.CopyOp{
				Src: xen.CopyPtr{Data: frame.Bytes()},
				Dst: xen.CopyPtr{Dom: v.frontDom, Ref: reqs[i].Ref},
				Len: frame.Len(),
			})
		}
		err := q.copyGrant(hv, ops)
		cost := sim.Time(len(reqs)) * v.costs.PerPacketRx
		cost += sim.Time(memcpyBytes) * hv.Costs.CopyBytePerKB / 1024
		q.cpu.Charge(cost)
		for i, req := range reqs {
			status := int8(netif.StatusOK)
			if err != nil {
				status = netif.StatusError
			} else {
				q.stats.RxFrames++
				q.stats.RxBytes += uint64(batch[i].Len())
				metrics.NetQueueRxFrames.Add(1)
			}
			q.rx.PushResponse(netif.RxResponse{ID: req.ID, Offset: 0, Len: batch[i].Len(), Status: status})
			batch[i].ReleaseOn(q.eng)
		}
		q.ops = ops[:0]
		q.bufs = batch[:0]
		clearBufs(batch)
		if q.rx.PushResponsesAndCheckNotify() {
			notify = true
		}
	}
	if notify {
		q.notifyFront()
	}
	more = used >= budget && q.rxQueue.Len() > 0 && q.rx.RequestAvailable()
	return used, more
}

// rxMapping resolves an Rx grant ref through the queue's persistent cache,
// mirroring blkback's mapRef: a hit costs nothing (the page stays mapped),
// a miss pays one map hypercall and populates the cache. Returns nil when
// persistence is disabled or the map fails (caller falls back to a grant
// copy).
func (q *vifQueue) rxMapping(ref xen.GrantRef) *xen.Mapping {
	v := q.v
	if !v.costs.PersistentRx {
		return nil
	}
	if m := q.pgrants[ref]; m != nil && m.Live() {
		q.stats.RxPersistHits++
		metrics.NetRxPersistHits.Add(1)
		return m
	}
	var m *xen.Mapping
	var err error
	if q.sharded {
		m, err = v.dom.Hypervisor().MapGrantOn(v.dom, q.cpu, v.frontDom, ref)
	} else {
		m, err = v.dom.Hypervisor().MapGrant(v.dom, v.frontDom, ref)
	}
	if err != nil {
		return nil
	}
	q.stats.RxPersistMisses++
	metrics.NetRxPersistMisses.Add(1)
	q.pgrants[ref] = m //kite:alloc-ok persistent-grant cache fill; hits dominate steady state
	return m
}
