package core

import (
	"testing"

	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// laneMembers sums the demux membership across a fleet driver's lanes.
func laneMembers(rig *FleetRig) int {
	total := 0
	for _, l := range rig.ND.Driver.Lanes() {
		total += l.Members()
	}
	return total
}

// TestFleetTenantChurnMidTraffic closes a quarter of a fleet's tenants
// while their traffic is still in flight, then reconnects them, checking
// every table the churn touches: the tenant registry ledger, the lanes'
// demux membership (a departed doorbell must leave its group, not pin a
// dead member slot), the driver's VIF set, and — the leak canary — the
// frame pool, which must drain to zero outstanding buffers even when a
// vif dies with queued frames.
func TestFleetTenantChurnMidTraffic(t *testing.T) {
	const guests = 16
	rig, err := NewFleetRig(FleetConfig{Guests: guests, Lanes: 4, Seed: 0xc4a2})
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.System
	nd := rig.ND

	idxOf := make(map[netpkt.IP]int, guests)
	for i := range rig.Guests {
		idxOf[fleetGuestIP(i)] = i
	}
	got := make([]int, guests)
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {
		if i, ok := idxOf[p.Src]; ok {
			got[i]++
		}
	})
	payload := make([]byte, 256)

	// Every tenant offers a burst, drained only partially before the
	// churn hits: closed vifs die with frames still queued.
	for i, g := range rig.Guests {
		for j := 0; j < 32; j++ {
			g.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i), payload)
		}
	}
	sys.Eng.RunFor(50 * sim.Microsecond)

	// 0, 5, 10, 15: one departure on each of the four lanes.
	churned := []int{0, 5, 10, 15}
	isChurned := make([]bool, guests)
	for _, i := range churned {
		isChurned[i] = true
		rig.Guests[i].CloseNet(sys)
	}
	sys.Eng.Run()

	if n := sys.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked across the disconnects", n)
	}
	if n := nd.Tenants.Len(); n != guests-len(churned) {
		t.Fatalf("registry holds %d tenants, want %d", n, guests-len(churned))
	}
	if att, det := nd.Tenants.Churn(); att != guests || det != uint64(len(churned)) {
		t.Fatalf("registry churn = (%d, %d), want (%d, %d)", att, det, guests, len(churned))
	}
	if n := laneMembers(rig); n != guests-len(churned) {
		t.Fatalf("lane demux members = %d after departures, want %d", n, guests-len(churned))
	}
	if n := len(nd.Driver.VIFs()); n != guests-len(churned) {
		t.Fatalf("driver holds %d vifs, want %d", n, guests-len(churned))
	}

	// Survivors are unaffected: each delivers a follow-up burst in full.
	base := append([]int(nil), got...)
	for i, g := range rig.Guests {
		if isChurned[i] {
			continue
		}
		for j := 0; j < 4; j++ {
			g.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i), payload)
		}
	}
	sys.Eng.Run()
	for i := range rig.Guests {
		want := 0
		if !isChurned[i] {
			want = 4
		}
		if got[i]-base[i] != want {
			t.Fatalf("tenant %d delivered %d post-churn frames, want %d",
				i, got[i]-base[i], want)
		}
	}

	// The departed tenants reconnect onto their original lanes and carry
	// traffic again; the ledger and lane membership return to full.
	for _, i := range churned {
		if err := rig.Guests[i].ReattachNet(sys, nd); err != nil {
			t.Fatal(err)
		}
	}
	ready := func() bool {
		for _, i := range churned {
			if !rig.Guests[i].Ready() {
				return false
			}
		}
		return true
	}
	if !sys.RunReady(ready, uint64(guests+1)*500000) {
		t.Fatal("reattached tenants never reconnected")
	}
	if n := nd.Tenants.Len(); n != guests {
		t.Fatalf("registry holds %d tenants after reattach, want %d", n, guests)
	}
	if att, det := nd.Tenants.Churn(); att != guests+uint64(len(churned)) || det != uint64(len(churned)) {
		t.Fatalf("registry churn = (%d, %d) after reattach, want (%d, %d)",
			att, det, guests+len(churned), len(churned))
	}
	if n := laneMembers(rig); n != guests {
		t.Fatalf("lane demux members = %d after reattach, want %d", n, guests)
	}
	for _, i := range churned {
		if lane := nd.Tenants.Tenants()[0].Lane; lane < 0 {
			t.Fatalf("tenant %d has no lane after reattach", i)
		}
	}

	base = append([]int(nil), got...)
	for i, g := range rig.Guests {
		for j := 0; j < 4; j++ {
			g.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i), payload)
		}
	}
	sys.Eng.Run()
	for i := range rig.Guests {
		if got[i]-base[i] != 4 {
			t.Fatalf("tenant %d delivered %d frames after reattach, want 4",
				i, got[i]-base[i])
		}
	}
	if n := sys.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked across the churn cycle", n)
	}
}
