package analyzers

import (
	"go/ast"
	"go/types"

	"kite/internal/lint/analysis"
	"kite/internal/lint/loader"
)

// callee is one resolved outgoing call from a function body.
type callee struct {
	call *ast.CallExpr
	fn   *types.Func // generic origin for instantiated methods
	// viaInterface marks a call that was resolved by class-hierarchy
	// analysis (the static target is an interface method).
	viaInterface bool
}

// calleesOf resolves the statically-known callees of every call expression
// under node, including calls inside nested function literals (a closure
// created on a path runs in that path's context). Interface method calls
// fan out to all module implementations (class-hierarchy analysis); calls
// of plain function values (fields, locals, parameters) resolve to nothing
// and are reported through dyn.
func calleesOf(mod *analysis.Module, pkg *loader.Package, node ast.Node, dyn func(*ast.CallExpr)) []callee {
	var out []callee
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		// Type conversions are not calls.
		if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
			return true
		}
		switch f := fun.(type) {
		case *ast.Ident:
			switch obj := pkg.Info.Uses[f].(type) {
			case *types.Func:
				out = append(out, callee{call: call, fn: obj.Origin()})
			case *types.Builtin, *types.TypeName, nil:
				// builtins and conversions: handled by op scanners
			default:
				if dyn != nil {
					dyn(call) // function-typed variable or parameter
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[f]; ok {
				switch sel.Kind() {
				case types.MethodVal:
					fn := sel.Obj().(*types.Func)
					if iface := interfaceOf(sel.Recv()); iface != nil {
						for _, impl := range mod.Implementers(iface, fn.Name()) {
							out = append(out, callee{call: call, fn: impl.Origin(), viaInterface: true})
						}
					} else {
						out = append(out, callee{call: call, fn: fn.Origin()})
					}
				default:
					if dyn != nil {
						dyn(call) // method expression value or field call
					}
				}
			} else if obj, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
				// Qualified identifier: pkg.Function(...)
				out = append(out, callee{call: call, fn: obj.Origin()})
			} else if _, isVar := pkg.Info.Uses[f.Sel].(*types.Var); isVar && dyn != nil {
				dyn(call) // call through a struct field of function type
			}
		default:
			if dyn != nil {
				dyn(call) // e.g. immediately-invoked function literal
			}
		}
		return true
	})
	return out
}

// interfaceOf returns the interface to dispatch on when t is an interface
// or a type parameter (whose constraint carries the method set), else nil.
func interfaceOf(t types.Type) *types.Interface {
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return iface
	}
	if tp, ok := t.(*types.TypeParam); ok {
		if iface, ok := tp.Constraint().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// walkReachable performs a depth-first walk of the static call graph from
// root. For every module function with a body it invokes visit exactly
// once; visit returns false to stop descending through that function
// (cold-path cutoff). External (non-module) static callees are reported
// through ext with the function they were called from. Dynamic calls
// (function values) are reported through dyn at the call site and not
// followed.
func walkReachable(mod *analysis.Module, root *types.Func,
	visit func(fn *types.Func, fd *analysis.FuncDecl) bool,
	ext func(from *analysis.FuncDecl, c callee),
	dyn func(from *analysis.FuncDecl, call *ast.CallExpr)) {

	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		fd := mod.FuncDecl(fn)
		if fd == nil || fd.Decl.Body == nil {
			return
		}
		if !visit(fn, fd) {
			return
		}
		for _, c := range calleesOf(mod, fd.Pkg, fd.Decl.Body, func(call *ast.CallExpr) {
			if dyn != nil {
				dyn(fd, call)
			}
		}) {
			if c.fn.Pkg() != nil && mod.InModule(c.fn.Pkg()) {
				walk(c.fn)
			} else if ext != nil {
				ext(fd, c)
			}
		}
	}
	walk(root.Origin())
}
