// Package loader parses and typechecks the packages of this module using
// only the standard library (go/parser + go/types with the source
// importer), so the lint suite needs no dependency on golang.org/x/tools.
//
// The loader resolves imports in three tiers: "unsafe" maps to
// types.Unsafe, paths inside this module are parsed and typechecked from
// source under the module root, and everything else is delegated to the
// standard library's source importer (which compiles the stdlib from
// GOROOT source — no build cache or network required). Packages are cached
// per loader, so one process-wide loader amortizes the stdlib typecheck
// across the analyzer tests and the clean-tree meta-test.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package of the module (or a test
// fixture registered with RegisterDir).
type Package struct {
	Path  string // import path ("kite/internal/netback")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Loader loads module packages from source. It is not safe for concurrent
// use; share one via sync.Once when tests need a common cache.
type Loader struct {
	fset       *token.FileSet
	ModuleRoot string
	ModulePath string
	std        types.Importer
	pkgs       map[string]*Package // loaded module packages by import path
	dirs       map[string]string   // extra import path -> dir (fixtures)
	loading    map[string]bool     // import cycle guard
}

// New returns a loader rooted at the module containing dir (found by
// walking up to go.mod).
func New(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		dirs:       make(map[string]string),
		loading:    make(map[string]bool),
	}, nil
}

func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: no module line in %s", gomod)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every module package typechecked so far, in load order.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// RegisterDir maps an extra import path (outside the normal module layout,
// e.g. a testdata fixture) onto a directory. The path should start with
// the module path so analyzers treat the fixture as module-internal.
func (l *Loader) RegisterDir(importPath, dir string) { l.dirs[importPath] = dir }

// inModule reports whether an import path belongs to this module.
func (l *Loader) inModule(path string) bool {
	if _, ok := l.dirs[path]; ok {
		return true
	}
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if d, ok := l.dirs[path]; ok {
		return d
	}
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	return filepath.Join(l.ModuleRoot, strings.TrimPrefix(path, l.ModulePath+"/"))
}

// Import implements types.Importer over the three tiers.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and typechecks one module package by import path (cached).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll loads every package under the module root (the "./..." pattern),
// skipping testdata, hidden directories, and directories with no non-test
// Go files. Results are sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
