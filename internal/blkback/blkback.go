// Package blkback implements the storage backend driver of a driver
// domain — the largest from-scratch component of Kite (Table 1, 1904 LOC).
// A dedicated request thread per hardware queue drains its blkif ring when
// the queue's event channel fires (§3.3); requests resolve their granted
// segments through a persistent-reference cache (avoiding map/unmap
// hypercalls), consecutive segments from one or more requests are batched
// into single device operations, and completions are answered
// asynchronously so later requests never wait on earlier ones.
//
// The transport is multi-queue (blk-mq): an instance owns one worker shard
// per negotiated queue, each pinned to its own driver-domain vCPU with a
// private ring, event channel, persistent-grant cache, pooled records, and
// NVMe submission queue — so request processing scales across vCPUs while
// per-queue state stays lock-free. The frontend stripes by extent, so each
// shard still sees mergeable sequential runs.
//
// The device path is vectored end to end: a merged device op hands the
// NVMe model an iovec of grant-mapped page views (ReadVec/WriteVec), so
// merged requests are never flattened into an intermediate buffer. All
// per-request and per-op records are pooled on per-queue free lists
// with their completion closures created once, so the steady-state data
// path performs no heap allocation (DESIGN.md §8).
package blkback

import (
	"fmt"

	"kite/internal/blkif"
	"kite/internal/metrics"
	"kite/internal/nvme"
	"kite/internal/sim"
	"kite/internal/xen"
)

// Costs parameterizes the backend per OS, plus feature knobs used both for
// negotiation and the paper's design-choice ablations.
type Costs struct {
	PerRequest  sim.Time
	PerSegment  sim.Time
	WakeLatency sim.Time

	Persistent bool // persistent grant references (§3.3)
	Indirect   bool // indirect segment requests (§3.3)
	Batch      bool // merge consecutive requests into one device op (§3.3)
}

// KiteCosts returns the rumprun storage-domain profile.
func KiteCosts() Costs {
	return Costs{
		PerRequest:  900 * sim.Nanosecond,
		PerSegment:  220 * sim.Nanosecond,
		WakeLatency: 2 * sim.Microsecond,
		Persistent:  true, Indirect: true, Batch: true,
	}
}

// LinuxCosts returns the Ubuntu storage-domain profile (heavier block
// layer and kthread wake path).
func LinuxCosts() Costs {
	return Costs{
		PerRequest:  1100 * sim.Nanosecond,
		PerSegment:  260 * sim.Nanosecond,
		WakeLatency: 9 * sim.Microsecond,
		Persistent:  true, Indirect: true, Batch: true,
	}
}

// Stats counts instance activity.
type Stats struct {
	RingRequests   uint64
	Segments       uint64
	DeviceOps      uint64
	MergedRequests uint64 // requests folded into a previous device op
	PersistentHits uint64 // segment resolutions served from the cache
	Bytes          uint64 // payload bytes moved (reads + writes)
	Errors         uint64
}

type resolvedSeg struct {
	mapping    *xen.Mapping
	persistent bool
	firstSect  int
	bytes      int
}

// ioReq is one parsed ring request. Instances are pooled on the owning
// queue's free list; segs keeps its capacity across recycles.
type ioReq struct {
	id     uint64
	op     blkif.Op // OpRead/OpWrite/OpFlush after unwrapping indirect
	sector int64    // absolute device sector (translated)
	segs   []resolvedSeg
	bytes  int
	q      *ioQueue
}

// deviceOp is one merged device operation. Instances are pooled; reqs and
// iov keep their capacity across recycles, and onDone is created once per
// record so submission never allocates a completion closure. iov lives on
// the op (not the queue) because several ops are in flight at once.
type deviceOp struct {
	op     blkif.Op
	sector int64
	bytes  int
	reqs   []*ioReq
	iov    [][]byte
	q      *ioQueue
	onDone func(err error) // created once, calls q.complete(op, err)
}

// ioQueue is one hardware-queue worker shard: its ring, event channel,
// request thread pinned to one driver-domain vCPU, persistent-grant cache,
// NVMe submission queue, and all pooled records — fully private, so shards
// never contend.
type ioQueue struct {
	inst *Instance
	id   int

	ring *blkif.Ring
	port xen.Port
	cpu  *sim.CPU
	sq   int // NVMe submission queue (the pinned vCPU's, like nvme's per-CPU SQs)

	thread *sim.Task
	pmaps  map[xen.GrantRef]*xen.Mapping

	// Fleet mode: the shared DRR worker serving this queue (thread is nil
	// then) and the queue's slot in the lane's member slab (deficit, ring
	// links, owed-response flag live there; -1 after detach).
	lane     *ServiceLane
	laneSlot int32

	// notify coalesces response publication: every respond in a completion
	// burst queues privately, and one wake publishes the lot and sends at
	// most one event-channel notification (§3.3's event coalescing).
	notify *sim.Batch

	// Free lists and drain-loop scratch; all retain capacity so the steady
	// state allocates nothing.
	ioFree     []*ioReq
	opFree     []*deviceOp
	batch      []*ioReq
	ops        []*deviceOp
	segScratch []blkif.Segment // indirect descriptor decode, one parse at a time
	unmapBuf   []*xen.Mapping  // releaseSegs staging

	stats Stats
}

// Instance is one blkback serving one frontend vbd through one worker
// shard per negotiated hardware queue.
type Instance struct {
	eng      *sim.Engine
	dom      *xen.Domain
	frontDom xen.DomID
	devid    int
	name     string
	costs    Costs

	dev  *nvme.Device
	base int64 // first sector of this vbd's window on the device
	size int64 // sectors

	queues []*ioQueue
	dead   bool
}

// NewInstance creates a connected blkback instance over a sector window of
// the physical device, one worker shard per channel queue. frontPorts
// carries the frontend's per-queue event channels (length must match the
// channel's queue count).
func NewInstance(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *blkif.Channel, frontPorts []xen.Port, dev *nvme.Device,
	baseSector, sectors int64, costs Costs) (*Instance, error) {

	nq := ch.NumQueues()
	if len(frontPorts) != nq {
		return nil, fmt.Errorf("blkback: %d event channels for %d queues", len(frontPorts), nq)
	}
	inst := &Instance{
		eng: eng, dom: dom, frontDom: frontDom, devid: devid,
		name:  fmt.Sprintf("vbd%d.%d", frontDom, devid),
		costs: costs, dev: dev,
		base: baseSector, size: sectors,
	}
	// Map the ring pages (one per queue).
	dom.CPUs.Charge(dom.Hypervisor().Costs.Base +
		sim.Time(nq)*dom.Hypervisor().Costs.GrantMapPage)
	inst.queues = make([]*ioQueue, nq)
	for i := 0; i < nq; i++ {
		cpuIdx := (int(frontDom) + i) % dom.CPUs.Len()
		q := &ioQueue{
			inst: inst, id: i,
			ring:  ch.Rings.Queue(i),
			cpu:   dom.CPUs.CPU(cpuIdx),
			sq:    cpuIdx,
			pmaps: make(map[xen.GrantRef]*xen.Mapping),
		}
		port, err := dom.BindInterdomain(frontDom, frontPorts[i])
		if err != nil {
			return nil, fmt.Errorf("blkback: %s: %w", inst.name, err)
		}
		q.port = port
		if err := dom.SetHandler(port, q.onEvent); err != nil {
			return nil, err
		}
		name := inst.name + "/req-thread"
		if nq > 1 {
			name = fmt.Sprintf("%s/req-thread-q%d", inst.name, i)
		}
		q.thread = sim.NewTask(eng, q.cpu, name, costs.WakeLatency, q.drain)
		q.notify = sim.NewBatch(eng, q.flushResponses)
		inst.queues[i] = q
	}
	return inst, nil
}

// NewInstanceOnLane creates a single-queue blkback instance served by a
// shared fleet ServiceLane instead of a dedicated request thread: the
// queue runs on the lane's vCPU and NVMe submission queue, its doorbell
// joins the lane's demux group, and its ring is drained by the lane's
// DRR rounds.
func NewInstanceOnLane(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *blkif.Channel, frontPorts []xen.Port, dev *nvme.Device,
	baseSector, sectors int64, costs Costs, lane *ServiceLane) (*Instance, error) {

	if ch.NumQueues() != 1 || len(frontPorts) != 1 {
		return nil, fmt.Errorf("blkback: vbd%d.%d: fleet lanes serve single-queue frontends (%d queues)",
			frontDom, devid, ch.NumQueues())
	}
	inst := &Instance{
		eng: eng, dom: dom, frontDom: frontDom, devid: devid,
		name:  fmt.Sprintf("vbd%d.%d", frontDom, devid),
		costs: costs, dev: dev,
		base: baseSector, size: sectors,
	}
	// The ring page maps on the lane's vCPU (the lane owns this tenant's
	// hypercall work end to end).
	lane.cpu.Charge(dom.Hypervisor().Costs.Base + dom.Hypervisor().Costs.GrantMapPage)
	q := &ioQueue{
		inst: inst, id: 0,
		ring:  ch.Rings.Queue(0),
		cpu:   lane.cpu,
		sq:    lane.sq,
		pmaps: make(map[xen.GrantRef]*xen.Mapping),
		lane:  lane,
	}
	port, err := dom.BindInterdomain(frontDom, frontPorts[0])
	if err != nil {
		return nil, fmt.Errorf("blkback: %s: %w", inst.name, err)
	}
	q.port = port
	if err := dom.SetHandler(port, q.onEvent); err != nil {
		return nil, err
	}
	if err := lane.demux.Join(port); err != nil {
		return nil, fmt.Errorf("blkback: %s: %w", inst.name, err)
	}
	q.laneSlot = lane.join(q)
	q.notify = sim.NewBatch(eng, q.flushResponses)
	inst.queues = []*ioQueue{q}
	return inst, nil
}

// Lane returns the fleet service lane serving the instance, or nil for a
// dedicated-worker instance.
func (inst *Instance) Lane() *ServiceLane { return inst.queues[0].lane }

// FrontDom returns the tenant guest's domain ID.
func (inst *Instance) FrontDom() xen.DomID { return inst.frontDom }

// Name returns vbd<dom>.<dev>.
func (inst *Instance) Name() string { return inst.name }

// NumQueues returns the instance's worker-shard count.
func (inst *Instance) NumQueues() int { return len(inst.queues) }

// Stats returns the counters aggregated over queues in queue order.
func (inst *Instance) Stats() Stats {
	var s Stats
	for _, q := range inst.queues {
		s.RingRequests += q.stats.RingRequests
		s.Segments += q.stats.Segments
		s.DeviceOps += q.stats.DeviceOps
		s.MergedRequests += q.stats.MergedRequests
		s.PersistentHits += q.stats.PersistentHits
		s.Bytes += q.stats.Bytes
		s.Errors += q.stats.Errors
	}
	return s
}

// QueueStats returns one worker shard's counters.
func (inst *Instance) QueueStats(i int) Stats { return inst.queues[i].stats }

// ThreadRuns exposes request-thread activity, summed over shards.
func (inst *Instance) ThreadRuns() (wakes, runs uint64) {
	for _, q := range inst.queues {
		if q.thread == nil {
			continue // fleet mode: the lane worker serves this queue
		}
		wakes += q.thread.Wakes()
		runs += q.thread.Runs()
	}
	return wakes, runs
}

// Shutdown quiesces the instance and drops persistent mappings.
func (inst *Instance) Shutdown() {
	if inst.dead {
		return
	}
	inst.dead = true
	for _, q := range inst.queues {
		if q.lane != nil {
			q.lane.detach(q)
		}
		_ = inst.dom.Close(q.port)
		maps := make([]*xen.Mapping, 0, len(q.pmaps))
		for _, m := range q.pmaps {
			maps = append(maps, m)
		}
		_ = inst.dom.Hypervisor().UnmapGrantBatch(inst.dom, maps)
		q.pmaps = map[xen.GrantRef]*xen.Mapping{}
	}
}

// getIO takes a pooled request record off the shard's free list.
func (q *ioQueue) getIO() *ioReq {
	if n := len(q.ioFree); n > 0 {
		io := q.ioFree[n-1]
		q.ioFree = q.ioFree[:n-1]
		return io
	}
	return &ioReq{q: q} //kite:alloc-ok pool growth on free-list miss; steady state recycles
}

func (q *ioQueue) putIO(io *ioReq) {
	io.segs = io.segs[:0]
	io.bytes = 0
	q.ioFree = append(q.ioFree, io)
}

// getOp takes a pooled device op; onDone is bound exactly once, when the
// record is first allocated, and survives every recycle.
func (q *ioQueue) getOp() *deviceOp {
	if n := len(q.opFree); n > 0 {
		op := q.opFree[n-1]
		q.opFree = q.opFree[:n-1]
		return op
	}
	op := &deviceOp{q: q}                                  //kite:alloc-ok pool growth on free-list miss; steady state recycles
	op.onDone = func(err error) { op.q.complete(op, err) } //kite:alloc-ok one completion closure per record, bound at first allocation
	return op
}

func (q *ioQueue) putOp(op *deviceOp) {
	op.reqs = op.reqs[:0]
	op.iov = op.iov[:0]
	op.bytes = 0
	q.opFree = append(q.opFree, op)
}

// onEvent wakes the shard's request thread (§3.3: the handler itself stays
// tiny).
//
//kite:hotpath
func (q *ioQueue) onEvent() {
	if q.inst.dead {
		return
	}
	if q.lane != nil {
		if q.ring.RequestAvailable() {
			q.lane.activate(q)
		}
		return
	}
	if q.ring.RequestAvailable() {
		q.thread.Wake()
	}
}

// unlimited is the drain budget of a dedicated request thread: it always
// runs the ring dry.
const unlimited = int(^uint(0) >> 1)

// drain is the request thread body (dedicated-worker mode).
func (q *ioQueue) drain() { q.drainBudget(unlimited) }

// drainBudget serves up to budget ring requests, reporting how many were
// consumed and whether work remains beyond the budget. This is the DRR
// entry point: a fleet lane passes the member's deficit, a dedicated
// thread passes unlimited. more is true only when budget — not the ring —
// ended the drain, so a drained member leaves its lane's round list.
func (q *ioQueue) drainBudget(budget int) (used int, more bool) {
	inst := q.inst
	if inst.dead {
		return 0, false
	}
	for {
		q.batch = q.batch[:0]
		for used < budget {
			req, ok := q.ring.TakeRequest()
			if !ok {
				break
			}
			used++
			q.stats.RingRequests++
			metrics.BlkQueueRequests.Add(1)
			io, err := q.parse(req)
			if err != nil {
				q.stats.Errors++
				q.respond(req.ID, blkif.StatusError)
				continue
			}
			q.batch = append(q.batch, io)
		}
		if len(q.batch) == 0 {
			if used >= budget {
				more = q.ring.RequestAvailable()
				break
			}
			if q.ring.FinalCheckForRequests() {
				continue
			}
			break
		}
		q.buildOps()
		for _, op := range q.ops {
			q.submit(op)
		}
		if used >= budget {
			more = q.ring.RequestAvailable()
			break
		}
	}
	return used, more
}

// parse validates, translates, and resolves one ring request. On error the
// pooled record goes straight back to the free list.
func (q *ioQueue) parse(req blkif.Request) (*ioReq, error) {
	inst := q.inst
	io := q.getIO()
	io.id, io.op = req.ID, req.Op
	segs := req.Segs
	if req.Op == blkif.OpIndirect {
		if !inst.costs.Indirect {
			q.putIO(io)
			return nil, fmt.Errorf("blkback: indirect not negotiated")
		}
		if req.IndirectSegs > blkif.MaxSegsIndirect {
			q.putIO(io)
			return nil, fmt.Errorf("blkback: %d indirect segments exceed limit", req.IndirectSegs)
		}
		io.op = req.Imm
		parsed, err := q.parseIndirect(req)
		if err != nil {
			q.putIO(io)
			return nil, err
		}
		segs = parsed
	} else if len(segs) > blkif.MaxSegsDirect {
		q.putIO(io)
		return nil, fmt.Errorf("blkback: %d direct segments exceed limit", len(segs))
	}

	if io.op == blkif.OpFlush {
		return io, nil
	}

	total, err := q.resolve(segs, io)
	if err != nil {
		q.putIO(io)
		return nil, err
	}
	io.bytes = total
	nsect := int64(total / blkif.SectorSize)
	if req.Sector < 0 || req.Sector+nsect > inst.size {
		q.releaseSegs(io.segs)
		q.putIO(io)
		return nil, fmt.Errorf("blkback: i/o beyond vbd (sector %d + %d)", req.Sector, nsect)
	}
	io.sector = inst.base + req.Sector
	return io, nil
}

// parseIndirect maps the descriptor pages and decodes the segment list into
// the shard's scratch (valid until the next parse).
func (q *ioQueue) parseIndirect(req blkif.Request) ([]blkif.Segment, error) {
	inst := q.inst
	q.segScratch = q.segScratch[:0]
	for pi, ref := range req.IndirectRefs {
		m, hit, err := q.mapRef(ref)
		if err != nil {
			return nil, err
		}
		if hit {
			q.stats.PersistentHits++
		}
		for si := pi * blkif.SegsPerIndirectPage; si < req.IndirectSegs && si < (pi+1)*blkif.SegsPerIndirectPage; si++ {
			q.segScratch = append(q.segScratch, blkif.GetSegment(m.Page, si%blkif.SegsPerIndirectPage))
		}
		if !inst.costs.Persistent {
			_ = inst.dom.Hypervisor().UnmapGrant(inst.dom, m)
		}
	}
	return q.segScratch, nil
}

// mapRef resolves one grant ref through the shard's persistent cache. The
// frontend's page pools are queue-affine, so a ref only ever appears on
// one shard and the caches never duplicate mappings.
func (q *ioQueue) mapRef(ref xen.GrantRef) (m *xen.Mapping, cacheHit bool, err error) {
	inst := q.inst
	if inst.costs.Persistent {
		if m := q.pmaps[ref]; m != nil && m.Live() {
			return m, true, nil
		}
	}
	m, err = inst.dom.Hypervisor().MapGrant(inst.dom, inst.frontDom, ref)
	if err != nil {
		return nil, false, err
	}
	if inst.costs.Persistent {
		q.pmaps[ref] = m //kite:alloc-ok persistent-grant cache fill on first touch; steady state hits
	}
	return m, false, nil
}

// resolve maps every segment into io.segs (capacity retained across the
// record's recycles) and returns the byte total.
func (q *ioQueue) resolve(segs []blkif.Segment, io *ioReq) (int, error) {
	io.segs = io.segs[:0]
	total := 0
	for _, s := range segs {
		if s.FirstSect < 0 || s.LastSect >= blkif.SectorsPerPage || s.FirstSect > s.LastSect {
			q.releaseSegs(io.segs)
			return 0, fmt.Errorf("blkback: bad segment range %d..%d", s.FirstSect, s.LastSect)
		}
		m, hit, err := q.mapRef(s.Ref)
		if err != nil {
			q.releaseSegs(io.segs)
			return 0, err
		}
		if hit {
			q.stats.PersistentHits++
		}
		io.segs = append(io.segs, resolvedSeg{
			mapping: m, persistent: q.inst.costs.Persistent,
			firstSect: s.FirstSect, bytes: s.Bytes(),
		})
		total += s.Bytes()
		q.stats.Segments++
	}
	return total, nil
}

func (q *ioQueue) releaseSegs(segs []resolvedSeg) {
	q.unmapBuf = q.unmapBuf[:0]
	for i := range segs {
		s := &segs[i]
		if !s.persistent && s.mapping.Live() {
			q.unmapBuf = append(q.unmapBuf, s.mapping)
		}
	}
	_ = q.inst.dom.Hypervisor().UnmapGrantBatch(q.inst.dom, q.unmapBuf)
}

// buildOps merges consecutive same-direction requests from q.batch into
// single device operations in q.ops when batching is enabled (§3.3).
// Merging looks only at each request's resolved direction and extent, so
// direct and indirect requests fold into the same op. The frontend stripes
// by extent, so a sequential stream's run within one stripe is all here.
func (q *ioQueue) buildOps() {
	q.ops = q.ops[:0]
	for _, io := range q.batch {
		if io.op == blkif.OpFlush {
			op := q.getOp()
			op.op, op.sector = blkif.OpFlush, 0
			op.reqs = append(op.reqs, io)
			q.ops = append(q.ops, op)
			continue
		}
		if q.inst.costs.Batch && len(q.ops) > 0 {
			last := q.ops[len(q.ops)-1]
			if last.op == io.op && last.sector+int64(last.bytes/blkif.SectorSize) == io.sector {
				last.bytes += io.bytes
				last.reqs = append(last.reqs, io)
				q.stats.MergedRequests++
				continue
			}
		}
		op := q.getOp()
		op.op, op.sector, op.bytes = io.op, io.sector, io.bytes
		op.reqs = append(op.reqs, io)
		q.ops = append(q.ops, op)
	}
}

// submit issues one device operation on the shard's pinned vCPU and NVMe
// submission queue. Reads and writes build an iovec of grant-mapped page
// views on the op and hand it to the device's vectored entry points — the
// merged payload is never flattened into a bounce buffer. The op's
// pre-bound onDone wires the completion back here.
func (q *ioQueue) submit(op *deviceOp) {
	inst := q.inst
	cost := sim.Time(len(op.reqs)) * inst.costs.PerRequest
	for _, io := range op.reqs {
		cost += sim.Time(len(io.segs)) * inst.costs.PerSegment
	}
	q.cpu.Charge(cost)
	q.stats.DeviceOps++
	if op.op != blkif.OpFlush {
		q.stats.Bytes += uint64(op.bytes)
	}

	switch op.op {
	case blkif.OpFlush:
		inst.dev.Flush(op.onDone)
	case blkif.OpWrite, blkif.OpRead:
		op.iov = op.iov[:0]
		for _, io := range op.reqs {
			for i := range io.segs {
				s := &io.segs[i]
				start := s.firstSect * blkif.SectorSize
				op.iov = append(op.iov, s.mapping.Page.Data[start:start+s.bytes])
			}
		}
		if op.op == blkif.OpWrite {
			inst.dev.WriteVecQ(q.sq, op.sector, op.iov, op.onDone)
		} else {
			inst.dev.ReadVecQ(q.sq, op.sector, op.iov, op.onDone)
		}
	default:
		q.complete(op, fmt.Errorf("blkback: unknown op %d", op.op)) //kite:alloc-ok defensive arm; handleRequest only merges validated ops
	}
}

// complete answers every request covered by a device op and recycles the
// pooled records. For reads the device has already gathered into the
// grant-mapped views in op.iov, so there is nothing to copy here.
//
//kite:hotpath
func (q *ioQueue) complete(op *deviceOp, err error) {
	if q.inst.dead {
		return
	}
	status := int8(blkif.StatusOK)
	if err != nil {
		status = blkif.StatusError
		q.stats.Errors++
	}
	for _, io := range op.reqs {
		q.releaseSegs(io.segs)
		q.respond(io.id, status)
		q.putIO(io)
	}
	q.putOp(op)
}

func (q *ioQueue) respond(id uint64, status int8) {
	if !q.ring.PushResponse(blkif.Response{ID: id, Status: status}) {
		return // protocol violation by frontend; nothing sane to do
	}
	if q.lane != nil && q.lane.inRound {
		// Mid-round respond (parse error): the round's flush pass publishes
		// once per member; no per-respond batch event.
		q.lane.members[q.laneSlot].notify = true
		return
	}
	q.notify.Arm(q.inst.eng.Now())
}

// flushResponses publishes every privately queued response and notifies the
// frontend at most once per burst.
func (q *ioQueue) flushResponses() {
	if q.inst.dead {
		return
	}
	if q.ring.PushResponsesAndCheckNotify() {
		q.inst.dom.Notify(q.port)
	}
}
