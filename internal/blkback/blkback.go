// Package blkback implements the storage backend driver of a driver
// domain — the largest from-scratch component of Kite (Table 1, 1904 LOC).
// A dedicated request thread drains the blkif ring when the event channel
// fires (§3.3); requests resolve their granted segments through a
// persistent-reference cache (avoiding map/unmap hypercalls), consecutive
// segments from one or more requests are batched into single device
// operations, and completions are answered asynchronously so later
// requests never wait on earlier ones.
//
// The device path is vectored end to end: a merged device op hands the
// NVMe model an iovec of grant-mapped page views (ReadVec/WriteVec), so
// merged requests are never flattened into an intermediate buffer. All
// per-request and per-op records are pooled on per-instance free lists
// with their completion closures created once, so the steady-state data
// path performs no heap allocation (DESIGN.md §8).
package blkback

import (
	"fmt"

	"kite/internal/blkif"
	"kite/internal/nvme"
	"kite/internal/sim"
	"kite/internal/xen"
)

// Costs parameterizes the backend per OS, plus feature knobs used both for
// negotiation and the paper's design-choice ablations.
type Costs struct {
	PerRequest  sim.Time
	PerSegment  sim.Time
	WakeLatency sim.Time

	Persistent bool // persistent grant references (§3.3)
	Indirect   bool // indirect segment requests (§3.3)
	Batch      bool // merge consecutive requests into one device op (§3.3)
}

// KiteCosts returns the rumprun storage-domain profile.
func KiteCosts() Costs {
	return Costs{
		PerRequest:  900 * sim.Nanosecond,
		PerSegment:  220 * sim.Nanosecond,
		WakeLatency: 2 * sim.Microsecond,
		Persistent:  true, Indirect: true, Batch: true,
	}
}

// LinuxCosts returns the Ubuntu storage-domain profile (heavier block
// layer and kthread wake path).
func LinuxCosts() Costs {
	return Costs{
		PerRequest:  1100 * sim.Nanosecond,
		PerSegment:  260 * sim.Nanosecond,
		WakeLatency: 9 * sim.Microsecond,
		Persistent:  true, Indirect: true, Batch: true,
	}
}

// Stats counts instance activity.
type Stats struct {
	RingRequests   uint64
	Segments       uint64
	DeviceOps      uint64
	MergedRequests uint64 // requests folded into a previous device op
	PersistentHits uint64 // segment resolutions served from the cache
	Errors         uint64
}

type resolvedSeg struct {
	mapping    *xen.Mapping
	persistent bool
	firstSect  int
	bytes      int
}

// ioReq is one parsed ring request. Instances are pooled on the owning
// Instance's free list; segs keeps its capacity across recycles.
type ioReq struct {
	id     uint64
	op     blkif.Op // OpRead/OpWrite/OpFlush after unwrapping indirect
	sector int64    // absolute device sector (translated)
	segs   []resolvedSeg
	bytes  int
	inst   *Instance
}

// deviceOp is one merged device operation. Instances are pooled; reqs and
// iov keep their capacity across recycles, and onDone is created once per
// record so submission never allocates a completion closure. iov lives on
// the op (not the Instance) because several ops are in flight at once.
type deviceOp struct {
	op     blkif.Op
	sector int64
	bytes  int
	reqs   []*ioReq
	iov    [][]byte
	inst   *Instance
	onDone func(err error) // created once, calls inst.complete(op, err)
}

// Instance is one blkback serving one frontend vbd.
type Instance struct {
	eng      *sim.Engine
	dom      *xen.Domain
	frontDom xen.DomID
	devid    int
	name     string
	costs    Costs

	ring *blkif.Ring
	port xen.Port
	dev  *nvme.Device
	base int64 // first sector of this vbd's window on the device
	size int64 // sectors

	thread *sim.Task
	pmaps  map[xen.GrantRef]*xen.Mapping

	// notify coalesces response publication: every respond in a completion
	// burst queues privately, and one wake publishes the lot and sends at
	// most one event-channel notification (§3.3's event coalescing).
	notify *sim.Batch

	// Free lists and drain-loop scratch; all retain capacity so the steady
	// state allocates nothing.
	ioFree     []*ioReq
	opFree     []*deviceOp
	batch      []*ioReq
	ops        []*deviceOp
	segScratch []blkif.Segment // indirect descriptor decode, one parse at a time
	unmapBuf   []*xen.Mapping  // releaseSegs staging

	dead  bool
	stats Stats
}

// NewInstance creates a connected blkback instance over a sector window of
// the physical device.
func NewInstance(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *blkif.Channel, frontPort xen.Port, dev *nvme.Device,
	baseSector, sectors int64, costs Costs) (*Instance, error) {

	inst := &Instance{
		eng: eng, dom: dom, frontDom: frontDom, devid: devid,
		name:  fmt.Sprintf("vbd%d.%d", frontDom, devid),
		costs: costs, ring: ch.Ring, dev: dev,
		base: baseSector, size: sectors,
		pmaps: make(map[xen.GrantRef]*xen.Mapping),
	}
	// Map the ring page.
	dom.CPUs.Charge(dom.Hypervisor().Costs.Base + dom.Hypervisor().Costs.GrantMapPage)
	port, err := dom.BindInterdomain(frontDom, frontPort)
	if err != nil {
		return nil, fmt.Errorf("blkback: %s: %w", inst.name, err)
	}
	inst.port = port
	if err := dom.SetHandler(port, inst.onEvent); err != nil {
		return nil, err
	}
	inst.thread = sim.NewTask(eng, dom.CPUs.CPU(int(frontDom)%dom.CPUs.Len()),
		inst.name+"/req-thread", costs.WakeLatency, inst.drain)
	inst.notify = sim.NewBatch(eng, inst.flushResponses)
	return inst, nil
}

// Name returns vbd<dom>.<dev>.
func (inst *Instance) Name() string { return inst.name }

// Stats returns a snapshot of the counters.
func (inst *Instance) Stats() Stats { return inst.stats }

// ThreadRuns exposes request-thread activity.
func (inst *Instance) ThreadRuns() (wakes, runs uint64) {
	return inst.thread.Wakes(), inst.thread.Runs()
}

// Shutdown quiesces the instance and drops persistent mappings.
func (inst *Instance) Shutdown() {
	if inst.dead {
		return
	}
	inst.dead = true
	_ = inst.dom.Close(inst.port)
	maps := make([]*xen.Mapping, 0, len(inst.pmaps))
	for _, m := range inst.pmaps {
		maps = append(maps, m)
	}
	_ = inst.dom.Hypervisor().UnmapGrantBatch(inst.dom, maps)
	inst.pmaps = map[xen.GrantRef]*xen.Mapping{}
}

// getIO takes a pooled request record off the free list.
func (inst *Instance) getIO() *ioReq {
	if n := len(inst.ioFree); n > 0 {
		io := inst.ioFree[n-1]
		inst.ioFree = inst.ioFree[:n-1]
		return io
	}
	return &ioReq{inst: inst}
}

func (inst *Instance) putIO(io *ioReq) {
	io.segs = io.segs[:0]
	io.bytes = 0
	inst.ioFree = append(inst.ioFree, io)
}

// getOp takes a pooled device op; onDone is bound exactly once, when the
// record is first allocated, and survives every recycle.
func (inst *Instance) getOp() *deviceOp {
	if n := len(inst.opFree); n > 0 {
		op := inst.opFree[n-1]
		inst.opFree = inst.opFree[:n-1]
		return op
	}
	op := &deviceOp{inst: inst}
	op.onDone = func(err error) { op.inst.complete(op, err) }
	return op
}

func (inst *Instance) putOp(op *deviceOp) {
	op.reqs = op.reqs[:0]
	op.iov = op.iov[:0]
	op.bytes = 0
	inst.opFree = append(inst.opFree, op)
}

// onEvent wakes the request thread (§3.3: the handler itself stays tiny).
func (inst *Instance) onEvent() {
	if inst.dead {
		return
	}
	if inst.ring.RequestAvailable() {
		inst.thread.Wake()
	}
}

// drain is the request thread body.
func (inst *Instance) drain() {
	if inst.dead {
		return
	}
	for {
		inst.batch = inst.batch[:0]
		for {
			req, ok := inst.ring.TakeRequest()
			if !ok {
				break
			}
			inst.stats.RingRequests++
			io, err := inst.parse(req)
			if err != nil {
				inst.stats.Errors++
				inst.respond(req.ID, blkif.StatusError)
				continue
			}
			inst.batch = append(inst.batch, io)
		}
		if len(inst.batch) == 0 {
			if inst.ring.FinalCheckForRequests() {
				continue
			}
			break
		}
		inst.buildOps()
		for _, op := range inst.ops {
			inst.submit(op)
		}
	}
}

// parse validates, translates, and resolves one ring request. On error the
// pooled record goes straight back to the free list.
func (inst *Instance) parse(req blkif.Request) (*ioReq, error) {
	io := inst.getIO()
	io.id, io.op = req.ID, req.Op
	segs := req.Segs
	if req.Op == blkif.OpIndirect {
		if !inst.costs.Indirect {
			inst.putIO(io)
			return nil, fmt.Errorf("blkback: indirect not negotiated")
		}
		if req.IndirectSegs > blkif.MaxSegsIndirect {
			inst.putIO(io)
			return nil, fmt.Errorf("blkback: %d indirect segments exceed limit", req.IndirectSegs)
		}
		io.op = req.Imm
		parsed, err := inst.parseIndirect(req)
		if err != nil {
			inst.putIO(io)
			return nil, err
		}
		segs = parsed
	} else if len(segs) > blkif.MaxSegsDirect {
		inst.putIO(io)
		return nil, fmt.Errorf("blkback: %d direct segments exceed limit", len(segs))
	}

	if io.op == blkif.OpFlush {
		return io, nil
	}

	total, err := inst.resolve(segs, io)
	if err != nil {
		inst.putIO(io)
		return nil, err
	}
	io.bytes = total
	nsect := int64(total / blkif.SectorSize)
	if req.Sector < 0 || req.Sector+nsect > inst.size {
		inst.releaseSegs(io.segs)
		inst.putIO(io)
		return nil, fmt.Errorf("blkback: i/o beyond vbd (sector %d + %d)", req.Sector, nsect)
	}
	io.sector = inst.base + req.Sector
	return io, nil
}

// parseIndirect maps the descriptor pages and decodes the segment list into
// the instance's scratch (valid until the next parse).
func (inst *Instance) parseIndirect(req blkif.Request) ([]blkif.Segment, error) {
	inst.segScratch = inst.segScratch[:0]
	for pi, ref := range req.IndirectRefs {
		m, hit, err := inst.mapRef(ref)
		if err != nil {
			return nil, err
		}
		if hit {
			inst.stats.PersistentHits++
		}
		for si := pi * blkif.SegsPerIndirectPage; si < req.IndirectSegs && si < (pi+1)*blkif.SegsPerIndirectPage; si++ {
			inst.segScratch = append(inst.segScratch, blkif.GetSegment(m.Page, si%blkif.SegsPerIndirectPage))
		}
		if !inst.costs.Persistent {
			_ = inst.dom.Hypervisor().UnmapGrant(inst.dom, m)
		}
	}
	return inst.segScratch, nil
}

// mapRef resolves one grant ref through the persistent cache.
func (inst *Instance) mapRef(ref xen.GrantRef) (m *xen.Mapping, cacheHit bool, err error) {
	if inst.costs.Persistent {
		if m := inst.pmaps[ref]; m != nil && m.Live() {
			return m, true, nil
		}
	}
	m, err = inst.dom.Hypervisor().MapGrant(inst.dom, inst.frontDom, ref)
	if err != nil {
		return nil, false, err
	}
	if inst.costs.Persistent {
		inst.pmaps[ref] = m
	}
	return m, false, nil
}

// resolve maps every segment into io.segs (capacity retained across the
// record's recycles) and returns the byte total.
func (inst *Instance) resolve(segs []blkif.Segment, io *ioReq) (int, error) {
	io.segs = io.segs[:0]
	total := 0
	for _, s := range segs {
		if s.FirstSect < 0 || s.LastSect >= blkif.SectorsPerPage || s.FirstSect > s.LastSect {
			inst.releaseSegs(io.segs)
			return 0, fmt.Errorf("blkback: bad segment range %d..%d", s.FirstSect, s.LastSect)
		}
		m, hit, err := inst.mapRef(s.Ref)
		if err != nil {
			inst.releaseSegs(io.segs)
			return 0, err
		}
		if hit {
			inst.stats.PersistentHits++
		}
		io.segs = append(io.segs, resolvedSeg{
			mapping: m, persistent: inst.costs.Persistent,
			firstSect: s.FirstSect, bytes: s.Bytes(),
		})
		total += s.Bytes()
		inst.stats.Segments++
	}
	return total, nil
}

func (inst *Instance) releaseSegs(segs []resolvedSeg) {
	inst.unmapBuf = inst.unmapBuf[:0]
	for i := range segs {
		s := &segs[i]
		if !s.persistent && s.mapping.Live() {
			inst.unmapBuf = append(inst.unmapBuf, s.mapping)
		}
	}
	_ = inst.dom.Hypervisor().UnmapGrantBatch(inst.dom, inst.unmapBuf)
}

// buildOps merges consecutive same-direction requests from inst.batch into
// single device operations in inst.ops when batching is enabled (§3.3).
// Merging looks only at each request's resolved direction and extent, so
// direct and indirect requests fold into the same op.
func (inst *Instance) buildOps() {
	inst.ops = inst.ops[:0]
	for _, io := range inst.batch {
		if io.op == blkif.OpFlush {
			op := inst.getOp()
			op.op, op.sector = blkif.OpFlush, 0
			op.reqs = append(op.reqs, io)
			inst.ops = append(inst.ops, op)
			continue
		}
		if inst.costs.Batch && len(inst.ops) > 0 {
			last := inst.ops[len(inst.ops)-1]
			if last.op == io.op && last.sector+int64(last.bytes/blkif.SectorSize) == io.sector {
				last.bytes += io.bytes
				last.reqs = append(last.reqs, io)
				inst.stats.MergedRequests++
				continue
			}
		}
		op := inst.getOp()
		op.op, op.sector, op.bytes = io.op, io.sector, io.bytes
		op.reqs = append(op.reqs, io)
		inst.ops = append(inst.ops, op)
	}
}

// submit issues one device operation. Reads and writes build an iovec of
// grant-mapped page views on the op and hand it to the device's vectored
// entry points — the merged payload is never flattened into a bounce
// buffer. The op's pre-bound onDone wires the completion back here.
func (inst *Instance) submit(op *deviceOp) {
	cost := sim.Time(len(op.reqs)) * inst.costs.PerRequest
	for _, io := range op.reqs {
		cost += sim.Time(len(io.segs)) * inst.costs.PerSegment
	}
	inst.dom.CPUs.Charge(cost)
	inst.stats.DeviceOps++

	switch op.op {
	case blkif.OpFlush:
		inst.dev.Flush(op.onDone)
	case blkif.OpWrite, blkif.OpRead:
		op.iov = op.iov[:0]
		for _, io := range op.reqs {
			for i := range io.segs {
				s := &io.segs[i]
				start := s.firstSect * blkif.SectorSize
				op.iov = append(op.iov, s.mapping.Page.Data[start:start+s.bytes])
			}
		}
		if op.op == blkif.OpWrite {
			inst.dev.WriteVec(op.sector, op.iov, op.onDone)
		} else {
			inst.dev.ReadVec(op.sector, op.iov, op.onDone)
		}
	default:
		inst.complete(op, fmt.Errorf("blkback: unknown op %d", op.op))
	}
}

// complete answers every request covered by a device op and recycles the
// pooled records. For reads the device has already gathered into the
// grant-mapped views in op.iov, so there is nothing to copy here.
func (inst *Instance) complete(op *deviceOp, err error) {
	if inst.dead {
		return
	}
	status := int8(blkif.StatusOK)
	if err != nil {
		status = blkif.StatusError
		inst.stats.Errors++
	}
	for _, io := range op.reqs {
		inst.releaseSegs(io.segs)
		inst.respond(io.id, status)
		inst.putIO(io)
	}
	inst.putOp(op)
}

func (inst *Instance) respond(id uint64, status int8) {
	if !inst.ring.PushResponse(blkif.Response{ID: id, Status: status}) {
		return // protocol violation by frontend; nothing sane to do
	}
	inst.notify.Arm(inst.eng.Now())
}

// flushResponses publishes every privately queued response and notifies the
// frontend at most once per burst.
func (inst *Instance) flushResponses() {
	if inst.dead {
		return
	}
	if inst.ring.PushResponsesAndCheckNotify() {
		inst.dom.Notify(inst.port)
	}
}
