// Package kite is the public API of the Kite reproduction — a
// deterministic, simulation-backed implementation of "Kite: Lightweight
// Critical Service Domains" (EuroSys 2022).
//
// Kite builds Xen driver domains — the isolated VMs that own a physical
// NIC or NVMe device and export paravirtual I/O to guests — from rumprun
// unikernels instead of full Linux. This package exposes the system
// construction API (testbeds, driver domains, guests, daemon VMs), the OS
// profiles behind the security and footprint analyses, and the workload
// drivers that regenerate every figure and table of the paper's
// evaluation. See DESIGN.md for the substitution strategy and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Quick start:
//
//	tb := kite.NewTestbed(1)
//	nd, _ := tb.System.CreateNetworkDomain(kite.NetworkDomainConfig{
//		Kind: kite.KindKite, NIC: tb.ServerNIC,
//	})
//	guest, _ := tb.System.CreateGuest(kite.GuestConfig{
//		Name: "domU", IP: tb.GuestIP, Net: nd,
//	})
//	tb.System.RunReady(guest.Ready, 500000)
//	tb.Client.Stack.Ping(tb.GuestIP, 56, func(rtt sim.Time) { ... })
package kite

import (
	"kite/internal/core"
	"kite/internal/guestos"
	"kite/internal/security"
	"kite/internal/sim"
)

// Re-exported system construction types (see internal/core).
type (
	// System is one simulated Xen machine with Dom0.
	System = core.System
	// Testbed is the paper's two-machine hardware setup (Table 2).
	Testbed = core.Testbed
	// NetworkRig is a ready network-domain experiment setup (§5.3).
	NetworkRig = core.NetworkRig
	// StorageRig is a ready storage-domain experiment setup (§5.4).
	StorageRig = core.StorageRig
	// StorageRigConfig tunes a StorageRig.
	StorageRigConfig = core.StorageRigConfig
	// TuningKnobs toggles blkback's design choices (ablations).
	TuningKnobs = core.TuningKnobs
	// DriverKind selects Kite or the Linux baseline.
	DriverKind = core.DriverKind
	// NetworkDomainConfig describes a network driver domain.
	NetworkDomainConfig = core.NetworkDomainConfig
	// NetworkDomain is a running network driver domain.
	NetworkDomain = core.NetworkDomain
	// StorageDomainConfig describes a storage driver domain.
	StorageDomainConfig = core.StorageDomainConfig
	// StorageDomain is a running storage driver domain.
	StorageDomain = core.StorageDomain
	// GuestConfig describes a DomU application VM.
	GuestConfig = core.GuestConfig
	// Guest is a DomU with its PV frontends.
	Guest = core.Guest
	// DaemonVM is a unikernelized service VM (§5.5).
	DaemonVM = core.DaemonVM
)

// Driver domain kinds.
const (
	KindKite  = core.KindKite
	KindLinux = core.KindLinux
)

// NewSystem boots a hypervisor with Dom0.
func NewSystem(seed uint64) *System { return core.NewSystem(seed) }

// NewTestbed assembles the Table 2 hardware.
func NewTestbed(seed uint64) *Testbed { return core.NewTestbed(seed) }

// NewNetworkRig builds the standard network experiment setup.
func NewNetworkRig(kind DriverKind, seed uint64) (*NetworkRig, error) {
	return core.NewNetworkRig(kind, seed)
}

// NewStorageRig builds the standard storage experiment setup.
func NewStorageRig(cfg StorageRigConfig) (*StorageRig, error) {
	return core.NewStorageRig(cfg)
}

// Re-exported OS profile types (see internal/guestos).
type (
	// Profile describes one VM kind's OS inventory.
	Profile = guestos.Profile
	// BootPhase is one step of a boot sequence.
	BootPhase = guestos.BootPhase
)

// OS profile constructors.
var (
	// UbuntuDriverDomain is the Linux baseline driver domain.
	UbuntuDriverDomain = guestos.UbuntuDriverDomain
	// UbuntuGuest is the DomU application VM profile.
	UbuntuGuest = guestos.UbuntuGuest
	// KiteNetworkDomain is the unikernel network domain profile.
	KiteNetworkDomain = guestos.KiteNetworkDomain
	// KiteStorageDomain is the unikernel storage domain profile.
	KiteStorageDomain = guestos.KiteStorageDomain
	// KiteDHCPDomain is the unikernel daemon VM profile.
	KiteDHCPDomain = guestos.KiteDHCPDomain
)

// Re-exported security analysis (see internal/security).
type (
	// CVE is one vulnerability record.
	CVE = security.CVE
)

// Security analysis functions.
var (
	// Table3CVEs returns the paper's Table 3 records.
	Table3CVEs = security.Table3CVEs
	// CVEApplies reports whether a CVE is exploitable on a profile.
	CVEApplies = security.Applies
	// GadgetCounts runs the ROP scan for one kernel configuration.
	GadgetCounts = security.GadgetCounts
)

// Time aliases the simulation clock type.
type Time = sim.Time

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// GadgetScanProfile names a kernel configuration for the ROP scan.
type GadgetScanProfile = guestos.GadgetScanProfile

// KiteNetworkDomainScanProfile returns the Kite entry of the Fig 1b/5
// gadget comparison.
func KiteNetworkDomainScanProfile() GadgetScanProfile {
	return guestos.GadgetScanProfiles()[0]
}

// GadgetScanProfiles returns all six Fig 1b/5 configurations.
var GadgetScanProfiles = guestos.GadgetScanProfiles
