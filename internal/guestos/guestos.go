// Package guestos defines the operating-system profiles of every VM kind
// in the reproduction: the Ubuntu 18.04 guests and driver domains of the
// baseline, and Kite's rumprun-based unikernel domains. A profile carries
// the inventories the security and footprint experiments operate on —
// retained syscalls (Fig 4a), image composition (Fig 4b), executable text
// for gadget scanning (Figs 1b/5), boot phases (Fig 4c) — plus scheduling
// parameters the toolstack uses when building the domain.
package guestos

import "kite/internal/sim"

// Family is the OS code base a profile derives from.
type Family int

// OS families.
const (
	FamilyLinux Family = iota
	FamilyNetBSD
	FamilyWindows // only in the CVE statistics (Fig 1a)
)

func (f Family) String() string {
	switch f {
	case FamilyLinux:
		return "Linux"
	case FamilyNetBSD:
		return "NetBSD"
	case FamilyWindows:
		return "Windows"
	}
	return "?"
}

// ComponentKind categorizes image components.
type ComponentKind int

// Component kinds.
const (
	KindKernel ComponentKind = iota
	KindModule
	KindLib
	KindTool
	KindScript
	KindApp
)

// Component is one piece of a VM image.
type Component struct {
	Name string
	Kind ComponentKind
	// SizeBytes is the on-disk size; CodeBytes is the executable text the
	// ROP scanner sees.
	SizeBytes int64
	CodeBytes int64
}

// BootPhase is one step of a profile's boot sequence.
type BootPhase struct {
	Name     string
	Duration sim.Time
}

// Profile describes one VM kind.
type Profile struct {
	Name   string
	Family Family

	Components []Component
	Syscalls   []string
	BootPhases []BootPhase

	// Toolstack parameters (Table 2 / §5 assignments).
	VCPUs      int
	MemBytes   int64
	IRQLatency sim.Time
}

// ImageBytes returns the total image size.
func (p *Profile) ImageBytes() int64 {
	var total int64
	for _, c := range p.Components {
		total += c.SizeBytes
	}
	return total
}

// KernelImageBytes returns the kernel+modules size — what Figure 4b
// compares ("for Linux we measured only the kernel and its modules"; for
// Kite the whole unikernel binary is the kernel).
func (p *Profile) KernelImageBytes() int64 {
	var total int64
	for _, c := range p.Components {
		if c.Kind == KindKernel || c.Kind == KindModule ||
			(p.Family == FamilyNetBSD) { // the unikernel image is one binary
			total += c.SizeBytes
		}
	}
	return total
}

// CodeBytes returns the executable text visible to a gadget scan.
func (p *Profile) CodeBytes() int64 {
	var total int64
	for _, c := range p.Components {
		total += c.CodeBytes
	}
	return total
}

// KernelCodeBytes returns executable kernel+module text (the Fig 1b/5
// scan target; user-space gadgets are excluded there).
func (p *Profile) KernelCodeBytes() int64 {
	var total int64
	for _, c := range p.Components {
		if c.Kind == KindKernel || c.Kind == KindModule || p.Family == FamilyNetBSD {
			total += c.CodeBytes
		}
	}
	return total
}

// HasSyscall reports whether the profile retains a syscall.
func (p *Profile) HasSyscall(name string) bool {
	for _, s := range p.Syscalls {
		if s == name {
			return true
		}
	}
	return false
}

// HasComponent reports whether the profile ships a component.
func (p *Profile) HasComponent(name string) bool {
	for _, c := range p.Components {
		if c.Name == name {
			return true
		}
	}
	return false
}

// BootTime returns the total boot duration.
func (p *Profile) BootTime() sim.Time {
	var total sim.Time
	for _, ph := range p.BootPhases {
		total += ph.Duration
	}
	return total
}

// Boot schedules the profile's boot sequence on the engine; onPhase (may
// be nil) observes each phase completing, and done fires when the VM is
// ready. Used by the toolstack and the E1 boot-time experiment.
func (p *Profile) Boot(eng *sim.Engine, onPhase func(BootPhase), done func()) {
	at := sim.Time(0)
	for _, ph := range p.BootPhases {
		ph := ph
		at += ph.Duration
		eng.After(at, func() {
			if onPhase != nil {
				onPhase(ph)
			}
		})
	}
	eng.After(at, done)
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// UbuntuDriverDomain is the baseline: Ubuntu 18.04.3, kernel
// 5.0.0-23-generic, with the xen-utils toolstack (§5 setup). Kernel plus
// modules come to ~43 MB — about 10x Kite's image (Fig 4b) — and boot
// takes ~75 s (Fig 4c).
func UbuntuDriverDomain() *Profile {
	return &Profile{
		Name:   "ubuntu-dd",
		Family: FamilyLinux,
		Components: []Component{
			{Name: "vmlinuz-5.0.0-23", Kind: KindKernel, SizeBytes: 8 * mb, CodeBytes: 17 * mb},
			{Name: "modules-5.0.0-23", Kind: KindModule, SizeBytes: 35 * mb, CodeBytes: 28 * mb},
			{Name: "glibc", Kind: KindLib, SizeBytes: 12 * mb, CodeBytes: 8 * mb},
			{Name: "systemd", Kind: KindTool, SizeBytes: 9 * mb, CodeBytes: 6 * mb},
			{Name: "bash", Kind: KindTool, SizeBytes: 1 * mb, CodeBytes: 900 * kb},
			{Name: "coreutils", Kind: KindTool, SizeBytes: 7 * mb, CodeBytes: 5 * mb},
			{Name: "python3", Kind: KindTool, SizeBytes: 48 * mb, CodeBytes: 4 * mb},
			{Name: "openssl", Kind: KindLib, SizeBytes: 3 * mb, CodeBytes: 2 * mb},
			{Name: "xen-utils", Kind: KindTool, SizeBytes: 6 * mb, CodeBytes: 4 * mb},
			{Name: "libxl", Kind: KindLib, SizeBytes: 3 * mb, CodeBytes: 2 * mb},
			{Name: "udev", Kind: KindTool, SizeBytes: 2 * mb, CodeBytes: 1 * mb},
			{Name: "hotplug-scripts", Kind: KindScript, SizeBytes: 256 * kb},
		},
		Syscalls: UbuntuDriverDomainSyscalls,
		BootPhases: []BootPhase{
			{"bios+grub", 3 * sim.Second},
			{"kernel+initramfs", 14 * sim.Second},
			{"udev coldplug", 9 * sim.Second},
			{"mount+fsck", 6 * sim.Second},
			{"systemd units", 22 * sim.Second},
			{"networking.service", 8 * sim.Second},
			{"xen-utils/xl devd", 9 * sim.Second},
			{"getty/login ready", 4 * sim.Second},
		},
		VCPUs:      1,
		MemBytes:   2 << 30,              // 2 GB (§5)
		IRQLatency: 95 * sim.Microsecond, // idle-vCPU wake through Xen + softirq
	}
}

// UbuntuGuest is the DomU application VM (5 GB RAM, 22 vCPUs in §5).
func UbuntuGuest() *Profile {
	p := UbuntuDriverDomain()
	p.Name = "ubuntu-guest"
	p.VCPUs = 22
	p.MemBytes = 5 << 30
	p.IRQLatency = 55 * sim.Microsecond // many vCPUs: one is usually near-runnable
	return p
}

// kiteBase returns the rumprun pieces shared by all Kite domains.
func kiteBase(name string, app Component, drivers Component, syscalls []string) *Profile {
	return &Profile{
		Name:   name,
		Family: FamilyNetBSD,
		Components: []Component{
			{Name: "rumprun-bmk", Kind: KindKernel, SizeBytes: 700 * kb, CodeBytes: 500 * kb},
			{Name: "rump-kernel-base", Kind: KindKernel, SizeBytes: 900 * kb, CodeBytes: 700 * kb},
			drivers,
			{Name: "libc-subset", Kind: KindLib, SizeBytes: 600 * kb, CodeBytes: 400 * kb},
			app,
		},
		Syscalls: syscalls,
		BootPhases: []BootPhase{
			{"hvm boot+image load", 1500 * sim.Millisecond},
			{"rumprun init", 900 * sim.Millisecond},
			{"device driver attach", 2800 * sim.Millisecond},
			{"xenbus+backend ready", 1200 * sim.Millisecond},
			{"configuration app", 600 * sim.Millisecond},
		},
		VCPUs:      1,
		MemBytes:   1 << 30,              // 1 GB (§5: rumprun needs less)
		IRQLatency: 30 * sim.Microsecond, // idle wake straight into the BMK handler
	}
}

// KiteNetworkDomain is the unikernelized network driver domain.
func KiteNetworkDomain() *Profile {
	return kiteBase("kite-net",
		Component{Name: "bridge-app+brconfig+ifconfig", Kind: KindApp, SizeBytes: 450 * kb, CodeBytes: 300 * kb},
		Component{Name: "netbsd-net-drivers+tcpip", Kind: KindModule, SizeBytes: 1600 * kb, CodeBytes: 1200 * kb},
		KiteNetworkSyscalls)
}

// KiteStorageDomain is the unikernelized storage driver domain.
func KiteStorageDomain() *Profile {
	return kiteBase("kite-storage",
		Component{Name: "block-status-app+vbdconf", Kind: KindApp, SizeBytes: 400 * kb, CodeBytes: 260 * kb},
		Component{Name: "netbsd-nvme-driver+vnode", Kind: KindModule, SizeBytes: 1700 * kb, CodeBytes: 1300 * kb},
		KiteStorageSyscalls)
}

// KiteDHCPDomain is the unikernelized daemon service VM (§5.5: OpenDHCP
// ported with 16 LOC of changes).
func KiteDHCPDomain() *Profile {
	p := kiteBase("kite-dhcp",
		Component{Name: "opendhcp", Kind: KindApp, SizeBytes: 350 * kb, CodeBytes: 240 * kb},
		Component{Name: "netbsd-net-drivers+tcpip", Kind: KindModule, SizeBytes: 1600 * kb, CodeBytes: 1200 * kb},
		KiteNetworkSyscalls)
	p.Name = "kite-dhcp"
	p.MemBytes = 512 << 20
	return p
}

// GadgetScanProfile names a kernel configuration for the Fig 1b/5 gadget
// comparison, with the executable text the scanner generates and walks.
type GadgetScanProfile struct {
	Name      string
	CodeBytes int64
	Seed      uint64
}

// GadgetScanProfiles returns the six configurations of Figures 1b/5: Kite
// and five Linux kernels with their modules (the default config is
// minimal with almost no modules, yet already has ~4x Kite's gadgets).
func GadgetScanProfiles() []GadgetScanProfile {
	return []GadgetScanProfile{
		{Name: "Kite", CodeBytes: KiteNetworkDomain().KernelCodeBytes(), Seed: 0x171e},
		{Name: "Default", CodeBytes: 11 * mb, Seed: 0xdef0},
		{Name: "CentOS", CodeBytes: 105 * mb, Seed: 0xce05},
		{Name: "Fedora", CodeBytes: 195 * mb, Seed: 0xfed0},
		{Name: "Debian", CodeBytes: 225 * mb, Seed: 0xdeb1},
		{Name: "Ubuntu", CodeBytes: 245 * mb, Seed: 0x0b04},
	}
}
