// Package ring implements Xen's shared I/O ring protocol (xen/io/ring.h):
// a fixed power-of-two slot array shared between a frontend and a backend,
// where request slots are recycled as response slots. The producer/consumer
// index arithmetic, private-vs-shared producer indices, free-slot
// computation, and the notification-suppression protocol (req_event /
// rsp_event) follow the Xen macros, because the paper's data-plane
// behaviour — batching, event coalescing — falls out of exactly these
// details.
package ring

import "fmt"

// Ring is a typed shared ring. The frontend produces Req values and
// consumes Rsp values; the backend does the opposite. One Ring value models
// the shared page; both sides hold a pointer to it (the mapping).
type Ring[Req, Rsp any] struct {
	size uint32 // power of two

	reqs []Req
	rsps []Rsp

	// Private producer indices (the *_prod_pvt fields): slots filled but
	// not yet published to the other side.
	reqProdPvt uint32
	rspProdPvt uint32

	// Shared indices (the sring fields).
	reqProd, reqCons uint32
	rspProd, rspCons uint32

	// Event thresholds for notification suppression.
	reqEvent, rspEvent uint32

	reqTotal, rspTotal uint64
	notifyReqSaved     uint64
	notifyRspSaved     uint64
}

// New creates a ring with the given number of slots (must be a power of
// two; Xen's netif rings have 256, blkif 32).
func New[Req, Rsp any](size int) *Ring[Req, Rsp] {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("ring: size %d not a power of two", size))
	}
	return &Ring[Req, Rsp]{
		size:     uint32(size),
		reqs:     make([]Req, size),
		rsps:     make([]Rsp, size),
		reqEvent: 1,
		rspEvent: 1,
	}
}

// Size returns the slot count.
func (r *Ring[Req, Rsp]) Size() int { return int(r.size) }

func (r *Ring[Req, Rsp]) idx(i uint32) uint32 { return i & (r.size - 1) }

// --- Frontend side ---

// FreeRequests returns how many request slots the frontend may still fill:
// size minus slots occupied by unpublished/outstanding requests and
// unconsumed responses (RING_FREE_REQUESTS with the private index).
func (r *Ring[Req, Rsp]) FreeRequests() int {
	return int(r.size - (r.reqProdPvt - r.rspCons))
}

// Full reports whether no request slot is free.
func (r *Ring[Req, Rsp]) Full() bool { return r.FreeRequests() == 0 }

// PushRequest queues one request privately. It reports false when the ring
// is full. The request becomes visible to the backend only after
// PushRequestsAndCheckNotify.
func (r *Ring[Req, Rsp]) PushRequest(req Req) bool {
	if r.FreeRequests() == 0 {
		return false
	}
	r.reqs[r.idx(r.reqProdPvt)] = req
	r.reqProdPvt++
	r.reqTotal++
	return true
}

// PushRequestsAndCheckNotify publishes all privately queued requests and
// reports whether the backend needs an event: true only if the backend's
// advertised req_event threshold falls within the newly published window
// (RING_PUSH_REQUESTS_AND_CHECK_NOTIFY).
func (r *Ring[Req, Rsp]) PushRequestsAndCheckNotify() bool {
	old := r.reqProd
	new := r.reqProdPvt
	r.reqProd = new
	notify := new-r.reqEvent < new-old // unsigned wrap: old < req_event <= new
	if !notify && new != old {
		r.notifyReqSaved++
	}
	return notify
}

// ResponseAvailable reports whether the frontend has unconsumed responses.
func (r *Ring[Req, Rsp]) ResponseAvailable() bool { return r.rspCons != r.rspProd }

// TakeResponse consumes one published response.
func (r *Ring[Req, Rsp]) TakeResponse() (Rsp, bool) {
	var zero Rsp
	if !r.ResponseAvailable() {
		return zero, false
	}
	rsp := r.rsps[r.idx(r.rspCons)]
	r.rspCons++
	return rsp, true
}

// FinalCheckForResponses re-arms the response event threshold and reports
// whether more responses raced in (RING_FINAL_CHECK_FOR_RESPONSES). The
// frontend loops until this returns false, then sleeps.
func (r *Ring[Req, Rsp]) FinalCheckForResponses() bool {
	if r.ResponseAvailable() {
		return true
	}
	r.rspEvent = r.rspCons + 1
	return r.ResponseAvailable()
}

// --- Backend side ---

// RequestAvailable reports whether the backend has unconsumed published
// requests.
func (r *Ring[Req, Rsp]) RequestAvailable() bool { return r.reqCons != r.reqProd }

// UnconsumedRequests returns the number of published requests waiting for
// the backend.
func (r *Ring[Req, Rsp]) UnconsumedRequests() int { return int(r.reqProd - r.reqCons) }

// TakeRequest consumes one published request.
func (r *Ring[Req, Rsp]) TakeRequest() (Req, bool) {
	var zero Req
	if !r.RequestAvailable() {
		return zero, false
	}
	req := r.reqs[r.idx(r.reqCons)]
	r.reqCons++
	return req, true
}

// FinalCheckForRequests re-arms the request event threshold; the backend's
// worker loops until it returns false (matching the pusher thread's
// sleep/wake protocol).
func (r *Ring[Req, Rsp]) FinalCheckForRequests() bool {
	if r.RequestAvailable() {
		return true
	}
	r.reqEvent = r.reqCons + 1
	return r.RequestAvailable()
}

// FreeResponses returns how many response slots the backend may fill; a
// response reuses the slot of a consumed request, so the bound is the
// number of consumed-but-unanswered requests.
func (r *Ring[Req, Rsp]) FreeResponses() int {
	return int(r.reqCons - r.rspProdPvt)
}

// PushResponse queues one response privately into a served-request slot.
// It reports false if no served request slot is available (a protocol
// violation by the backend).
func (r *Ring[Req, Rsp]) PushResponse(rsp Rsp) bool {
	if r.FreeResponses() == 0 {
		return false
	}
	r.rsps[r.idx(r.rspProdPvt)] = rsp
	r.rspProdPvt++
	r.rspTotal++
	return true
}

// PushResponsesAndCheckNotify publishes queued responses and reports
// whether the frontend needs an event.
func (r *Ring[Req, Rsp]) PushResponsesAndCheckNotify() bool {
	old := r.rspProd
	new := r.rspProdPvt
	r.rspProd = new
	notify := new-r.rspEvent < new-old
	if !notify && new != old {
		r.notifyRspSaved++
	}
	return notify
}

// Stats returns (requests pushed, responses pushed, request notifications
// suppressed, response notifications suppressed) over the ring's lifetime.
func (r *Ring[Req, Rsp]) Stats() (reqs, rsps, reqNotifySaved, rspNotifySaved uint64) {
	return r.reqTotal, r.rspTotal, r.notifyReqSaved, r.notifyRspSaved
}

// Inflight returns the number of requests consumed by the backend but not
// yet answered (privately or publicly).
func (r *Ring[Req, Rsp]) Inflight() int { return int(r.reqCons - r.rspProdPvt) }
