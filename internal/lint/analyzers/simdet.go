package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"kite/internal/lint/analysis"
)

// Simdet enforces the determinism contract behind byte-identical
// `-parallel` × `-queues` summaries: a package whose doc comment carries
// //kite:deterministic may not consult wall-clock time (time.Now and
// friends), the process-global math/rand source, or iterate over a map
// (whose order varies run to run) without a //kite:orderok justification.
//
// Sharded execution adds a concurrency face to the same contract: real
// goroutines may only appear where the lookahead-window protocol already
// orders their effects. A `go` statement or a `sync` import in a
// deterministic package therefore requires a //kite:shardsafe directive
// stating why scheduling cannot leak into the timeline (shards share
// nothing mid-window; the barrier merge totally orders cross-shard posts).
// sync/atomic stays exempt — commutative counter adds are order-blind.
//
// The directive lives in the package doc rather than in the analyzer so
// the contract is visible where the code is; the clean-tree meta-test
// asserts that internal/sim, internal/core, and internal/experiments all
// carry it, so the scope cannot silently shrink.
var Simdet = &analysis.Analyzer{
	Name: "simdet",
	Doc:  "//kite:deterministic packages may not use wall-clock time, global math/rand, unordered map iteration, or unjustified goroutines/sync",
	Run:  runSimdet,
}

// wallClockFuncs are the time package entry points that read the host
// clock. Duration arithmetic and constants remain fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

func runSimdet(pass *analysis.Pass) error {
	if !pkgDirective(pass.Pkg, "deterministic") {
		return nil
	}
	info := pass.Pkg.Info
	dirs := newDirectiveIndex(pass.Pkg)

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				pkgName, ok := pkgOf(info, e)
				if !ok {
					return true
				}
				switch pkgName {
				case "time":
					if wallClockFuncs[e.Sel.Name] {
						pass.Reportf(e.Pos(), "simdet: time.%s reads the wall clock; use the sim.Engine virtual clock", e.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(e.Pos(), "simdet: global %s.%s is seeded per-process; use kite/internal/sim.Rand", pkgName, e.Sel.Name)
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[e.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !dirs.suppressed(e.Pos(), "orderok") {
						pass.Reportf(e.Pos(), "simdet: map iteration order is nondeterministic; sort the keys or justify with //kite:orderok")
					}
				}
			case *ast.GoStmt:
				if !dirs.suppressed(e.Pos(), "shardsafe") {
					pass.Reportf(e.Pos(), "simdet: goroutines can leak scheduling into the timeline; prove window isolation with //kite:shardsafe")
				}
			case *ast.ImportSpec:
				if p, err := strconv.Unquote(e.Path.Value); err == nil && p == "sync" {
					if !dirs.suppressed(e.Pos(), "shardsafe") {
						pass.Reportf(e.Pos(), "simdet: sync primitives order goroutines outside the window barrier; justify with //kite:shardsafe (sync/atomic is exempt)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// pkgOf resolves a selector whose X is a package name, returning the
// imported package path.
func pkgOf(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
