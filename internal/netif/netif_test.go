package netif

import "testing"

func TestRegistryPublishClaimDrop(t *testing.T) {
	r := NewRegistry()
	ch := NewChannel(1)
	r.Publish(3, 0, ch)
	got, err := r.Claim(3, 0)
	if err != nil || got != ch {
		t.Fatalf("claim = %v, %v", got, err)
	}
	if _, err := r.Claim(3, 1); err == nil {
		t.Fatal("claim of unpublished device succeeded")
	}
	if _, err := r.Claim(4, 0); err == nil {
		t.Fatal("claim of wrong domain succeeded")
	}
	r.Drop(3, 0)
	if _, err := r.Claim(3, 0); err == nil {
		t.Fatal("claim after drop succeeded")
	}
}

func TestRingConstructorsSize(t *testing.T) {
	if NewTxRing().Size() != RingSize || NewRxRing().Size() != RingSize {
		t.Fatal("ring constructors produce wrong sizes")
	}
}

func TestChannelQueues(t *testing.T) {
	for _, n := range []int{1, 2, 4, MaxQueues} {
		ch := NewChannel(n)
		if ch.NumQueues() != n {
			t.Fatalf("NumQueues = %d, want %d", ch.NumQueues(), n)
		}
		for i := 0; i < n; i++ {
			if ch.Tx.Queue(i).Size() != RingSize || ch.Rx.Queue(i).Size() != RingSize {
				t.Fatalf("queue %d has wrong ring sizes", i)
			}
		}
	}
}

func TestRegistryDistinctKeys(t *testing.T) {
	r := NewRegistry()
	a := NewChannel(1)
	b := NewChannel(2)
	r.Publish(1, 0, a)
	r.Publish(1, 1, b)
	r.Publish(2, 0, b)
	if got, _ := r.Claim(1, 0); got != a {
		t.Fatal("key collision between devices")
	}
	if got, _ := r.Claim(2, 0); got != b {
		t.Fatal("key collision between domains")
	}
}
