package core

import (
	"bytes"
	"testing"

	"kite/internal/netstack"
)

// pattern fills a deterministic payload of n bytes.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

// TestFramePipelineByteIntegrity pushes datagrams of three shapes — a runt,
// a full MTU frame, and a fragmented 8 KiB datagram — through the complete
// guest→netfront→netback→bridge→NIC→client path and back, on both the Kite
// and Linux rigs. Payloads must survive the pooled zero-copy pipeline
// byte-for-byte, and the system pool must account for every buffer at
// teardown.
func TestFramePipelineByteIntegrity(t *testing.T) {
	sizes := []int{64, 1472, 8192} // 1472 + UDP/IP headers = one MTU frame
	for _, kind := range []DriverKind{KindKite, KindLinux} {
		t.Run(kind.String(), func(t *testing.T) {
			rig, err := NewNetworkRig(kind, 0x17e9)
			if err != nil {
				t.Fatal(err)
			}
			var toClient, toGuest [][]byte
			// The client echoes each datagram straight back to the guest.
			rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {
				toClient = append(toClient, append([]byte(nil), p.Data...))
				rig.Client.Stack.SendUDP(p.Src, p.SrcPort, 9000, p.Data)
			})
			rig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {
				toGuest = append(toGuest, append([]byte(nil), p.Data...))
			})

			for _, size := range sizes {
				rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, 9001, pattern(size))
				rig.System.Eng.Run()
			}

			if len(toClient) != len(sizes) || len(toGuest) != len(sizes) {
				t.Fatalf("delivered %d/%d datagrams, want %d each",
					len(toClient), len(toGuest), len(sizes))
			}
			for i, size := range sizes {
				want := pattern(size)
				if !bytes.Equal(toClient[i], want) {
					t.Errorf("guest->client %dB payload corrupted", size)
				}
				if !bytes.Equal(toGuest[i], want) {
					t.Errorf("client->guest %dB echo corrupted", size)
				}
			}
			if n := rig.System.Pool.Outstanding(); n != 0 {
				t.Fatalf("%d frame buffers leaked at teardown", n)
			}
		})
	}
}

// TestFramePipelineLeakFreeUnderLoad floods enough traffic to overflow
// queues (exercising every drop path) and still requires full buffer
// accounting afterwards.
func TestFramePipelineLeakFreeUnderLoad(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 0xf00d)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) { got++ })
	payload := pattern(1400)
	for burst := 0; burst < 20; burst++ {
		for i := 0; i < 300; i++ {
			rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, 9001, payload)
		}
		rig.System.Eng.Run()
	}
	if got == 0 {
		t.Fatal("no datagrams delivered")
	}
	if n := rig.System.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked after load", n)
	}
}
