package xen

import (
	"fmt"
	"math/bits"

	"kite/internal/sim"
)

// Demux batches event-channel delivery for a backend that serves many
// frontends. A driver domain with one event channel per (guest, queue)
// pays one full upcall — IRQ latency, handler dispatch — per doorbell per
// guest; at fleet scale that is the dominant cost and it grows linearly
// with the tenant count. Real xen backends already amortize this with the
// shared-info pending bitsel: one upcall scans a word of pending bits and
// drains every signalled channel. Demux models exactly that: member ports
// mark a bit in a group-wide pending bitmap instead of scheduling their
// own upcall, and one scan event per doorbell quantum walks the bitmap in
// deterministic member order delivering every pending handler. One wake
// drains rings for many domains; the scan rate is bounded by the quantum
// no matter how many tenants signal.
type Demux struct {
	dom *Domain
	cpu *sim.CPU
	// quantum bounds the scan rate: consecutive scans start at least one
	// quantum apart, so N tenants' doorbells fold into one wake per
	// quantum instead of N upcalls.
	quantum sim.Time

	members []*channel
	pending []uint64 // one bit per member, indexed by join order

	scanF    func()
	armed    bool
	lastScan sim.Time

	scans uint64 // scan events executed
	marks uint64 // member doorbells folded into those scans
}

// NewDemux creates a demux group delivering on cpu (which selects the
// cluster shard the scan runs on). quantum is the minimum spacing between
// scans; zero disables rate bounding (pure coalescing).
func (d *Domain) NewDemux(cpu *sim.CPU, quantum sim.Time) *Demux {
	g := &Demux{dom: d, cpu: cpu, quantum: quantum}
	g.scanF = g.scan
	return g
}

// Join moves a local connected port into the group: its upcalls are
// replaced by a bit in the group bitmap and delivery happens during the
// group scan, on the group's vCPU, in join order. Join order is driver
// control flow, so scans are deterministic.
func (g *Demux) Join(port Port) error {
	ch := g.dom.ports[port]
	if ch == nil {
		return fmt.Errorf("xen: demux join of unknown port %d", port)
	}
	if ch.demux != nil {
		return fmt.Errorf("xen: port %d already in a demux group", port)
	}
	ch.demux = g
	ch.demuxIdx = len(g.members)
	ch.cpu = g.cpu // sends charge the scan vCPU; delivery rides the scan
	g.members = append(g.members, ch)
	if len(g.pending)*64 < len(g.members) {
		g.pending = append(g.pending, 0)
	}
	return nil
}

// Leave removes a member from the group (frontend teardown). Must be
// called before the port is closed, while the channel is still registered.
// Later members shift down one index and the pending bitmap is compacted
// to match, so join-order scanning stays deterministic; without this, a
// fleet churning tenants would pin one dead member slot per departure
// forever.
func (g *Demux) Leave(port Port) {
	ch := g.dom.ports[port]
	if ch == nil || ch.demux != g {
		return
	}
	idx := ch.demuxIdx
	ch.demux = nil
	ch.demuxIdx = 0
	g.members = append(g.members[:idx], g.members[idx+1:]...)
	for i := idx; i < len(g.members); i++ {
		g.members[i].demuxIdx = i
	}
	// Collapse the departed bit out of the pending bitmap: bits above idx
	// shift down one, carrying across word boundaries.
	w := idx >> 6
	b := uint(idx) & 63
	low := uint64(1)<<b - 1
	g.pending[w] = g.pending[w]&low | (g.pending[w]>>1)&^low
	for j := w + 1; j < len(g.pending); j++ {
		g.pending[j-1] |= g.pending[j] << 63
		g.pending[j] >>= 1
	}
	if want := (len(g.members) + 63) / 64; len(g.pending) > want {
		g.pending = g.pending[:want]
	}
}

// Members returns the number of joined ports.
func (g *Demux) Members() int { return len(g.members) }

// Stats reports (scans executed, member doorbells absorbed). marks-scans
// is the demux win: upcalls that did not happen.
func (g *Demux) Stats() (scans, marks uint64) { return g.scans, g.marks }

// mark sets the member's pending bit and arms the scan if it is not
// already armed. The warmth rule mirrors channel.raise: a recently active
// scan vCPU (or a recent scan) takes the wake at the cheap streaming
// latency.
//
//kite:hotpath
func (g *Demux) mark(idx int) {
	g.pending[idx>>6] |= 1 << (uint(idx) & 63)
	g.marks++
	if g.armed {
		return
	}
	g.armed = true
	eng := g.cpu.Engine()
	now := eng.Now()
	lat := g.dom.IRQLatency
	if g.cpu.RecentlyActive(now, warmWindow) ||
		(g.lastScan > 0 && now-g.lastScan <= warmWindow) {
		lat /= 16
	}
	at := g.cpu.FreeAt() + lat
	if g.quantum > 0 {
		if min := g.lastScan + g.quantum; at < min {
			at = min
		}
	}
	eng.Schedule(at, g.scanF)
}

// scan is the batched upcall: walk the pending bitmap word by word, bit by
// bit in member order, and deliver every signalled channel. Bits set by
// handlers during the scan (a handler's Notify completing a ring cycle)
// re-arm a fresh scan at least a quantum later rather than extending this
// one, so one scan's work is bounded by the member count.
//
//kite:hotpath
func (g *Demux) scan() {
	g.armed = false
	g.scans++
	g.lastScan = g.cpu.Engine().Now()
	for w := range g.pending {
		word := g.pending[w]
		if word == 0 {
			continue
		}
		g.pending[w] = 0
		for word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			g.members[idx].deliverDemux()
		}
	}
}

// deliverDemux is channel.deliver minus the self-scheduled upcall: the
// scan already paid the wake.
func (c *channel) deliverDemux() {
	c.pending = false
	if c.dom.dead || c.state != chanConnected {
		return
	}
	c.delivered++
	c.lastEvent = c.cpu.Engine().Now()
	if c.handler != nil {
		c.handler()
	}
}
