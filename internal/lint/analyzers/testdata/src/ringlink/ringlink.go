// Package ringlink exercises the kitelint ring-discipline analyzer: an
// intrusive ring over a slot slab, with the operations declared through
// //kite:ringlink directives exactly the way the lane slabs and the
// timewheel declare theirs.
package ringlink

// ring is a miniature lane slab: slot-indexed next/prev links threaded
// into a circular active ring, plus a freelist.
type ring struct {
	head       int32
	next, prev []int32
	free       int32
}

// alloc takes a slot off the freelist; the caller owes it a link or a put.
//
//kite:ringlink alloc
func (r *ring) alloc() int32 {
	s := r.free
	r.free = r.next[s]
	return s
}

// link inserts slot s into the active ring.
//
//kite:ringlink link
func (r *ring) link(s int32) {
	r.next[s] = r.head
	r.head = s
}

// unlink removes slot s from the active ring.
//
//kite:ringlink unlink
func (r *ring) unlink(s int32) {
	r.next[s] = -1
}

// put returns slot s to the freelist.
//
//kite:ringlink free
func (r *ring) put(s int32) {
	r.next[s] = r.free
	r.free = s
}

// doubleUnlink removes the same slot twice: the second unlink rewires the
// neighbors of whatever ring the slot's stale links still point at.
func doubleUnlink(r *ring, s int32) {
	r.unlink(s)
	r.unlink(s) // want `double-unlink`
}

// conditionalDoubleLink links a slot that one path has already linked.
func conditionalDoubleLink(r *ring, s int32, busy bool) {
	r.link(s)
	if busy {
		r.link(s) // want `double-link`
	}
}

// leakySlot allocates a slot and, on the early-return path, neither links
// nor frees it: the slot leaks off both the ring and the freelist.
func leakySlot(r *ring, skip bool) {
	s := r.alloc() // want `leaked link`
	if skip {
		return
	}
	r.link(s)
}

// useAfterPut touches a slot after returning it to the freelist.
func useAfterPut(r *ring, s int32) {
	r.put(s)
	r.link(s) // want `use-after-detach`
}

// freeWhileLinked returns a still-linked slot to the freelist, leaving the
// ring pointing into free space.
func freeWhileLinked(r *ring, s int32) {
	r.link(s)
	r.put(s) // want `may still be linked`
}

// guardedDetach is the sanctioned lane-detach shape: unlink only when the
// membership test says linked, then recycle. Clean.
func guardedDetach(r *ring, s int32) {
	if r.next[s] >= 0 {
		r.unlink(s)
	}
	r.put(s)
}

// allocLink is the sanctioned timewheel-Add shape. Clean.
func allocLink(r *ring) int32 {
	s := r.alloc()
	r.link(s)
	return s
}

// allocHandoff returns the fresh slot: the link obligation moves to the
// caller. Clean.
func allocHandoff(r *ring) int32 {
	return retag(r)
}

func retag(r *ring) int32 {
	s := r.alloc()
	return s
}

// loopReuse re-links a different slot each iteration; reassignment ends
// tracking, so no double-link. Clean.
func loopReuse(r *ring, slots []int32) {
	for i := 0; i < len(slots); i++ {
		s := slots[i]
		r.unlink(s)
		r.put(s)
	}
}
