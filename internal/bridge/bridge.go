// Package bridge implements the learning Ethernet bridge Kite's network
// application creates inside the driver domain (§4.3): it connects the
// physical NIC interface (IF) with every netback virtual interface (VIF),
// learns source MACs, forwards known-unicast frames to one port, and
// floods unknown/broadcast frames — the NetBSD bridge(4) behaviour the
// paper ported brconfig for.
package bridge

import (
	"fmt"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// Port is anything the bridge can attach: the physical interface wrapper
// or a netback VIF.
type Port interface {
	PortName() string
	// Deliver hands an egress frame to the port. The port owns the slice.
	Deliver(frame []byte)
}

// Stats counts bridge activity.
type Stats struct {
	Forwarded uint64
	Flooded   uint64
	Learned   uint64
	Dropped   uint64 // no ports to forward to
}

// Bridge is a learning L2 switch running in the driver domain.
type Bridge struct {
	eng  *sim.Engine
	cpus *sim.CPUPool
	name string

	// PerFrameCost is the bridge's forwarding cost charged to the driver
	// domain per frame.
	PerFrameCost sim.Time

	ports []Port
	fdb   map[netpkt.MAC]Port
	stats Stats
}

// New creates a bridge named name whose forwarding work is charged to cpus.
func New(eng *sim.Engine, cpus *sim.CPUPool, name string) *Bridge {
	return &Bridge{
		eng: eng, cpus: cpus, name: name,
		PerFrameCost: 300 * sim.Nanosecond,
		fdb:          make(map[netpkt.MAC]Port),
	}
}

// Name returns the bridge name (xenbr0 in the artifact's configs).
func (b *Bridge) Name() string { return b.name }

// Stats returns a snapshot of the counters.
func (b *Bridge) Stats() Stats { return b.stats }

// Ports returns the attached ports.
func (b *Bridge) Ports() []Port { return b.ports }

// AddPort attaches a port (brconfig add).
func (b *Bridge) AddPort(p Port) {
	for _, q := range b.ports {
		if q == p {
			panic(fmt.Sprintf("bridge: port %s added twice", p.PortName()))
		}
	}
	b.ports = append(b.ports, p)
}

// RemovePort detaches a port and flushes its learned addresses (a guest or
// backend went away).
func (b *Bridge) RemovePort(p Port) {
	for i, q := range b.ports {
		if q == p {
			b.ports = append(b.ports[:i], b.ports[i+1:]...)
			break
		}
	}
	for mac, port := range b.fdb {
		if port == p {
			delete(b.fdb, mac)
		}
	}
}

// Lookup returns the port a MAC was learned on, or nil.
func (b *Bridge) Lookup(mac netpkt.MAC) Port { return b.fdb[mac] }

// FrameDevice is any frame-level device (a physical NIC, or a stack-less
// interface) that can be attached to the bridge.
type FrameDevice interface {
	Send(frame []byte) bool
	SetRecv(fn func(frame []byte))
}

type devicePort struct {
	name string
	dev  FrameDevice
}

func (p *devicePort) PortName() string     { return p.name }
func (p *devicePort) Deliver(frame []byte) { p.dev.Send(frame) }

// AttachDevice wires a frame device into the bridge as a port: egress
// frames go to dev.Send and received frames enter the bridge. This is how
// the network application connects the physical IF to xenbr0.
func (b *Bridge) AttachDevice(name string, dev FrameDevice) Port {
	p := &devicePort{name: name, dev: dev}
	dev.SetRecv(func(f []byte) { b.Input(p, f) })
	b.AddPort(p)
	return p
}

// Input processes one frame arriving from a port: learn, then forward or
// flood. Forwarding cost is charged to the driver domain's CPUs and
// delivery happens at charge completion.
func (b *Bridge) Input(from Port, frame []byte) {
	if len(frame) < netpkt.EthHeaderLen {
		b.stats.Dropped++
		return
	}
	var dst, src netpkt.MAC
	copy(dst[:], frame[0:6])
	copy(src[:], frame[6:12])

	if src != netpkt.Broadcast {
		if old := b.fdb[src]; old != from {
			b.fdb[src] = from
			b.stats.Learned++
		}
	}

	done := b.cpus.Charge(b.PerFrameCost)
	if dst != netpkt.Broadcast {
		if out := b.fdb[dst]; out != nil {
			if out == from {
				b.stats.Dropped++ // destination is behind the source port
				return
			}
			b.stats.Forwarded++
			b.eng.Schedule(done, func() { out.Deliver(frame) })
			return
		}
	}
	// Flood: broadcast or unknown destination.
	sent := false
	for _, p := range b.ports {
		if p == from {
			continue
		}
		p := p
		cp := frame
		sent = true
		b.eng.Schedule(done, func() { p.Deliver(cp) })
	}
	if sent {
		b.stats.Flooded++
	} else {
		b.stats.Dropped++
	}
}
