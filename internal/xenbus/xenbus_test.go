package xenbus

import (
	"strings"
	"testing"

	"kite/internal/sim"
	"kite/internal/xenstore"
)

func newBus() (*sim.Engine, *Bus) {
	eng := sim.NewEngine()
	return eng, New(xenstore.New(eng))
}

func TestPathLayout(t *testing.T) {
	if got := FrontendPath(3, "vif", 0); got != "/local/domain/3/device/vif/0" {
		t.Fatalf("frontend path = %s", got)
	}
	if got := BackendPath(1, "vif", 3, 0); got != "/local/domain/1/backend/vif/3/0" {
		t.Fatalf("backend path = %s", got)
	}
	if got := BackendRoot(1, "vbd"); got != "/local/domain/1/backend/vbd" {
		t.Fatalf("backend root = %s", got)
	}
}

func TestAddDeviceSkeleton(t *testing.T) {
	_, b := newBus()
	fp, bp := b.AddDevice(DeviceSpec{
		Type: "vif", FrontDom: 3, BackDom: 1, DevID: 0,
		FrontExtra: map[string]string{"mac": "00:16:3e:00:00:01"},
		BackExtra:  map[string]string{"bridge": "xenbr0"},
	})
	st := b.Store()
	if v, _ := st.Read(fp + "/backend"); v != bp {
		t.Fatalf("frontend backend pointer = %q", v)
	}
	if v, _ := st.Read(bp + "/frontend"); v != fp {
		t.Fatalf("backend frontend pointer = %q", v)
	}
	if v, _ := st.Read(fp + "/mac"); v != "00:16:3e:00:00:01" {
		t.Fatal("front extra key missing")
	}
	if v, _ := st.Read(bp + "/bridge"); v != "xenbr0" {
		t.Fatal("back extra key missing")
	}
	if b.State(fp) != StateInitialising || b.State(bp) != StateInitialising {
		t.Fatal("device ends not Initialising")
	}
	if other, ok := b.OtherEnd(fp); !ok || other != bp {
		t.Fatalf("OtherEnd(front) = %q,%v", other, ok)
	}
	if other, ok := b.OtherEnd(bp); !ok || other != fp {
		t.Fatalf("OtherEnd(back) = %q,%v", other, ok)
	}
}

func TestStateMachineLegalPath(t *testing.T) {
	_, b := newBus()
	fp, _ := b.AddDevice(DeviceSpec{Type: "vbd", FrontDom: 2, BackDom: 1, DevID: 51712})
	for _, s := range []State{StateInitialised, StateConnected, StateClosing, StateClosed} {
		if err := b.SwitchState(fp, s); err != nil {
			t.Fatalf("transition to %v: %v", s, err)
		}
	}
	// Reconnect after close is legal (driver domain restart).
	if err := b.SwitchState(fp, StateInitialising); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
}

func TestStateMachineRejectsIllegal(t *testing.T) {
	_, b := newBus()
	fp, _ := b.AddDevice(DeviceSpec{Type: "vif", FrontDom: 2, BackDom: 1, DevID: 0})
	if err := b.SwitchState(fp, StateConnected); err != nil {
		t.Fatalf("Initialising->Connected should be allowed: %v", err)
	}
	if err := b.SwitchState(fp, StateInitialised); err == nil {
		t.Fatal("Connected->Initialised allowed")
	}
	b.SwitchState(fp, StateClosed)
	if err := b.SwitchState(fp, StateConnected); err == nil {
		t.Fatal("Closed->Connected allowed")
	}
}

func TestSwitchStateSameStateIdempotent(t *testing.T) {
	_, b := newBus()
	fp, _ := b.AddDevice(DeviceSpec{Type: "vif", FrontDom: 2, BackDom: 1, DevID: 0})
	if err := b.SwitchState(fp, StateInitialising); err != nil {
		t.Fatalf("same-state switch errored: %v", err)
	}
}

func TestOnStateChange(t *testing.T) {
	eng, b := newBus()
	fp, bp := b.AddDevice(DeviceSpec{Type: "vif", FrontDom: 2, BackDom: 1, DevID: 0})
	var seen []State
	b.OnStateChange(bp, func(s State) { seen = append(seen, s) })
	eng.Run() // registration fire observes Initialising
	b.SwitchState(bp, StateInitWait)
	eng.Run()
	b.SwitchState(bp, StateConnected)
	eng.Run()
	want := []State{StateInitialising, StateInitWait, StateConnected}
	if len(seen) != len(want) {
		t.Fatalf("state sequence = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("state sequence = %v, want %v", seen, want)
		}
	}
	_ = fp
}

func TestTwoEndHandshake(t *testing.T) {
	// Model the full frontend/backend negotiation dance driven purely by
	// watches, the way the real drivers do it.
	eng, b := newBus()
	fp, bp := b.AddDevice(DeviceSpec{Type: "vif", FrontDom: 2, BackDom: 1, DevID: 0})

	// Backend reacts to frontend states.
	b.OnStateChange(fp, func(s State) {
		switch s {
		case StateInitialising:
			b.SwitchState(bp, StateInitWait)
		case StateInitialised:
			// read ring refs etc., then connect
			b.SwitchState(bp, StateConnected)
		}
	})
	// Frontend reacts to backend states.
	b.OnStateChange(bp, func(s State) {
		switch s {
		case StateInitWait:
			b.Store().Write(fp+"/tx-ring-ref", "8")
			b.Store().Write(fp+"/rx-ring-ref", "9")
			b.SwitchState(fp, StateInitialised)
		case StateConnected:
			b.SwitchState(fp, StateConnected)
		}
	})
	if !eng.RunCapped(10000) {
		t.Fatal("handshake livelocked")
	}
	if b.State(fp) != StateConnected || b.State(bp) != StateConnected {
		t.Fatalf("final states front=%v back=%v, want Connected", b.State(fp), b.State(bp))
	}
	if v, ok := b.Store().Read(fp + "/tx-ring-ref"); !ok || v != "8" {
		t.Fatal("negotiated keys lost")
	}
}

func TestRemoveDevice(t *testing.T) {
	_, b := newBus()
	spec := DeviceSpec{Type: "vif", FrontDom: 2, BackDom: 1, DevID: 0}
	fp, bp := b.AddDevice(spec)
	b.RemoveDevice(spec)
	if b.Store().Exists(fp) || b.Store().Exists(bp) {
		t.Fatal("device dirs survived removal")
	}
	if b.State(fp) != StateUnknown {
		t.Fatal("removed device has a state")
	}
}

func TestFeatures(t *testing.T) {
	_, b := newBus()
	_, bp := b.AddDevice(DeviceSpec{Type: "vbd", FrontDom: 2, BackDom: 1, DevID: 0})
	b.WriteFeature(bp, "feature-persistent", true)
	b.WriteFeature(bp, "feature-flush-cache", false)
	if !b.ReadFeature(bp, "feature-persistent") {
		t.Fatal("enabled feature reads false")
	}
	if b.ReadFeature(bp, "feature-flush-cache") {
		t.Fatal("disabled feature reads true")
	}
	if b.ReadFeature(bp, "feature-absent") {
		t.Fatal("absent feature reads true")
	}
}

func TestStateStrings(t *testing.T) {
	if StateConnected.String() != "Connected" {
		t.Fatal("state name wrong")
	}
	if !strings.Contains(State(42).String(), "42") {
		t.Fatal("unknown state string unhelpful")
	}
}
