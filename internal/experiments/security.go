package experiments

import (
	"fmt"

	"kite/internal/core"
	"kite/internal/guestos"
	"kite/internal/metrics"
	"kite/internal/security"
	"kite/internal/sim"
)

// Fig1aDriverCVEs renders Figure 1a: driver CVEs per year for Linux and
// Windows.
func Fig1aDriverCVEs() *Result {
	res := &Result{ID: "FIG1A", Title: "driver CVEs per year",
		Table: metrics.NewTable("FIG1A: driver CVEs (cve.mitre.org)",
			"year", "linux", "windows")}
	for _, y := range security.DriverCVEsByYear() {
		res.Table.AddRow(fmt.Sprintf("%d", y.Year),
			fmt.Sprintf("%d", y.Linux), fmt.Sprintf("%d", y.Windows))
		res.Pairs = append(res.Pairs, Pair{Metric: fmt.Sprintf("%d", y.Year),
			Linux: float64(y.Linux), Kite: float64(y.Windows), Unit: "CVEs"})
	}
	res.Notes = append(res.Notes, "driver CVEs surge on both OS families — the motivation for isolating drivers")
	return res
}

// Fig1bFig5ROP runs the gadget scan of Figures 1b and 5: total and
// per-category gadget counts across kernel configurations.
func Fig1bFig5ROP() *Result {
	res := &Result{ID: "FIG1B/5", Title: "ROP gadgets by kernel configuration",
		Table: metrics.NewTable("FIG1B/FIG5: ROP gadgets",
			"config", "total", "datamove", "arith", "logic", "ctrlflow", "ret")}
	var kiteTotal, defaultTotal, ubuntuTotal float64
	for _, p := range guestos.GadgetScanProfiles() {
		counts := security.GadgetCounts(p)
		total := security.TotalGadgets(counts)
		res.Table.AddRow(p.Name,
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", counts[security.CatDataMove]),
			fmt.Sprintf("%d", counts[security.CatArithmetic]),
			fmt.Sprintf("%d", counts[security.CatLogic]),
			fmt.Sprintf("%d", counts[security.CatControlFlow]),
			fmt.Sprintf("%d", counts[security.CatRET]))
		switch p.Name {
		case "Kite":
			kiteTotal = float64(total)
		case "Default":
			defaultTotal = float64(total)
		case "Ubuntu":
			ubuntuTotal = float64(total)
		}
	}
	res.Pairs = append(res.Pairs,
		Pair{Metric: "default/kite", Linux: defaultTotal, Kite: kiteTotal, Unit: "gadgets"},
		Pair{Metric: "ubuntu/kite", Linux: ubuntuTotal, Kite: kiteTotal, Unit: "gadgets"})
	res.Notes = append(res.Notes,
		fmt.Sprintf("default config has %.1fx Kite's gadgets (paper: ~4x); Ubuntu %.0fx",
			defaultTotal/kiteTotal, ubuntuTotal/kiteTotal))
	return res
}

// Fig4Footprint renders Figure 4: syscall counts (4a), kernel image sizes
// (4b), and boot times (4c).
func Fig4Footprint() *Result {
	res := &Result{ID: "FIG4", Title: "syscalls, image size, boot time",
		Table: metrics.NewTable("FIG4: footprint comparison",
			"metric", "ubuntu", "kite-net", "kite-storage")}
	u := guestos.UbuntuDriverDomain()
	kn := guestos.KiteNetworkDomain()
	ks := guestos.KiteStorageDomain()
	res.Table.AddRow("syscalls",
		fmt.Sprintf("%d", len(u.Syscalls)),
		fmt.Sprintf("%d", len(kn.Syscalls)),
		fmt.Sprintf("%d", len(ks.Syscalls)))
	res.Table.AddRow("kernel image (MB)",
		fmt.Sprintf("%.1f", float64(u.KernelImageBytes())/(1<<20)),
		fmt.Sprintf("%.1f", float64(kn.KernelImageBytes())/(1<<20)),
		fmt.Sprintf("%.1f", float64(ks.KernelImageBytes())/(1<<20)))
	res.Table.AddRow("boot time (s)",
		fmt.Sprintf("%.0f", u.BootTime().Seconds()),
		fmt.Sprintf("%.0f", kn.BootTime().Seconds()),
		fmt.Sprintf("%.0f", ks.BootTime().Seconds()))
	res.Pairs = append(res.Pairs,
		Pair{Metric: "syscalls", Linux: float64(len(u.Syscalls)), Kite: float64(len(kn.Syscalls)), Unit: "count"},
		Pair{Metric: "image", Linux: float64(u.KernelImageBytes()), Kite: float64(kn.KernelImageBytes()), Unit: "bytes"},
		Pair{Metric: "boot", Linux: u.BootTime().Seconds(), Kite: kn.BootTime().Seconds(), Unit: "s"})
	res.Notes = append(res.Notes,
		"paper: 171 vs 14/18 syscalls (10x), ~43 vs ~4 MB image (10x), 75 vs 7 s boot (10x)")
	return res
}

// Fig4cBootTime runs experiment E1 for real: boot both network driver
// domains on the simulator and measure time until each serves (claim C1:
// Kite at least 10x faster).
func Fig4cBootTime() *Result {
	res := newResult("FIG4C", "measured driver domain boot time")
	boot := func(kind core.DriverKind) sim.Time {
		tb := core.NewTestbed(0xB007)
		nd, err := tb.System.CreateNetworkDomain(core.NetworkDomainConfig{
			Kind: kind, NIC: tb.ServerNIC, Boot: true,
		})
		if err != nil {
			panic(err)
		}
		drive(tb.System, nd.Ready, 1_000_000)
		return tb.System.Eng.Now()
	}
	linux := boot(core.KindLinux)
	kite := boot(core.KindKite)
	res.AddPair("boot-to-service", linux.Seconds(), kite.Seconds(), "s")
	res.Notes = append(res.Notes,
		fmt.Sprintf("paper fig 4c: 75 s vs 7 s; measured %.1f s vs %.1f s (%.1fx)",
			linux.Seconds(), kite.Seconds(), linux.Seconds()/kite.Seconds()))
	return res
}

// Table3 renders the CVE mitigation matrix: each of the 11 CVEs against
// the Ubuntu driver domain and both Kite domains.
func Table3() *Result {
	res := &Result{ID: "TAB3", Title: "CVEs prevented by discarding syscalls",
		Table: metrics.NewTable("TABLE 3: syscall-gated CVEs",
			"cve", "syscalls", "ubuntu", "kite-net", "kite-storage")}
	u := guestos.UbuntuDriverDomain()
	kn := guestos.KiteNetworkDomain()
	ks := guestos.KiteStorageDomain()
	applyStr := func(cve security.CVE, p *guestos.Profile) string {
		if security.Applies(cve, p) {
			return "VULNERABLE"
		}
		return "mitigated"
	}
	mitigatedKite := 0
	for _, cve := range security.Table3CVEs() {
		if security.Mitigated(cve, kn) && security.Mitigated(cve, ks) {
			mitigatedKite++
		}
		res.Table.AddRow(cve.ID, fmt.Sprintf("%v", cve.Syscalls),
			applyStr(cve, u), applyStr(cve, kn), applyStr(cve, ks))
	}
	res.Pairs = append(res.Pairs, Pair{Metric: "mitigated-by-kite",
		Linux: 0, Kite: float64(mitigatedKite), Unit: fmt.Sprintf("of %d", len(security.Table3CVEs()))})
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d/11 CVEs mitigated by both Kite domains (paper: 11); plus %d crafted-app and %d shell CVE classes foreclosed",
			mitigatedKite, security.CraftedAppCVECount, security.ShellCVECount))
	return res
}
