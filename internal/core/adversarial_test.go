package core

import (
	"testing"

	"kite/internal/blkif"
	"kite/internal/netif"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
)

// These tests model the paper's threat scenario (§3.1: all VMs including
// DomUs are potentially malicious): a compromised guest drives hostile
// input into the backend rings. The driver domain must reject the input,
// keep serving well-behaved guests, and never corrupt other domains.

// evilBlkFrontend hand-rolls the vbd handshake so it can push arbitrary
// ring requests without blkfront's validation.
type evilBlkFrontend struct {
	dom  *xen.Domain
	ring *blkif.Ring
	port xen.Port
}

func attachEvilBlk(t *testing.T, sys *System, sd *StorageDomain) *evilBlkFrontend {
	t.Helper()
	dom := sys.HV.CreateDomain(xen.DomainConfig{Name: "evil", VCPUs: 1,
		MemBytes: 64 << 20, IRQLatency: 6 * sim.Microsecond})
	sys.Bus.AddDevice(xenbus.DeviceSpec{
		Type: "vbd", FrontDom: xenbus.DomID(dom.ID), BackDom: xenbus.DomID(sd.Dom.ID),
		DevID: 51712, BackExtra: map[string]string{"params": "2048:2097152"},
	})
	evilCh := blkif.NewChannel(1)
	e := &evilBlkFrontend{dom: dom, ring: evilCh.Rings.Queue(0)}
	sys.BlkReg.Publish(dom.ID, 51712, evilCh)
	e.port = dom.AllocUnbound(sd.Dom.ID)
	dom.SetHandler(e.port, func() {})
	fp := xenbus.FrontendPath(xenbus.DomID(dom.ID), "vbd", 51712)
	sys.Store.Writef(fp+"/event-channel", "%d", e.port)
	if err := sys.Bus.SwitchState(fp, xenbus.StateInitialised); err != nil {
		t.Fatal(err)
	}
	if !sys.RunReady(func() bool {
		bp := xenbus.BackendPath(xenbus.DomID(sd.Dom.ID), "vbd", xenbus.DomID(dom.ID), 51712)
		return sys.Bus.State(bp) == xenbus.StateConnected
	}, 500000) {
		t.Fatal("evil frontend never paired")
	}
	return e
}

func (e *evilBlkFrontend) push(req blkif.Request) {
	e.ring.PushRequest(req)
	if e.ring.PushRequestsAndCheckNotify() {
		e.dom.Notify(e.port)
	}
}

func TestBlkbackSurvivesHostileRequests(t *testing.T) {
	tb := NewTestbed(31)
	sd, err := tb.System.CreateStorageDomain(StorageDomainConfig{Kind: KindKite, Device: tb.NVMe})
	if err != nil {
		t.Fatal(err)
	}
	// An honest guest shares the storage domain.
	honest, err := tb.System.CreateGuest(GuestConfig{
		Name: "honest", Storage: sd, DiskBytes: 1 << 30, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(honest.Ready, 500000) {
		t.Fatal("honest guest never ready")
	}
	evil := attachEvilBlk(t, tb.System, sd)

	// Attack 1: bogus grant references.
	evil.push(blkif.Request{ID: 1, Op: blkif.OpWrite, Sector: 0,
		Segs: []blkif.Segment{{Ref: 0xdeadbeef, FirstSect: 0, LastSect: 7}}})
	// Attack 2: out-of-range sector with a real grant.
	page := evil.dom.Arena.MustAlloc()
	ref := evil.dom.GrantAccess(sd.Dom.ID, page, false)
	evil.push(blkif.Request{ID: 2, Op: blkif.OpRead, Sector: 1 << 60,
		Segs: []blkif.Segment{{Ref: ref, FirstSect: 0, LastSect: 7}}})
	// Attack 3: oversized direct segment list.
	var segs []blkif.Segment
	for i := 0; i < blkif.MaxSegsDirect+5; i++ {
		p := evil.dom.Arena.MustAlloc()
		segs = append(segs, blkif.Segment{Ref: evil.dom.GrantAccess(sd.Dom.ID, p, false),
			FirstSect: 0, LastSect: 7})
	}
	evil.push(blkif.Request{ID: 3, Op: blkif.OpWrite, Sector: 0, Segs: segs})
	// Attack 4: corrupt segment geometry.
	evil.push(blkif.Request{ID: 4, Op: blkif.OpWrite, Sector: 0,
		Segs: []blkif.Segment{{Ref: ref, FirstSect: 6, LastSect: 2}}})
	// Attack 5: indirect request claiming more segments than allowed.
	evil.push(blkif.Request{ID: 5, Op: blkif.OpIndirect, Imm: blkif.OpWrite,
		IndirectSegs: blkif.MaxSegsIndirect * 4, IndirectRefs: []xen.GrantRef{ref}})

	// All five must be answered (with error status), not wedge the thread.
	answered := 0
	if !tb.System.RunReady(func() bool {
		for {
			rsp, ok := evil.ring.TakeResponse()
			if !ok {
				break
			}
			if rsp.Status != blkif.StatusError {
				t.Fatalf("hostile request %d succeeded", rsp.ID)
			}
			answered++
		}
		return answered >= 5
	}, 2_000_000) {
		t.Fatalf("backend answered only %d of 5 hostile requests", answered)
	}

	// The backend recorded the errors and stayed alive.
	var total uint64
	for _, inst := range sd.Driver.Instances() {
		total += inst.Stats().Errors
	}
	if total < 5 {
		t.Fatalf("backend errors = %d, want >= 5", total)
	}

	// The honest guest still works.
	ok := false
	honest.Disk.WriteSectors(0, make([]byte, 4096), func(err error) { ok = err == nil })
	if !tb.System.RunReady(func() bool { return ok }, 1_000_000) {
		t.Fatal("honest guest I/O failed after the attack")
	}
}

// TestNetbackSurvivesHostileTxRequests drives bogus netif Tx descriptors
// (bad grants, oversized lengths) into a VIF and verifies the pusher
// thread keeps serving the honest guest.
func TestNetbackSurvivesHostileTxRequests(t *testing.T) {
	tb := NewTestbed(32)
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{Kind: KindKite, NIC: tb.ServerNIC})
	if err != nil {
		t.Fatal(err)
	}
	honest, err := tb.System.CreateGuest(GuestConfig{
		Name: "honest", IP: tb.GuestIP, Net: nd, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(honest.Ready, 500000) {
		t.Fatal("honest guest never ready")
	}

	// Hand-rolled hostile netfront.
	evil := tb.System.HV.CreateDomain(xen.DomainConfig{Name: "evil", VCPUs: 1,
		MemBytes: 64 << 20, IRQLatency: 6 * sim.Microsecond})
	tb.System.Bus.AddDevice(xenbus.DeviceSpec{
		Type: "vif", FrontDom: xenbus.DomID(evil.ID), BackDom: xenbus.DomID(nd.Dom.ID), DevID: 0,
	})
	evilCh := netif.NewChannel(1)
	tx := evilCh.Tx.Queue(0)
	tb.System.NetReg.Publish(evil.ID, 0, evilCh)
	port := evil.AllocUnbound(nd.Dom.ID)
	evil.SetHandler(port, func() {})
	fp := xenbus.FrontendPath(xenbus.DomID(evil.ID), "vif", 0)
	tb.System.Store.Writef(fp+"/event-channel", "%d", port)
	if err := tb.System.Bus.SwitchState(fp, xenbus.StateInitialised); err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(func() bool { return len(nd.Driver.VIFs()) == 2 }, 500000) {
		t.Fatal("evil vif never paired")
	}

	// Bad grant ref and oversized length.
	tx.PushRequest(netif.TxRequest{ID: 1, Ref: 0xbad, Offset: 0, Len: 100})
	tx.PushRequest(netif.TxRequest{ID: 2, Ref: 0xbad, Offset: 4000, Len: 5000})
	if tx.PushRequestsAndCheckNotify() {
		evil.Notify(port)
	}
	answered := 0
	if !tb.System.RunReady(func() bool {
		for {
			rsp, ok := tx.TakeResponse()
			if !ok {
				break
			}
			if rsp.Status == netif.StatusOK {
				t.Fatalf("hostile tx request %d succeeded", rsp.ID)
			}
			answered++
		}
		return answered >= 2
	}, 1_000_000) {
		t.Fatalf("netback answered only %d hostile requests", answered)
	}

	// The honest guest's data path still works.
	var rtt sim.Time = -1
	tb.Client.Stack.Ping(tb.GuestIP, 56, func(d sim.Time) { rtt = d })
	if !tb.System.RunReady(func() bool { return rtt >= 0 }, 500000) {
		t.Fatal("honest ping failed after the attack")
	}
}
