package sim

import "testing"

func TestFIFOOrderAndGrowth(t *testing.T) {
	var q FIFO[int]
	if q.Len() != 0 || q.Peek() != nil {
		t.Fatal("zero-value FIFO not empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	// Interleave pops and pushes so head wraps around the ring.
	for i := 0; i < 40; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	for i := 100; i < 150; i++ {
		q.Push(i)
	}
	for i := 40; i < 150; i++ {
		if p := q.Peek(); p == nil || *p != i {
			t.Fatalf("Peek = %v, want %d", p, i)
		}
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("FIFO not drained: len=%d", q.Len())
	}
}

func TestFIFOPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty FIFO did not panic")
		}
	}()
	var q FIFO[int]
	q.Pop()
}

func TestBatchCoalescesArms(t *testing.T) {
	e := NewEngine()
	runs := 0
	b := NewBatch(e, func() { runs++ })
	b.Arm(10)
	b.Arm(10)
	b.Arm(50) // covered by the pending flush at 10
	if !b.Armed() {
		t.Fatal("batch not armed")
	}
	e.Run()
	if runs != 1 {
		t.Fatalf("flush ran %d times, want 1 (arms must coalesce)", runs)
	}
	if e.Now() != 10 {
		t.Fatalf("flush fired at %v, want 10", e.Now())
	}
}

func TestBatchEarlierArmSupersedes(t *testing.T) {
	e := NewEngine()
	var fired []Time
	b := NewBatch(e, func() { fired = append(fired, e.Now()) })
	b.Arm(100)
	b.Arm(10) // earlier deadline must win
	e.Run()
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("flush times = %v, want [10]", fired)
	}
}

func TestBatchFlushCanRearm(t *testing.T) {
	e := NewEngine()
	var due FIFO[Time]
	due.Push(10)
	due.Push(20)
	due.Push(20)
	due.Push(35)
	var fired []Time
	var b *Batch
	b = NewBatch(e, func() {
		fired = append(fired, e.Now())
		for due.Len() > 0 && *due.Peek() <= e.Now() {
			due.Pop()
		}
		if p := due.Peek(); p != nil {
			b.Arm(*p)
		}
	})
	b.Arm(*due.Peek())
	e.Run()
	want := []Time{10, 20, 35}
	if len(fired) != len(want) {
		t.Fatalf("flush times = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("flush times = %v, want %v", fired, want)
		}
	}
}

func TestBatchArmInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	runs := 0
	b := NewBatch(e, func() { runs++ })
	b.Arm(5) // in the past: must clamp, not panic
	e.Run()
	if runs != 1 || e.Now() != 100 {
		t.Fatalf("runs=%d now=%v, want 1 at t=100", runs, e.Now())
	}
}
