package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// buildPingPong wires a deterministic cross-shard workload: each shard runs
// a local event chain and posts tokens to the next shard with varying
// delays and priorities. Each shard records its own trace (shards must not
// share mutable state mid-window — the same rule the real data paths obey);
// the flattened per-shard traces are the determinism witness.
func buildPingPong(shards, tokens int, workers int) (*Cluster, [][]string) {
	const lookahead = 100 * Nanosecond
	c := NewCluster(shards, lookahead, 42)
	c.SetWorkers(workers)
	traces := make([][]string, shards)

	type token struct {
		id   int
		hops int
	}
	var hop func(shard int) func(any)
	hops := make([]func(any), shards)
	for i := 0; i < shards; i++ {
		i := i
		hops[i] = func(a any) {
			t := a.(*token)
			e := c.Shard(i)
			traces[i] = append(traces[i], fmt.Sprintf("s%d tok%d hop%d @%d", i, t.id, t.hops, e.Now()))
			if t.hops <= 0 {
				return
			}
			t.hops--
			next := (i + 1) % shards
			// Vary the delay deterministically from the shard RNG. Hops are
			// always PriData: they carry timeline effects (they re-post), which
			// PriRelease posts — executed as pure bookkeeping at the barrier —
			// are not allowed to do.
			delay := lookahead + Time(c.Rand(i).Intn(3))*50*Nanosecond
			e.Post(c.Shard(next), delay, PriData, hop(next), t)
		}
	}
	hop = func(shard int) func(any) { return hops[shard] }

	for id := 0; id < tokens; id++ {
		s := id % shards
		tk := &token{id: id, hops: 12}
		at := Time(id) * 10 * Nanosecond
		c.Shard(s).Schedule(at, func() { hops[s](tk) })
	}
	// Local chains interleaved with the posts.
	for i := 0; i < shards; i++ {
		i := i
		n := 0
		var tick func()
		tick = func() {
			traces[i] = append(traces[i], fmt.Sprintf("s%d tick%d @%d", i, n, c.Shard(i).Now()))
			n++
			if n < 20 {
				c.Shard(i).After(130*Nanosecond, tick)
			}
		}
		c.Shard(i).Schedule(5*Nanosecond, tick)
	}
	return c, traces
}

func flatten(traces [][]string) []string {
	var out []string
	for _, t := range traces {
		out = append(out, t...)
	}
	return out
}

func runTrace(shards, tokens, workers int) []string {
	c, traces := buildPingPong(shards, tokens, workers)
	c.Shard(0).Run()
	return flatten(traces)
}

// TestClusterSerialParallelIdentical is the core determinism property: the
// event timeline is byte-identical at any worker count and GOMAXPROCS.
func TestClusterSerialParallelIdentical(t *testing.T) {
	want := runTrace(4, 8, 1)
	if len(want) == 0 {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{2, 4} {
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			got := runTrace(4, 8, workers)
			runtime.GOMAXPROCS(prev)
			if len(got) != len(want) {
				t.Fatalf("workers=%d procs=%d: %d events, want %d", workers, procs, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d procs=%d: event %d = %q, want %q", workers, procs, i, got[i], want[i])
				}
			}
		}
	}
}

// TestClusterStepMatchesRun: the one-event-window Step mode used during
// setup produces the same timeline as full windows.
func TestClusterStepMatchesRun(t *testing.T) {
	want := runTrace(3, 5, 1)
	c, traces := buildPingPong(3, 5, 1)
	for c.Step() {
	}
	got := flatten(traces)
	if len(got) != len(want) {
		t.Fatalf("step mode ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step mode event %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestClusterPostBelowLookaheadPanics: the conservative bound is enforced,
// not assumed.
func TestClusterPostBelowLookaheadPanics(t *testing.T) {
	c := NewCluster(2, 100*Nanosecond, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("post below lookahead did not panic")
		}
	}()
	c.Shard(0).Post(c.Shard(1), 50*Nanosecond, PriData, func(any) {}, nil)
}

// TestClusterMergeOrdering: data posts landing at one timestamp on one
// shard run in (source shard, source seq) order regardless of post order,
// while PriRelease posts are executed as bookkeeping at the barrier of the
// window that staged them — ahead of next-window data events, and never as
// destination-shard events.
func TestClusterMergeOrdering(t *testing.T) {
	c := NewCluster(3, 100*Nanosecond, 1)
	var got []string
	rec := func(tag string) func(any) {
		return func(any) { got = append(got, tag) }
	}
	// Both data posts mature at t=100 on shard 0; post them in an order that
	// differs from the deterministic key order. The release is staged with
	// the same maturity but runs at the first barrier instead.
	c.Shard(2).Post(c.Shard(0), 100*Nanosecond, PriRelease, rec("s2-release"), nil)
	c.Shard(2).Post(c.Shard(0), 100*Nanosecond, PriData, rec("s2-data"), nil)
	c.Shard(1).Post(c.Shard(0), 100*Nanosecond, PriData, rec("s1-data"), nil)
	// A local heap event in the first window runs before the barrier.
	c.Shard(0).Schedule(100*Nanosecond, func() { got = append(got, "s0-local") })
	c.Shard(0).Run()
	want := []string{"s0-local", "s2-release", "s1-data", "s2-data"}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	// Releases count as posts but not as destination events: shard 0 executed
	// only its own local event plus the two merged data posts.
	if got, want := c.Posted(), uint64(3); got != want {
		t.Fatalf("posted %d, want %d", got, want)
	}
	if got, want := c.Shard(0).Processed(), uint64(3); got != want {
		t.Fatalf("shard 0 processed %d events, want %d", got, want)
	}
}

// TestClusterRunUntil: clocks advance to exactly t on every shard and
// events beyond t stay pending.
func TestClusterRunUntil(t *testing.T) {
	c := NewCluster(2, 100*Nanosecond, 1)
	var ran []Time
	c.Shard(0).Schedule(50*Nanosecond, func() { ran = append(ran, 50) })
	c.Shard(1).Schedule(200*Nanosecond, func() { ran = append(ran, 200) })
	c.Shard(0).Schedule(400*Nanosecond, func() { ran = append(ran, 400) })
	c.Shard(0).RunUntil(200 * Nanosecond)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 50 and 200", ran)
	}
	for i := 0; i < 2; i++ {
		if c.Shard(i).Now() != 200*Nanosecond {
			t.Fatalf("shard %d clock %v, want 200ns", i, c.Shard(i).Now())
		}
	}
	if c.Pending() != 1 {
		t.Fatalf("pending %d, want 1", c.Pending())
	}
	c.Shard(0).Run()
	if len(ran) != 3 || ran[2] != 400 {
		t.Fatalf("ran %v, want final event at 400", ran)
	}
}

// TestClusterPartitionedRand: per-shard streams are stable and distinct.
func TestClusterPartitionedRand(t *testing.T) {
	a := NewCluster(3, 100*Nanosecond, 7)
	b := NewCluster(3, 100*Nanosecond, 7)
	for i := 0; i < 3; i++ {
		if a.Rand(i).Uint64() != b.Rand(i).Uint64() {
			t.Fatalf("shard %d stream not reproducible", i)
		}
	}
	if a.Rand(0).Uint64() == a.Rand(1).Uint64() {
		t.Fatal("shard streams correlated")
	}
}
