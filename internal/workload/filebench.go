package workload

import (
	"fmt"

	"kite/internal/apps"
	"kite/internal/fsim"
	"kite/internal/sim"
)

// FilebenchResult reports one filebench personality run (Figs 14-16).
type FilebenchResult struct {
	Personality string
	Ops         uint64
	Bytes       int64
	MBps        float64
	// CPUPerOp is mean execution time per operation (the us/op metric of
	// Figs 15/16).
	CPUPerOp sim.Time
	// AvgLatency is the mean per-operation completion latency.
	AvgLatency sim.Time
}

// FileserverConfig shapes the fileserver personality (Fig 14): threads
// performing create/write, open/read-whole, append, stat, delete cycles
// over a pre-created file population.
type FileserverConfig struct {
	Files    int
	MeanFile int // bytes
	AppendSz int
	IOSize   int // read/write chunk size (the Fig 14 sweep axis)
	Threads  int
	Duration sim.Time
	Seed     uint64
	CPUs     *sim.CPUPool // guest CPUs, for the us/op metric
}

// Fileserver prepares the file set and runs the op mix.
func Fileserver(eng *sim.Engine, fs *fsim.FS, cfg FileserverConfig, done func(FilebenchResult)) {
	prepare(eng, fs, "fsrv", cfg.Files, cfg.MeanFile, func(names []string) {
		start := eng.Now()
		cpu0 := busyOf(cfg.CPUs)
		var ops uint64
		var bytesMoved int64
		var latSum sim.Time
		nextNew := cfg.Files
		finished := 0

		worker := func(idx int) {
			// Per-worker RNG: op sequences stay identical across runs even
			// when completion interleavings differ (Linux vs Kite rigs
			// must execute comparable workloads).
			rng := sim.NewRand(cfg.Seed ^ 0xf11e ^ uint64(idx)*0x9e37)
			var cycle func()
			step := 0
			var cur *fsim.File
			opStart := eng.Now()
			fin := func(moved int) {
				bytesMoved += int64(moved)
				latSum += eng.Now() - opStart
				ops++
				cycle()
			}
			cycle = func() {
				if eng.Now()-start >= cfg.Duration {
					finished++
					if finished == cfg.Threads {
						emit(eng, "fileserver", start, ops, bytesMoved, latSum,
							busyOf(cfg.CPUs)-cpu0, done)
					}
					return
				}
				opStart = eng.Now()
				switch step % 5 {
				case 0: // create + write a whole new file
					step++
					name := fmt.Sprintf("fsrv.new.%d", nextNew)
					nextNew++
					f, err := fs.Create(name)
					if err != nil {
						f, _ = fs.Open(name)
					}
					cur = f
					writeWhole(fs, f, cfg.MeanFile, cfg.IOSize, func(n int) { fin(n) })
				case 1: // open + read an existing file fully
					step++
					f, err := fs.Open(names[rng.Intn(len(names))])
					if err != nil {
						fin(0)
						return
					}
					readWhole(fs, f, cfg.IOSize, func(n int) { fin(n) })
				case 2: // append
					step++
					fs.Append(cur, make([]byte, cfg.AppendSz), func(error) { fin(cfg.AppendSz) })
				case 3: // stat
					step++
					fs.Stat(names[rng.Intn(len(names))])
					fin(0)
				case 4: // delete the created file
					step++
					fs.Delete(cur.Name())
					fin(0)
				}
			}
			cycle()
		}
		for i := 0; i < cfg.Threads; i++ {
			worker(i)
		}
	}, done)
}

// WebserverConfig shapes the webserver personality (Fig 16): threads
// doing open/read-whole/close over many small files plus a log append.
type WebserverConfig struct {
	Files    int
	MeanFile int
	AppendSz int
	IOSize   int
	Threads  int
	Duration sim.Time
	Seed     uint64
	CPUs     *sim.CPUPool
}

// Webserver prepares the file set and runs the op mix.
func Webserver(eng *sim.Engine, fs *fsim.FS, cfg WebserverConfig, done func(FilebenchResult)) {
	prepare(eng, fs, "web", cfg.Files, cfg.MeanFile, func(names []string) {
		log, err := fs.Create("weblog")
		if err != nil {
			log, _ = fs.Open("weblog")
		}
		start := eng.Now()
		cpu0 := busyOf(cfg.CPUs)
		var ops uint64
		var bytesMoved int64
		var latSum sim.Time
		finished := 0

		worker := func(idx int) {
			rng := sim.NewRand(cfg.Seed ^ 0x3eb ^ uint64(idx)*0x9e37)
			var cycle func()
			reads := 0
			cycle = func() {
				if eng.Now()-start >= cfg.Duration {
					finished++
					if finished == cfg.Threads {
						emit(eng, "webserver", start, ops, bytesMoved, latSum,
							busyOf(cfg.CPUs)-cpu0, done)
					}
					return
				}
				opStart := eng.Now()
				if reads < 10 {
					reads++
					f, err := fs.Open(names[rng.Intn(len(names))])
					if err != nil {
						cycle()
						return
					}
					readWhole(fs, f, cfg.IOSize, func(n int) {
						bytesMoved += int64(n)
						latSum += eng.Now() - opStart
						ops++
						cycle()
					})
					return
				}
				reads = 0
				fs.Append(log, make([]byte, cfg.AppendSz), func(error) {
					bytesMoved += int64(cfg.AppendSz)
					latSum += eng.Now() - opStart
					ops++
					cycle()
				})
			}
			cycle()
		}
		for i := 0; i < cfg.Threads; i++ {
			worker(i)
		}
	}, done)
}

// MongoConfig shapes the MongoDB personality (Fig 15): one user, large
// documents (4 MB mean I/O), reads dominating with periodic inserts and
// journal syncs.
type MongoConfig struct {
	Docs     int
	DocSize  int
	Users    int
	Duration sim.Time
	Seed     uint64
}

// Mongo runs the document-store access pattern.
func Mongo(eng *sim.Engine, fs *fsim.FS, cpus *sim.CPUPool, cfg MongoConfig, done func(FilebenchResult)) {
	ds := apps.NewDocStore(eng, fs, cpus)
	// Preload the collection.
	var load func(i int)
	load = func(i int) {
		if i == cfg.Docs {
			fs.Sync(func(error) {
				fs.Pool().DropCaches()
				run(eng, cpus, ds, cfg, done)
			})
			return
		}
		ds.Insert(i, cfg.DocSize, func(error) { load(i + 1) })
	}
	load(0)
}

func run(eng *sim.Engine, cpus *sim.CPUPool, ds *apps.DocStore, cfg MongoConfig, done func(FilebenchResult)) {
	start := eng.Now()
	cpu0 := busyOf(cpus)
	var ops uint64
	var bytesMoved int64
	var latSum sim.Time
	finished := 0
	worker := func(idx int) {
		rng := sim.NewRand(cfg.Seed ^ 0x3070 ^ uint64(idx)*0x9e37)
		var cycle func()
		n := 0
		cycle = func() {
			if eng.Now()-start >= cfg.Duration {
				finished++
				if finished == cfg.Users {
					emit(eng, "mongo", start, ops, bytesMoved, latSum,
						busyOf(cpus)-cpu0, done)
				}
				return
			}
			opStart := eng.Now()
			n++
			fin := func(moved int) {
				bytesMoved += int64(moved)
				latSum += eng.Now() - opStart
				ops++
				cycle()
			}
			switch {
			case n%8 == 0: // periodic insert
				ds.Insert(rng.Intn(cfg.Docs), cfg.DocSize, func(error) { fin(cfg.DocSize) })
			case n%16 == 0: // journal sync
				ds.SyncJournal(func(error) { fin(0) })
			default:
				ds.Read(rng.Intn(cfg.Docs), func(doc []byte, _ error) { fin(len(doc)) })
			}
		}
		cycle()
	}
	for i := 0; i < cfg.Users; i++ {
		worker(i)
	}
}

// prepare creates count files of size bytes named prefix.N, syncs and
// drops caches (a cold start, §5.4), then calls next with their names.
func prepare(eng *sim.Engine, fs *fsim.FS, prefix string, count, size int,
	next func(names []string), done func(FilebenchResult)) {

	names := make([]string, count)
	var mk func(i int)
	mk = func(i int) {
		if i == count {
			fs.Sync(func(error) {
				fs.Pool().DropCaches()
				next(names)
			})
			return
		}
		names[i] = fmt.Sprintf("%s.%05d", prefix, i)
		f, err := fs.Create(names[i])
		if err != nil {
			done(FilebenchResult{})
			return
		}
		writeWhole(fs, f, size, 1<<20, func(int) { mk(i + 1) })
	}
	mk(0)
}

// writeWhole writes size bytes to f in ioSize chunks.
func writeWhole(fs *fsim.FS, f *fsim.File, size, ioSize int, cb func(written int)) {
	var off int
	var step func()
	step = func() {
		if off >= size {
			cb(size)
			return
		}
		n := ioSize
		if n > size-off {
			n = size - off
		}
		fs.Write(f, int64(off), make([]byte, n), func(error) {
			off += n
			step()
		})
	}
	step()
}

// readWhole reads f fully in ioSize chunks.
func readWhole(fs *fsim.FS, f *fsim.File, ioSize int, cb func(read int)) {
	size := int(f.Size())
	var off int
	var step func()
	step = func() {
		if off >= size {
			cb(size)
			return
		}
		n := ioSize
		if n > size-off {
			n = size - off
		}
		fs.Read(f, int64(off), n, func([]byte, error) {
			off += n
			step()
		})
	}
	step()
}

// busyOf tolerates a nil pool (CPU metric simply reads zero).
func busyOf(p *sim.CPUPool) sim.Time {
	if p == nil {
		return 0
	}
	return p.BusyTotal()
}

// emit finalizes a filebench result.
func emit(eng *sim.Engine, personality string, start sim.Time,
	ops uint64, bytesMoved int64, latSum, cpuBusy sim.Time, done func(FilebenchResult)) {

	dur := eng.Now() - start
	res := FilebenchResult{
		Personality: personality,
		Ops:         ops,
		Bytes:       bytesMoved,
		MBps:        mbps(bytesMoved, dur),
	}
	if ops > 0 {
		res.AvgLatency = latSum / sim.Time(ops)
		res.CPUPerOp = cpuBusy / sim.Time(ops)
	}
	done(res)
}
