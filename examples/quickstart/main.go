// Quickstart: build the paper's testbed, boot a Kite network driver
// domain, attach a guest, and ping it from the client machine — the
// minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"kite"
)

func main() {
	// Table 2's two machines: a Xen server with a passthrough-able 10GbE
	// NIC and NVMe disk, cabled to a client load generator.
	tb := kite.NewTestbed(1)

	// The Kite network driver domain: a rumprun unikernel owning the NIC,
	// running the bridge and netback (Boot: true replays the ~7 s boot).
	nd, err := tb.System.CreateNetworkDomain(kite.NetworkDomainConfig{
		Kind: kite.KindKite,
		NIC:  tb.ServerNIC,
		Boot: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tb.System.RunReady(nd.Ready, 1_000_000)
	fmt.Printf("kite network domain ready at t=%.1fs (boot phases: %v)\n",
		tb.System.Eng.Now().Seconds(), nd.BootLog())

	// A DomU guest served by it.
	guest, err := tb.System.CreateGuest(kite.GuestConfig{
		Name: "domU", IP: tb.GuestIP, Net: nd, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !tb.System.RunReady(guest.Ready, 500000) {
		log.Fatal("vif handshake did not complete")
	}
	fmt.Println("guest vif connected (netfront <-> netback over shared rings)")

	// Ping the guest from the client through NIC -> bridge -> netback ->
	// netfront -> guest stack and back.
	done := false
	tb.Client.Stack.Ping(tb.GuestIP, 56, func(rtt kite.Time) {
		fmt.Printf("ping %v -> %v: rtt=%.3f ms\n", tb.ClientIP, tb.GuestIP, rtt.Millis())
		done = true
	})
	if !tb.System.RunReady(func() bool { return done }, 500000) {
		log.Fatal("ping did not complete")
	}

	vif := nd.Driver.VIFs()[0]
	st := vif.Stats()
	fmt.Printf("vif %s moved %d frames guest->world, %d world->guest\n",
		vif.Name(), st.TxFrames, st.RxFrames)
}
