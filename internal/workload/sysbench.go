package workload

import (
	"kite/internal/apps"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// OLTP transaction shape: sysbench oltp_read_only executes 10 point
// selects and 4 range queries (100 rows each) per transaction.
const (
	oltpPointsPerTx = 10
	oltpRangesPerTx = 4
	oltpRangeRows   = 100
)

// OLTPResult reports a sysbench MySQL run (Figs 10a, 13).
type OLTPResult struct {
	Threads      int
	Transactions int
	Queries      int
	TPS          float64
	QPS          float64
	AvgLatency   sim.Time
	// GuestCPUUtil is DomU's mean CPU utilization during the run (Fig 10b).
	GuestCPUUtil float64
}

// OLTPNetwork drives the SQL wire protocol from the client machine with
// the given number of connections for dur (Fig 10: the network-domain
// test; the dataset fits memory).
func OLTPNetwork(client *netstack.Host, serverIP netpkt.IP, port uint16,
	guestCPUs *sim.CPUPool, tables int, rows int64,
	threads int, dur sim.Time, done func(OLTPResult)) {

	eng := client.Stack.Engine()
	rng := sim.NewRand(uint64(threads)*7919 + 17)
	start := eng.Now()
	guestCPUs.ResetWindows()

	totalTx := 0
	totalQ := 0
	var latSum sim.Time
	finished := 0

	finish := func() {
		finished++
		if finished < threads {
			return
		}
		res := OLTPResult{
			Threads: threads, Transactions: totalTx, Queries: totalQ,
			GuestCPUUtil: guestCPUs.WindowUtilization(),
		}
		elapsed := (eng.Now() - start).Seconds()
		if elapsed > 0 {
			res.TPS = float64(totalTx) / elapsed
			res.QPS = float64(totalQ) / elapsed
		}
		if totalTx > 0 {
			res.AvgLatency = latSum / sim.Time(totalTx)
		}
		done(res)
	}

	worker := func() {
		client.Stack.Dial(serverIP, port, func(c *netstack.Conn, err error) {
			if err != nil {
				finish()
				return
			}
			var buf []byte
			queriesLeft := 0
			var txStart sim.Time
			var beginTx func()
			step := func() {
				if queriesLeft == 0 {
					latSum += eng.Now() - txStart
					totalTx++
					if eng.Now()-start >= dur {
						c.Close()
						finish()
						return
					}
					beginTx()
					return
				}
				queriesLeft--
				totalQ++
				table := rng.Intn(tables)
				row := rng.Int63n(rows)
				if queriesLeft < oltpRangesPerTx { // last 4 are ranges
					if row > rows-oltpRangeRows {
						row = rows - oltpRangeRows
					}
					c.Send([]byte(sqlRange(table, row, oltpRangeRows)))
				} else {
					c.Send([]byte(sqlPoint(table, row)))
				}
			}
			beginTx = func() {
				txStart = eng.Now()
				queriesLeft = oltpPointsPerTx + oltpRangesPerTx
				step()
			}
			c.OnData(func(b []byte) {
				buf = append(buf, b...)
				for {
					n := consumeSQLReply(buf)
					if n == 0 {
						return
					}
					buf = buf[n:]
					step()
				}
			})
			beginTx()
		})
	}
	for i := 0; i < threads; i++ {
		worker()
	}
}

// OLTPLocal drives a SQLDB directly inside the guest with the given
// concurrency for dur (Fig 13: the storage-domain test; the dataset
// exceeds the page cache, so queries miss to the paravirtual disk).
func OLTPLocal(db *apps.SQLDB, guestCPUs *sim.CPUPool, eng *sim.Engine,
	tables int, rows int64, threads int, dur sim.Time, done func(OLTPResult)) {

	rng := sim.NewRand(uint64(threads)*104729 + 23)
	start := eng.Now()
	guestCPUs.ResetWindows()

	totalTx := 0
	totalQ := 0
	var latSum sim.Time
	finished := 0

	finish := func() {
		finished++
		if finished < threads {
			return
		}
		res := OLTPResult{
			Threads: threads, Transactions: totalTx, Queries: totalQ,
			GuestCPUUtil: guestCPUs.WindowUtilization(),
		}
		elapsed := (eng.Now() - start).Seconds()
		if elapsed > 0 {
			res.TPS = float64(totalTx) / elapsed
			res.QPS = float64(totalQ) / elapsed
		}
		if totalTx > 0 {
			res.AvgLatency = latSum / sim.Time(totalTx)
		}
		done(res)
	}

	worker := func() {
		queriesLeft := 0
		var txStart sim.Time
		var step func()
		var beginTx func()
		step = func() {
			if queriesLeft == 0 {
				latSum += eng.Now() - txStart
				totalTx++
				if eng.Now()-start >= dur {
					finish()
					return
				}
				beginTx()
				return
			}
			queriesLeft--
			totalQ++
			table := rng.Intn(tables)
			row := rng.Int63n(rows)
			if queriesLeft < oltpRangesPerTx {
				if row > rows-oltpRangeRows {
					row = rows - oltpRangeRows
				}
				db.RangeSelect(table, row, oltpRangeRows, func([]byte, error) { step() })
			} else {
				db.PointSelect(table, row, func([]byte, error) { step() })
			}
		}
		beginTx = func() {
			txStart = eng.Now()
			queriesLeft = oltpPointsPerTx + oltpRangesPerTx
			step()
		}
		beginTx()
	}
	for i := 0; i < threads; i++ {
		worker()
	}
}

func sqlPoint(table int, row int64) string {
	return "P " + itoa(int64(table)) + " " + itoa(row) + "\n"
}

func sqlRange(table int, row int64, count int) string {
	return "R " + itoa(int64(table)) + " " + itoa(row) + " " + itoa(int64(count)) + "\n"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// consumeSQLReply returns the length of one complete SQL reply ("D
// <len>\n<bytes>" or "E ...\n") at the start of buf, or 0 if incomplete.
func consumeSQLReply(buf []byte) int {
	nl := -1
	for i, c := range buf {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return 0
	}
	if len(buf) >= 2 && buf[0] == 'D' {
		var n int
		if _, err := sscanInt(string(buf[2:nl]), &n); err == nil {
			total := nl + 1 + n
			if len(buf) < total {
				return 0
			}
			return total
		}
	}
	return nl + 1
}
