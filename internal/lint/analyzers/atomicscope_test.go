package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestAtomicscope(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/atomicscope", "testdata/src/atomicscope", analyzers.Atomicscope)
}
