// Package nat implements network address translation for the network
// driver domain — the alternative to bridging that §3.1 lists among the
// techniques driver domains need ("bridging, routing, and network address
// translation (NAT)"), ported in spirit from NetBSD's npf/ipnat the way
// Kite ports ifconfig/brconfig.
//
// The translator sits between the physical interface (outside) and the
// guest-facing VIFs (inside): outbound flows get their source rewritten to
// the gateway address with an allocated port; inbound packets are matched
// against the flow table (plus static port forwards) and rewritten back.
// TCP, UDP, and ICMP echo are supported — enough for every workload in the
// evaluation.
package nat

import (
	"encoding/binary"
	"fmt"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// proto keys for the flow table.
type flowKey struct {
	proto   uint8
	guestIP netpkt.IP
	guestPt uint16 // ICMP: echo ID
}

// Stats counts translator activity.
type Stats struct {
	Outbound      uint64
	Inbound       uint64
	Dropped       uint64 // no matching flow or forward
	FlowsAlloc    uint64
	FlowsExpired  uint64
	PortExhausted uint64 // outbound drops because the dynamic port space was full
}

// Translator is one NAT instance owned by the network driver domain.
type Translator struct {
	eng  *sim.Engine
	cpus *sim.CPUPool

	// Gateway is the external address owned by the driver domain.
	Gateway netpkt.IP
	// PerPacketCost models the translation work.
	PerPacketCost sim.Time

	flows flowTable
	// reverse maps an external port straight to its flow record: a flat
	// array of packed (shard, slab-index) references — O(1) inbound match
	// with no second hash table to keep consistent.
	reverse  [1 << 16]flowRef
	forwards []forwardEnt // sorted by extPort; control-plane sized
	nextPort uint16
	dynPorts int // dynamic ports currently allocated

	stats Stats
}

// forwardEnt is one static rdr rule.
type forwardEnt struct {
	extPort uint16
	ip      netpkt.IP
	port    uint16
}

// New creates a translator for the given gateway address.
func New(eng *sim.Engine, cpus *sim.CPUPool, gateway netpkt.IP) *Translator {
	t := &Translator{
		eng: eng, cpus: cpus, Gateway: gateway,
		PerPacketCost: 350 * sim.Nanosecond,
		nextPort:      portBase,
	}
	t.flows.init()
	return t
}

// Stats returns a snapshot of the counters.
func (t *Translator) Stats() Stats { return t.stats }

// Flows returns the number of active translations.
func (t *Translator) Flows() int { return t.flows.count }

// AddForward installs a static inbound mapping (gateway:extPort ->
// guest:guestPort), the rdr rule servers behind NAT need.
func (t *Translator) AddForward(extPort uint16, guest netpkt.IP, guestPort uint16) error {
	i := t.forwardIdx(extPort)
	if i < len(t.forwards) && t.forwards[i].extPort == extPort {
		return fmt.Errorf("nat: external port %d already forwarded", extPort)
	}
	t.forwards = append(t.forwards, forwardEnt{})
	copy(t.forwards[i+1:], t.forwards[i:])
	t.forwards[i] = forwardEnt{extPort: extPort, ip: guest, port: guestPort}
	return nil
}

// forwardIdx returns the insertion/lookup position of extPort in the
// sorted forwards slice.
func (t *Translator) forwardIdx(extPort uint16) int {
	lo, hi := 0, len(t.forwards)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.forwards[mid].extPort < extPort {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lookupForward resolves a static rule by external port.
func (t *Translator) lookupForward(extPort uint16) (forwardEnt, bool) {
	i := t.forwardIdx(extPort)
	if i < len(t.forwards) && t.forwards[i].extPort == extPort {
		return t.forwards[i], true
	}
	return forwardEnt{}, false
}

// allocPort claims a free dynamic external port. Unlike the unbounded
// next-fit loop it replaces, exhaustion is detectable: when every dynamic
// port is taken the scan terminates and the packet is dropped (with
// PortExhausted counted) instead of spinning forever.
func (t *Translator) allocPort() (uint16, bool) {
	if t.dynPorts >= portSpan {
		return 0, false
	}
	for i := 0; i < portSpan; i++ {
		t.nextPort++
		if t.nextPort < portBase {
			t.nextPort = portBase
		}
		if t.reverse[t.nextPort] == 0 {
			if _, fwd := t.lookupForward(t.nextPort); !fwd {
				return t.nextPort, true
			}
		}
	}
	return 0, false
}

// flowFor finds or creates the translation for an outbound packet. A
// guest endpoint that is the target of a static forward keeps the
// forward's external port, so replies of redirected connections translate
// back symmetrically. Returns nil when the dynamic port space is
// exhausted — the caller drops the packet.
//
//kite:hotpath
func (t *Translator) flowFor(proto uint8, guest netpkt.IP, guestPort uint16) *flowEnt {
	key := flowKey{proto: proto, guestIP: guest, guestPt: guestPort}
	if f := t.flows.lookup(key); f != nil {
		f.lastUse = t.eng.Now()
		return f
	}
	ext := uint16(0)
	for _, fwd := range t.forwards { // sorted: lowest matching rule wins, deterministically
		if fwd.ip == guest && fwd.port == guestPort {
			ext = fwd.extPort
			break
		}
	}
	dyn := false
	if ext == 0 {
		var ok bool
		ext, ok = t.allocPort()
		if !ok {
			t.stats.PortExhausted++
			return nil
		}
		t.dynPorts++
		dyn = true
	}
	f, ref := t.flows.insert(key, t.eng.Now())
	f.extPort = ext
	f.dyn = dyn
	t.reverse[ext] = ref
	t.stats.FlowsAlloc++
	return f
}

// RewriteOutbound translates a guest-originated IPv4 packet (raw, starting
// at the IP header) in place so it appears to come from the gateway.
// Nothing is allocated: L4 ports (or the echo ID) and the IP addresses are
// rewritten inside pkt and checksums are recomputed. Reports whether the
// packet translated (false means drop).
func (t *Translator) RewriteOutbound(pkt []byte) bool {
	t.cpus.Charge(t.PerPacketCost)
	h, payload, ok := netpkt.DecodeIPv4(pkt)
	if !ok {
		t.stats.Dropped++
		return false
	}
	switch h.Proto {
	case netpkt.ProtoTCP:
		if len(payload) < netpkt.TCPHeaderLen {
			t.stats.Dropped++
			return false
		}
		f := t.flowFor(h.Proto, h.Src, binary.BigEndian.Uint16(payload[0:2]))
		if f == nil {
			t.stats.Dropped++
			return false
		}
		binary.BigEndian.PutUint16(payload[0:2], f.extPort)
	case netpkt.ProtoUDP:
		if len(payload) < netpkt.UDPHeaderLen {
			t.stats.Dropped++
			return false
		}
		f := t.flowFor(h.Proto, h.Src, binary.BigEndian.Uint16(payload[0:2]))
		if f == nil {
			t.stats.Dropped++
			return false
		}
		binary.BigEndian.PutUint16(payload[0:2], f.extPort)
	case netpkt.ProtoICMP:
		eh, _, ok := netpkt.DecodeICMPEcho(payload)
		if !ok || eh.Type != netpkt.ICMPEchoRequest {
			t.stats.Dropped++
			return false
		}
		f := t.flowFor(h.Proto, h.Src, eh.ID)
		if f == nil {
			t.stats.Dropped++
			return false
		}
		binary.BigEndian.PutUint16(payload[4:6], f.extPort)
		reICMPChecksum(payload)
	default:
		t.stats.Dropped++
		return false
	}
	rewriteIP(pkt, t.Gateway, h.Dst)
	t.stats.Outbound++
	return true
}

// RewriteInbound translates a packet arriving at the gateway back to the
// owning guest, in place. Returns the guest address and whether a flow or
// forward matched (false means drop — NAT's implicit firewall).
func (t *Translator) RewriteInbound(pkt []byte) (netpkt.IP, bool) {
	t.cpus.Charge(t.PerPacketCost)
	h, payload, ok := netpkt.DecodeIPv4(pkt)
	if !ok || h.Dst != t.Gateway {
		t.stats.Dropped++
		return netpkt.IP{}, false
	}
	var dst netpkt.IP
	switch h.Proto {
	case netpkt.ProtoTCP, netpkt.ProtoUDP:
		hdrLen := netpkt.TCPHeaderLen
		if h.Proto == netpkt.ProtoUDP {
			hdrLen = netpkt.UDPHeaderLen
		}
		if len(payload) < hdrLen {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		guest, port, ok := t.matchInbound(h.Proto, binary.BigEndian.Uint16(payload[2:4]))
		if !ok {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		binary.BigEndian.PutUint16(payload[2:4], port)
		dst = guest
	case netpkt.ProtoICMP:
		eh, _, ok := netpkt.DecodeICMPEcho(payload)
		if !ok || eh.Type != netpkt.ICMPEchoReply {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		f := t.flows.get(t.reverse[eh.ID])
		if f == nil || f.key.proto != netpkt.ProtoICMP {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		binary.BigEndian.PutUint16(payload[4:6], f.key.guestPt)
		reICMPChecksum(payload)
		dst = f.key.guestIP
	default:
		t.stats.Dropped++
		return netpkt.IP{}, false
	}
	rewriteIP(pkt, h.Src, dst)
	t.stats.Inbound++
	return dst, true
}

// rewriteIP patches the addresses into an IPv4 header in place, decrements
// the TTL, and recomputes the header checksum.
func rewriteIP(pkt []byte, src, dst netpkt.IP) {
	copy(pkt[12:16], src[:])
	copy(pkt[16:20], dst[:])
	pkt[8]-- // TTL
	pkt[10], pkt[11] = 0, 0
	binary.BigEndian.PutUint16(pkt[10:12], netpkt.Checksum(pkt[:netpkt.IPHeaderLen]))
}

// reICMPChecksum recomputes the checksum of an ICMP message in place.
func reICMPChecksum(msg []byte) {
	msg[2], msg[3] = 0, 0
	binary.BigEndian.PutUint16(msg[2:4], netpkt.Checksum(msg))
}

// TranslateOutbound is the copying form of RewriteOutbound, kept for tests
// and cold paths: it returns a rewritten copy or nil.
func (t *Translator) TranslateOutbound(pkt []byte) []byte {
	cp := append([]byte(nil), pkt...)
	if !t.RewriteOutbound(cp) {
		return nil
	}
	return cp
}

// TranslateInbound is the copying form of RewriteInbound: it returns a
// rewritten copy and the guest address, or nil.
func (t *Translator) TranslateInbound(pkt []byte) ([]byte, netpkt.IP) {
	cp := append([]byte(nil), pkt...)
	dst, ok := t.RewriteInbound(cp)
	if !ok {
		return nil, netpkt.IP{}
	}
	return cp, dst
}

// matchInbound resolves an inbound destination port via flows then static
// forwards.
//
//kite:hotpath
func (t *Translator) matchInbound(proto uint8, extPort uint16) (netpkt.IP, uint16, bool) {
	if f := t.flows.get(t.reverse[extPort]); f != nil && f.key.proto == proto {
		f.lastUse = t.eng.Now()
		return f.key.guestIP, f.key.guestPt, true
	}
	if fwd, ok := t.lookupForward(extPort); ok {
		return fwd.ip, fwd.port, true
	}
	return netpkt.IP{}, 0, false
}

// Expire drops flows idle for longer than maxIdle (the translator's GC,
// called periodically by the network application). The walk is in
// deterministic shard/slab order; records return to their shard's
// free-list and dynamic ports become allocatable again.
func (t *Translator) Expire(maxIdle sim.Time) int {
	dropped := t.flows.expire(t.eng.Now(), maxIdle, func(f *flowEnt) {
		t.reverse[f.extPort] = 0
		if f.dyn {
			t.dynPorts--
		}
	})
	t.stats.FlowsExpired += uint64(dropped)
	return dropped
}

// DropGuest removes every flow owned by a guest address — the teardown
// path when a tenant detaches mid-traffic, so a departed guest's
// translations stop pinning external ports immediately instead of waiting
// out the idle timer.
func (t *Translator) DropGuest(guest netpkt.IP) int {
	dropped := 0
	for si := range t.flows.shards {
		s := &t.flows.shards[si]
		for idx := range s.slab {
			f := &s.slab[idx]
			if f.used && f.key.guestIP == guest {
				t.reverse[f.extPort] = 0
				if f.dyn {
					t.dynPorts--
				}
				t.flows.remove(f.key)
				dropped++
			}
		}
	}
	t.stats.FlowsExpired += uint64(dropped)
	return dropped
}
