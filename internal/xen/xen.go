// Package xen models the Xen hypervisor layer of the Kite reproduction:
// domains with virtual CPUs and RAM arenas, inter-domain event channels
// (virtual interrupts), and grant tables for shared memory including the
// hypervisor-based copy path that modern netfronts use (§4.2 of the paper).
//
// Mechanisms are executed for real — grant copies move actual bytes between
// per-domain page arenas — while every hypercall charges virtual time to
// the calling vCPU so that the cost of map/unmap/copy traffic shows up in
// the experiments exactly where the paper says it matters.
package xen

import (
	"fmt"
	"sync/atomic"

	"kite/internal/mem"
	"kite/internal/sim"
)

// DomID identifies a domain. Dom0 is always DomID 0.
type DomID uint16

// HypercallCosts parameterizes the price of crossing into the hypervisor.
// Defaults approximate the paper's testbed (Xeon E5-2695 v4, Xen 4.9).
type HypercallCosts struct {
	Base           sim.Time // trap + entry/exit
	EventSend      sim.Time // evtchn_send beyond Base
	GrantMapPage   sim.Time // per page mapped
	GrantUnmapPage sim.Time // per page unmapped (incl. TLB shootdown share)
	GrantCopyPage  sim.Time // per copy op fixed part
	CopyBytePerKB  sim.Time // memcpy cost per KiB moved by the hypervisor
}

// DefaultCosts returns the calibrated cost set used by the experiments.
func DefaultCosts() HypercallCosts {
	return HypercallCosts{
		Base:           550 * sim.Nanosecond,
		EventSend:      250 * sim.Nanosecond,
		GrantMapPage:   480 * sim.Nanosecond,
		GrantUnmapPage: 620 * sim.Nanosecond, // unmap is pricier: remote TLB flush
		GrantCopyPage:  180 * sim.Nanosecond,
		CopyBytePerKB:  55 * sim.Nanosecond, // ~18 GB/s effective memcpy
	}
}

// Stats counts hypercall traffic; experiments and ablation benches read it.
type Stats struct {
	EventSends   uint64
	GrantMaps    uint64
	GrantUnmaps  uint64
	GrantCopies  uint64 // copy ops, not batches
	CopiedBytes  uint64
	HypercallNS  sim.Time
	DomainsBuilt uint64
}

// atomicStats is the hypervisor's live counter set. Counters are atomic
// because hypercalls issue from every cluster shard concurrently within a
// lookahead window; totals are exact and deterministic, and snapshots are
// only taken between runs.
type atomicStats struct {
	eventSends   atomic.Uint64
	grantMaps    atomic.Uint64
	grantUnmaps  atomic.Uint64
	grantCopies  atomic.Uint64
	copiedBytes  atomic.Uint64
	hypercallNS  atomic.Int64
	domainsBuilt atomic.Uint64
}

// Hypervisor is the single trusted component (paper §3.1). It owns the
// domain table and implements the hypercall surface the drivers use.
type Hypervisor struct {
	Eng   *sim.Engine
	Costs HypercallCosts

	// domains is indexed by DomID: IDs are allocated sequentially and never
	// reused, so the hot per-packet lookups (grant copies, event sends) are
	// a bounds check instead of a map probe.
	domains []*Domain
	nextDom DomID
	stats   atomicStats

	pci map[string]DomID // BDF -> owning domain
}

// New creates a hypervisor on the given engine with default costs.
func New(eng *sim.Engine) *Hypervisor {
	return &Hypervisor{
		Eng:   eng,
		Costs: DefaultCosts(),
		pci:   make(map[string]DomID),
	}
}

// Stats returns a snapshot of hypercall counters.
func (hv *Hypervisor) Stats() Stats {
	return Stats{
		EventSends:   hv.stats.eventSends.Load(),
		GrantMaps:    hv.stats.grantMaps.Load(),
		GrantUnmaps:  hv.stats.grantUnmaps.Load(),
		GrantCopies:  hv.stats.grantCopies.Load(),
		CopiedBytes:  hv.stats.copiedBytes.Load(),
		HypercallNS:  sim.Time(hv.stats.hypercallNS.Load()),
		DomainsBuilt: hv.stats.domainsBuilt.Load(),
	}
}

// ResetStats zeroes the hypercall counters (used between experiment phases).
func (hv *Hypervisor) ResetStats() { hv.stats = atomicStats{} }

// DomainConfig describes a domain to be built.
type DomainConfig struct {
	Name       string
	VCPUs      int
	MemBytes   int64
	Privileged bool
	IRQLatency sim.Time // event-channel upcall delivery latency for this OS
}

// CreateDomain builds a new domain. The first domain created is Dom0 and
// must be privileged.
func (hv *Hypervisor) CreateDomain(cfg DomainConfig) *Domain {
	if cfg.VCPUs <= 0 {
		panic(fmt.Sprintf("xen: domain %q needs at least one vCPU", cfg.Name))
	}
	id := hv.nextDom
	hv.nextDom++
	if id == 0 && !cfg.Privileged {
		panic("xen: the first domain must be privileged Dom0")
	}
	d := &Domain{
		ID:         id,
		Name:       cfg.Name,
		hv:         hv,
		CPUs:       sim.NewCPUPool(hv.Eng, cfg.Name, cfg.VCPUs),
		Arena:      mem.NewArena(cfg.Name, cfg.MemBytes),
		Privileged: cfg.Privileged,
		IRQLatency: cfg.IRQLatency,
	}
	hv.domains = append(hv.domains, d)
	hv.stats.domainsBuilt.Add(1)
	return d
}

// domainAt returns the domain slot for an ID, dead or alive; nil if the ID
// was never allocated.
//
//kite:hotpath
func (hv *Hypervisor) domainAt(id DomID) *Domain {
	if int(id) >= len(hv.domains) {
		return nil
	}
	return hv.domains[id]
}

// Domain looks up a live domain by ID; nil if unknown or destroyed.
//
//kite:hotpath
func (hv *Hypervisor) Domain(id DomID) *Domain {
	d := hv.domainAt(id)
	if d == nil || d.dead {
		return nil
	}
	return d
}

// Domains returns all live domains in creation order.
func (hv *Hypervisor) Domains() []*Domain {
	out := make([]*Domain, 0, len(hv.domains))
	for _, d := range hv.domains {
		if !d.dead {
			out = append(out, d)
		}
	}
	return out
}

// DestroyDomain tears a domain down: all its event channels close (peers
// see the close), grants are revoked, and the domain stops receiving
// events. Other domains are untouched — the isolation property driver
// domains exist to provide.
func (hv *Hypervisor) DestroyDomain(id DomID) error {
	d := hv.domainAt(id)
	if d == nil || d.dead {
		return fmt.Errorf("xen: destroy of unknown domain %d", id)
	}
	if id == 0 {
		return fmt.Errorf("xen: refusing to destroy Dom0")
	}
	d.dead = true
	for p := range d.ports {
		if d.ports[p] != nil {
			d.closePort(Port(p))
		}
	}
	d.grants = nil
	d.liveGrants = 0
	for bdf, owner := range hv.pci {
		if owner == id {
			delete(hv.pci, bdf)
		}
	}
	if d.OnDestroy != nil {
		d.OnDestroy()
	}
	return nil
}

// AssignPCI gives a passthrough device (identified by BDF) to a domain,
// modelling `xl pci-assignable-add` + the pci= config stanza.
func (hv *Hypervisor) AssignPCI(bdf string, id DomID) error {
	if hv.Domain(id) == nil {
		return fmt.Errorf("xen: pci assign to unknown domain %d", id)
	}
	if owner, taken := hv.pci[bdf]; taken {
		return fmt.Errorf("xen: device %s already assigned to domain %d", bdf, owner)
	}
	hv.pci[bdf] = id
	return nil
}

// PCIOwner returns the domain owning a BDF, or false.
func (hv *Hypervisor) PCIOwner(bdf string) (DomID, bool) {
	id, ok := hv.pci[bdf]
	return id, ok
}

// Domain is one virtual machine.
type Domain struct {
	ID         DomID
	Name       string
	CPUs       *sim.CPUPool
	Arena      *mem.Arena
	Privileged bool
	IRQLatency sim.Time

	// OnDestroy runs when the hypervisor destroys the domain (used by the
	// toolstack to clean up xenstore state, as xenstored does for real).
	OnDestroy func()

	hv   *Hypervisor
	dead bool
	// grants and ports are indexed by ref/port number: both are allocated
	// sequentially and never reused, so the per-packet resolutions
	// (resolveCopyPtr, Notify) are bounds checks instead of map probes.
	// Revoked grants and closed ports leave nil holes.
	grants     []*grantEntry
	liveGrants int
	nextRef    GrantRef
	ports      []*channel
	nextPort   Port
}

// grant returns the live-or-revoked grant entry for ref, nil if ref was
// never issued or has been revoked.
//
//kite:hotpath
func (d *Domain) grant(ref GrantRef) *grantEntry {
	if int(ref) >= len(d.grants) {
		return nil
	}
	return d.grants[ref]
}

// port returns the channel on a local port, nil if unknown or closed.
//
//kite:hotpath
func (d *Domain) port(p Port) *channel {
	if int(p) >= len(d.ports) {
		return nil
	}
	return d.ports[p]
}

// setPort installs a channel at p, growing the port table as needed
// (ports are allocated sequentially, so growth is one slot at a time).
func (d *Domain) setPort(p Port, ch *channel) {
	for int(p) >= len(d.ports) {
		d.ports = append(d.ports, nil) //kite:alloc-ok port table grows once per channel lifetime
	}
	d.ports[p] = ch
}

// Hypervisor returns the owning hypervisor.
func (d *Domain) Hypervisor() *Hypervisor { return d.hv }

// Dead reports whether the domain has been destroyed.
func (d *Domain) Dead() bool { return d.dead }

// charge bills a hypercall of the given cost to one of the domain's vCPUs
// and returns completion time.
func (d *Domain) charge(cost sim.Time) sim.Time {
	d.hv.stats.hypercallNS.Add(int64(cost))
	return d.CPUs.Charge(cost)
}

// chargeOn bills a hypercall to a specific (pinned) vCPU — the form every
// per-queue data path uses once queues are pinned to cluster shards, since
// picking from the shared pool would race across shards.
func (d *Domain) chargeOn(cpu *sim.CPU, cost sim.Time) sim.Time {
	d.hv.stats.hypercallNS.Add(int64(cost))
	return cpu.Charge(cost)
}
