package guestos

// Syscall inventories per OS profile (Figure 4a, §5.1.1).
//
// The paper measures 171 system calls in even a minimal Ubuntu-based
// driver domain (boot + user space + xen-tools), versus 14 for Kite's
// network domain and 18 for its storage domain — roughly a 10x reduction —
// and notes Linux exposes ~300 in total. The lists below are real syscall
// names; the Ubuntu list is the union a Linux driver domain traverses
// during boot (systemd, udev, shell, python/xl toolstack) plus steady
// state.

// TotalLinuxSyscalls is the full x86-64 Linux syscall surface the paper
// cites (~300).
const TotalLinuxSyscalls = 313

// KiteNetworkSyscalls are the rump-kernel syscall-equivalents compiled
// into the network domain (everything else is discarded at link time).
var KiteNetworkSyscalls = []string{
	"read", "write", "open", "close",
	"ioctl", "fcntl", "poll",
	"mmap", "munmap",
	"clock_gettime", "nanosleep",
	"socket", "setsockopt", "sysctl",
}

// KiteStorageSyscalls are the storage domain's retained syscalls.
var KiteStorageSyscalls = []string{
	"read", "write", "open", "close",
	"ioctl", "fcntl", "poll",
	"mmap", "munmap",
	"clock_gettime", "nanosleep",
	"fstat", "lseek", "pread", "pwrite",
	"fsync", "sync", "sysctl",
}

// UbuntuDriverDomainSyscalls is the syscall set a minimal Ubuntu 18.04
// driver domain uses (boot through steady state), 171 entries.
var UbuntuDriverDomainSyscalls = []string{
	// file + fd
	"read", "write", "open", "openat", "close", "stat", "fstat", "lstat",
	"newfstatat", "lseek", "pread64", "pwrite64", "readv", "writev",
	"access", "dup", "dup2",
	"fcntl", "flock", "fsync", "fdatasync", "sync", "truncate",
	"ftruncate", "getdents", "getdents64", "readlink",
	"rename", "renameat", "mkdir", "mkdirat",
	"rmdir", "link", "unlink", "unlinkat", "symlink",
	"chmod", "fchmod", "chown", "fchown",
	"fchownat", "umask", "utimensat", "statfs", "fstatfs",
	"getcwd", "chdir", "fchdir", "chroot",
	// memory
	"mmap", "mprotect", "munmap", "brk", "mremap", "msync", "madvise",
	"mlock", "munlock",
	// process
	"clone", "fork", "vfork", "execve", "exit", "exit_group",
	"wait4", "kill", "tgkill", "getpid", "getppid",
	"gettid", "setsid", "setpgid", "prctl", "arch_prctl",
	"set_tid_address", "set_robust_list", "get_robust_list", "setpriority",
	"getpriority", "sched_yield", "sched_getaffinity", "sched_setaffinity",
	"sched_setscheduler", "seccomp", "capget", "capset",
	"prlimit64", "getrlimit", "setrlimit", "getrusage", "umount2", "mount",
	// ids
	"getuid", "geteuid", "getgid", "getegid", "setuid", "setgid",
	"setresuid", "setresgid", "getresuid", "getresgid", "setgroups",
	"getgroups",
	// signals
	"rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "rt_sigsuspend",
	"rt_sigtimedwait", "rt_sigqueueinfo", "sigaltstack", "pause", "restart_syscall",
	// time
	"clock_gettime", "clock_getres", "clock_nanosleep", "gettimeofday",
	"settimeofday", "nanosleep", "times", "timer_create", "timer_settime",
	"timer_delete", "timerfd_create", "timerfd_settime", "alarm",
	// polling + events
	"poll", "ppoll", "select", "pselect6", "epoll_create1", "epoll_ctl",
	"epoll_wait", "epoll_pwait", "eventfd2", "signalfd4", "inotify_init1",
	"inotify_add_watch", "inotify_rm_watch",
	// sockets
	"socket", "socketpair", "bind", "listen", "accept", "accept4",
	"connect", "getsockname", "getpeername", "sendto", "recvfrom",
	"sendmsg", "recvmsg", "shutdown", "setsockopt",
	"getsockopt",
	// ipc + misc
	"pipe", "pipe2", "futex", "ioctl", "uname", "sysinfo", "getrandom",
	"init_module", "finit_module", "delete_module",
	"modify_ldt", "ptrace", "setns", "unshare", "name_to_handle_at",
	"ioprio_set",
}
