package analyzers

import (
	"go/ast"
	"go/token"
)

// This file is the dataflow layer shared by the path-sensitive analyzers
// (poolref, ringlink): a small abstract interpreter over one function body.
// The abstract state is a bitset of client-defined facts ("owned",
// "released", "linked", ...); branches fork the set, merges union it, and
// loops run to a two-iteration fixpoint, so the interpretation is a sound
// over-approximation of every acyclic path plus one loop back edge.
// Functions using goto or labeled branches are skipped by the callers
// (none exist in this module); hasJumps detects them.
//
// The engine owns control flow only. Everything domain-specific lives in a
// flowClient:
//
//   - stmt gets first crack at every statement; returning done=true means
//     the client fully handled it (e.g. poolref's tracked acquisition or a
//     deferred Release).
//   - scan folds the straight-line effects of a node into the state
//     (method calls on the tracked value, escapes, ...).
//   - exit observes each function-exit state set (an explicit return or
//     falling off the end), where leak-style obligations are checked.
type flowClient interface {
	stmt(s ast.Stmt, in int) (out int, done bool)
	scan(n ast.Node, in int) int
	exit(states int, pos token.Pos)
}

// flowExec interprets one function body for one flowClient. A state of 0
// means "path terminated" (return, panic); the engine stops propagating it.
type flowExec struct {
	client flowClient
}

// run interprets body from state in and checks the fall-off-the-end exit.
func (w *flowExec) run(body *ast.BlockStmt, in int) {
	out := w.execBlock(body, in)
	if out != 0 {
		w.client.exit(out, body.End())
	}
}

func (w *flowExec) execBlock(b *ast.BlockStmt, in int) int {
	if b == nil {
		return in
	}
	return w.execStmts(b.List, in)
}

func (w *flowExec) execStmts(list []ast.Stmt, in int) int {
	cur := in
	for _, s := range list {
		cur = w.execStmt(s, cur)
		if cur == 0 {
			return 0 // path terminated
		}
	}
	return cur
}

func (w *flowExec) execStmt(s ast.Stmt, in int) int {
	if out, done := w.client.stmt(s, in); done {
		return out
	}
	switch st := s.(type) {
	case *ast.ReturnStmt:
		in = w.client.scan(st, in)
		w.client.exit(in, st.Pos())
		return 0
	case *ast.ExprStmt:
		if isPanicCall(st.X) {
			w.client.scan(st, in)
			return 0
		}
		return w.client.scan(st, in)
	case *ast.BlockStmt:
		return w.execBlock(st, in)
	case *ast.IfStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
			if in == 0 {
				return 0
			}
		}
		in = w.scanExpr(st.Cond, in)
		thenOut := w.execBlock(st.Body, in)
		elseOut := in
		if st.Else != nil {
			elseOut = w.execStmt(st.Else, in)
		}
		return thenOut | elseOut
	case *ast.ForStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
			if in == 0 {
				return 0
			}
		}
		if st.Cond != nil {
			in = w.scanExpr(st.Cond, in)
		}
		return w.execLoop(in, func(s int) int {
			s = w.execBlock(st.Body, s)
			if s != 0 && st.Post != nil {
				s = w.execStmt(st.Post, s)
			}
			return s
		}, st.Cond == nil)
	case *ast.RangeStmt:
		in = w.scanExpr(st.X, in)
		return w.execLoop(in, func(s int) int {
			return w.execBlock(st.Body, s)
		}, false)
	case *ast.SwitchStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
			if in == 0 {
				return 0
			}
		}
		if st.Tag != nil {
			in = w.scanExpr(st.Tag, in)
		}
		return w.execCases(st.Body, in)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
			if in == 0 {
				return 0
			}
		}
		in = w.client.scan(st.Assign, in)
		return w.execCases(st.Body, in)
	case *ast.SelectStmt:
		return w.execCases(st.Body, in)
	case *ast.GoStmt:
		return w.client.scan(st, in)
	default:
		return w.client.scan(s, in)
	}
}

// execLoop runs a loop body to a two-iteration fixpoint over the state
// set. infinite marks `for {}` loops, whose only fallthrough is a break —
// approximated here by the union of entry and body states, which is an
// over-approximation of every break point.
func (w *flowExec) execLoop(in int, body func(int) int, infinite bool) int {
	s1 := body(in)
	s2 := body(in | s1)
	out := in | s1 | s2
	if infinite && s1 == 0 && s2 == 0 {
		return 0
	}
	return out
}

// execCases unions the outcomes of each case clause of a switch/select
// body; a missing default keeps the entry state as a possible outcome.
func (w *flowExec) execCases(body *ast.BlockStmt, in int) int {
	out := 0
	hasDefault := false
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				in = w.scanExpr(e, in)
			}
			out |= w.execStmts(cc.Body, in)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				in = w.execStmt(cc.Comm, in)
			}
			out |= w.execStmts(cc.Body, in)
		}
	}
	if !hasDefault {
		out |= in
	}
	return out
}

func (w *flowExec) scanExpr(e ast.Expr, in int) int {
	if e == nil {
		return in
	}
	return w.client.scan(e, in)
}

// hasJumps reports whether a body uses goto or labeled branches, which the
// structural interpreter does not model; callers skip such functions.
func hasJumps(body *ast.BlockStmt) bool {
	jumps := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.LabeledStmt:
			jumps = true
		case *ast.BranchStmt:
			if s.Label != nil || s.Tok == token.GOTO {
				jumps = true
			}
		}
		return !jumps
	})
	return jumps
}
