package experiments

import (
	"fmt"

	"kite/internal/apps"
	"kite/internal/core"
	"kite/internal/metrics"
	"kite/internal/sim"
	"kite/internal/workload"
)

// Fig6Nuttcp reproduces Figure 6: nuttcp UDP throughput (4 MB window /
// 8 KB buffers) through both network domains. The paper reports ~7 Gbps
// with <1.5% loss on both.
func Fig6Nuttcp(s Scale) *Result {
	res := newResult("FIG6", "nuttcp UDP throughput (8KB datagrams)")
	run := func(kind core.DriverKind) workload.NuttcpResult {
		rig := mustNetRig(kind, 0xF16)
		var out workload.NuttcpResult
		got := false
		workload.Nuttcp(rig.Client, rig.Guest.Stack, 7.05, 8192, s.NuttcpDur,
			func(r workload.NuttcpResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 30_000_000)
		return out
	}
	linux, kite := bothKinds(s, run)
	res.AddPair("throughput", linux.AchievedGbps, kite.AchievedGbps, "Gbps")
	res.AddPair("loss", linux.LossPct, kite.LossPct, "%")
	res.Notes = append(res.Notes,
		fmt.Sprintf("paper: ~7 Gbps / <1.5%% loss both; measured %.2f vs %.2f Gbps, %.2f%% vs %.2f%% loss",
			linux.AchievedGbps, kite.AchievedGbps, linux.LossPct, kite.LossPct))
	return res
}

// Fig7Latency reproduces Figure 7: ping, Netperf, and memtier latencies.
// Paper: ping 0.51 vs 0.31 ms, netperf 0.18 vs 0.10 ms, memtier 0.16 vs
// 0.15 ms (Linux vs Kite) — Kite at or below Linux everywhere.
func Fig7Latency(s Scale) *Result {
	res := newResult("FIG7", "network latency (ms)")
	type trio struct{ ping, netperf, memtier float64 }
	run := func(kind core.DriverKind, rep int) trio {
		rig := mustNetRig(kind, 0xF17+uint64(rep))
		var out trio
		stage := 0
		workload.Ping(rig.Client.Stack, rig.GuestIP, s.PingCount, 200*sim.Microsecond, 56,
			func(r workload.PingResult) {
				out.ping = r.AvgRTT.Millis()
				stage = 1
				if err := workload.EchoServer(rig.Guest.Stack, 12865); err != nil {
					panic(err)
				}
				workload.NetperfRR(rig.Client, rig.GuestIP, 12865, s.NetperfTxns,
					100*sim.Microsecond, func(r workload.NetperfResult) {
						out.netperf = r.AvgLatency.Millis()
						stage = 2
						if _, err := apps.NewKVServer(rig.Guest.Stack, 11211); err != nil {
							panic(err)
						}
						workload.Memtier(rig.Client, rig.GuestIP, 11211, s.MemtierOps, 8192, 2,
							func(r workload.MemtierResult) {
								out.memtier = r.AvgLatency.Millis()
								stage = 3
							})
					})
			})
		drive(rig.Testbed.System, func() bool { return stage == 3 }, 60_000_000)
		return out
	}
	var lp, ln, lm, kp, kn, km metrics.Series
	for rep := 0; rep < s.Reps; rep++ {
		rep := rep
		l, k := bothKinds(s, func(kind core.DriverKind) trio { return run(kind, rep) })
		lp.Add(l.ping)
		ln.Add(l.netperf)
		lm.Add(l.memtier)
		kp.Add(k.ping)
		kn.Add(k.netperf)
		km.Add(k.memtier)
	}
	res.AddPair("ping RTT", lp.Mean(), kp.Mean(), "ms")
	res.AddPair("netperf RR", ln.Mean(), kn.Mean(), "ms")
	res.AddPair("memtier", lm.Mean(), km.Mean(), "ms")
	res.Notes = append(res.Notes,
		fmt.Sprintf("paper: ping 0.51/0.31, netperf 0.18/0.10, memtier 0.16/0.15 (linux/kite ms)"),
		fmt.Sprintf("memtier RSD: linux %.4f%%, kite %.4f%% (Table 4 reports 0.0167/0.0496)",
			lm.RSD(), km.RSD()))
	return res
}

// Fig8Apache reproduces Figure 8: ApacheBench with file sizes 512 B–1 MB
// (8a) and the detailed 512 KB row (8b). The paper shows near parity with
// Kite marginally faster at 512 KB.
func Fig8Apache(s Scale) *Result {
	res := &Result{ID: "FIG8", Title: "Apache throughput by file size",
		Table: metrics.NewTable("FIG8: ApacheBench (keep-alive, 16 concurrent connections)",
			"file size", "linux MB/s", "kite MB/s", "linux req/s", "kite req/s")}
	sizes := []int{512, 4 << 10, 32 << 10, 128 << 10, 512 << 10, 1 << 20}
	run := func(kind core.DriverKind, size int, rep int) workload.ABResult {
		rig := mustNetRig(kind, 0xF18+uint64(rep))
		srv, err := apps.NewHTTPServer(rig.Guest.Stack, 80)
		if err != nil {
			panic(err)
		}
		srv.AddRandomFile("/f", size, uint64(size))
		var out workload.ABResult
		got := false
		conc := 16
		workload.ApacheBench(rig.Client, rig.GuestIP, 80, "/f", s.ABRequests, conc,
			func(r workload.ABResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 60_000_000)
		return out
	}
	for _, size := range sizes {
		size := size
		l, k := bothKinds(s, func(kind core.DriverKind) workload.ABResult { return run(kind, size, 0) })
		res.Pairs = append(res.Pairs, Pair{
			Metric: fmt.Sprintf("tput@%s", sizeName(size)),
			Linux:  l.ThroughputMBps, Kite: k.ThroughputMBps, Unit: "MB/s",
		})
		res.Table.AddRow(sizeName(size),
			metrics.FormatFloat(l.ThroughputMBps), metrics.FormatFloat(k.ThroughputMBps),
			metrics.FormatFloat(l.RequestsPerSec), metrics.FormatFloat(k.RequestsPerSec))
	}
	// Fig 8b detail at 512 KB with RSD reps.
	var lt, kt metrics.Series
	for rep := 0; rep < s.Reps; rep++ {
		rep := rep
		l, k := bothKinds(s, func(kind core.DriverKind) workload.ABResult { return run(kind, 512<<10, rep) })
		lt.Add(l.ThroughputMBps)
		kt.Add(k.ThroughputMBps)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("fig 8b @512KB: linux %.1f MB/s kite %.1f MB/s (paper: kite marginally faster)",
			lt.Mean(), kt.Mean()),
		fmt.Sprintf("apache RSD: linux %.4f%% kite %.4f%% (Table 4: 1.20/1.44)", lt.RSD(), kt.RSD()))
	res.Pairs = append(res.Pairs, Pair{Metric: "tput@512KB-rsd",
		Linux: lt.Mean(), Kite: kt.Mean(), Unit: "MB/s"})
	return res
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Fig9Redis reproduces Figure 9: redis-benchmark SET/GET ops/s in pipeline
// mode (-P 1000) for thread counts 5..20. The paper shows near-identical
// rates for both domains.
func Fig9Redis(s Scale) *Result {
	res := &Result{ID: "FIG9", Title: "Redis pipelined SET/GET throughput",
		Table: metrics.NewTable("FIG9: redis-benchmark (pipeline=500)",
			"threads", "linux SET/s", "kite SET/s", "linux GET/s", "kite GET/s")}
	threads := []int{5, 10, 15, 20}
	run := func(kind core.DriverKind, th int, op string) workload.RedisBenchResult {
		rig := mustNetRig(kind, 0xF19)
		if _, err := apps.NewKVServer(rig.Guest.Stack, 6379); err != nil {
			panic(err)
		}
		var out workload.RedisBenchResult
		got := false
		workload.RedisBench(rig.Client, rig.GuestIP, 6379, op, th, 500, s.RedisOps, 128,
			func(r workload.RedisBenchResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 60_000_000)
		return out
	}
	for _, th := range threads {
		th := th
		ls, ks := bothKinds(s, func(kind core.DriverKind) workload.RedisBenchResult { return run(kind, th, "SET") })
		lg, kg := bothKinds(s, func(kind core.DriverKind) workload.RedisBenchResult { return run(kind, th, "GET") })
		res.Pairs = append(res.Pairs,
			Pair{Metric: fmt.Sprintf("SET@%d", th), Linux: ls.OpsPerSec, Kite: ks.OpsPerSec, Unit: "ops/s"},
			Pair{Metric: fmt.Sprintf("GET@%d", th), Linux: lg.OpsPerSec, Kite: kg.OpsPerSec, Unit: "ops/s"})
		res.Table.AddRow(fmt.Sprintf("%d", th),
			metrics.FormatFloat(ls.OpsPerSec), metrics.FormatFloat(ks.OpsPerSec),
			metrics.FormatFloat(lg.OpsPerSec), metrics.FormatFloat(kg.OpsPerSec))
	}
	res.Notes = append(res.Notes, "paper: ~100-150k ops/s, parity between domains")
	return res
}

// Fig10MySQL reproduces Figure 10: sysbench read-only OLTP against MySQL
// over the network path, threads 5..60 (10a: throughput; 10b: DomU CPU
// utilization). The paper shows almost no difference between domains.
func Fig10MySQL(s Scale) *Result {
	res := &Result{ID: "FIG10", Title: "MySQL OLTP over the network domain",
		Table: metrics.NewTable("FIG10: sysbench oltp_read_only",
			"threads", "linux qps", "kite qps", "linux cpu%", "kite cpu%")}
	threads := []int{5, 10, 20, 40, 60}
	run := func(kind core.DriverKind, th int, rep int) workload.OLTPResult {
		rig := mustNetRig(kind, 0xF1A+uint64(rep))
		db, err := apps.NewSQLDB(rig.Testbed.System.Eng, rig.Guest.Dom.CPUs,
			apps.SQLConfig{Tables: 10, Rows: 1_000_000})
		if err != nil {
			panic(err)
		}
		if _, err := apps.NewSQLServer(rig.Guest.Stack, 3306, db); err != nil {
			panic(err)
		}
		var out workload.OLTPResult
		got := false
		workload.OLTPNetwork(rig.Client, rig.GuestIP, 3306, rig.Guest.Dom.CPUs,
			10, 1_000_000, th, s.OLTPDur, func(r workload.OLTPResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 80_000_000)
		return out
	}
	for _, th := range threads {
		th := th
		l, k := bothKinds(s, func(kind core.DriverKind) workload.OLTPResult { return run(kind, th, 0) })
		res.Pairs = append(res.Pairs,
			Pair{Metric: fmt.Sprintf("qps@%d", th), Linux: l.QPS, Kite: k.QPS, Unit: "q/s"},
			Pair{Metric: fmt.Sprintf("cpu@%d", th), Linux: 100 * l.GuestCPUUtil, Kite: 100 * k.GuestCPUUtil, Unit: "%"})
		res.Table.AddRow(fmt.Sprintf("%d", th),
			metrics.FormatFloat(l.QPS), metrics.FormatFloat(k.QPS),
			metrics.FormatFloat(100*l.GuestCPUUtil), metrics.FormatFloat(100*k.GuestCPUUtil))
	}
	// RSD reps at 20 threads (Table 4's sysbench row).
	var lq, kq metrics.Series
	for rep := 0; rep < s.Reps; rep++ {
		rep := rep
		l, k := bothKinds(s, func(kind core.DriverKind) workload.OLTPResult { return run(kind, 20, rep) })
		lq.Add(l.QPS)
		kq.Add(k.QPS)
	}
	res.Notes = append(res.Notes,
		"paper: throughput rises with threads then saturates; curves overlap; CPU similar",
		fmt.Sprintf("sysbench RSD: linux %.4f%% kite %.4f%%", lq.RSD(), kq.RSD()))
	return res
}

// DHCPLatency reproduces §5.5: perfdhcp against the unikernelized OpenDHCP
// daemon VM. Paper: Discover-Offer ~0.78 ms, Request-Ack ~0.7 ms.
func DHCPLatency(s Scale) *Result {
	res := newResult("SEC5.5", "DHCP daemon VM latency")
	run := func(kind core.DriverKind) workload.PerfDHCPResult {
		tb := core.NewTestbed(0xD4C9)
		nd, err := tb.System.CreateNetworkDomain(core.NetworkDomainConfig{Kind: kind, NIC: tb.ServerNIC})
		if err != nil {
			panic(err)
		}
		vm, err := tb.System.CreateDHCPDaemonVM(nd, mkIP(10, 0, 0, 53), mkIP(10, 0, 0, 100), 250)
		if err != nil {
			panic(err)
		}
		drive(tb.System, vm.Guest.Ready, 500000)
		var out workload.PerfDHCPResult
		got := false
		workload.PerfDHCP(tb.Client, s.PingCount, func(r workload.PerfDHCPResult) { out = r; got = true })
		drive(tb.System, func() bool { return got }, 10_000_000)
		return out
	}
	// The paper's comparison is rumprun-vs-Linux hosting of the daemon; we
	// compare the daemon VM behind Kite and Linux network domains.
	linux, kite := bothKinds(s, run)
	res.AddPair("discover-offer", linux.AvgDiscoverOfer.Millis(), kite.AvgDiscoverOfer.Millis(), "ms")
	res.AddPair("request-ack", linux.AvgRequestAck.Millis(), kite.AvgRequestAck.Millis(), "ms")
	res.Notes = append(res.Notes, "paper: ~0.78 ms D-O, ~0.7 ms R-A, rumprun ≈ Linux")
	return res
}

func mkIP(a, b, c, d byte) [4]byte { return [4]byte{a, b, c, d} }
