// Package framepool provides a deterministic free-list pool of fixed-capacity
// frame buffers with explicit reference counting.
//
// Every simulation owns exactly one Pool, created alongside its core.System.
// A Buf is obtained with Get, handed between pipeline stages under the
// ownership rules documented in DESIGN.md §7 (one reference transfers at
// every hand-off, including failure paths), and returned with Release. The
// pool keeps strict leak accounting: Outstanding() must be zero at
// simulation teardown, and tests assert exactly that.
//
// sync.Pool was deliberately rejected: it is per-P, drains on GC, and hands
// buffers back in a scheduler-dependent order, so two runs of the same
// experiment could observe different buffer identities. This pool is a plain
// LIFO slice owned by a single simulation goroutine, which keeps kitebench
// output byte-identical for any -parallel worker count.
package framepool

import (
	"sync/atomic"

	"kite/internal/metrics"
	"kite/internal/sim"
)

const (
	// Headroom is the spare capacity before the payload start, sized so a
	// transport payload can have Ethernet+IPv4+L4 headers prepended without
	// moving bytes (14+20+20 = 54, rounded up).
	Headroom = 64
	// MaxFrame is the largest frame the pipeline carries: one memory page,
	// matching netfront's "frame fits in a grant page" limit.
	MaxFrame = 4096
)

// Buf is a pooled frame buffer. The live payload is data[off:end]; Headroom
// bytes of prepend space precede off after a Reset. Buf is not safe for
// concurrent use — like everything else in a simulation, it is owned by the
// simulation's single goroutine.
type Buf struct {
	pool  *Pool
	arena *Arena // nil for buffers owned by the pool's shared free list
	// stageNext is the intrusive link while parked on a remote-release
	// stage: written by the releasing shard (stageRemote) and unspliced by
	// the barrier-side flush, never by the home shard mid-window.
	//
	//kite:shared
	stageNext *Buf
	off       int
	end       int
	refs      int
	data      [Headroom + MaxFrame]byte
}

// Bytes returns the live payload window.
func (b *Buf) Bytes() []byte { return b.data[b.off:b.end] }

// Len returns the payload length.
func (b *Buf) Len() int { return b.end - b.off }

// Reset empties the payload and restores full headroom.
func (b *Buf) Reset() {
	b.off = Headroom
	b.end = Headroom
}

// Extend grows the payload by n bytes at the tail and returns the newly
// exposed window for the caller to fill.
func (b *Buf) Extend(n int) []byte {
	if b.end+n > len(b.data) {
		panic("framepool: Extend past buffer capacity")
	}
	w := b.data[b.end : b.end+n]
	b.end += n
	return w
}

// Prepend grows the payload by n bytes at the head (consuming headroom) and
// returns the newly exposed window for the caller to fill.
func (b *Buf) Prepend(n int) []byte {
	if b.off-n < 0 {
		panic("framepool: Prepend past buffer headroom")
	}
	b.off -= n
	return b.data[b.off : b.off+n]
}

// Trim shortens the payload to length n (n must not exceed Len).
func (b *Buf) Trim(n int) {
	if n > b.Len() {
		panic("framepool: Trim beyond payload")
	}
	b.end = b.off + n
}

// Refs returns the current reference count. Owners that mutate a frame in
// place (e.g. NAT header rewriting) must check for sharing first: a flooded
// frame carries one reference per egress port over the same bytes.
func (b *Buf) Refs() int { return b.refs }

// Retain adds a reference and returns b for chaining. Each extra reference
// requires its own Release.
//
//kite:hotpath
func (b *Buf) Retain() *Buf {
	b.refs++
	return b
}

// Release drops one reference; at zero the buffer returns to its pool.
// Releasing below zero panics — it means an ownership rule was violated.
// In a sharded simulation, use ReleaseOn wherever the last reference may be
// dropped on a shard other than the free list's home.
//
//kite:hotpath
func (b *Buf) Release() {
	b.refs--
	if b.refs > 0 {
		return
	}
	if b.refs < 0 {
		panic("framepool: double release")
	}
	b.recycle()
}

// ReleaseOn drops one reference from code running on shard engine local.
// If the final reference dies away from the free list's home shard, the
// buffer parks on the releasing shard's stage for that free list and rides
// home in the stage's single cross-shard release post — the barrier recycles
// every buffer a shard freed during the window in one merge visit instead of
// one post per buffer. Free lists are only ever touched by their home shard
// (or the barrier, where no shard goroutine is live).
//
//kite:hotpath
func (b *Buf) ReleaseOn(local *sim.Engine) {
	b.refs--
	if b.refs > 0 {
		return
	}
	if b.refs < 0 {
		panic("framepool: double release")
	}
	home := b.home()
	if home == nil || home == local {
		b.recycle()
		return
	}
	var stages []releaseStage
	if b.arena != nil {
		stages = b.arena.stages
	} else {
		stages = b.pool.stages
	}
	if stages != nil && local.Cluster() != nil {
		stageRemote(stages, local, home, b)
		return
	}
	local.Post(home, local.Cluster().Lookahead(), sim.PriRelease, recycleArg, b) //kite:alloc-ok pointer boxing does not allocate
}

// recycleArg is the long-lived post target for cross-shard recycling.
var recycleArg = func(a any) { a.(*Buf).recycle() }

// releaseStage batches one releasing shard's remote frees for one free list
// into a single cross-shard post per window. Staged buffers chain through
// their intrusive stageNext links, so steady-state batching allocates
// nothing; the stage's flush runs as a PriRelease at the barrier of the
// window that staged it, draining the chain into the home free list in one
// visit. Each stage is touched only by its releasing shard mid-window and by
// the barrier, so no lock is needed.
//
//kite:shared
type releaseStage struct {
	head  *Buf
	armed bool
	flush func(any)
}

// newStages sizes the per-releasing-shard stage table for a free list homed
// on a cluster shard (nil when the home engine is standalone).
func newStages(home *sim.Engine) []releaseStage {
	c := home.Cluster()
	if c == nil {
		return nil
	}
	return make([]releaseStage, c.Shards())
}

// stageRemote parks b on the releasing shard's stage and arms the stage's
// once-per-window flush post. Linking b onto the magazine chain consumes
// the caller's reference — staging the same buffer twice would fold the
// chain onto itself, which is why the call sites are ringlink-checked.
//
//kite:hotpath
//kite:ringlink link 3
//kite:shardok stage [local.ShardID()] is owned by the releasing shard mid-window; the flush closure runs at the barrier with every shard goroutine parked
func stageRemote(stages []releaseStage, local, home *sim.Engine, b *Buf) {
	st := &stages[local.ShardID()]
	b.stageNext = st.head
	st.head = b
	if st.armed {
		return
	}
	st.armed = true
	if st.flush == nil {
		st.flush = func(any) { //kite:alloc-ok one closure per (free list, releasing shard), cached forever
			// Every buffer on one stage belongs to the same free list, so
			// the chain splices with one counter update per batch instead of
			// three atomic adds per buffer — the bulk path must stay cheaper
			// than the per-frame recycle an unsharded run pays inline.
			var n int64
			var p *Pool
			for b := st.head; b != nil; {
				next := b.stageNext
				b.stageNext = nil
				if b.arena != nil {
					b.arena.free = append(b.arena.free, b)
				} else {
					b.pool.free = append(b.pool.free, b)
				}
				p = b.pool
				n++
				b = next
			}
			st.head = nil
			st.armed = false
			p.outstanding.Add(-n)
			p.recycled.Add(uint64(n))
			metrics.FramePoolRecycles.Add(uint64(n))
		}
	}
	local.Post(home, local.Cluster().Lookahead(), sim.PriRelease, st.flush, nil)
}

// home returns the engine owning the buffer's destination free list (nil
// when unpinned).
func (b *Buf) home() *sim.Engine {
	if b.arena != nil {
		return b.arena.home
	}
	return b.pool.home
}

// recycle parks the buffer on its free list. It must run on the list's
// home shard (or in an unsharded simulation).
func (b *Buf) recycle() {
	p := b.pool
	if b.arena != nil {
		b.arena.free = append(b.arena.free, b)
	} else {
		p.free = append(p.free, b)
	}
	p.outstanding.Add(-1)
	p.recycled.Add(1)
	metrics.FramePoolRecycles.Add(1)
}

// Pool is a per-simulation free list of Bufs. Counters are atomic because
// in a sharded simulation arenas on different shards draw and recycle
// concurrently within a window; the free list itself is single-shard (its
// home), which ReleaseOn enforces by routing remote releases back.
type Pool struct {
	free        []*Buf
	home        *sim.Engine    // shard owning the shared free list; nil = unpinned
	stages      []releaseStage // per-releasing-shard remote free batches
	outstanding atomic.Int64
	gets        atomic.Uint64
	recycled    atomic.Uint64
}

// New returns an empty pool; buffers are allocated lazily on first Get and
// recycled forever after.
func New() *Pool {
	return &Pool{}
}

// Get returns an empty Buf (full headroom, zero length) holding one
// reference owned by the caller.
//
//kite:hotpath
func (p *Pool) Get() *Buf {
	var b *Buf
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		b = &Buf{pool: p} //kite:alloc-ok pool growth on free-list miss; steady state recycles
	}
	b.refs = 1
	b.Reset()
	p.gets.Add(1)
	p.outstanding.Add(1)
	metrics.FramePoolGets.Add(1)
	return b
}

// SetHome pins the pool's shared free list to a shard engine. Buffers whose
// last reference dies elsewhere are staged and posted back rather than
// recycled in place.
func (p *Pool) SetHome(e *sim.Engine) {
	p.home = e
	p.stages = newStages(e)
}

// Prealloc parks n fresh buffers on the free list up front. Sharded
// simulations stage remote releases and post them home a lookahead
// window later, so the free list can be transiently short of the true
// working set; pre-sizing absorbs those window-crossing misses instead
// of letting the data path allocate through them.
func (p *Pool) Prealloc(n int) {
	for i := 0; i < n; i++ {
		p.free = append(p.free, &Buf{pool: p})
	}
}

// From returns a Buf whose payload is a copy of pkt. Convenience for tests
// and cold paths (ARP, control traffic).
//
//kite:hotpath
func (p *Pool) From(pkt []byte) *Buf {
	b := p.Get()
	copy(b.Extend(len(pkt)), pkt)
	return b
}

// Outstanding returns the number of buffers currently held by callers. It
// must be zero at simulation teardown.
func (p *Pool) Outstanding() int { return int(p.outstanding.Load()) }

// Gets returns the total number of buffers handed out.
func (p *Pool) Gets() uint64 { return p.gets.Load() }

// Recycled returns the total number of buffers returned to the free list.
func (p *Pool) Recycled() uint64 { return p.recycled.Load() }

// Arena is a per-queue partition of a Pool: it has its own LIFO free list,
// so multi-queue workers recycling frames never touch a shared list, but
// every counter (gets, recycles, outstanding leak accounting) still lands
// on the parent pool. A buffer first obtained from an Arena belongs to that
// arena for life — Release returns it there no matter which pipeline stage
// drops the last reference — so queue working sets stay disjoint and
// per-queue recycling order stays deterministic regardless of how queues
// interleave.
type Arena struct {
	parent *Pool
	home   *sim.Engine    // shard owning this arena's free list; nil = unpinned
	stages []releaseStage // per-releasing-shard remote free batches
	free   []*Buf
}

// NewArena returns an empty partition of p. Arenas allocate fresh buffers
// rather than stealing from the parent's shared free list, so creating one
// never perturbs buffer identities elsewhere in the simulation.
func (p *Pool) NewArena() *Arena { return &Arena{parent: p} }

// Get returns an empty Buf owned by the caller, drawn from (and destined to
// return to) this arena.
//
//kite:hotpath
func (a *Arena) Get() *Buf {
	var b *Buf
	if n := len(a.free); n > 0 {
		b = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		b = &Buf{pool: a.parent, arena: a} //kite:alloc-ok pool growth on free-list miss; steady state recycles
	}
	b.refs = 1
	b.Reset()
	a.parent.gets.Add(1)
	a.parent.outstanding.Add(1)
	metrics.FramePoolGets.Add(1)
	return b
}

// SetHome pins this arena's free list to a shard engine (see Pool.SetHome).
func (a *Arena) SetHome(e *sim.Engine) {
	a.home = e
	a.stages = newStages(e)
}

// Prealloc parks n fresh buffers on this arena's free list up front
// (see Pool.Prealloc). Preallocated buffers count toward nothing until
// first handed out.
func (a *Arena) Prealloc(n int) {
	for i := 0; i < n; i++ {
		a.free = append(a.free, &Buf{pool: a.parent, arena: a})
	}
}

// Free returns the number of buffers parked in this arena's free list.
func (a *Arena) Free() int { return len(a.free) }
