package experiments

import (
	"fmt"

	"kite/internal/core"
	"kite/internal/metrics"
	"kite/internal/sim"
	"kite/internal/workload"
)

// AblationResult reports one design-choice toggle.
type AblationResult struct {
	Name     string
	On, Off  float64
	Unit     string
	AuxOn    uint64
	AuxOff   uint64
	AuxLabel string
	Table    *metrics.Table
}

func (a *AblationResult) render(title string) {
	a.Table = metrics.NewTable(title, "setting", a.Unit, a.AuxLabel)
	a.Table.AddRow("enabled", metrics.FormatFloat(a.On), fmt.Sprintf("%d", a.AuxOn))
	a.Table.AddRow("disabled", metrics.FormatFloat(a.Off), fmt.Sprintf("%d", a.AuxOff))
}

// ddThroughput runs a fixed sequential write workload on a tuned rig and
// returns throughput plus hypercall/backend counters.
func ddThroughput(knobs core.TuningKnobs, bytes int64, bs int) (mbps float64, grantMaps, deviceOps, ringReqs uint64) {
	rig := mustStorRig(core.StorageRigConfig{
		Kind: core.KindKite, Seed: 0xAB1, DiskBytes: 4 << 30, Tuning: &knobs,
	})
	rig.Testbed.System.HV.ResetStats()
	var out workload.DDResult
	got := false
	workload.DDWrite(rig.Guest.Disk, bytes, bs, func(r workload.DDResult) { out = r; got = true })
	drive(rig.Testbed.System, func() bool { return got }, 60_000_000)
	inst := rig.SD.Driver.Instances()[0]
	return out.MBps, rig.Testbed.System.HV.Stats().GrantMaps,
		inst.Stats().DeviceOps, inst.Stats().RingRequests
}

// AblationPersistentGrants measures §3.3's persistent grant references:
// with the cache on, steady-state map hypercalls all but disappear.
func AblationPersistentGrants(s Scale) *AblationResult {
	on, mapsOn, _, _ := ddThroughput(core.TuningKnobs{Persistent: true, Indirect: true, Batch: true}, s.DDBytes, 128<<10)
	off, mapsOff, _, _ := ddThroughput(core.TuningKnobs{Persistent: false, Indirect: true, Batch: true}, s.DDBytes, 128<<10)
	a := &AblationResult{Name: "persistent-grants", On: on, Off: off, Unit: "MB/s",
		AuxOn: mapsOn, AuxOff: mapsOff, AuxLabel: "grant maps"}
	a.render("A-PG: persistent grant references")
	return a
}

// AblationIndirectSegments measures §3.3's indirect segments: without
// them, large I/O splits into 44 KiB requests.
func AblationIndirectSegments(s Scale) *AblationResult {
	on, _, _, reqsOn := ddThroughput(core.TuningKnobs{Persistent: true, Indirect: true, Batch: true}, s.DDBytes, 128<<10)
	off, _, _, reqsOff := ddThroughput(core.TuningKnobs{Persistent: true, Indirect: false, Batch: true}, s.DDBytes, 128<<10)
	a := &AblationResult{Name: "indirect-segments", On: on, Off: off, Unit: "MB/s",
		AuxOn: reqsOn, AuxOff: reqsOff, AuxLabel: "ring requests"}
	a.render("A-IND: indirect segment requests")
	return a
}

// AblationBatching measures §3.3's consecutive-segment batching: merged
// requests mean fewer device operations.
func AblationBatching(s Scale) *AblationResult {
	on, _, opsOn, _ := ddThroughput(core.TuningKnobs{Persistent: true, Indirect: false, Batch: true}, s.DDBytes, 176<<10)
	off, _, opsOff, _ := ddThroughput(core.TuningKnobs{Persistent: true, Indirect: false, Batch: false}, s.DDBytes, 176<<10)
	a := &AblationResult{Name: "request-batching", On: on, Off: off, Unit: "MB/s",
		AuxOn: opsOn, AuxOff: opsOff, AuxLabel: "device ops"}
	a.render("A-BATCH: consecutive request batching")
	return a
}

// AblationThreadedModel measures §3.2's dedicated pusher/soft_start
// threads against in-handler processing: under bidirectional load the
// threaded model keeps ping latency low while the in-handler variant
// blocks notifications behind data processing.
func AblationThreadedModel(s Scale) *AblationResult {
	measure := func(inHandler bool) (avgMs float64, wakes uint64) {
		tb := core.NewTestbed(0xAB2)
		nd, err := tb.System.CreateNetworkDomain(core.NetworkDomainConfig{
			Kind: core.KindKite, NIC: tb.ServerNIC,
		})
		if err != nil {
			panic(err)
		}
		guest, err := tb.System.CreateGuest(core.GuestConfig{
			Name: "domU", IP: tb.GuestIP, Net: nd, Seed: 7,
		})
		if err != nil {
			panic(err)
		}
		drive(tb.System, guest.Ready, 500000)
		// Retune the connected VIF (the knob only affects the data path).
		vifs := nd.Driver.VIFs()
		if len(vifs) != 1 {
			panic("ablation: expected one vif")
		}
		vifs[0].SetInHandler(inHandler)

		// Background bulk UDP stream + foreground pings.
		var pingRes workload.PingResult
		stage := 0
		workload.Nuttcp(tb.Client, guest.Stack, 4.0, 8192, s.NuttcpDur, func(workload.NuttcpResult) { stage++ })
		workload.Ping(tb.Client.Stack, tb.GuestIP, s.PingCount, 300*sim.Microsecond, 56,
			func(r workload.PingResult) {
				pingRes = r
				stage++
			})
		drive(tb.System, func() bool { return stage == 2 }, 60_000_000)
		w, _ := vifs[0].PusherRuns()
		return pingRes.AvgRTT.Millis(), w
	}
	threadedMs, wakesOn := measure(false)
	inHandlerMs, wakesOff := measure(true)
	a := &AblationResult{Name: "threaded-model", On: threadedMs, Off: inHandlerMs, Unit: "ping ms under load",
		AuxOn: wakesOn, AuxOff: wakesOff, AuxLabel: "pusher wakes"}
	a.render("A-THR: dedicated pusher/soft_start threads")
	return a
}
