// DHCP example: the paper's daemon service VM (§5.5) — OpenDHCP running in
// a rumprun unikernel guest on the Kite network domain's bridge. A client
// machine performs full DORA exchanges and reports Discover-Offer and
// Request-Ack latencies (paper: ~0.78 ms and ~0.7 ms).
package main

import (
	"fmt"
	"log"

	"kite"
	"kite/internal/netpkt"
	"kite/internal/workload"
)

func main() {
	tb := kite.NewTestbed(4)
	nd, err := tb.System.CreateNetworkDomain(kite.NetworkDomainConfig{
		Kind: kite.KindKite, NIC: tb.ServerNIC,
	})
	if err != nil {
		log.Fatal(err)
	}
	vm, err := tb.System.CreateDHCPDaemonVM(nd,
		netpkt.IPv4(10, 0, 0, 53),  // daemon VM address
		netpkt.IPv4(10, 0, 0, 100), // lease pool start
		150)
	if err != nil {
		log.Fatal(err)
	}
	if !tb.System.RunReady(vm.Guest.Ready, 500000) {
		log.Fatal("daemon VM handshake did not complete")
	}
	fmt.Printf("daemon VM up: profile=%s image=%.1f MB boot=%v (vs %.0f MB / %v for a Linux daemon VM)\n",
		vm.Guest.Profile.Name,
		float64(vm.Guest.Profile.ImageBytes())/(1<<20),
		vm.Guest.Profile.BootTime(),
		float64(kite.UbuntuDriverDomain().KernelImageBytes())/(1<<20),
		kite.UbuntuDriverDomain().BootTime())

	got := false
	workload.PerfDHCP(tb.Client, 50, func(r workload.PerfDHCPResult) {
		fmt.Printf("perfdhcp: %d exchanges, Discover-Offer %.3f ms, Request-Ack %.3f ms\n",
			r.Exchanges, r.AvgDiscoverOfer.Millis(), r.AvgRequestAck.Millis())
		got = true
	})
	if !tb.System.RunReady(func() bool { return got }, 10_000_000) {
		log.Fatal("perfdhcp did not complete")
	}
	fmt.Printf("server leased %d addresses\n", vm.Server.Leases())
}
