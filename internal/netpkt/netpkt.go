// Package netpkt defines the wire formats used by the simulated network:
// Ethernet II frames, ARP, IPv4 (with fragmentation), ICMP echo, UDP, and
// a TCP subset. Packets are serialized to real bytes because frames cross
// the PV driver path through grant-copied pages, and end-to-end integrity
// of those bytes is part of what the tests verify.
package netpkt

import (
	"encoding/binary"
	"fmt"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String renders the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones MAC.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// XenMAC returns a MAC in the Xen OUI (00:16:3e) range, as the toolstack
// assigns to vifs.
func XenMAC(domid uint16, dev byte) MAC {
	return MAC{0x00, 0x16, 0x3e, byte(domid >> 8), byte(domid), dev}
}

// IP is an IPv4 address.
type IP [4]byte

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IPv4 returns an IP from four octets.
func IPv4(a, b, c, d byte) IP { return IP{a, b, c, d} }

// BroadcastIP is the limited broadcast address.
var BroadcastIP = IP{255, 255, 255, 255}

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// EthHeaderLen is the Ethernet II header size.
const EthHeaderLen = 14

// IPHeaderLen is our fixed (option-less) IPv4 header size.
const IPHeaderLen = 20

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// TCPHeaderLen is our fixed (option-less) TCP header size.
const TCPHeaderLen = 20

// ICMPHeaderLen is the ICMP echo header size.
const ICMPHeaderLen = 8

// MTU is the Ethernet payload limit used throughout the testbed.
const MTU = 1500

// Frame is a parsed Ethernet frame.
type Frame struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte
}

// Marshal serializes the frame.
func (f *Frame) Marshal() []byte {
	b := make([]byte, EthHeaderLen+len(f.Payload))
	copy(b[0:6], f.Dst[:])
	copy(b[6:12], f.Src[:])
	binary.BigEndian.PutUint16(b[12:14], f.EtherType)
	copy(b[14:], f.Payload)
	return b
}

// ParseFrame deserializes an Ethernet frame.
func ParseFrame(b []byte) (*Frame, error) {
	if len(b) < EthHeaderLen {
		return nil, fmt.Errorf("netpkt: frame too short (%d bytes)", len(b))
	}
	f := &Frame{EtherType: binary.BigEndian.Uint16(b[12:14])}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.Payload = b[14:]
	return f, nil
}

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ARP is an IPv4-over-Ethernet ARP packet.
type ARP struct {
	Op                   uint16 // 1 request, 2 reply
	SenderMAC, TargetMAC MAC
	SenderIP, TargetIP   IP
}

// ARP opcodes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// Marshal serializes the ARP body (without Ethernet header).
func (a *ARP) Marshal() []byte {
	b := make([]byte, 28)
	binary.BigEndian.PutUint16(b[0:2], 1)      // htype ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // ptype ipv4
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	copy(b[14:18], a.SenderIP[:])
	copy(b[18:24], a.TargetMAC[:])
	copy(b[24:28], a.TargetIP[:])
	return b
}

// ParseARP deserializes an ARP body.
func ParseARP(b []byte) (*ARP, error) {
	if len(b) < 28 {
		return nil, fmt.Errorf("netpkt: arp too short (%d bytes)", len(b))
	}
	a := &ARP{Op: binary.BigEndian.Uint16(b[6:8])}
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}

// IPv4Header is a parsed option-less IPv4 header.
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	Flags    uint8  // bit 0 = more fragments (we ignore DF)
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Proto    uint8
	Src, Dst IP
}

// MoreFragments flag bit.
const FlagMoreFragments = 1

// Marshal serializes the header followed by payload, computing checksum
// and total length.
func (h *IPv4Header) Marshal(payload []byte) []byte {
	h.TotalLen = uint16(IPHeaderLen + len(payload))
	b := make([]byte, IPHeaderLen+len(payload))
	b[0] = 0x45 // v4, ihl 5
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	ff := uint16(h.Flags&FlagMoreFragments)<<13 | (h.FragOff & 0x1fff)
	binary.BigEndian.PutUint16(b[6:8], ff)
	b[8] = h.TTL
	b[9] = h.Proto
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:IPHeaderLen]))
	copy(b[IPHeaderLen:], payload)
	return b
}

// ParseIPv4 deserializes an IPv4 packet, verifying the header checksum,
// and returns the header and payload.
func ParseIPv4(b []byte) (*IPv4Header, []byte, error) {
	if len(b) < IPHeaderLen {
		return nil, nil, fmt.Errorf("netpkt: ipv4 too short (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return nil, nil, fmt.Errorf("netpkt: not ipv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl != IPHeaderLen {
		return nil, nil, fmt.Errorf("netpkt: unsupported ihl %d", ihl)
	}
	if Checksum(b[:IPHeaderLen]) != 0 {
		return nil, nil, fmt.Errorf("netpkt: ipv4 header checksum mismatch")
	}
	h := &IPv4Header{
		TotalLen: binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		TTL:      b[8],
		Proto:    b[9],
	}
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) > len(b) {
		return nil, nil, fmt.Errorf("netpkt: ipv4 total length %d exceeds buffer %d", h.TotalLen, len(b))
	}
	return h, b[IPHeaderLen:h.TotalLen], nil
}

// UDPHeader is a parsed UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// Marshal serializes header + payload (checksum omitted, as permitted for
// IPv4 UDP).
func (u *UDPHeader) Marshal(payload []byte) []byte {
	u.Length = uint16(UDPHeaderLen + len(payload))
	b := make([]byte, UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	copy(b[8:], payload)
	return b
}

// ParseUDP deserializes a UDP datagram.
func ParseUDP(b []byte) (*UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, nil, fmt.Errorf("netpkt: udp too short (%d bytes)", len(b))
	}
	u := &UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Length:  binary.BigEndian.Uint16(b[4:6]),
	}
	if int(u.Length) > len(b) || u.Length < UDPHeaderLen {
		return nil, nil, fmt.Errorf("netpkt: udp length %d invalid for %d-byte buffer", u.Length, len(b))
	}
	return u, b[UDPHeaderLen:u.Length], nil
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeader is a parsed option-less TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// Marshal serializes header + payload.
func (t *TCPHeader) Marshal(payload []byte) []byte {
	b := make([]byte, TCPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	copy(b[TCPHeaderLen:], payload)
	return b
}

// ParseTCP deserializes a TCP segment.
func ParseTCP(b []byte) (*TCPHeader, []byte, error) {
	if len(b) < TCPHeaderLen {
		return nil, nil, fmt.Errorf("netpkt: tcp too short (%d bytes)", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return nil, nil, fmt.Errorf("netpkt: tcp data offset %d invalid", off)
	}
	t := &TCPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}
	return t, b[off:], nil
}

// ICMP echo types.
const (
	ICMPEchoRequest = 8
	ICMPEchoReply   = 0
)

// ICMPEcho is a parsed ICMP echo request/reply.
type ICMPEcho struct {
	Type    uint8
	ID, Seq uint16
}

// Marshal serializes the echo message with a valid checksum.
func (e *ICMPEcho) Marshal(payload []byte) []byte {
	b := make([]byte, ICMPHeaderLen+len(payload))
	b[0] = e.Type
	binary.BigEndian.PutUint16(b[4:6], e.ID)
	binary.BigEndian.PutUint16(b[6:8], e.Seq)
	copy(b[8:], payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// ParseICMPEcho deserializes and checksum-verifies an echo message.
func ParseICMPEcho(b []byte) (*ICMPEcho, []byte, error) {
	if len(b) < ICMPHeaderLen {
		return nil, nil, fmt.Errorf("netpkt: icmp too short (%d bytes)", len(b))
	}
	if Checksum(b) != 0 {
		return nil, nil, fmt.Errorf("netpkt: icmp checksum mismatch")
	}
	e := &ICMPEcho{
		Type: b[0],
		ID:   binary.BigEndian.Uint16(b[4:6]),
		Seq:  binary.BigEndian.Uint16(b[6:8]),
	}
	return e, b[8:], nil
}
