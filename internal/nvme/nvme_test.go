package nvme

import (
	"bytes"
	"testing"

	"kite/internal/sim"
)

func newDev(eng *sim.Engine) *Device {
	return New(eng, Default970EvoPlus(), "04:00.0")
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := newDev(eng)
	data := make([]byte, 8192)
	sim.NewRand(1).Bytes(data)
	var got []byte
	d.Write(1000, data, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		d.Read(1000, len(data), func(b []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = b
		})
	})
	eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	eng := sim.NewEngine()
	d := newDev(eng)
	var got []byte
	d.Read(5_000_000, 4096, func(b []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = b
	})
	eng.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten sector returned nonzero data")
		}
	}
}

func TestUnalignedRejected(t *testing.T) {
	eng := sim.NewEngine()
	d := newDev(eng)
	var err1, err2 error
	d.Read(0, 100, func(_ []byte, err error) { err1 = err })
	d.Write(-1, make([]byte, 512), func(err error) { err2 = err })
	eng.Run()
	if err1 == nil || err2 == nil {
		t.Fatal("invalid i/o accepted")
	}
}

func TestBeyondCapacityRejected(t *testing.T) {
	eng := sim.NewEngine()
	d := newDev(eng)
	var gotErr error
	d.Read(d.CapacitySectors()-1, 4096, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("read past capacity accepted")
	}
}

func TestLatencyModel(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Default970EvoPlus()
	d := New(eng, cfg, "04:00.0")
	var doneAt sim.Time
	d.Read(0, 4096, func([]byte, error) { doneAt = eng.Now() })
	eng.Run()
	// First command from sector 0 is non-sequential (lastEnd starts at 0 ==
	// sector 0, so it IS sequential): overhead + transfer + base latency.
	want := cfg.CmdOverhead + cfg.ReadLatency + sim.Time(4096*int64(sim.Second)/cfg.ReadBps)
	if doneAt != want {
		t.Fatalf("read completed at %v, want %v", doneAt, want)
	}
	// A jump to a far sector pays the random penalty on top.
	var randAt sim.Time
	start := eng.Now()
	d.Read(1_000_000, 4096, func([]byte, error) { randAt = eng.Now() - start })
	eng.Run()
	if randAt != want+cfg.RandomPenalty {
		t.Fatalf("random read took %v, want %v", randAt, want+cfg.RandomPenalty)
	}
}

func TestCommandLatencyOverlaps(t *testing.T) {
	// Eight queued 4 KiB reads overlap their base latencies; total time
	// must be far less than eight serialized commands.
	eng := sim.NewEngine()
	cfg := Default970EvoPlus()
	d := New(eng, cfg, "04:00.0")
	var last sim.Time
	for i := 0; i < 8; i++ {
		d.Read(int64(i*8), 4096, func([]byte, error) { last = eng.Now() })
	}
	eng.Run()
	serialized := 8 * (cfg.ReadLatency + sim.Time(4096*int64(sim.Second)/cfg.ReadBps))
	if last >= serialized/2 {
		t.Fatalf("queued reads took %v, want well under serialized %v", last, serialized)
	}
}

func TestSequentialBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Default970EvoPlus()
	d := New(eng, cfg, "04:00.0")
	const chunk = 1 << 20
	const chunks = 64
	var last sim.Time
	done := 0
	for i := 0; i < chunks; i++ {
		d.Read(int64(i*chunk/SectorSize), chunk, func([]byte, error) {
			done++
			last = eng.Now()
		})
	}
	eng.Run()
	if done != chunks {
		t.Fatalf("completed %d of %d", done, chunks)
	}
	gbps := float64(chunk*chunks) / last.Seconds() / 1e9
	// Pipelined transfers should approach but never exceed 3.5 GB/s.
	if gbps < 2.5 || gbps > 3.5 {
		t.Fatalf("sequential read = %.2f GB/s, want ~3.4", gbps)
	}
}

func TestFlushWaitsForInflight(t *testing.T) {
	eng := sim.NewEngine()
	d := newDev(eng)
	var writeDone, flushDone sim.Time
	d.Write(0, make([]byte, 1<<20), func(error) { writeDone = eng.Now() })
	d.Flush(func(error) { flushDone = eng.Now() })
	eng.Run()
	if flushDone <= writeDone {
		t.Fatal("flush completed before in-flight write")
	}
}

func TestStatsCount(t *testing.T) {
	eng := sim.NewEngine()
	d := newDev(eng)
	d.Write(0, make([]byte, 512), func(error) {})
	d.Read(0, 512, func([]byte, error) {})
	d.Flush(func(error) {})
	eng.Run()
	st := d.Stats()
	if st.WriteOps != 1 || st.ReadOps != 1 || st.FlushOps != 1 ||
		st.ReadBytes != 512 || st.WriteBytes != 512 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVecRoundTrip(t *testing.T) {
	// A scatter write followed by a gather read into differently shaped
	// segments must carry the same bytes as the flat path.
	eng := sim.NewEngine()
	d := newDev(eng)
	data := make([]byte, 12288)
	sim.NewRand(3).Bytes(data)
	out := make([]byte, len(data))
	done := 0
	d.WriteVec(64, [][]byte{data[:4096], data[4096:6144], data[6144:]}, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done++
		d.ReadVec(64, [][]byte{out[:512], out[512:8192], out[8192:]}, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done++
		})
	})
	eng.Run()
	if done != 2 || !bytes.Equal(out, data) {
		t.Fatal("vectored round trip mismatch")
	}
	st := d.Stats()
	if st.VecWrites != 1 || st.VecReads != 1 {
		t.Fatalf("vec ops = %d/%d, want 1/1", st.VecWrites, st.VecReads)
	}
}

func TestVecReadGathersAtCompletion(t *testing.T) {
	// ReadVec must fully overwrite recycled destination buffers: unwritten
	// regions read as zeros, not as the buffer's stale contents.
	eng := sim.NewEngine()
	d := newDev(eng)
	dst := bytes.Repeat([]byte{0xEE}, 4096)
	d.ReadVec(9_000_000, [][]byte{dst}, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	for _, b := range dst {
		if b != 0 {
			t.Fatal("stale destination bytes survived an unwritten-region read")
		}
	}
}

func TestVecRejectsBadRange(t *testing.T) {
	eng := sim.NewEngine()
	d := newDev(eng)
	var err1, err2 error
	d.ReadVec(d.CapacitySectors()-1, [][]byte{make([]byte, 4096)}, func(err error) { err1 = err })
	d.WriteVec(0, [][]byte{make([]byte, 100)}, func(err error) { err2 = err })
	eng.Run()
	if err1 == nil || err2 == nil {
		t.Fatal("invalid vectored i/o accepted")
	}
}

func TestReadAfterPartialWriteIntegrity(t *testing.T) {
	// Regression test for the scratch-block staging of partial-block
	// writes: consecutive partial writes into different fresh blocks must
	// not alias each other (a naive implementation sharing the scratch as
	// the store would), and the uncovered regions must read as zeros.
	eng := sim.NewEngine()
	d := newDev(eng)
	a := bytes.Repeat([]byte{0xAA}, 512)
	b := bytes.Repeat([]byte{0xBB}, 512)
	done := 0
	d.Write(1, a, func(error) { done++ })  // partial write, block 0
	d.Write(9, b, func(error) { done++ })  // partial write, block 1
	eng.Run()
	if done != 2 {
		t.Fatal("writes incomplete")
	}
	blk0 := d.PeekBytes(0, 4096)
	blk1 := d.PeekBytes(8, 4096)
	if !bytes.Equal(blk0[512:1024], a) || !bytes.Equal(blk1[512:1024], b) {
		t.Fatal("partial writes corrupted each other")
	}
	for i, v := range blk0 {
		if (i < 512 || i >= 1024) && v != 0 {
			t.Fatalf("block 0 byte %d = %#x, want 0", i, v)
		}
	}
	// A later partial write to block 0 must preserve the first run.
	c := bytes.Repeat([]byte{0xCC}, 512)
	d.Write(3, c, func(error) { done++ })
	eng.Run()
	blk0 = d.PeekBytes(0, 4096)
	if !bytes.Equal(blk0[512:1024], a) || !bytes.Equal(blk0[1536:2048], c) {
		t.Fatal("partial overwrite lost earlier data")
	}
}

func TestCrossBlockBoundaryData(t *testing.T) {
	// Writes not aligned to the 4 KiB sparse-store blocks must still read
	// back correctly.
	eng := sim.NewEngine()
	d := newDev(eng)
	data := make([]byte, 3*512)
	sim.NewRand(9).Bytes(data)
	var got []byte
	d.Write(7, data, func(error) { // sector 7: straddles block 0/1 boundary
		d.Read(7, len(data), func(b []byte, err error) { got = b })
	})
	eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("cross-boundary write corrupted")
	}
}
