// Command benchjson converts `go test -bench` output on stdin into a small
// JSON document on stdout, so `make bench` can snapshot benchmark numbers
// (BENCH_net.json) that tooling and PR descriptions can diff.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name            string  `json:"name"`
	Iterations      int64   `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	FramesPerSec    float64 `json:"frames_per_sec,omitempty"`
	BytesPerSec     float64 `json:"bytes_per_sec,omitempty"`
	SimFramesPerSec float64 `json:"sim_frames_per_sec,omitempty"`
	SimBytesPerSec  float64 `json:"sim_bytes_per_sec,omitempty"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

// benchName strips the trailing -N GOMAXPROCS suffix go test appends, and
// only that: sub-benchmark names (Benchmark/queues=4-8) may themselves
// contain dashes, so cut at the LAST dash and only when digits follow.
func benchName(field string) string {
	if i := strings.LastIndex(field, "-"); i > 0 {
		if _, err := strconv.Atoi(field[i+1:]); err == nil {
			return field[:i]
		}
	}
	return field
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		r := result{Name: benchName(fields[0])}
		r.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "frames/sec":
				r.FramesPerSec = v
			case "bytes/sec":
				r.BytesPerSec = v
			case "simframes/sec":
				r.SimFramesPerSec = v
			case "simbytes/sec":
				r.SimBytesPerSec = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
