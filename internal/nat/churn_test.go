package nat

import (
	"testing"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// churnIP returns the i-th synthetic tenant address, clear of the fixed
// guestIP/remoteIP used elsewhere in the package.
func churnIP(i int) netpkt.IP {
	return netpkt.IPv4(10, 1, byte(i>>8), byte(i))
}

// slabTotal reports the summed slab capacity across flow-table shards —
// the record memory footprint, as opposed to the live flow count.
func slabTotal(tr *Translator) int {
	total := 0
	for si := range tr.flows.shards {
		total += len(tr.flows.shards[si].slab)
	}
	return total
}

// TestPortExhaustionAndRecovery drives the translator to dynamic-port
// exhaustion (every one of the portSpan external ports claimed by a
// distinct tenant flow), checks further outbound traffic is dropped with
// the exhaustion counted, and that the Expire sweep returns every port
// and record so allocation succeeds again — with the slab capacity stable
// across the full drain-and-refill cycle, proving records recycle through
// the free-list instead of leaking.
func TestPortExhaustionAndRecovery(t *testing.T) {
	eng, tr := newT()

	fill := func() {
		for i := 0; i < portSpan; i++ {
			if tr.flowFor(netpkt.ProtoUDP, churnIP(i), 7777) == nil {
				t.Fatalf("flow %d refused before exhaustion", i)
			}
		}
	}
	fill()
	if tr.Flows() != portSpan || tr.dynPorts != portSpan {
		t.Fatalf("flows=%d dynPorts=%d after fill, want %d each",
			tr.Flows(), tr.dynPorts, portSpan)
	}

	// One more tenant: the allocator must fail detectably, not spin.
	if tr.flowFor(netpkt.ProtoUDP, netpkt.IPv4(10, 2, 0, 1), 7777) != nil {
		t.Fatal("flow allocated past port exhaustion")
	}
	if tr.Stats().PortExhausted != 1 {
		t.Fatalf("PortExhausted = %d, want 1", tr.Stats().PortExhausted)
	}
	// Public path: the packet is dropped, not translated.
	pkt := udpPacket(netpkt.IPv4(10, 2, 0, 2), remoteIP, 1234, 53, "x")
	if tr.TranslateOutbound(pkt) != nil {
		t.Fatal("outbound translated past port exhaustion")
	}
	if tr.Stats().PortExhausted != 2 {
		t.Fatalf("PortExhausted = %d after drop, want 2", tr.Stats().PortExhausted)
	}

	capacity := slabTotal(tr)
	eng.RunUntil(60 * sim.Second)
	if expired := tr.Expire(30 * sim.Second); expired != portSpan {
		t.Fatalf("expired %d flows, want %d", expired, portSpan)
	}
	if tr.Flows() != 0 || tr.dynPorts != 0 {
		t.Fatalf("flows=%d dynPorts=%d after sweep, want 0", tr.Flows(), tr.dynPorts)
	}
	if tr.Stats().FlowsExpired != portSpan {
		t.Fatalf("FlowsExpired = %d, want %d", tr.Stats().FlowsExpired, portSpan)
	}

	// Refill the full port space: allocation works again and the record
	// slab does not grow past its first-fill high-water mark.
	fill()
	if tr.Flows() != portSpan {
		t.Fatalf("flows = %d after refill, want %d", tr.Flows(), portSpan)
	}
	if got := slabTotal(tr); got != capacity {
		t.Fatalf("slab capacity %d after refill, want stable %d", got, capacity)
	}
}

// TestDropGuestMidTrafficReleasesPorts detaches one tenant of two
// mid-traffic and checks its flows (and external ports) are released
// immediately while the surviving tenant's translations keep matching —
// the teardown path a churning fleet exercises on every disconnect.
func TestDropGuestMidTrafficReleasesPorts(t *testing.T) {
	_, tr := newT()
	guestA := netpkt.IPv4(10, 0, 0, 5)
	guestB := netpkt.IPv4(10, 0, 0, 6)
	const flowsEach = 100

	var extA, extB uint16
	for i := 0; i < flowsEach; i++ {
		fa := tr.flowFor(netpkt.ProtoUDP, guestA, uint16(1000+i))
		fb := tr.flowFor(netpkt.ProtoUDP, guestB, uint16(1000+i))
		if fa == nil || fb == nil {
			t.Fatalf("flow %d refused", i)
		}
		if i == 0 {
			extA, extB = fa.extPort, fb.extPort
		}
	}
	if tr.Flows() != 2*flowsEach {
		t.Fatalf("flows = %d, want %d", tr.Flows(), 2*flowsEach)
	}

	if dropped := tr.DropGuest(guestA); dropped != flowsEach {
		t.Fatalf("DropGuest removed %d flows, want %d", dropped, flowsEach)
	}
	if tr.Flows() != flowsEach || tr.dynPorts != flowsEach {
		t.Fatalf("flows=%d dynPorts=%d after drop, want %d each",
			tr.Flows(), tr.dynPorts, flowsEach)
	}
	if _, _, ok := tr.matchInbound(netpkt.ProtoUDP, extA); ok {
		t.Fatal("departed tenant's external port still matches inbound")
	}
	if ip, port, ok := tr.matchInbound(netpkt.ProtoUDP, extB); !ok || ip != guestB || port != 1000 {
		t.Fatalf("survivor's flow broken: ip=%v port=%d ok=%v", ip, port, ok)
	}

	// The tenant reconnects mid-traffic: a fresh outbound packet gets a
	// fresh flow (possibly recycling a just-released port).
	out := tr.TranslateOutbound(udpPacket(guestA, remoteIP, 1000, 53, "back"))
	if out == nil {
		t.Fatal("reconnected tenant's outbound dropped")
	}
	if tr.Flows() != flowsEach+1 || tr.dynPorts != flowsEach+1 {
		t.Fatalf("flows=%d dynPorts=%d after reconnect, want %d each",
			tr.Flows(), tr.dynPorts, flowsEach+1)
	}
}
