package xen

import (
	"fmt"

	"kite/internal/mem"
	"kite/internal/sim"
)

// GrantRef names an entry in a domain's grant table.
type GrantRef uint32

type grantEntry struct {
	ref      GrantRef
	page     *mem.Page
	remote   DomID
	readonly bool
	mapCount int
	revoked  bool
}

// GrantAccess publishes page to remote. Writing one's own grant table is
// not a hypercall, so no cost is charged here.
func (d *Domain) GrantAccess(remote DomID, page *mem.Page, readonly bool) GrantRef {
	if page.Owner() != d.Arena {
		panic(fmt.Sprintf("xen: %s granting a page it does not own", d.Name))
	}
	d.nextRef++
	for int(d.nextRef) >= len(d.grants) {
		d.grants = append(d.grants, nil) //kite:alloc-ok grant table grows once per domain lifetime
	}
	d.grants[d.nextRef] = &grantEntry{ //kite:alloc-ok grant entries persist and are reused (persistent grants)
		ref: d.nextRef, page: page, remote: remote, readonly: readonly,
	}
	d.liveGrants++
	return d.nextRef
}

// EndAccess revokes a grant. It fails while a foreign mapping is still
// live, matching gnttab_end_foreign_access semantics.
func (d *Domain) EndAccess(ref GrantRef) error {
	g := d.grant(ref)
	if g == nil || g.revoked {
		return fmt.Errorf("xen: end access on unknown grant %d in %s", ref, d.Name)
	}
	if g.mapCount > 0 {
		return fmt.Errorf("xen: grant %d in %s still mapped %d times", ref, d.Name, g.mapCount)
	}
	g.revoked = true
	d.grants[ref] = nil
	d.liveGrants--
	return nil
}

// LiveGrants returns the number of outstanding (unrevoked) grant entries.
func (d *Domain) LiveGrants() int { return d.liveGrants }

// Mapping is a foreign page mapped into a backend's address space. The
// backend reads and writes Page.Data directly — the same aliasing a real
// mapping provides.
type Mapping struct {
	Page   *mem.Page
	owner  DomID
	ref    GrantRef
	mapper DomID
	live   bool
}

// MapGrant maps (owner, ref) into mapper's address space
// (GNTTABOP_map_grant_ref). Cost is charged to the mapper.
func (hv *Hypervisor) MapGrant(mapper *Domain, owner DomID, ref GrantRef) (*Mapping, error) {
	mapper.charge(hv.Costs.Base + hv.Costs.GrantMapPage)
	return hv.mapGrantCharged(mapper, owner, ref)
}

// MapGrantOn is MapGrant with the cost charged to a pinned vCPU, for
// callers running on a cluster shard (grant-table reads are safe from any
// shard once handshakes froze the tables; only the vCPU pick is not).
func (hv *Hypervisor) MapGrantOn(mapper *Domain, cpu *sim.CPU, owner DomID, ref GrantRef) (*Mapping, error) {
	mapper.chargeOn(cpu, hv.Costs.Base+hv.Costs.GrantMapPage)
	return hv.mapGrantCharged(mapper, owner, ref)
}

func (hv *Hypervisor) mapGrantCharged(mapper *Domain, owner DomID, ref GrantRef) (*Mapping, error) {
	od := hv.Domain(owner)
	if od == nil {
		return nil, fmt.Errorf("xen: map grant from dead domain %d", owner)
	}
	g := od.grant(ref)
	hv.stats.grantMaps.Add(1)
	if g == nil || g.revoked {
		return nil, fmt.Errorf("xen: bad grant ref %d in domain %d", ref, owner)
	}
	if g.remote != mapper.ID {
		return nil, fmt.Errorf("xen: grant %d of domain %d is for domain %d, not %d",
			ref, owner, g.remote, mapper.ID)
	}
	g.mapCount++
	return &Mapping{Page: g.page, owner: owner, ref: ref, mapper: mapper.ID, live: true}, nil //kite:alloc-ok callers cache mappings; misses are warmup-only
}

// MapGrantBatch maps several refs in one hypercall-equivalent batch,
// charging the base cost once.
func (hv *Hypervisor) MapGrantBatch(mapper *Domain, owner DomID, refs []GrantRef) ([]*Mapping, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	od := hv.Domain(owner)
	if od == nil {
		return nil, fmt.Errorf("xen: map grant from dead domain %d", owner)
	}
	mapper.charge(hv.Costs.Base + sim.Time(len(refs))*hv.Costs.GrantMapPage)
	out := make([]*Mapping, 0, len(refs))
	for _, ref := range refs {
		hv.stats.grantMaps.Add(1)
		g := od.grant(ref)
		if g == nil || g.revoked || g.remote != mapper.ID {
			for _, m := range out {
				hv.unmapLocked(m)
			}
			return nil, fmt.Errorf("xen: bad grant ref %d in batch from domain %d", ref, owner)
		}
		g.mapCount++
		out = append(out, &Mapping{Page: g.page, owner: owner, ref: ref, mapper: mapper.ID, live: true})
	}
	return out, nil
}

// UnmapGrant releases a mapping (GNTTABOP_unmap_grant_ref).
func (hv *Hypervisor) UnmapGrant(mapper *Domain, m *Mapping) error {
	mapper.charge(hv.Costs.Base + hv.Costs.GrantUnmapPage)
	return hv.unmapLocked(m)
}

// UnmapGrantBatch unmaps several mappings, charging the base cost once.
func (hv *Hypervisor) UnmapGrantBatch(mapper *Domain, ms []*Mapping) error {
	if len(ms) == 0 {
		return nil
	}
	mapper.charge(hv.Costs.Base + sim.Time(len(ms))*hv.Costs.GrantUnmapPage)
	for _, m := range ms {
		if err := hv.unmapLocked(m); err != nil {
			return err
		}
	}
	return nil
}

func (hv *Hypervisor) unmapLocked(m *Mapping) error {
	if !m.live {
		return fmt.Errorf("xen: unmap of dead mapping (ref %d)", m.ref)
	}
	m.live = false
	hv.stats.grantUnmaps.Add(1)
	od := hv.domainAt(m.owner) // owner may be dead; entry may be gone
	if od != nil {
		if g := od.grant(m.ref); g != nil {
			g.mapCount--
		}
	}
	return nil
}

// Live reports whether the mapping is still valid.
func (m *Mapping) Live() bool { return m.live }

// Ref returns the grant reference this mapping came from.
func (m *Mapping) Ref() GrantRef { return m.ref }

// CopyPtr addresses one side of a grant copy: a foreign (Dom, Ref) pair, a
// local page, or a local raw buffer (Data). The raw-buffer form lets
// backends copy straight between grants and pooled frame buffers without
// staging through scratch pages; it models the same virtual-address side a
// real GNTTABOP_copy accepts.
type CopyPtr struct {
	Dom    DomID
	Ref    GrantRef
	Local  *mem.Page // non-nil for a local page side
	Data   []byte    // non-nil for a local raw-buffer side (takes precedence)
	Offset int
}

// CopyOp is one GNTTABOP_copy operation; Len must fit within both sides.
type CopyOp struct {
	Src, Dst CopyPtr
	Len      int
}

// CopyGrant performs a batch of hypervisor-side copies on behalf of caller
// (GNTTABOP_copy). This is the fast data path used by netback/netfront.
// The base hypercall cost is charged once per batch; each op adds a fixed
// per-op cost plus a byte-proportional memcpy cost.
func (hv *Hypervisor) CopyGrant(caller *Domain, ops []CopyOp) error {
	if len(ops) == 0 {
		return nil
	}
	caller.charge(hv.copyCost(ops))
	return hv.copyCharged(caller, ops)
}

// CopyGrantOn is CopyGrant with the cost charged to a pinned vCPU — the
// per-queue form used by backends running on cluster shards.
func (hv *Hypervisor) CopyGrantOn(caller *Domain, cpu *sim.CPU, ops []CopyOp) error {
	if len(ops) == 0 {
		return nil
	}
	caller.chargeOn(cpu, hv.copyCost(ops))
	return hv.copyCharged(caller, ops)
}

func (hv *Hypervisor) copyCost(ops []CopyOp) sim.Time {
	cost := hv.Costs.Base
	for _, op := range ops {
		cost += hv.Costs.GrantCopyPage + sim.Time(op.Len)*hv.Costs.CopyBytePerKB/1024
	}
	return cost
}

func (hv *Hypervisor) copyCharged(caller *Domain, ops []CopyOp) error {
	for i, op := range ops {
		src, err := hv.resolveCopyPtr(caller, op.Src, false)
		if err != nil {
			return fmt.Errorf("xen: copy op %d src: %w", i, err)
		}
		dst, err := hv.resolveCopyPtr(caller, op.Dst, true)
		if err != nil {
			return fmt.Errorf("xen: copy op %d dst: %w", i, err)
		}
		if op.Len < 0 || op.Src.Offset+op.Len > len(src) || op.Dst.Offset+op.Len > len(dst) {
			return fmt.Errorf("xen: copy op %d overflows a buffer", i)
		}
		copy(dst[op.Dst.Offset:op.Dst.Offset+op.Len], src[op.Src.Offset:op.Src.Offset+op.Len])
		hv.stats.grantCopies.Add(1)
		hv.stats.copiedBytes.Add(uint64(op.Len))
	}
	return nil
}

func (hv *Hypervisor) resolveCopyPtr(caller *Domain, p CopyPtr, write bool) ([]byte, error) {
	if p.Data != nil {
		return p.Data, nil
	}
	if p.Local != nil {
		return p.Local.Data, nil
	}
	od := hv.Domain(p.Dom)
	if od == nil {
		return nil, fmt.Errorf("dead domain %d", p.Dom)
	}
	g := od.grant(p.Ref)
	if g == nil || g.revoked {
		return nil, fmt.Errorf("bad grant %d in domain %d", p.Ref, p.Dom)
	}
	if g.remote != caller.ID {
		return nil, fmt.Errorf("grant %d of domain %d not granted to %d", p.Ref, p.Dom, caller.ID)
	}
	if write && g.readonly {
		return nil, fmt.Errorf("write through read-only grant %d of domain %d", p.Ref, p.Dom)
	}
	return g.page.Data, nil
}
