// Command kitesec prints the security analyses of §5.1: syscall
// inventories, the CVE mitigation matrix (Table 3 and the toolstack CVEs),
// the driver-CVE trend (Fig 1a), and the ROP gadget scan (Figs 1b/5). With
// -loc it also counts this repository's lines of code per module — the
// Table 1 analogue for the reproduction itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kite/internal/experiments"
	"kite/internal/guestos"
	"kite/internal/metrics"
	"kite/internal/security"
)

func main() {
	rop := flag.Bool("rop", true, "run the ROP gadget scan")
	cves := flag.Bool("cves", true, "print the CVE analyses")
	syscalls := flag.Bool("syscalls", true, "print the syscall inventories")
	loc := flag.Bool("loc", false, "count this repository's LOC per module (Table 1 analogue)")
	flag.Parse()

	if *syscalls {
		printSyscalls()
	}
	if *cves {
		fmt.Println(experiments.Fig1aDriverCVEs().Table.String())
		fmt.Println(experiments.Table3().Table.String())
		printToolstackCVEs()
	}
	if *rop {
		fmt.Println(experiments.Fig1bFig5ROP().Table.String())
		printCategoryBreakdown()
	}
	if *loc {
		if err := printLOC(); err != nil {
			fmt.Fprintf(os.Stderr, "kitesec: %v\n", err)
			os.Exit(1)
		}
	}
}

func printSyscalls() {
	t := metrics.NewTable("FIG4A: retained system calls",
		"profile", "count", "examples")
	rows := []struct {
		name string
		list []string
	}{
		{"ubuntu driver domain", guestos.UbuntuDriverDomainSyscalls},
		{"kite network", guestos.KiteNetworkSyscalls},
		{"kite storage", guestos.KiteStorageSyscalls},
	}
	for _, r := range rows {
		ex := strings.Join(r.list[:min(5, len(r.list))], ",") + ",..."
		t.AddRow(r.name, fmt.Sprintf("%d", len(r.list)), ex)
	}
	fmt.Println(t.String())
	fmt.Printf("  full Linux syscall surface: ~%d\n\n", guestos.TotalLinuxSyscalls)
}

func printToolstackCVEs() {
	t := metrics.NewTable("toolstack CVEs avoided by dropping xen-utils/libxl/python",
		"cve", "needs", "ubuntu", "kite")
	u := guestos.UbuntuDriverDomain()
	k := guestos.KiteNetworkDomain()
	verdict := func(c security.CVE, p *guestos.Profile) string {
		if security.Applies(c, p) {
			return "VULNERABLE"
		}
		return "mitigated"
	}
	for _, c := range security.ToolstackCVEs() {
		t.AddRow(c.ID, strings.Join(c.Components, "+"), verdict(c, u), verdict(c, k))
	}
	fmt.Println(t.String())
	fmt.Printf("  plus %d crafted-application and %d shell-dependent CVE classes foreclosed by the unikernel model\n\n",
		security.CraftedAppCVECount, security.ShellCVECount)
}

func printCategoryBreakdown() {
	t := metrics.NewTable("FIG5: gadget categories (Kite vs Default kernel)",
		"category", "kite", "default", "ratio")
	profiles := guestos.GadgetScanProfiles()
	kite := security.GadgetCounts(profiles[0])
	def := security.GadgetCounts(profiles[1])
	for cat := security.Category(0); cat < security.NumCategories; cat++ {
		t.AddRow(cat.String(), fmt.Sprintf("%d", kite[cat]), fmt.Sprintf("%d", def[cat]),
			metrics.FormatFloat(metrics.Ratio(float64(def[cat]), float64(kite[cat]))))
	}
	fmt.Println(t.String())
}

// printLOC counts non-blank lines of Go per package directory.
func printLOC() error {
	counts := map[string]int{}
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n := 0
		for _, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) != "" {
				n++
			}
		}
		counts[filepath.Dir(path)] += n
		return nil
	})
	if err != nil {
		return err
	}
	dirs := make([]string, 0, len(counts))
	for d := range counts {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	t := metrics.NewTable("TABLE 1 analogue: this reproduction's LOC by module",
		"module", "loc")
	total := 0
	for _, d := range dirs {
		t.AddRow(d, fmt.Sprintf("%d", counts[d]))
		total += counts[d]
	}
	t.AddRow("TOTAL", fmt.Sprintf("%d", total))
	fmt.Println(t.String())
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
