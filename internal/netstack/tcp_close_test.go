package netstack

import (
	"bytes"
	"testing"

	"kite/internal/nic"
	"kite/internal/sim"
)

func TestCloseFlushesPendingData(t *testing.T) {
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	payload := make([]byte, 300<<10) // several windows worth
	sim.NewRand(3).Bytes(payload)
	var got []byte
	closed := false
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
		c.OnClose(func(error) { closed = true })
	})
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.Send(payload)
		c.Close() // FIN must queue behind all data
	})
	if !eng.RunCapped(3_000_000) {
		t.Fatal("livelock")
	}
	if !closed {
		t.Fatal("receiver never saw close")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("close truncated data: %d of %d bytes", len(got), len(payload))
	}
}

func TestConnMapsDoNotLeak(t *testing.T) {
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func(d []byte) {
			c.Send(d)
			c.Close()
		})
	})
	const rounds = 25
	done := 0
	for i := 0; i < rounds; i++ {
		a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
			if err != nil {
				t.Fatal(err)
			}
			c.OnData(func([]byte) { c.Close() })
			c.OnClose(func(error) { done++ })
			c.Send([]byte("ping"))
		})
	}
	if !eng.RunCapped(3_000_000) {
		t.Fatal("livelock")
	}
	eng.RunFor(200 * sim.Millisecond) // let all timers expire
	if done != rounds {
		t.Fatalf("%d of %d conns closed", done, rounds)
	}
	if n := len(a.Stack.conns); n != 0 {
		t.Fatalf("client leaked %d conns", n)
	}
	if n := len(b.Stack.conns); n != 0 {
		t.Fatalf("server leaked %d conns", n)
	}
}

func TestSendAfterCloseIgnored(t *testing.T) {
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func(d []byte) { c.Send(d) })
	})
	var conn *Conn
	var got []byte
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
		conn = c
		c.OnData(func(d []byte) { got = append(got, d...) })
		c.Send([]byte("first"))
	})
	eng.RunFor(50 * sim.Millisecond)
	if string(got) != "first" {
		t.Fatalf("echo = %q", got)
	}
	conn.Close()
	eng.RunFor(50 * sim.Millisecond)
	conn.Send([]byte("late")) // must be dropped silently
	eng.RunFor(50 * sim.Millisecond)
	if bytes.Contains(got, []byte("late")) {
		t.Fatal("data sent after close was delivered")
	}
}

func TestDoubleCloseHarmless(t *testing.T) {
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(c *Conn) {})
	closes := 0
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
		c.OnClose(func(error) { closes++ })
		c.Close()
		c.Close()
	})
	if !eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	eng.RunFor(200 * sim.Millisecond)
	if closes > 1 {
		t.Fatalf("OnClose fired %d times", closes)
	}
}

func TestHalfCloseFromServer(t *testing.T) {
	// Server closes right after responding: the client must receive the
	// data and then the close notification.
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func([]byte) {
			c.Send([]byte("bye"))
			c.Close()
		})
	})
	var got []byte
	closed := false
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
		c.OnData(func(d []byte) { got = append(got, d...) })
		c.OnClose(func(error) { closed = true })
		c.Send([]byte("hi"))
	})
	if !eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	if string(got) != "bye" || !closed {
		t.Fatalf("got=%q closed=%v", got, closed)
	}
}
