package netstack

import (
	"bytes"
	"testing"

	"kite/internal/netpkt"
	"kite/internal/nic"
	"kite/internal/sim"
)

// twoHosts wires two hosts back to back over a 10GbE link.
func twoHosts(t *testing.T) (*sim.Engine, *Host, *Host) {
	t.Helper()
	eng := sim.NewEngine()
	a := NewHost(eng, HostConfig{Name: "alpha", CPUs: 2, IP: netpkt.IPv4(10, 0, 0, 1),
		MAC: netpkt.MAC{2, 0, 0, 0, 0, 1}, BDF: "03:00.0", Costs: LinuxGuestCosts(), Seed: 1})
	b := NewHost(eng, HostConfig{Name: "beta", CPUs: 2, IP: netpkt.IPv4(10, 0, 0, 2),
		MAC: netpkt.MAC{2, 0, 0, 0, 0, 2}, BDF: "04:00.0", Costs: LinuxGuestCosts(), Seed: 2})
	nic.Connect(a.NIC, b.NIC, nic.DefaultLink())
	return eng, a, b
}

func TestARPResolutionThenDelivery(t *testing.T) {
	eng, a, b := twoHosts(t)
	var got []byte
	b.Stack.BindUDP(7, func(p UDPPacket) { got = p.Data })
	a.Stack.SendUDP(b.Stack.IP(), 7, 5555, []byte("needs-arp"))
	eng.Run()
	if string(got) != "needs-arp" {
		t.Fatalf("payload = %q", got)
	}
	if a.Stack.Stats().ARPRequests != 1 {
		t.Fatal("no ARP request sent")
	}
	if b.Stack.Stats().ARPReplies != 1 {
		t.Fatal("no ARP reply sent")
	}
	// Second send must not re-ARP.
	a.Stack.SendUDP(b.Stack.IP(), 7, 5555, []byte("cached"))
	eng.Run()
	if a.Stack.Stats().ARPRequests != 1 {
		t.Fatal("ARP cache not used")
	}
}

func TestUDPEcho(t *testing.T) {
	eng, a, b := twoHosts(t)
	b.Stack.BindUDP(9, func(p UDPPacket) {
		b.Stack.SendUDP(p.Src, p.SrcPort, 9, append([]byte("echo:"), p.Data...))
	})
	var reply []byte
	a.Stack.BindUDP(5000, func(p UDPPacket) { reply = p.Data })
	a.Stack.SendUDP(b.Stack.IP(), 9, 5000, []byte("hi"))
	eng.Run()
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestUDPLargeDatagramFragments(t *testing.T) {
	eng, a, b := twoHosts(t)
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	var got []byte
	b.Stack.BindUDP(9, func(p UDPPacket) { got = p.Data })
	a.Stack.SendUDP(b.Stack.IP(), 9, 5000, payload)
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("fragmented datagram corrupted")
	}
}

func TestUDPPortValidation(t *testing.T) {
	_, a, _ := twoHosts(t)
	if err := a.Stack.BindUDP(53, func(UDPPacket) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Stack.BindUDP(53, func(UDPPacket) {}); err == nil {
		t.Fatal("double bind succeeded")
	}
	a.Stack.UnbindUDP(53)
	if err := a.Stack.BindUDP(53, func(UDPPacket) {}); err != nil {
		t.Fatal("rebind after unbind failed")
	}
}

func TestUDPUnboundPortDropped(t *testing.T) {
	eng, a, b := twoHosts(t)
	a.Stack.SendUDP(b.Stack.IP(), 1234, 5000, []byte("void"))
	eng.Run()
	if b.Stack.Stats().RxDropNoHandler != 1 {
		t.Fatal("datagram to unbound port not counted as dropped")
	}
}

func TestPingRTT(t *testing.T) {
	eng, a, b := twoHosts(t)
	var rtt sim.Time = -1
	a.Stack.Ping(b.Stack.IP(), 56, func(d sim.Time) { rtt = d })
	eng.Run()
	if rtt <= 0 {
		t.Fatal("no ping reply")
	}
	// Direct 10GbE hosts: RTT should be tens of microseconds here.
	if rtt > 200*sim.Microsecond {
		t.Fatalf("direct-link RTT = %v, implausibly slow", rtt)
	}
}

func TestTCPHandshakeAndData(t *testing.T) {
	eng, a, b := twoHosts(t)
	var serverGot []byte
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func(data []byte) {
			serverGot = append(serverGot, data...)
			c.Send([]byte("pong"))
		})
	})
	var clientGot []byte
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c.OnData(func(data []byte) { clientGot = append(clientGot, data...) })
		c.Send([]byte("ping"))
	})
	eng.Run()
	if string(serverGot) != "ping" || string(clientGot) != "pong" {
		t.Fatalf("exchange = %q / %q", serverGot, clientGot)
	}
}

func TestTCPBulkTransferIntegrity(t *testing.T) {
	eng, a, b := twoHosts(t)
	payload := make([]byte, 1<<20) // 1 MiB: far beyond one window
	rng := sim.NewRand(99)
	rng.Bytes(payload)

	var received []byte
	done := false
	b.Stack.Listen(5001, func(c *Conn) {
		c.OnData(func(data []byte) { received = append(received, data...) })
		c.OnClose(func(error) { done = true })
	})
	a.Stack.Dial(b.Stack.IP(), 5001, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c.Send(payload)
		c.Close()
	})
	if !eng.RunCapped(3_000_000) {
		t.Fatal("bulk transfer livelocked")
	}
	if !done {
		t.Fatal("receiver never saw close")
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("bulk payload corrupted: got %d bytes want %d", len(received), len(payload))
	}
}

func TestTCPConnectionRefused(t *testing.T) {
	eng, a, b := twoHosts(t)
	var dialErr error
	called := false
	a.Stack.Dial(b.Stack.IP(), 81, func(c *Conn, err error) {
		called = true
		dialErr = err
	})
	eng.Run()
	if !called {
		t.Fatal("dial callback never fired")
	}
	if dialErr == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTCPListenerValidation(t *testing.T) {
	_, a, _ := twoHosts(t)
	if err := a.Stack.Listen(80, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Stack.Listen(80, func(*Conn) {}); err == nil {
		t.Fatal("double listen succeeded")
	}
}

func TestTCPConcurrentConnections(t *testing.T) {
	eng, a, b := twoHosts(t)
	const conns = 10
	got := make(map[int]string)
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func(data []byte) { c.Send(append([]byte("r-"), data...)) })
	})
	for i := 0; i < conns; i++ {
		i := i
		a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			c.OnData(func(data []byte) { got[i] = string(data) })
			c.Send([]byte{byte('0' + i)})
		})
	}
	eng.Run()
	if len(got) != conns {
		t.Fatalf("%d/%d connections completed", len(got), conns)
	}
	for i, v := range got {
		if v != "r-"+string(rune('0'+i)) {
			t.Fatalf("conn %d got %q", i, v)
		}
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	// Squeeze the sender NIC queue so the burst overflows and drops, then
	// verify retransmission still delivers everything.
	eng := sim.NewEngine()
	a := NewHost(eng, HostConfig{Name: "alpha", CPUs: 2, IP: netpkt.IPv4(10, 0, 0, 1),
		MAC: netpkt.MAC{2, 0, 0, 0, 0, 1}, BDF: "03:00.0", Costs: LinuxGuestCosts(), Seed: 1})
	b := NewHost(eng, HostConfig{Name: "beta", CPUs: 2, IP: netpkt.IPv4(10, 0, 0, 2),
		MAC: netpkt.MAC{2, 0, 0, 0, 0, 2}, BDF: "04:00.0", Costs: LinuxGuestCosts(), Seed: 2})
	cfg := nic.DefaultLink()
	cfg.TxQueueBytes = 8 << 10 // 8 KiB queue: bursts will drop
	nic.Connect(a.NIC, b.NIC, cfg)

	payload := make([]byte, 256<<10)
	sim.NewRand(7).Bytes(payload)
	var received []byte
	b.Stack.Listen(5001, func(c *Conn) {
		c.OnData(func(data []byte) { received = append(received, data...) })
	})
	var sender *Conn
	a.Stack.Dial(b.Stack.IP(), 5001, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		sender = c
		c.Send(payload)
	})
	if !eng.RunCapped(5_000_000) {
		t.Fatal("lossy transfer livelocked")
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("lossy transfer corrupted: got %d want %d bytes", len(received), len(payload))
	}
	if sender.Retransmits() == 0 {
		t.Fatal("expected retransmissions over the lossy link")
	}
}

func TestTCPThroughputNearLineRate(t *testing.T) {
	eng, a, b := twoHosts(t)
	payload := make([]byte, 8<<20)
	var rx int
	var start, end sim.Time
	b.Stack.Listen(5201, func(c *Conn) {
		start = eng.Now()
		c.OnData(func(data []byte) {
			rx += len(data)
			end = eng.Now()
		})
	})
	a.Stack.Dial(b.Stack.IP(), 5201, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.Send(payload)
	})
	if !eng.RunCapped(10_000_000) {
		t.Fatal("throughput test livelocked")
	}
	if rx != len(payload) {
		t.Fatalf("received %d of %d bytes", rx, len(payload))
	}
	gbps := float64(rx*8) / (end - start).Seconds() / 1e9
	if gbps < 5 {
		t.Fatalf("host-to-host TCP = %.2f Gbps, want > 5", gbps)
	}
}
