package ring

import "testing"

// jumpIndices advances every index of an idle ring by delta, simulating a
// ring that has already cycled delta slots. Valid only when the ring is
// quiescent (all published work consumed), since all indices must agree.
func jumpIndices[Req, Rsp any](r *Ring[Req, Rsp], delta uint32) {
	r.reqProdPvt += delta
	r.rspProdPvt += delta
	r.reqProd += delta
	r.reqCons += delta
	r.rspProd += delta
	r.rspCons += delta
	r.reqEvent += delta
	r.rspEvent += delta
}

// TestUint32IndexWraparound drives full request/response cycles across the
// 2^32 index boundary. The Xen ring macros rely on unsigned wrap arithmetic
// (prod - cons is correct even when prod has wrapped and cons has not);
// this is the regression test for that edge of the hot path, which the
// modest-iteration tests above never reach.
func TestUint32IndexWraparound(t *testing.T) {
	r := New[req, rsp](4)
	// Park all indices 6 slots before the wrap so the cycles below straddle
	// the boundary: some pushes land at index 0xFFFFFFFF, later ones at 0x1.
	jumpIndices(r, ^uint32(0)-6)
	for i := 0; i < 16; i++ {
		if free := r.FreeRequests(); free != 4 {
			t.Fatalf("iteration %d: FreeRequests = %d, want 4", i, free)
		}
		if !r.PushRequest(req{i}) {
			t.Fatalf("iteration %d: push failed near wrap", i)
		}
		r.PushRequestsAndCheckNotify()
		q, ok := r.TakeRequest()
		if !ok || q.id != i {
			t.Fatalf("iteration %d: TakeRequest = %+v,%v", i, q, ok)
		}
		if !r.PushResponse(rsp{q.id, 0}) {
			t.Fatalf("iteration %d: response push failed near wrap", i)
		}
		r.PushResponsesAndCheckNotify()
		p, ok := r.TakeResponse()
		if !ok || p.id != i {
			t.Fatalf("iteration %d: TakeResponse = %+v,%v", i, p, ok)
		}
	}
	reqs, rsps, _, _ := r.Stats()
	if reqs != 16 || rsps != 16 {
		t.Fatalf("stats after wrap = %d reqs / %d rsps, want 16/16", reqs, rsps)
	}
}

// TestBackpressureAcrossWrap fills the ring to capacity with the producer
// index on one side of the 2^32 boundary and the consumer on the other,
// then verifies the full-ring backpressure invariants: pushes fail while
// full, serving a request alone frees nothing, and consuming the response
// re-opens exactly one slot.
func TestBackpressureAcrossWrap(t *testing.T) {
	r := New[req, rsp](4)
	// Two slots before the wrap: filling all four slots pushes reqProdPvt
	// past 2^32 while rspCons stays below it.
	jumpIndices(r, ^uint32(0)-1)
	for i := 0; i < 4; i++ {
		if !r.PushRequest(req{i}) {
			t.Fatalf("push %d failed before full", i)
		}
	}
	if r.reqProdPvt >= r.rspCons {
		t.Fatal("test precondition: producer index did not wrap past consumer")
	}
	if !r.Full() || r.FreeRequests() != 0 {
		t.Fatalf("ring not full across wrap: free=%d", r.FreeRequests())
	}
	if r.PushRequest(req{99}) {
		t.Fatal("push into full ring succeeded across wrap")
	}
	r.PushRequestsAndCheckNotify()

	// Backend serves one request; the slot stays occupied until the
	// frontend consumes the response.
	if _, ok := r.TakeRequest(); !ok {
		t.Fatal("TakeRequest failed on full ring")
	}
	if !r.PushResponse(rsp{0, 0}) {
		t.Fatal("response push failed")
	}
	if r.PushRequest(req{99}) {
		t.Fatal("slot freed before response consumed (across wrap)")
	}
	r.PushResponsesAndCheckNotify()
	if _, ok := r.TakeResponse(); !ok {
		t.Fatal("TakeResponse failed")
	}
	if r.FreeRequests() != 1 {
		t.Fatalf("FreeRequests = %d after one completion, want 1", r.FreeRequests())
	}
	if !r.PushRequest(req{99}) {
		t.Fatal("slot not freed after response consumed (across wrap)")
	}

	// Drain everything and confirm the ring returns to a clean state with
	// indices beyond the wrap.
	r.PushRequestsAndCheckNotify()
	for {
		q, ok := r.TakeRequest()
		if !ok {
			break
		}
		r.PushResponse(rsp{q.id, 0})
	}
	r.PushResponsesAndCheckNotify()
	for {
		if _, ok := r.TakeResponse(); !ok {
			break
		}
	}
	if r.FreeRequests() != 4 || r.Inflight() != 0 {
		t.Fatalf("ring dirty after drain: free=%d inflight=%d", r.FreeRequests(), r.Inflight())
	}
}

// TestNotifySuppressionAcrossWrap checks the event-threshold comparison
// (new - event < new - old, unsigned) at the boundary where new has wrapped
// and the armed threshold has not.
func TestNotifySuppressionAcrossWrap(t *testing.T) {
	r := New[req, rsp](4)
	jumpIndices(r, ^uint32(0)-1)
	// Re-arm: backend sleeps with req_event = reqCons+1 = 0xFFFFFFFF.
	if r.FinalCheckForRequests() {
		t.Fatal("phantom request before wrap")
	}
	// Publish two requests: the window (0xFFFFFFFE, 0x0] crosses the armed
	// threshold 0xFFFFFFFF, so the backend must be notified.
	r.PushRequest(req{0})
	r.PushRequest(req{1})
	if !r.PushRequestsAndCheckNotify() {
		t.Fatal("publish crossing wrapped threshold did not request notify")
	}
	// Without re-arming, the next publish must be suppressed even though
	// the producer index is now numerically tiny.
	r.PushRequest(req{2})
	if r.PushRequestsAndCheckNotify() {
		t.Fatal("publish after wrap requested notify without re-arm")
	}
}
