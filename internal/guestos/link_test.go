package guestos

import (
	"strings"
	"testing"
)

func TestLinkKeepsOnlyDeclaredSyscalls(t *testing.T) {
	p, err := LinkUnikernel(AppSpec{
		Name: "echo-server", SizeBytes: 300 << 10, CodeBytes: 200 << 10,
		Syscalls: []string{"socket", "bind", "accept", "read", "write", "close", "poll"},
	}, NetDriversComponent())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Syscalls) != 7 {
		t.Fatalf("linked syscalls = %d, want 7", len(p.Syscalls))
	}
	if p.HasSyscall("execve") || p.HasSyscall("mmap") {
		t.Fatal("undeclared syscalls survived the link")
	}
	if !p.HasSyscall("socket") {
		t.Fatal("declared syscall missing")
	}
	if p.Family != FamilyNetBSD {
		t.Fatal("linked image not a rumprun profile")
	}
}

func TestLinkRejectsUnavailableSyscall(t *testing.T) {
	_, err := LinkUnikernel(AppSpec{
		Name: "shelly", Syscalls: []string{"read", "execve"},
	}, NetDriversComponent())
	if err == nil {
		t.Fatal("execve-needing app linked against rumprun")
	}
	if !strings.Contains(err.Error(), "execve") {
		t.Fatalf("error does not name the offender: %v", err)
	}
	// clone/fork/init_module — the Table 3 syscalls — must all fail too.
	for _, bad := range []string{"clone", "fork", "init_module", "modify_ldt", "timer_create", "mremap"} {
		if _, err := LinkUnikernel(AppSpec{Name: "x", Syscalls: []string{bad}}, NetDriversComponent()); err == nil {
			t.Errorf("syscall %q linked against rumprun", bad)
		}
	}
}

func TestLinkDeduplicates(t *testing.T) {
	p, err := LinkUnikernel(AppSpec{
		Name: "dup", Syscalls: []string{"read", "read", "write", "read"},
	}, BlockDriversComponent())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Syscalls) != 2 {
		t.Fatalf("deduped syscalls = %d, want 2", len(p.Syscalls))
	}
}

func TestLinkedImageFootprint(t *testing.T) {
	p, err := LinkUnikernel(AppSpec{
		Name: "tiny", SizeBytes: 100 << 10, CodeBytes: 80 << 10,
		Syscalls: []string{"read", "write"},
	}, NetDriversComponent())
	if err != nil {
		t.Fatal(err)
	}
	// A freshly linked image stays an order of magnitude under the Linux
	// kernel+modules baseline.
	if p.KernelImageBytes() >= UbuntuDriverDomain().KernelImageBytes()/5 {
		t.Fatalf("linked image = %d bytes, not lightweight", p.KernelImageBytes())
	}
	if !p.HasComponent("tiny") {
		t.Fatal("application component missing")
	}
}

func TestStandardDomainsAreLinkable(t *testing.T) {
	// The shipped network/storage domain syscall sets must be a subset of
	// what rumprun provides (the paper's domains do link, after all).
	for _, set := range [][]string{KiteNetworkSyscalls, KiteStorageSyscalls} {
		if _, err := LinkUnikernel(AppSpec{Name: "std", Syscalls: set}, NetDriversComponent()); err != nil {
			t.Fatalf("standard domain not linkable: %v", err)
		}
	}
}
