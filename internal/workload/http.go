package workload

import (
	"bytes"
	"strconv"

	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// ABResult reports an ApacheBench run (Fig 8).
type ABResult struct {
	Requests       int
	Concurrency    int
	TotalTime      sim.Time
	RequestsPerSec float64
	ThroughputMBps float64 // body bytes per second
	AvgLatency     sim.Time
	BodyBytes      uint64
	Errors         int
}

// ApacheBench issues totalRequests GETs for path with the given
// concurrency over keep-alive connections (ab -n total -c conc -k).
func ApacheBench(client *netstack.Host, serverIP netpkt.IP, port uint16,
	path string, totalRequests, concurrency int, done func(ABResult)) {

	eng := client.Stack.Engine()
	start := eng.Now()
	issued := 0
	completed := 0
	errors := 0
	finishedConns := 0
	var bodyBytes uint64
	var latencySum sim.Time

	req := []byte("GET " + path + " HTTP/1.1\r\nHost: server\r\n\r\n")

	finishConn := func() {
		finishedConns++
		if finishedConns < concurrency {
			return
		}
		total := eng.Now() - start
		res := ABResult{
			Requests: completed, Concurrency: concurrency,
			TotalTime: total, BodyBytes: bodyBytes, Errors: errors,
		}
		if total > 0 {
			res.RequestsPerSec = float64(completed) / total.Seconds()
			res.ThroughputMBps = float64(bodyBytes) / total.Seconds() / (1 << 20)
		}
		if completed > 0 {
			res.AvgLatency = latencySum / sim.Time(completed)
		}
		done(res)
	}

	worker := func() {
		client.Stack.Dial(serverIP, port, func(c *netstack.Conn, err error) {
			if err != nil {
				errors++
				finishConn()
				return
			}
			var buf []byte
			var sentAt sim.Time
			next := func() {
				if issued >= totalRequests {
					c.Close()
					finishConn()
					return
				}
				issued++
				sentAt = eng.Now()
				c.Send(req)
			}
			c.OnData(func(b []byte) {
				buf = append(buf, b...)
				for {
					n, body, ok := consumeHTTPResponse(buf)
					if !ok {
						return
					}
					buf = buf[n:]
					bodyBytes += uint64(body)
					latencySum += eng.Now() - sentAt
					completed++
					next()
				}
			})
			next()
		})
	}
	for i := 0; i < concurrency; i++ {
		worker()
	}
}

// consumeHTTPResponse returns the total length of one complete HTTP
// response at the start of buf and its body size; ok=false if incomplete.
func consumeHTTPResponse(buf []byte) (n, bodyLen int, ok bool) {
	head := bytes.Index(buf, []byte("\r\n\r\n"))
	if head < 0 {
		return 0, 0, false
	}
	const clKey = "Content-Length: "
	idx := bytes.Index(buf[:head], []byte(clKey))
	if idx < 0 {
		return head + 4, 0, true
	}
	lineEnd := bytes.Index(buf[idx:head+2], []byte("\r\n"))
	if lineEnd < 0 {
		lineEnd = head - idx
	}
	cl, err := strconv.Atoi(string(buf[idx+len(clKey) : idx+lineEnd]))
	if err != nil || cl < 0 {
		return head + 4, 0, true
	}
	total := head + 4 + cl
	if len(buf) < total {
		return 0, 0, false
	}
	return total, cl, true
}

// WgetResult reports a single-file fetch.
type WgetResult struct {
	Bytes    int
	Duration sim.Time
	MBps     float64
}

// Wget fetches one file and reports transfer time and rate.
func Wget(client *netstack.Host, serverIP netpkt.IP, port uint16, path string,
	done func(WgetResult)) {

	eng := client.Stack.Engine()
	start := eng.Now()
	client.Stack.Dial(serverIP, port, func(c *netstack.Conn, err error) {
		if err != nil {
			done(WgetResult{})
			return
		}
		var buf []byte
		c.OnData(func(b []byte) {
			buf = append(buf, b...)
			if n, body, ok := consumeHTTPResponse(buf); ok {
				_ = n
				dur := eng.Now() - start
				res := WgetResult{Bytes: body, Duration: dur}
				if dur > 0 {
					res.MBps = float64(body) / dur.Seconds() / (1 << 20)
				}
				c.Close()
				done(res)
			}
		})
		c.Send([]byte("GET " + path + " HTTP/1.1\r\nHost: server\r\n\r\n"))
	})
}
