// Command kitexl is an xl-flavoured front end to the simulated testbed:
// it executes a scenario script of commands mirroring the artifact
// appendix's workflow (see internal/xlcli for the command set). Reads the
// script from the file argument or stdin.
package main

import (
	"fmt"
	"os"

	"kite/internal/xlcli"
)

func main() {
	in := os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "kitexl: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	interp := xlcli.New(0x71, os.Stdout)
	if err := interp.RunScript(in); err != nil {
		fmt.Fprintf(os.Stderr, "kitexl: %v\n", err)
		os.Exit(1)
	}
}
