// Package xenstore implements the xenstored database: a small hierarchical
// key-value store with watches and transactions, shared between domains.
// The paper's backend-invocation design (§4.1) hangs entirely off this
// component — backends set watches on their driver-domain paths and a
// dedicated thread pairs up frontends when the watch fires.
//
// Watches fire asynchronously (scheduled on the simulation engine) exactly
// once per mutation per registered watch, plus the initial registration
// fire xenstored performs. Transactions provide optimistic concurrency:
// commit fails if any path the transaction touched changed underneath it.
package xenstore

import (
	"fmt"
	"sort"
	"strings"

	"kite/internal/sim"
)

// DomID mirrors xen.DomID without importing it (xenstore is lower-level).
type DomID uint16

type node struct {
	children map[string]*node
	value    string
	hasValue bool
	version  uint64
	owner    DomID
	hasPerms bool           // SetPerms was called on this node
	readers  map[DomID]bool // nil means world-readable
}

// Watch is a registered watch; the callback receives the path that changed
// and the token supplied at registration.
type Watch struct {
	path    string
	token   string
	fn      func(path, token string)
	store   *Store
	dead    bool
	pending int
	fires   uint64
}

// Store is the xenstored database.
type Store struct {
	eng     *sim.Engine
	root    *node
	watches []*Watch
	version uint64

	// OpLatency models the round trip to the xenstored daemon in Dom0.
	// Control-plane only; it never sits on the data path.
	OpLatency sim.Time

	// Quota bounds how many nodes one unprivileged domain may own —
	// xenstored's defence against a guest exhausting the store (the
	// toolstack-DoS class §1 worries about). Dom0 is exempt.
	Quota int

	owned map[DomID]int
	ops   uint64
}

// New creates an empty store.
func New(eng *sim.Engine) *Store {
	return &Store{
		eng:       eng,
		root:      &node{children: make(map[string]*node)},
		OpLatency: 30 * sim.Microsecond,
		Quota:     1000,
		owned:     make(map[DomID]int),
	}
}

// Ops returns the number of store operations performed.
func (s *Store) Ops() uint64 { return s.ops }

func splitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func normalize(path string) string { return "/" + strings.Join(splitPath(path), "/") }

func (s *Store) lookup(path string) *node {
	n := s.root
	for _, part := range splitPath(path) {
		child := n.children[part]
		if child == nil {
			return nil
		}
		n = child
	}
	return n
}

func (s *Store) ensure(path string) *node {
	n := s.root
	for _, part := range splitPath(path) {
		child := n.children[part]
		if child == nil {
			child = &node{children: make(map[string]*node)}
			n.children[part] = child
		}
		n = child
	}
	return n
}

// Write stores value at path, creating intermediate directories.
func (s *Store) Write(path, value string) {
	s.ops++
	s.version++
	n := s.ensure(path)
	n.value = value
	n.hasValue = true
	n.version = s.version
	s.fireWatches(normalize(path))
}

// Writef writes a formatted value.
func (s *Store) Writef(path, format string, args ...any) {
	s.Write(path, fmt.Sprintf(format, args...))
}

// Read returns the value at path and whether it exists.
func (s *Store) Read(path string) (string, bool) {
	s.ops++
	n := s.lookup(path)
	if n == nil || !n.hasValue {
		return "", false
	}
	return n.value, true
}

// ReadInt reads an integer value; ok is false if absent or malformed.
func (s *Store) ReadInt(path string) (int64, bool) {
	v, ok := s.Read(path)
	if !ok {
		return 0, false
	}
	var out int64
	if _, err := fmt.Sscanf(v, "%d", &out); err != nil {
		return 0, false
	}
	return out, true
}

// Mkdir creates an empty directory node.
func (s *Store) Mkdir(path string) {
	s.ops++
	s.version++
	s.ensure(path).version = s.version
	s.fireWatches(normalize(path))
}

// Exists reports whether a node (value or directory) exists at path.
func (s *Store) Exists(path string) bool { return s.lookup(path) != nil }

// Remove deletes the subtree at path. Removing a missing path is an error,
// as in xenstored.
func (s *Store) Remove(path string) error {
	s.ops++
	parts := splitPath(path)
	if len(parts) == 0 {
		return fmt.Errorf("xenstore: refusing to remove root")
	}
	parent := s.root
	for _, part := range parts[:len(parts)-1] {
		parent = parent.children[part]
		if parent == nil {
			return fmt.Errorf("xenstore: remove of missing path %s", path)
		}
	}
	leaf := parts[len(parts)-1]
	if parent.children[leaf] == nil {
		return fmt.Errorf("xenstore: remove of missing path %s", path)
	}
	delete(parent.children, leaf)
	s.version++
	s.fireWatches(normalize(path))
	return nil
}

// List returns the sorted child names of a directory (empty for missing).
func (s *Store) List(path string) []string {
	s.ops++
	n := s.lookup(path)
	if n == nil {
		return nil
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Watch registers fn for changes at or below path. As xenstored does, the
// watch fires once immediately upon registration.
func (s *Store) Watch(path, token string, fn func(path, token string)) *Watch {
	w := &Watch{path: normalize(path), token: token, fn: fn, store: s}
	s.watches = append(s.watches, w)
	s.fire(w, w.path)
	return w
}

// Unwatch removes a watch; in-flight callbacks are suppressed.
func (s *Store) Unwatch(w *Watch) {
	w.dead = true
	for i, x := range s.watches {
		if x == w {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			return
		}
	}
}

// Fires returns how many times the watch callback actually ran.
func (w *Watch) Fires() uint64 { return w.fires }

func (s *Store) fireWatches(changed string) {
	for _, w := range s.watches {
		if pathWithin(changed, w.path) || pathWithin(w.path, changed) {
			s.fire(w, changed)
		}
	}
}

func (s *Store) fire(w *Watch, path string) {
	w.pending++
	s.eng.After(s.OpLatency, func() {
		w.pending--
		if w.dead {
			return
		}
		w.fires++
		w.fn(path, w.token)
	})
}

// pathWithin reports whether p is equal to or beneath prefix.
func pathWithin(p, prefix string) bool {
	if p == prefix {
		return true
	}
	if prefix == "/" {
		return true
	}
	return strings.HasPrefix(p, prefix+"/")
}

// SetPerms sets the owner and (optionally) restricted reader set of a
// subtree root. A nil readers slice means world-readable.
func (s *Store) SetPerms(path string, owner DomID, readers []DomID) {
	n := s.ensure(path)
	n.owner = owner
	n.hasPerms = true
	if readers == nil {
		n.readers = nil
		return
	}
	n.readers = make(map[DomID]bool, len(readers))
	for _, r := range readers {
		n.readers[r] = true
	}
}

// ReadAs performs a permission-checked read on behalf of dom: the owner and
// listed readers (and Dom0) may read; others get an error. Permissions are
// looked up on the nearest ancestor that declared any.
func (s *Store) ReadAs(dom DomID, path string) (string, error) {
	owner, readers := s.permsFor(path)
	if dom != 0 && dom != owner && readers != nil && !readers[dom] {
		return "", fmt.Errorf("xenstore: domain %d denied read of %s", dom, path)
	}
	v, ok := s.Read(path)
	if !ok {
		return "", fmt.Errorf("xenstore: %s does not exist", path)
	}
	return v, nil
}

// WriteAs performs a permission-checked, quota-checked write: only the
// owner and Dom0 may write, and unprivileged domains may not own more
// than Quota nodes.
func (s *Store) WriteAs(dom DomID, path, value string) error {
	owner, _ := s.permsFor(path)
	if dom != 0 && dom != owner {
		return fmt.Errorf("xenstore: domain %d denied write of %s", dom, path)
	}
	if dom != 0 && !s.Exists(path) {
		if s.owned[dom] >= s.Quota {
			return fmt.Errorf("xenstore: domain %d exceeded its %d-node quota", dom, s.Quota)
		}
		s.owned[dom]++
	}
	s.Write(path, value)
	return nil
}

// OwnedNodes returns how many nodes a domain has created through WriteAs.
func (s *Store) OwnedNodes(dom DomID) int { return s.owned[dom] }

// ReleaseQuota returns n nodes to a domain's allowance (the toolstack
// calls it when tearing down the domain's subtree).
func (s *Store) ReleaseQuota(dom DomID, n int) {
	s.owned[dom] -= n
	if s.owned[dom] < 0 {
		s.owned[dom] = 0
	}
}

func (s *Store) permsFor(path string) (DomID, map[DomID]bool) {
	n := s.root
	var owner DomID
	var readers map[DomID]bool
	for _, part := range splitPath(path) {
		n = n.children[part]
		if n == nil {
			break
		}
		if n.hasPerms {
			owner = n.owner
			readers = n.readers
		}
	}
	return owner, readers
}
