// Package netfront implements the paravirtual network frontend driver that
// runs inside DomU guests. It exposes the netstack.NetIf interface — the
// guest's network stack uses it exactly like a physical NIC — and speaks
// the netif ring protocol to whatever netback serves it (Linux or Kite;
// the frontend is identical in both cases, which is the paper's point:
// guests need no modification, §2.2).
//
// Frames arrive and leave as pooled buffers. Tx grants are persistent:
// each ring slot lazily allocates one page and grants it to the backend
// once, then reuses page and grant for the device's lifetime — the same
// recycling the Rx path always had, and what lets the backend keep
// persistent mappings of our pages (§3.3).
//
// The transport is multi-queue (xen-netfront's multi-queue protocol): the
// frontend reads the backend's "multi-queue-max-queues" advertisement
// during the xenbus handshake, answers with "multi-queue-num-queues", and
// publishes one ring pair + event channel per queue under "queue-N/" keys
// (flat legacy keys when single-queue). Tx frames are steered by a
// deterministic RSS Toeplitz hash over the IPv4 4-tuple so each flow stays
// on one queue and in order; non-IP traffic rides queue 0.
package netfront

import (
	"fmt"

	"kite/internal/framepool"
	"kite/internal/mem"
	"kite/internal/netif"
	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

// txBacklogCap bounds the qdisc backlog (frames) per queue.
const txBacklogCap = 1024

// Stats counts frontend activity, aggregated over queues in queue order.
type Stats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	TxRingFull         uint64
	TxErrors           uint64
}

// txSlot is a persistently granted Tx page, reused across frames.
type txSlot struct {
	page     *mem.Page
	ref      xen.GrantRef
	inFlight bool
}

type rxBuf struct {
	page *mem.Page
	ref  xen.GrantRef
}

// queue is one Tx/Rx ring pair with its own event channel, persistent Tx
// slots, posted Rx buffers, and qdisc backlog — the per-queue state real
// netfront keeps in struct netfront_queue.
type queue struct {
	d    *Device
	id   int
	tx   *netif.TxRing
	rx   *netif.RxRing
	port xen.Port

	txSlots map[uint16]*txSlot
	txNext  uint16
	txFree  []uint16
	// txBacklog queues frames while this queue's ring is full (the guest's
	// per-queue qdisc); reapTx drains it as slots free up. Each entry holds
	// one buffer reference.
	txBacklog sim.FIFO[*framepool.Buf]
	rxBufs    [netif.RingSize]rxBuf

	stats Stats
}

// Device is one vif frontend instance.
type Device struct {
	eng     *sim.Engine
	dom     *xen.Domain
	bus     *xenbus.Bus
	reg     *netif.Registry
	devID   int
	backDom xen.DomID
	mac     netpkt.MAC
	pool    *framepool.Pool

	frontPath string
	backPath  string

	wantQueues int
	hashSeed   uint64
	rss        netpkt.RSS
	queues     []*queue
	rxAlive    bool
	started    bool

	recv    func(frame *framepool.Buf)
	onReady func()
	ready   bool
}

// Config describes a frontend to create.
type Config struct {
	Dom      *xen.Domain
	Bus      *xenbus.Bus
	Registry *netif.Registry
	DevID    int
	BackDom  xen.DomID
	MAC      netpkt.MAC
	// Pool supplies frame buffers for the Rx path (nil for a private pool).
	Pool *framepool.Pool
	// Queues requests a queue count; the handshake negotiates
	// min(Queues, backend's multi-queue-max-queues). 0 means 1.
	Queues int
	// HashSeed seeds the RSS steering hash (shared with the backend through
	// xenstore so both ends agree); 0 selects a deterministic per-device
	// default.
	HashSeed uint64
	// OnReady fires when the device reaches Connected on both ends.
	OnReady func()
}

// New creates the frontend for an already tool-stack-created vif device
// and begins negotiation.
func New(eng *sim.Engine, cfg Config) *Device {
	pool := cfg.Pool
	if pool == nil {
		pool = framepool.New()
	}
	wantQueues := cfg.Queues
	if wantQueues < 1 {
		wantQueues = 1
	}
	if wantQueues > netif.MaxQueues {
		wantQueues = netif.MaxQueues
	}
	seed := cfg.HashSeed &^ (1 << 63) // survives the decimal int round trip
	if seed == 0 {
		seed = 0x6b697465<<16 ^ uint64(cfg.Dom.ID)<<8 ^ uint64(cfg.DevID)
	}
	d := &Device{
		eng:        eng,
		dom:        cfg.Dom,
		bus:        cfg.Bus,
		reg:        cfg.Registry,
		devID:      cfg.DevID,
		backDom:    cfg.BackDom,
		mac:        cfg.MAC,
		pool:       pool,
		wantQueues: wantQueues,
		hashSeed:   seed,
		rss:        netpkt.NewRSS(seed),
		frontPath:  xenbus.FrontendPath(xenbus.DomID(cfg.Dom.ID), xenstore.DevVif, cfg.DevID),
		onReady:    cfg.OnReady,
	}
	d.backPath = xenbus.BackendPath(xenbus.DomID(cfg.BackDom), xenstore.DevVif, xenbus.DomID(cfg.Dom.ID), cfg.DevID)
	d.start()
	return d
}

// MAC implements netstack.NetIf.
func (d *Device) MAC() netpkt.MAC { return d.mac }

// SetRecv implements netstack.NetIf. The callback receives one buffer
// reference per frame and owns it.
func (d *Device) SetRecv(fn func(frame *framepool.Buf)) { d.recv = fn }

// Stats returns the counters aggregated over queues in queue order.
func (d *Device) Stats() Stats {
	var s Stats
	for _, q := range d.queues {
		s.TxFrames += q.stats.TxFrames
		s.RxFrames += q.stats.RxFrames
		s.TxBytes += q.stats.TxBytes
		s.RxBytes += q.stats.RxBytes
		s.TxRingFull += q.stats.TxRingFull
		s.TxErrors += q.stats.TxErrors
	}
	return s
}

// NumQueues returns the negotiated queue count (0 before negotiation).
func (d *Device) NumQueues() int { return len(d.queues) }

// Ready reports whether the device is connected end to end.
func (d *Device) Ready() bool { return d.ready }

// start begins the frontend's side of the xenbus handshake: watch the
// backend and allocate/publish rings once it reaches InitWait and its
// queue-count advertisement is readable (the same ordering real netfront
// follows, and what blkfront here always did).
func (d *Device) start() {
	d.bus.OnStateChange(d.backPath, func(s xenbus.State) {
		switch s {
		case xenbus.StateInitWait:
			if !d.started {
				d.initRings()
			}
		case xenbus.StateConnected:
			if !d.ready {
				d.connect()
			}
		case xenbus.StateClosing, xenbus.StateClosed:
			d.backendGone()
		}
	})
}

// initRings negotiates the queue count, allocates per-queue rings and event
// channels, publishes everything, and moves to Initialised.
func (d *Device) initRings() {
	d.started = true
	st := d.bus.Store()
	nq := d.wantQueues
	if max := d.bus.ReadNumQueues(d.backPath, xenstore.KeyMultiQueueMaxQueues); nq > max {
		nq = max
	}

	ch := netif.NewChannel(nq)
	d.queues = make([]*queue, nq)
	for i := 0; i < nq; i++ {
		q := &queue{
			d:       d,
			id:      i,
			tx:      ch.Tx.Queue(i),
			rx:      ch.Rx.Queue(i),
			txSlots: make(map[uint16]*txSlot),
		}
		q.port = d.dom.AllocUnbound(d.backDom)
		if err := d.dom.SetHandler(q.port, q.onEvent); err != nil {
			panic(fmt.Sprintf("netfront: %v", err))
		}
		d.queues[i] = q
	}
	d.reg.Publish(d.dom.ID, d.devID, ch)

	if nq == 1 {
		// Legacy flat keys, exactly like a single-queue netfront.
		st.Writef(d.frontPath+"/"+xenstore.KeyTxRingRef, "%d", d.devID*2+1)
		st.Writef(d.frontPath+"/"+xenstore.KeyRxRingRef, "%d", d.devID*2+2)
		st.Writef(d.frontPath+"/"+xenstore.KeyEventChannel, "%d", d.queues[0].port)
	} else {
		d.bus.WriteNumQueues(d.frontPath, nq)
		st.Writef(d.frontPath+"/"+xenstore.KeyMultiQueueHashSeed, "%d", d.hashSeed)
		for i, q := range d.queues {
			qp := xenbus.QueuePath(d.frontPath, i)
			st.Writef(qp+"/"+xenstore.KeyTxRingRef, "%d", d.devID*16+i*2+1)
			st.Writef(qp+"/"+xenstore.KeyRxRingRef, "%d", d.devID*16+i*2+2)
			st.Writef(qp+"/"+xenstore.KeyEventChannel, "%d", q.port)
		}
	}
	st.Write(d.frontPath+"/"+xenstore.KeyMac, d.mac.String())
	d.bus.WriteFeature(d.frontPath, xenstore.KeyRequestRxCopy, true)
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateInitialised); err != nil {
		panic(fmt.Sprintf("netfront: %v", err))
	}
}

// connect finishes the handshake: post every queue's full Rx buffer set and
// go Connected.
func (d *Device) connect() {
	for _, q := range d.queues {
		for i := 0; i < netif.RingSize; i++ {
			page := d.dom.Arena.MustAlloc()
			ref := d.dom.GrantAccess(d.backDom, page, false)
			q.rxBufs[i] = rxBuf{page: page, ref: ref}
			if !q.rx.PushRequest(netif.RxRequest{ID: uint16(i), Ref: ref}) {
				panic("netfront: fresh rx ring full")
			}
		}
		if q.rx.PushRequestsAndCheckNotify() {
			d.dom.Notify(q.port)
		}
	}
	d.rxAlive = true
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateConnected); err != nil {
		panic(fmt.Sprintf("netfront: %v", err))
	}
	d.ready = true
	if d.onReady != nil {
		d.onReady()
	}
}

// backendGone quiesces the device when its backend disappears (driver
// domain crash/restart). Backlogged frames are released; sends fail until
// a new backend connects. Persistent Tx grants stay in place — the same
// slots are reused after a reattach (and EndAccess would fail anyway while
// the backend still holds mappings).
func (d *Device) backendGone() {
	if !d.ready {
		return
	}
	d.ready = false
	d.rxAlive = false
	for _, q := range d.queues {
		for q.txBacklog.Len() > 0 {
			q.txBacklog.Pop().Release()
		}
	}
}

// Send implements netstack.NetIf: steer the frame to its queue by RSS flow
// hash, copy it into a persistently granted page, push a Tx request, kick
// the backend. Send consumes the caller's buffer reference on every path,
// including failures.
//
//kite:hotpath
func (d *Device) Send(frame *framepool.Buf) bool {
	if !d.ready {
		frame.Release()
		return false
	}
	q := d.queues[d.rss.Queue(frame.Bytes(), len(d.queues))]
	if frame.Len() > mem.PageSize {
		q.stats.TxErrors++
		frame.Release()
		return false
	}
	if q.tx.Full() {
		if q.txBacklog.Len() >= txBacklogCap {
			q.stats.TxRingFull++
			frame.Release()
			return false
		}
		q.txBacklog.Push(frame)
		return true
	}
	if !q.pushTx(frame) {
		return false
	}
	if q.tx.PushRequestsAndCheckNotify() {
		d.dom.Notify(q.port)
	}
	return true
}

// pushTx copies one frame into a Tx slot and pushes its request, consuming
// the buffer reference. The caller batches the notify check.
func (q *queue) pushTx(frame *framepool.Buf) bool {
	slot, id, ok := q.allocTxSlot()
	if !ok {
		q.stats.TxErrors++
		frame.Release()
		return false
	}
	n := frame.Len()
	slot.page.CopyInto(0, frame.Bytes())
	slot.inFlight = true
	frame.Release()
	q.tx.PushRequest(netif.TxRequest{ID: id, Ref: slot.ref, Offset: 0, Len: n})
	q.stats.TxFrames++
	q.stats.TxBytes += uint64(n)
	return true
}

// allocTxSlot returns a free persistent Tx slot, lazily allocating and
// granting its page the first time an id is used.
func (q *queue) allocTxSlot() (*txSlot, uint16, bool) {
	if n := len(q.txFree); n > 0 {
		id := q.txFree[n-1]
		q.txFree = q.txFree[:n-1]
		return q.txSlots[id], id, true
	}
	d := q.d
	page, err := d.dom.Arena.Alloc()
	if err != nil {
		return nil, 0, false
	}
	q.txNext++
	id := q.txNext
	slot := &txSlot{page: page, ref: d.dom.GrantAccess(d.backDom, page, true)} //kite:alloc-ok tx-slot cache growth; steady state reuses slots
	q.txSlots[id] = slot                                                       //kite:alloc-ok tx-slot cache growth
	return slot, id, true
}

// onEvent is the queue's interrupt handler: reap Tx completions and deliver
// Rx frames for this queue only.
//
//kite:hotpath
func (q *queue) onEvent() {
	q.reapTx()
	q.reapRx()
}

func (q *queue) reapTx() {
	defer q.drainBacklog()
	for {
		rsp, ok := q.tx.TakeResponse()
		if !ok {
			if q.tx.FinalCheckForResponses() {
				continue
			}
			return
		}
		slot := q.txSlots[rsp.ID]
		if slot == nil || !slot.inFlight {
			continue // backend answered an unknown id; ignore
		}
		// The slot's page and grant persist; only the id is recycled.
		slot.inFlight = false
		q.txFree = append(q.txFree, rsp.ID)
		if rsp.Status != netif.StatusOK {
			q.stats.TxErrors++
		}
	}
}

func (q *queue) reapRx() {
	d := q.d
	posted := 0
	for {
		rsp, ok := q.rx.TakeResponse()
		if !ok {
			if q.rx.FinalCheckForResponses() {
				continue
			}
			break
		}
		buf := q.rxBufs[rsp.ID%netif.RingSize]
		if rsp.Status == netif.StatusOK && rsp.Len > 0 &&
			rsp.Offset >= 0 && rsp.Len <= framepool.MaxFrame &&
			rsp.Offset+rsp.Len <= mem.PageSize {
			q.stats.RxFrames++
			q.stats.RxBytes += uint64(rsp.Len)
			if d.recv != nil {
				b := d.pool.Get()
				copy(b.Extend(rsp.Len), buf.page.Data[rsp.Offset:rsp.Offset+rsp.Len])
				d.recv(b)
			}
		}
		// Recycle the same granted page (Linux netfront's page reuse).
		if d.rxAlive && q.rx.PushRequest(netif.RxRequest{ID: rsp.ID, Ref: buf.ref}) {
			posted++
		}
	}
	if posted > 0 && q.rx.PushRequestsAndCheckNotify() {
		d.dom.Notify(q.port)
	}
}

// EventPort returns queue 0's event channel port (read by the backend from
// xenstore during its handshake).
func (d *Device) EventPort() xen.Port {
	if len(d.queues) == 0 {
		return 0
	}
	return d.queues[0].port
}

// drainBacklog pushes queued qdisc frames into freed ring slots.
func (q *queue) drainBacklog() {
	pushed := false
	for q.txBacklog.Len() > 0 && !q.tx.Full() {
		if q.pushTx(q.txBacklog.Pop()) {
			pushed = true
		}
	}
	if pushed && q.tx.PushRequestsAndCheckNotify() {
		q.d.dom.Notify(q.port)
	}
}
