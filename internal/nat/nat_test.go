package nat

import (
	"bytes"
	"testing"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

func newT() (*sim.Engine, *Translator) {
	eng := sim.NewEngine()
	cpus := sim.NewCPUPool(eng, "dd", 1)
	return eng, New(eng, cpus, netpkt.IPv4(192, 0, 2, 1))
}

func udpPacket(src, dst netpkt.IP, sport, dport uint16, body string) []byte {
	u := netpkt.UDPHeader{SrcPort: sport, DstPort: dport}
	h := netpkt.IPv4Header{ID: 1, TTL: 64, Proto: netpkt.ProtoUDP, Src: src, Dst: dst}
	return h.Marshal(u.Marshal([]byte(body)))
}

func tcpPacket(src, dst netpkt.IP, sport, dport uint16, body string) []byte {
	th := netpkt.TCPHeader{SrcPort: sport, DstPort: dport, Seq: 1, Flags: netpkt.TCPAck}
	h := netpkt.IPv4Header{ID: 2, TTL: 64, Proto: netpkt.ProtoTCP, Src: src, Dst: dst}
	return h.Marshal(th.Marshal([]byte(body)))
}

var (
	guestIP  = netpkt.IPv4(10, 0, 0, 5)
	remoteIP = netpkt.IPv4(198, 51, 100, 9)
)

func TestOutboundRewritesSource(t *testing.T) {
	_, tr := newT()
	out := tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 4444, 53, "query"))
	if out == nil {
		t.Fatal("outbound dropped")
	}
	h, payload, err := netpkt.ParseIPv4(out)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != tr.Gateway || h.Dst != remoteIP {
		t.Fatalf("addresses = %v -> %v", h.Src, h.Dst)
	}
	u, body, _ := netpkt.ParseUDP(payload)
	if u.SrcPort == 4444 {
		t.Fatal("source port not rewritten")
	}
	if u.DstPort != 53 || string(body) != "query" {
		t.Fatal("destination/body corrupted")
	}
	if h.TTL != 63 {
		t.Fatalf("ttl = %d, want decremented", h.TTL)
	}
}

func TestRoundTripUDP(t *testing.T) {
	_, tr := newT()
	out := tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 4444, 53, "q"))
	_, p1, _ := netpkt.ParseIPv4(out)
	u1, _, _ := netpkt.ParseUDP(p1)

	// Reply comes back to the gateway at the allocated port.
	reply := udpPacket(remoteIP, tr.Gateway, 53, u1.SrcPort, "answer")
	in, dst := tr.TranslateInbound(reply)
	if in == nil {
		t.Fatal("inbound dropped")
	}
	if dst != guestIP {
		t.Fatalf("inbound delivered to %v", dst)
	}
	h, payload, _ := netpkt.ParseIPv4(in)
	u2, body, _ := netpkt.ParseUDP(payload)
	if h.Dst != guestIP || u2.DstPort != 4444 || string(body) != "answer" {
		t.Fatalf("inbound rewrite wrong: %v:%d %q", h.Dst, u2.DstPort, body)
	}
}

func TestRoundTripTCP(t *testing.T) {
	_, tr := newT()
	out := tr.TranslateOutbound(tcpPacket(guestIP, remoteIP, 50000, 80, "GET"))
	_, p1, _ := netpkt.ParseIPv4(out)
	t1, _, _ := netpkt.ParseTCP(p1)
	reply := tcpPacket(remoteIP, tr.Gateway, 80, t1.SrcPort, "200")
	in, dst := tr.TranslateInbound(reply)
	if in == nil || dst != guestIP {
		t.Fatal("tcp round trip failed")
	}
	_, p2, _ := netpkt.ParseIPv4(in)
	t2, body, _ := netpkt.ParseTCP(p2)
	if t2.DstPort != 50000 || !bytes.Equal(body, []byte("200")) {
		t.Fatal("tcp inbound rewrite wrong")
	}
}

func TestICMPEchoTranslation(t *testing.T) {
	_, tr := newT()
	e := netpkt.ICMPEcho{Type: netpkt.ICMPEchoRequest, ID: 77, Seq: 1}
	h := netpkt.IPv4Header{TTL: 64, Proto: netpkt.ProtoICMP, Src: guestIP, Dst: remoteIP}
	out := tr.TranslateOutbound(h.Marshal(e.Marshal(nil)))
	if out == nil {
		t.Fatal("icmp outbound dropped")
	}
	_, p1, _ := netpkt.ParseIPv4(out)
	e1, _, _ := netpkt.ParseICMPEcho(p1)
	if e1.ID == 77 {
		t.Fatal("echo id not rewritten")
	}
	// Reply with the external ID.
	re := netpkt.ICMPEcho{Type: netpkt.ICMPEchoReply, ID: e1.ID, Seq: 1}
	rh := netpkt.IPv4Header{TTL: 64, Proto: netpkt.ProtoICMP, Src: remoteIP, Dst: tr.Gateway}
	in, dst := tr.TranslateInbound(rh.Marshal(re.Marshal(nil)))
	if in == nil || dst != guestIP {
		t.Fatal("icmp inbound failed")
	}
	_, p2, _ := netpkt.ParseIPv4(in)
	e2, _, _ := netpkt.ParseICMPEcho(p2)
	if e2.ID != 77 {
		t.Fatalf("echo id not restored: %d", e2.ID)
	}
}

func TestFlowReuse(t *testing.T) {
	_, tr := newT()
	tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 4444, 53, "a"))
	tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 4444, 53, "b"))
	if tr.Flows() != 1 {
		t.Fatalf("flows = %d, want 1 (reused)", tr.Flows())
	}
	tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 4445, 53, "c"))
	if tr.Flows() != 2 {
		t.Fatalf("flows = %d, want 2", tr.Flows())
	}
}

func TestTwoGuestsSamePortDistinctFlows(t *testing.T) {
	_, tr := newT()
	g2 := netpkt.IPv4(10, 0, 0, 6)
	o1 := tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 7000, 53, "1"))
	o2 := tr.TranslateOutbound(udpPacket(g2, remoteIP, 7000, 53, "2"))
	_, p1, _ := netpkt.ParseIPv4(o1)
	_, p2, _ := netpkt.ParseIPv4(o2)
	u1, _, _ := netpkt.ParseUDP(p1)
	u2, _, _ := netpkt.ParseUDP(p2)
	if u1.SrcPort == u2.SrcPort {
		t.Fatal("two guests share an external port")
	}
	// Replies route back to the right guest.
	_, d1 := tr.TranslateInbound(udpPacket(remoteIP, tr.Gateway, 53, u1.SrcPort, "r1"))
	_, d2 := tr.TranslateInbound(udpPacket(remoteIP, tr.Gateway, 53, u2.SrcPort, "r2"))
	if d1 != guestIP || d2 != g2 {
		t.Fatalf("replies misrouted: %v %v", d1, d2)
	}
}

func TestUnsolicitedInboundDropped(t *testing.T) {
	_, tr := newT()
	in, _ := tr.TranslateInbound(udpPacket(remoteIP, tr.Gateway, 53, 30000, "scan"))
	if in != nil {
		t.Fatal("unsolicited inbound passed the NAT")
	}
	if tr.Stats().Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestStaticForward(t *testing.T) {
	_, tr := newT()
	if err := tr.AddForward(8080, guestIP, 80); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddForward(8080, guestIP, 81); err == nil {
		t.Fatal("duplicate forward accepted")
	}
	in, dst := tr.TranslateInbound(tcpPacket(remoteIP, tr.Gateway, 55555, 8080, "GET"))
	if in == nil || dst != guestIP {
		t.Fatal("forwarded packet dropped")
	}
	_, p, _ := netpkt.ParseIPv4(in)
	th, _, _ := netpkt.ParseTCP(p)
	if th.DstPort != 80 {
		t.Fatalf("forward port = %d, want 80", th.DstPort)
	}
}

func TestWrongDestinationDropped(t *testing.T) {
	_, tr := newT()
	in, _ := tr.TranslateInbound(udpPacket(remoteIP, netpkt.IPv4(9, 9, 9, 9), 53, 20001, "x"))
	if in != nil {
		t.Fatal("packet for foreign address translated")
	}
}

func TestExpireDropsIdleFlows(t *testing.T) {
	eng, tr := newT()
	tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 4444, 53, "a"))
	eng.RunUntil(10 * sim.Second)
	tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 5555, 53, "b")) // fresh
	if n := tr.Expire(5 * sim.Second); n != 1 {
		t.Fatalf("expired %d flows, want 1", n)
	}
	if tr.Flows() != 1 {
		t.Fatalf("flows after expire = %d", tr.Flows())
	}
}

func TestPortAllocationSkipsForwards(t *testing.T) {
	_, tr := newT()
	tr.nextPort = 29999
	tr.AddForward(30000, guestIP, 80)
	tr.TranslateOutbound(udpPacket(guestIP, remoteIP, 1, 53, "x"))
	for si := range tr.flows.shards {
		for _, f := range tr.flows.shards[si].slab {
			if f.used && f.extPort == 30000 {
				t.Fatal("flow allocated a forwarded port")
			}
		}
	}
}
