package blkback

import (
	"fmt"

	"kite/internal/sim"
	"kite/internal/xen"
)

// A ServiceLane is the fleet-mode execution unit of the storage backend:
// one request thread on one pinned vCPU serving the single-queue vbds of
// many tenant guests. The per-instance request threads that are right for
// a handful of guests do not survive hundreds — the task count explodes
// and a guest with a permanently full ring keeps its thread runnable
// forever, starving quieter tenants that share the vCPU. The lane
// replaces them with one deficit-round-robin worker: each active member
// earns a request quantum per round and its ring is drained only up to
// the accumulated deficit, so a tenant issuing 10x the I/O gets exactly
// its share per round and no more. Members with leftover backlog stay in
// the round; drained members leave and forfeit their deficit.
//
// Round state lives in a slot-indexed member slab — deficit, owed-response
// flag, and active-ring links packed per member — walked through an
// intrusive doubly-linked ring of backlogged members only: doorbell
// arrival re-links a member in O(1), teardown unlinks in O(1), and idle
// tenants are not in the ring and cost zero.
//
// Doorbells batch through one xen.Demux group per lane: every member
// port joins it and one scan per doorbell quantum serves the whole
// pending bitmap. Responses a round produces synchronously (parse
// errors) are published once per member at the end of the round instead
// of scheduling one publication event per respond call.
type ServiceLane struct {
	id     int
	eng    *sim.Engine
	cpu    *sim.CPU
	sq     int // the lane vCPU's NVMe submission queue
	demux  *xen.Demux
	worker *sim.Task

	// quantum is the DRR request allotment added to each active member
	// per round — several ring bursts, so a round moves useful work per
	// tenant; fairness does not depend on the exact value.
	quantum int

	// members is the slot-indexed slab of per-member round state; slots
	// are assigned at join, recycled through freeSlots at detach, and
	// addressed by ioQueue.laneSlot.
	members   []laneMember
	freeSlots []int32
	// head is the active ring: a circular doubly-linked list (slot
	// indices) of members with backlog, in activation order; -1 when
	// empty.
	head    int32
	activeN int
	// served is the round's scratch list of visited slots, reused so the
	// end-of-round response flush allocates nothing.
	served []int32
	// inRound is set while the worker executes a round: responds issued
	// synchronously under it defer their publication to the round's flush
	// pass instead of arming one batch event each.
	inRound bool

	rounds uint64
}

// laneMember is one tenant queue's round state, packed in the lane slab.
type laneMember struct {
	q       *ioQueue
	deficit int
	// notify records responses pushed during the round that still await
	// publication, flushed once per member at the end of the round.
	notify bool
	// next/prev are the active-ring links (slot indices); next == -1 means
	// the member is not backlogged and costs no round time.
	next, prev int32
}

// laneReqQuantum is the default per-tenant request allotment per round.
const laneReqQuantum = 32

// NewServiceLane creates fleet lane id for dom: worker pinned to the
// vCPU with index cpuIdx (which is also the lane's NVMe submission
// queue), doorbells demuxed at the costs' wake latency.
func NewServiceLane(id int, dom *xen.Domain, eng *sim.Engine, cpuIdx int, costs Costs) *ServiceLane {
	// Block lane workers currently share the driver shard (request threads
	// drain same-engine rings), so this declaration is a no-op today; if a
	// layout ever pins lanes onto their own cluster shards, the worker wake
	// latency is the conservative cross-shard edge bound, mirroring
	// netback's queue<->bridge declaration.
	sim.DeclareLink(dom.CPUs.CPU(cpuIdx%dom.CPUs.Len()).Engine(), eng, costs.WakeLatency)
	l := &ServiceLane{
		id: id, eng: eng, cpu: dom.CPUs.CPU(cpuIdx), sq: cpuIdx,
		quantum: laneReqQuantum, head: -1,
	}
	l.demux = dom.NewDemux(l.cpu, costs.WakeLatency)
	l.worker = sim.NewTask(eng, l.cpu, fmt.Sprintf("blkback/lane%d", id),
		costs.WakeLatency, l.round)
	return l
}

// ID returns the lane index.
func (l *ServiceLane) ID() int { return l.id }

// Members returns how many tenant queues have joined the lane's demux.
func (l *ServiceLane) Members() int { return l.demux.Members() }

// Rounds returns how many DRR rounds the worker has executed.
func (l *ServiceLane) Rounds() uint64 { return l.rounds }

// DemuxStats reports the lane's doorbell batching: scans executed and
// member doorbells absorbed into them.
func (l *ServiceLane) DemuxStats() (scans, marks uint64) { return l.demux.Stats() }

// join assigns q a member slot in the lane slab (recycling departed
// tenants' slots) and returns its index.
func (l *ServiceLane) join(q *ioQueue) int32 {
	var s int32
	if n := len(l.freeSlots); n > 0 {
		s = l.freeSlots[n-1]
		l.freeSlots = l.freeSlots[:n-1]
	} else {
		s = int32(len(l.members))
		l.members = append(l.members, laneMember{}) //kite:alloc-ok slab grows to the member high-water mark
	}
	l.members[s] = laneMember{q: q, next: -1, prev: -1}
	return s
}

// link appends slot s to the active ring's tail (activation order).
//
//kite:hotpath
//kite:ringlink link
func (l *ServiceLane) link(s int32) {
	m := &l.members[s]
	if l.head < 0 {
		m.next, m.prev = s, s
		l.head = s
	} else {
		tail := l.members[l.head].prev
		m.prev, m.next = tail, l.head
		l.members[tail].next = s
		l.members[l.head].prev = s
	}
	l.activeN++
}

// unlink removes slot s from the active ring in O(1).
//
//kite:hotpath
//kite:ringlink unlink
func (l *ServiceLane) unlink(s int32) {
	m := &l.members[s]
	if m.next == s {
		l.head = -1
	} else {
		l.members[m.prev].next = m.next
		l.members[m.next].prev = m.prev
		if l.head == s {
			l.head = m.next
		}
	}
	m.next, m.prev = -1, -1
	l.activeN--
}

// detach removes a departing tenant's queue from the lane: its doorbell
// leaves the demux group, any spot in the current DRR round is forfeited
// in O(1), and its slab slot returns to the free list. Runs during
// Instance.Shutdown, before the queue's port closes — a churning fleet
// must not pin one dead member slot per departure.
func (l *ServiceLane) detach(q *ioQueue) {
	l.demux.Leave(q.port)
	s := q.laneSlot
	if s < 0 {
		return
	}
	if l.members[s].next >= 0 {
		l.unlink(s)
	}
	l.members[s] = laneMember{next: -1, prev: -1}
	l.freeSlots = append(l.freeSlots, s)
	q.laneSlot = -1
}

// activate links q into the DRR round (if not already there) in O(1) and
// wakes the worker.
//
//kite:hotpath
func (l *ServiceLane) activate(q *ioQueue) {
	if l.members[q.laneSlot].next < 0 {
		l.link(q.laneSlot)
	}
	l.worker.Wake()
}

// round is the worker body: one deficit-round-robin pass over the active
// ring. Each backlogged member earns a quantum and its ring is drained
// against the accumulated deficit; a member stays linked only if budget —
// not work — ran out. The pass touches exactly the backlogged members,
// then publishes each served member's synchronously pushed responses at
// most once. Another round is scheduled while anyone still has backlog.
//
//kite:hotpath
func (l *ServiceLane) round() {
	n := l.activeN
	if n == 0 {
		return
	}
	l.rounds++
	l.inRound = true
	served := l.served[:0]
	s := l.head
	for i := 0; i < n; i++ {
		m := &l.members[s]
		next := m.next
		q := m.q
		m.deficit += l.quantum
		used, more := q.drainBudget(m.deficit)
		m.deficit -= used
		if !more {
			// Drained: leave the round and forfeit the unused deficit, so
			// idle tenants cannot bank credit against future backlogs.
			l.unlink(s)
			m.deficit = 0
		}
		served = append(served, s) //kite:alloc-ok scratch grows to the round high-water mark
		s = next
	}
	l.inRound = false
	// Publish owed responses once per round across members, back to back:
	// each served member raises at most one notification however many
	// respond calls the round made on its behalf.
	for _, s := range served {
		m := &l.members[s]
		if m.notify {
			m.notify = false
			m.q.flushResponses()
		}
	}
	l.served = served[:0]
	if l.activeN > 0 {
		l.worker.Wake()
	}
}
