package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestXskeys(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/xskeys", "testdata/src/xskeys", analyzers.Xskeys)
}
