package workload

import (
	"kite/internal/apps"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// PerfDHCPResult reports the DHCP benchmark (§5.5): average delay of the
// Discover→Offer and Request→Ack exchanges.
type PerfDHCPResult struct {
	Exchanges       int
	AvgDiscoverOfer sim.Time
	AvgRequestAck   sim.Time
}

// PerfDHCP performs count full DORA exchanges from the client, each with
// a distinct client MAC (perfdhcp -r).
func PerfDHCP(client *netstack.Host, count int, done func(PerfDHCPResult)) {
	eng := client.Stack.Engine()
	var doSum, raSum sim.Time
	completed := 0

	var sentAt sim.Time
	var curMAC netpkt.MAC
	var one func(i int)

	client.Stack.BindUDP(apps.DHCPClientPort, func(p netstack.UDPPacket) {
		m, err := apps.ParseDHCP(p.Data)
		if err != nil || m.ClientMAC != curMAC {
			return
		}
		switch m.MsgType {
		case apps.DHCPOffer:
			doSum += eng.Now() - sentAt
			req := &apps.DHCPMessage{Op: 1, XID: m.XID + 1, ClientMAC: curMAC,
				MsgType: apps.DHCPRequest, RequestedIP: m.YourIP}
			sentAt = eng.Now()
			client.Stack.SendUDP(netpkt.BroadcastIP, apps.DHCPServerPort,
				apps.DHCPClientPort, req.Marshal())
		case apps.DHCPAck:
			raSum += eng.Now() - sentAt
			completed++
			if completed == count {
				client.Stack.UnbindUDP(apps.DHCPClientPort)
				done(PerfDHCPResult{
					Exchanges:       completed,
					AvgDiscoverOfer: doSum / sim.Time(completed),
					AvgRequestAck:   raSum / sim.Time(completed),
				})
				return
			}
			one(completed)
		}
	})

	one = func(i int) {
		curMAC = netpkt.MAC{0x02, 0xdc, 0x9b, byte(i >> 16), byte(i >> 8), byte(i)}
		disc := &apps.DHCPMessage{Op: 1, XID: uint32(i*2 + 1), ClientMAC: curMAC,
			MsgType: apps.DHCPDiscover}
		sentAt = eng.Now()
		client.Stack.SendUDP(netpkt.BroadcastIP, apps.DHCPServerPort,
			apps.DHCPClientPort, disc.Marshal())
	}
	one(0)
}
