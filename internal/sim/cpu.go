package sim

import "fmt"

// CPU models one virtual CPU of a simulated machine or Xen domain. Work is
// charged to a CPU with Charge; concurrent charges serialize behind each
// other exactly like runnable work on a single core. The CPU keeps lifetime
// busy-time totals plus a resettable window so experiments can report
// utilization over a measurement interval (Figure 10b).
type CPU struct {
	eng  *Engine
	name string

	busyUntil Time // when currently queued work finishes
	busyTotal Time // lifetime busy nanoseconds

	windowStart Time
	windowBusy  Time
}

// NewCPU returns a CPU attached to eng. The name appears in diagnostics.
func NewCPU(eng *Engine, name string) *CPU {
	return &CPU{eng: eng, name: name, windowStart: eng.Now()}
}

// Name returns the identifier given at construction.
func (c *CPU) Name() string { return c.name }

// Engine returns the engine this CPU is attached to.
func (c *CPU) Engine() *Engine { return c.eng }

// Charge queues cost nanoseconds of work on the CPU and returns the virtual
// time at which that work completes. The work begins when all previously
// charged work has drained (or now, if the CPU is idle). Zero cost returns
// the current completion horizon without consuming time.
func (c *CPU) Charge(cost Time) Time {
	if cost < 0 {
		panic(fmt.Sprintf("sim: negative cpu cost %v on %s", cost, c.name))
	}
	start := c.eng.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	end := start + cost
	c.busyUntil = end
	c.busyTotal += cost
	c.windowBusy += cost
	return end
}

// Exec charges cost and schedules fn at the completion time. It is the
// common "do work, then produce the effect" idiom.
func (c *CPU) Exec(cost Time, fn func()) {
	done := c.Charge(cost)
	c.eng.Schedule(done, fn)
}

// FreeAt returns the time at which the CPU becomes idle given already
// queued work.
func (c *CPU) FreeAt() Time {
	if c.busyUntil > c.eng.Now() {
		return c.busyUntil
	}
	return c.eng.Now()
}

// BusyTotal returns lifetime busy nanoseconds.
func (c *CPU) BusyTotal() Time { return c.busyTotal }

// ResetWindow starts a new utilization measurement window at the current
// virtual time.
func (c *CPU) ResetWindow() {
	c.windowStart = c.eng.Now()
	c.windowBusy = 0
}

// WindowUtilization returns busy/elapsed for the current window in [0,1].
// If no time has elapsed it returns 0.
func (c *CPU) WindowUtilization() float64 {
	elapsed := c.eng.Now() - c.windowStart
	if elapsed <= 0 {
		return 0
	}
	u := float64(c.windowBusy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// CPUPool is a set of identical CPUs (an SMP domain). Charges are placed on
// the CPU that frees up earliest, which approximates a work-conserving
// scheduler.
type CPUPool struct {
	cpus       []*CPU
	lastCharge Time
}

// NewCPUPool creates n CPUs named prefix/0..n-1.
func NewCPUPool(eng *Engine, prefix string, n int) *CPUPool {
	if n <= 0 {
		panic("sim: CPU pool needs at least one CPU")
	}
	p := &CPUPool{lastCharge: -1 << 60} // sentinel: never charged
	for i := 0; i < n; i++ {
		p.cpus = append(p.cpus, NewCPU(eng, fmt.Sprintf("%s/%d", prefix, i)))
	}
	return p
}

// Len returns the number of CPUs in the pool.
func (p *CPUPool) Len() int { return len(p.cpus) }

// CPU returns the i-th CPU.
func (p *CPUPool) CPU(i int) *CPU { return p.cpus[i] }

// Pick returns the CPU that will become free earliest.
func (p *CPUPool) Pick() *CPU {
	best := p.cpus[0]
	for _, c := range p.cpus[1:] {
		if c.FreeAt() < best.FreeAt() {
			best = c
		}
	}
	return best
}

// Charge places cost on the earliest-free CPU and returns completion time.
func (p *CPUPool) Charge(cost Time) Time {
	end := p.Pick().Charge(cost)
	if end > p.lastCharge {
		p.lastCharge = end
	}
	return end
}

// RecentlyActive reports whether any CPU in the pool ran work within the
// past `window` (or is running now). Used by the interrupt model: a VM
// that executed recently takes upcalls warm instead of paying the full
// idle-wake latency.
func (p *CPUPool) RecentlyActive(now, window Time) bool {
	return p.lastCharge+window >= now
}

// Exec charges cost on the earliest-free CPU and schedules fn at completion.
func (p *CPUPool) Exec(cost Time, fn func()) { p.Pick().Exec(cost, fn) }

// ResetWindows resets the utilization window on every CPU.
func (p *CPUPool) ResetWindows() {
	for _, c := range p.cpus {
		c.ResetWindow()
	}
}

// BusyTotal returns the summed lifetime busy time across the pool.
func (p *CPUPool) BusyTotal() Time {
	var total Time
	for _, c := range p.cpus {
		total += c.busyTotal
	}
	return total
}

// WindowUtilization returns the mean utilization across the pool's CPUs for
// the current window.
func (p *CPUPool) WindowUtilization() float64 {
	var sum float64
	for _, c := range p.cpus {
		sum += c.WindowUtilization()
	}
	return sum / float64(len(p.cpus))
}
