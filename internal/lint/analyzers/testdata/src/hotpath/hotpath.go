// Package hotpath exercises the kitelint hotpath analyzer: annotated
// roots, transitive descent, the high-water scratch idiom, cold blocks,
// and the directive escapes.
package hotpath

import "fmt"

type pool struct {
	free    []*buf
	scratch []int
}

type buf struct{ n int }

type sink interface{ accept(v any) }

//kite:hotpath
func hot(p *pool, s sink, v int) *buf {
	bad := make([]byte, 64) // want `allocation \(make\)`
	_ = bad
	lit := []int{1, 2, 3} // want `slice literal allocation`
	_ = lit
	b := &buf{n: v}                  // want `heap allocation \(&composite literal\)`
	cb := func() { p.scratch = nil } // want `closure allocation`
	cb()
	s.accept(v)                      // want `interface boxing \(argument\)`
	p.scratch = append(p.scratch, v) // high-water scratch: clean
	ok := p.get()
	helper(p, v)
	if v < 0 {
		// This block terminates in panic, so it is cold: the Sprintf
		// call and its boxing are not steady-state allocations.
		panic(fmt.Sprintf("bad v %d", v))
	}
	warm(p)
	_ = ok
	return b
}

// helper is reached transitively from hot and checked just as strictly.
func helper(p *pool, v int) {
	m := map[int]int{} // want `map literal allocation`
	m[v] = v           // want `map insert`
	p.scratch = append(p.scratch, v)
}

// get grows its free list only until the high-water mark.
func (p *pool) get() *buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &buf{} //kite:alloc-ok fixture: pool growth on free-list miss
}

// warm runs once at connect time, never in steady state.
//
//kite:coldpath fixture: warmup only
func warm(p *pool) {
	p.free = make([]*buf, 0, 8)
}

// neverMarked is not reachable from a hot root; it may allocate freely.
func neverMarked() []byte { return make([]byte, 1) }
