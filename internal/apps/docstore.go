package apps

import (
	"fmt"

	"kite/internal/fsim"
	"kite/internal/sim"
)

// DocStore stands in for MongoDB (Fig 15): a collection of large
// documents stored as files, accessed with multi-megabyte I/O and
// periodic journal syncs — the access pattern filebench's mongo
// personality generates.
type DocStore struct {
	eng  *sim.Engine
	fs   *fsim.FS
	cpus *sim.CPUPool

	// PerOp models BSON (de)serialization and index lookup.
	PerOp sim.Time

	inserted, read uint64
}

// NewDocStore creates a document store over fs.
func NewDocStore(eng *sim.Engine, fs *fsim.FS, cpus *sim.CPUPool) *DocStore {
	return &DocStore{eng: eng, fs: fs, cpus: cpus, PerOp: 25 * sim.Microsecond}
}

// Ops returns (inserts, reads).
func (d *DocStore) Ops() (inserts, reads uint64) { return d.inserted, d.read }

func (d *DocStore) docName(id int) string { return fmt.Sprintf("doc.%06d", id) }

// Insert stores a document of the given size.
func (d *DocStore) Insert(id int, size int, cb func(err error)) {
	d.inserted++
	d.cpus.Charge(d.PerOp)
	f, err := d.fs.Create(d.docName(id))
	if err != nil {
		// Overwrite semantics: replace an existing document.
		if f, err = d.fs.Open(d.docName(id)); err != nil {
			d.eng.After(0, func() { cb(err) })
			return
		}
	}
	body := make([]byte, size)
	sim.NewRand(uint64(id) | 1).Bytes(body[:min(size, 4096)]) // header entropy
	d.fs.Write(f, 0, body, cb)
}

// Read fetches a whole document.
func (d *DocStore) Read(id int, cb func(doc []byte, err error)) {
	d.read++
	d.cpus.Charge(d.PerOp)
	f, err := d.fs.Open(d.docName(id))
	if err != nil {
		d.eng.After(0, func() { cb(nil, err) })
		return
	}
	d.fs.Read(f, 0, int(f.Size()), cb)
}

// SyncJournal forces the store's data to disk.
func (d *DocStore) SyncJournal(cb func(err error)) {
	d.cpus.Charge(d.PerOp)
	d.fs.Sync(cb)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
