// Package netpkt defines the wire formats used by the simulated network:
// Ethernet II frames, ARP, IPv4 (with fragmentation), ICMP echo, UDP, and
// a TCP subset. Packets are serialized to real bytes because frames cross
// the PV driver path through grant-copied pages, and end-to-end integrity
// of those bytes is part of what the tests verify.
package netpkt

import (
	"encoding/binary"
	"fmt"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String renders the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones MAC.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// XenMAC returns a MAC in the Xen OUI (00:16:3e) range, as the toolstack
// assigns to vifs.
func XenMAC(domid uint16, dev byte) MAC {
	return MAC{0x00, 0x16, 0x3e, byte(domid >> 8), byte(domid), dev}
}

// IP is an IPv4 address.
type IP [4]byte

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IPv4 returns an IP from four octets.
func IPv4(a, b, c, d byte) IP { return IP{a, b, c, d} }

// BroadcastIP is the limited broadcast address.
var BroadcastIP = IP{255, 255, 255, 255}

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// EthHeaderLen is the Ethernet II header size.
const EthHeaderLen = 14

// IPHeaderLen is our fixed (option-less) IPv4 header size.
const IPHeaderLen = 20

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// TCPHeaderLen is our fixed (option-less) TCP header size.
const TCPHeaderLen = 20

// ICMPHeaderLen is the ICMP echo header size.
const ICMPHeaderLen = 8

// MTU is the Ethernet payload limit used throughout the testbed.
const MTU = 1500

// Frame is a parsed Ethernet frame.
type Frame struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte
}

// Marshal serializes the frame. Allocating wrapper over HeaderInto; hot
// paths build frames in pooled buffers instead.
func (f *Frame) Marshal() []byte {
	b := make([]byte, EthHeaderLen+len(f.Payload))
	f.HeaderInto(b)
	copy(b[EthHeaderLen:], f.Payload)
	return b
}

// ParseFrame deserializes an Ethernet frame.
func ParseFrame(b []byte) (*Frame, error) {
	f, ok := DecodeFrame(b)
	if !ok {
		return nil, fmt.Errorf("netpkt: frame too short (%d bytes)", len(b))
	}
	return &f, nil
}

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ARPLen is the serialized size of an IPv4-over-Ethernet ARP body.
const ARPLen = 28

// ARP is an IPv4-over-Ethernet ARP packet.
type ARP struct {
	Op                   uint16 // 1 request, 2 reply
	SenderMAC, TargetMAC MAC
	SenderIP, TargetIP   IP
}

// ARP opcodes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// Marshal serializes the ARP body (without Ethernet header).
func (a *ARP) Marshal() []byte {
	b := make([]byte, 28)
	a.MarshalInto(b)
	return b
}

// ParseARP deserializes an ARP body.
func ParseARP(b []byte) (*ARP, error) {
	a, ok := DecodeARP(b)
	if !ok {
		return nil, fmt.Errorf("netpkt: arp too short (%d bytes)", len(b))
	}
	return &a, nil
}

// IPv4Header is a parsed option-less IPv4 header.
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	Flags    uint8  // bit 0 = more fragments (we ignore DF)
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Proto    uint8
	Src, Dst IP
}

// MoreFragments flag bit.
const FlagMoreFragments = 1

// Marshal serializes the header followed by payload, computing checksum
// and total length.
func (h *IPv4Header) Marshal(payload []byte) []byte {
	b := make([]byte, IPHeaderLen+len(payload))
	h.HeaderInto(b, len(payload))
	copy(b[IPHeaderLen:], payload)
	return b
}

// ParseIPv4 deserializes an IPv4 packet, verifying the header checksum,
// and returns the header and payload.
func ParseIPv4(b []byte) (*IPv4Header, []byte, error) {
	h, payload, ok := DecodeIPv4(b)
	if !ok {
		return nil, nil, fmt.Errorf("netpkt: invalid ipv4 packet (%d bytes)", len(b))
	}
	return &h, payload, nil
}

// UDPHeader is a parsed UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// Marshal serializes header + payload (checksum omitted, as permitted for
// IPv4 UDP).
func (u *UDPHeader) Marshal(payload []byte) []byte {
	b := make([]byte, UDPHeaderLen+len(payload))
	u.HeaderInto(b, len(payload))
	copy(b[UDPHeaderLen:], payload)
	return b
}

// ParseUDP deserializes a UDP datagram.
func ParseUDP(b []byte) (*UDPHeader, []byte, error) {
	u, payload, ok := DecodeUDP(b)
	if !ok {
		return nil, nil, fmt.Errorf("netpkt: invalid udp datagram (%d bytes)", len(b))
	}
	return &u, payload, nil
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeader is a parsed option-less TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// Marshal serializes header + payload.
func (t *TCPHeader) Marshal(payload []byte) []byte {
	b := make([]byte, TCPHeaderLen+len(payload))
	t.HeaderInto(b)
	copy(b[TCPHeaderLen:], payload)
	return b
}

// ParseTCP deserializes a TCP segment.
func ParseTCP(b []byte) (*TCPHeader, []byte, error) {
	t, payload, ok := DecodeTCP(b)
	if !ok {
		return nil, nil, fmt.Errorf("netpkt: invalid tcp segment (%d bytes)", len(b))
	}
	return &t, payload, nil
}

// ICMP echo types.
const (
	ICMPEchoRequest = 8
	ICMPEchoReply   = 0
)

// ICMPEcho is a parsed ICMP echo request/reply.
type ICMPEcho struct {
	Type    uint8
	ID, Seq uint16
}

// Marshal serializes the echo message with a valid checksum.
func (e *ICMPEcho) Marshal(payload []byte) []byte {
	b := make([]byte, ICMPHeaderLen+len(payload))
	copy(b[ICMPHeaderLen:], payload)
	e.MarshalInto(b)
	return b
}

// ParseICMPEcho deserializes and checksum-verifies an echo message.
func ParseICMPEcho(b []byte) (*ICMPEcho, []byte, error) {
	e, payload, ok := DecodeICMPEcho(b)
	if !ok {
		return nil, nil, fmt.Errorf("netpkt: invalid icmp echo (%d bytes)", len(b))
	}
	return &e, payload, nil
}
