package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed generator appears stuck")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64MeanRoughlyHalf(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(13)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(17)
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal mean=%v var=%v, want ~0/~1", mean, variance)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(19)
	base := Time(1000)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(base, 0.1)
		if v < 900 || v > 1100 {
			t.Fatalf("Jitter(1000, 0.1) = %v out of [900,1100]", v)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("Jitter with factor 0 changed the value")
	}
}

func TestBytesFillsEverything(t *testing.T) {
	r := NewRand(23)
	for _, n := range []int{0, 1, 7, 8, 9, 4096} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 64 {
			zeros := 0
			for _, v := range b {
				if v == 0 {
					zeros++
				}
			}
			if zeros > n/8 {
				t.Fatalf("Bytes(%d) left %d zero bytes, looks unfilled", n, zeros)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRand(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeStringUnits(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		3 * Microsecond: "3.000us",
		2 * Millisecond: "2.000ms",
		7 * Second:      "7.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}
