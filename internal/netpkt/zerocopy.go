package netpkt

import "encoding/binary"

// This file holds the allocation-free marshal/decode layer used by the hot
// data path. The *Into marshal functions write headers into caller-provided
// windows (typically framepool.Buf.Prepend slices) so Ethernet+IP+L4
// encapsulation fills one buffer once; the Decode* functions return header
// values (not pointers) with payload sub-slices aliasing the input, so
// nothing escapes to the heap. The original Marshal/Parse* APIs in
// netpkt.go remain as thin allocating wrappers for tests and cold paths.

// HeaderInto writes the 14-byte Ethernet header into hdr.
func (f *Frame) HeaderInto(hdr []byte) {
	_ = hdr[EthHeaderLen-1]
	copy(hdr[0:6], f.Dst[:])
	copy(hdr[6:12], f.Src[:])
	binary.BigEndian.PutUint16(hdr[12:14], f.EtherType)
}

// DecodeFrame parses an Ethernet frame without allocating. Payload aliases b.
func DecodeFrame(b []byte) (f Frame, ok bool) {
	if len(b) < EthHeaderLen {
		return Frame{}, false
	}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.EtherType = binary.BigEndian.Uint16(b[12:14])
	f.Payload = b[EthHeaderLen:]
	return f, true
}

// MarshalInto writes the 28-byte ARP body into b and returns its length.
func (a *ARP) MarshalInto(b []byte) int {
	_ = b[27]
	binary.BigEndian.PutUint16(b[0:2], 1)      // htype ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // ptype ipv4
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	copy(b[14:18], a.SenderIP[:])
	copy(b[18:24], a.TargetMAC[:])
	copy(b[24:28], a.TargetIP[:])
	return 28
}

// DecodeARP parses an ARP body without allocating.
func DecodeARP(b []byte) (a ARP, ok bool) {
	if len(b) < 28 {
		return ARP{}, false
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, true
}

// HeaderInto writes the 20-byte IPv4 header (with checksum) into hdr for a
// packet carrying payloadLen payload bytes, updating h.TotalLen.
func (h *IPv4Header) HeaderInto(hdr []byte, payloadLen int) {
	_ = hdr[IPHeaderLen-1]
	h.TotalLen = uint16(IPHeaderLen + payloadLen)
	hdr[0] = 0x45 // v4, ihl 5
	hdr[1] = 0
	binary.BigEndian.PutUint16(hdr[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(hdr[4:6], h.ID)
	ff := uint16(h.Flags&FlagMoreFragments)<<13 | (h.FragOff & 0x1fff)
	binary.BigEndian.PutUint16(hdr[6:8], ff)
	hdr[8] = h.TTL
	hdr[9] = h.Proto
	hdr[10], hdr[11] = 0, 0
	copy(hdr[12:16], h.Src[:])
	copy(hdr[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(hdr[10:12], Checksum(hdr[:IPHeaderLen]))
}

// DecodeIPv4 parses and checksum-verifies an IPv4 packet without
// allocating. The payload aliases b.
func DecodeIPv4(b []byte) (h IPv4Header, payload []byte, ok bool) {
	if len(b) < IPHeaderLen {
		return IPv4Header{}, nil, false
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, nil, false
	}
	if ihl := int(b[0]&0xf) * 4; ihl != IPHeaderLen {
		return IPv4Header{}, nil, false
	}
	if Checksum(b[:IPHeaderLen]) != 0 {
		return IPv4Header{}, nil, false
	}
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) > len(b) || h.TotalLen < IPHeaderLen {
		return IPv4Header{}, nil, false
	}
	return h, b[IPHeaderLen:h.TotalLen], true
}

// HeaderInto writes the 8-byte UDP header into hdr for payloadLen payload
// bytes, updating u.Length. Checksum is omitted as permitted for IPv4 UDP.
func (u *UDPHeader) HeaderInto(hdr []byte, payloadLen int) {
	_ = hdr[UDPHeaderLen-1]
	u.Length = uint16(UDPHeaderLen + payloadLen)
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], u.Length)
	hdr[6], hdr[7] = 0, 0
}

// DecodeUDP parses a UDP datagram without allocating.
func DecodeUDP(b []byte) (u UDPHeader, payload []byte, ok bool) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, nil, false
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	if int(u.Length) > len(b) || u.Length < UDPHeaderLen {
		return UDPHeader{}, nil, false
	}
	return u, b[UDPHeaderLen:u.Length], true
}

// HeaderInto writes the 20-byte option-less TCP header into hdr.
func (t *TCPHeader) HeaderInto(hdr []byte) {
	_ = hdr[TCPHeaderLen-1]
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = 5 << 4 // data offset
	hdr[13] = t.Flags
	binary.BigEndian.PutUint16(hdr[14:16], t.Window)
	hdr[16], hdr[17], hdr[18], hdr[19] = 0, 0, 0, 0
}

// DecodeTCP parses a TCP segment without allocating.
func DecodeTCP(b []byte) (t TCPHeader, payload []byte, ok bool) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, nil, false
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return TCPHeader{}, nil, false
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	return t, b[off:], true
}

// MarshalInto writes the 8-byte ICMP echo header at the start of b and
// checksums the whole message. The caller must have placed the payload at
// b[8:] already (or zeroed it).
func (e *ICMPEcho) MarshalInto(b []byte) {
	_ = b[ICMPHeaderLen-1]
	b[0] = e.Type
	b[1] = 0
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], e.ID)
	binary.BigEndian.PutUint16(b[6:8], e.Seq)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
}

// DecodeICMPEcho parses and checksum-verifies an echo message without
// allocating.
func DecodeICMPEcho(b []byte) (e ICMPEcho, payload []byte, ok bool) {
	if len(b) < ICMPHeaderLen {
		return ICMPEcho{}, nil, false
	}
	if Checksum(b) != 0 {
		return ICMPEcho{}, nil, false
	}
	e.Type = b[0]
	e.ID = binary.BigEndian.Uint16(b[4:6])
	e.Seq = binary.BigEndian.Uint16(b[6:8])
	return e, b[ICMPHeaderLen:], true
}
