// Package nvme models the testbed's NVMe SSD (Samsung 970 EVO Plus 500 GB,
// Table 2): a block device with multiple parallel channels, per-command
// base latency, and direction-dependent bandwidth caps. Data is stored for
// real (sparse 4 KiB blocks), so storage-path tests verify end-to-end
// integrity, not just timing.
//
// The data-path entry points are the scatter-gather commands ReadVec and
// WriteVec: blkback hands down an iovec of grant-mapped page views and the
// device copies between those views and its sparse store directly, with no
// intermediate flattened buffer. The device itself allocates nothing in
// steady state: store blocks are carved from a slab (one allocation per 64
// blocks, first touch only), partial-block writes stage through a single
// reusable scratch block, and completion callbacks ride pooled pending
// structs whose timer closures are created once and recycled forever.
package nvme

import (
	"fmt"

	"kite/internal/metrics"
	"kite/internal/sim"
)

// SectorSize is the logical block size.
const SectorSize = 512

// blockSize is the sparse-store granularity.
const blockSize = 4096

// slabBlocks is how many store blocks one slab allocation carves into:
// first-touch writes cost one make per 64 blocks instead of one per block.
const slabBlocks = 64

// Op is a device command type.
type Op int

// Command types.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Config describes the device.
type Config struct {
	Name          string
	CapacityBytes int64
	Channels      int      // parallel flash channels (queue-depth parallelism)
	ReadLatency   sim.Time // per-command base
	WriteLatency  sim.Time // per-command base (write cache absorbs)
	FlushLatency  sim.Time
	ReadBps       int64 // sustained read bandwidth
	WriteBps      int64 // sustained write bandwidth
	// RandomPenalty is added to a command's completion latency when it
	// does not continue the previous command's LBA range (flash
	// translation + NAND page open). It overlaps across queued commands —
	// parallel random I/O scales until the bus saturates.
	RandomPenalty sim.Time
	// CmdOverhead is per-command time on the shared bus (submission,
	// doorbell, completion) that does NOT overlap — what makes many small
	// commands slower than one merged command (§3.3's batching win).
	CmdOverhead sim.Time
}

// Default970EvoPlus returns the testbed device model.
func Default970EvoPlus() Config {
	return Config{
		Name:          "nvme0n1",
		CapacityBytes: 500 << 30,
		Channels:      8,
		ReadLatency:   65 * sim.Microsecond,
		WriteLatency:  20 * sim.Microsecond,
		FlushLatency:  150 * sim.Microsecond,
		ReadBps:       3_500_000_000,
		WriteBps:      3_200_000_000,
		RandomPenalty: 260 * sim.Microsecond,
		CmdOverhead:   8 * sim.Microsecond,
	}
}

// Stats counts device activity.
type Stats struct {
	ReadOps, WriteOps, FlushOps uint64
	VecReads, VecWrites         uint64 // scatter-gather commands
	ReadBytes, WriteBytes       uint64
}

// Device is the simulated SSD.
type Device struct {
	eng *sim.Engine
	cfg Config
	bdf string

	blocks map[int64][]byte // sparse store
	slab   []byte           // spare capacity carved into store blocks
	// scratch is the single reusable staging block for partial-block
	// writes into not-yet-resident blocks: the merged full-block image is
	// assembled here, then committed to a freshly carved block. It
	// replaces the old per-write `make([]byte, blockSize)` staging.
	scratch [blockSize]byte

	// pendFree recycles in-flight command records; each carries a timer
	// closure created once, so issuing a command never allocates.
	pendFree []*pending

	// busBusyUntil serializes data transfers: bandwidth is a device-wide
	// resource. Per-command base latency overlaps across commands
	// (channel/queue parallelism).
	busBusyUntil sim.Time
	// sqs are the per-submission-queue timelines: command fetch + doorbell
	// overhead (CmdOverhead) serializes only within one SQ, so commands
	// submitted on distinct queues overlap their overhead — the reason
	// multi-queue submission scales small-command throughput while the data
	// bus stays a device-wide resource. Queue 0 always exists; others are
	// created on first use. Sequentiality is tracked per queue, matching a
	// striped submitter whose streams are each sequential.
	sqs   []sqState
	stats Stats
}

// sqState is one submission queue's private timeline.
type sqState struct {
	busyUntil sim.Time
	lastEnd   int64 // sector following this queue's previous command
}

// New creates a device with the given PCI BDF.
func New(eng *sim.Engine, cfg Config, bdf string) *Device {
	return &Device{
		eng:    eng,
		cfg:    cfg,
		bdf:    bdf,
		blocks: make(map[int64][]byte),
	}
}

// BDF returns the PCI address for passthrough assignment.
func (d *Device) BDF() string { return d.bdf }

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// CapacitySectors returns the number of logical sectors.
func (d *Device) CapacitySectors() int64 { return d.cfg.CapacityBytes / SectorSize }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// pending is one in-flight command awaiting its completion time.
type pending struct {
	d      *Device
	cb     func(err error)
	iov    [][]byte // read gather targets; nil for writes
	sector int64
	err    error
	run    func() // created once, reused across recycles
}

func (d *Device) getPending() *pending {
	if n := len(d.pendFree); n > 0 {
		p := d.pendFree[n-1]
		d.pendFree = d.pendFree[:n-1]
		return p
	}
	p := &pending{d: d} //kite:alloc-ok pool growth on free-list miss; steady state recycles
	p.run = p.fire
	return p
}

// fire delivers one command completion. Reads gather from the store at
// completion time (the moment the simulated DMA finishes), matching the
// pre-vectored behaviour where Read copied out in its completion event.
func (p *pending) fire() {
	d, cb, iov, sector, err := p.d, p.cb, p.iov, p.sector, p.err
	p.cb, p.iov, p.err = nil, nil, nil
	d.pendFree = append(d.pendFree, p)
	if err == nil && iov != nil {
		off := sector * SectorSize
		for _, seg := range iov {
			d.readRange(off, seg)
			off += int64(len(seg))
		}
	}
	cb(err)
}

// complete books the command on the bus and schedules its pooled pending
// record at the completion time.
func (d *Device) complete(queue int, op Op, sector int64, n int, iov [][]byte, cb func(err error)) {
	done := d.completionTime(queue, op, sector, n)
	p := d.getPending()
	p.cb, p.iov, p.sector, p.err = cb, iov, sector, nil
	d.eng.Schedule(done, p.run)
}

// sq returns submission queue i's timeline, growing the set on first use.
func (d *Device) sq(i int) *sqState {
	for len(d.sqs) <= i {
		d.sqs = append(d.sqs, sqState{})
	}
	return &d.sqs[i]
}

// completionTime books one command: fetch + doorbell overhead serializes on
// the submission queue, the data transfer serializes on the device-wide
// bus, and the overlappable base latency rides on top. With a single queue
// this reduces exactly to the pre-multi-queue timeline (overhead and
// transfer back to back after max(now, busy)). Non-sequential commands
// (per queue) pay the random-access penalty.
func (d *Device) completionTime(queue int, op Op, sector int64, n int) sim.Time {
	var bps int64
	var lat sim.Time
	if op == OpRead {
		bps, lat = d.cfg.ReadBps, d.cfg.ReadLatency
	} else {
		bps, lat = d.cfg.WriteBps, d.cfg.WriteLatency
	}
	q := d.sq(queue)
	start := d.eng.Now()
	if q.busyUntil > start {
		start = q.busyUntil
	}
	fetchEnd := start + d.cfg.CmdOverhead
	busStart := fetchEnd
	if d.busBusyUntil > busStart {
		busStart = d.busBusyUntil
	}
	busEnd := busStart + sim.Time(int64(n)*int64(sim.Second)/bps)
	if sector != q.lastEnd {
		lat += d.cfg.RandomPenalty
	}
	q.lastEnd = sector + int64(n/SectorSize)
	q.busyUntil = busEnd
	d.busBusyUntil = busEnd
	return busEnd + lat
}

// ReadVec reads into the iovec's segment views, starting at sector; cb
// fires at command completion, after the data has been gathered. The
// segments must stay valid (and unwritten by the caller) until then —
// ownership transfers to the device for the life of the command.
func (d *Device) ReadVec(sector int64, iov [][]byte, cb func(err error)) {
	d.ReadVecQ(0, sector, iov, cb)
}

// ReadVecQ is ReadVec submitted on a specific hardware queue: command
// overhead overlaps with other queues' commands, the data bus serializes.
func (d *Device) ReadVecQ(queue int, sector int64, iov [][]byte, cb func(err error)) {
	n := vecBytes(iov)
	if err := d.check(sector, n); err != nil {
		d.eng.After(0, func() { cb(err) }) //kite:alloc-ok error delivery; well-formed commands never take it
		return
	}
	d.stats.ReadOps++
	d.stats.VecReads++
	d.stats.ReadBytes += uint64(n)
	metrics.NVMeVecReads.Add(1)
	d.complete(queue, OpRead, sector, n, iov, cb)
}

// WriteVec gathers the iovec's segment views into the store at sector; cb
// fires at command completion. Like Write, the data lands in the store
// immediately (write cache); timing models the command completion, and the
// segments may be reused as soon as WriteVec returns.
func (d *Device) WriteVec(sector int64, iov [][]byte, cb func(err error)) {
	d.WriteVecQ(0, sector, iov, cb)
}

// WriteVecQ is WriteVec submitted on a specific hardware queue.
func (d *Device) WriteVecQ(queue int, sector int64, iov [][]byte, cb func(err error)) {
	n := vecBytes(iov)
	if err := d.check(sector, n); err != nil {
		d.eng.After(0, func() { cb(err) }) //kite:alloc-ok error delivery; well-formed commands never take it
		return
	}
	d.stats.WriteOps++
	d.stats.VecWrites++
	d.stats.WriteBytes += uint64(n)
	metrics.NVMeVecWrites.Add(1)
	off := sector * SectorSize
	for _, seg := range iov {
		d.writeBytesAt(off, seg)
		off += int64(len(seg))
	}
	d.complete(queue, OpWrite, sector, n, nil, cb)
}

func vecBytes(iov [][]byte) int {
	n := 0
	for _, seg := range iov {
		n += len(seg)
	}
	return n
}

// Read reads n bytes starting at sector into a fresh buffer; cb fires at
// command completion. Kept for raw-device callers and tests; the PV data
// path uses ReadVec.
func (d *Device) Read(sector int64, n int, cb func(data []byte, err error)) {
	if err := d.check(sector, n); err != nil {
		d.eng.After(0, func() { cb(nil, err) })
		return
	}
	d.stats.ReadOps++
	d.stats.ReadBytes += uint64(n)
	done := d.completionTime(0, OpRead, sector, n)
	d.eng.Schedule(done, func() {
		out := make([]byte, n)
		d.readRange(sector*SectorSize, out)
		cb(out, nil)
	})
}

// Write stores data at sector; cb fires at command completion.
func (d *Device) Write(sector int64, data []byte, cb func(err error)) {
	if err := d.check(sector, len(data)); err != nil {
		d.eng.After(0, func() { cb(err) })
		return
	}
	d.stats.WriteOps++
	d.stats.WriteBytes += uint64(len(data))
	d.writeBytesAt(sector*SectorSize, data)
	done := d.completionTime(0, OpWrite, sector, len(data))
	d.eng.Schedule(done, func() { cb(nil) })
}

// Flush completes when all in-flight commands have drained.
func (d *Device) Flush(cb func(err error)) {
	d.stats.FlushOps++
	latest := d.eng.Now()
	if d.busBusyUntil > latest {
		latest = d.busBusyUntil
	}
	// The flush must also outlast the base latency of in-flight writes.
	latest += d.cfg.WriteLatency
	p := d.getPending()
	p.cb = cb
	d.eng.Schedule(latest+d.cfg.FlushLatency, p.run)
}

func (d *Device) check(sector int64, n int) error {
	if sector < 0 || n < 0 || (sector*SectorSize)+int64(n) > d.cfg.CapacityBytes {
		return fmt.Errorf("nvme: access beyond device (sector %d, %d bytes)", sector, n)
	}
	if n%SectorSize != 0 {
		return fmt.Errorf("nvme: unaligned length %d", n)
	}
	return nil
}

// PeekBytes copies the stored content of [sector, sector+n/SectorSize) into
// a fresh buffer without touching the timing model — a diagnostic/test
// window onto the on-disk state.
func (d *Device) PeekBytes(sector int64, n int) []byte {
	out := make([]byte, n)
	d.readRange(sector*SectorSize, out)
	return out
}

// readRange copies stored bytes at byte offset off into dst; unwritten
// regions read as zeros (and must overwrite recycled destination buffers,
// hence the explicit clear).
func (d *Device) readRange(off int64, dst []byte) {
	n := len(dst)
	for i := 0; i < n; {
		blk := (off + int64(i)) / blockSize
		in := int((off + int64(i)) % blockSize)
		run := blockSize - in
		if run > n-i {
			run = n - i
		}
		if b := d.blocks[blk]; b != nil {
			copy(dst[i:i+run], b[in:in+run])
		} else {
			clear(dst[i : i+run])
		}
		i += run
	}
}

// carveBlock takes one store block from the slab, refilling it when empty.
func (d *Device) carveBlock() []byte {
	if len(d.slab) < blockSize {
		d.slab = make([]byte, slabBlocks*blockSize) //kite:alloc-ok slab refill, amortized over slabBlocks carves
	}
	b := d.slab[:blockSize:blockSize]
	d.slab = d.slab[blockSize:]
	return b
}

// writeBytesAt stores data at byte offset off. A partial write into a
// block with no resident store yet stages the merged full-block image
// (zeros plus the written run) in the device's single scratch block, then
// commits it to a freshly carved block — the commit must copy because the
// scratch is reused by the very next partial write.
func (d *Device) writeBytesAt(off int64, data []byte) {
	for i := 0; i < len(data); {
		blk := (off + int64(i)) / blockSize
		in := int((off + int64(i)) % blockSize)
		run := blockSize - in
		if run > len(data)-i {
			run = len(data) - i
		}
		b := d.blocks[blk]
		if b == nil {
			if run == blockSize {
				b = d.carveBlock()
			} else {
				clear(d.scratch[:])
				copy(d.scratch[in:in+run], data[i:i+run])
				b = d.carveBlock()
				copy(b, d.scratch[:])
				d.blocks[blk] = b //kite:alloc-ok block table fill on first write to a block; steady state rewrites in place
				i += run
				continue
			}
			d.blocks[blk] = b //kite:alloc-ok block table fill on first write to a block; steady state rewrites in place
		}
		copy(b[in:in+run], data[i:i+run])
		i += run
	}
}
