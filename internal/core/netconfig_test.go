package core

import (
	"strings"
	"testing"

	"kite/internal/sim"
)

func TestIfconfigListsInterfaces(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 21)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rig.ND.Ifconfig("-a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "if0:") {
		t.Fatalf("missing physical IF:\n%s", out)
	}
	vifName := rig.ND.Driver.VIFs()[0].Name()
	if !strings.Contains(out, vifName+":") {
		t.Fatalf("missing %s:\n%s", vifName, out)
	}
	if _, err := rig.ND.Ifconfig("vif9.9"); err == nil {
		t.Fatal("unknown interface accepted")
	}
	if _, err := rig.ND.Ifconfig(); err == nil {
		t.Fatal("empty ifconfig accepted")
	}
}

func TestIfconfigDownStopsTraffic(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 22)
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Testbed.System
	vifName := rig.ND.Driver.VIFs()[0].Name()

	// Up: ping works.
	var rtt sim.Time = -1
	rig.Client.Stack.Ping(rig.GuestIP, 56, func(d sim.Time) { rtt = d })
	if !sys.RunReady(func() bool { return rtt >= 0 }, 500000) {
		t.Fatal("baseline ping failed")
	}

	out, err := rig.ND.Ifconfig(vifName, "down")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DOWN") {
		t.Fatalf("down not reflected:\n%s", out)
	}
	got := false
	rig.Client.Stack.Ping(rig.GuestIP, 56, func(sim.Time) { got = true })
	sys.Eng.RunFor(20 * sim.Millisecond)
	if got {
		t.Fatal("ping succeeded through a downed VIF")
	}

	// Up again: traffic resumes.
	if _, err := rig.ND.Ifconfig(vifName, "up"); err != nil {
		t.Fatal(err)
	}
	rtt = -1
	rig.Client.Stack.Ping(rig.GuestIP, 56, func(d sim.Time) { rtt = d })
	if !sys.RunReady(func() bool { return rtt >= 0 }, 500000) {
		t.Fatal("ping failed after bringing the VIF back up")
	}
}

func TestBrconfigShowAddDelete(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 23)
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Testbed.System
	vifName := rig.ND.Driver.VIFs()[0].Name()

	out, err := rig.ND.Brconfig("xenbr0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "member: "+vifName) || !strings.Contains(out, "member: if0") {
		t.Fatalf("members missing:\n%s", out)
	}

	// Delete the VIF from the bridge: guest unreachable.
	if _, err := rig.ND.Brconfig("xenbr0", "delete", vifName); err != nil {
		t.Fatal(err)
	}
	got := false
	rig.Client.Stack.Ping(rig.GuestIP, 56, func(sim.Time) { got = true })
	sys.Eng.RunFor(20 * sim.Millisecond)
	if got {
		t.Fatal("ping succeeded with VIF off the bridge")
	}

	// Add it back: reachable again.
	if _, err := rig.ND.Brconfig("xenbr0", "add", vifName); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.ND.Brconfig("xenbr0", "add", vifName); err == nil {
		t.Fatal("double add accepted")
	}
	var rtt sim.Time = -1
	rig.Client.Stack.Ping(rig.GuestIP, 56, func(d sim.Time) { rtt = d })
	if !sys.RunReady(func() bool { return rtt >= 0 }, 500000) {
		t.Fatal("ping failed after re-adding the VIF")
	}

	if _, err := rig.ND.Brconfig("wrongbr"); err == nil {
		t.Fatal("wrong bridge name accepted")
	}
}
