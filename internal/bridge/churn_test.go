package bridge

import (
	"testing"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// churnMAC returns the k-th synthetic tenant MAC, distinct from the fixed
// macA/macB/macC addresses used elsewhere in the package.
func churnMAC(k int) netpkt.MAC {
	return netpkt.MAC{2, 0, byte(k >> 16), byte(k >> 8), byte(k), 1}
}

// learnOn drives one frame from port p with source churnMAC(k) toward a
// known unicast destination, so the FDB learns the MAC without flooding.
func learnOn(b *Bridge, p Port, dst netpkt.MAC, k int) {
	b.Input(p, frame(dst, churnMAC(k), "churn"))
}

// TestFDBChurnAgingEvictsIdle fills the FDB with a fleet's worth of
// learned MACs, refreshes a quarter of them, and checks the periodic
// AgeFDB sweep evicts exactly the idle remainder — the mechanism that
// keeps short-lived tenants from pinning table space forever.
func TestFDBChurnAgingEvictsIdle(t *testing.T) {
	eng, b, p1, p2, _ := newBridge()
	const n = 2048

	// Anchor macA on p1 so churn traffic forwards instead of flooding.
	b.Input(p1, frame(macB, macA, "seed"))
	eng.Run()
	for k := 0; k < n; k++ {
		learnOn(b, p2, macA, k)
	}
	eng.Run()
	if got := b.FDBLen(); got != n+1 {
		t.Fatalf("FDBLen = %d after fill, want %d", got, n+1)
	}

	eng.RunUntil(30 * sim.Second)
	refreshed := 0
	for k := 0; k < n; k += 4 { // keep every 4th tenant active
		learnOn(b, p2, macA, k)
		refreshed++
	}
	b.Input(p1, frame(macB, macA, "keepalive"))
	eng.Run()

	eng.RunUntil(60 * sim.Second)
	aged := b.AgeFDB(45 * sim.Second)
	if want := n - refreshed; aged != want {
		t.Fatalf("aged %d entries, want %d", aged, want)
	}
	if got := b.FDBLen(); got != refreshed+1 {
		t.Fatalf("FDBLen = %d after sweep, want %d", got, refreshed+1)
	}
	if b.Stats().Aged != uint64(n-refreshed) {
		t.Fatalf("Stats.Aged = %d, want %d", b.Stats().Aged, n-refreshed)
	}
	if b.Lookup(churnMAC(0)) == nil {
		t.Fatal("refreshed MAC evicted")
	}
	if b.Lookup(churnMAC(1)) != nil {
		t.Fatal("idle MAC survived the sweep")
	}
	if got := testPool.Outstanding(); got != 0 {
		t.Fatalf("%d frame buffers leaked", got)
	}
}

// fdbSlotTotal reports the summed slot capacity across shards — the
// memory footprint of the table, as opposed to its live entry count.
func fdbSlotTotal(b *Bridge) int {
	total := 0
	for si := range b.fdb.shards {
		total += len(b.fdb.shards[si].slots)
	}
	return total
}

// TestFDBChurnSteadyStateCapacity cycles a full fleet of MACs through
// learn-then-evict rounds and asserts the table's slot capacity stops
// growing after the first fill: churn must recycle slots at the
// high-water mark, not leak capacity round over round.
func TestFDBChurnSteadyStateCapacity(t *testing.T) {
	eng, b, p1, p2, _ := newBridge()
	const n = 2048

	fill := func() {
		b.Input(p1, frame(macB, macA, "seed"))
		for k := 0; k < n; k++ {
			learnOn(b, p2, macA, k)
		}
		eng.Run()
	}
	fill()
	capacity := fdbSlotTotal(b)

	for cycle := 1; cycle <= 6; cycle++ {
		eng.RunUntil(eng.Now() + 120*sim.Second)
		b.AgeFDB(60 * sim.Second)
		if got := b.FDBLen(); got != 0 {
			t.Fatalf("cycle %d: %d entries survived a full sweep", cycle, got)
		}
		p1.got, p2.got = nil, nil
		fill()
		if got := b.FDBLen(); got != n+1 {
			t.Fatalf("cycle %d: FDBLen = %d after refill, want %d", cycle, got, n+1)
		}
		if got := fdbSlotTotal(b); got != capacity {
			t.Fatalf("cycle %d: slot capacity %d, want stable %d", cycle, got, capacity)
		}
	}
	if got := testPool.Outstanding(); got != 0 {
		t.Fatalf("%d frame buffers leaked", got)
	}
}

// TestFDBPortDepartureMidChurn detaches a port carrying half the learned
// fleet mid-traffic and checks its entries are flushed immediately (no
// waiting on the idle timer), the other port's entries survive, and
// traffic to departed MACs degrades to flooding rather than misdelivery.
func TestFDBPortDepartureMidChurn(t *testing.T) {
	eng, b, p1, p2, p3 := newBridge()
	const n = 1024

	b.Input(p1, frame(macB, macA, "seed"))
	for k := 0; k < n; k++ {
		if k%2 == 0 {
			learnOn(b, p2, macA, k)
		} else {
			learnOn(b, p3, macA, k)
		}
	}
	eng.Run()
	if got := b.FDBLen(); got != n+1 {
		t.Fatalf("FDBLen = %d after fill, want %d", got, n+1)
	}

	b.RemovePort(p3)
	if got := b.FDBLen(); got != n/2+1 {
		t.Fatalf("FDBLen = %d after departure, want %d", got, n/2+1)
	}
	if b.Lookup(churnMAC(1)) != nil {
		t.Fatal("departed port's MAC still resolves")
	}
	if got := b.Lookup(churnMAC(0)); got != Port(p2) {
		t.Fatalf("surviving MAC resolves to %v, want p2", got)
	}

	// Traffic toward a departed MAC floods to the remaining ports.
	flooded := b.Stats().Flooded
	p1.got = nil
	b.Input(p2, frame(churnMAC(1), churnMAC(0), "stale"))
	eng.Run()
	if b.Stats().Flooded != flooded+1 {
		t.Fatal("frame to departed MAC was not flooded")
	}
	if len(p1.got) != 1 {
		t.Fatalf("flood delivered %d frames to p1, want 1", len(p1.got))
	}
	if got := testPool.Outstanding(); got != 0 {
		t.Fatalf("%d frame buffers leaked", got)
	}
}
