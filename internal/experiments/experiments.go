// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed. Each experiment builds fresh
// Linux-baseline and Kite rigs from the same seed, drives the same
// workload over both, and returns rows ready for rendering plus the
// quantities the benchmark suite asserts on (who wins, by what factor).
//
// Scale selects run sizes: Quick keeps virtual durations and request
// counts small enough for CI benchmarks; Full approaches the paper's
// parameters (minutes of virtual time — still seconds of wall clock).
//
//kite:deterministic
package experiments

import (
	"fmt"

	"kite/internal/core"
	"kite/internal/metrics"
	"kite/internal/sim"
)

// Scale sizes the experiment runs.
type Scale struct {
	Name string
	// Network scales.
	NuttcpDur   sim.Time
	PingCount   int
	NetperfTxns int
	MemtierOps  int
	ABRequests  int
	RedisOps    int
	OLTPDur     sim.Time
	// Storage scales.
	DDBytes      int64
	FileIODur    sim.Time
	FileIOBytes  int64
	FilebenchDur sim.Time
	// Repetitions for RSD (Table 4).
	Reps int

	// pool, when set by RunAll, lets an experiment fan its Linux/Kite rig
	// pair over spare workers (see bothKinds). Nil means fully sequential.
	pool *Pool
}

// Quick returns the CI-friendly scale.
func Quick() Scale {
	return Scale{
		Name:         "quick",
		NuttcpDur:    15 * sim.Millisecond,
		PingCount:    20,
		NetperfTxns:  100,
		MemtierOps:   300,
		ABRequests:   60,
		RedisOps:     3000,
		OLTPDur:      15 * sim.Millisecond,
		DDBytes:      48 << 20,
		FileIODur:    15 * sim.Millisecond,
		FileIOBytes:  96 << 20,
		FilebenchDur: 15 * sim.Millisecond,
		Reps:         3,
	}
}

// Full returns a scale closer to the paper's run sizes.
func Full() Scale {
	return Scale{
		Name:         "full",
		NuttcpDur:    200 * sim.Millisecond,
		PingCount:    100,
		NetperfTxns:  1000,
		MemtierOps:   2000,
		ABRequests:   400,
		RedisOps:     20000,
		OLTPDur:      100 * sim.Millisecond,
		DDBytes:      512 << 20,
		FileIODur:    100 * sim.Millisecond,
		FileIOBytes:  512 << 20,
		FilebenchDur: 100 * sim.Millisecond,
		Reps:         3,
	}
}

// Pair holds one metric measured on both driver-domain kinds.
type Pair struct {
	Metric string
	Linux  float64
	Kite   float64
	Unit   string
}

// Ratio returns Kite/Linux.
func (p Pair) Ratio() float64 { return metrics.Ratio(p.Kite, p.Linux) }

// Parity reports whether the two sides agree within factor f.
func (p Pair) Parity(f float64) bool { return metrics.WithinFactor(p.Kite, p.Linux, f) }

// Result is one experiment's output.
type Result struct {
	ID    string // e.g. "FIG7"
	Title string
	Pairs []Pair
	Table *metrics.Table
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

// AddPair appends a metric pair and a rendered row.
func (r *Result) AddPair(metric string, linux, kite float64, unit string) {
	r.Pairs = append(r.Pairs, Pair{Metric: metric, Linux: linux, Kite: kite, Unit: unit})
	if r.Table != nil {
		r.Table.AddRow(metric,
			metrics.FormatFloat(linux), metrics.FormatFloat(kite),
			metrics.FormatFloat(metrics.Ratio(kite, linux)), unit)
	}
}

// Pair returns the named pair (nil if missing).
func (r *Result) Pair(metric string) *Pair {
	for i := range r.Pairs {
		if r.Pairs[i].Metric == metric {
			return &r.Pairs[i]
		}
	}
	return nil
}

// newResult builds a Result with the standard linux/kite table shape.
func newResult(id, title string) *Result {
	return &Result{
		ID: id, Title: title,
		Table: metrics.NewTable(fmt.Sprintf("%s: %s", id, title),
			"metric", "linux", "kite", "kite/linux", "unit"),
	}
}

// mustNetRig builds a network rig or panics (experiments treat setup
// failure as programmer error).
func mustNetRig(kind core.DriverKind, seed uint64) *core.NetworkRig {
	rig, err := core.NewNetworkRig(kind, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return rig
}

// mustNetRigCfg builds a network rig from the full config or panics.
func mustNetRigCfg(cfg core.NetworkRigConfig) *core.NetworkRig {
	rig, err := core.NewNetworkRigCfg(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return rig
}

// mustStorRig builds a storage rig or panics.
func mustStorRig(cfg core.StorageRigConfig) *core.StorageRig {
	rig, err := core.NewStorageRig(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return rig
}

// drive runs a rig's engine until done() or the cap; panics on livelock so
// experiments fail loudly. Retired events feed the process-wide telemetry
// behind EventsProcessed.
//
//kite:synccore one atomic telemetry add after the run completes; nothing inside the simulation
func drive(sys *core.System, done func() bool, cap uint64) {
	start := sys.Eng.Processed()
	ok := sys.RunReady(done, cap)
	totalEvents.Add(sys.Eng.Processed() - start)
	if !ok {
		panic("experiments: workload did not complete (event cap)")
	}
}
