// Storage example: compare the Kite storage domain with the Linux baseline
// on the same workload — dd sequential streams and a sysbench-fileio
// random mix — and show the blkback optimizations (persistent grants,
// indirect segments, batching) at work through the driver's counters.
package main

import (
	"fmt"
	"log"

	"kite"
	"kite/internal/sim"
	"kite/internal/workload"
)

func run(kind kite.DriverKind) {
	rig, err := kite.NewStorageRig(kite.StorageRigConfig{
		Kind: kind, Seed: 3, DiskBytes: 4 << 30, CacheBytes: 24 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := rig.Testbed.System

	fmt.Printf("== %s storage domain ==\n", kind)
	fmt.Printf("vbd: %d sectors, persistent=%v, max indirect segs=%d\n",
		rig.Guest.Disk.SectorCount(), rig.Guest.Disk.Persistent(), rig.Guest.Disk.MaxIndirect())

	stage := 0
	workload.DDWrite(rig.Guest.Disk, 64<<20, 128<<10, func(w workload.DDResult) {
		fmt.Printf("dd write: %.0f MB/s\n", w.MBps)
		workload.DDRead(rig.Guest.Disk, 64<<20, 128<<10, func(r workload.DDResult) {
			fmt.Printf("dd read:  %.0f MB/s\n", r.MBps)
			stage = 1
		})
	})
	if !sys.RunReady(func() bool { return stage == 1 }, 60_000_000) {
		log.Fatal("dd did not complete")
	}

	got := false
	workload.SysbenchFileIO(sys.Eng, rig.Guest.FS, workload.FileIOConfig{
		Files: 16, TotalBytes: 128 << 20, BlockSize: 256 << 10,
		Threads: 20, Duration: 30 * sim.Millisecond, Seed: 3,
	}, func(r workload.FileIOResult) {
		fmt.Printf("fileio rndrw 3:2 @256K x20thr: %.0f MB/s, avg latency %.2f ms (%d reads / %d writes)\n",
			r.MBps, r.AvgLatency.Millis(), r.Reads, r.Writes)
		got = true
	})
	if !sys.RunReady(func() bool { return got }, 60_000_000) {
		log.Fatal("fileio did not complete")
	}

	inst := rig.SD.Driver.Instances()[0]
	st := inst.Stats()
	fmt.Printf("blkback: %d ring requests -> %d device ops (%d merged), %d persistent-grant hits\n\n",
		st.RingRequests, st.DeviceOps, st.MergedRequests, st.PersistentHits)
}

func main() {
	run(kite.KindLinux)
	run(kite.KindKite)
}
