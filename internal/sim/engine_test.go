package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine pending = %d, want 0", e.Pending())
	}
}

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock after run = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order=%v", order)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestEngineAfterNegativePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("After with negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("chained events fired at %v, want [10 15]", fired)
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("RunUntil left clock at %v, want 100", e.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(200, func() { ran++ })
	e.RunUntil(100)
	if ran != 1 {
		t.Fatalf("RunUntil(100) executed %d events, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending after RunUntil = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 || e.Now() != 200 {
		t.Fatalf("after Run: ran=%d now=%v, want 2 / 200", ran, e.Now())
	}
}

func TestRunCappedDetectsLivelock(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(0, loop)
	if e.RunCapped(100) {
		t.Fatal("RunCapped reported drain for a self-perpetuating event chain")
	}
}

func TestRunForRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(50)
	e.RunFor(50)
	if e.Now() != 100 {
		t.Fatalf("two RunFor(50) left clock at %v, want 100", e.Now())
	}
}

// Property: however a batch of events is scheduled, execution timestamps
// observed by the callbacks are non-decreasing and Now() never runs ahead
// of the event being delivered.
func TestEngineMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, d := range delays {
			at := Time(d)
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		last := Time(-1)
		for _, s := range seen {
			if s < last {
				return false
			}
			last = s
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
