package xen

import (
	"testing"

	"kite/internal/sim"
)

func newHV(t *testing.T) (*sim.Engine, *Hypervisor, *Domain) {
	t.Helper()
	eng := sim.NewEngine()
	hv := New(eng)
	dom0 := hv.CreateDomain(DomainConfig{Name: "dom0", VCPUs: 2, MemBytes: 8 << 20, Privileged: true})
	if dom0.ID != 0 {
		t.Fatalf("first domain got ID %d, want 0", dom0.ID)
	}
	return eng, hv, dom0
}

func TestFirstDomainMustBePrivileged(t *testing.T) {
	eng := sim.NewEngine()
	hv := New(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("unprivileged first domain did not panic")
		}
	}()
	hv.CreateDomain(DomainConfig{Name: "bad", VCPUs: 1, MemBytes: 1 << 20})
}

func TestDomainLookupAndDestroy(t *testing.T) {
	_, hv, _ := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	if hv.Domain(du.ID) != du {
		t.Fatal("lookup failed")
	}
	destroyed := false
	du.OnDestroy = func() { destroyed = true }
	if err := hv.DestroyDomain(du.ID); err != nil {
		t.Fatal(err)
	}
	if hv.Domain(du.ID) != nil {
		t.Fatal("destroyed domain still visible")
	}
	if !destroyed {
		t.Fatal("OnDestroy hook did not run")
	}
	if err := hv.DestroyDomain(du.ID); err == nil {
		t.Fatal("double destroy succeeded")
	}
}

func TestDom0Indestructible(t *testing.T) {
	_, hv, _ := newHV(t)
	if err := hv.DestroyDomain(0); err == nil {
		t.Fatal("Dom0 destroy succeeded")
	}
}

func TestPCIAssignment(t *testing.T) {
	_, hv, _ := newHV(t)
	dd := hv.CreateDomain(DomainConfig{Name: "netdd", VCPUs: 1, MemBytes: 1 << 20})
	if err := hv.AssignPCI("03:00.0", dd.ID); err != nil {
		t.Fatal(err)
	}
	if err := hv.AssignPCI("03:00.0", 0); err == nil {
		t.Fatal("double PCI assignment succeeded")
	}
	if owner, ok := hv.PCIOwner("03:00.0"); !ok || owner != dd.ID {
		t.Fatalf("PCI owner = %d,%v", owner, ok)
	}
	// Destroying the domain releases its devices.
	if err := hv.DestroyDomain(dd.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := hv.PCIOwner("03:00.0"); ok {
		t.Fatal("device still assigned after domain destroy")
	}
}

func TestEventChannelHandshakeAndDelivery(t *testing.T) {
	eng, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20,
		IRQLatency: 3 * sim.Microsecond})

	unbound := du.AllocUnbound(dom0.ID)
	lport, err := dom0.BindInterdomain(du.ID, unbound)
	if err != nil {
		t.Fatal(err)
	}
	var deliveredAt sim.Time = -1
	if err := du.SetHandler(unbound, func() { deliveredAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	dom0.Notify(lport)
	eng.Run()
	if deliveredAt < 3*sim.Microsecond {
		t.Fatalf("delivery at %v, want >= IRQ latency 3us", deliveredAt)
	}
	sends, _ := dom0.ChannelStats(lport)
	_, got := du.ChannelStats(unbound)
	if sends != 1 || got != 1 {
		t.Fatalf("sends=%d delivered=%d, want 1/1", sends, got)
	}
}

func TestEventChannelBindValidation(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	other := hv.CreateDomain(DomainConfig{Name: "other", VCPUs: 1, MemBytes: 1 << 20})

	unbound := du.AllocUnbound(dom0.ID)
	if _, err := other.BindInterdomain(du.ID, unbound); err == nil {
		t.Fatal("bind by wrong domain succeeded")
	}
	if _, err := dom0.BindInterdomain(du.ID, 999); err == nil {
		t.Fatal("bind to unknown port succeeded")
	}
	if _, err := dom0.BindInterdomain(du.ID, unbound); err != nil {
		t.Fatal(err)
	}
	// Port now connected; a second bind must fail.
	if _, err := dom0.BindInterdomain(du.ID, unbound); err == nil {
		t.Fatal("double bind succeeded")
	}
}

func TestEventCoalescing(t *testing.T) {
	eng, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20,
		IRQLatency: 10 * sim.Microsecond})
	unbound := du.AllocUnbound(dom0.ID)
	lport, _ := dom0.BindInterdomain(du.ID, unbound)
	count := 0
	du.SetHandler(unbound, func() { count++ })
	for i := 0; i < 5; i++ {
		dom0.Notify(lport) // all before the first upcall runs
	}
	eng.Run()
	if count != 1 {
		t.Fatalf("5 back-to-back notifies delivered %d upcalls, want 1 (coalesced)", count)
	}
}

func TestNotifyAfterPeerDestroyIsNoop(t *testing.T) {
	eng, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	unbound := du.AllocUnbound(dom0.ID)
	lport, _ := dom0.BindInterdomain(du.ID, unbound)
	du.SetHandler(unbound, func() { t.Fatal("handler ran in destroyed domain") })
	hv.DestroyDomain(du.ID)
	dom0.Notify(lport) // must not panic, must not deliver
	eng.Run()
}

func TestCloseUnknownPortErrors(t *testing.T) {
	_, _, dom0 := newHV(t)
	if err := dom0.Close(42); err == nil {
		t.Fatal("close of unknown port succeeded")
	}
}

func TestGrantMapReadAndUnmap(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	page := du.Arena.MustAlloc()
	page.CopyInto(0, []byte("shared"))
	ref := du.GrantAccess(dom0.ID, page, false)

	m, err := hv.MapGrant(dom0, du.ID, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Page.CopyFrom(0, 6)) != "shared" {
		t.Fatal("mapped page content mismatch")
	}
	// Writes through the mapping land in the owner's page.
	m.Page.CopyInto(0, []byte("BACKND"))
	if string(page.CopyFrom(0, 6)) != "BACKND" {
		t.Fatal("write through mapping not visible to owner")
	}
	// EndAccess must fail while mapped.
	if err := du.EndAccess(ref); err == nil {
		t.Fatal("EndAccess succeeded while mapped")
	}
	if err := hv.UnmapGrant(dom0, m); err != nil {
		t.Fatal(err)
	}
	if err := du.EndAccess(ref); err != nil {
		t.Fatal(err)
	}
	if err := hv.UnmapGrant(dom0, m); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestGrantTargetsWrongDomain(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	dd := hv.CreateDomain(DomainConfig{Name: "dd", VCPUs: 1, MemBytes: 1 << 20})
	page := du.Arena.MustAlloc()
	ref := du.GrantAccess(dd.ID, page, false) // granted to dd, not dom0
	if _, err := hv.MapGrant(dom0, du.ID, ref); err == nil {
		t.Fatal("map by non-target domain succeeded")
	}
}

func TestGrantBatchRollsBackOnBadRef(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	p1 := du.Arena.MustAlloc()
	good := du.GrantAccess(dom0.ID, p1, false)
	if _, err := hv.MapGrantBatch(dom0, du.ID, []GrantRef{good, 9999}); err == nil {
		t.Fatal("batch with bad ref succeeded")
	}
	// The good ref must have been rolled back so EndAccess works.
	if err := du.EndAccess(good); err != nil {
		t.Fatalf("EndAccess after failed batch: %v", err)
	}
}

func TestGrantCopyMovesBytes(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	src := du.Arena.MustAlloc()
	src.CopyInto(128, []byte("payload-bytes"))
	ref := du.GrantAccess(dom0.ID, src, true)
	dst := dom0.Arena.MustAlloc()

	err := hv.CopyGrant(dom0, []CopyOp{{
		Src: CopyPtr{Dom: du.ID, Ref: ref, Offset: 128},
		Dst: CopyPtr{Local: dst, Offset: 0},
		Len: 13,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if string(dst.CopyFrom(0, 13)) != "payload-bytes" {
		t.Fatal("grant copy corrupted data")
	}
	st := hv.Stats()
	if st.GrantCopies != 1 || st.CopiedBytes != 13 {
		t.Fatalf("stats copies=%d bytes=%d", st.GrantCopies, st.CopiedBytes)
	}
}

func TestGrantCopyHonorsReadOnly(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	target := du.Arena.MustAlloc()
	ref := du.GrantAccess(dom0.ID, target, true) // read-only
	src := dom0.Arena.MustAlloc()
	err := hv.CopyGrant(dom0, []CopyOp{{
		Src: CopyPtr{Local: src},
		Dst: CopyPtr{Dom: du.ID, Ref: ref},
		Len: 16,
	}})
	if err == nil {
		t.Fatal("write through read-only grant succeeded")
	}
}

func TestGrantCopyBoundsChecked(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	src := du.Arena.MustAlloc()
	ref := du.GrantAccess(dom0.ID, src, true)
	dst := dom0.Arena.MustAlloc()
	err := hv.CopyGrant(dom0, []CopyOp{{
		Src: CopyPtr{Dom: du.ID, Ref: ref, Offset: 4000},
		Dst: CopyPtr{Local: dst},
		Len: 200,
	}})
	if err == nil {
		t.Fatal("page-overflowing copy succeeded")
	}
}

func TestHypercallsChargeCPU(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	page := du.Arena.MustAlloc()
	ref := du.GrantAccess(dom0.ID, page, false)
	before := dom0.CPUs.CPU(0).BusyTotal() + dom0.CPUs.CPU(1).BusyTotal()
	m, err := hv.MapGrant(dom0, du.ID, ref)
	if err != nil {
		t.Fatal(err)
	}
	hv.UnmapGrant(dom0, m)
	after := dom0.CPUs.CPU(0).BusyTotal() + dom0.CPUs.CPU(1).BusyTotal()
	want := 2*hv.Costs.Base + hv.Costs.GrantMapPage + hv.Costs.GrantUnmapPage
	if after-before != want {
		t.Fatalf("map+unmap charged %v, want %v", after-before, want)
	}
}

func TestBatchedCopyCheaperThanSingles(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	mkops := func(n int) []CopyOp {
		ops := make([]CopyOp, n)
		for i := range ops {
			p := du.Arena.MustAlloc()
			ref := du.GrantAccess(dom0.ID, p, true)
			ops[i] = CopyOp{Src: CopyPtr{Dom: du.ID, Ref: ref}, Dst: CopyPtr{Local: dom0.Arena.MustAlloc()}, Len: 512}
		}
		return ops
	}
	base := dom0.CPUs.CPU(0).BusyTotal() + dom0.CPUs.CPU(1).BusyTotal()
	if err := hv.CopyGrant(dom0, mkops(8)); err != nil {
		t.Fatal(err)
	}
	batched := dom0.CPUs.CPU(0).BusyTotal() + dom0.CPUs.CPU(1).BusyTotal() - base

	base = dom0.CPUs.CPU(0).BusyTotal() + dom0.CPUs.CPU(1).BusyTotal()
	for _, op := range mkops(8) {
		if err := hv.CopyGrant(dom0, []CopyOp{op}); err != nil {
			t.Fatal(err)
		}
	}
	singles := dom0.CPUs.CPU(0).BusyTotal() + dom0.CPUs.CPU(1).BusyTotal() - base
	if batched >= singles {
		t.Fatalf("batched copy (%v) not cheaper than singles (%v)", batched, singles)
	}
}

func TestDestroyRevokesGrants(t *testing.T) {
	_, hv, dom0 := newHV(t)
	du := hv.CreateDomain(DomainConfig{Name: "domU", VCPUs: 1, MemBytes: 1 << 20})
	page := du.Arena.MustAlloc()
	ref := du.GrantAccess(dom0.ID, page, false)
	hv.DestroyDomain(du.ID)
	if _, err := hv.MapGrant(dom0, du.ID, ref); err == nil {
		t.Fatal("mapping a destroyed domain's grant succeeded")
	}
}
