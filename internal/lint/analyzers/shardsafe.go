package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"kite/internal/lint/analysis"
	"kite/internal/lint/loader"
)

// Shardsafe proves shard confinement, the load-bearing assumption of the
// parallel event core (DESIGN §12): code running on one shard never
// mutates state owned by another shard except through the sanctioned
// channels — Engine.Post and the staged release outbox built on it.
// GOMAXPROCS=1 runs hide every violation of that rule, which is exactly
// why it needs a static proof. Three rules:
//
//  1. Code reachable from a shard-executed handler (anything registered
//     on the event machinery, including Post handlers themselves) must
//     not write a package-level variable: a global written by N shards
//     is an unsynchronized race. The variable's declaration can carry
//     //kite:shared to mark it a sanctioned cross-shard structure with
//     its own discipline, or the write site //kite:shardok with a
//     justification.
//
//  2. Shard code must not schedule work on another component's engine by
//     reaching through the component graph. The heuristic: a scheduling
//     call (Schedule/After/Exec/Wake) whose receiver chain passes
//     through two or more engine-bearing components (module structs
//     holding a *sim.Engine/CPU/CPUPool field) crosses an ownership
//     boundary — `p.eng.Schedule` is self-scheduling, but
//     `p.peer.eng.Schedule` drives a foreign timeline and, under fleet
//     sharding, a foreign goroutine's heap. Cross-shard work goes
//     through Engine.Post, which stages into the outbox and is fired at
//     the window barrier.
//
//  3. A struct type (or single field) declared //kite:shared — the
//     framepool remote-free magazines, the demux pending bitmaps — is by
//     definition touched from more than one shard, so EVERY write to its
//     fields must carry //kite:shardok (on the line or the enclosing
//     function's doc) naming why that write is safe: executed at the
//     barrier, guarded by the outbox protocol, or owner-side only.
//
// Rules 1–2 are reachability-scoped; rule 3 is global, because a shared
// structure's discipline must hold everywhere it is touched.
var Shardsafe = &analysis.Analyzer{
	Name: "shardsafe",
	Doc:  "shard-executed code may cross shard ownership only via Engine.Post and //kite:shared structures with //kite:shardok writers",
	Run:  runShardsafe,
}

// shardSched lists the scheduling entry points rule 2 applies to. Post is
// deliberately absent: it IS the sanctioned cross-shard channel.
var shardSched = map[string]bool{
	"(*kite/internal/sim.Engine).Schedule": true,
	"(*kite/internal/sim.Engine).After":    true,
	"(*kite/internal/sim.CPU).Exec":        true,
	"(*kite/internal/sim.CPUPool).Exec":    true,
	"(*kite/internal/sim.Task).Wake":       true,
	"(*kite/internal/sim.Batch).Wake":      true,
}

func runShardsafe(pass *analysis.Pass) error {
	sh := newSharedIndex(pass.Module)
	w := &shardWalk{
		pass:    pass,
		shared:  sh,
		indexes: map[*loader.Package]*directiveIndex{},
		checked: map[*types.Func]bool{},
		seenLit: map[*ast.BlockStmt]bool{},
	}
	w.checkSharedWrites()
	w.checkShardRoots()
	return nil
}

// sharedIndex records every //kite:shared declaration in the module:
// package-level vars, whole struct types, and individual fields.
type sharedIndex struct {
	vars   map[*types.Var]bool // sanctioned shared globals
	fields map[*types.Var]bool // fields whose writes need //kite:shardok
}

func newSharedIndex(mod *analysis.Module) *sharedIndex {
	sh := &sharedIndex{vars: map[*types.Var]bool{}, fields: map[*types.Var]bool{}}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				declShared := commentGroupHas(gd.Doc, "shared")
				for _, spec := range gd.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						if gd.Tok == token.VAR && (declShared ||
							commentGroupHas(s.Doc, "shared") || commentGroupHas(s.Comment, "shared")) {
							for _, name := range s.Names {
								if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
									sh.vars[v] = true
								}
							}
						}
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok {
							continue
						}
						typeShared := declShared ||
							commentGroupHas(s.Doc, "shared") || commentGroupHas(s.Comment, "shared")
						for _, field := range st.Fields.List {
							if !typeShared && !commentGroupHas(field.Doc, "shared") &&
								!commentGroupHas(field.Comment, "shared") {
								continue
							}
							for _, name := range field.Names {
								if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
									sh.fields[v] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return sh
}

type shardWalk struct {
	pass    *analysis.Pass
	shared  *sharedIndex
	indexes map[*loader.Package]*directiveIndex
	checked map[*types.Func]bool
	seenLit map[*ast.BlockStmt]bool
}

func (w *shardWalk) indexFor(pkg *loader.Package) *directiveIndex {
	idx, ok := w.indexes[pkg]
	if !ok {
		idx = newDirectiveIndex(pkg)
		w.indexes[pkg] = idx
	}
	return idx
}

// sanctioned reports whether a finding at pos inside decl (nil for a
// handler literal's own body) is covered by //kite:shardok.
func (w *shardWalk) sanctioned(pkg *loader.Package, decl *ast.FuncDecl, pos token.Pos) bool {
	if decl != nil && funcDirective(decl, "shardok") {
		return true
	}
	return w.indexFor(pkg).suppressed(pos, "shardok")
}

// checkSharedWrites enforces rule 3 over every function body in the
// package under analysis.
func (w *shardWalk) checkSharedWrites() {
	if len(w.shared.fields) == 0 {
		return
	}
	pkg := w.pass.Pkg
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				for _, t := range writeTargets(n) {
					fv := fieldWritten(pkg.Info, t)
					if fv == nil || !w.shared.fields[fv] {
						continue
					}
					if w.sanctioned(pkg, fd, n.Pos()) {
						continue
					}
					w.pass.Reportf(n.Pos(),
						"shardsafe: write to field %s of a //kite:shared structure; cross-shard writes need a //kite:shardok justification",
						fv.Name())
				}
				return true
			})
		}
	}
}

// writeTargets returns the lvalues a statement mutates.
func writeTargets(n ast.Node) []ast.Expr {
	switch s := n.(type) {
	case *ast.AssignStmt:
		return s.Lhs
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	}
	return nil
}

// fieldWritten resolves an lvalue to the struct field it mutates, seeing
// through index and dereference wrappers (d.pending[w] |= bit mutates the
// slice reached via field pending).
func fieldWritten(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// globalWritten resolves an lvalue to a package-level variable, either a
// plain identifier or a pkg.Var selector.
func globalWritten(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && isPkgLevel(v) {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			base, ok := ast.Unparen(x.X).(*ast.Ident)
			if !ok {
				return nil
			}
			if _, isPkg := info.Uses[base].(*types.PkgName); !isPkg {
				return nil
			}
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkShardRoots collects every handler registered on the event
// machinery in this package — the evblock registrar set plus Engine.Post
// handlers — and walks their static call closures under rules 1 and 2.
func (w *shardWalk) checkShardRoots() {
	info := w.pass.Pkg.Info
	for _, f := range w.pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil {
				return true
			}
			argIdx, ok := evRegistrars[fn.FullName()]
			if !ok && fn.FullName() == enginePostFunc {
				argIdx, ok = 3, true
			}
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			w.checkRootExpr(call.Args[argIdx])
			return true
		})
	}
}

func (w *shardWalk) checkRootExpr(arg ast.Expr) {
	info := w.pass.Pkg.Info
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		if w.seenLit[a.Body] {
			return
		}
		w.seenLit[a.Body] = true
		w.scanShardBody(w.pass.Pkg, nil, a.Body)
		for _, c := range calleesOf(w.pass.Module, w.pass.Pkg, a.Body, nil) {
			if c.fn.Pkg() != nil && w.pass.Module.InModule(c.fn.Pkg()) {
				w.checkRootFunc(c.fn)
			}
		}
	case *ast.Ident:
		if fn, ok := info.Uses[a].(*types.Func); ok {
			w.checkRootFunc(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[a]; ok && sel.Kind() == types.MethodVal {
			w.checkRootFunc(sel.Obj().(*types.Func))
		} else if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
			w.checkRootFunc(fn)
		}
	}
}

func (w *shardWalk) checkRootFunc(root *types.Func) {
	walkReachable(w.pass.Module, root,
		func(fn *types.Func, fd *analysis.FuncDecl) bool {
			if w.checked[fn] {
				return true
			}
			w.checked[fn] = true
			w.scanShardBody(fd.Pkg, fd.Decl, fd.Decl.Body)
			return true
		},
		nil, nil)
}

// scanShardBody applies rules 1 and 2 to one shard-reachable body.
func (w *shardWalk) scanShardBody(pkg *loader.Package, decl *ast.FuncDecl, body ast.Node) {
	if body == nil {
		return
	}
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		for _, t := range writeTargets(n) {
			v := globalWritten(info, t)
			if v == nil || w.shared.vars[v] {
				continue
			}
			if w.sanctioned(pkg, decl, n.Pos()) {
				continue
			}
			w.pass.Reportf(n.Pos(),
				"shardsafe: shard-reachable code writes package-level var %s; mark the variable //kite:shared or the site //kite:shardok",
				v.Name())
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || !shardSched[fn.FullName()] {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if hops := pinnedHops(w.pass.Module, info, sel.X); hops >= 2 {
			if !w.sanctioned(pkg, decl, call.Pos()) {
				w.pass.Reportf(call.Pos(),
					"shardsafe: %s reaches through %d engine-bearing components; cross-shard scheduling must go through Engine.Post",
					fn.Name(), hops)
			}
		}
		return true
	})
}

// pinnedHops counts how many expressions along a receiver chain denote
// engine-bearing module components — structs that own a scheduling
// handle. One hop is self-scheduling; two or more means the call reached
// into somebody else's component.
func pinnedHops(mod *analysis.Module, info *types.Info, e ast.Expr) int {
	n := 0
	for {
		e = ast.Unparen(e)
		if tv, ok := info.Types[e]; ok && enginBearing(mod, tv.Type) {
			n++
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return n
		}
	}
}

// enginBearing reports whether t (after dereference) is a module struct,
// outside sim itself, holding a direct *sim.Engine/CPU/CPUPool field.
func enginBearing(mod *analysis.Module, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !mod.InModule(pkg) || pkg.Path() == "kite/internal/sim" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSchedHandle(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isSchedHandle(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "kite/internal/sim" {
		return false
	}
	switch o.Name() {
	case "Engine", "CPU", "CPUPool":
		return true
	}
	return false
}
