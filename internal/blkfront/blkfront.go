// Package blkfront implements the paravirtual block frontend driver used
// by DomU guests: a virtual disk whose reads and writes travel the blkif
// ring to a blkback instance in the storage driver domain. It negotiates
// and uses the same optimizations the paper implements in Kite's blkback —
// persistent grant references and indirect segments (§3.3, §4.4) — and
// splits large I/O into as few ring requests as the negotiated limits
// allow.
//
// The transport is multi-queue (blk-mq over blkif, xen-blkfront's
// multi-queue protocol): the frontend reads the backend's
// "multi-queue-max-queues" advertisement, answers with
// "multi-queue-num-queues", and publishes one ring + event channel per
// queue under "queue-N/" keys (flat legacy keys when single-queue).
// Requests are steered by extent: the virtual disk is striped in 512 KiB
// chunks and each stripe belongs to one queue, so a sequential stream
// stays mergeable within its queue and same-sector requests stay ordered.
// Each queue owns its persistent-grant page pool, keeping grant refs
// queue-affine for the backend's per-queue mapping caches.
//
// Read completions borrow a refcounted buffer from a blkpool: the slice
// handed to a ReadSectors callback is valid only for the duration of the
// callback and is recycled afterwards (DESIGN.md §8). Callers that need
// the data longer either copy it or use ReadSectorsInto with their own
// destination. Caller ops, ring-request parts, and the ring-full backlog
// are all pooled/struct-based so the steady-state data path performs no
// heap allocation.
package blkfront

import (
	"fmt"

	"kite/internal/blkif"
	"kite/internal/blkpool"
	"kite/internal/mem"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

// stripeSectors is the extent-striping granularity (1024 sectors = 512
// KiB): coarse enough that a maximal 128 KiB indirect request never
// spans queues, so blkback's merge policy still folds consecutive
// requests within a queue.
const stripeSectors = 1024

// Costs models the guest-side software path per request.
type Costs struct {
	PerRequest sim.Time // block layer + driver work per ring request
	PerKBCopy  sim.Time // memcpy per KiB for persistent-grant staging
}

// GuestCosts returns the Ubuntu DomU profile.
func GuestCosts() Costs {
	return Costs{PerRequest: 1200 * sim.Nanosecond, PerKBCopy: 55 * sim.Nanosecond}
}

// Stats counts frontend activity.
type Stats struct {
	Reads, Writes, Flushes uint64
	ReadBytes, WriteBytes  uint64
	RingRequests           uint64
	IndirectRequests       uint64
	QueuedFull             uint64
}

type poolPage struct {
	page *mem.Page
	ref  xen.GrantRef
}

// reqPart tracks one in-flight ring request belonging to a caller op.
// Parts are pooled; every slice keeps its capacity across recycles. segs
// and indRefs must live on the part (not device scratch) because the ring
// slot shares their backing arrays until the backend consumes the request.
type reqPart struct {
	op       blkif.Op
	q        *queue // the hardware queue the part rides (pages return there)
	pages    []poolPage
	indirect []poolPage // descriptor pages (granted, freed after response)
	segs     []blkif.Segment
	indRefs  []xen.GrantRef
	readDst  []byte // for reads: destination slice for this part
	parent   *callerOp
}

// callerOp is one ReadSectors/WriteSectors/Flush invocation. Pooled.
// Exactly one of doneRead/doneErr is set, so write and flush callbacks
// need no allocating adapter closure.
type callerOp struct {
	remaining int
	err       error
	readBuf   []byte
	buf       *blkpool.Buf // pooled backing for readBuf; nil for ReadSectorsInto
	doneRead  func(data []byte, err error)
	doneErr   func(err error)
}

// pendingOp is one backlogged submission waiting for ring space; the
// struct queue replaces a []func() bool closure backlog.
type pendingOp struct {
	op        blkif.Op
	sector    int64
	size      int
	writeData []byte
	readOff   int
	caller    *callerOp
	flush     bool
}

// queue is one hardware queue: its ring, event channel, persistent-grant
// page pool, and ring-full backlog — the per-queue state xen-blkfront
// keeps in struct blkfront_ring_info.
type queue struct {
	d    *Device
	id   int
	ring *blkif.Ring
	port xen.Port

	pool []poolPage // persistent-grant page pool (queue-affine refs)

	pending  []pendingOp // ring-full backlog: retried on completions
	pendHead int
}

// Device is one vbd frontend.
type Device struct {
	eng     *sim.Engine
	dom     *xen.Domain
	bus     *xenbus.Bus
	reg     *blkif.Registry
	devid   int
	backDom xen.DomID
	costs   Costs

	frontPath string
	backPath  string

	wantQueues int
	queues     []*queue

	persistent  bool
	maxIndirect int
	sectors     int64
	flushOK     bool

	bufs     *blkpool.Pool
	readBufs *blkpool.Arena // device-private partition for read staging
	// inflight is a slot-indexed shadow table (like Linux blkfront's):
	// request IDs are slot+1 and recycle through freeIDs, so the table
	// grows to the in-flight high-water mark (bounded by ring capacity)
	// and never churns — a map keyed by an ever-increasing ID slowly
	// accretes overflow buckets and bleeds heap bytes forever.
	inflight []*reqPart
	freeIDs  []uint64

	partFree   []*reqPart
	callerFree []*callerOp

	ready   bool
	onReady func()

	stats Stats
}

// Config describes the frontend to create.
type Config struct {
	Dom      *xen.Domain
	Bus      *xenbus.Bus
	Registry *blkif.Registry
	DevID    int
	BackDom  xen.DomID
	Costs    Costs
	Pool     *blkpool.Pool // read-buffer pool; private pool when nil
	// Queues requests a hardware-queue count; the handshake negotiates
	// min(Queues, backend's multi-queue-max-queues). 0 means 1.
	Queues  int
	OnReady func()
}

// New creates the frontend for a toolstack-created vbd and starts
// negotiation.
func New(eng *sim.Engine, cfg Config) *Device {
	costs := cfg.Costs
	if costs.PerRequest == 0 {
		costs = GuestCosts()
	}
	bufs := cfg.Pool
	if bufs == nil {
		bufs = blkpool.New()
	}
	wantQueues := cfg.Queues
	if wantQueues < 1 {
		wantQueues = 1
	}
	if wantQueues > blkif.MaxQueues {
		wantQueues = blkif.MaxQueues
	}
	d := &Device{
		eng: eng, dom: cfg.Dom, bus: cfg.Bus, reg: cfg.Registry,
		devid: cfg.DevID, backDom: cfg.BackDom, costs: costs,
		frontPath:  xenbus.FrontendPath(xenbus.DomID(cfg.Dom.ID), xenstore.DevVbd, cfg.DevID),
		backPath:   xenbus.BackendPath(xenbus.DomID(cfg.BackDom), xenstore.DevVbd, xenbus.DomID(cfg.Dom.ID), cfg.DevID),
		wantQueues: wantQueues,
		bufs:       bufs,
		readBufs:   bufs.NewArena(),
		onReady:    cfg.OnReady,
	}
	d.bus.OnStateChange(d.backPath, func(s xenbus.State) {
		switch s {
		case xenbus.StateInitWait:
			if len(d.queues) == 0 {
				d.init()
			}
		case xenbus.StateConnected:
			if !d.ready && len(d.queues) > 0 {
				d.connect()
			}
		case xenbus.StateClosing, xenbus.StateClosed:
			d.ready = false
		}
	})
	return d
}

// init reads the backend's advertised features, negotiates the queue
// count, and publishes the rings.
func (d *Device) init() {
	st := d.bus.Store()
	d.persistent = d.bus.ReadFeature(d.backPath, xenstore.KeyFeaturePersistent)
	d.flushOK = d.bus.ReadFeature(d.backPath, xenstore.KeyFeatureFlushCache)
	if v, ok := st.ReadInt(d.backPath + "/" + xenstore.KeyFeatureMaxIndirect); ok {
		d.maxIndirect = int(v)
		if d.maxIndirect > blkif.MaxSegsIndirect {
			d.maxIndirect = blkif.MaxSegsIndirect
		}
	}
	if v, ok := st.ReadInt(d.backPath + "/" + xenstore.KeySectors); ok {
		d.sectors = v
	}

	nq := d.wantQueues
	if max := d.bus.ReadNumQueues(d.backPath, xenstore.KeyMultiQueueMaxQueues); nq > max {
		nq = max
	}
	ch := blkif.NewChannel(nq)
	d.queues = make([]*queue, nq)
	for i := 0; i < nq; i++ {
		q := &queue{d: d, id: i, ring: ch.Rings.Queue(i)}
		q.port = d.dom.AllocUnbound(d.backDom)
		if err := d.dom.SetHandler(q.port, q.onEvent); err != nil {
			panic(fmt.Sprintf("blkfront: %v", err))
		}
		d.queues[i] = q
	}
	d.reg.Publish(d.dom.ID, d.devid, ch)

	if nq == 1 {
		// Legacy flat keys, exactly like a single-queue blkfront.
		st.Writef(d.frontPath+"/"+xenstore.KeyRingRef, "%d", d.devid+100)
		st.Writef(d.frontPath+"/"+xenstore.KeyEventChannel, "%d", d.queues[0].port)
	} else {
		d.bus.WriteNumQueues(d.frontPath, nq)
		for i, q := range d.queues {
			qp := xenbus.QueuePath(d.frontPath, i)
			st.Writef(qp+"/"+xenstore.KeyRingRef, "%d", d.devid+100+i)
			st.Writef(qp+"/"+xenstore.KeyEventChannel, "%d", q.port)
		}
	}
	st.Write(d.frontPath+"/"+xenstore.KeyProtocol, "x86_64-abi")
	d.bus.WriteFeature(d.frontPath, xenstore.KeyFeaturePersistent, d.persistent)
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateInitialised); err != nil {
		panic(fmt.Sprintf("blkfront: %v", err))
	}
}

func (d *Device) connect() {
	d.ready = true
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateConnected); err != nil {
		panic(fmt.Sprintf("blkfront: %v", err))
	}
	if d.onReady != nil {
		d.onReady()
	}
}

// Ready reports whether the device is connected.
func (d *Device) Ready() bool { return d.ready }

// Engine returns the simulation engine the device runs on.
func (d *Device) Engine() *sim.Engine { return d.eng }

// SectorCount returns the virtual disk size in sectors.
func (d *Device) SectorCount() int64 { return d.sectors }

// Persistent reports whether persistent grants were negotiated.
func (d *Device) Persistent() bool { return d.persistent }

// MaxIndirect returns the negotiated indirect segment limit (0 = none).
func (d *Device) MaxIndirect() int { return d.maxIndirect }

// NumQueues returns the negotiated hardware-queue count (0 before
// negotiation).
func (d *Device) NumQueues() int { return len(d.queues) }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// BufPool returns the read-buffer pool, for leak accounting: its
// Outstanding() must be zero when no read callback is on the stack.
func (d *Device) BufPool() *blkpool.Pool { return d.bufs }

// maxBytesPerRequest returns the largest single ring request payload.
func (d *Device) maxBytesPerRequest() int {
	if d.maxIndirect > 0 {
		return d.maxIndirect * mem.PageSize
	}
	return blkif.MaxSegsDirect * mem.PageSize
}

// queueFor maps a virtual sector to its hardware queue by stripe.
func (d *Device) queueFor(sector int64) *queue {
	if len(d.queues) == 1 {
		return d.queues[0]
	}
	return d.queues[int((sector/stripeSectors)%int64(len(d.queues)))]
}

// getPage hands out a granted page: from the queue's persistent pool when
// negotiated (grant stays live across requests), else freshly granted.
func (q *queue) getPage() poolPage {
	d := q.d
	if d.persistent {
		if n := len(q.pool); n > 0 {
			p := q.pool[n-1]
			q.pool = q.pool[:n-1]
			return p
		}
	}
	page := d.dom.Arena.MustAlloc()
	ref := d.dom.GrantAccess(d.backDom, page, false)
	return poolPage{page: page, ref: ref}
}

// putPage returns a page after response: to the queue's pool (persistent)
// or revoked and freed.
func (q *queue) putPage(p poolPage) {
	d := q.d
	if d.persistent {
		q.pool = append(q.pool, p)
		return
	}
	if err := d.dom.EndAccess(p.ref); err == nil {
		d.dom.Arena.Free(p.page)
	}
}

func (d *Device) getPart() *reqPart {
	if n := len(d.partFree); n > 0 {
		p := d.partFree[n-1]
		d.partFree = d.partFree[:n-1]
		return p
	}
	return &reqPart{} //kite:alloc-ok freelist growth; steady state recycles parts
}

func (d *Device) putPart(p *reqPart) {
	p.q = nil
	p.pages = p.pages[:0]
	p.indirect = p.indirect[:0]
	p.segs = p.segs[:0]
	p.indRefs = p.indRefs[:0]
	p.readDst = nil
	p.parent = nil
	d.partFree = append(d.partFree, p)
}

func (d *Device) getCaller() *callerOp {
	if n := len(d.callerFree); n > 0 {
		c := d.callerFree[n-1]
		d.callerFree = d.callerFree[:n-1]
		return c
	}
	return &callerOp{} //kite:alloc-ok freelist growth; steady state recycles ops
}

func (d *Device) putCaller(c *callerOp) {
	c.err = nil
	c.readBuf = nil
	c.buf = nil
	c.doneRead = nil
	c.doneErr = nil
	d.callerFree = append(d.callerFree, c)
}

// ReadSectors reads n bytes (sector-aligned) starting at sector. The data
// slice passed to cb is backed by a pooled buffer and is valid only during
// the callback; copy it (or use ReadSectorsInto) to keep it.
func (d *Device) ReadSectors(sector int64, n int, cb func(data []byte, err error)) {
	if err := d.validate(sector, n); err != nil {
		d.eng.After(0, func() { cb(nil, err) })
		return
	}
	d.stats.Reads++
	d.stats.ReadBytes += uint64(n)
	op := d.getCaller()
	op.buf = d.readBufs.Get(n)
	op.readBuf = op.buf.Bytes()
	op.doneRead = cb
	d.split(blkif.OpRead, sector, nil, op)
}

// ReadSectorsInto reads n=len(dst) bytes (sector-aligned) starting at
// sector directly into dst, avoiding the pooled intermediate entirely.
//
//kite:hotpath
func (d *Device) ReadSectorsInto(sector int64, dst []byte, cb func(err error)) {
	if err := d.validate(sector, len(dst)); err != nil {
		d.eng.After(0, func() { cb(err) }) //kite:alloc-ok validation-error path
		return
	}
	d.stats.Reads++
	d.stats.ReadBytes += uint64(len(dst))
	op := d.getCaller()
	op.readBuf = dst
	op.doneErr = cb
	d.split(blkif.OpRead, sector, nil, op)
}

// WriteSectors writes sector-aligned data at sector. data must stay valid
// until cb fires.
//
//kite:hotpath
func (d *Device) WriteSectors(sector int64, data []byte, cb func(err error)) {
	if err := d.validate(sector, len(data)); err != nil {
		d.eng.After(0, func() { cb(err) }) //kite:alloc-ok validation-error path
		return
	}
	d.stats.Writes++
	d.stats.WriteBytes += uint64(len(data))
	op := d.getCaller()
	op.doneErr = cb
	d.split(blkif.OpWrite, sector, data, op)
}

// Flush issues a cache-flush barrier on queue 0 (the device flush drains
// every hardware queue, so one barrier request suffices — blk-mq flushes
// through a single hctx the same way).
func (d *Device) Flush(cb func(err error)) {
	d.stats.Flushes++
	op := d.getCaller()
	op.remaining = 1
	op.doneErr = cb
	d.queues[0].submitOrQueue(pendingOp{flush: true, caller: op})
}

func (d *Device) validate(sector int64, n int) error {
	if !d.ready {
		return fmt.Errorf("blkfront: device %d not connected", d.devid)
	}
	if n%blkif.SectorSize != 0 || n <= 0 {
		return fmt.Errorf("blkfront: unaligned or empty i/o (%d bytes)", n)
	}
	if sector < 0 || sector+int64(n/blkif.SectorSize) > d.sectors {
		return fmt.Errorf("blkfront: i/o beyond device (sector %d + %d bytes)", sector, n)
	}
	return nil
}

// chunkBytes returns how many bytes the request starting at byte offset
// off into the op may carry: capped by the negotiated per-request limit
// and (multi-queue) by the distance to the next stripe boundary, so every
// request sits entirely within one queue's stripe.
func (d *Device) chunkBytes(sector int64, off, n, maxB int) int {
	size := n - off
	if size > maxB {
		size = maxB
	}
	if len(d.queues) > 1 {
		cur := sector + int64(off/blkif.SectorSize)
		boundary := (cur/stripeSectors + 1) * stripeSectors
		if room := int(boundary-cur) * blkif.SectorSize; size > room {
			size = room
		}
	}
	return size
}

// split chops a caller op into ring requests within the negotiated limits
// and steers each at its stripe's queue.
func (d *Device) split(op blkif.Op, sector int64, data []byte, caller *callerOp) {
	maxB := d.maxBytesPerRequest()
	n := len(data)
	if op == blkif.OpRead {
		n = len(caller.readBuf)
	}
	// Count the chunks first: completions are asynchronous (event-driven),
	// so remaining is stable for the duration of the submission loop.
	count := 0
	for off := 0; off < n; off += d.chunkBytes(sector, off, n, maxB) {
		count++
	}
	caller.remaining = count
	for off := 0; off < n; {
		size := d.chunkBytes(sector, off, n, maxB)
		start := sector + int64(off/blkif.SectorSize)
		p := pendingOp{
			op:     op,
			sector: start,
			size:   size,
			caller: caller, readOff: off,
		}
		if op == blkif.OpWrite {
			p.writeData = data[off : off+size]
		}
		d.queueFor(start).submitOrQueue(p)
		off += size
	}
}

// submitOrQueue tries the submission now, or backlogs it until ring space
// frees up. Order is preserved per queue: nothing jumps a non-empty
// backlog.
func (q *queue) submitOrQueue(p pendingOp) {
	if q.pendHead == len(q.pending) && q.trySubmit(p) {
		return
	}
	q.d.stats.QueuedFull++
	q.pending = append(q.pending, p)
}

func (q *queue) trySubmit(p pendingOp) bool {
	if p.flush {
		return q.pushFlush(p.caller)
	}
	return q.pushRequest(p.op, p.sector, p.size, p.writeData, p.readOff, p.caller)
}

func (q *queue) pumpPending() {
	for q.pendHead < len(q.pending) && q.trySubmit(q.pending[q.pendHead]) {
		q.pending[q.pendHead] = pendingOp{} // drop slice references
		q.pendHead++
	}
	if q.pendHead == len(q.pending) {
		q.pending = q.pending[:0]
		q.pendHead = 0
	}
}

// pushRequest builds and pushes one ring request; false if the ring is
// full.
// allocID parks part in the shadow table and returns its request ID
// (slot+1; 0 never appears on the ring, so a zero response ID is noise).
func (d *Device) allocID(part *reqPart) uint64 {
	if n := len(d.freeIDs); n > 0 {
		id := d.freeIDs[n-1]
		d.freeIDs = d.freeIDs[:n-1]
		d.inflight[id-1] = part
		return id
	}
	d.inflight = append(d.inflight, part) //kite:alloc-ok shadow table grows to the in-flight high-water mark
	return uint64(len(d.inflight))
}

// takeInflight claims the in-flight part for a response ID and recycles
// the slot; nil for an ID the table does not know.
func (d *Device) takeInflight(id uint64) *reqPart {
	if id == 0 || id > uint64(len(d.inflight)) {
		return nil
	}
	part := d.inflight[id-1]
	if part != nil {
		d.inflight[id-1] = nil
		d.freeIDs = append(d.freeIDs, id) //kite:alloc-ok free list grows to the in-flight high-water mark
	}
	return part
}

func (q *queue) pushRequest(op blkif.Op, sector int64, size int, writeData []byte, readOff int, caller *callerOp) bool {
	d := q.d
	nsegs := (size + mem.PageSize - 1) / mem.PageSize
	indirect := nsegs > blkif.MaxSegsDirect
	if q.ring.Full() {
		return false
	}
	part := d.getPart()
	part.op, part.parent, part.q = op, caller, q
	id := d.allocID(part)

	for i := 0; i < nsegs; i++ {
		segBytes := size - i*mem.PageSize
		if segBytes > mem.PageSize {
			segBytes = mem.PageSize
		}
		pp := q.getPage()
		part.pages = append(part.pages, pp)
		if op == blkif.OpWrite {
			pp.page.CopyInto(0, writeData[i*mem.PageSize:i*mem.PageSize+segBytes])
		}
		part.segs = append(part.segs, blkif.Segment{
			Ref:       pp.ref,
			FirstSect: 0,
			LastSect:  segBytes/blkif.SectorSize - 1,
		})
	}
	if op == blkif.OpRead {
		part.readDst = caller.readBuf[readOff : readOff+size]
	}

	req := blkif.Request{ID: id, Op: op, Sector: sector}
	cost := d.costs.PerRequest
	if op == blkif.OpWrite && d.persistent {
		cost += sim.Time(size) * d.costs.PerKBCopy / 1024
	}
	if indirect {
		// Write descriptors into granted indirect pages.
		npages := (nsegs + blkif.SegsPerIndirectPage - 1) / blkif.SegsPerIndirectPage
		req.Op = blkif.OpIndirect
		req.Imm = op
		req.IndirectSegs = nsegs
		d.stats.IndirectRequests++
		for pi := 0; pi < npages; pi++ {
			ip := q.getPage()
			part.indirect = append(part.indirect, ip)
			for si := pi * blkif.SegsPerIndirectPage; si < nsegs && si < (pi+1)*blkif.SegsPerIndirectPage; si++ {
				blkif.PutSegment(ip.page, si%blkif.SegsPerIndirectPage, part.segs[si])
			}
			part.indRefs = append(part.indRefs, ip.ref)
		}
		req.IndirectRefs = part.indRefs
	} else {
		req.Segs = part.segs
	}

	d.dom.CPUs.Charge(cost)
	d.stats.RingRequests++
	if !q.ring.PushRequest(req) {
		panic("blkfront: ring full despite check")
	}
	if q.ring.PushRequestsAndCheckNotify() {
		d.dom.Notify(q.port)
	}
	return true
}

func (q *queue) pushFlush(caller *callerOp) bool {
	d := q.d
	if q.ring.Full() {
		return false
	}
	part := d.getPart()
	part.op, part.parent, part.q = blkif.OpFlush, caller, q
	id := d.allocID(part)
	q.ring.PushRequest(blkif.Request{ID: id, Op: blkif.OpFlush})
	d.stats.RingRequests++
	if q.ring.PushRequestsAndCheckNotify() {
		d.dom.Notify(q.port)
	}
	return true
}

// onEvent reaps this queue's completions.
//
//kite:hotpath
func (q *queue) onEvent() {
	d := q.d
	for {
		rsp, ok := q.ring.TakeResponse()
		if !ok {
			if q.ring.FinalCheckForResponses() {
				continue
			}
			break
		}
		part := d.takeInflight(rsp.ID)
		if part == nil {
			continue
		}
		d.completePart(part, rsp.Status)
	}
	q.pumpPending()
}

func (d *Device) completePart(part *reqPart, status int8) {
	caller := part.parent
	q := part.q
	if status != blkif.StatusOK {
		caller.err = fmt.Errorf("blkfront: backend reported error %d", status) //kite:alloc-ok backend-error path
	} else if part.op == blkif.OpRead {
		// Copy data out of the (persistent) pages into the caller buffer.
		copied := 0
		for _, pp := range part.pages {
			n := len(part.readDst) - copied
			if n > mem.PageSize {
				n = mem.PageSize
			}
			copy(part.readDst[copied:copied+n], pp.page.Data[:n])
			copied += n
		}
		d.dom.CPUs.Charge(sim.Time(copied) * d.costs.PerKBCopy / 1024)
	}
	for _, pp := range part.pages {
		q.putPage(pp)
	}
	for _, ip := range part.indirect {
		q.putPage(ip)
	}
	d.putPart(part)
	caller.remaining--
	if caller.remaining != 0 {
		return
	}
	// Deliver the completion, then recycle: a pooled read buffer is valid
	// only while the callback runs.
	if caller.doneRead != nil {
		caller.doneRead(caller.readBuf, caller.err)
	} else if caller.doneErr != nil {
		caller.doneErr(caller.err)
	}
	if caller.buf != nil {
		caller.buf.Release()
	}
	d.putCaller(caller)
}
