package netback

import (
	"fmt"

	"kite/internal/bridge"
	"kite/internal/sim"
	"kite/internal/xen"
)

// A ServiceLane is the fleet-mode execution unit of the netback driver:
// one worker thread on one pinned vCPU (and one cluster shard) serving
// the single-queue VIFs of many tenant guests. One guest per
// pusher+soft_start pair does not survive contact with hundreds of
// guests — the task count explodes and a noisy guest's full rings keep
// its threads perpetually runnable, starving quieter tenants on the same
// vCPU. The lane replaces the per-VIF threads with one deficit-round-
// robin scheduler: every active member queue earns a byte quantum per
// round, a round serves each member's Tx ring and Rx backlog up to its
// accumulated deficit, and a member with remaining backlog stays in the
// round list while a drained member leaves (and forfeits its deficit, per
// DRR). A tenant offering 10x load therefore gets exactly its share per
// round and no more.
//
// Doorbells are batched the same way: the lane owns one xen.Demux group,
// every member port joins it, and a single scan per doorbell quantum
// drains the pending bitmap — one wake serves rings for many domains
// instead of one upcall per (domain, queue).
type ServiceLane struct {
	id  int
	eng *sim.Engine // the lane's cluster shard
	cpu *sim.CPU    // the backend worker vCPU
	// brLane is the lane's pinned bridge forwarding lane. All members
	// charge the lane vCPU in execution order, so their stamped bridge
	// arrival times are monotone — the single-producer contract
	// bridge.Lane.InputAt requires holds across tenants.
	brLane *bridge.Lane
	demux  *xen.Demux
	worker *sim.Task

	// quantum is the DRR byte allotment added to each active member per
	// round. It is deliberately several MTUs so a round moves a useful
	// burst per tenant; fairness is unaffected by the exact value.
	quantum int

	// active is the DRR round list in activation order; compacted in
	// place each round, so it grows to the member high-water mark and
	// then never allocates.
	active []*vifQueue

	rounds uint64
}

// laneQuantum is the default per-tenant byte allotment per DRR round.
const laneQuantum = 16 << 10

// NewServiceLane creates fleet lane id for dom: worker pinned to cpu on
// shard, forwarding on fwdCPU, doorbells demuxed at the costs' wake
// latency.
func NewServiceLane(id int, dom *xen.Domain, shard *sim.Engine, cpu *sim.CPU,
	br *bridge.Bridge, fwdCPU *sim.CPU, costs Costs) *ServiceLane {

	l := &ServiceLane{id: id, eng: shard, cpu: cpu, quantum: laneQuantum}
	cpu.SetEngine(shard)
	l.brLane = br.NewLane(fwdCPU)
	l.demux = dom.NewDemux(cpu, costs.WakeLatency)
	l.worker = sim.NewTask(shard, cpu, fmt.Sprintf("netback/lane%d", id),
		costs.WakeLatency, l.round)
	return l
}

// ID returns the lane index.
func (l *ServiceLane) ID() int { return l.id }

// Members returns how many tenant queues have joined the lane's demux.
func (l *ServiceLane) Members() int { return l.demux.Members() }

// Rounds returns how many DRR rounds the worker has executed.
func (l *ServiceLane) Rounds() uint64 { return l.rounds }

// DemuxStats reports the lane's doorbell batching: scans executed and
// member doorbells absorbed into them.
func (l *ServiceLane) DemuxStats() (scans, marks uint64) { return l.demux.Stats() }

// detach removes a departing tenant's queue from the lane: its doorbell
// leaves the demux group and any spot in the current DRR round is
// forfeited. Runs during VIF.Shutdown, before the queue's port closes —
// a churning fleet must not pin one dead member slot per departure.
func (l *ServiceLane) detach(q *vifQueue) {
	l.demux.Leave(q.port)
	if q.laneActive {
		for i, m := range l.active {
			if m == q {
				l.active = append(l.active[:i], l.active[i+1:]...)
				break
			}
		}
		q.laneActive = false
	}
	q.deficit = 0
}

// activate puts q into the DRR round list (if not already there) and
// wakes the worker.
//
//kite:hotpath
func (l *ServiceLane) activate(q *vifQueue) {
	if !q.laneActive {
		q.laneActive = true
		l.active = append(l.active, q) //kite:alloc-ok round list grows to the member high-water mark
	}
	l.worker.Wake()
}

// round is the worker body: one deficit-round-robin pass over the active
// members. Each member earns a quantum, serves its Tx ring then its Rx
// backlog against the accumulated deficit, and stays in the list only if
// budget — not work — ran out. Members are visited in activation order
// and compacted in place; another round is scheduled while anyone still
// has backlog.
func (l *ServiceLane) round() {
	n := len(l.active)
	if n == 0 {
		return
	}
	l.rounds++
	keep := l.active[:0]
	for i := 0; i < n; i++ {
		q := l.active[i]
		q.deficit += l.quantum
		used, more := q.drainTxBudget(q.deficit)
		q.deficit -= used
		rx := q.deficit
		if rx < 0 {
			rx = 0
		}
		used, rxMore := q.drainRxBudget(rx)
		q.deficit -= used
		if more || rxMore {
			keep = append(keep, q) // in place: keep's write index never passes i
		} else {
			// Drained: leave the round and forfeit the unused deficit, so
			// idle tenants cannot bank credit against future backlogs.
			q.laneActive = false
			q.deficit = 0
		}
	}
	for i := len(keep); i < n; i++ {
		l.active[i] = nil // drop dangling member references past the compacted tail
	}
	l.active = keep
	if len(l.active) > 0 {
		l.worker.Wake()
	}
}
