package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x")
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 || !almost(s.Sum(), 10) || !almost(s.Mean(), 2.5) {
		t.Fatalf("n=%d sum=%v mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if !almost(s.Min(), 1) || !almost(s.Max(), 4) {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
}

func TestEmptySeriesSafe(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.StdDev() != 0 || s.RSD() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series returned non-zero stats")
	}
}

func TestStdDevKnown(t *testing.T) {
	s := NewSeries("x")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !almost(s.StdDev(), 2) {
		t.Fatalf("stddev = %v, want 2", s.StdDev())
	}
	if !almost(s.RSD(), 40) {
		t.Fatalf("rsd = %v%%, want 40%%", s.RSD())
	}
}

func TestPercentiles(t *testing.T) {
	s := NewSeries("x")
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); !almost(got, 50) {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := s.Percentile(99); !almost(got, 99) {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := s.Percentile(0); !almost(got, 1) {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := s.Percentile(100); !almost(got, 100) {
		t.Fatalf("p100 = %v, want 100", got)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	s := NewSeries("x")
	for _, v := range []float64{9, 1, 5, 3, 7} {
		s.Add(v)
	}
	if got := s.Median(); !almost(got, 5) {
		t.Fatalf("median = %v, want 5", got)
	}
	// Adding after a sorted read must still work.
	s.Add(0)
	if got := s.Min(); !almost(got, 0) {
		t.Fatalf("min after re-add = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "name", "value")
	tb.AddRow("linux", "1.0")
	tb.AddRow("kite", "2.0")
	out := tb.String()
	for _, want := range []string{"== Fig X ==", "name", "linux", "kite", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "z", "dropped-extra")
	out := tb.String()
	if strings.Contains(out, "dropped-extra") {
		t.Fatal("extra cell was not dropped")
	}
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row lost its cell")
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRowf(1234.5678)
	if !strings.Contains(tb.String(), "1235") {
		t.Fatalf("large float not rounded: %s", tb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		42.42:   "42.4",
		1.2345:  "1.234",
		0.01234: "0.01234",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(10, 11, 1.2) {
		t.Fatal("10 vs 11 should be within factor 1.2")
	}
	if WithinFactor(10, 13, 1.2) {
		t.Fatal("10 vs 13 should not be within factor 1.2")
	}
	if WithinFactor(0, 5, 2) || WithinFactor(5, -1, 2) {
		t.Fatal("non-positive inputs must report false")
	}
	if !WithinFactor(7, 7, 1) {
		t.Fatal("equal values must be within factor 1")
	}
}

func TestRatioGuards(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Fatal("Ratio(4,2) != 2")
	}
	if Ratio(4, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
}

// Property: mean is always within [min, max], and RSD is non-negative.
func TestSeriesInvariants(t *testing.T) {
	prop := func(vals []float64) bool {
		s := NewSeries("p")
		for _, v := range vals {
			// Measurements are physical quantities; bound magnitudes so the
			// sum-of-squares in StdDev cannot overflow.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.RSD() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
