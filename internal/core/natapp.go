package core

import (
	"kite/internal/bridge"
	"kite/internal/framepool"
	"kite/internal/nat"
	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/xen"
)

// natRouter is the network application's NAT mode (§3.1 lists NAT next to
// bridging as the ways netbacks link to the physical NIC). Guests live on
// a private segment behind an inside bridge; the router proxy-ARPs for
// every address so guests send all off-segment traffic to it, translates
// with the nat.Translator, and forwards through the physical interface
// under the gateway address.
//
// Frames stay in their pooled buffers across the router: translation
// rewrites headers in place and forwarding re-stamps the Ethernet header
// in the same buffer, so the NAT hop copies no payload bytes.
type natRouter struct {
	eng  *sim.Engine
	dom  *xen.Domain
	tr   *nat.Translator
	pool *framepool.Pool

	mac     netpkt.MAC
	gateway netpkt.IP

	inside   *bridge.Bridge
	nic      bridge.FrameDevice
	nicMAC   netpkt.MAC
	perFrame sim.Time

	// Learned mappings for delivery.
	guestMACs map[netpkt.IP]netpkt.MAC
	// insideNet is the /24 of the private segment, learned from the first
	// inside speaker; the router never proxy-ARPs for on-segment targets.
	insideNet [3]byte
	insideSet bool

	// Outside neighbour cache + ARP-pending queue (pending entries hold one
	// buffer reference each).
	outARP     map[netpkt.IP]netpkt.MAC
	outPending map[netpkt.IP][]*framepool.Buf

	// outq holds routed frames until their per-frame CPU charge completes;
	// one Batch event per burst. lastOut is the monotonic watermark.
	outq    sim.FIFO[routed]
	flush   *sim.Batch
	lastOut sim.Time
}

// routed is one charged frame awaiting forwarding; inward frames go to the
// inside bridge, outward ones to the physical NIC. The FIFO holds one
// buffer reference per entry.
type routed struct {
	at     sim.Time
	frame  *framepool.Buf
	inward bool
}

// newNATRouter builds the router and attaches it to the inside bridge and
// the physical NIC.
func newNATRouter(eng *sim.Engine, dom *xen.Domain, inside *bridge.Bridge,
	nic bridge.FrameDevice, nicMAC netpkt.MAC, gateway netpkt.IP,
	perFrame sim.Time, pool *framepool.Pool) *natRouter {

	if pool == nil {
		pool = framepool.New()
	}
	r := &natRouter{
		eng: eng, dom: dom,
		tr:         nat.New(eng, dom.CPUs, gateway),
		pool:       pool,
		mac:        netpkt.MAC{0x00, 0x16, 0x3e, 0xaa, 0x00, 0x01},
		gateway:    gateway,
		inside:     inside,
		nic:        nic,
		nicMAC:     nicMAC,
		perFrame:   perFrame,
		guestMACs:  make(map[netpkt.IP]netpkt.MAC),
		outARP:     make(map[netpkt.IP]netpkt.MAC),
		outPending: make(map[netpkt.IP][]*framepool.Buf),
	}
	r.flush = sim.NewBatch(eng, r.flushRouted)
	inside.AddPort(r)
	nic.SetRecv(r.fromOutside)
	return r
}

// Translator exposes the NAT state (port forwards, stats).
func (r *natRouter) Translator() *nat.Translator { return r.tr }

// PortName implements bridge.Port.
func (r *natRouter) PortName() string { return "nat0" }

// Deliver implements bridge.Port: a frame from the inside segment reached
// the router (guests address it via proxy ARP, or it was flooded). The
// router consumes the bridge's buffer reference.
func (r *natRouter) Deliver(frame *framepool.Buf) {
	raw := frame.Bytes()
	f, ok := netpkt.DecodeFrame(raw)
	if !ok {
		frame.Release()
		return
	}
	switch f.EtherType {
	case netpkt.EtherTypeARP:
		r.insideARP(&f)
		frame.Release()
	case netpkt.EtherTypeIPv4:
		if f.Dst != r.mac && f.Dst != netpkt.Broadcast {
			frame.Release()
			return
		}
		r.learnGuest(&f)
		frame = r.exclusive(frame)
		if !r.tr.RewriteOutbound(frame.Bytes()[netpkt.EthHeaderLen:]) {
			frame.Release()
			return
		}
		r.route(frame, false)
	default:
		frame.Release()
	}
}

// route queues one translated frame for forwarding when its per-frame CPU
// charge completes.
func (r *natRouter) route(frame *framepool.Buf, inward bool) {
	at := r.dom.CPUs.Charge(r.perFrame)
	if at < r.lastOut {
		at = r.lastOut
	}
	r.lastOut = at
	r.outq.Push(routed{at: at, frame: frame, inward: inward})
	r.flush.Arm(at)
}

// flushRouted forwards every matured frame and re-arms for the rest.
func (r *natRouter) flushRouted() {
	now := r.eng.Now()
	for r.outq.Len() > 0 && r.outq.Peek().at <= now {
		d := r.outq.Pop()
		if d.inward {
			r.inside.Input(r, d.frame)
		} else {
			r.sendOutside(d.frame)
		}
	}
	if p := r.outq.Peek(); p != nil {
		r.flush.Arm(p.at)
	}
}

// exclusive returns a frame safe to rewrite in place: a buffer shared with
// other flood targets is cloned first (copy-on-write; the steady-state
// unicast path stays zero-copy).
func (r *natRouter) exclusive(frame *framepool.Buf) *framepool.Buf {
	if frame.Refs() == 1 {
		return frame
	}
	cp := r.pool.Get()
	copy(cp.Extend(frame.Len()), frame.Bytes())
	frame.Release()
	return cp
}

// arpFrame builds a pooled Ethernet+ARP frame.
func (r *natRouter) arpFrame(a netpkt.ARP, dst, src netpkt.MAC) *framepool.Buf {
	b := r.pool.Get()
	a.MarshalInto(b.Extend(netpkt.ARPLen))
	f := netpkt.Frame{Dst: dst, Src: src, EtherType: netpkt.EtherTypeARP}
	f.HeaderInto(b.Prepend(netpkt.EthHeaderLen))
	return b
}

// insideARP answers every inside ARP request with the router's MAC (proxy
// ARP) so guests forward off-segment traffic here, and learns sender
// addresses for inbound delivery.
func (r *natRouter) insideARP(f *netpkt.Frame) {
	a, ok := netpkt.DecodeARP(f.Payload)
	if !ok {
		return
	}
	r.guestMACs[a.SenderIP] = a.SenderMAC
	if !r.insideSet {
		r.insideNet = [3]byte{a.SenderIP[0], a.SenderIP[1], a.SenderIP[2]}
		r.insideSet = true
	}
	if a.Op != netpkt.ARPRequest || a.SenderIP == a.TargetIP {
		return
	}
	// On-segment targets answer for themselves; proxying would hijack
	// guest-to-guest traffic.
	if r.insideSet && [3]byte{a.TargetIP[0], a.TargetIP[1], a.TargetIP[2]} == r.insideNet {
		return
	}
	reply := netpkt.ARP{
		Op: netpkt.ARPReply, SenderMAC: r.mac, SenderIP: a.TargetIP,
		TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
	}
	r.route(r.arpFrame(reply, a.SenderMAC, r.mac), true)
}

func (r *natRouter) learnGuest(f *netpkt.Frame) {
	if h, _, ok := netpkt.DecodeIPv4(f.Payload); ok {
		r.guestMACs[h.Src] = f.Src
	}
}

// sendOutside resolves the next hop on the physical segment and transmits,
// re-stamping the frame's Ethernet header in place. Consumes the buffer
// reference.
func (r *natRouter) sendOutside(frame *framepool.Buf) {
	raw := frame.Bytes()
	h, _, ok := netpkt.DecodeIPv4(raw[netpkt.EthHeaderLen:])
	if !ok {
		frame.Release()
		return
	}
	if mac, ok := r.outARP[h.Dst]; ok {
		f := netpkt.Frame{Dst: mac, Src: r.nicMAC, EtherType: netpkt.EtherTypeIPv4}
		f.HeaderInto(raw[:netpkt.EthHeaderLen])
		r.nic.Send(frame)
		return
	}
	r.outPending[h.Dst] = append(r.outPending[h.Dst], frame)
	req := netpkt.ARP{Op: netpkt.ARPRequest, SenderMAC: r.nicMAC, SenderIP: r.gateway, TargetIP: h.Dst}
	r.nic.Send(r.arpFrame(req, netpkt.Broadcast, r.nicMAC))
}

// fromOutside handles frames arriving on the physical interface, consuming
// the device's buffer reference.
func (r *natRouter) fromOutside(frame *framepool.Buf) {
	raw := frame.Bytes()
	f, ok := netpkt.DecodeFrame(raw)
	if !ok {
		frame.Release()
		return
	}
	switch f.EtherType {
	case netpkt.EtherTypeARP:
		r.outsideARP(&f)
		frame.Release()
	case netpkt.EtherTypeIPv4:
		if f.Dst != r.nicMAC && f.Dst != netpkt.Broadcast {
			frame.Release()
			return
		}
		frame = r.exclusive(frame)
		raw = frame.Bytes()
		guest, ok := r.tr.RewriteInbound(raw[netpkt.EthHeaderLen:])
		if !ok {
			frame.Release()
			return
		}
		mac, ok := r.guestMACs[guest]
		if !ok {
			frame.Release()
			return // guest never spoke; nothing to deliver to
		}
		ef := netpkt.Frame{Dst: mac, Src: r.mac, EtherType: netpkt.EtherTypeIPv4}
		ef.HeaderInto(raw[:netpkt.EthHeaderLen])
		r.route(frame, true)
	default:
		frame.Release()
	}
}

// outsideARP answers requests for the gateway and learns outside peers.
func (r *natRouter) outsideARP(f *netpkt.Frame) {
	a, ok := netpkt.DecodeARP(f.Payload)
	if !ok {
		return
	}
	r.outARP[a.SenderIP] = a.SenderMAC
	// Flush packets that waited for this resolution.
	if queued := r.outPending[a.SenderIP]; len(queued) > 0 {
		delete(r.outPending, a.SenderIP)
		for _, pkt := range queued {
			r.sendOutside(pkt)
		}
	}
	if a.Op == netpkt.ARPRequest && a.TargetIP == r.gateway {
		reply := netpkt.ARP{
			Op: netpkt.ARPReply, SenderMAC: r.nicMAC, SenderIP: r.gateway,
			TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
		}
		r.nic.Send(r.arpFrame(reply, a.SenderMAC, r.nicMAC))
	}
}
