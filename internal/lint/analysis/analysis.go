// Package analysis is a minimal, dependency-free stand-in for the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer runs over one
// typechecked package at a time and reports position-anchored diagnostics.
// Unlike x/tools, a Pass also carries a whole-module view (every package
// the loader has typechecked plus an index from function objects to their
// declarations), because Kite's invariants — "nothing reachable from a
// //kite:hotpath root allocates" — are properties of the module, not of
// one compilation unit.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kite/internal/lint/loader"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *loader.Package
	Module   *Module
	Report   func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Module is the whole-program view shared by every pass of one run.
type Module struct {
	Path  string
	Pkgs  []*loader.Package
	Fset  *token.FileSet
	decls map[*types.Func]*FuncDecl
}

// FuncDecl pairs a declaration with the package it lives in.
type FuncDecl struct {
	Pkg  *loader.Package
	Decl *ast.FuncDecl
}

// NewModule indexes the given packages.
func NewModule(modulePath string, pkgs []*loader.Package) *Module {
	m := &Module{Path: modulePath, Pkgs: pkgs, decls: make(map[*types.Func]*FuncDecl)}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m.decls[obj] = &FuncDecl{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	return m
}

// FuncDecl returns the declaration of fn, or nil when fn is declared
// outside the module (stdlib) or has no body.
func (m *Module) FuncDecl(fn *types.Func) *FuncDecl { return m.decls[fn] }

// InModule reports whether pkg belongs to this module. Fixture packages
// are registered under the module path, so they count.
func (m *Module) InModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == m.Path || strings.HasPrefix(p, m.Path+"/")
}

// Implementers returns the concrete methods of module-declared types that
// satisfy the interface method fn (class-hierarchy analysis). It is how a
// whole-module walk steps through an interface call like bridge.Port's
// Deliver: every module type implementing the interface contributes its
// method.
func (m *Module) Implementers(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			for _, t := range []types.Type{named, types.NewPointer(named)} {
				if !types.Implements(t, iface) {
					continue
				}
				o, _, _ := types.LookupFieldOrMethod(t, true, pkg.Types, name)
				if fn, ok := o.(*types.Func); ok && !seen[fn] {
					seen[fn] = true
					out = append(out, fn)
				}
			}
		}
	}
	return out
}
