//go:build !race

// The race detector instruments allocations, so the exact-zero assertions
// here only hold in normal builds; `go test -race` skips this file.

package core

import (
	"testing"

	"kite/internal/netstack"
)

// TestForwardPathZeroAlloc asserts the tentpole property: after warmup
// (pool population, FIFO/map high-water marks, ARP and grant caches), one
// forwarded frame allocates nothing on the heap in either direction —
// guest→netfront→netback→bridge→NIC→client (Tx) and the reverse (Rx).
func TestForwardPathZeroAlloc(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 0xa110c)
	if err != nil {
		t.Fatal(err)
	}
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {})
	rig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {})
	payload := pattern(1400)
	eng := rig.System.Eng

	tx := func() {
		rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, 9001, payload)
		eng.Run()
	}
	rx := func() {
		rig.Client.Stack.SendUDP(rig.GuestIP, 9001, 9000, payload)
		eng.Run()
	}
	for i := 0; i < 300; i++ {
		tx()
		rx()
	}

	if allocs := testing.AllocsPerRun(100, tx); allocs != 0 {
		t.Errorf("Tx direction: %.1f allocs per forwarded frame, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, rx); allocs != 0 {
		t.Errorf("Rx direction: %.1f allocs per forwarded frame, want 0", allocs)
	}
	if n := rig.System.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked", n)
	}
}
