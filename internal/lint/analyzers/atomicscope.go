package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"kite/internal/lint/analysis"
)

// Atomicscope keeps determinism from eroding one "harmless" atomic at a
// time: inside a //kite:deterministic package, shard-executed code must
// not use sync/atomic, sync locks, or channel operations AT ALL. The
// parallel core's whole determinism argument (DESIGN §12) is that shard
// state is confined and windows are merged at a barrier in a total order;
// an atomic or a lock inside shard code is a back-channel whose observed
// interleaving depends on the host scheduler — it may look benign (a
// counter, a "just in case" mutex) while quietly making output
// GOMAXPROCS-dependent.
//
// The only exception is the synchronization core itself: the barrier,
// worker parking, and experiment fan-out machinery whose job IS
// cross-goroutine synchronization. Those functions carry //kite:synccore
// on their doc comment; everything they protect stays plain code.
//
// Goroutine launches are simdet's business (//kite:shardsafe escape);
// atomicscope covers the data-level primitives: atomic calls, sync.*
// method calls, channel send/receive/close/range/select, and channel
// creation.
var Atomicscope = &analysis.Analyzer{
	Name: "atomicscope",
	Doc:  "//kite:deterministic packages may use atomics/locks/channels only in //kite:synccore functions",
	Run:  runAtomicscope,
}

func runAtomicscope(pass *analysis.Pass) error {
	if !pkgDirective(pass.Pkg, "deterministic") {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcDirective(fd, "synccore") {
				continue
			}
			scanAtomicscope(pass, info, fd)
		}
	}
	return nil
}

func scanAtomicscope(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"atomicscope: %s in deterministic shard code (%s); move it into a //kite:synccore function or drop it",
			what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SendStmt:
			report(e.Pos(), "channel send")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				report(e.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			report(e.Pos(), "select")
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(e.Pos(), "channel range")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						if tv, ok := info.Types[e]; ok {
							if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
								report(e.Pos(), "channel creation")
							}
						}
					case "close":
						report(e.Pos(), "channel close")
					}
					return true
				}
			}
			if fn := staticCallee(info, e); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sync/atomic":
					report(e.Pos(), "atomic operation "+fn.Name())
				case "sync":
					report(e.Pos(), "sync."+fn.Name()+" call")
				}
			}
		}
		return true
	})
}
