package netback

import (
	"bytes"
	"testing"

	"kite/internal/bridge"
	"kite/internal/framepool"
	"kite/internal/netfront"
	"kite/internal/netif"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/nic"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

// rig is a hand-built network driver domain setup: client host on one end
// of a 10GbE link, a driver domain bridging the NIC to netback VIFs, and a
// guest running its stack over netfront.
type rig struct {
	eng    *sim.Engine
	hv     *xen.Hypervisor
	bus    *xenbus.Bus
	reg    *netif.Registry
	dd     *xen.Domain
	guest  *xen.Domain
	br     *bridge.Bridge
	drv    *Driver
	client *netstack.Host
	gstack *netstack.Stack
	front  *netfront.Device
}

func buildRig(t *testing.T, costs Costs) *rig {
	t.Helper()
	eng := sim.NewEngine()
	hv := xen.New(eng)
	hv.CreateDomain(xen.DomainConfig{Name: "dom0", VCPUs: 2, MemBytes: 256 << 20, Privileged: true,
		IRQLatency: 6 * sim.Microsecond})
	store := xenstore.New(eng)
	bus := xenbus.New(store)
	reg := netif.NewRegistry()

	dd := hv.CreateDomain(xen.DomainConfig{Name: "net-dd", VCPUs: 1, MemBytes: 64 << 20,
		IRQLatency: 3 * sim.Microsecond})
	guest := hv.CreateDomain(xen.DomainConfig{Name: "domU", VCPUs: 4, MemBytes: 128 << 20,
		IRQLatency: 6 * sim.Microsecond})

	// Physical NIC assigned to the driver domain, wired to the client.
	serverNIC := nic.New(eng, "dd/ixgbe0", netpkt.MAC{2, 0, 0, 0, 0, 0x10}, "03:00.0")
	if err := hv.AssignPCI("03:00.0", dd.ID); err != nil {
		t.Fatal(err)
	}
	client := netstack.NewHost(eng, netstack.HostConfig{
		Name: "client", CPUs: 4, IP: netpkt.IPv4(10, 0, 0, 2),
		MAC: netpkt.MAC{2, 0, 0, 0, 0, 0x20}, BDF: "81:00.0",
		Costs: netstack.LinuxGuestCosts(), Seed: 11,
	})
	nic.Connect(serverNIC, client.NIC, nic.DefaultLink())

	// The network application: bridge + physical IF attachment.
	br := bridge.New(eng, dd.CPUs, "xenbr0")
	br.AttachDevice("if0", serverNIC)

	drv := NewDriver(eng, dd, bus, reg, br, costs, nil)

	// Toolstack adds the vif; frontend comes up in the guest.
	mac := netpkt.XenMAC(uint16(guest.ID), 0)
	bus.AddDevice(xenbus.DeviceSpec{
		Type: "vif", FrontDom: xenbus.DomID(guest.ID), BackDom: xenbus.DomID(dd.ID),
		DevID: 0, FrontExtra: map[string]string{"mac": mac.String()},
	})
	front := netfront.New(eng, netfront.Config{
		Dom: guest, Bus: bus, Registry: reg, DevID: 0, BackDom: dd.ID, MAC: mac,
	})
	gstack := netstack.New(eng, netstack.Config{
		Name: "domU", CPUs: guest.CPUs, Iface: front,
		IP: netpkt.IPv4(10, 0, 0, 1), Costs: netstack.LinuxGuestCosts(), Seed: 22,
	})

	r := &rig{eng: eng, hv: hv, bus: bus, reg: reg, dd: dd, guest: guest,
		br: br, drv: drv, client: client, gstack: gstack, front: front}
	// Let the handshake settle.
	if !eng.RunCapped(100000) {
		t.Fatal("handshake livelocked")
	}
	return r
}

func TestHandshakeConnectsBothEnds(t *testing.T) {
	r := buildRig(t, KiteCosts())
	fp := xenbus.FrontendPath(xenbus.DomID(r.guest.ID), "vif", 0)
	bp := xenbus.BackendPath(xenbus.DomID(r.dd.ID), "vif", xenbus.DomID(r.guest.ID), 0)
	if r.bus.State(fp) != xenbus.StateConnected {
		t.Fatalf("frontend state = %v", r.bus.State(fp))
	}
	if r.bus.State(bp) != xenbus.StateConnected {
		t.Fatalf("backend state = %v", r.bus.State(bp))
	}
	if !r.front.Ready() {
		t.Fatal("frontend not ready")
	}
	if len(r.drv.VIFs()) != 1 {
		t.Fatalf("driver has %d VIFs, want 1", len(r.drv.VIFs()))
	}
	// Bridge has the physical IF and one VIF.
	if len(r.br.Ports()) != 2 {
		t.Fatalf("bridge has %d ports, want 2", len(r.br.Ports()))
	}
}

func TestPingThroughDriverDomain(t *testing.T) {
	r := buildRig(t, KiteCosts())
	var rtt sim.Time = -1
	r.client.Stack.Ping(r.gstack.IP(), 56, func(d sim.Time) { rtt = d })
	if !r.eng.RunCapped(200000) {
		t.Fatal("ping livelocked")
	}
	if rtt <= 0 {
		t.Fatal("no ping reply through the PV path")
	}
	if rtt > 2*sim.Millisecond {
		t.Fatalf("PV-path RTT = %v, implausibly slow", rtt)
	}
}

func TestUDPRoundTripIntegrity(t *testing.T) {
	r := buildRig(t, KiteCosts())
	payload := make([]byte, 8000)
	sim.NewRand(3).Bytes(payload)
	var got []byte
	r.gstack.BindUDP(9000, func(p netstack.UDPPacket) {
		got = p.Data
		r.gstack.SendUDP(p.Src, p.SrcPort, 9000, p.Data) // echo back
	})
	var echoed []byte
	r.client.Stack.BindUDP(5000, func(p netstack.UDPPacket) { echoed = p.Data })
	r.client.Stack.SendUDP(r.gstack.IP(), 9000, 5000, payload)
	if !r.eng.RunCapped(500000) {
		t.Fatal("udp round trip livelocked")
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("guest received corrupted datagram")
	}
	if !bytes.Equal(echoed, payload) {
		t.Fatal("client received corrupted echo")
	}
}

func TestTCPBulkThroughPVPath(t *testing.T) {
	for _, tc := range []struct {
		name  string
		costs Costs
	}{{"kite", KiteCosts()}, {"linux", LinuxCosts()}} {
		t.Run(tc.name, func(t *testing.T) {
			r := buildRig(t, tc.costs)
			payload := make([]byte, 2<<20)
			sim.NewRand(5).Bytes(payload)
			var received []byte
			var start, end sim.Time
			r.gstack.Listen(5201, func(c *netstack.Conn) {
				start = r.eng.Now()
				c.OnData(func(b []byte) {
					received = append(received, b...)
					end = r.eng.Now()
				})
			})
			r.client.Stack.Dial(r.gstack.IP(), 5201, func(c *netstack.Conn, err error) {
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				c.Send(payload)
			})
			if !r.eng.RunCapped(3_000_000) {
				t.Fatal("bulk transfer livelocked")
			}
			if !bytes.Equal(received, payload) {
				t.Fatalf("PV bulk transfer corrupted (%d of %d bytes)", len(received), len(payload))
			}
			gbps := float64(len(payload)*8) / (end - start).Seconds() / 1e9
			if gbps < 2 {
				t.Fatalf("PV throughput = %.2f Gbps, implausibly low", gbps)
			}
		})
	}
}

func TestPusherAndSoftStartThreadsUsed(t *testing.T) {
	r := buildRig(t, KiteCosts())
	r.gstack.BindUDP(9, func(p netstack.UDPPacket) {
		r.gstack.SendUDP(p.Src, p.SrcPort, 9, p.Data)
	})
	r.client.Stack.BindUDP(5000, func(netstack.UDPPacket) {})
	for i := 0; i < 50; i++ {
		r.client.Stack.SendUDP(r.gstack.IP(), 9, 5000, []byte("x"))
	}
	if !r.eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	vif := r.drv.VIFs()[0]
	wakes, runs := vif.PusherRuns()
	if runs == 0 {
		t.Fatal("pusher thread never ran")
	}
	if runs > wakes {
		t.Fatalf("pusher runs (%d) exceed wakes (%d)", runs, wakes)
	}
	st := vif.Stats()
	if st.TxFrames == 0 || st.RxFrames == 0 {
		t.Fatalf("vif moved no traffic: %+v", st)
	}
}

func TestEventCoalescingUnderLoad(t *testing.T) {
	// A batch of back-to-back sends must produce far fewer notifications
	// than frames (ring notification suppression at work).
	r := buildRig(t, KiteCosts())
	r.gstack.BindUDP(9, func(netstack.UDPPacket) {})
	const frames = 200
	for i := 0; i < frames; i++ {
		r.gstack.SendUDP(r.client.Stack.IP(), 9, 5000, make([]byte, 1000))
	}
	if !r.eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	_, _, reqSaved, _ := func() (a, b, c, d uint64) {
		ch, _ := r.reg.Claim(r.guest.ID, 0)
		return ch.Tx.Stats()
	}()
	if reqSaved == 0 {
		t.Fatal("no notifications were suppressed under bulk load")
	}
}

func TestFrontendCloseTearsDownVIF(t *testing.T) {
	r := buildRig(t, KiteCosts())
	fp := xenbus.FrontendPath(xenbus.DomID(r.guest.ID), "vif", 0)
	if err := r.bus.SwitchState(fp, xenbus.StateClosed); err != nil {
		t.Fatal(err)
	}
	if !r.eng.RunCapped(100000) {
		t.Fatal("teardown livelocked")
	}
	if len(r.drv.VIFs()) != 0 {
		t.Fatal("VIF survived frontend close")
	}
	if len(r.br.Ports()) != 1 {
		t.Fatalf("bridge has %d ports after teardown, want 1", len(r.br.Ports()))
	}
	bp := xenbus.BackendPath(xenbus.DomID(r.dd.ID), "vif", xenbus.DomID(r.guest.ID), 0)
	if r.bus.State(bp) != xenbus.StateClosed {
		t.Fatalf("backend state = %v, want Closed", r.bus.State(bp))
	}
}

func TestDriverDomainCrashIsolation(t *testing.T) {
	// Destroying the driver domain must not disturb Dom0, xenstore, or the
	// guest — the isolation benefit driver domains exist for (§2.3).
	r := buildRig(t, KiteCosts())
	if err := r.hv.DestroyDomain(r.dd.ID); err != nil {
		t.Fatal(err)
	}
	if !r.eng.RunCapped(100000) {
		t.Fatal("crash handling livelocked")
	}
	if r.hv.Domain(0) == nil || r.hv.Domain(r.guest.ID) == nil {
		t.Fatal("crash of driver domain affected other domains")
	}
	// Guest I/O now fails gracefully rather than corrupting state.
	pool := framepool.New()
	sent := r.front.Send(pool.From([]byte("into the void")))
	_ = sent // Send may still queue into the ring; what matters is no panic
	r.eng.RunCapped(100000)
	// xenstore still answers.
	if !r.bus.Store().Exists("/local/domain") {
		t.Fatal("xenstore lost state after driver domain crash")
	}
}

func TestMultipleGuestsShareNIC(t *testing.T) {
	r := buildRig(t, KiteCosts())
	// Second guest with its own vif.
	g2 := r.hv.CreateDomain(xen.DomainConfig{Name: "domU2", VCPUs: 2, MemBytes: 64 << 20,
		IRQLatency: 6 * sim.Microsecond})
	mac2 := netpkt.XenMAC(uint16(g2.ID), 0)
	r.bus.AddDevice(xenbus.DeviceSpec{
		Type: "vif", FrontDom: xenbus.DomID(g2.ID), BackDom: xenbus.DomID(r.dd.ID),
		DevID: 0, FrontExtra: map[string]string{"mac": mac2.String()},
	})
	front2 := netfront.New(r.eng, netfront.Config{
		Dom: g2, Bus: r.bus, Registry: r.reg, DevID: 0, BackDom: r.dd.ID, MAC: mac2,
	})
	g2stack := netstack.New(r.eng, netstack.Config{
		Name: "domU2", CPUs: g2.CPUs, Iface: front2,
		IP: netpkt.IPv4(10, 0, 0, 3), Costs: netstack.LinuxGuestCosts(), Seed: 33,
	})
	if !r.eng.RunCapped(100000) {
		t.Fatal("second handshake livelocked")
	}
	if len(r.drv.VIFs()) != 2 {
		t.Fatalf("driver has %d VIFs, want 2", len(r.drv.VIFs()))
	}

	// Guest-to-guest traffic hairpins through the bridge.
	var got string
	g2stack.BindUDP(7, func(p netstack.UDPPacket) { got = string(p.Data) })
	r.gstack.SendUDP(g2stack.IP(), 7, 5000, []byte("cross-vif"))
	if !r.eng.RunCapped(500000) {
		t.Fatal("guest-to-guest livelocked")
	}
	if got != "cross-vif" {
		t.Fatalf("guest-to-guest payload = %q", got)
	}
	// And both guests still reach the client.
	var fromG2 string
	r.client.Stack.BindUDP(8, func(p netstack.UDPPacket) { fromG2 = string(p.Data) })
	g2stack.SendUDP(r.client.Stack.IP(), 8, 5001, []byte("to-client"))
	if !r.eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	if fromG2 != "to-client" {
		t.Fatalf("second guest to client = %q", fromG2)
	}
}

func TestKiteLatencyBeatsLinux(t *testing.T) {
	// The paper's Figure 7: Kite's netback yields lower ping latency than
	// Linux's (0.31ms vs 0.51ms there; here we check the ordering).
	measure := func(costs Costs) sim.Time {
		r := buildRig(t, costs)
		var total sim.Time
		const n = 10
		done := 0
		var one func()
		one = func() {
			r.client.Stack.Ping(r.gstack.IP(), 56, func(d sim.Time) {
				total += d
				done++
				if done < n {
					one()
				}
			})
		}
		one()
		if !r.eng.RunCapped(2_000_000) {
			t.Fatal("ping sweep livelocked")
		}
		if done != n {
			t.Fatalf("only %d of %d pings completed", done, n)
		}
		return total / n
	}
	kite := measure(KiteCosts())
	linux := measure(LinuxCosts())
	if kite >= linux {
		t.Fatalf("Kite RTT (%v) not better than Linux RTT (%v)", kite, linux)
	}
}

func TestInHandlerAblationStillWorks(t *testing.T) {
	costs := KiteCosts()
	costs.InHandler = true
	r := buildRig(t, costs)
	var got string
	r.gstack.BindUDP(7, func(p netstack.UDPPacket) { got = string(p.Data) })
	r.client.Stack.SendUDP(r.gstack.IP(), 7, 5000, []byte("in-handler"))
	if !r.eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	if got != "in-handler" {
		t.Fatalf("payload = %q", got)
	}
}

func TestNetfrontBacklogAbsorbsBursts(t *testing.T) {
	// Blast far more frames than the 256-slot Tx ring holds in one
	// instant: the frontend's qdisc backlog must absorb them (no drops)
	// and every frame must reach the client.
	r := buildRig(t, KiteCosts())
	var rx int
	r.client.Stack.BindUDP(9, func(p netstack.UDPPacket) { rx++ })
	const burst = 600 // > ring(256) + some backlog
	for i := 0; i < burst; i++ {
		r.gstack.SendUDP(r.client.Stack.IP(), 9, 5000, []byte("b"))
	}
	if !r.eng.RunCapped(2_000_000) {
		t.Fatal("burst livelocked")
	}
	if rx != burst {
		t.Fatalf("client received %d of %d burst frames", rx, burst)
	}
	st := r.front.Stats()
	if st.TxRingFull != 0 {
		t.Fatalf("qdisc backlog overflowed: %d drops", st.TxRingFull)
	}
}
