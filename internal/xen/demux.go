package xen

import (
	"fmt"
	"math/bits"

	"kite/internal/sim"
)

// Demux batches event-channel delivery for a backend that serves many
// frontends. A driver domain with one event channel per (guest, queue)
// pays one full upcall — IRQ latency, handler dispatch — per doorbell per
// guest; at fleet scale that is the dominant cost and it grows linearly
// with the tenant count. Real xen backends already amortize this with the
// shared-info pending bitsel: one upcall scans a word of pending bits and
// drains every signalled channel. Demux models exactly that: member ports
// mark a bit in a group-wide pending bitmap instead of scheduling their
// own upcall, and one scan event per doorbell quantum walks the bitmap in
// deterministic member order delivering every pending handler. One wake
// drains rings for many domains; the scan rate is bounded by the quantum
// no matter how many tenants signal.
type Demux struct {
	dom *Domain
	cpu *sim.CPU
	// quantum bounds the scan rate: consecutive scans start at least one
	// quantum apart, so N tenants' doorbells fold into one wake per
	// quantum instead of N upcalls.
	quantum sim.Time

	members []*channel
	// pending has one bit per member, indexed by join order. It is the
	// group-wide doorbell surface — the moral equivalent of xen's shared-
	// info pending bitsel — so every writer must state which side of the
	// ownership protocol it is on.
	//
	//kite:shared
	pending []uint64
	// summary is the second bitmap level: bit w of summary[w>>6] is set
	// exactly when pending[w] != 0. A scan walks only summary words with
	// bits set and jumps straight to the non-empty pending words, so the
	// cost of a scan is proportional to the number of signalled members,
	// not the fleet size — a 1024-member group with one doorbell touches
	// two words, not seventeen.
	//
	//kite:shared
	summary []uint64

	scanF    func()
	armed    bool
	lastScan sim.Time
	// cursor is the scan position (next member index to consider) while a
	// scan is executing, -1 otherwise. Leave uses it to keep the live scan
	// aligned when compaction shifts members below the scan point.
	cursor int

	scans uint64 // scan events executed
	marks uint64 // member doorbells folded into those scans
}

// NewDemux creates a demux group delivering on cpu (which selects the
// cluster shard the scan runs on). quantum is the minimum spacing between
// scans; zero disables rate bounding (pure coalescing).
func (d *Domain) NewDemux(cpu *sim.CPU, quantum sim.Time) *Demux {
	g := &Demux{dom: d, cpu: cpu, quantum: quantum, cursor: -1}
	g.scanF = g.scan
	return g
}

// Join moves a local connected port into the group: its upcalls are
// replaced by a bit in the group bitmap and delivery happens during the
// group scan, on the group's vCPU, in join order. Join order is driver
// control flow, so scans are deterministic.
//
//kite:shardok control plane: runs as driver-domain setup on the group's own shard
func (g *Demux) Join(port Port) error {
	ch := g.dom.port(port)
	if ch == nil {
		return fmt.Errorf("xen: demux join of unknown port %d", port)
	}
	if ch.demux != nil {
		return fmt.Errorf("xen: port %d already in a demux group", port)
	}
	ch.demux = g
	ch.demuxIdx = len(g.members)
	ch.cpu = g.cpu // sends charge the scan vCPU; delivery rides the scan
	g.members = append(g.members, ch)
	if len(g.pending)*64 < len(g.members) {
		g.pending = append(g.pending, 0)
	}
	if len(g.summary)*64 < len(g.pending) {
		g.summary = append(g.summary, 0)
	}
	return nil
}

// Leave removes a member from the group (frontend teardown). Must be
// called before the port is closed, while the channel is still registered.
// Later members shift down one index and the pending bitmap is compacted
// to match, so join-order scanning stays deterministic; without this, a
// fleet churning tenants would pin one dead member slot per departure
// forever.
//
//kite:shardok control plane: teardown executes on the group's own shard, never mid-scan on another
func (g *Demux) Leave(port Port) {
	ch := g.dom.port(port)
	if ch == nil || ch.demux != g {
		return
	}
	idx := ch.demuxIdx
	ch.demux = nil
	ch.demuxIdx = 0
	g.members = append(g.members[:idx], g.members[idx+1:]...)
	for i := idx; i < len(g.members); i++ {
		g.members[i].demuxIdx = i
	}
	// Collapse the departed bit out of the pending bitmap: bits above idx
	// shift down one, carrying across word boundaries.
	w := idx >> 6
	b := uint(idx) & 63
	low := uint64(1)<<b - 1
	g.pending[w] = g.pending[w]&low | (g.pending[w]>>1)&^low
	for j := w + 1; j < len(g.pending); j++ {
		g.pending[j-1] |= g.pending[j] << 63
		g.pending[j] >>= 1
	}
	if want := (len(g.members) + 63) / 64; len(g.pending) > want {
		g.pending = g.pending[:want]
	}
	// Re-derive the summary level for every word the collapse touched
	// (word w and everything above it; words below kept their contents).
	for j := w; j < len(g.pending); j++ {
		sb := uint64(1) << (uint(j) & 63)
		if g.pending[j] != 0 {
			g.summary[j>>6] |= sb
		} else {
			g.summary[j>>6] &^= sb
		}
	}
	if want := (len(g.pending) + 63) / 64; len(g.summary) > want {
		g.summary = g.summary[:want]
	} else if len(g.pending) > 0 {
		// Clear summary bits for pending words that no longer exist in the
		// (possibly shortened) last summary word.
		last := len(g.summary) - 1
		used := uint(len(g.pending)-1)&63 + 1
		g.summary[last] &= ^uint64(0) >> (64 - used)
	}
	// A Leave below a live scan's position shifts the not-yet-visited bits
	// down one; move the cursor with them so no pending member is skipped
	// or double-delivered.
	if g.cursor > idx {
		g.cursor--
	}
}

// Members returns the number of joined ports.
func (g *Demux) Members() int { return len(g.members) }

// Stats reports (scans executed, member doorbells absorbed). marks-scans
// is the demux win: upcalls that did not happen.
func (g *Demux) Stats() (scans, marks uint64) { return g.scans, g.marks }

// mark sets the member's pending bit and arms the scan if it is not
// already armed. The warmth rule mirrors channel.raise: a recently active
// scan vCPU (or a recent scan) takes the wake at the cheap streaming
// latency.
//
//kite:hotpath
//kite:shardok doorbell side: a cross-shard notify arrives as an event on the group's shard before marking, so the bit set is shard-local by the time it executes
func (g *Demux) mark(idx int) {
	w := idx >> 6
	g.pending[w] |= 1 << (uint(idx) & 63)
	g.summary[w>>6] |= 1 << (uint(w) & 63)
	g.marks++
	if g.armed {
		return
	}
	g.armed = true
	eng := g.cpu.Engine()
	now := eng.Now()
	lat := g.dom.IRQLatency
	if g.cpu.RecentlyActive(now, warmWindow) ||
		(g.lastScan > 0 && now-g.lastScan <= warmWindow) {
		lat /= 16
	}
	at := g.cpu.FreeAt() + lat
	if g.quantum > 0 {
		if min := g.lastScan + g.quantum; at < min {
			at = min
		}
	}
	eng.Schedule(at, g.scanF)
}

// scan is the batched upcall: deliver every signalled channel in member
// order, jumping between doorbells through the summary level. Idle members
// cost nothing — a scan's work is proportional to the doorbells it
// absorbs, not to the group size. The scan reads the live bitmap one bit
// at a time (no word snapshots), so handlers that Join or Leave members
// mid-scan stay consistent: compaction shifts the unvisited bits and the
// cursor together. Bits set at or above the cursor by handlers during the
// scan are drained in the same pass; bits below it re-arm a fresh scan at
// least a quantum later, so one scan's work is bounded by the member
// count.
//
//kite:hotpath
//kite:shardok owner side: the scan runs on the group's vCPU shard and drains bits set by events already ordered onto it
func (g *Demux) scan() {
	g.armed = false
	g.scans++
	g.lastScan = g.cpu.Engine().Now()
	g.cursor = 0
	for {
		idx := g.nextPending()
		if idx < 0 {
			break
		}
		g.cursor = idx + 1
		w := idx >> 6
		g.pending[w] &^= 1 << (uint(idx) & 63)
		if g.pending[w] == 0 {
			g.summary[w>>6] &^= 1 << (uint(w) & 63)
		}
		g.members[idx].deliverDemux()
	}
	g.cursor = -1
}

// nextPending returns the lowest pending member index at or above the scan
// cursor, or -1. The first (partial) word is probed directly; everything
// beyond it goes through the summary, so runs of idle members are skipped
// 4096 at a time.
//
//kite:hotpath
func (g *Demux) nextPending() int {
	w := g.cursor >> 6
	if w < len(g.pending) {
		b := uint(g.cursor) & 63
		if word := g.pending[w] >> b << b; word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
	}
	for sw := w >> 6; sw < len(g.summary); sw++ {
		sword := g.summary[sw]
		if sw == w>>6 {
			sb := uint(w) & 63
			sword = sword >> sb << sb
		}
		if sword == 0 {
			continue
		}
		pw := sw<<6 + bits.TrailingZeros64(sword)
		return pw<<6 + bits.TrailingZeros64(g.pending[pw])
	}
	return -1
}

// deliverDemux is channel.deliver minus the self-scheduled upcall: the
// scan already paid the wake.
func (c *channel) deliverDemux() {
	c.pending = false
	if c.dom.dead || c.state != chanConnected {
		return
	}
	c.delivered++
	c.lastEvent = c.cpu.Engine().Now()
	if c.handler != nil {
		c.handler()
	}
}
