// Package bridge implements the learning Ethernet bridge Kite's network
// application creates inside the driver domain (§4.3): it connects the
// physical NIC interface (IF) with every netback virtual interface (VIF),
// learns source MACs, forwards known-unicast frames to one port, and
// floods unknown/broadcast frames — the NetBSD bridge(4) behaviour the
// paper ported brconfig for.
package bridge

import (
	"fmt"

	"kite/internal/framepool"
	"kite/internal/netpkt"
	"kite/internal/sim"
)

// Port is anything the bridge can attach: the physical interface wrapper
// or a netback VIF.
type Port interface {
	PortName() string
	// Deliver hands an egress frame to the port. The port receives one
	// buffer reference and must Release it (directly or by passing it on).
	Deliver(frame *framepool.Buf)
}

// Stats counts bridge activity.
type Stats struct {
	Forwarded uint64
	Flooded   uint64
	Learned   uint64
	Dropped   uint64 // no ports to forward to
	Aged      uint64 // entries evicted by AgeFDB
}

// Bridge is a learning L2 switch running in the driver domain.
type Bridge struct {
	eng  *sim.Engine
	cpus *sim.CPUPool
	name string

	// PerFrameCost is the bridge's forwarding cost charged to the driver
	// domain per frame.
	PerFrameCost sim.Time

	ports []Port
	// trunk is the non-isolated subset of ports in attach order: the flood
	// targets for frames arriving on an isolated port. Fleet mode isolates
	// every tenant VIF (they only ever talk through the NAT router), so one
	// tenant's ARP broadcast reaches the router port instead of fanning out
	// a copy to every other tenant — without this, fleet bring-up is an
	// O(tenants²) flood storm.
	trunk []Port
	iso   map[Port]bool
	fdb   fdb
	stats Stats

	// outq holds forwarded frames until their CPU charge completes; one
	// armed Batch event per burst instead of one closure per frame. lastOut
	// is the watermark that keeps the FIFO time-ordered even though
	// CPUPool.Charge completion times are not globally monotonic.
	outq    sim.FIFO[delivery]
	deliver *sim.Batch
	lastOut sim.Time
}

// delivery is a forwarded frame waiting for its charge to complete. The
// FIFO holds one buffer reference per entry.
type delivery struct {
	at    sim.Time
	to    Port
	frame *framepool.Buf
}

// New creates a bridge named name whose forwarding work is charged to cpus.
func New(eng *sim.Engine, cpus *sim.CPUPool, name string) *Bridge {
	b := &Bridge{
		eng: eng, cpus: cpus, name: name,
		PerFrameCost: 300 * sim.Nanosecond,
	}
	b.fdb.init()
	b.deliver = sim.NewBatch(eng, b.flushDeliveries)
	return b
}

// Name returns the bridge name (xenbr0 in the artifact's configs).
func (b *Bridge) Name() string { return b.name }

// Stats returns a snapshot of the counters.
func (b *Bridge) Stats() Stats { return b.stats }

// Ports returns the attached ports.
func (b *Bridge) Ports() []Port { return b.ports }

// AddPort attaches a port (brconfig add).
func (b *Bridge) AddPort(p Port) {
	for _, q := range b.ports {
		if q == p {
			panic(fmt.Sprintf("bridge: port %s added twice", p.PortName()))
		}
	}
	b.ports = append(b.ports, p)
	b.rebuildTrunk()
}

// SetIsolated marks or clears port isolation (the bridge-port "isolated"
// flag): frames from an isolated port are never flooded to other isolated
// ports, only to trunk ports. Known-unicast forwarding is unaffected.
func (b *Bridge) SetIsolated(p Port, iso bool) {
	if iso {
		if b.iso == nil {
			b.iso = make(map[Port]bool)
		}
		b.iso[p] = true
	} else {
		delete(b.iso, p)
	}
	b.rebuildTrunk()
}

// rebuildTrunk re-derives the non-isolated port list in attach order
// (control plane only; flood scans read it).
func (b *Bridge) rebuildTrunk() {
	b.trunk = b.trunk[:0]
	for _, p := range b.ports {
		if !b.iso[p] {
			b.trunk = append(b.trunk, p)
		}
	}
}

// RemovePort detaches a port and flushes its learned addresses (a guest or
// backend went away).
func (b *Bridge) RemovePort(p Port) {
	for i, q := range b.ports {
		if q == p {
			b.ports = append(b.ports[:i], b.ports[i+1:]...)
			break
		}
	}
	delete(b.iso, p)
	b.rebuildTrunk()
	b.fdb.removePort(p)
}

// Lookup returns the port a MAC was learned on, or nil.
func (b *Bridge) Lookup(mac netpkt.MAC) Port { return b.fdb.lookup(mac) }

// FDBLen returns the number of learned MAC entries.
func (b *Bridge) FDBLen() int { return b.fdb.len() }

// AgeFDB evicts entries idle longer than maxIdle and returns the count —
// the periodic sweep the network application runs so departed guests do
// not pin table space (brconfig's address timeout).
func (b *Bridge) AgeFDB(maxIdle sim.Time) int {
	n := b.fdb.age(b.eng.Now(), maxIdle)
	b.stats.Aged += uint64(n)
	return n
}

// FrameDevice is any frame-level device (a physical NIC, or a stack-less
// interface) that can be attached to the bridge. Send consumes one buffer
// reference on every path; SetRecv's callback receives one reference per
// frame that the callee owns.
type FrameDevice interface {
	Send(frame *framepool.Buf) bool
	SetRecv(fn func(frame *framepool.Buf))
}

type devicePort struct {
	name string
	dev  FrameDevice
}

func (p *devicePort) PortName() string             { return p.name }
func (p *devicePort) Deliver(frame *framepool.Buf) { p.dev.Send(frame) }

// AttachDevice wires a frame device into the bridge as a port: egress
// frames go to dev.Send and received frames enter the bridge. This is how
// the network application connects the physical IF to xenbr0.
func (b *Bridge) AttachDevice(name string, dev FrameDevice) Port {
	p := &devicePort{name: name, dev: dev}
	dev.SetRecv(func(f *framepool.Buf) { b.Input(p, f) })
	b.AddPort(p)
	return p
}

// Input processes one frame arriving from a port: learn, then forward or
// flood. The bridge consumes the caller's buffer reference: dropped frames
// are released immediately; forwarded frames carry the reference to the
// egress port (flooding Retains one extra reference per additional port).
// Forwarding cost is charged to the driver domain's CPUs and delivery
// happens at charge completion.
func (b *Bridge) Input(from Port, frame *framepool.Buf) {
	b.input(from, frame, b.eng.Now(), nil)
}

// Lane is a pinned forwarding lane: one forwarding thread (vCPU) and one
// egress FIFO for a single source queue, the way a multi-queue backend
// pins per-queue forwarding threads feeding per-queue NIC TX rings. A lane
// has exactly one producer whose arrival times are monotone, so a batched
// replay through InputAt charges and delivers at the same virtual times
// one event per frame would have — without the shared pool's work stealing
// or the global egress watermark serializing lanes against each other.
type Lane struct {
	b       *Bridge
	cpu     *sim.CPU
	outq    sim.FIFO[delivery]
	deliver *sim.Batch
	lastOut sim.Time
}

// NewLane creates a forwarding lane pinned to cpu.
func (b *Bridge) NewLane(cpu *sim.CPU) *Lane {
	l := &Lane{b: b, cpu: cpu}
	l.deliver = sim.NewBatch(b.eng, l.flush)
	return l
}

// InputAt processes one frame arriving on this lane at the virtual time at,
// which may lie beyond the executing event's timestamp (see CPU.ChargeAt).
// at must be nondecreasing across calls — the lane models one FIFO queue.
func (l *Lane) InputAt(from Port, frame *framepool.Buf, at sim.Time) {
	l.b.input(from, frame, at, l)
}

// input is the shared learn/forward/flood core. With a lane, forwarding
// cost chains on the lane's pinned CPU starting no earlier than at, and
// delivery rides the lane's own FIFO; without one, cost goes to the shared
// pool and delivery to the bridge-wide FIFO.
func (b *Bridge) input(from Port, frame *framepool.Buf, at sim.Time, l *Lane) {
	pkt := frame.Bytes()
	if len(pkt) < netpkt.EthHeaderLen {
		b.stats.Dropped++
		frame.ReleaseOn(b.eng)
		return
	}
	var dst, src netpkt.MAC
	copy(dst[:], pkt[0:6])
	copy(src[:], pkt[6:12])

	if src != netpkt.Broadcast {
		if b.fdb.learn(src, from, b.eng.Now()) {
			b.stats.Learned++
		}
	}

	var done sim.Time
	if l != nil {
		done = l.cpu.ChargeAt(at, b.PerFrameCost)
	} else {
		done = b.cpus.ChargeAt(at, b.PerFrameCost)
	}
	if dst != netpkt.Broadcast {
		if out := b.fdb.lookup(dst); out != nil {
			if out == from {
				b.stats.Dropped++ // destination is behind the source port
				frame.ReleaseOn(b.eng)
				return
			}
			b.stats.Forwarded++
			b.enqueueOn(l, done, out, frame)
			return
		}
	}
	// Flood: broadcast or unknown destination. An isolated source floods
	// only to the trunk ports.
	targets := b.ports
	if b.iso[from] {
		targets = b.trunk
	}
	sent := false
	for _, p := range targets {
		if p == from {
			continue
		}
		if sent {
			frame.Retain() // one extra reference per additional flood target
		}
		sent = true
		b.enqueueOn(l, done, p, frame)
	}
	if sent {
		b.stats.Flooded++
	} else {
		b.stats.Dropped++
		frame.ReleaseOn(b.eng)
	}
}

// enqueueOn routes one delivery to the lane's egress FIFO, or the
// bridge-wide one when l is nil.
func (b *Bridge) enqueueOn(l *Lane, at sim.Time, to Port, frame *framepool.Buf) {
	if l != nil {
		l.enqueue(at, to, frame)
	} else {
		b.enqueue(at, to, frame)
	}
}

// enqueue queues one delivery on the lane's egress FIFO; the watermark
// clamp mirrors Bridge.enqueue.
func (l *Lane) enqueue(at sim.Time, to Port, frame *framepool.Buf) {
	if at < l.lastOut {
		at = l.lastOut
	}
	l.lastOut = at
	l.outq.Push(delivery{at: at, to: to, frame: frame})
	l.deliver.Arm(at)
}

// flush hands every matured frame on this lane to its egress port and
// re-arms for the next pending one.
func (l *Lane) flush() {
	now := l.b.eng.Now()
	for l.outq.Len() > 0 && l.outq.Peek().at <= now {
		d := l.outq.Pop()
		d.to.Deliver(d.frame)
	}
	if p := l.outq.Peek(); p != nil {
		l.deliver.Arm(p.at)
	}
}

// enqueue queues one delivery for charge-completion time at. The watermark
// clamp keeps the FIFO ordered (charge completions across different CPUs
// are not monotonic) and preserves per-bridge frame ordering.
func (b *Bridge) enqueue(at sim.Time, to Port, frame *framepool.Buf) {
	if at < b.lastOut {
		at = b.lastOut
	}
	b.lastOut = at
	b.outq.Push(delivery{at: at, to: to, frame: frame})
	b.deliver.Arm(at)
}

// flushDeliveries hands every matured frame to its egress port and re-arms
// for the next pending one.
func (b *Bridge) flushDeliveries() {
	now := b.eng.Now()
	for b.outq.Len() > 0 && b.outq.Peek().at <= now {
		d := b.outq.Pop()
		d.to.Deliver(d.frame)
	}
	if p := b.outq.Peek(); p != nil {
		b.deliver.Arm(p.at)
	}
}
