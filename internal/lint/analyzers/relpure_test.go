package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestRelpure(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/relpure", "testdata/src/relpure", analyzers.Relpure)
}
