package bufpool

import (
	"bytes"
	"fmt"
	"testing"

	"kite/internal/sim"
)

// memDisk is an in-memory Disk with access counters and a modeled delay.
type memDisk struct {
	eng     *sim.Engine
	data    []byte
	reads   int
	writes  int
	flushes int
	delay   sim.Time
	failAll bool
}

func (d *memDisk) ReadSectors(sector int64, n int, cb func([]byte, error)) {
	d.reads++
	if d.failAll {
		d.eng.After(d.delay, func() { cb(nil, fmt.Errorf("disk error")) })
		return
	}
	off := sector * SectorSize
	out := make([]byte, n)
	copy(out, d.data[off:off+int64(n)])
	d.eng.After(d.delay, func() { cb(out, nil) })
}

func (d *memDisk) ReadSectorsInto(sector int64, dst []byte, cb func(error)) {
	d.reads++
	if d.failAll {
		d.eng.After(d.delay, func() { cb(fmt.Errorf("disk error")) })
		return
	}
	off := sector * SectorSize
	copy(dst, d.data[off:off+int64(len(dst))])
	d.eng.After(d.delay, func() { cb(nil) })
}

func (d *memDisk) WriteSectors(sector int64, data []byte, cb func(error)) {
	d.writes++
	copy(d.data[sector*SectorSize:], data)
	d.eng.After(d.delay, func() { cb(nil) })
}

func (d *memDisk) Flush(cb func(error)) {
	d.flushes++
	d.eng.After(d.delay, func() { cb(nil) })
}

func (d *memDisk) SectorCount() int64 { return int64(len(d.data) / SectorSize) }

func newPool(capacity int64) (*sim.Engine, *memDisk, *Pool) {
	eng := sim.NewEngine()
	disk := &memDisk{eng: eng, data: make([]byte, 8<<20), delay: 50 * sim.Microsecond}
	pool := New(eng, disk, Config{ChunkBytes: 16 << 10, CapacityBytes: capacity})
	return eng, disk, pool
}

func TestReadThrough(t *testing.T) {
	eng, disk, pool := newPool(1 << 20)
	copy(disk.data[1000:], []byte("backing-store"))
	var got []byte
	pool.Read(1000, 13, func(b []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = b
	})
	eng.Run()
	if string(got) != "backing-store" {
		t.Fatalf("read %q", got)
	}
	if disk.reads != 1 {
		t.Fatalf("disk reads = %d, want 1", disk.reads)
	}
}

func TestHitAvoidsDisk(t *testing.T) {
	eng, disk, pool := newPool(1 << 20)
	pool.Read(0, 4096, func([]byte, error) {})
	eng.Run()
	base := disk.reads
	pool.Read(0, 4096, func([]byte, error) {})
	pool.Read(100, 2000, func([]byte, error) {})
	eng.Run()
	if disk.reads != base {
		t.Fatalf("hits went to disk (%d -> %d reads)", base, disk.reads)
	}
	st := pool.Stats()
	if st.Hits < 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteBackAndSync(t *testing.T) {
	eng, disk, pool := newPool(1 << 20)
	payload := []byte("dirty-data")
	done := false
	pool.Write(5000, payload, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("write never completed")
	}
	if bytes.Contains(disk.data, payload) {
		t.Fatal("write-back hit disk before sync")
	}
	if pool.DirtyChunks() == 0 {
		t.Fatal("no dirty chunks after write")
	}
	synced := false
	pool.Sync(func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		synced = true
	})
	eng.Run()
	if !synced || !bytes.Contains(disk.data, payload) {
		t.Fatal("sync did not persist data")
	}
	if pool.DirtyChunks() != 0 {
		t.Fatal("dirty chunks survive sync")
	}
	if disk.flushes != 1 {
		t.Fatal("sync did not flush device")
	}
}

func TestReadYourWrites(t *testing.T) {
	eng, _, pool := newPool(1 << 20)
	var got []byte
	pool.Write(777, []byte("fresh"), func(error) {
		pool.Read(777, 5, func(b []byte, err error) { got = b })
	})
	eng.Run()
	if string(got) != "fresh" {
		t.Fatalf("read-your-writes = %q", got)
	}
}

func TestPartialChunkWritePreservesRest(t *testing.T) {
	eng, disk, pool := newPool(1 << 20)
	// Backing store has data; a partial overwrite must keep the rest.
	for i := range disk.data[:32768] {
		disk.data[i] = 0xEE
	}
	var got []byte
	pool.Write(100, []byte("xx"), func(error) {
		pool.Read(98, 6, func(b []byte, err error) { got = b })
	})
	eng.Run()
	want := []byte{0xEE, 0xEE, 'x', 'x', 0xEE, 0xEE}
	if !bytes.Equal(got, want) {
		t.Fatalf("partial write result = %x, want %x", got, want)
	}
}

func TestEvictionBoundsResidency(t *testing.T) {
	eng, _, pool := newPool(64 << 10) // 4 chunks
	for i := 0; i < 16; i++ {
		pool.Read(int64(i)*16384, 16384, func([]byte, error) {})
		eng.Run()
	}
	if pool.Resident() > 64<<10 {
		t.Fatalf("resident = %d, cap 64KiB", pool.Resident())
	}
	if pool.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestEvictionWritesDirtyBack(t *testing.T) {
	eng, disk, pool := newPool(32 << 10) // 2 chunks
	marker := []byte("must-survive-eviction")
	pool.Write(0, marker, func(error) {})
	eng.Run()
	// Fill with reads to force eviction of the dirty chunk.
	for i := 1; i < 8; i++ {
		pool.Read(int64(i)*16384, 16384, func([]byte, error) {})
		eng.Run()
	}
	if !bytes.Contains(disk.data, marker) {
		t.Fatal("dirty chunk lost on eviction")
	}
}

func TestLRUKeepsHotChunk(t *testing.T) {
	eng, disk, pool := newPool(48 << 10) // 3 chunks
	pool.Read(0, 16384, func([]byte, error) {})
	eng.Run()
	// Touch chunk 0 repeatedly while streaming others.
	for i := 1; i < 6; i++ {
		pool.Read(0, 100, func([]byte, error) {})
		pool.Read(int64(i)*16384, 16384, func([]byte, error) {})
		eng.Run()
	}
	base := disk.reads
	pool.Read(0, 100, func([]byte, error) {})
	eng.Run()
	if disk.reads != base {
		t.Fatal("hot chunk was evicted")
	}
}

func TestConcurrentMissCoalesces(t *testing.T) {
	eng, disk, pool := newPool(1 << 20)
	done := 0
	for i := 0; i < 5; i++ {
		pool.Read(0, 4096, func([]byte, error) { done++ })
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("%d of 5 reads completed", done)
	}
	if disk.reads != 1 {
		t.Fatalf("concurrent misses issued %d disk reads, want 1", disk.reads)
	}
}

func TestDiskErrorPropagates(t *testing.T) {
	eng, disk, pool := newPool(1 << 20)
	disk.failAll = true
	var gotErr error
	pool.Read(0, 4096, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("disk error swallowed")
	}
}

func TestRangeValidation(t *testing.T) {
	eng, _, pool := newPool(1 << 20)
	var e1, e2 error
	pool.Read(-1, 10, func(_ []byte, err error) { e1 = err })
	pool.Write(pool.SizeBytes()-4, make([]byte, 100), func(err error) { e2 = err })
	eng.Run()
	if e1 == nil || e2 == nil {
		t.Fatal("invalid ranges accepted")
	}
}

func TestDropCaches(t *testing.T) {
	eng, disk, pool := newPool(1 << 20)
	pool.Read(0, 16384, func([]byte, error) {})
	eng.Run()
	pool.DropCaches()
	base := disk.reads
	pool.Read(0, 16384, func([]byte, error) {})
	eng.Run()
	if disk.reads != base+1 {
		t.Fatal("drop_caches did not evict clean chunk")
	}
}

func TestCrossChunkIO(t *testing.T) {
	eng, _, pool := newPool(1 << 20)
	payload := make([]byte, 100000) // spans 7 chunks
	sim.NewRand(5).Bytes(payload)
	var got []byte
	pool.Write(9000, payload, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		pool.Read(9000, len(payload), func(b []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = b
		})
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-chunk io corrupted")
	}
}

// TestSyncWritebackOrderDeterministic dirties chunks in a scattered order
// and asserts Sync issues writebacks in ascending chunk order. Map
// iteration order would vary between runs and leak into the device event
// schedule, breaking bit-for-bit reproducibility.
func TestSyncWritebackOrderDeterministic(t *testing.T) {
	eng := sim.NewEngine()
	disk := &orderDisk{memDisk: &memDisk{eng: eng, data: make([]byte, 8<<20), delay: 50 * sim.Microsecond}}
	pool := New(eng, disk, Config{ChunkBytes: 16 << 10, CapacityBytes: 4 << 20})

	for _, chunkNo := range []int64{7, 2, 11, 0, 5, 9, 3} {
		pool.Write(chunkNo*(16<<10), []byte("dirty"), func(err error) {
			if err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()
	disk.order = nil
	synced := false
	pool.Sync(func(err error) {
		if err != nil {
			t.Error(err)
		}
		synced = true
	})
	eng.Run()
	if !synced {
		t.Fatal("sync did not complete")
	}
	if len(disk.order) != 7 {
		t.Fatalf("writebacks = %d, want 7 (order %v)", len(disk.order), disk.order)
	}
	for i := 1; i < len(disk.order); i++ {
		if disk.order[i] <= disk.order[i-1] {
			t.Fatalf("writeback order not ascending: %v", disk.order)
		}
	}
}

// orderDisk records the sector order of writes before delegating.
type orderDisk struct {
	*memDisk
	order []int64
}

func (d *orderDisk) WriteSectors(sector int64, data []byte, cb func(error)) {
	d.order = append(d.order, sector)
	d.memDisk.WriteSectors(sector, data, cb)
}
