package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"kite/internal/lint/analysis"
)

// Xskeys kills silent typo drift in the xenstore negotiation protocol: the
// path, key, and device-type arguments of every xenstore/xenbus API call
// must be built from the constant registry in internal/xenstore/keys.go,
// never from raw string literals. A mistyped literal ("event-chanel")
// compiles fine and silently breaks the handshake at runtime — exactly the
// failure class the multi-queue negotiation of PR 4 is exposed to; a
// mistyped constant name does not compile.
//
// Literals consisting solely of '/' separators are allowed, so
// `frontPath + "/" + xenstore.KeyState` reads naturally.
var Xskeys = &analysis.Analyzer{
	Name: "xskeys",
	Doc:  "xenstore path/key arguments must come from the internal/xenstore key registry",
	Run:  runXskeys,
}

// xsCheckedParams maps a callee (types.Func FullName) to the indices of
// its path/key/device-type parameters.
var xsCheckedParams = map[string][]int{
	"(*kite/internal/xenstore.Store).Write":    {0},
	"(*kite/internal/xenstore.Store).Writef":   {0},
	"(*kite/internal/xenstore.Store).Read":     {0},
	"(*kite/internal/xenstore.Store).ReadInt":  {0},
	"(*kite/internal/xenstore.Store).Mkdir":    {0},
	"(*kite/internal/xenstore.Store).Remove":   {0},
	"(*kite/internal/xenstore.Store).Exists":   {0},
	"(*kite/internal/xenstore.Store).List":     {0},
	"(*kite/internal/xenstore.Store).Watch":    {0},
	"(*kite/internal/xenstore.Store).SetPerms": {0},
	"(*kite/internal/xenstore.Store).ReadAs":   {1},
	"(*kite/internal/xenstore.Store).WriteAs":  {1},

	"(*kite/internal/xenbus.Bus).State":          {0},
	"(*kite/internal/xenbus.Bus).SwitchState":    {0},
	"(*kite/internal/xenbus.Bus).OnStateChange":  {0},
	"(*kite/internal/xenbus.Bus).OtherEnd":       {0},
	"(*kite/internal/xenbus.Bus).WriteNumQueues": {0},
	"(*kite/internal/xenbus.Bus).ReadNumQueues":  {0, 1},
	"(*kite/internal/xenbus.Bus).WriteFeature":   {0, 1},
	"(*kite/internal/xenbus.Bus).ReadFeature":    {0, 1},

	"kite/internal/xenbus.FrontendPath": {1},
	"kite/internal/xenbus.BackendPath":  {1},
	"kite/internal/xenbus.BackendRoot":  {1},
}

func runXskeys(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil {
				return true
			}
			params, ok := xsCheckedParams[fn.FullName()]
			if !ok {
				return true
			}
			for _, i := range params {
				if i < len(call.Args) {
					flagRawKeyLiterals(pass, call.Args[i], fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// staticCallee resolves a call to its static *types.Func target (method or
// package function), or nil for builtins, conversions, and dynamic calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			return sel.Obj().(*types.Func)
		}
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// flagRawKeyLiterals walks one checked argument expression and reports
// every string literal that is not purely a '/' separator.
func flagRawKeyLiterals(pass *analysis.Pass, arg ast.Expr, callee string) {
	ast.Inspect(arg, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		v, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if strings.Trim(v, "/") == "" {
			return true // bare separator
		}
		pass.Reportf(lit.Pos(),
			"xskeys: raw xenstore key literal %q passed to %s; use a constant from internal/xenstore/keys.go", v, callee)
		return true
	})
}
