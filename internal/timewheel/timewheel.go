// Package timewheel provides the hashed timer wheel behind the driver
// domain's idle-entry aging (bridge FDB entries, NAT flow bindings). The
// naive implementation of "evict everything idle longer than maxIdle" is a
// full-table sweep — O(table) per call, which at fleet scale means every
// aging tick pays for hundreds of guests' worth of perfectly healthy
// entries. The wheel makes aging O(active churn): insert and refresh are
// O(1), and an aging pass touches only the entries whose last activity has
// actually fallen behind the idle cutoff.
//
// The wheel is lazy, keyed on *last activity* rather than deadline: a node
// sits in the bucket of the tick its entry was last seen in, and refreshing
// an entry touches only the caller's own lastSeen field — the wheel is not
// consulted on the data path at all. An aging pass (Advance) drains every
// bucket up to the idle cutoff and probes each node against the caller's
// live table: entries that were refreshed since their node was queued simply
// requeue at their true last-activity tick, entries that are genuinely idle
// expire, and nodes orphaned by deletion or slot reuse are reaped. Because
// the probe re-checks exact timestamps, the set of entries an Advance evicts
// is identical to what a full sweep with the same cutoff would evict — the
// wheel changes the cost, not the semantics — and maxIdle may differ from
// call to call.
//
// Nodes live in a freelist slab; steady state allocates nothing. All state
// is owned by a single simulation goroutine (determinism: bucket drain order
// is insertion order, which is simulation order).
//
//kite:deterministic
package timewheel

import "kite/internal/sim"

// Handle names one wheel node. Callers store the handle in their table
// entry and compare it in the probe callback: a node whose handle no longer
// matches its entry is an orphan from a deleted or recycled slot, and the
// wheel reaps it.
type Handle int32

// None is the null handle (no node bound).
const None Handle = -1

// Gone is returned by a probe callback to report that the node's entry no
// longer exists; the wheel frees the node.
const Gone sim.Time = -1 << 62

// Wheel is a hashed timer wheel over uint64 keys.
type Wheel struct {
	gran sim.Time
	mask int64
	hand int64 // next tick Advance will process

	buckets []Handle // head of each bucket's singly-linked node list

	// Node slab: parallel arrays indexed by Handle, freelist-chained.
	next []Handle
	key  []uint64
	free Handle
	live int
}

// New returns a wheel with the given tick granularity and bucket count
// (rounded up to a power of two). Correctness does not depend on either
// value — probes re-check exact timestamps — only the amortization does:
// a rotation (gran × buckets) should comfortably exceed the longest idle
// cutoff the caller ages with, so healthy entries are probed at most once
// per cutoff window.
func New(gran sim.Time, buckets int) *Wheel {
	if gran <= 0 {
		panic("timewheel: granularity must be positive")
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	w := &Wheel{gran: gran, mask: int64(n - 1), free: None}
	w.buckets = make([]Handle, n)
	for i := range w.buckets {
		w.buckets[i] = None
	}
	return w
}

// Len returns the number of live nodes (including not-yet-reaped orphans).
func (w *Wheel) Len() int { return w.live }

// Add queues a node for key, last active at seen, and returns its handle.
// O(1); allocates only when the slab high-water mark grows.
//
//kite:hotpath
func (w *Wheel) Add(key uint64, seen sim.Time) Handle {
	h := w.alloc()
	w.key[h] = key
	w.link(h, seen)
	w.live++
	return h
}

// alloc takes a node off the freelist, growing the slab when empty. The
// caller owes the fresh handle a link (or a release) — kitelint's ringlink
// analyzer enforces that on every path.
//
//kite:ringlink alloc
func (w *Wheel) alloc() Handle {
	h := w.free
	if h != None {
		w.free = w.next[h]
		return h
	}
	h = Handle(len(w.next))
	w.next = append(w.next, None) //kite:alloc-ok slab growth to the table high-water mark
	w.key = append(w.key, 0)      //kite:alloc-ok slab growth to the table high-water mark
	return h
}

// link pushes node h onto the bucket of seen's tick.
//
//kite:hotpath
//kite:ringlink link
func (w *Wheel) link(h Handle, seen sim.Time) {
	b := (int64(seen) / int64(w.gran)) & w.mask
	w.next[h] = w.buckets[b]
	w.buckets[b] = h
}

// release returns node h to the freelist.
//
//kite:ringlink free
func (w *Wheel) release(h Handle) {
	w.next[h] = w.free
	w.free = h
	w.live--
}

// Advance ages the table: it processes every tick from the previous pass up
// to cutoff (entries last active at or before cutoff are due), probing each
// drained node. probe returns the entry's current last-activity time, or
// Gone if the handle no longer matches a live entry. A fresh entry requeues
// at its true tick; an idle one (lastSeen <= cutoff) is freed and then
// reported through expire, in drain order — which is deterministic
// insertion order. The caller must clear its entry's handle before expire
// touches the table (the wheel has already freed the node).
//
//kite:hotpath
func (w *Wheel) Advance(cutoff sim.Time, probe func(h Handle, key uint64) sim.Time, expire func(key uint64)) {
	target := int64(cutoff) / int64(w.gran)
	if target < w.hand {
		return
	}
	// A long-idle wheel needs each bucket visited at most once.
	if target-w.hand >= int64(len(w.buckets)) {
		w.hand = target - int64(len(w.buckets)) + 1
	}
	for t := w.hand; t <= target; t++ {
		b := t & w.mask
		// Detach the whole bucket first: requeues during the drain may land
		// back in this very bucket (same tick, or a future rotation of it)
		// and must wait for the next pass.
		h := w.buckets[b]
		w.buckets[b] = None
		for h != None {
			nxt := w.next[h]
			key := w.key[h]
			seen := probe(h, key)
			switch {
			case seen == Gone:
				w.release(h)
			case seen <= cutoff:
				w.release(h)
				expire(key)
			default:
				w.link(h, seen)
			}
			h = nxt
		}
	}
	// Re-process the boundary tick next time: a node requeued into it
	// during this pass (refreshed within the cutoff granule) must still be
	// probed by the next pass rather than waiting a full rotation.
	w.hand = target
}
