package bufpool

import (
	"bytes"
	"testing"
	"testing/quick"

	"kite/internal/sim"
)

// TestPoolMatchesReferenceModel drives random read/write/sync/drop
// sequences against the pool and a flat reference byte array: after every
// operation completes, reads must observe exactly the reference contents,
// and after a sync the disk itself must match.
func TestPoolMatchesReferenceModel(t *testing.T) {
	type op struct {
		Kind byte
		Off  uint32
		Len  uint16
		Fill byte
	}
	prop := func(ops []op, seed uint64) bool {
		eng := sim.NewEngine()
		disk := &memDisk{eng: eng, data: make([]byte, 1<<20), delay: 5 * sim.Microsecond}
		pool := New(eng, disk, Config{ChunkBytes: 8 << 10, CapacityBytes: 64 << 10})
		ref := make([]byte, 1<<20)

		okAll := true
		for _, o := range ops {
			off := int64(o.Off) % (1 << 20)
			n := int(o.Len)%4096 + 1
			if off+int64(n) > 1<<20 {
				n = int(1<<20 - off)
			}
			switch o.Kind % 4 {
			case 0: // write
				data := bytes.Repeat([]byte{o.Fill}, n)
				pool.Write(off, data, func(err error) {
					if err != nil {
						okAll = false
					}
				})
				copy(ref[off:], data)
			case 1: // read + verify
				want := make([]byte, n)
				copy(want, ref[off:off+int64(n)])
				pool.Read(off, n, func(got []byte, err error) {
					if err != nil || !bytes.Equal(got, want) {
						okAll = false
					}
				})
			case 2: // sync
				pool.Sync(func(err error) {
					if err != nil {
						okAll = false
					}
				})
			case 3: // drop clean caches
				pool.DropCaches()
			}
			eng.Run() // sequential ops: each completes before the next
			if !okAll {
				return false
			}
		}
		// Final sync: the disk must equal the reference.
		synced := false
		pool.Sync(func(error) { synced = true })
		eng.Run()
		return synced && bytes.Equal(disk.data, ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolConcurrentOpsIntegrity issues overlapping operations without
// waiting in between; completion order may vary but a final sync must
// leave the disk consistent with the last write per region.
func TestPoolConcurrentOpsIntegrity(t *testing.T) {
	eng := sim.NewEngine()
	disk := &memDisk{eng: eng, data: make([]byte, 1<<20), delay: 20 * sim.Microsecond}
	pool := New(eng, disk, Config{ChunkBytes: 8 << 10, CapacityBytes: 32 << 10})

	// Non-overlapping regions written concurrently.
	const regions = 32
	const regionSize = 16 << 10
	done := 0
	for i := 0; i < regions; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, regionSize)
		pool.Write(int64(i)*regionSize, data, func(err error) {
			if err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			done++
		})
	}
	eng.Run()
	if done != regions {
		t.Fatalf("%d of %d writes completed", done, regions)
	}
	pool.Sync(func(error) {})
	eng.Run()
	for i := 0; i < regions; i++ {
		region := disk.data[i*regionSize : (i+1)*regionSize]
		for _, b := range region {
			if b != byte(i+1) {
				t.Fatalf("region %d corrupted on disk", i)
			}
		}
	}
}
