// Package nic models physical Ethernet controllers and the cable between
// them: the Intel 82599ES 10-Gigabit pair of the paper's testbed (Table 2),
// directly connected by an SFI/SFP+ cable. The link serializes frames at
// line rate with per-frame overhead (preamble + IFG), applies propagation
// delay, and tail-drops when the transmit queue exceeds its byte capacity —
// which is where nuttcp's UDP loss (Figure 6) comes from.
package nic

import (
	"fmt"

	"kite/internal/framepool"
	"kite/internal/netpkt"
	"kite/internal/sim"
)

// LinkConfig describes the cable and PHY characteristics.
type LinkConfig struct {
	BitsPerSecond int64    // line rate, e.g. 10e9
	PropDelay     sim.Time // cable + PHY latency, one way
	FrameOverhead int      // preamble + SFD + FCS + IFG bytes per frame
	TxQueueBytes  int64    // NIC transmit queue capacity before tail drop
}

// DefaultLink returns the testbed's 10GbE direct-attach configuration.
func DefaultLink() LinkConfig {
	return LinkConfig{
		BitsPerSecond: 10_000_000_000,
		PropDelay:     600 * sim.Nanosecond,
		FrameOverhead: 24, // 7 preamble + 1 SFD + 4 FCS + 12 IFG
		TxQueueBytes:  8 << 20,
	}
}

// Stats counts NIC traffic.
type Stats struct {
	TxFrames, TxBytes uint64
	RxFrames, RxBytes uint64
	TxDrops           uint64
}

// NIC is one Ethernet controller. Its owner (a driver-domain network stack
// or the client host) calls Send for egress and installs a receive upcall
// for ingress. Send is non-blocking; frames queue in the transmit ring and
// drain at line rate.
type NIC struct {
	eng  *sim.Engine
	name string
	mac  netpkt.MAC
	bdf  string

	link *link
	peer *NIC

	cfg         LinkConfig
	txBusyUntil sim.Time
	recv        func(frame *framepool.Buf)
	stats       Stats

	// inbound holds frames serialized onto the wire toward this NIC, each
	// stamped with its arrival time (transmit end + propagation). Arrival
	// times are monotonic per link, so a FIFO plus one armed event replaces
	// a closure-carrying engine event per frame.
	inbound sim.FIFO[wireFrame]
	arrive  *sim.Batch
}

// wireFrame is a frame in flight toward a NIC. The FIFO holds one buffer
// reference per queued frame.
type wireFrame struct {
	at    sim.Time
	frame *framepool.Buf
}

type link struct {
	cfg LinkConfig
}

// New creates a NIC with the given name, MAC, and PCI BDF.
func New(eng *sim.Engine, name string, mac netpkt.MAC, bdf string) *NIC {
	n := &NIC{eng: eng, name: name, mac: mac, bdf: bdf}
	n.arrive = sim.NewBatch(eng, n.deliverArrived)
	return n
}

// Name returns the NIC name.
func (n *NIC) Name() string { return n.name }

// MAC returns the hardware address.
func (n *NIC) MAC() netpkt.MAC { return n.mac }

// BDF returns the PCI bus/device/function string used for passthrough.
func (n *NIC) BDF() string { return n.bdf }

// Stats returns a snapshot of the traffic counters.
func (n *NIC) Stats() Stats { return n.stats }

// Connect wires two NICs back to back with the given link characteristics.
func Connect(a, b *NIC, cfg LinkConfig) {
	if cfg.BitsPerSecond <= 0 {
		panic("nic: link needs a positive bit rate")
	}
	l := &link{cfg: cfg}
	a.link, b.link = l, l
	a.peer, b.peer = b, a
	a.cfg, b.cfg = cfg, cfg
}

// SetRecv installs the ingress upcall. Each delivered frame carries one
// buffer reference that the receiver now owns and must Release.
func (n *NIC) SetRecv(fn func(frame *framepool.Buf)) { n.recv = fn }

// wireTime returns the serialization delay of one frame.
func (n *NIC) wireTime(frameLen int) sim.Time {
	bits := int64(frameLen+n.cfg.FrameOverhead) * 8
	return sim.Time(bits * int64(sim.Second) / n.cfg.BitsPerSecond)
}

// QueuedBytes estimates the bytes waiting in the transmit queue.
func (n *NIC) QueuedBytes() int64 {
	backlog := n.txBusyUntil - n.eng.Now()
	if backlog <= 0 {
		return 0
	}
	return int64(backlog) * n.cfg.BitsPerSecond / (8 * int64(sim.Second))
}

// Send queues one frame for transmission. It consumes the caller's buffer
// reference on every path: on success it rides the wire to the peer; on
// tail drop (queue over capacity — exactly what happens to a UDP blast
// above line/processing rate) it is released and Send reports false.
func (n *NIC) Send(frame *framepool.Buf) bool {
	if n.link == nil {
		panic(fmt.Sprintf("nic: %s not connected", n.name))
	}
	if n.QueuedBytes() > n.cfg.TxQueueBytes {
		n.stats.TxDrops++
		frame.ReleaseOn(n.eng)
		return false
	}
	start := n.eng.Now()
	if n.txBusyUntil > start {
		start = n.txBusyUntil
	}
	done := start + n.wireTime(frame.Len())
	n.txBusyUntil = done
	n.stats.TxFrames++
	n.stats.TxBytes += uint64(frame.Len())

	n.peer.inbound.Push(wireFrame{at: done + n.cfg.PropDelay, frame: frame})
	n.peer.arrive.Arm(done + n.cfg.PropDelay)
	return true
}

// deliverArrived raises every frame whose wire time has passed and re-arms
// for the next one still serializing.
func (n *NIC) deliverArrived() {
	now := n.eng.Now()
	for n.inbound.Len() > 0 && n.inbound.Peek().at <= now {
		frame := n.inbound.Pop().frame
		n.stats.RxFrames++
		n.stats.RxBytes += uint64(frame.Len())
		if n.recv != nil {
			n.recv(frame)
		} else {
			frame.ReleaseOn(n.eng)
		}
	}
	if p := n.inbound.Peek(); p != nil {
		n.arrive.Arm(p.at)
	}
}
