package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"kite/internal/lint/analysis"
	"kite/internal/lint/loader"
)

// Evblock checks the paper's pusher/soft_start rule statically (§3.2): a
// callback registered on the non-preemptive event machinery — an event-
// channel upcall handler, a sim.Task body, a sim.Batch flush, a raw engine
// event, or a xenstore watch — runs to completion on the single simulation
// goroutine, so it must never call a primitive that can block that
// goroutine or re-enter the scheduler:
//
//   - goroutine blocking: channel send/receive/range, select, time.Sleep,
//     sync.Mutex/RWMutex.Lock, sync.WaitGroup.Wait, sync.Cond.Wait — with
//     one simulation per goroutine, any of these deadlocks or (worse)
//     introduces scheduler-dependent timing;
//   - scheduler re-entry: (*sim.Engine).Run/RunUntil/RunFor/RunCapped/
//     Step called from inside an event reorders causality;
//   - goroutine launches, which break run-to-run determinism.
//
// The check is transitive over the static call graph (like hotpath),
// including interface dispatch via class-hierarchy analysis.
var Evblock = &analysis.Analyzer{
	Name: "evblock",
	Doc:  "event-handler callbacks must not block or re-enter the scheduler",
	Run:  runEvblock,
}

// evRegistrars maps a registration function to the index of its callback
// parameter.
var evRegistrars = map[string]int{
	"(*kite/internal/xen.Domain).SetHandler":    1,
	"kite/internal/sim.NewTask":                 4,
	"kite/internal/sim.NewBatch":                1,
	"(*kite/internal/sim.Engine).Schedule":      1,
	"(*kite/internal/sim.Engine).After":         1,
	"(*kite/internal/sim.CPU).Exec":             1,
	"(*kite/internal/sim.CPUPool).Exec":         1,
	"(*kite/internal/xenstore.Store).Watch":     2,
	"(*kite/internal/xenbus.Bus).OnStateChange": 1,
}

// reentrantEngine lists the scheduler entry points that must not be called
// from inside an event.
var reentrantEngine = map[string]bool{
	"(*kite/internal/sim.Engine).Run":       true,
	"(*kite/internal/sim.Engine).RunUntil":  true,
	"(*kite/internal/sim.Engine).RunFor":    true,
	"(*kite/internal/sim.Engine).RunCapped": true,
	"(*kite/internal/sim.Engine).Step":      true,
}

// blockingStd lists blocking methods/functions outside the module.
var blockingStd = map[string]bool{
	"time.Sleep":             true,
	"(*sync.Mutex).Lock":     true,
	"(*sync.RWMutex).Lock":   true,
	"(*sync.RWMutex).RLock":  true,
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
	"(*sync.Once).Do":        true,
	"(sync.Locker).Lock":     true,
}

func runEvblock(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	checked := make(map[*types.Func]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil {
				return true
			}
			argIdx, ok := evRegistrars[fn.FullName()]
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			checkHandlerExpr(pass, call.Args[argIdx], checked)
			return true
		})
	}
	return nil
}

// checkHandlerExpr resolves a callback argument to its function bodies and
// checks each transitively. Method values and named functions resolve
// statically; function literals are scanned in place; anything else (a
// variable holding a function) is beyond static reach and skipped.
func checkHandlerExpr(pass *analysis.Pass, arg ast.Expr, checked map[*types.Func]bool) {
	info := pass.Pkg.Info
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		scanBlocking(pass, pass.Pkg, a.Body, "function literal")
		for _, c := range calleesOf(pass.Module, pass.Pkg, a.Body, nil) {
			if c.fn.Pkg() != nil && pass.Module.InModule(c.fn.Pkg()) {
				checkHandlerFunc(pass, c.fn, "function literal", checked)
			}
		}
	case *ast.Ident:
		if fn, ok := info.Uses[a].(*types.Func); ok {
			checkHandlerFunc(pass, fn, fn.Name(), checked)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[a]; ok && sel.Kind() == types.MethodVal {
			checkHandlerFunc(pass, sel.Obj().(*types.Func), sel.Obj().Name(), checked)
		} else if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
			checkHandlerFunc(pass, fn, fn.Name(), checked)
		}
	}
}

func checkHandlerFunc(pass *analysis.Pass, root *types.Func, handler string, checked map[*types.Func]bool) {
	walkReachable(pass.Module, root,
		func(fn *types.Func, fd *analysis.FuncDecl) bool {
			if checked[fn] {
				return true
			}
			checked[fn] = true
			scanBlocking(pass, fd.Pkg, fd.Decl.Body, handler)
			return true
		},
		func(from *analysis.FuncDecl, c callee) {
			if blockingStd[c.fn.FullName()] {
				pass.Reportf(c.call.Pos(),
					"evblock: handler %s calls blocking %s on the non-preemptive scheduler", handler, c.fn.FullName())
			}
		},
		nil)
}

// scanBlocking reports goroutine-blocking syntax and scheduler re-entry
// inside one body.
func scanBlocking(pass *analysis.Pass, pkg *loader.Package, body ast.Node, handler string) {
	info := pkg.Info
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "evblock: handler %s %s on the non-preemptive scheduler", handler, what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SendStmt:
			report(e.Pos(), "sends on a channel")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				report(e.Pos(), "receives from a channel")
			}
		case *ast.SelectStmt:
			report(e.Pos(), "blocks in select")
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(e.Pos(), "ranges over a channel")
				}
			}
		case *ast.GoStmt:
			report(e.Pos(), "launches a goroutine")
		case *ast.CallExpr:
			if fn := staticCallee(info, e); fn != nil && reentrantEngine[fn.FullName()] {
				report(e.Pos(), "re-enters the scheduler via "+fn.Name())
			}
		}
		return true
	})
}
