GO ?= go

.PHONY: verify build test race vet lint race-stress zeroalloc bench

# verify is the tree-must-be-green gate: vet, build everything, kitelint
# (the repo's own invariant analyzers), the zero-allocation forward-path
# assertion (which the race detector's instrumentation would distort, so
# it runs in a normal build), then the full test suite under the race
# detector (which also exercises the parallel experiment runner's
# determinism tests).
verify: vet build lint zeroalloc race

vet:
	$(GO) vet ./...

# lint runs the kitelint analyzer suite (hotpath, poolref, simdet,
# xskeys, evblock, shardsafe, relpure, ringlink, atomicscope) over the
# whole module; any finding fails the build. See DESIGN.md §11 and §15
# for the invariants each analyzer proves.
lint:
	$(GO) run ./cmd/kitelint .

# race-stress is the dynamic counterpart of the shardsafe/atomicscope
# static proof: the cluster barrier tests under the race detector at a
# starved and an oversubscribed GOMAXPROCS, repeated to vary schedules.
race-stress:
	GOMAXPROCS=2 $(GO) test -race -count=3 ./internal/sim
	GOMAXPROCS=8 $(GO) test -race -count=3 ./internal/sim

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

zeroalloc:
	$(GO) test -count=1 -run 'TestForwardPathZeroAlloc|TestBlockPathZeroAlloc' ./internal/core

# bench snapshots the forward-path pipeline benchmarks into BENCH_net.json
# (frames per second, the multi-queue simframes/sec sweep over
# -queues 1,2,4,8, and the fleet sweep over -guests 16,64,256,1024) and
# the storage pipeline benchmarks into BENCH_blk.json (bytes per second
# plus the matching simbytes/sec sweep). Each go-test run lands in a temp
# file first: in a pipeline a benchmark failure would be swallowed by the
# pipe (make only sees the last command's status) while still truncating
# the committed snapshot. Every step removes its temp files on failure so
# an aborted run leaves no droppings in the tree. The fleet family runs a
# fixed iteration count (handshaking 1024 guests per calibration pass
# would dominate the run), is gated allocation-free at every scale, and
# must keep 1024-guest virtual per-guest cost within 1.25x the 64-guest
# figure (the O(active) flatness gate; see EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkForwardPath' -benchmem -count=1 ./internal/core > bench_net.tmp || { rm -f bench_net.tmp; exit 1; }
	$(GO) test -run '^$$' -bench 'BenchmarkFleet' -benchtime 50x -benchmem -count=1 ./internal/core >> bench_net.tmp || { rm -f bench_net.tmp; exit 1; }
	$(GO) run ./cmd/benchjson \
		-gate-allocs 'BenchmarkFleet/guests=16,BenchmarkFleet/guests=64,BenchmarkFleet/guests=256,BenchmarkFleet/guests=1024' \
		-gate-flat 'Fleet/guests=1024:Fleet/guests=64@1.25' \
		< bench_net.tmp > BENCH_net.json.tmp || { rm -f bench_net.tmp BENCH_net.json.tmp; exit 1; }
	mv BENCH_net.json.tmp BENCH_net.json
	rm bench_net.tmp
	cat BENCH_net.json
	$(GO) test -run '^$$' -bench 'BenchmarkBlockPath' -benchmem -count=1 ./internal/core > bench_blk.tmp || { rm -f bench_blk.tmp; exit 1; }
	$(GO) run ./cmd/benchjson < bench_blk.tmp > BENCH_blk.json.tmp || { rm -f bench_blk.tmp BENCH_blk.json.tmp; exit 1; }
	mv BENCH_blk.json.tmp BENCH_blk.json
	rm bench_blk.tmp
	cat BENCH_blk.json
