package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/hotpath", "testdata/src/hotpath", analyzers.Hotpath)
}
