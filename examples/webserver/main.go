// Webserver example: the full Qubes-style decomposition from the paper's
// motivation — one guest serving HTTP, with its NIC behind a Kite network
// domain and its disk behind a Kite storage domain. Content is written to
// the paravirtual disk, read back through the page cache, and served to
// the client over the PV network path; the example then benchmarks it with
// the ApacheBench workload (Fig 8's setup).
package main

import (
	"fmt"
	"log"

	"kite"
	"kite/internal/apps"
	"kite/internal/sim"
	"kite/internal/workload"
)

func main() {
	tb := kite.NewTestbed(2)
	nd, err := tb.System.CreateNetworkDomain(kite.NetworkDomainConfig{
		Kind: kite.KindKite, NIC: tb.ServerNIC,
	})
	if err != nil {
		log.Fatal(err)
	}
	sd, err := tb.System.CreateStorageDomain(kite.StorageDomainConfig{
		Kind: kite.KindKite, Device: tb.NVMe,
	})
	if err != nil {
		log.Fatal(err)
	}
	guest, err := tb.System.CreateGuest(kite.GuestConfig{
		Name: "web-domU", IP: tb.GuestIP,
		Net: nd, Storage: sd, DiskBytes: 2 << 30, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !tb.System.RunReady(guest.Ready, 500000) {
		log.Fatal("device handshakes did not complete")
	}
	fmt.Println("guest up with vif + vbd through two Kite driver domains")

	// Store the site content on the PV disk, then serve it from memory
	// after a verified read-back.
	srv, err := apps.NewHTTPServer(guest.Stack, 80)
	if err != nil {
		log.Fatal(err)
	}
	content := make([]byte, 256<<10)
	sim.NewRand(42).Bytes(content)
	f, err := guest.FS.Create("site/index.bin")
	if err != nil {
		log.Fatal(err)
	}
	loaded := false
	guest.FS.Write(f, 0, content, func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		guest.FS.Read(f, 0, len(content), func(b []byte, err error) {
			if err != nil {
				log.Fatal(err)
			}
			srv.AddFile("/index.bin", b)
			loaded = true
		})
	})
	if !tb.System.RunReady(func() bool { return loaded }, 2_000_000) {
		log.Fatal("content load did not complete")
	}
	fmt.Printf("served file staged from NVMe through blkfront (%d ring requests so far)\n",
		guest.Disk.Stats().RingRequests)

	// Benchmark from the client machine.
	got := false
	workload.ApacheBench(tb.Client, tb.GuestIP, 80, "/index.bin", 100, 8,
		func(r workload.ABResult) {
			fmt.Printf("ab: %d requests, %.1f req/s, %.1f MB/s, avg latency %.3f ms\n",
				r.Requests, r.RequestsPerSec, r.ThroughputMBps, r.AvgLatency.Millis())
			got = true
		})
	if !tb.System.RunReady(func() bool { return got }, 30_000_000) {
		log.Fatal("benchmark did not complete")
	}
}
