package core

import (
	"testing"

	"kite/internal/netstack"
)

// BenchmarkForwardPath measures the wall-clock cost of simulating one
// guest→client MTU frame through the full PV pipeline (netfront ring,
// netback pusher, bridge, NIC, client stack), reported as simulated
// frames per wall second. `make bench` snapshots this into BENCH_net.json.
func BenchmarkForwardPath(b *testing.B) {
	rig, err := NewNetworkRig(KindKite, 0xbe7c4)
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) { delivered++ })
	payload := make([]byte, 1400)
	eng := rig.System.Eng
	for i := 0; i < 200; i++ { // warm pools, caches, and queues
		rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, 9001, payload)
		eng.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, 9001, payload)
		eng.Run()
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no frames delivered")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
}
