// Package netstack is the minimal TCP/IP stack used by every endpoint in
// the simulation: the client load-generator host, DomU guests (over
// netfront), and the Kite driver domain's own interface (for ifconfig-style
// addressing and the DHCP daemon VM). It speaks ARP, IPv4 with
// fragmentation, ICMP echo, UDP, and a flow-controlled TCP subset with
// go-back-N retransmission.
//
// The stack charges per-packet and per-byte CPU costs to its owner's vCPUs;
// the difference between a Linux guest (syscall crossings) and a rumprun
// unikernel (function calls) enters the experiments through the Costs
// struct.
//
// Frames travel as pooled buffers (framepool.Buf): the stack builds each
// outgoing frame once — L4 scratch, then IP and Ethernet headers prepended
// into the buffer's headroom — and hands exactly one reference to the
// device. Received frames arrive as one reference the stack owns and
// releases after synchronous protocol processing.
package netstack

import (
	"fmt"

	"kite/internal/framepool"
	"kite/internal/netpkt"
	"kite/internal/sim"
)

// NetIf is the device interface a stack drives: a physical NIC, a netfront
// device, or a driver-domain VIF.
type NetIf interface {
	MAC() netpkt.MAC
	// Send queues one Ethernet frame; false means the frame was dropped.
	// Send consumes the caller's buffer reference on every path.
	Send(frame *framepool.Buf) bool
	// SetRecv installs the ingress upcall. Each delivered frame carries one
	// reference the callee owns.
	SetRecv(fn func(frame *framepool.Buf))
}

// TimedFrame is one frame of a batched device hand-off, stamped with the
// virtual time its Tx charge completes. Stamps are nondecreasing within a
// batch.
type TimedFrame struct {
	At    sim.Time
	Frame *framepool.Buf
}

// BatchSender is an optional NetIf capability: a device that accepts a whole
// burst of stamped frames in one call. Frames may be handed over before
// their stamps mature — the device must not let a frame take effect before
// its At — which lets the stack drain its Tx queue in one flush instead of
// one timer event per frame. SendBatch consumes one buffer reference per
// frame on every path; the slice is only valid for the duration of the call.
type BatchSender interface {
	NetIf
	BatchCapable() bool
	SendBatch(frames []TimedFrame)
}

// Costs models the OS-dependent software path.
type Costs struct {
	PerPacket sim.Time // IP/driver processing per packet
	PerKB     sim.Time // data-touching cost (checksum, copies) per KiB
	Syscall   sim.Time // app/kernel boundary crossing (0 in a unikernel)
}

// LinuxGuestCosts returns the stack costs of the Ubuntu 18.04 DomU.
func LinuxGuestCosts() Costs {
	return Costs{PerPacket: 900 * sim.Nanosecond, PerKB: 45 * sim.Nanosecond, Syscall: 250 * sim.Nanosecond}
}

// RumprunCosts returns the stack costs of a Kite unikernel domain: no
// user/kernel crossing, slightly leaner per-packet path (NetBSD stack
// without cgroups/netfilter layers).
func RumprunCosts() Costs {
	return Costs{PerPacket: 700 * sim.Nanosecond, PerKB: 45 * sim.Nanosecond, Syscall: 0}
}

// Stats counts stack traffic.
type Stats struct {
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	RxDropNoHandler      uint64
	ARPRequests          uint64
	ARPReplies           uint64
}

// UDPPacket is a received datagram handed to a bound handler. Data aliases
// stack-owned receive storage and is only valid for the duration of the
// handler call.
type UDPPacket struct {
	Src     netpkt.IP
	SrcPort uint16
	Dst     netpkt.IP
	Data    []byte
}

// Stack is one endpoint's network stack.
type Stack struct {
	Name string

	eng   *sim.Engine
	cpus  *sim.CPUPool
	ifc   NetIf
	ip    netpkt.IP
	costs Costs
	rng   *sim.Rand
	pool  *framepool.Pool

	arp        map[netpkt.IP]netpkt.MAC
	arpPending map[netpkt.IP][]*framepool.Buf // queued IP packets (refs held) awaiting resolution
	reasm      *netpkt.Reassembler
	ipID       uint16

	// l4buf is scratch for assembling one L4 datagram (header + payload)
	// before it is copied into per-fragment pooled buffers. sendIP consumes
	// it synchronously, so a single buffer suffices; it grows to the
	// largest datagram ever sent and then never allocates again.
	l4buf []byte

	udpBinds map[uint16]func(UDPPacket)
	pingWait map[uint16]pingWaiter

	listeners map[uint16]func(*Conn)
	conns     map[connKey]*Conn
	nextPort  uint16
	nextPing  uint16

	// TCPWindow is the flow-control window offered and used per
	// connection. Defaults to 64 KiB.
	TCPWindow int

	// Frames wait in per-direction FIFOs until their CPU charge completes;
	// one armed Batch per direction replaces a closure-carrying engine
	// event per frame. The watermarks force completion times monotonic per
	// direction (a real NIC queue and a real softirq queue never reorder
	// frames of one flow) even when per-frame costs differ.
	txq, rxq         sim.FIFO[timedBuf]
	txFlush, rxFlush *sim.Batch
	txLast, rxLast   sim.Time

	// batch is the device's batched-send capability (nil without one); when
	// set, flushTx drains the whole Tx queue as one stamped burst through
	// txScratch, a reused staging slice.
	batch     BatchSender
	txScratch []TimedFrame

	stats Stats
}

// timedBuf is a frame waiting for its CPU charge to complete; the FIFO
// holds one buffer reference per entry.
type timedBuf struct {
	at  sim.Time
	buf *framepool.Buf
}

type pingWaiter struct {
	sentAt sim.Time
	cb     func(rtt sim.Time)
}

// Config bundles the stack constructor arguments.
type Config struct {
	Name  string
	CPUs  *sim.CPUPool
	Iface NetIf
	IP    netpkt.IP
	Costs Costs
	Seed  uint64
	// Pool is the simulation's frame pool. A private pool is created when
	// nil (convenient for unit tests).
	Pool *framepool.Pool
}

// New creates a stack and attaches it to its interface.
func New(eng *sim.Engine, cfg Config) *Stack {
	pool := cfg.Pool
	if pool == nil {
		pool = framepool.New()
	}
	s := &Stack{
		Name:       cfg.Name,
		eng:        eng,
		cpus:       cfg.CPUs,
		ifc:        cfg.Iface,
		ip:         cfg.IP,
		costs:      cfg.Costs,
		rng:        sim.NewRand(cfg.Seed ^ 0x57ac),
		pool:       pool,
		arp:        make(map[netpkt.IP]netpkt.MAC),
		arpPending: make(map[netpkt.IP][]*framepool.Buf),
		reasm:      netpkt.NewReassembler(),
		udpBinds:   make(map[uint16]func(UDPPacket)),
		pingWait:   make(map[uint16]pingWaiter),
		listeners:  make(map[uint16]func(*Conn)),
		conns:      make(map[connKey]*Conn),
		nextPort:   33000,
		TCPWindow:  64 << 10,
	}
	s.txFlush = sim.NewBatch(eng, s.flushTx)
	s.rxFlush = sim.NewBatch(eng, s.flushRx)
	s.setBatch(cfg.Iface)
	cfg.Iface.SetRecv(s.rxFrame)
	s.setLinkDown(cfg.Iface)
	return s
}

// setLinkDown subscribes to the device's carrier-loss notification, if it
// offers one, so the stack can flush its neighbour state when the link
// dies under it (a vif whose backend disappeared mid-traffic).
func (s *Stack) setLinkDown(dev NetIf) {
	if ld, ok := dev.(interface{ SetOnDown(func()) }); ok {
		ld.SetOnDown(s.linkDown)
	}
}

// linkDown is the carrier-loss handler: like a real kernel dropping its
// neighbour queue on link down, packets parked awaiting ARP resolution
// are released — the reply can never arrive through a dead device, and a
// churning fleet must not pin a burst of frame buffers per departed
// tenant. The ARP cache itself is flushed too; entries learned through
// the old link are stale on whatever replaces it.
func (s *Stack) linkDown() {
	s.arp = make(map[netpkt.IP]netpkt.MAC)
	for _, queued := range s.arpPending {
		for _, b := range queued {
			b.ReleaseOn(s.eng)
		}
	}
	s.arpPending = make(map[netpkt.IP][]*framepool.Buf)
}

// setBatch caches the device's batched-send capability, if any.
func (s *Stack) setBatch(dev NetIf) {
	s.batch = nil
	if bs, ok := dev.(BatchSender); ok && bs.BatchCapable() {
		s.batch = bs
	}
}

// IP returns the stack's address.
func (s *Stack) IP() netpkt.IP { return s.ip }

// Engine returns the simulation engine.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// CPUs returns the vCPU pool the stack charges.
func (s *Stack) CPUs() *sim.CPUPool { return s.cpus }

// Costs returns the stack's cost model (apps charge Syscall through it).
func (s *Stack) Costs() Costs { return s.costs }

// Pool returns the stack's frame pool.
func (s *Stack) Pool() *framepool.Pool { return s.pool }

// Stats returns a snapshot of the counters.
func (s *Stack) Stats() Stats { return s.stats }

// SeedARP pre-populates the ARP table (static neighbour entry).
func (s *Stack) SeedARP(ip netpkt.IP, mac netpkt.MAC) { s.arp[ip] = mac }

// SetIface swaps the underlying device (a vif replugged after a driver
// domain restart). The ARP cache is flushed: the bridge behind the new
// backend has no state for us. Packets queued on unresolved entries are
// dropped and their buffers released.
func (s *Stack) SetIface(dev NetIf) {
	s.ifc = dev
	s.setBatch(dev)
	dev.SetRecv(s.rxFrame)
	s.setLinkDown(dev)
	s.linkDown()
}

func (s *Stack) dataCost(n int) sim.Time {
	// A few percent of per-packet jitter (cache/TLB luck) so repeated runs
	// under different seeds show the small RSDs of Table 4.
	base := s.costs.PerPacket + sim.Time(n)*s.costs.PerKB/1024
	return s.rng.Jitter(base, 0.04)
}

// l4 returns the shared L4 scratch buffer with length n. Its contents are
// consumed synchronously by sendIP, so one buffer serves all senders.
func (s *Stack) l4(n int) []byte {
	if cap(s.l4buf) < n {
		s.l4buf = make([]byte, n)
	}
	return s.l4buf[:n]
}

// queueTx holds frame until the Tx charge completes, then hands its
// reference to the device.
func (s *Stack) queueTx(cost sim.Time, frame *framepool.Buf) {
	at := s.cpus.Charge(cost)
	if at < s.txLast {
		at = s.txLast
	}
	s.txLast = at
	s.txq.Push(timedBuf{at: at, buf: frame})
	s.txFlush.Arm(at)
}

func (s *Stack) flushTx() {
	if s.batch != nil {
		// Batch-capable device: drain the whole Tx queue as one stamped
		// burst — the device honours each frame's completion stamp, so no
		// per-frame pacing event is needed here.
		for s.txq.Len() > 0 {
			e := s.txq.Pop()
			s.txScratch = append(s.txScratch, TimedFrame{At: e.at, Frame: e.buf}) //kite:alloc-ok scratch grows to the burst high-water mark, then recycles
		}
		if len(s.txScratch) > 0 {
			s.batch.SendBatch(s.txScratch)
			for i := range s.txScratch {
				s.txScratch[i] = TimedFrame{} // drop frame refs from spare slots
			}
			s.txScratch = s.txScratch[:0]
		}
		return
	}
	now := s.eng.Now()
	for s.txq.Len() > 0 && s.txq.Peek().at <= now {
		s.ifc.Send(s.txq.Pop().buf)
	}
	if p := s.txq.Peek(); p != nil {
		s.txFlush.Arm(p.at)
	}
}

// sendIP routes one IP payload: fragments it into pooled frame buffers,
// ARP-resolves, and transmits. The payload (often the l4 scratch) is copied
// into the pooled buffers before sendIP returns.
func (s *Stack) sendIP(proto uint8, dst netpkt.IP, payload []byte) {
	s.ipID++
	h := netpkt.IPv4Header{ID: s.ipID, TTL: 64, Proto: proto, Src: s.ip, Dst: dst}
	if len(payload) <= netpkt.MTU-netpkt.IPHeaderLen {
		s.sendFragment(&h, dst, payload, 0, false)
		return
	}
	// Fragment offsets are in 8-byte units per RFC 791, so the per-fragment
	// payload is rounded down to a multiple of 8.
	maxData := (netpkt.MTU - netpkt.IPHeaderLen) &^ 7
	for off := 0; off < len(payload); off += maxData {
		end := off + maxData
		more := true
		if end >= len(payload) {
			end = len(payload)
			more = false
		}
		s.sendFragment(&h, dst, payload[off:end], off, more)
	}
}

// sendFragment builds one IP packet in a pooled buffer: payload first, then
// the IP header prepended into headroom.
func (s *Stack) sendFragment(h *netpkt.IPv4Header, dst netpkt.IP, chunk []byte, off int, more bool) {
	if more {
		h.Flags = netpkt.FlagMoreFragments
	} else {
		h.Flags = 0
	}
	h.FragOff = uint16(off / 8)
	b := s.pool.Get()
	copy(b.Extend(len(chunk)), chunk)
	h.HeaderInto(b.Prepend(netpkt.IPHeaderLen), len(chunk))
	s.sendIPBuf(dst, b)
}

// sendIPBuf resolves the next hop, prepends the Ethernet header, and queues
// the frame. It consumes the buffer reference: unresolved destinations park
// it on the ARP pending queue.
func (s *Stack) sendIPBuf(dst netpkt.IP, pkt *framepool.Buf) {
	var dmac netpkt.MAC
	if dst == netpkt.BroadcastIP {
		dmac = netpkt.Broadcast
	} else {
		mac, ok := s.arp[dst]
		if !ok {
			s.arpPending[dst] = append(s.arpPending[dst], pkt)
			s.sendARPRequest(dst)
			return
		}
		dmac = mac
	}
	f := netpkt.Frame{Dst: dmac, Src: s.ifc.MAC(), EtherType: netpkt.EtherTypeIPv4}
	f.HeaderInto(pkt.Prepend(netpkt.EthHeaderLen))
	s.stats.TxPackets++
	s.stats.TxBytes += uint64(pkt.Len())
	s.queueTx(s.dataCost(pkt.Len()), pkt)
}

func (s *Stack) sendARPRequest(target netpkt.IP) {
	s.stats.ARPRequests++
	a := netpkt.ARP{Op: netpkt.ARPRequest, SenderMAC: s.ifc.MAC(), SenderIP: s.ip, TargetIP: target}
	b := s.pool.Get()
	a.MarshalInto(b.Extend(28))
	f := netpkt.Frame{Dst: netpkt.Broadcast, Src: s.ifc.MAC(), EtherType: netpkt.EtherTypeARP}
	f.HeaderInto(b.Prepend(netpkt.EthHeaderLen))
	s.queueTx(s.costs.PerPacket, b)
}

// rxFrame is the device ingress upcall; the stack owns the delivered
// reference and releases it after protocol processing.
func (s *Stack) rxFrame(frame *framepool.Buf) {
	s.stats.RxPackets++
	s.stats.RxBytes += uint64(frame.Len())
	at := s.cpus.Charge(s.dataCost(frame.Len()))
	if at < s.rxLast {
		at = s.rxLast
	}
	s.rxLast = at
	s.rxq.Push(timedBuf{at: at, buf: frame})
	s.rxFlush.Arm(at)
}

func (s *Stack) flushRx() {
	now := s.eng.Now()
	for s.rxq.Len() > 0 && s.rxq.Peek().at <= now {
		b := s.rxq.Pop().buf
		s.handleFrame(b.Bytes())
		// Delivered frames may live in a queue-shard arena (netfront Rx,
		// netback Tx): route the last reference back to its home shard.
		b.ReleaseOn(s.eng)
	}
	if p := s.rxq.Peek(); p != nil {
		s.rxFlush.Arm(p.at)
	}
}

func (s *Stack) handleFrame(raw []byte) {
	f, ok := netpkt.DecodeFrame(raw)
	if !ok {
		return
	}
	if f.Dst != s.ifc.MAC() && f.Dst != netpkt.Broadcast {
		return // not for us (promiscuous reception filtered here)
	}
	switch f.EtherType {
	case netpkt.EtherTypeARP:
		s.handleARP(f.Payload)
	case netpkt.EtherTypeIPv4:
		s.handleIPv4(f.Payload)
	}
}

func (s *Stack) handleARP(body []byte) {
	a, ok := netpkt.DecodeARP(body)
	if !ok {
		return
	}
	// Opportunistic learning.
	s.arp[a.SenderIP] = a.SenderMAC
	s.flushARPPending(a.SenderIP)
	if a.Op == netpkt.ARPRequest && a.TargetIP == s.ip {
		s.stats.ARPReplies++
		reply := netpkt.ARP{
			Op: netpkt.ARPReply, SenderMAC: s.ifc.MAC(), SenderIP: s.ip,
			TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
		}
		b := s.pool.Get()
		reply.MarshalInto(b.Extend(28))
		f := netpkt.Frame{Dst: a.SenderMAC, Src: s.ifc.MAC(), EtherType: netpkt.EtherTypeARP}
		f.HeaderInto(b.Prepend(netpkt.EthHeaderLen))
		s.queueTx(s.costs.PerPacket, b)
	}
}

func (s *Stack) flushARPPending(ip netpkt.IP) {
	queued := s.arpPending[ip]
	if len(queued) == 0 {
		return
	}
	delete(s.arpPending, ip)
	for _, pkt := range queued {
		s.sendIPBuf(ip, pkt)
	}
}

func (s *Stack) handleIPv4(body []byte) {
	h, payload, ok := netpkt.DecodeIPv4(body)
	if !ok {
		return
	}
	if h.Dst != s.ip && h.Dst != netpkt.BroadcastIP {
		return
	}
	full, done := s.reasm.Push(&h, payload)
	if !done {
		return
	}
	switch h.Proto {
	case netpkt.ProtoICMP:
		s.handleICMP(&h, full)
	case netpkt.ProtoUDP:
		s.handleUDP(&h, full)
	case netpkt.ProtoTCP:
		s.handleTCP(&h, full)
	}
}

func (s *Stack) handleICMP(h *netpkt.IPv4Header, body []byte) {
	e, payload, ok := netpkt.DecodeICMPEcho(body)
	if !ok {
		return
	}
	switch e.Type {
	case netpkt.ICMPEchoRequest:
		reply := netpkt.ICMPEcho{Type: netpkt.ICMPEchoReply, ID: e.ID, Seq: e.Seq}
		b := s.l4(netpkt.ICMPHeaderLen + len(payload))
		copy(b[netpkt.ICMPHeaderLen:], payload)
		reply.MarshalInto(b)
		s.sendIP(netpkt.ProtoICMP, h.Src, b)
	case netpkt.ICMPEchoReply:
		if w, ok := s.pingWait[e.ID]; ok {
			delete(s.pingWait, e.ID)
			w.cb(s.eng.Now() - w.sentAt)
		}
	}
}

// Ping sends an ICMP echo request with a payload of the given size and
// invokes cb with the round-trip time when the reply arrives.
func (s *Stack) Ping(dst netpkt.IP, payloadSize int, cb func(rtt sim.Time)) {
	s.nextPing++
	id := s.nextPing
	s.pingWait[id] = pingWaiter{sentAt: s.eng.Now(), cb: cb}
	e := netpkt.ICMPEcho{Type: netpkt.ICMPEchoRequest, ID: id, Seq: 1}
	s.cpus.Charge(s.costs.Syscall)
	b := s.l4(netpkt.ICMPHeaderLen + payloadSize)
	clear(b[netpkt.ICMPHeaderLen:])
	e.MarshalInto(b)
	s.sendIP(netpkt.ProtoICMP, dst, b)
}

func (s *Stack) handleUDP(h *netpkt.IPv4Header, body []byte) {
	u, payload, ok := netpkt.DecodeUDP(body)
	if !ok {
		return
	}
	fn := s.udpBinds[u.DstPort]
	if fn == nil {
		s.stats.RxDropNoHandler++
		return
	}
	// Hand the payload across the socket boundary.
	s.cpus.Charge(s.costs.Syscall)
	fn(UDPPacket{Src: h.Src, SrcPort: u.SrcPort, Dst: h.Dst, Data: payload})
}

// BindUDP installs a datagram handler on a local port.
func (s *Stack) BindUDP(port uint16, fn func(UDPPacket)) error {
	if _, taken := s.udpBinds[port]; taken {
		return fmt.Errorf("netstack: udp port %d already bound on %s", port, s.Name)
	}
	s.udpBinds[port] = fn
	return nil
}

// UnbindUDP releases a port.
func (s *Stack) UnbindUDP(port uint16) { delete(s.udpBinds, port) }

// SendUDP transmits one datagram (fragmenting if needed).
func (s *Stack) SendUDP(dst netpkt.IP, dstPort, srcPort uint16, payload []byte) {
	s.cpus.Charge(s.costs.Syscall)
	u := netpkt.UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	b := s.l4(netpkt.UDPHeaderLen + len(payload))
	u.HeaderInto(b, len(payload))
	copy(b[netpkt.UDPHeaderLen:], payload)
	s.sendIP(netpkt.ProtoUDP, dst, b)
}

// EphemeralPort returns a fresh local port.
func (s *Stack) EphemeralPort() uint16 {
	s.nextPort++
	if s.nextPort < 32768 {
		s.nextPort = 32768
	}
	return s.nextPort
}
