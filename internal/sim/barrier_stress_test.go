package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// barrierStressSummary runs an adversarial 8-shard workload — lookahead 1,
// so nearly every event opens its own window — and returns a byte-exact
// summary of everything observable: per-shard event traces with
// timestamps, event totals, window/fusion counts, and cross-shard post
// counts. The workload mixes local schedule churn, PriData ring posts,
// and PriRelease fan-out posts so data posts, barrier-executed releases,
// free sprints, and fused windows all occur. With declareEdges the same
// traffic runs under a per-edge lookahead matrix instead of the uniform
// fallback.
func barrierStressSummary(t *testing.T, workers int, declareEdges bool) string {
	t.Helper()
	const (
		shards = 8
		maxHop = 400
	)
	c := NewCluster(shards, 1, 0xadbeef)
	if declareEdges {
		for i := 0; i < shards; i++ {
			c.DeclareEdge(i, (i+1)%shards, 1)
			c.DeclareEdge(i, (i*3+1)%shards, 2)
		}
	}
	traces := make([]*strings.Builder, shards)
	handlers := make([]func(any), shards)
	releases := make([]func(any), shards)
	for i := 0; i < shards; i++ {
		traces[i] = &strings.Builder{}
	}
	for i := 0; i < shards; i++ {
		i := i
		e := c.Shard(i)
		tr := traces[i]
		// Terminal sink for PriRelease fan-out: executes at the barrier,
		// records, and spawns nothing (keeps the token population bounded).
		releases[i] = func(a any) {
			fmt.Fprintf(tr, "s%d t%d rel h%d;", i, e.Now(), a.(int))
		}
		handlers[i] = func(a any) {
			hop := a.(int)
			fmt.Fprintf(tr, "s%d t%d h%d;", i, e.Now(), hop)
			// Local churn: events landing inside and beyond the current
			// 1ns window, so runTo stops mid-heap and resumes next window.
			e.Schedule(e.Now()+1, func() { fmt.Fprintf(tr, "s%d t%d churn;", i, e.Now()) })
			e.Schedule(e.Now()+3, func() { fmt.Fprintf(tr, "s%d t%d churn3;", i, e.Now()) })
			if hop >= maxHop {
				return
			}
			e.Post(c.Shard((i+1)%shards), 1, PriData, handlers[(i+1)%shards], hop+1)
			if hop%3 == 0 {
				j := (i*3 + 1) % shards
				e.Post(c.Shard(j), 2, PriRelease, releases[j], hop)
			}
		}
	}
	// Seed several shards at staggered times so windows start with real
	// cross-shard concurrency rather than one token walking a quiet ring.
	for i := 0; i < shards; i += 2 {
		i := i
		c.Shard(i).Schedule(Time(i%3), func() { handlers[i](0) })
	}
	c.SetWorkers(workers)
	c.Run()
	c.SetWorkers(1) // retire workers before the cluster goes out of scope

	var sum strings.Builder
	fmt.Fprintf(&sum, "events=%d windows=%d fused=%d posts=%d\n",
		c.Processed(), c.Windows(), c.Fused(), c.Posted())
	for i := 0; i < shards; i++ {
		fmt.Fprintf(&sum, "shard%d=%d\n", i, c.Shard(i).ProcessedLocal())
	}
	for i := 0; i < shards; i++ {
		sum.WriteString(traces[i].String())
		sum.WriteByte('\n')
	}
	return sum.String()
}

// TestBarrierStressAdversarial drives the persistent-worker barrier with
// lookahead-1 window sizes and asserts the 8-worker run is byte-identical
// to the serial run: same event totals, same window and fusion counts,
// same per-shard traces. Run under -race by `make verify`, this is the
// regression witness for the parked-worker epoch barrier — any mid-window
// sharing or window-boundary reordering shows up as a trace diff or a
// race report.
func TestBarrierStressAdversarial(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	for _, declare := range []bool{false, true} {
		name := "uniform"
		if declare {
			name = "edge-matrix"
		}
		serial := barrierStressSummary(t, 1, declare)
		if !strings.Contains(serial, "events=") || len(serial) < 1000 {
			t.Fatalf("%s: implausibly small serial summary:\n%s", name, serial)
		}
		for _, workers := range []int{2, 8} {
			par := barrierStressSummary(t, workers, declare)
			if par != serial {
				t.Errorf("%s: workers=%d summary differs from serial run\n--- serial head ---\n%.400s\n--- workers=%d head ---\n%.400s",
					name, workers, serial, workers, par)
			}
		}
	}
}
