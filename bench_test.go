// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the design-choice ablations of §3. Each benchmark
// regenerates its experiment at Quick scale on the simulated testbed,
// reports the headline values as benchmark metrics, and fails if the
// paper's qualitative claim (who wins, by roughly what factor) does not
// hold. Run `go test -bench=. -benchmem` or `cmd/kitebench` for the
// table-formatted output.
package kite

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"kite/internal/experiments"
)

func quick() experiments.Scale { return experiments.Quick() }

// reportPairs exposes an experiment's pairs as benchmark metrics.
func reportPairs(b *testing.B, res *experiments.Result, metricNames ...string) {
	b.Helper()
	for _, name := range metricNames {
		p := res.Pair(name)
		if p == nil {
			b.Fatalf("%s: missing pair %q", res.ID, name)
		}
		unit := strings.ReplaceAll(name, " ", "_")
		b.ReportMetric(p.Linux, unit+"_linux")
		b.ReportMetric(p.Kite, unit+"_kite")
	}
}

// BenchmarkFig1aDriverCVEs regenerates Figure 1a's driver-CVE trend.
func BenchmarkFig1aDriverCVEs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1aDriverCVEs()
		if res.Table.NumRows() < 5 {
			b.Fatal("Fig 1a needs multiple years")
		}
	}
}

// BenchmarkFig1bROPTotals regenerates Figure 1b's total gadget counts.
func BenchmarkFig1bROPTotals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1bFig5ROP()
		def := res.Pair("default/kite")
		if def == nil || def.Linux/def.Kite < 3 {
			b.Fatalf("default kernel must have ~4x Kite's gadgets: %+v", def)
		}
		b.ReportMetric(def.Kite, "kite_gadgets")
		b.ReportMetric(def.Linux, "default_gadgets")
		b.ReportMetric(res.Pair("ubuntu/kite").Linux, "ubuntu_gadgets")
	}
}

// BenchmarkFig5ROPCategories regenerates Figure 5's per-category scan.
func BenchmarkFig5ROPCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		counts := GadgetCounts(KiteNetworkDomainScanProfile())
		var total uint64
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			b.Fatal("empty gadget scan")
		}
		b.ReportMetric(float64(total), "kite_gadgets")
	}
}

// BenchmarkTable3CVEs verifies all 11 Table 3 CVEs are mitigated by Kite.
func BenchmarkTable3CVEs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3()
		p := res.Pair("mitigated-by-kite")
		if p == nil || p.Kite != 11 {
			b.Fatalf("Table 3 mitigations = %+v, want 11", p)
		}
		b.ReportMetric(p.Kite, "mitigated")
	}
}

// BenchmarkFig4aSyscalls regenerates Figure 4a (171 vs 14/18 syscalls).
func BenchmarkFig4aSyscalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4Footprint()
		p := res.Pair("syscalls")
		if p.Linux/p.Kite < 10 {
			b.Fatalf("syscall reduction %.1fx, want >= 10x", p.Linux/p.Kite)
		}
		reportPairs(b, res, "syscalls")
	}
}

// BenchmarkFig4bImageSize regenerates Figure 4b (~10x smaller image).
func BenchmarkFig4bImageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4Footprint()
		p := res.Pair("image")
		if p.Linux/p.Kite < 9 {
			b.Fatalf("image ratio %.1fx, want ~10x", p.Linux/p.Kite)
		}
		b.ReportMetric(p.Linux/(1<<20), "linux_MB")
		b.ReportMetric(p.Kite/(1<<20), "kite_MB")
	}
}

// BenchmarkFig4cBootTime runs experiment E1 (claim C1: >= 10x faster boot).
func BenchmarkFig4cBootTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4cBootTime()
		p := res.Pair("boot-to-service")
		if p.Linux/p.Kite < 10 {
			b.Fatalf("boot speedup %.1fx, want >= 10x (claim C1)", p.Linux/p.Kite)
		}
		b.ReportMetric(p.Linux, "linux_s")
		b.ReportMetric(p.Kite, "kite_s")
	}
}

// BenchmarkFig6Nuttcp regenerates Figure 6 (UDP throughput parity, low
// loss).
func BenchmarkFig6Nuttcp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6Nuttcp(quick())
		tp := res.Pair("throughput")
		if !tp.Parity(1.3) {
			b.Fatalf("throughput parity violated: %+v", tp)
		}
		reportPairs(b, res, "throughput", "loss")
	}
}

// BenchmarkFig7Latency regenerates Figure 7 (Kite at or below Linux on
// ping/netperf/memtier latency).
func BenchmarkFig7Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7Latency(quick())
		for _, p := range res.Pairs {
			if p.Kite > p.Linux*1.05 {
				b.Fatalf("%s: kite %.3f worse than linux %.3f", p.Metric, p.Kite, p.Linux)
			}
		}
		reportPairs(b, res, "ping RTT", "netperf RR", "memtier")
	}
}

// BenchmarkFig8Apache regenerates Figure 8 (throughput by file size; Kite
// marginally ahead at 512 KB).
func BenchmarkFig8Apache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8Apache(quick())
		big := res.Pair("tput@512KB")
		if big == nil || !big.Parity(1.3) {
			b.Fatalf("512KB throughput parity violated: %+v", big)
		}
		// Throughput must grow with file size (Fig 8a's shape).
		small := res.Pair("tput@512B")
		if small == nil || small.Kite >= big.Kite {
			b.Fatal("throughput does not grow with file size")
		}
		reportPairs(b, res, "tput@512KB")
	}
}

// BenchmarkFig9Redis regenerates Figure 9 (SET/GET parity across threads).
func BenchmarkFig9Redis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9Redis(quick())
		for _, p := range res.Pairs {
			if !p.Parity(1.35) {
				b.Fatalf("%s parity violated: %+v", p.Metric, p)
			}
		}
		reportPairs(b, res, "SET@20", "GET@20")
	}
}

// BenchmarkFig10MySQLNet regenerates Figure 10 (OLTP throughput and DomU
// CPU parity over the network path).
func BenchmarkFig10MySQLNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10MySQL(quick())
		low := res.Pair("qps@5")
		high := res.Pair("qps@60")
		if low == nil || high == nil || high.Kite <= low.Kite {
			b.Fatal("throughput does not rise with threads")
		}
		if !high.Parity(1.3) {
			b.Fatalf("qps parity violated at 60 threads: %+v", high)
		}
		cpuLow := res.Pair("cpu@5")
		cpuHigh := res.Pair("cpu@60")
		if cpuHigh.Kite <= cpuLow.Kite {
			b.Fatal("CPU utilization does not rise with threads (Fig 10b)")
		}
		reportPairs(b, res, "qps@60", "cpu@60")
	}
}

// BenchmarkFig11DD regenerates Figure 11 (dd parity).
func BenchmarkFig11DD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11DD(quick())
		for _, name := range []string{"read", "write"} {
			if p := res.Pair(name); !p.Parity(1.3) {
				b.Fatalf("dd %s parity violated: %+v", name, p)
			}
		}
		reportPairs(b, res, "read", "write")
	}
}

// BenchmarkFig12SysbenchFileIO regenerates Figure 12 (fileio sweeps; Kite
// at parity or slightly ahead).
func BenchmarkFig12SysbenchFileIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12FileIO(quick())
		one := res.Pair("thr@1")
		many := res.Pair("thr@100")
		if one == nil || many == nil || many.Kite <= one.Kite {
			b.Fatal("throughput does not rise with threads (Fig 12a)")
		}
		if !many.Parity(1.35) {
			b.Fatalf("fileio parity violated at 100 threads: %+v", many)
		}
		smallBS := res.Pair("bs@16KB")
		bigBS := res.Pair("bs@8MB")
		if smallBS == nil || bigBS == nil || bigBS.Kite <= smallBS.Kite {
			b.Fatal("throughput does not rise with block size (Fig 12b)")
		}
		reportPairs(b, res, "thr@100", "bs@8MB")
	}
}

// BenchmarkFig13MySQLStorage regenerates Figure 13 (disk-bound OLTP,
// identical curves).
func BenchmarkFig13MySQLStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig13MySQLStorage(quick())
		for _, p := range res.Pairs {
			if !p.Parity(1.35) {
				b.Fatalf("%s parity violated: %+v", p.Metric, p)
			}
		}
		reportPairs(b, res, "qps@100")
	}
}

// BenchmarkFig14Fileserver regenerates Figure 14 (throughput rises with
// I/O size; parity or Kite ahead).
func BenchmarkFig14Fileserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig14Fileserver(quick())
		small := res.Pair("io@16KB")
		big := res.Pair("io@8MB")
		if small == nil || big == nil || big.Kite <= small.Kite {
			b.Fatal("throughput does not rise with I/O size")
		}
		if !big.Parity(1.4) {
			b.Fatalf("fileserver parity violated: %+v", big)
		}
		reportPairs(b, res, "io@8MB")
	}
}

// BenchmarkFig15MongoDB regenerates Figure 15 (Kite at or ahead on the
// MongoDB pattern).
func BenchmarkFig15MongoDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig15Mongo(quick())
		tp := res.Pair("throughput")
		if tp == nil || tp.Kite < tp.Linux*0.9 {
			b.Fatalf("mongo throughput regressed on Kite: %+v", tp)
		}
		reportPairs(b, res, "throughput", "latency")
	}
}

// BenchmarkFig16Webserver regenerates Figure 16 (Kite slightly ahead).
func BenchmarkFig16Webserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig16Webserver(quick())
		tp := res.Pair("throughput")
		if tp == nil || tp.Kite < tp.Linux*0.9 {
			b.Fatalf("webserver throughput regressed on Kite: %+v", tp)
		}
		reportPairs(b, res, "throughput", "cpu")
	}
}

// BenchmarkSec55DHCP regenerates §5.5 (daemon VM DHCP latencies).
func BenchmarkSec55DHCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.DHCPLatency(quick())
		do := res.Pair("discover-offer")
		ra := res.Pair("request-ack")
		if do == nil || ra == nil || do.Kite <= 0 || ra.Kite <= 0 {
			b.Fatalf("dhcp latencies missing: %+v", res.Pairs)
		}
		if do.Kite > 5 || ra.Kite > 5 { // ms
			b.Fatalf("dhcp latencies implausible: %+v", res.Pairs)
		}
		reportPairs(b, res, "discover-offer", "request-ack")
	}
}

// BenchmarkSuiteParallel runs a representative slice of the suite through
// the parallel runner at several worker counts, reporting wall-clock per
// suite pass and the aggregate event rate. On a multi-core host higher
// worker counts shrink ns/op; results are byte-identical regardless
// (asserted by TestRunAllParallelMatchesSequential).
func BenchmarkSuiteParallel(b *testing.B) {
	specs, err := experiments.Lookup("FIG6,FIG7,FIG11,FIG14")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			before := experiments.EventsProcessed()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res := experiments.RunAll(specs, quick(), workers)
				if len(res) != len(specs) {
					b.Fatalf("got %d results, want %d", len(res), len(specs))
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				events := experiments.EventsProcessed() - before
				b.ReportMetric(float64(events)/elapsed/1e6, "Mevents/sec")
			}
		})
	}
}

// BenchmarkAblationPersistentGrants measures §3.3's persistent grants.
func BenchmarkAblationPersistentGrants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationPersistentGrants(quick())
		if a.AuxOn*4 > a.AuxOff {
			b.Fatalf("persistent grants saved too few maps: %d vs %d", a.AuxOn, a.AuxOff)
		}
		b.ReportMetric(float64(a.AuxOn), "maps_on")
		b.ReportMetric(float64(a.AuxOff), "maps_off")
	}
}

// BenchmarkAblationIndirectSegments measures §3.3's indirect segments.
func BenchmarkAblationIndirectSegments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationIndirectSegments(quick())
		if a.AuxOn >= a.AuxOff {
			b.Fatalf("indirect did not reduce ring requests: %d vs %d", a.AuxOn, a.AuxOff)
		}
		b.ReportMetric(a.On, "MBps_on")
		b.ReportMetric(a.Off, "MBps_off")
	}
}

// BenchmarkAblationBatching measures §3.3's consecutive-request batching.
func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationBatching(quick())
		if a.AuxOn >= a.AuxOff {
			b.Fatalf("batching did not reduce device ops: %d vs %d", a.AuxOn, a.AuxOff)
		}
		b.ReportMetric(float64(a.AuxOn), "devops_on")
		b.ReportMetric(float64(a.AuxOff), "devops_off")
	}
}

// BenchmarkAblationThreadedModel measures §3.2's pusher/soft_start design.
func BenchmarkAblationThreadedModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationThreadedModel(quick())
		b.ReportMetric(a.On, "ping_ms_threaded")
		b.ReportMetric(a.Off, "ping_ms_inhandler")
	}
}
