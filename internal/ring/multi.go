package ring

import "fmt"

// MultiRing is the multi-queue generalisation of Ring: N independent shared
// rings, one per queue, mirroring Xen's multi-queue xen-netback and blk-mq
// blkfront designs. Each queue is a full Ring with its own producer/consumer
// indices and its own notification-suppression state, so queues never
// contend; the negotiated queue count travels through xenstore
// ("multi-queue-num-queues", see package xenbus) exactly as in the real
// xenbus protocol. There is no cross-queue ordering: ordering guarantees
// hold per queue only, which is why frontends steer by flow hash (net) or
// by extent (blk).
type MultiRing[Req, Rsp any] struct {
	queues []*Ring[Req, Rsp]
}

// NewMulti creates a MultiRing with the given queue count; each queue is a
// Ring of the given slot count.
func NewMulti[Req, Rsp any](queues, size int) *MultiRing[Req, Rsp] {
	if queues <= 0 {
		panic(fmt.Sprintf("ring: queue count %d not positive", queues))
	}
	m := &MultiRing[Req, Rsp]{queues: make([]*Ring[Req, Rsp], queues)}
	for i := range m.queues {
		m.queues[i] = New[Req, Rsp](size)
	}
	return m
}

// NumQueues returns the queue count.
func (m *MultiRing[Req, Rsp]) NumQueues() int { return len(m.queues) }

// Queue returns queue i's ring.
func (m *MultiRing[Req, Rsp]) Queue(i int) *Ring[Req, Rsp] { return m.queues[i] }

// Stats sums the per-queue lifetime counters in queue order, so aggregated
// figures are identical however the per-queue work was interleaved.
func (m *MultiRing[Req, Rsp]) Stats() (reqs, rsps, reqNotifySaved, rspNotifySaved uint64) {
	for _, q := range m.queues {
		qr, qs, qns, qrs := q.Stats()
		reqs += qr
		rsps += qs
		reqNotifySaved += qns
		rspNotifySaved += qrs
	}
	return reqs, rsps, reqNotifySaved, rspNotifySaved
}

// Inflight sums requests consumed but unanswered across all queues.
func (m *MultiRing[Req, Rsp]) Inflight() int {
	n := 0
	for _, q := range m.queues {
		n += q.Inflight()
	}
	return n
}
