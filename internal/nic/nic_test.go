package nic

import (
	"bytes"
	"testing"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

func pair(eng *sim.Engine, cfg LinkConfig) (*NIC, *NIC) {
	a := New(eng, "eth-a", netpkt.MAC{0, 0, 0, 0, 0, 1}, "03:00.0")
	b := New(eng, "eth-b", netpkt.MAC{0, 0, 0, 0, 0, 2}, "04:00.0")
	Connect(a, b, cfg)
	return a, b
}

func TestFrameDelivery(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var got []byte
	b.SetRecv(func(f []byte) { got = f })
	payload := []byte("hello wire")
	if !a.Send(payload) {
		t.Fatal("send failed")
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q", got)
	}
	if a.Stats().TxFrames != 1 || b.Stats().RxFrames != 1 {
		t.Fatal("stats not updated")
	}
}

func TestWireTimeMatchesLineRate(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLink()
	a, b := pair(eng, cfg)
	var at sim.Time = -1
	b.SetRecv(func([]byte) { at = eng.Now() })
	frame := make([]byte, 1500)
	a.Send(frame)
	eng.Run()
	// (1500+24)*8 bits at 10 Gb/s = 1219.2ns, plus 600ns propagation.
	want := sim.Time((1500+24)*8*100/1000) + cfg.PropDelay
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSerializationBackToBack(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var times []sim.Time
	b.SetRecv(func([]byte) { times = append(times, eng.Now()) })
	for i := 0; i < 3; i++ {
		a.Send(make([]byte, 1500))
	}
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d frames", len(times))
	}
	gap1 := times[1] - times[0]
	gap2 := times[2] - times[1]
	if gap1 != gap2 || gap1 <= 0 {
		t.Fatalf("frames not serialized at line rate: gaps %v %v", gap1, gap2)
	}
}

func TestTailDropWhenQueueFull(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLink()
	cfg.TxQueueBytes = 16 << 10 // tiny queue
	a, _ := pair(eng, cfg)
	dropped := 0
	for i := 0; i < 100; i++ {
		if !a.Send(make([]byte, 1500)) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops despite overrun")
	}
	if a.Stats().TxDrops != uint64(dropped) {
		t.Fatal("drop stats mismatch")
	}
	// After draining, sends succeed again.
	eng.Run()
	if !a.Send(make([]byte, 1500)) {
		t.Fatal("send failed after drain")
	}
}

func TestBidirectional(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var fromA, fromB []byte
	a.SetRecv(func(f []byte) { fromB = f })
	b.SetRecv(func(f []byte) { fromA = f })
	a.Send([]byte("a->b"))
	b.Send([]byte("b->a"))
	eng.Run()
	if string(fromA) != "a->b" || string(fromB) != "b->a" {
		t.Fatalf("duplex exchange failed: %q %q", fromA, fromB)
	}
}

func TestSendUnconnectedPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, "lonely", netpkt.MAC{}, "00:00.0")
	defer func() {
		if recover() == nil {
			t.Fatal("send on unconnected NIC did not panic")
		}
	}()
	n.Send([]byte("x"))
}

func TestFrameCopyIsolation(t *testing.T) {
	// The receiver must not observe sender-side mutation after Send.
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var got []byte
	b.SetRecv(func(f []byte) { got = f })
	frame := []byte("immutable")
	a.Send(frame)
	frame[0] = 'X'
	eng.Run()
	if string(got) != "immutable" {
		t.Fatalf("receiver saw mutated frame: %q", got)
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng, DefaultLink())
	var rxBytes int64
	b.SetRecv(func(f []byte) { rxBytes += int64(len(f)) })
	// Offer 2000 MTU frames as fast as the queue allows.
	sent := 0
	var offer func()
	offer = func() {
		for sent < 2000 && a.Send(make([]byte, 1500)) {
			sent++
		}
		if sent < 2000 {
			eng.After(100*sim.Microsecond, offer)
		}
	}
	offer()
	eng.Run()
	elapsed := eng.Now()
	gbps := float64(rxBytes*8) / elapsed.Seconds() / 1e9
	if gbps < 9.0 || gbps > 10.0 {
		t.Fatalf("bulk throughput = %.2f Gbps, want ~9.8", gbps)
	}
}
