package xenbus

import (
	"fmt"

	"kite/internal/xenstore"
)

// TenantPath returns the xenstore subtree a driver domain publishes for
// one tenant guest it serves.
func TenantPath(backDom, frontDom DomID) string {
	return fmt.Sprintf("/local/domain/%d/%s/%d", backDom, xenstore.KeyTenantRoot, frontDom)
}

// TenantRoot returns the directory holding every tenant subtree of a
// driver domain.
func TenantRoot(backDom DomID) string {
	return fmt.Sprintf("/local/domain/%d/%s", backDom, xenstore.KeyTenantRoot)
}

// Tenant is the control-plane view of one guest a driver domain serves:
// how many VIF and VBD instances are live, and which fleet service lane
// carries its traffic (-1 when unassigned — dedicated-worker mode).
type Tenant struct {
	Dom  DomID
	Vifs int
	Vbds int
	Lane int
}

// TenantRegistry is a driver domain's dynamic attach/detach ledger — the
// piece of toolstack state that turns "a backend device" into "a
// multi-tenant service". Drivers report every VIF/VBD pairing and
// teardown; the registry maintains per-tenant counts in attach order (so
// walks are deterministic) and mirrors each tenant into its xenstore
// subtree (TenantPath) for external observers. A tenant whose last device
// detaches is removed from both the ledger and the store, so the registry
// always reflects exactly the live fleet.
//
//kite:deterministic
type TenantRegistry struct {
	bus  *Bus
	self DomID

	order []DomID // attach order of live tenants
	byDom map[DomID]*Tenant

	attaches uint64
	detaches uint64
}

// NewTenantRegistry creates the ledger for driver domain self.
func NewTenantRegistry(bus *Bus, self DomID) *TenantRegistry {
	return &TenantRegistry{bus: bus, self: self, byDom: make(map[DomID]*Tenant)}
}

// tenant returns the live record for dom, creating (and publishing) it on
// first attach.
func (r *TenantRegistry) tenant(dom DomID) *Tenant {
	if t := r.byDom[dom]; t != nil {
		return t
	}
	t := &Tenant{Dom: dom, Lane: -1}
	r.byDom[dom] = t
	r.order = append(r.order, dom)
	return t
}

// publish mirrors t into its xenstore subtree.
func (r *TenantRegistry) publish(t *Tenant) {
	st := r.bus.Store()
	p := TenantPath(r.self, t.Dom)
	st.Writef(p+"/"+xenstore.KeyTenantVifs, "%d", t.Vifs)
	st.Writef(p+"/"+xenstore.KeyTenantVbds, "%d", t.Vbds)
	st.Writef(p+"/"+xenstore.KeyTenantLane, "%d", t.Lane)
	st.Write(p+"/"+xenstore.KeyTenantState, xenstore.TenantStateAttached)
}

// drop removes a tenant whose last device detached: ledger slot and
// xenstore subtree both go away.
func (r *TenantRegistry) drop(dom DomID) {
	delete(r.byDom, dom)
	for i, d := range r.order {
		if d == dom {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	_ = r.bus.Store().Remove(TenantPath(r.self, dom))
}

// AttachVIF records one VIF pairing for dom on fleet lane lane (-1 for a
// dedicated-worker VIF).
func (r *TenantRegistry) AttachVIF(dom DomID, lane int) {
	t := r.tenant(dom)
	t.Vifs++
	if lane >= 0 {
		t.Lane = lane
	}
	r.attaches++
	r.publish(t)
}

// DetachVIF records one VIF teardown for dom.
func (r *TenantRegistry) DetachVIF(dom DomID) {
	t := r.byDom[dom]
	if t == nil {
		return
	}
	t.Vifs--
	r.detaches++
	if t.Vifs <= 0 && t.Vbds <= 0 {
		r.drop(dom)
		return
	}
	r.publish(t)
}

// AttachVBD records one VBD pairing for dom.
func (r *TenantRegistry) AttachVBD(dom DomID) {
	t := r.tenant(dom)
	t.Vbds++
	r.attaches++
	r.publish(t)
}

// DetachVBD records one VBD teardown for dom.
func (r *TenantRegistry) DetachVBD(dom DomID) {
	t := r.byDom[dom]
	if t == nil {
		return
	}
	t.Vbds--
	r.detaches++
	if t.Vifs <= 0 && t.Vbds <= 0 {
		r.drop(dom)
		return
	}
	r.publish(t)
}

// Tenants returns the live tenants in attach order (copies — callers
// cannot corrupt the ledger).
func (r *TenantRegistry) Tenants() []Tenant {
	out := make([]Tenant, len(r.order))
	for i, dom := range r.order {
		out[i] = *r.byDom[dom]
	}
	return out
}

// Len returns the number of live tenants.
func (r *TenantRegistry) Len() int { return len(r.order) }

// Churn reports lifetime (attaches, detaches) across all device types.
func (r *TenantRegistry) Churn() (attaches, detaches uint64) {
	return r.attaches, r.detaches
}
