// Package blkpool provides a deterministic free-list pool of refcounted,
// sector-aligned I/O buffers — the storage-path sibling of
// internal/framepool. Network frames have one natural size (a page), but
// block I/O ranges from a single 512-byte sector to megabyte sequential
// runs, so the pool keeps one LIFO free list per power-of-two size class
// instead of a single list.
//
// A Buf is obtained with Get, handed between pipeline stages under the
// ownership rules documented in DESIGN.md §8 (one reference transfers at
// every hand-off, including failure paths), and returned with Release. The
// pool keeps strict leak accounting: Outstanding() must be zero at rig
// teardown, and the storage e2e tests assert exactly that.
//
// sync.Pool was deliberately rejected for the same reason as in framepool:
// it is per-P, drains on GC, and hands buffers back in a
// scheduler-dependent order, so two runs of the same experiment could
// observe different buffer identities. Plain LIFO slices owned by a single
// simulation goroutine keep kitebench output byte-identical for any
// -parallel worker count.
package blkpool

import (
	"fmt"
	"math/bits"

	"kite/internal/metrics"
)

// SectorSize is the alignment quantum: every class capacity is a multiple
// of it, matching the 512-byte logical block the whole storage stack uses.
const SectorSize = 512

// minClassShift is the smallest class: 4 KiB, one page — smaller I/O still
// gets a page-sized buffer, which keeps the class count tiny.
const minClassShift = 12

// maxClassShift is the largest class: 4 MiB, comfortably above the largest
// merged device op the experiments produce. Larger requests fall back to a
// plain allocation (counted, never pooled).
const maxClassShift = 22

const numClasses = maxClassShift - minClassShift + 1

// Buf is a pooled sector-aligned buffer. The live payload is data[:n]. Like
// everything else in a simulation it is owned by the simulation's single
// goroutine and is not safe for concurrent use.
type Buf struct {
	pool  *Pool
	arena *Arena // nil for buffers owned by the pool's shared free lists
	data  []byte
	n     int
	class int // -1: oversized one-off, returned to the GC on release
	refs  int
}

// Bytes returns the live payload window.
func (b *Buf) Bytes() []byte { return b.data[:b.n] }

// Len returns the payload length.
func (b *Buf) Len() int { return b.n }

// Cap returns the buffer's class capacity.
func (b *Buf) Cap() int { return len(b.data) }

// Refs returns the current reference count.
func (b *Buf) Refs() int { return b.refs }

// Retain adds a reference and returns b for chaining. Each extra reference
// requires its own Release.
//
//kite:hotpath
func (b *Buf) Retain() *Buf {
	b.refs++
	return b
}

// Release drops one reference; at zero the buffer returns to its pool's
// free list (or to the GC for oversized one-offs). Releasing below zero
// panics — it means an ownership rule was violated.
//
//kite:hotpath
func (b *Buf) Release() {
	b.refs--
	if b.refs > 0 {
		return
	}
	if b.refs < 0 {
		panic("blkpool: double release")
	}
	p := b.pool
	p.outstanding--
	p.recycled++
	metrics.BlkPoolRecycles.Add(1)
	if b.class < 0 {
		return
	}
	if b.arena != nil {
		b.arena.free[b.class] = append(b.arena.free[b.class], b)
	} else {
		p.free[b.class] = append(p.free[b.class], b)
	}
}

// Pool is a per-simulation set of size-class free lists.
type Pool struct {
	free        [numClasses][]*Buf
	outstanding int
	gets        uint64
	fresh       uint64
	recycled    uint64
}

// New returns an empty pool; buffers are allocated lazily on first Get and
// recycled forever after.
func New() *Pool {
	return &Pool{}
}

// classFor returns the smallest class index whose capacity holds n bytes,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassShift
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a Buf with an n-byte payload window (n must be a positive
// multiple of SectorSize) holding one reference owned by the caller. The
// payload is NOT zeroed — recycled buffers carry stale bytes, exactly like
// a recycled kernel bio; callers must fully overwrite the window.
//
//kite:hotpath
func (p *Pool) Get(n int) *Buf {
	if n <= 0 || n%SectorSize != 0 {
		panic(fmt.Sprintf("blkpool: bad buffer size %d", n))
	}
	p.gets++
	p.outstanding++
	metrics.BlkPoolGets.Add(1)
	class := classFor(n)
	if class >= 0 {
		if l := p.free[class]; len(l) > 0 {
			b := l[len(l)-1]
			p.free[class] = l[:len(l)-1]
			b.n = n
			b.refs = 1
			return b
		}
	}
	p.fresh++
	b := &Buf{pool: p, n: n, class: class, refs: 1} //kite:alloc-ok pool growth on free-list miss; steady state recycles
	if class >= 0 {
		b.data = make([]byte, 1<<(minClassShift+class)) //kite:alloc-ok pool growth on free-list miss
	} else {
		b.data = make([]byte, n) //kite:alloc-ok pool growth on free-list miss
	}
	return b
}

// Outstanding returns the number of buffers currently held by callers. It
// must be zero at simulation teardown.
func (p *Pool) Outstanding() int { return p.outstanding }

// Gets returns the total number of buffers handed out.
func (p *Pool) Gets() uint64 { return p.gets }

// Recycled returns the total number of buffers returned to a free list.
func (p *Pool) Recycled() uint64 { return p.recycled }

// Fresh returns how many Gets had to allocate instead of reusing a pooled
// buffer; Gets-Fresh over Gets is the pool hit rate.
func (p *Pool) Fresh() uint64 { return p.fresh }

// Arena is a partition of a Pool with its own per-class free lists — the
// storage sibling of framepool.Arena. Frontends (and, under multi-queue,
// per-queue workers) draw staging buffers from their own arena so working
// sets stay disjoint and recycling order per partition is deterministic,
// while gets/fresh/recycled/outstanding accounting still lands on the
// parent pool. A buffer obtained from an arena returns to that arena when
// its last reference drops, wherever that happens.
type Arena struct {
	parent *Pool
	free   [numClasses][]*Buf
}

// NewArena returns an empty partition of p. Arenas allocate fresh buffers
// rather than stealing from the parent's shared lists, so creating one
// never perturbs buffer identities elsewhere in the simulation.
func (p *Pool) NewArena() *Arena { return &Arena{parent: p} }

// Get returns a Buf with an n-byte payload window drawn from (and destined
// to return to) this arena. Size rules match Pool.Get; oversized one-offs
// are allocated directly and handed to the GC on release.
//
//kite:hotpath
func (a *Arena) Get(n int) *Buf {
	if n <= 0 || n%SectorSize != 0 {
		panic(fmt.Sprintf("blkpool: bad buffer size %d", n))
	}
	p := a.parent
	p.gets++
	p.outstanding++
	metrics.BlkPoolGets.Add(1)
	class := classFor(n)
	if class >= 0 {
		if l := a.free[class]; len(l) > 0 {
			b := l[len(l)-1]
			a.free[class] = l[:len(l)-1]
			b.n = n
			b.refs = 1
			return b
		}
	}
	p.fresh++
	b := &Buf{pool: p, arena: a, n: n, class: class, refs: 1} //kite:alloc-ok pool growth on free-list miss; steady state recycles
	if class >= 0 {
		b.data = make([]byte, 1<<(minClassShift+class)) //kite:alloc-ok pool growth on free-list miss
	} else {
		b.data = make([]byte, n) //kite:alloc-ok pool growth on free-list miss
	}
	return b
}
