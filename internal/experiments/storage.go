package experiments

import (
	"fmt"

	"kite/internal/apps"
	"kite/internal/core"
	"kite/internal/metrics"
	"kite/internal/workload"
)

// BlkStats summarizes the deterministic block-path workload behind
// kitebench's -blk flag. Every figure derives from a single simulation's
// own state (simulated time, per-system pool counters), so the printed
// line is byte-identical for any -parallel worker count.
type BlkStats struct {
	Ops         uint64
	Bytes       uint64
	OpsPerSec   float64 // per simulated second
	BytesPerSec float64 // per simulated second
	PoolHitRate float64 // recycled fraction of sector-buffer gets
}

// BlkSummary drives a sequential write pass, a sequential read-back pass,
// and a strided read pass of Scale.DDBytes through the raw vbd on a Kite
// rig, measuring throughput in simulated time and the blkpool hit rate.
func BlkSummary(s Scale) BlkStats {
	rig := mustStorRig(core.StorageRigConfig{Kind: core.KindKite, Seed: 0xB1C, DiskBytes: 4 << 30})
	eng := rig.Testbed.System.Eng
	const ioBytes = 128 << 10
	payload := make([]byte, ioBytes)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	rounds := int(s.DDBytes / ioBytes)
	var st BlkStats
	start := eng.Now()
	oneOp := func(issue func(done *bool)) {
		done := false
		issue(&done)
		drive(rig.Testbed.System, func() bool { return done }, 10_000_000)
		st.Ops++
		st.Bytes += ioBytes
	}
	secPerOp := int64(ioBytes / 512)
	for i := 0; i < rounds; i++ {
		sector := int64(i) * secPerOp
		oneOp(func(done *bool) {
			rig.Guest.Disk.WriteSectors(sector, payload, func(err error) { *done = err == nil })
		})
	}
	for i := 0; i < rounds; i++ {
		sector := int64(i) * secPerOp
		oneOp(func(done *bool) {
			rig.Guest.Disk.ReadSectors(sector, ioBytes, func(_ []byte, err error) { *done = err == nil })
		})
	}
	for i := 0; i < rounds; i++ { // strided: defeat device sequentiality
		sector := int64((i*7)%rounds) * secPerOp
		oneOp(func(done *bool) {
			rig.Guest.Disk.ReadSectors(sector, ioBytes, func(_ []byte, err error) { *done = err == nil })
		})
	}
	elapsed := (eng.Now() - start).Seconds()
	if elapsed > 0 {
		st.OpsPerSec = float64(st.Ops) / elapsed
		st.BytesPerSec = float64(st.Bytes) / elapsed
	}
	pool := rig.Testbed.System.BlkPool
	if pool.Gets() > 0 {
		st.PoolHitRate = float64(pool.Gets()-pool.Fresh()) / float64(pool.Gets())
	}
	return st
}

// Fig11DD reproduces Figure 11: dd sequential read and write through the
// raw vbd. The paper shows ~1 GB/s-class parity between the domains.
func Fig11DD(s Scale) *Result {
	res := newResult("FIG11", "dd sequential throughput")
	run := func(kind core.DriverKind) (w, r workload.DDResult) {
		rig := mustStorRig(core.StorageRigConfig{Kind: kind, Seed: 0xF1B, DiskBytes: 4 << 30})
		done := 0
		workload.DDWrite(rig.Guest.Disk, s.DDBytes, 128<<10, func(res workload.DDResult) {
			w = res
			done++
			workload.DDRead(rig.Guest.Disk, s.DDBytes, 128<<10, func(res workload.DDResult) {
				r = res
				done++
			})
		})
		drive(rig.Testbed.System, func() bool { return done == 2 }, 60_000_000)
		return w, r
	}
	type wr struct{ w, r workload.DDResult }
	l, k := bothKinds(s, func(kind core.DriverKind) wr {
		w, r := run(kind)
		return wr{w, r}
	})
	res.AddPair("write", l.w.MBps, k.w.MBps, "MB/s")
	res.AddPair("read", l.r.MBps, k.r.MBps, "MB/s")
	res.Notes = append(res.Notes, "paper: ~1000-1200 MB/s, parity between domains")
	return res
}

// Fig12FileIO reproduces Figure 12: sysbench fileio random rw (3:2).
// 12a sweeps thread counts at 256 KB blocks; 12b sweeps block sizes at 20
// threads. The paper shows parity, with Kite edging ahead at high thread
// counts and block sizes.
func Fig12FileIO(s Scale) *Result {
	res := &Result{ID: "FIG12", Title: "sysbench fileio random rw 3:2",
		Table: metrics.NewTable("FIG12: sysbench fileio",
			"sweep", "linux MB/s", "kite MB/s", "kite/linux")}
	run := func(kind core.DriverKind, threads, bs int) workload.FileIOResult {
		rig := mustStorRig(core.StorageRigConfig{
			Kind: kind, Seed: 0xF1C, DiskBytes: 8 << 30, CacheBytes: 24 << 20,
		})
		var out workload.FileIOResult
		got := false
		workload.SysbenchFileIO(rig.Testbed.System.Eng, rig.Guest.FS, workload.FileIOConfig{
			Files: 16, TotalBytes: s.FileIOBytes, BlockSize: bs,
			Threads: threads, Duration: s.FileIODur, Seed: uint64(threads*7 + bs),
		}, func(r workload.FileIOResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 120_000_000)
		return out
	}
	// 12a: thread sweep at 256 KB.
	for _, th := range []int{1, 5, 20, 60, 100} {
		th := th
		l, k := bothKinds(s, func(kind core.DriverKind) workload.FileIOResult { return run(kind, th, 256<<10) })
		res.Pairs = append(res.Pairs, Pair{Metric: fmt.Sprintf("thr@%d", th),
			Linux: l.MBps, Kite: k.MBps, Unit: "MB/s"})
		res.Table.AddRow(fmt.Sprintf("threads=%d bs=256K", th),
			metrics.FormatFloat(l.MBps), metrics.FormatFloat(k.MBps),
			metrics.FormatFloat(metrics.Ratio(k.MBps, l.MBps)))
	}
	// 12b: block-size sweep at 20 threads.
	for _, bs := range []int{16 << 10, 128 << 10, 1 << 20, 8 << 20} {
		bs := bs
		l, k := bothKinds(s, func(kind core.DriverKind) workload.FileIOResult { return run(kind, 20, bs) })
		res.Pairs = append(res.Pairs, Pair{Metric: fmt.Sprintf("bs@%s", sizeName(bs)),
			Linux: l.MBps, Kite: k.MBps, Unit: "MB/s"})
		res.Table.AddRow(fmt.Sprintf("threads=20 bs=%s", sizeName(bs)),
			metrics.FormatFloat(l.MBps), metrics.FormatFloat(k.MBps),
			metrics.FormatFloat(metrics.Ratio(k.MBps, l.MBps)))
	}
	res.Notes = append(res.Notes,
		"paper: throughput rises with threads and block size, then plateaus; Kite slightly ahead at the high end")
	return res
}

// Fig13MySQLStorage reproduces Figure 13: sysbench OLTP against MySQL
// whose dataset exceeds the page cache, so queries miss to the storage
// domain. The paper's curves are identical for both domains.
func Fig13MySQLStorage(s Scale) *Result {
	res := &Result{ID: "FIG13", Title: "MySQL OLTP through the storage domain",
		Table: metrics.NewTable("FIG13: sysbench oltp vs disk-backed MySQL",
			"threads", "linux qps", "kite qps", "kite/linux")}
	run := func(kind core.DriverKind, th int) workload.OLTPResult {
		rig := mustStorRig(core.StorageRigConfig{
			Kind: kind, Seed: 0xF1D, DiskBytes: 16 << 30, CacheBytes: 8 << 20,
		})
		db, err := apps.NewSQLDB(rig.Testbed.System.Eng, rig.Guest.Dom.CPUs,
			apps.SQLConfig{Tables: 10, Rows: 1_000_000, Pool: rig.Guest.Pool})
		if err != nil {
			panic(err)
		}
		var out workload.OLTPResult
		got := false
		workload.OLTPLocal(db, rig.Guest.Dom.CPUs, rig.Testbed.System.Eng,
			10, 1_000_000, th, s.OLTPDur, func(r workload.OLTPResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 120_000_000)
		return out
	}
	for _, th := range []int{1, 5, 20, 60, 100} {
		th := th
		l, k := bothKinds(s, func(kind core.DriverKind) workload.OLTPResult { return run(kind, th) })
		res.Pairs = append(res.Pairs, Pair{Metric: fmt.Sprintf("qps@%d", th),
			Linux: l.QPS, Kite: k.QPS, Unit: "q/s"})
		res.Table.AddRow(fmt.Sprintf("%d", th),
			metrics.FormatFloat(l.QPS), metrics.FormatFloat(k.QPS),
			metrics.FormatFloat(metrics.Ratio(k.QPS, l.QPS)))
	}
	res.Notes = append(res.Notes, "paper: identical curves for both domains")
	return res
}

// Fig14Fileserver reproduces Figure 14: filebench's fileserver personality
// swept over I/O sizes. Paper: Kite often slightly better.
func Fig14Fileserver(s Scale) *Result {
	res := &Result{ID: "FIG14", Title: "filebench fileserver",
		Table: metrics.NewTable("FIG14: fileserver throughput by I/O size",
			"io size", "linux MB/s", "kite MB/s", "kite/linux")}
	run := func(kind core.DriverKind, ioSize int) workload.FilebenchResult {
		rig := mustStorRig(core.StorageRigConfig{
			Kind: kind, Seed: 0xF1E, DiskBytes: 8 << 30, CacheBytes: 8 << 20,
		})
		var out workload.FilebenchResult
		got := false
		workload.Fileserver(rig.Testbed.System.Eng, rig.Guest.FS, workload.FileserverConfig{
			Files: 120, MeanFile: 128 << 10, AppendSz: 1 << 10, IOSize: ioSize,
			Threads: 10, Duration: s.FilebenchDur, Seed: uint64(ioSize),
			CPUs: rig.Guest.Dom.CPUs,
		}, func(r workload.FilebenchResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 120_000_000)
		return out
	}
	for _, io := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 8 << 20} {
		io := io
		l, k := bothKinds(s, func(kind core.DriverKind) workload.FilebenchResult { return run(kind, io) })
		res.Pairs = append(res.Pairs, Pair{Metric: fmt.Sprintf("io@%s", sizeName(io)),
			Linux: l.MBps, Kite: k.MBps, Unit: "MB/s"})
		res.Table.AddRow(sizeName(io),
			metrics.FormatFloat(l.MBps), metrics.FormatFloat(k.MBps),
			metrics.FormatFloat(metrics.Ratio(k.MBps, l.MBps)))
	}
	res.Notes = append(res.Notes, "paper: 200-700 MB/s rising with I/O size; Kite slightly better")
	return res
}

// Fig15Mongo reproduces Figure 15: the MongoDB access pattern, one user,
// 4 MB mean I/O. Paper: Kite outperforms Linux even at low concurrency.
func Fig15Mongo(s Scale) *Result {
	res := newResult("FIG15", "filebench MongoDB personality")
	run := func(kind core.DriverKind) workload.FilebenchResult {
		rig := mustStorRig(core.StorageRigConfig{
			Kind: kind, Seed: 0xF1F, DiskBytes: 8 << 30, CacheBytes: 32 << 20,
		})
		var out workload.FilebenchResult
		got := false
		workload.Mongo(rig.Testbed.System.Eng, rig.Guest.FS, rig.Guest.Dom.CPUs,
			workload.MongoConfig{Docs: 12, DocSize: 4 << 20, Users: 1,
				Duration: s.FilebenchDur, Seed: 0x30},
			func(r workload.FilebenchResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 120_000_000)
		return out
	}
	l, k := bothKinds(s, run)
	res.AddPair("throughput", l.MBps*8, k.MBps*8, "Mbps")
	res.AddPair("cpu", l.CPUPerOp.Micros(), k.CPUPerOp.Micros(), "us/op")
	res.AddPair("latency", l.AvgLatency.Millis(), k.AvgLatency.Millis(), "ms")
	res.Notes = append(res.Notes, "paper: Kite higher throughput, lower us/op and latency")
	return res
}

// Fig16Webserver reproduces Figure 16: the webserver personality. Paper:
// Kite takes slightly less time per op, so slightly higher throughput and
// lower latency.
func Fig16Webserver(s Scale) *Result {
	res := newResult("FIG16", "filebench webserver personality")
	run := func(kind core.DriverKind) workload.FilebenchResult {
		rig := mustStorRig(core.StorageRigConfig{
			Kind: kind, Seed: 0xF20, DiskBytes: 8 << 30, CacheBytes: 6 << 20,
		})
		var out workload.FilebenchResult
		got := false
		workload.Webserver(rig.Testbed.System.Eng, rig.Guest.FS, workload.WebserverConfig{
			Files: 200, MeanFile: 64 << 10, AppendSz: 16 << 10, IOSize: 64 << 10,
			Threads: 10, Duration: s.FilebenchDur, Seed: 0x3b,
			CPUs: rig.Guest.Dom.CPUs,
		}, func(r workload.FilebenchResult) { out = r; got = true })
		drive(rig.Testbed.System, func() bool { return got }, 120_000_000)
		return out
	}
	l, k := bothKinds(s, run)
	res.AddPair("throughput", l.MBps*8, k.MBps*8, "Mbps")
	res.AddPair("cpu", l.CPUPerOp.Micros(), k.CPUPerOp.Micros(), "us/op")
	res.AddPair("latency", l.AvgLatency.Millis(), k.AvgLatency.Millis(), "ms")
	res.Notes = append(res.Notes, "paper: Kite slightly higher throughput, lower per-op time")
	return res
}
