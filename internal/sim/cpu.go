package sim

import "fmt"

// CPU models one virtual CPU of a simulated machine or Xen domain. Work is
// charged to a CPU with Charge; concurrent charges serialize behind each
// other exactly like runnable work on a single core. The CPU keeps lifetime
// busy-time totals plus a resettable window so experiments can report
// utilization over a measurement interval (Figure 10b).
type CPU struct {
	eng  *Engine
	name string

	busyUntil Time // when currently queued work finishes
	busyTotal Time // lifetime busy nanoseconds

	windowStart Time
	windowBusy  Time
}

// NewCPU returns a CPU attached to eng. The name appears in diagnostics.
func NewCPU(eng *Engine, name string) *CPU {
	return &CPU{eng: eng, name: name, windowStart: eng.Now()}
}

// Name returns the identifier given at construction.
func (c *CPU) Name() string { return c.name }

// Engine returns the engine this CPU is attached to.
func (c *CPU) Engine() *Engine { return c.eng }

// SetEngine rebinds the CPU to another engine — used to pin a per-queue
// vCPU to its cluster shard so charges read the shard-local clock and Exec
// schedules on the shard-local heap. A pinned CPU must only be charged from
// its shard.
func (c *CPU) SetEngine(eng *Engine) { c.eng = eng }

// RecentlyActive reports whether this CPU ran work within the past window
// (or is running now) — the per-CPU form of the pool-level warm check, for
// interrupt delivery pinned to one vCPU. busyUntil is the time the last
// charged work completes and never decreases, so it doubles as the
// last-charge watermark.
func (c *CPU) RecentlyActive(now, window Time) bool {
	return c.busyUntil+window >= now && c.busyUntil > 0
}

// Charge queues cost nanoseconds of work on the CPU and returns the virtual
// time at which that work completes. The work begins when all previously
// charged work has drained (or now, if the CPU is idle). Zero cost returns
// the current completion horizon without consuming time.
func (c *CPU) Charge(cost Time) Time {
	return c.ChargeAt(c.eng.Now(), cost)
}

// ChargeAt queues cost nanoseconds of work that cannot begin before the
// virtual time at: the work starts at max(now, at, busyUntil). It exists so
// a batched event can charge for several arrivals in one execution while
// reproducing exactly the busy-time trace the per-arrival events would have
// produced — at is each item's true arrival time, which may lie beyond the
// executing event's timestamp.
func (c *CPU) ChargeAt(at, cost Time) Time {
	if cost < 0 {
		panic(fmt.Sprintf("sim: negative cpu cost %v on %s", cost, c.name))
	}
	start := c.eng.Now()
	if at > start {
		start = at
	}
	if c.busyUntil > start {
		start = c.busyUntil
	}
	end := start + cost
	c.busyUntil = end
	c.busyTotal += cost
	c.windowBusy += cost
	return end
}

// Exec charges cost and schedules fn at the completion time. It is the
// common "do work, then produce the effect" idiom.
func (c *CPU) Exec(cost Time, fn func()) {
	done := c.Charge(cost)
	c.eng.Schedule(done, fn)
}

// FreeAt returns the time at which the CPU becomes idle given already
// queued work.
func (c *CPU) FreeAt() Time {
	if c.busyUntil > c.eng.Now() {
		return c.busyUntil
	}
	return c.eng.Now()
}

// BusyTotal returns lifetime busy nanoseconds.
func (c *CPU) BusyTotal() Time { return c.busyTotal }

// ResetWindow starts a new utilization measurement window at the current
// virtual time.
func (c *CPU) ResetWindow() {
	c.windowStart = c.eng.Now()
	c.windowBusy = 0
}

// WindowUtilization returns busy/elapsed for the current window in [0,1].
// If no time has elapsed it returns 0.
func (c *CPU) WindowUtilization() float64 {
	elapsed := c.eng.Now() - c.windowStart
	if elapsed <= 0 {
		return 0
	}
	u := float64(c.windowBusy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// CPUPool is a set of identical CPUs (an SMP domain). Charges are placed on
// the CPU that frees up earliest, which approximates a work-conserving
// scheduler.
type CPUPool struct {
	cpus       []*CPU
	lastCharge Time
}

// NewCPUPool creates n CPUs named prefix/0..n-1.
func NewCPUPool(eng *Engine, prefix string, n int) *CPUPool {
	if n <= 0 {
		panic("sim: CPU pool needs at least one CPU")
	}
	p := &CPUPool{lastCharge: -1 << 60} // sentinel: never charged
	for i := 0; i < n; i++ {
		p.cpus = append(p.cpus, NewCPU(eng, fmt.Sprintf("%s/%d", prefix, i)))
	}
	return p
}

// Len returns the number of CPUs in the pool.
func (p *CPUPool) Len() int { return len(p.cpus) }

// CPU returns the i-th CPU.
func (p *CPUPool) CPU(i int) *CPU { return p.cpus[i] }

// Slice returns a sub-pool sharing CPUs [lo,hi) with the parent. The CPUs
// themselves are shared (busy time charged through either view lands on the
// same vCPU); only the pool-level last-charge watermark is separate. This
// is how a component is restricted to the vCPUs left over after per-queue
// workers were pinned to cluster shards.
func (p *CPUPool) Slice(lo, hi int) *CPUPool {
	if lo < 0 || hi > len(p.cpus) || lo >= hi {
		panic(fmt.Sprintf("sim: bad CPU pool slice [%d,%d) of %d", lo, hi, len(p.cpus)))
	}
	return &CPUPool{cpus: p.cpus[lo:hi:hi], lastCharge: p.lastCharge}
}

// Pick returns the CPU that will become free earliest. An already-idle CPU
// is taken immediately — scanning on is pointless since no CPU can be freer
// than idle — which keeps the common underloaded case O(1).
func (p *CPUPool) Pick() *CPU {
	return p.pickAt(p.cpus[0].eng.Now())
}

// pickAt is Pick with an explicit "idle" threshold: a CPU free by at counts
// as idle. ChargeAt uses it so batched arrivals select the same CPU their
// individual arrival events would have.
func (p *CPUPool) pickAt(at Time) *CPU {
	best := p.cpus[0]
	if best.busyUntil <= at {
		return best
	}
	for _, c := range p.cpus[1:] {
		if c.busyUntil <= at {
			return c
		}
		if c.busyUntil < best.busyUntil {
			best = c
		}
	}
	return best
}

// Charge places cost on the earliest-free CPU and returns completion time.
func (p *CPUPool) Charge(cost Time) Time {
	end := p.Pick().Charge(cost)
	if end > p.lastCharge {
		p.lastCharge = end
	}
	return end
}

// ChargeAt places cost that cannot begin before at on the CPU that its
// arrival event would have picked (see CPU.ChargeAt), returning completion
// time.
func (p *CPUPool) ChargeAt(at, cost Time) Time {
	end := p.pickAt(at).ChargeAt(at, cost)
	if end > p.lastCharge {
		p.lastCharge = end
	}
	return end
}

// RecentlyActive reports whether any CPU in the pool ran work within the
// past `window` (or is running now). Used by the interrupt model: a VM
// that executed recently takes upcalls warm instead of paying the full
// idle-wake latency.
func (p *CPUPool) RecentlyActive(now, window Time) bool {
	return p.lastCharge+window >= now
}

// Exec charges cost on the earliest-free CPU and schedules fn at completion.
func (p *CPUPool) Exec(cost Time, fn func()) { p.Pick().Exec(cost, fn) }

// ResetWindows resets the utilization window on every CPU.
func (p *CPUPool) ResetWindows() {
	for _, c := range p.cpus {
		c.ResetWindow()
	}
}

// BusyTotal returns the summed lifetime busy time across the pool.
func (p *CPUPool) BusyTotal() Time {
	var total Time
	for _, c := range p.cpus {
		total += c.busyTotal
	}
	return total
}

// WindowUtilization returns the mean utilization across the pool's CPUs for
// the current window.
func (p *CPUPool) WindowUtilization() float64 {
	var sum float64
	for _, c := range p.cpus {
		sum += c.WindowUtilization()
	}
	return sum / float64(len(p.cpus))
}
