// Package blkif defines the shared block ring protocol between blkfront
// and blkback (xen/io/blkif.h): direct requests carry at most 11 segments
// (44 KiB) because that is all a ring slot holds next to the indexes;
// indirect requests reference descriptor pages and carry up to 32 segments
// (Linux's limit, which the paper adopts — §3.3, §4.4).
package blkif

import (
	"encoding/binary"

	"kite/internal/mem"
	"kite/internal/ring"
	"kite/internal/xen"
)

// RingSize is the blkif ring slot count (one page of slots: 32).
const RingSize = 32

// MaxQueues caps the negotiated hardware-queue count per vbd, like
// xen-blkback's max_queues module parameter (blk-mq).
const MaxQueues = 8

// MaxSegsDirect is the segment limit of a direct request (§3.3: 11
// segments, 44 KiB).
const MaxSegsDirect = 11

// MaxSegsIndirect is the adopted indirect-segment limit (§4.4: Linux
// supports at most 32; Kite limits likewise).
const MaxSegsIndirect = 32

// SegsPerIndirectPage is how many descriptors fit one indirect page (§3.3:
// 512 per page).
const SegsPerIndirectPage = 512

// SectorSize matches the device's logical block.
const SectorSize = 512

// SectorsPerPage is how many sectors one 4 KiB page holds.
const SectorsPerPage = mem.PageSize / SectorSize

// Op is a blkif operation code.
type Op int

// Operation codes (BLKIF_OP_*).
const (
	OpRead Op = iota
	OpWrite
	OpFlush
	OpIndirect // BLKIF_OP_INDIRECT wrapping a read or write
)

// Status codes (BLKIF_RSP_*).
const (
	StatusOK    = 0
	StatusError = -1
)

// Segment addresses part of one granted page: sectors FirstSect..LastSect
// inclusive.
type Segment struct {
	Ref       xen.GrantRef
	FirstSect int
	LastSect  int
}

// Bytes returns the segment's length in bytes.
func (s Segment) Bytes() int { return (s.LastSect - s.FirstSect + 1) * SectorSize }

// segDescSize is the serialized descriptor size inside an indirect page.
const segDescSize = 8

// PutSegment serializes a descriptor into an indirect page at index i —
// the frontend writes real bytes the backend parses, as on real Xen.
func PutSegment(p *mem.Page, i int, s Segment) {
	off := i * segDescSize
	binary.LittleEndian.PutUint32(p.Data[off:], uint32(s.Ref))
	p.Data[off+4] = byte(s.FirstSect)
	p.Data[off+5] = byte(s.LastSect)
}

// GetSegment parses descriptor i from an indirect page.
func GetSegment(p *mem.Page, i int) Segment {
	off := i * segDescSize
	return Segment{
		Ref:       xen.GrantRef(binary.LittleEndian.Uint32(p.Data[off:])),
		FirstSect: int(p.Data[off+4]),
		LastSect:  int(p.Data[off+5]),
	}
}

// Request is one ring slot's request.
type Request struct {
	ID     uint64
	Op     Op
	Imm    Op    // for OpIndirect: the wrapped op (read/write)
	Sector int64 // start sector on the virtual device
	// Direct segments (<= MaxSegsDirect) for OpRead/OpWrite.
	Segs []Segment
	// For OpIndirect: grant refs of descriptor pages plus the total
	// segment count.
	IndirectRefs []xen.GrantRef
	IndirectSegs int
}

// Response is one ring slot's response.
type Response struct {
	ID     uint64
	Status int8
}

// Ring is one blkif ring (the paper's single ring per device, §4.4; with
// multi-queue negotiation a device carries one per hardware queue).
type Ring = ring.Ring[Request, Response]

// NewRing allocates a standard blkif ring.
func NewRing() *Ring { return ring.New[Request, Response](RingSize) }

// Rings is the multi-queue transport: N independent blkif rings, one per
// negotiated hardware queue (blk-mq's one-ring-per-hctx layout).
type Rings = ring.MultiRing[Request, Response]

// NewRings allocates n independent blkif rings.
func NewRings(n int) *Rings { return ring.NewMulti[Request, Response](n, RingSize) }

// Channel is what the backend obtains by mapping the frontend's ring pages.
type Channel struct {
	Rings *Rings
}

// NewChannel allocates a channel with n hardware queues.
func NewChannel(n int) *Channel { return &Channel{Rings: NewRings(n)} }

// NumQueues returns the channel's hardware-queue count.
func (c *Channel) NumQueues() int { return c.Rings.NumQueues() }

// Registry mirrors netif.Registry for block rings.
type Registry struct {
	channels map[uint64]*Channel
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{channels: make(map[uint64]*Channel)} }

func key(dom xen.DomID, devid int) uint64 { return uint64(dom)<<32 | uint64(uint32(devid)) }

// Publish registers a frontend's ring.
func (r *Registry) Publish(dom xen.DomID, devid int, ch *Channel) {
	r.channels[key(dom, devid)] = ch
}

// Claim fetches a published ring.
func (r *Registry) Claim(dom xen.DomID, devid int) (*Channel, bool) {
	ch, ok := r.channels[key(dom, devid)]
	return ch, ok
}

// Drop removes a publication.
func (r *Registry) Drop(dom xen.DomID, devid int) { delete(r.channels, key(dom, devid)) }
