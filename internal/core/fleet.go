package core

import (
	"fmt"

	"kite/internal/netpkt"
)

// FleetConfig describes a fleet topology: one Kite network driver domain
// (and optionally one storage driver domain) serving Guests single-queue
// tenant VMs through shared DRR service lanes. This is the "hundreds of
// guests per driver domain" configuration the paper's lightweight domains
// make practical — per-tenant dedicated worker threads would not survive
// the scale, so the backends run in fleet mode (netback.ServiceLane,
// blkback.ServiceLane).
type FleetConfig struct {
	Guests int
	// Lanes is the service-lane count (= cluster shards); default 4.
	Lanes int
	Seed  uint64
	// Storage attaches a per-guest vbd window of DiskBytes (default
	// 8 MiB) on a fleet-mode storage domain.
	Storage   bool
	DiskBytes int64
}

// FleetRig is a built fleet topology, handshakes completed.
type FleetRig struct {
	*Testbed
	ND     *NetworkDomain
	SD     *StorageDomain // nil without FleetConfig.Storage
	Guests []*Guest
}

// fleetGuestIP returns tenant i's address: 10.0.2.0 onward, clear of the
// testbed's 10.0.0.x addresses.
func fleetGuestIP(i int) netpkt.IP {
	return netpkt.IPv4(10, 0, byte(2+i>>8), byte(i))
}

// GuestIPOf returns tenant i's address.
func (r *FleetRig) GuestIPOf(i int) netpkt.IP { return fleetGuestIP(i) }

// NewFleetRig builds the fleet on a sharded event core (one cluster shard
// per service lane) and drives every handshake to completion. Tenant i is
// pinned to lane i mod Lanes on both ring ends, so runs are bit-identical
// at any cluster worker count.
func NewFleetRig(cfg FleetConfig) (*FleetRig, error) {
	lanes := cfg.Lanes
	if lanes == 0 {
		lanes = 4
	}
	if cfg.Guests <= 0 {
		return nil, fmt.Errorf("core: fleet needs at least one guest")
	}
	tb := NewTestbedSharded(cfg.Seed, lanes)
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{
		Kind: KindKite, NIC: tb.ServerNIC, Fleet: true,
	})
	if err != nil {
		return nil, err
	}
	rig := &FleetRig{Testbed: tb, ND: nd}
	if cfg.Storage {
		disk := cfg.DiskBytes
		if disk == 0 {
			disk = 8 << 20
		}
		sd, err := tb.System.CreateStorageDomain(StorageDomainConfig{
			Kind: KindKite, Device: tb.NVMe, FleetLanes: lanes,
		})
		if err != nil {
			return nil, err
		}
		rig.SD = sd
		cfg.DiskBytes = disk
	}
	for i := 0; i < cfg.Guests; i++ {
		gc := GuestConfig{
			Name: fmt.Sprintf("tenant%03d", i), IP: fleetGuestIP(i),
			Net: nd, Fleet: true, FleetLane: i % lanes,
			Seed: cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15),
		}
		if cfg.Storage {
			gc.Storage = rig.SD
			gc.DiskBytes = cfg.DiskBytes
			gc.CacheBytes = 1 << 20
		}
		g, err := tb.System.CreateGuest(gc)
		if err != nil {
			return nil, err
		}
		rig.Guests = append(rig.Guests, g)
	}
	// Cursor instead of a full rescan: RunReady polls after every event, so
	// restarting from guest 0 each time makes bring-up O(guests²) — the
	// cursor only ever advances, and guests never un-ready during setup.
	cursor := 0
	allReady := func() bool {
		for cursor < len(rig.Guests) && rig.Guests[cursor].Ready() {
			cursor++
		}
		return cursor == len(rig.Guests)
	}
	// The handshake budget scales with the fleet: every tenant runs the
	// full xenbus negotiation plus ring setup.
	if !tb.System.RunReady(allReady, uint64(cfg.Guests+1)*500000) {
		return nil, errNotReady
	}
	return rig, nil
}
