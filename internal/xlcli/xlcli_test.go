package xlcli

import (
	"strings"
	"testing"
)

func run(t *testing.T, script string) (string, error) {
	t.Helper()
	var out strings.Builder
	interp := New(0x71, &out)
	err := interp.RunScript(strings.NewReader(script))
	return out.String(), err
}

func TestFullScenario(t *testing.T) {
	script := `
# artifact-appendix style scenario
pci-assignable-add 03:00.0
pci-assignable-add 04:00.0
create network kind=kite boot
create storage kind=kite
create guest name=domU ip=10.0.0.1 net disk=1024
list
ping 10.0.0.1
ifconfig -a
brconfig xenbr0
run 10
destroy domU
list
`
	out, err := run(t, script)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"network domain kite-net up",
		"t=7.0s", // booted
		"storage domain kite-storage up",
		"guest domU up",
		"64 bytes from 10.0.0.1",
		"if0: flags",
		"member: vif3.0",
		"destroyed domU",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// After destroy, domU must not be listed.
	tail := out[strings.LastIndex(out, "destroyed domU"):]
	if strings.Contains(tail, "domU ") {
		t.Fatalf("destroyed guest still listed:\n%s", tail)
	}
}

func TestNATScenario(t *testing.T) {
	script := `
pci-assignable-add 03:00.0
create network kind=kite nat=10.0.0.254
create guest name=inner ip=192.168.9.9 net
list
`
	out, err := run(t, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "guest inner up") {
		t.Fatalf("nat guest missing:\n%s", out)
	}
}

func TestDHCPVMScenario(t *testing.T) {
	script := `
pci-assignable-add 03:00.0
create network kind=linux
create dhcpvm ip=10.0.0.53 pool=10.0.0.100:50
`
	out, err := run(t, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dhcp daemon VM up") {
		t.Fatalf("dhcp vm missing:\n%s", out)
	}
}

func TestErrorsAreDiagnosed(t *testing.T) {
	cases := []struct {
		script string
		want   string
	}{
		{"create network kind=kite", "not assignable"},
		{"pci-assignable-add 03:00.0\ncreate guest name=g net ip=10.0.0.5", "no network domain"},
		{"ping 10.0.0.1", "no reply"},
		{"frobnicate", "unknown command"},
		{"destroy nothing", "no domain named"},
		{"create guest net", "needs name"},
		{"ping not-an-ip", "bad IP"},
	}
	for _, c := range cases {
		if _, err := run(t, c.script); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("script %q: error = %v, want containing %q", c.script, err, c.want)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	if _, err := run(t, "# nothing\n\n   \n# more\n"); err != nil {
		t.Fatal(err)
	}
}
