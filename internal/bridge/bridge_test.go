package bridge

import (
	"testing"

	"kite/internal/framepool"
	"kite/internal/netpkt"
	"kite/internal/sim"
)

var testPool = framepool.New()

type fakePort struct {
	name string
	got  [][]byte
}

func (p *fakePort) PortName() string { return p.name }
func (p *fakePort) Deliver(frame *framepool.Buf) {
	p.got = append(p.got, append([]byte(nil), frame.Bytes()...))
	frame.Release()
}

func frame(dst, src netpkt.MAC, body string) *framepool.Buf {
	f := netpkt.Frame{Dst: dst, Src: src, EtherType: netpkt.EtherTypeIPv4, Payload: []byte(body)}
	return testPool.From(f.Marshal())
}

var (
	macA = netpkt.MAC{0, 0, 0, 0, 0, 0xA}
	macB = netpkt.MAC{0, 0, 0, 0, 0, 0xB}
	macC = netpkt.MAC{0, 0, 0, 0, 0, 0xC}
)

func newBridge() (*sim.Engine, *Bridge, *fakePort, *fakePort, *fakePort) {
	eng := sim.NewEngine()
	cpus := sim.NewCPUPool(eng, "dd", 1)
	b := New(eng, cpus, "xenbr0")
	p1, p2, p3 := &fakePort{name: "if0"}, &fakePort{name: "vif1.0"}, &fakePort{name: "vif2.0"}
	b.AddPort(p1)
	b.AddPort(p2)
	b.AddPort(p3)
	return eng, b, p1, p2, p3
}

func TestFloodUnknownDestination(t *testing.T) {
	eng, b, p1, p2, p3 := newBridge()
	b.Input(p1, frame(macB, macA, "x"))
	eng.Run()
	if len(p1.got) != 0 {
		t.Fatal("frame reflected to source port")
	}
	if len(p2.got) != 1 || len(p3.got) != 1 {
		t.Fatalf("flood delivered %d/%d, want 1/1", len(p2.got), len(p3.got))
	}
	if b.Stats().Flooded != 1 {
		t.Fatal("flood not counted")
	}
}

func TestLearningThenUnicast(t *testing.T) {
	eng, b, p1, p2, p3 := newBridge()
	// B speaks from p2; bridge learns.
	b.Input(p2, frame(macA, macB, "hello"))
	eng.Run()
	if b.Lookup(macB) != p2 {
		t.Fatal("source MAC not learned")
	}
	p1.got, p2.got, p3.got = nil, nil, nil
	// Now A->B goes only to p2.
	b.Input(p1, frame(macB, macA, "reply"))
	eng.Run()
	if len(p2.got) != 1 || len(p3.got) != 0 || len(p1.got) != 0 {
		t.Fatalf("unicast delivery %d/%d/%d, want 0/1/0", len(p1.got), len(p2.got), len(p3.got))
	}
	if b.Stats().Forwarded != 1 {
		t.Fatal("forward not counted")
	}
}

func TestBroadcastFloods(t *testing.T) {
	eng, b, _, p2, p3 := newBridge()
	b.Input(p2, frame(netpkt.Broadcast, macB, "arp"))
	eng.Run()
	if len(p3.got) != 1 {
		t.Fatal("broadcast not flooded")
	}
	_ = p2
}

func TestStationMove(t *testing.T) {
	eng, b, p1, p2, p3 := newBridge()
	b.Input(p2, frame(macA, macB, "1"))
	eng.Run()
	// B moves to p3 (guest migrated / vif reattached).
	b.Input(p3, frame(macA, macB, "2"))
	eng.Run()
	p1.got, p2.got, p3.got = nil, nil, nil
	b.Input(p1, frame(macB, macA, "3"))
	eng.Run()
	if len(p3.got) != 1 || len(p2.got) != 0 {
		t.Fatal("bridge did not relearn moved station")
	}
}

func TestHairpinDropped(t *testing.T) {
	eng, b, p1, p2, _ := newBridge()
	b.Input(p2, frame(macA, macB, "x")) // learn B@p2
	b.Input(p1, frame(macB, macC, "y")) // learn C@p1... and forward to p2
	eng.Run()
	p2.got = nil
	// Destination learned behind the same port it arrives on: drop.
	b.Input(p2, frame(macB, macC, "z"))
	eng.Run()
	if len(p2.got) != 0 {
		t.Fatal("hairpin frame delivered")
	}
}

func TestRemovePortFlushesFDB(t *testing.T) {
	eng, b, p1, p2, p3 := newBridge()
	b.Input(p2, frame(macA, macB, "x"))
	eng.Run()
	b.RemovePort(p2)
	if b.Lookup(macB) != nil {
		t.Fatal("FDB entry survived port removal")
	}
	p1.got, p3.got = nil, nil
	b.Input(p1, frame(macB, macA, "y"))
	eng.Run()
	if len(p3.got) != 1 {
		t.Fatal("frame to departed station not flooded to remaining ports")
	}
	if len(b.Ports()) != 2 {
		t.Fatalf("port count = %d, want 2", len(b.Ports()))
	}
}

func TestDoubleAddPanics(t *testing.T) {
	_, b, p1, _, _ := newBridge()
	defer func() {
		if recover() == nil {
			t.Fatal("double AddPort did not panic")
		}
	}()
	b.AddPort(p1)
}

func TestRuntFrameDropped(t *testing.T) {
	eng, b, p1, _, _ := newBridge()
	b.Input(p1, testPool.From([]byte{1, 2, 3}))
	eng.Run()
	if b.Stats().Dropped != 1 {
		t.Fatal("runt frame not dropped")
	}
}

func TestForwardingChargesCPU(t *testing.T) {
	eng := sim.NewEngine()
	cpus := sim.NewCPUPool(eng, "dd", 1)
	b := New(eng, cpus, "xenbr0")
	p1, p2 := &fakePort{name: "a"}, &fakePort{name: "b"}
	b.AddPort(p1)
	b.AddPort(p2)
	b.Input(p1, frame(macB, macA, "x"))
	eng.Run()
	if cpus.CPU(0).BusyTotal() != b.PerFrameCost {
		t.Fatalf("bridge charged %v, want %v", cpus.CPU(0).BusyTotal(), b.PerFrameCost)
	}
}
