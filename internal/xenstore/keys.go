package xenstore

// This file is the single registry of xenstore key names used by the
// device negotiation protocol. Every path or key argument handed to a
// Store or xenbus.Bus method must be assembled from these constants (plus
// bare "/" separators and computed path segments); the kitelint xskeys
// analyzer rejects raw string literals at those call sites. The point is
// typo immunity: "event-chanel" in a literal compiles and silently stalls
// the handshake, while a misspelled constant name fails the build.
//
// Names mirror xen/io/xenbus.h, netif.h and blkif.h so traces read like
// real xenstore dumps.

// Device types, the <type> segment of device directories.
const (
	DevVif = "vif" // paravirtual network device
	DevVbd = "vbd" // paravirtual block device
)

// Keys shared by every device directory (xenbus handshake layout).
const (
	KeyFrontend   = "frontend"    // backend dir → frontend dir path
	KeyFrontendID = "frontend-id" // backend dir → owning guest domid
	KeyBackend    = "backend"     // frontend dir → backend dir path
	KeyBackendID  = "backend-id"  // frontend dir → serving domid
	KeyState      = "state"       // XenbusState of this end
	KeyOnline     = "online"      // toolstack keeps the backend alive
)

// Ring/event plumbing keys written by frontends during connect.
const (
	KeyEventChannel = "event-channel" // evtchn port of the shared ring
	KeyRingRef      = "ring-ref"      // blkif single ring grant ref
	KeyTxRingRef    = "tx-ring-ref"   // netif transmit ring grant ref
	KeyRxRingRef    = "rx-ring-ref"   // netif receive ring grant ref
	KeyProtocol     = "protocol"      // blkif ABI name
)

// vif-specific keys.
const (
	KeyMac           = "mac"             // guest MAC, written by the toolstack
	KeyBridge        = "bridge"          // dom0/driver-domain bridge to attach to
	KeyFeatureRxCopy = "feature-rx-copy" // backend copies into guest rx buffers
	KeyRequestRxCopy = "request-rx-copy" // frontend asks for rx-copy mode
)

// vbd-specific keys.
const (
	KeySectors            = "sectors"                       // disk size in sectors
	KeySectorSize         = "sector-size"                   // logical sector bytes
	KeyParams             = "params"                        // backend image/device spec
	KeyFeatureFlushCache  = "feature-flush-cache"           // backend honors flush
	KeyFeaturePersistent  = "feature-persistent"            // persistent-grant support
	KeyFeatureMaxIndirect = "feature-max-indirect-segments" // indirect descriptor cap
)

// Tenant-registry keys. A driver domain serving a fleet publishes one
// subtree per guest under /local/domain/<dd>/tenant/<domid>/ so the
// toolstack (and the kitebench summaries) can enumerate who is attached
// to which backend without walking every device directory: vif/vbd
// counts, the fleet service lane serving the tenant, and a liveness
// marker maintained across attach/detach.
const (
	KeyTenantRoot  = "tenant" // subtree root under the driver domain
	KeyTenantVifs  = "vifs"   // live vif count for this tenant
	KeyTenantVbds  = "vbds"   // live vbd count for this tenant
	KeyTenantLane  = "lane"   // fleet service lane index (-1 unassigned)
	KeyTenantState = "state"  // "attached" while any device is live
)

// TenantStateAttached is the KeyTenantState value while a tenant holds at
// least one live device on the driver domain.
const TenantStateAttached = "attached"

// Multi-queue negotiation keys, mirroring xen/io/netif.h: the backend
// advertises KeyMultiQueueMaxQueues, the frontend answers with
// KeyMultiQueueNumQueues and moves its rings into per-queue "queue-N/"
// subdirectories. KeyMultiQueueHashSeed carries the frontend's RSS
// Toeplitz seed so both ends steer a flow to the same queue.
const (
	KeyMultiQueueMaxQueues = "multi-queue-max-queues"
	KeyMultiQueueNumQueues = "multi-queue-num-queues"
	KeyMultiQueueHashSeed  = "multi-queue-hash-seed"
)
