// Command kitebench regenerates the paper's evaluation (§5): every figure
// and table, printed as text tables, plus the design-choice ablations.
//
// Usage:
//
//	kitebench [-full] [-only FIG7,FIG11] [-ablations]
//
// -full runs paper-scale workloads (more virtual seconds; wall-clock
// minutes); the default quick scale preserves every comparison's shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kite/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. FIG7,FIG11)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	flag.Parse()

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	fmt.Printf("kitebench: scale=%s\n\n", scale.Name)

	type exp struct {
		id  string
		run func() *experiments.Result
	}
	all := []exp{
		{"FIG1A", func() *experiments.Result { return experiments.Fig1aDriverCVEs() }},
		{"FIG1B", func() *experiments.Result { return experiments.Fig1bFig5ROP() }},
		{"FIG4", func() *experiments.Result { return experiments.Fig4Footprint() }},
		{"FIG4C", func() *experiments.Result { return experiments.Fig4cBootTime() }},
		{"TAB3", func() *experiments.Result { return experiments.Table3() }},
		{"FIG6", func() *experiments.Result { return experiments.Fig6Nuttcp(scale) }},
		{"FIG7", func() *experiments.Result { return experiments.Fig7Latency(scale) }},
		{"FIG8", func() *experiments.Result { return experiments.Fig8Apache(scale) }},
		{"FIG9", func() *experiments.Result { return experiments.Fig9Redis(scale) }},
		{"FIG10", func() *experiments.Result { return experiments.Fig10MySQL(scale) }},
		{"FIG11", func() *experiments.Result { return experiments.Fig11DD(scale) }},
		{"FIG12", func() *experiments.Result { return experiments.Fig12FileIO(scale) }},
		{"FIG13", func() *experiments.Result { return experiments.Fig13MySQLStorage(scale) }},
		{"FIG14", func() *experiments.Result { return experiments.Fig14Fileserver(scale) }},
		{"FIG15", func() *experiments.Result { return experiments.Fig15Mongo(scale) }},
		{"FIG16", func() *experiments.Result { return experiments.Fig16Webserver(scale) }},
		{"DHCP", func() *experiments.Result { return experiments.DHCPLatency(scale) }},
	}

	var filter map[string]bool
	if *only != "" {
		filter = make(map[string]bool)
		for _, id := range strings.Split(strings.ToUpper(*only), ",") {
			filter[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	for _, e := range all {
		if filter != nil && !filter[e.id] {
			continue
		}
		res := e.run()
		fmt.Println(res.Table.String())
		for _, note := range res.Notes {
			fmt.Printf("  note: %s\n", note)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "kitebench: no experiments matched -only filter")
		os.Exit(2)
	}

	if *ablations {
		fmt.Println("== Design-choice ablations ==")
		for _, a := range []*experiments.AblationResult{
			experiments.AblationPersistentGrants(scale),
			experiments.AblationIndirectSegments(scale),
			experiments.AblationBatching(scale),
			experiments.AblationThreadedModel(scale),
		} {
			fmt.Println(a.Table.String())
		}
	}
}
