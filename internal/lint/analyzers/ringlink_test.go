package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestRinglink(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/ringlink", "testdata/src/ringlink", analyzers.Ringlink)
}
