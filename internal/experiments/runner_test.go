package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// render flattens a result into the exact bytes kitebench would print, so
// determinism tests compare observable output, not struct internals.
func render(r *Result) string {
	var b strings.Builder
	b.WriteString(r.Table.String())
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSameExperimentConcurrentAndSequential runs one workload experiment
// twice at the same time on separate goroutines and once more sequentially,
// asserting all three produce byte-identical tables. Run under -race this
// also proves the rigs share no mutable state.
func TestSameExperimentConcurrentAndSequential(t *testing.T) {
	s := Quick()
	var a, b *Result
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a = Fig7Latency(s) }()
	go func() { defer wg.Done(); b = Fig7Latency(s) }()
	wg.Wait()
	seq := Fig7Latency(s)

	if got, want := render(a), render(seq); got != want {
		t.Errorf("concurrent run A differs from sequential:\n--- A ---\n%s--- seq ---\n%s", got, want)
	}
	if got, want := render(b), render(seq); got != want {
		t.Errorf("concurrent run B differs from sequential:\n--- B ---\n%s--- seq ---\n%s", got, want)
	}
}

// TestRunAllParallelMatchesSequential runs a slice of the suite with one
// worker and with four, asserting byte-identical tables in both orders.
// This is the determinism-under-parallelism contract -parallel relies on.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	specs, err := Lookup("FIG6,FIG7,FIG11,FIG4")
	if err != nil {
		t.Fatal(err)
	}
	s := Quick()
	seq := RunAll(specs, s, 1)
	par := RunAll(specs, s, 4)
	if len(seq) != len(par) {
		t.Fatalf("result count: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if got, want := render(par[i]), render(seq[i]); got != want {
			t.Errorf("%s: parallel output differs from sequential:\n--- parallel ---\n%s--- sequential ---\n%s",
				specs[i].ID, got, want)
		}
	}
}

// TestMQSummaryByteIdenticalAcrossParallelAndQueues asserts the -queues
// contract: the kitebench summary (experiment tables plus the mq lines) is
// byte-identical for every -parallel in {1,4,8} crossed with every -queues
// in {1,2,4}. The mq workload's totals and checksums are queue-invariant
// by construction — steering and striping change only the timing of
// deliveries, never their contents — and the tables never depended on the
// worker count.
func TestMQSummaryByteIdenticalAcrossParallelAndQueues(t *testing.T) {
	specs, err := Lookup("FIG7")
	if err != nil {
		t.Fatal(err)
	}
	s := Quick()
	var base string
	for _, par := range []int{1, 4, 8} {
		for _, q := range []int{1, 2, 4} {
			var b strings.Builder
			for _, r := range RunAll(specs, s, par) {
				b.WriteString(render(r))
			}
			b.WriteString(MQSummary(s, q, 1).String())
			out := b.String()
			if base == "" {
				base = out
			} else if out != base {
				t.Errorf("parallel=%d queues=%d: summary differs from parallel=1 queues=1:\n--- got ---\n%s\n--- want ---\n%s",
					par, q, out, base)
			}
		}
	}
}

// TestMQDeterminismMatrix is the parallel event core's bit-reproducibility
// witness: for each queue count, the full mq summary INCLUDING the shard
// counters is byte-identical across every GOMAXPROCS x cluster-worker
// combination. Windows and cross-shard posts are timeline facts, so even
// they may not vary with execution parallelism. Run under -race by `make
// verify`, this doubles as the proof that shards share nothing mid-window.
func TestMQDeterminismMatrix(t *testing.T) {
	s := Quick()
	for _, q := range []int{1, 4, 8} {
		var base string
		var baseCfg string
		for _, procs := range []int{1, 2, 8} {
			for _, cores := range []int{1, 4} {
				prev := runtime.GOMAXPROCS(procs)
				m := MQSummary(s, q, cores)
				runtime.GOMAXPROCS(prev)
				out := m.String() + "\n" + m.ShardLine()
				cfg := fmt.Sprintf("queues=%d procs=%d cores=%d", q, procs, cores)
				if base == "" {
					base, baseCfg = out, cfg
				} else if out != base {
					t.Errorf("%s differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
						cfg, baseCfg, out, base)
				}
			}
		}
	}
}

// TestRunAllPreservesOrder checks results come back in spec order even
// when later experiments finish first.
func TestRunAllPreservesOrder(t *testing.T) {
	specs, err := Lookup("FIG4C,FIG1A,TAB3")
	if err != nil {
		t.Fatal(err)
	}
	res := RunAll(specs, Quick(), 3)
	for i, sp := range specs {
		if res[i] == nil || res[i].ID != sp.ID {
			t.Errorf("slot %d: want %s, got %+v", i, sp.ID, res[i])
		}
	}
}

func TestLookup(t *testing.T) {
	specs, err := Lookup("fig11, FIG6")
	if err != nil {
		t.Fatal(err)
	}
	// Registry order, not filter order.
	if len(specs) != 2 || specs[0].ID != "FIG6" || specs[1].ID != "FIG11" {
		t.Fatalf("got %+v", specs)
	}

	if _, err := Lookup("FIG6,NOPE,ALSO_BAD"); err == nil {
		t.Fatal("want error for unknown IDs")
	} else {
		msg := err.Error()
		for _, want := range []string{"ALSO_BAD", "NOPE", "FIG6"} {
			if !strings.Contains(msg, want) {
				t.Errorf("error %q missing %q", msg, want)
			}
		}
	}
}

// TestEventsProcessedCounts asserts the telemetry counter advances when an
// experiment drives a workload.
func TestEventsProcessedCounts(t *testing.T) {
	before := EventsProcessed()
	Fig11DD(Quick())
	if after := EventsProcessed(); after <= before {
		t.Errorf("EventsProcessed did not advance: before=%d after=%d", before, after)
	}
}
