package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"kite/internal/lint/analysis"
)

// Ringlink proves the link discipline of the intrusive structures the
// fleet data plane runs on (PRs 7/9): ServiceLane laneMember active rings,
// timewheel bucket chains and freelist slabs, framepool remote-free
// magazines. These structures have no redundancy — a node's membership IS
// its next/prev words — so a double-link silently merges two rings, a
// double-unlink corrupts the neighbors of an unrelated node, and touching
// a freed slot resurrects it into two owners. -race cannot see any of
// this (single goroutine, plain int writes); only the discipline itself
// can be checked.
//
// The operations are declared, not hardcoded: a function whose doc
// comment carries
//
//	//kite:ringlink link [argIdx]    inserts its operand into a ring
//	//kite:ringlink unlink [argIdx]  removes its operand from a ring
//	//kite:ringlink free [argIdx]    returns its operand to a freelist
//	//kite:ringlink alloc            returns a fresh, unlinked handle
//
// is a ring operation on the call argument at argIdx (default 0). For
// every function that calls at least one operation, each handle variable
// is abstract-interpreted through the body on the shared flow engine
// (flow.go) with states {fresh, linked, unlinked, freed}; branches fork,
// merges union, loops run to a two-iteration fixpoint. Reported:
//
//   - link while possibly linked          (double-link: ring merge)
//   - unlink while possibly unlinked      (double-unlink)
//   - free while possibly linked          (dangling ring pointer)
//   - any operation or use after free     (use-after-detach)
//   - alloc whose handle is neither linked, freed, handed off, nor
//     returned on some path               (leaked link)
//
// Reassigning the handle variable ends tracking (the slot index now names
// a different node); passing or returning a fresh handle transfers the
// link obligation to the receiver.
var Ringlink = &analysis.Analyzer{
	Name: "ringlink",
	Doc:  "intrusive ring handles: link/unlink pairing, no double-link, no use-after-detach",
	Run:  runRinglink,
}

// Ring-handle states, used as bits in a flow-engine state set.
const (
	rsUnknown  = 1 << iota // no operation observed yet on this path
	rsFresh                // allocated, not yet linked: the caller owes a link/free/handoff
	rsLinked               // on a ring
	rsUnlinked             // removed from a ring by an unlink op
	rsFreed                // returned to the freelist; any further touch is a bug
)

// ringOp is one declared ring operation.
type ringOp struct {
	kind string // "link", "unlink", "free", "alloc"
	arg  int    // operand index for link/unlink/free
}

// ringOpOf resolves a call to its //kite:ringlink declaration, if any.
func ringOpOf(mod *analysis.Module, info *types.Info, call *ast.CallExpr) (ringOp, bool) {
	fn := staticCallee(info, call)
	if fn == nil {
		return ringOp{}, false
	}
	fd := mod.FuncDecl(fn)
	if fd == nil {
		return ringOp{}, false
	}
	return ringDirective(fd.Decl.Doc)
}

// ringDirective parses "//kite:ringlink <kind> [argIdx]" from a doc group.
func ringDirective(doc *ast.CommentGroup) (ringOp, bool) {
	if doc == nil {
		return ringOp{}, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//kite:ringlink")
		if !ok {
			continue
		}
		f := strings.Fields(rest)
		if len(f) == 0 {
			continue
		}
		op := ringOp{kind: f[0]}
		if len(f) > 1 {
			if n, err := strconv.Atoi(f[1]); err == nil {
				op.arg = n
			}
		}
		return op, true
	}
	return ringOp{}, false
}

func runRinglink(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Operation bodies implement the raw pointer surgery the
			// discipline is ABOUT; they are the trusted base.
			if _, isOp := ringDirective(fd.Doc); isOp {
				continue
			}
			checkRingDiscipline(pass, fd.Body)
		}
	}
	return nil
}

// checkRingDiscipline interprets one function body once per handle
// variable that participates in a ring operation.
func checkRingDiscipline(pass *analysis.Pass, body *ast.BlockStmt) {
	if hasJumps(body) {
		return
	}
	info := pass.Pkg.Info
	var handles []types.Object
	seen := map[types.Object]bool{}
	track := func(obj types.Object) {
		if obj != nil && !seen[obj] {
			seen[obj] = true
			handles = append(handles, obj)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			op, ok := ringOpOf(pass.Module, info, x)
			if !ok || op.kind == "alloc" {
				return true
			}
			if op.arg < len(x.Args) {
				if id, ok := ast.Unparen(x.Args[op.arg]).(*ast.Ident); ok {
					track(objOf(info, id))
				}
			}
		case *ast.AssignStmt:
			// h := w.alloc() binds a fresh handle to h.
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
					if op, ok := ringOpOf(pass.Module, info, call); ok && op.kind == "alloc" {
						if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							track(objOf(info, id))
						}
					}
				}
			}
		}
		return true
	})
	for _, obj := range handles {
		w := &ringWalk{pass: pass, info: info, obj: obj, reported: map[string]bool{}}
		(&flowExec{client: w}).run(body, rsUnknown)
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// ringWalk interprets one function body for one handle variable; it is the
// ringlink flowClient.
type ringWalk struct {
	pass *analysis.Pass
	info *types.Info
	obj  types.Object

	allocPos token.Pos       // most recent tracked alloc site, for leak reports
	reported map[string]bool // one report per (pos, rule)
}

func (w *ringWalk) report(pos token.Pos, rule, format string, args ...any) {
	k := strconv.Itoa(int(pos)) + rule
	if w.reported[k] {
		return
	}
	w.reported[k] = true
	w.pass.Reportf(pos, format, args...)
}

func (w *ringWalk) isObj(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (w.info.Uses[id] == w.obj || w.info.Defs[id] == w.obj)
}

// stmt handles assignments, whose left-hand sides rebind the handle.
func (w *ringWalk) stmt(s ast.Stmt, in int) (int, bool) {
	st, ok := s.(*ast.AssignStmt)
	if !ok {
		return in, false
	}
	// h := alloc() — the tracked acquisition.
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 && w.isObj(st.Lhs[0]) {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			if op, ok := ringOpOf(w.pass.Module, w.info, call); ok && op.kind == "alloc" {
				w.allocPos = call.Pos()
				return rsFresh, true
			}
		}
	}
	out := in
	for _, r := range st.Rhs {
		out = w.scan(r, out)
	}
	rebound := false
	for _, l := range st.Lhs {
		if w.isObj(l) {
			rebound = true
		} else {
			// w.key[h] = v: the handle is used (as an index, say) but not
			// reassigned.
			out = w.scan(l, out)
		}
	}
	if rebound {
		// The variable now names a different node; prior state is moot —
		// but a fresh handle overwritten before being linked is leaked.
		if out&rsFresh != 0 {
			w.leak(st.Pos())
		}
		return rsUnknown, true
	}
	// Copying a fresh handle into another variable or field hands the
	// link obligation to the new holder.
	for _, r := range st.Rhs {
		if w.isObj(r) {
			out &^= rsFresh
			out |= rsUnknown
		}
	}
	return out, true
}

// scan folds straight-line uses of the handle into the state: ring
// operations transition it, everything else is checked for use-after-free
// and fresh-handle handoff.
func (w *ringWalk) scan(n ast.Node, in int) int {
	if n == nil {
		return in
	}
	out := in
	handled := map[*ast.Ident]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			// Capture by a closure hands the handle off entirely.
			if usesObj(e.Body, w.info, w.obj) {
				out = rsUnknown
			}
			return false
		case *ast.ReturnStmt:
			// Returning the handle transfers the link obligation.
			if usesObj(e, w.info, w.obj) {
				out &^= rsFresh
				out |= rsUnknown
			}
		case *ast.CallExpr:
			if op, ok := ringOpOf(w.pass.Module, w.info, e); ok {
				if op.kind != "alloc" && op.arg < len(e.Args) && w.isObj(e.Args[op.arg]) {
					if id, ok := ast.Unparen(e.Args[op.arg]).(*ast.Ident); ok {
						handled[id] = true
					}
					out = w.apply(op, out, e.Pos())
				}
				return true
			}
			// A non-operation call taking the handle: the callee may link
			// or free it, so a fresh handle's obligation moves there.
			for _, a := range e.Args {
				if usesObj(a, w.info, w.obj) {
					out &^= rsFresh
					out |= rsUnknown
				}
			}
		case *ast.Ident:
			if !handled[e] && (w.info.Uses[e] == w.obj) && out&rsFreed != 0 {
				w.report(e.Pos(), "uaf",
					"ringlink: %s may already be freed when used here (use-after-detach)", e.Name)
			}
		}
		return true
	})
	return out
}

// apply transitions the state set through one ring operation, reporting
// discipline violations. Operations are strong updates: afterwards the
// handle is definitely in the operation's result state.
func (w *ringWalk) apply(op ringOp, in int, pos token.Pos) int {
	name := w.obj.Name()
	if in&rsFreed != 0 {
		w.report(pos, "uaf",
			"ringlink: %s may already be freed when %sed here (use-after-detach)", name, op.kind)
	}
	switch op.kind {
	case "link":
		if in&rsLinked != 0 {
			w.report(pos, "double-link",
				"ringlink: %s may already be linked when linked again here (double-link merges rings)", name)
		}
		return rsLinked
	case "unlink":
		if in&(rsUnlinked|rsFresh) != 0 {
			w.report(pos, "double-unlink",
				"ringlink: %s may already be unlinked when unlinked here (double-unlink)", name)
		}
		return rsUnlinked
	case "free":
		if in&rsLinked != 0 {
			w.report(pos, "free-linked",
				"ringlink: %s may still be linked when freed here (dangling ring pointer)", name)
		}
		return rsFreed
	}
	return in
}

// exit checks a function-exit state set: a handle still fresh was neither
// linked, freed, nor handed off on this path.
func (w *ringWalk) exit(states int, pos token.Pos) {
	if states&rsFresh != 0 {
		w.leak(pos)
	}
}

func (w *ringWalk) leak(at token.Pos) {
	pos := w.allocPos
	if pos == token.NoPos {
		pos = at
	}
	w.report(pos, "leak",
		"ringlink: handle allocated here is neither linked nor freed on some path (leaked link, detached at %s)",
		w.pass.Module.Fset.Position(at))
}
