package netpkt

import (
	"fmt"
	"sort"
)

// FragmentIPv4 splits an IP payload into MTU-sized IPv4 packets sharing
// one identification value. Payloads that fit return a single packet.
// Fragment offsets are in 8-byte units per RFC 791, so the per-fragment
// payload is rounded down to a multiple of 8.
func FragmentIPv4(h IPv4Header, payload []byte, mtu int) [][]byte {
	maxData := (mtu - IPHeaderLen) &^ 7
	if maxData <= 0 {
		panic(fmt.Sprintf("netpkt: mtu %d cannot carry ipv4", mtu))
	}
	if len(payload) <= mtu-IPHeaderLen {
		hh := h
		hh.Flags = 0
		hh.FragOff = 0
		return [][]byte{hh.Marshal(payload)}
	}
	var out [][]byte
	for off := 0; off < len(payload); off += maxData {
		end := off + maxData
		more := uint8(FlagMoreFragments)
		if end >= len(payload) {
			end = len(payload)
			more = 0
		}
		hh := h
		hh.Flags = more
		hh.FragOff = uint16(off / 8)
		out = append(out, hh.Marshal(payload[off:end]))
	}
	return out
}

type fragKey struct {
	src, dst IP
	id       uint16
	proto    uint8
}

type fragHole struct {
	off  int
	data []byte
}

type fragBuf struct {
	parts    []fragHole
	haveLast bool
	total    int
}

// Reassembler reassembles fragmented IPv4 packets. It is used by receive
// paths (guest network stacks and host endpoints).
type Reassembler struct {
	pending map[fragKey]*fragBuf
	// Drops counts datagrams abandoned because of overlapping/duplicate
	// fragments; exposed for diagnostics.
	Drops uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[fragKey]*fragBuf)}
}

// PendingCount returns how many partially reassembled datagrams are held.
func (r *Reassembler) PendingCount() int { return len(r.pending) }

// Push offers one IPv4 packet. If it completes a datagram (or was never
// fragmented) the full payload is returned with done=true.
func (r *Reassembler) Push(h *IPv4Header, payload []byte) (full []byte, done bool) {
	if h.FragOff == 0 && h.Flags&FlagMoreFragments == 0 {
		return payload, true
	}
	key := fragKey{src: h.Src, dst: h.Dst, id: h.ID, proto: h.Proto}
	buf := r.pending[key]
	if buf == nil {
		buf = &fragBuf{}
		r.pending[key] = buf
	}
	off := int(h.FragOff) * 8
	cp := make([]byte, len(payload))
	copy(cp, payload)
	buf.parts = append(buf.parts, fragHole{off: off, data: cp})
	if h.Flags&FlagMoreFragments == 0 {
		buf.haveLast = true
		buf.total = off + len(payload)
	}
	if !buf.haveLast {
		return nil, false
	}
	// Check contiguity.
	sort.Slice(buf.parts, func(i, j int) bool { return buf.parts[i].off < buf.parts[j].off })
	next := 0
	for _, p := range buf.parts {
		if p.off > next {
			return nil, false // hole remains
		}
		if end := p.off + len(p.data); end > next {
			next = end
		}
	}
	if next < buf.total {
		return nil, false
	}
	out := make([]byte, buf.total)
	for _, p := range buf.parts {
		copy(out[p.off:], p.data)
	}
	delete(r.pending, key)
	return out, true
}
