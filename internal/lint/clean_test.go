package lint_test

import (
	"go/ast"
	"strings"
	"sync"
	"testing"

	"kite/internal/lint"
	"kite/internal/lint/analysis"
	"kite/internal/lint/analyzers"
)

// loadOnce shares one whole-module typecheck across the meta-tests; a
// full load costs a few seconds.
var loadOnce = sync.OnceValues(func() (*analysis.Module, error) {
	return lint.LoadModule(".")
})

// TestLintCleanTree is the suite's own acceptance test: every analyzer
// over every package of the module must report nothing. A regression that
// reintroduces an allocation on a hot path, a leaked pool buffer, a raw
// xenstore key, wall-clock time in the simulator, or a blocking event
// handler fails here (and in `make lint`, which runs the same code).
func TestLintCleanTree(t *testing.T) {
	mod, err := loadOnce()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := lint.Run(mod, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", lint.Format(mod, d))
	}
}

// TestConcurrencyLintCleanTree runs just the four concurrency-contract
// analyzers (shardsafe, relpure, ringlink, atomicscope) and then pins the
// escape-hatch annotations they hinge on: the barrier machinery must stay
// declared //kite:synccore, the sanctioned cross-shard writers
// //kite:shardok, and the intrusive ring operations //kite:ringlink.
// Deleting an annotation either breaks the clean run (a finding appears)
// or fails the pin below (the analyzer silently lost its anchor) — both
// directions are covered.
func TestConcurrencyLintCleanTree(t *testing.T) {
	mod, err := loadOnce()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	suite := []*analysis.Analyzer{
		analyzers.Shardsafe, analyzers.Relpure, analyzers.Ringlink, analyzers.Atomicscope,
	}
	diags, err := lint.Run(mod, suite)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", lint.Format(mod, d))
	}

	synccore := []struct{ pkg, fn string }{
		{"kite/internal/sim", "ensureWorkers"},
		{"kite/internal/sim", "stopWorkers"},
		{"kite/internal/sim", "workerLoop"},
		{"kite/internal/sim", "runWindowShards"},
		{"kite/internal/experiments", "RunAll"},
		{"kite/internal/experiments", "tryGo"},
	}
	for _, r := range synccore {
		if !funcHasDirective(mod, r.pkg, r.fn, "//kite:synccore") {
			t.Errorf("%s.%s: no //kite:synccore-annotated declaration found", r.pkg, r.fn)
		}
	}
	shardok := []struct{ pkg, fn string }{
		{"kite/internal/framepool", "stageRemote"},
		{"kite/internal/xen", "mark"},
		{"kite/internal/xen", "scan"},
	}
	for _, r := range shardok {
		if !funcHasDirective(mod, r.pkg, r.fn, "//kite:shardok") {
			t.Errorf("%s.%s: no //kite:shardok-annotated declaration found", r.pkg, r.fn)
		}
	}
	ringlink := []struct{ pkg, fn string }{
		{"kite/internal/timewheel", "alloc"},
		{"kite/internal/timewheel", "link"},
		{"kite/internal/timewheel", "release"},
		{"kite/internal/netback", "link"},
		{"kite/internal/netback", "unlink"},
		{"kite/internal/blkback", "link"},
		{"kite/internal/blkback", "unlink"},
		{"kite/internal/framepool", "stageRemote"},
	}
	for _, r := range ringlink {
		if !funcHasDirective(mod, r.pkg, r.fn, "//kite:ringlink") {
			t.Errorf("%s.%s: no //kite:ringlink-annotated declaration found", r.pkg, r.fn)
		}
	}
}

// TestDeterministicScope pins the simdet contract to the three packages
// whose byte-identical output the experiment suite depends on. Removing
// the directive would silently shrink the analyzer's scope; this test
// turns that into a failure.
func TestDeterministicScope(t *testing.T) {
	mod, err := loadOnce()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, path := range []string{"kite/internal/sim", "kite/internal/core", "kite/internal/experiments", "kite/internal/timewheel"} {
		if !pkgHasDirective(mod, path, "//kite:deterministic") {
			t.Errorf("%s: package doc lost its //kite:deterministic directive", path)
		}
	}
}

// TestHotPathCoverage asserts that the PV data paths stay annotated: the
// netfront->netback forward path and the blkfront->blkback block path,
// plus the pool fast paths they ride on. Deleting an annotation would
// otherwise pass every test while silently disabling the proof.
func TestHotPathCoverage(t *testing.T) {
	mod, err := loadOnce()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	roots := []struct{ pkg, fn string }{
		{"kite/internal/netfront", "Send"},
		{"kite/internal/netfront", "onEvent"},
		{"kite/internal/netback", "onEvent"},
		{"kite/internal/netback", "Deliver"},
		{"kite/internal/blkfront", "ReadSectorsInto"},
		{"kite/internal/blkfront", "WriteSectors"},
		{"kite/internal/blkfront", "onEvent"},
		{"kite/internal/blkback", "onEvent"},
		{"kite/internal/blkback", "complete"},
		{"kite/internal/framepool", "Get"},
		{"kite/internal/framepool", "Release"},
		{"kite/internal/blkpool", "Get"},
		{"kite/internal/blkpool", "Release"},
		// Fleet O(active) fast paths: the shared-lane active ring, the
		// two-level doorbell bitmap, and the idle-aging timer wheel.
		{"kite/internal/netback", "activate"},
		{"kite/internal/netback", "link"},
		{"kite/internal/netback", "unlink"},
		{"kite/internal/netback", "round"},
		{"kite/internal/blkback", "activate"},
		{"kite/internal/blkback", "link"},
		{"kite/internal/blkback", "unlink"},
		{"kite/internal/blkback", "round"},
		{"kite/internal/xen", "mark"},
		{"kite/internal/xen", "scan"},
		{"kite/internal/xen", "nextPending"},
		{"kite/internal/timewheel", "Add"},
		{"kite/internal/timewheel", "Advance"},
		{"kite/internal/timewheel", "link"},
		{"kite/internal/framepool", "stageRemote"},
	}
	for _, r := range roots {
		if !funcHasDirective(mod, r.pkg, r.fn, "//kite:hotpath") {
			t.Errorf("%s.%s: no //kite:hotpath-annotated declaration found", r.pkg, r.fn)
		}
	}
}

func pkgHasDirective(mod *analysis.Module, path, directive string) bool {
	for _, pkg := range mod.Pkgs {
		if pkg.Path != path {
			continue
		}
		for _, f := range pkg.Files {
			if f.Doc == nil {
				continue
			}
			for _, c := range f.Doc.List {
				if strings.HasPrefix(c.Text, directive) {
					return true
				}
			}
		}
	}
	return false
}

// funcHasDirective reports whether at least one declaration named fn in
// the package carries the directive in its doc comment (method receivers
// are not distinguished; any annotated declaration of that name counts).
func funcHasDirective(mod *analysis.Module, path, fn, directive string) bool {
	for _, pkg := range mod.Pkgs {
		if pkg.Path != path {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Name.Name != fn || decl.Doc == nil {
					continue
				}
				for _, c := range decl.Doc.List {
					if strings.HasPrefix(c.Text, directive) {
						return true
					}
				}
			}
		}
	}
	return false
}
