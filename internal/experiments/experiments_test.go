package experiments

import (
	"strings"
	"testing"
)

// tiny returns a minimal scale for unit tests (benches use Quick()).
func tiny() Scale {
	s := Quick()
	s.NuttcpDur /= 3
	s.PingCount = 8
	s.NetperfTxns = 30
	s.MemtierOps = 60
	s.ABRequests = 20
	s.RedisOps = 600
	s.OLTPDur /= 3
	s.DDBytes = 16 << 20
	s.FileIODur /= 3
	s.FileIOBytes = 32 << 20
	s.FilebenchDur /= 3
	s.Reps = 2
	return s
}

func TestFig4FootprintShape(t *testing.T) {
	res := Fig4Footprint()
	sys := res.Pair("syscalls")
	if sys == nil || sys.Linux/sys.Kite < 10 {
		t.Fatalf("syscall reduction pair = %+v, want >= 10x", sys)
	}
	img := res.Pair("image")
	if img == nil || img.Linux/img.Kite < 9 {
		t.Fatalf("image pair = %+v, want ~10x", img)
	}
	boot := res.Pair("boot")
	if boot == nil || boot.Linux/boot.Kite < 10 {
		t.Fatalf("boot pair = %+v, want >= 10x (claim C1)", boot)
	}
}

func TestFig4cMeasuredBoot(t *testing.T) {
	res := Fig4cBootTime()
	p := res.Pair("boot-to-service")
	if p == nil {
		t.Fatal("missing pair")
	}
	if p.Linux/p.Kite < 10 {
		t.Fatalf("measured boot speedup = %.1fx, want >= 10x", p.Linux/p.Kite)
	}
	if p.Kite < 6.5 || p.Kite > 8 {
		t.Fatalf("kite boot = %.1f s, want ~7", p.Kite)
	}
}

func TestFig1aShape(t *testing.T) {
	res := Fig1aDriverCVEs()
	if res.Table.NumRows() < 5 {
		t.Fatal("too few years")
	}
}

func TestFig1bROPShape(t *testing.T) {
	res := Fig1bFig5ROP()
	def := res.Pair("default/kite")
	if def == nil || def.Linux/def.Kite < 3 {
		t.Fatalf("default/kite gadget ratio too small: %+v", def)
	}
	ubu := res.Pair("ubuntu/kite")
	if ubu == nil || ubu.Linux < 1_000_000 {
		t.Fatalf("ubuntu gadget count = %v, want millions", ubu)
	}
}

func TestTable3Shape(t *testing.T) {
	res := Table3()
	p := res.Pair("mitigated-by-kite")
	if p == nil || p.Kite != 11 {
		t.Fatalf("kite mitigations = %+v, want 11", p)
	}
	if !strings.Contains(res.Table.String(), "CVE-2021-35039") {
		t.Fatal("table missing a CVE row")
	}
}

func TestFig7LatencyShape(t *testing.T) {
	res := Fig7Latency(tiny())
	ping := res.Pair("ping RTT")
	if ping == nil || ping.Kite <= 0 || ping.Linux <= 0 {
		t.Fatalf("ping pair = %+v", ping)
	}
	// Paper's headline: Kite at or below Linux on every latency metric.
	for _, p := range res.Pairs {
		if p.Kite > p.Linux*1.05 {
			t.Fatalf("%s: kite (%.3f) worse than linux (%.3f)", p.Metric, p.Kite, p.Linux)
		}
	}
}

func TestFig6NuttcpShape(t *testing.T) {
	res := Fig6Nuttcp(tiny())
	tp := res.Pair("throughput")
	if tp == nil || !tp.Parity(1.25) {
		t.Fatalf("throughput parity violated: %+v", tp)
	}
	loss := res.Pair("loss")
	if loss == nil || loss.Kite > 20 || loss.Linux > 20 {
		t.Fatalf("loss too high: %+v", loss)
	}
}

func TestFig11DDShape(t *testing.T) {
	res := Fig11DD(tiny())
	for _, metric := range []string{"write", "read"} {
		p := res.Pair(metric)
		if p == nil || !p.Parity(1.3) {
			t.Fatalf("%s parity violated: %+v", metric, p)
		}
		if p.Kite < 200 {
			t.Fatalf("%s = %.0f MB/s, implausibly low", metric, p.Kite)
		}
	}
}

func TestAblationPersistentGrants(t *testing.T) {
	a := AblationPersistentGrants(tiny())
	if a.AuxOn*4 > a.AuxOff {
		t.Fatalf("persistent grants saved too few maps: on=%d off=%d", a.AuxOn, a.AuxOff)
	}
	if a.On < a.Off*0.95 {
		t.Fatalf("persistent grants hurt throughput: on=%.0f off=%.0f", a.On, a.Off)
	}
}

func TestAblationIndirect(t *testing.T) {
	a := AblationIndirectSegments(tiny())
	if a.AuxOn >= a.AuxOff {
		t.Fatalf("indirect did not reduce ring requests: on=%d off=%d", a.AuxOn, a.AuxOff)
	}
}

func TestAblationBatching(t *testing.T) {
	a := AblationBatching(tiny())
	if a.AuxOn >= a.AuxOff {
		t.Fatalf("batching did not reduce device ops: on=%d off=%d", a.AuxOn, a.AuxOff)
	}
}
