package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync" //kite:shardsafe WaitGroup joins whole-simulation legs, never mid-window state
	"sync/atomic"

	"kite/internal/core"
)

// This file is the parallel experiment runner. Every experiment builds its
// own simulated testbed (engines, hypervisor, xenstore, registries are all
// per-System — nothing in the simulation is package-level), so independent
// experiments, and the Linux/Kite rig pair inside each, are embarrassingly
// parallel: each leg is single-threaded and bit-for-bit deterministic on
// its own goroutine, and a bounded worker pool only decides how many legs
// run at once, never what any leg computes.

// Spec names one runnable experiment of the evaluation suite.
type Spec struct {
	ID    string
	Title string
	Run   func(Scale) *Result
}

// Registry returns every experiment of the paper's evaluation (§5) in
// presentation order.
func Registry() []Spec {
	return []Spec{
		{"FIG1A", "driver CVEs per year", func(Scale) *Result { return Fig1aDriverCVEs() }},
		{"FIG1B", "ROP gadget totals", func(Scale) *Result { return Fig1bFig5ROP() }},
		{"FIG4", "footprint (syscalls, image)", func(Scale) *Result { return Fig4Footprint() }},
		{"FIG4C", "boot time", func(Scale) *Result { return Fig4cBootTime() }},
		{"TAB3", "CVE mitigation matrix", func(Scale) *Result { return Table3() }},
		{"FIG6", "nuttcp UDP throughput", Fig6Nuttcp},
		{"FIG7", "network latency", Fig7Latency},
		{"FIG8", "Apache throughput", Fig8Apache},
		{"FIG9", "Redis throughput", Fig9Redis},
		{"FIG10", "MySQL OLTP (network)", Fig10MySQL},
		{"FIG11", "dd sequential", Fig11DD},
		{"FIG12", "sysbench fileio", Fig12FileIO},
		{"FIG13", "MySQL OLTP (storage)", Fig13MySQLStorage},
		{"FIG14", "filebench fileserver", Fig14Fileserver},
		{"FIG15", "filebench MongoDB", Fig15Mongo},
		{"FIG16", "filebench webserver", Fig16Webserver},
		{"DHCP", "DHCP daemon VM latency", DHCPLatency},
	}
}

// Lookup resolves a comma-separated, case-insensitive ID filter against
// the registry, preserving registry order. Unknown IDs are an error naming
// the valid set — a silent empty run hides typos.
func Lookup(only string) ([]Spec, error) {
	all := Registry()
	want := make(map[string]bool)
	for _, id := range strings.Split(strings.ToUpper(only), ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	var specs []Spec
	for _, sp := range all {
		if want[sp.ID] {
			specs = append(specs, sp)
			delete(want, sp.ID)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want { //kite:orderok keys are sorted before use
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		valid := make([]string, len(all))
		for i, sp := range all {
			valid[i] = sp.ID
		}
		return nil, fmt.Errorf("unknown experiment ID(s) %s (valid: %s)",
			strings.Join(unknown, ","), strings.Join(valid, ","))
	}
	return specs, nil
}

// Pool bounds how many experiment legs (whole experiments or one side of a
// Linux/Kite pair) run concurrently.
type Pool struct {
	tokens chan struct{}
}

// NewPool returns a pool admitting up to workers concurrent legs (min 1).
//
//kite:synccore experiment fan-out setup; no simulation state exists yet
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{tokens: make(chan struct{}, workers)}
}

// tryGo runs fn on a spare worker if one is free right now, returning a
// channel that closes when fn finishes. It never blocks: when the pool is
// saturated the caller simply runs the work inline, which is what makes
// nested use (pair inside experiment) deadlock-free.
//
//kite:synccore token admission around legs that each own a whole simulation
func (p *Pool) tryGo(fn func()) (<-chan struct{}, bool) {
	select {
	case p.tokens <- struct{}{}:
	default:
		return nil, false
	}
	done := make(chan struct{})
	go func() { //kite:shardsafe each leg owns its entire simulation; no state crosses until the join
		defer close(done)
		defer func() { <-p.tokens }()
		fn()
	}()
	return done, true
}

// RunAll executes the specs across a pool of workers goroutines and
// returns results in spec order. The scale handed to each experiment
// carries the pool, so the Linux/Kite pair inside an experiment also
// spreads over spare workers. workers <= 1 degenerates to a sequential
// run; any worker count produces byte-identical results because every leg
// owns its whole simulation.
//
//kite:synccore experiment fan-out/join; synchronizes whole legs, never shard state
func RunAll(specs []Spec, s Scale, workers int) []*Result {
	pool := NewPool(workers)
	s.pool = pool
	results := make([]*Result, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		i, sp := i, sp
		// Blocking acquire: at most `workers` experiments in flight.
		pool.tokens <- struct{}{}
		wg.Add(1)
		go func() { //kite:shardsafe each leg owns its entire simulation; results land in distinct slots
			defer wg.Done()
			defer func() { <-pool.tokens }()
			results[i] = sp.Run(s)
		}()
	}
	wg.Wait()
	return results
}

// totalEvents counts simulation events retired by drive() across all
// experiments. It is telemetry only — an atomic counter shared between
// runner goroutines never feeds back into any simulation, so it cannot
// perturb determinism — and powers kitebench's events/sec summary line.
var totalEvents atomic.Uint64

// EventsProcessed returns the simulation events retired by workloads so
// far in this process (rig handshakes excluded).
//
//kite:synccore telemetry read; the counter never feeds back into a simulation
func EventsProcessed() uint64 { return totalEvents.Load() }

// bothKinds evaluates fn for the Linux baseline and the Kite domain,
// concurrently when the scale's pool has a spare worker, and returns both
// results. Each invocation of fn builds and drives a private rig, so the
// two sides share nothing.
//
//kite:synccore pair join; each side owns a private rig until the receive
func bothKinds[T any](s Scale, fn func(kind core.DriverKind) T) (linux, kite T) {
	if s.pool != nil {
		if done, ok := s.pool.tryGo(func() { linux = fn(core.KindLinux) }); ok {
			kite = fn(core.KindKite)
			<-done
			return linux, kite
		}
	}
	return fn(core.KindLinux), fn(core.KindKite)
}
