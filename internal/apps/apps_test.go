package apps

import (
	"bytes"
	"strings"
	"testing"

	"kite/internal/bufpool"
	"kite/internal/fsim"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/nic"
	"kite/internal/sim"
)

func twoHosts(t *testing.T) (*sim.Engine, *netstack.Host, *netstack.Host) {
	t.Helper()
	eng := sim.NewEngine()
	a := netstack.NewHost(eng, netstack.HostConfig{Name: "client", CPUs: 4,
		IP: netpkt.IPv4(10, 0, 0, 2), MAC: netpkt.MAC{2, 0, 0, 0, 0, 1},
		BDF: "81:00.0", Costs: netstack.LinuxGuestCosts(), Seed: 1})
	b := netstack.NewHost(eng, netstack.HostConfig{Name: "server", CPUs: 4,
		IP: netpkt.IPv4(10, 0, 0, 1), MAC: netpkt.MAC{2, 0, 0, 0, 0, 2},
		BDF: "82:00.0", Costs: netstack.LinuxGuestCosts(), Seed: 2})
	nic.Connect(a.NIC, b.NIC, nic.DefaultLink())
	return eng, a, b
}

func TestHTTPServesFile(t *testing.T) {
	eng, client, server := twoHosts(t)
	srv, err := NewHTTPServer(server.Stack, 80)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 100000)
	sim.NewRand(3).Bytes(content)
	srv.AddFile("/file.bin", content)

	var got []byte
	client.Stack.Dial(server.Stack.IP(), 80, func(c *netstack.Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.OnData(func(b []byte) { got = append(got, b...) })
		c.Send([]byte("GET /file.bin HTTP/1.1\r\nHost: server\r\n\r\n"))
	})
	if !eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	s := string(got)
	if !strings.HasPrefix(s, "HTTP/1.1 200 OK\r\n") {
		t.Fatalf("response prefix: %.60q", s)
	}
	idx := strings.Index(s, "\r\n\r\n")
	if !bytes.Equal(got[idx+4:], content) {
		t.Fatal("body corrupted")
	}
	if srv.Requests() != 1 {
		t.Fatal("request not counted")
	}
}

func TestHTTPKeepAliveMultipleRequests(t *testing.T) {
	eng, client, server := twoHosts(t)
	srv, _ := NewHTTPServer(server.Stack, 80)
	srv.AddFile("/a", []byte("AAAA"))
	srv.AddFile("/b", []byte("BB"))

	var got []byte
	client.Stack.Dial(server.Stack.IP(), 80, func(c *netstack.Conn, err error) {
		c.OnData(func(b []byte) { got = append(got, b...) })
		c.Send([]byte("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /missing HTTP/1.1\r\n\r\n"))
	})
	if !eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	s := string(got)
	if strings.Count(s, "200 OK") != 2 || strings.Count(s, "404") != 1 {
		t.Fatalf("pipelined responses wrong: %q", s)
	}
	if !strings.Contains(s, "AAAA") || !strings.Contains(s, "BB") {
		t.Fatal("bodies missing")
	}
}

func TestKVSetGet(t *testing.T) {
	eng, client, server := twoHosts(t)
	srv, err := NewKVServer(server.Stack, 6379)
	if err != nil {
		t.Fatal(err)
	}
	value := make([]byte, 8192)
	sim.NewRand(7).Bytes(value)

	var got []byte
	client.Stack.Dial(server.Stack.IP(), 6379, func(c *netstack.Conn, err error) {
		c.OnData(func(b []byte) { got = append(got, b...) })
		req := append(EncodeSet("k1", value), EncodeGet("k1")...)
		req = append(req, EncodeGet("nope")...)
		c.Send(req)
	})
	if !eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	s := string(got)
	if !strings.HasPrefix(s, "OK\r\nVALUE 8192\r\n") {
		t.Fatalf("reply prefix: %.40q", s)
	}
	if !strings.HasSuffix(s, "NIL\r\n") {
		t.Fatalf("miss not NIL: %.40q", s[len(s)-20:])
	}
	body := got[len("OK\r\nVALUE 8192\r\n") : len("OK\r\nVALUE 8192\r\n")+8192]
	if !bytes.Equal(body, value) {
		t.Fatal("value corrupted")
	}
	sets, gets, misses := srv.Counts()
	if sets != 1 || gets != 2 || misses != 1 {
		t.Fatalf("counts = %d/%d/%d", sets, gets, misses)
	}
}

func TestKVPipelineMany(t *testing.T) {
	eng, client, server := twoHosts(t)
	srv, _ := NewKVServer(server.Stack, 6379)
	const n = 200
	var req []byte
	for i := 0; i < n; i++ {
		req = append(req, EncodeSet("key", []byte("v"))...)
	}
	replies := 0
	client.Stack.Dial(server.Stack.IP(), 6379, func(c *netstack.Conn, err error) {
		c.OnData(func(b []byte) { replies += bytes.Count(b, []byte("OK\r\n")) })
		c.Send(req)
	})
	if !eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	if replies != n {
		t.Fatalf("%d of %d pipelined replies", replies, n)
	}
	if sets, _, _ := srv.Counts(); sets != n {
		t.Fatalf("sets = %d", sets)
	}
}

func TestSQLMemoryMode(t *testing.T) {
	eng := sim.NewEngine()
	cpus := sim.NewCPUPool(eng, "domU", 4)
	db, err := NewSQLDB(eng, cpus, SQLConfig{Tables: 10, Rows: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if db.DataBytes() != 10*1_000_000*RowSize {
		t.Fatalf("dataset = %d", db.DataBytes())
	}
	var row []byte
	db.PointSelect(3, 500, func(b []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		row = b
	})
	var rng []byte
	db.RangeSelect(0, 10, 100, func(b []byte, err error) { rng = b })
	eng.Run()
	if len(row) != RowSize || len(rng) != 100*RowSize {
		t.Fatalf("row=%d range=%d", len(row), len(rng))
	}
	if q, rows := db.Queries(); q != 2 || rows != 101 {
		t.Fatalf("queries=%d rows=%d", q, rows)
	}
}

type memDisk struct {
	eng  *sim.Engine
	data []byte
}

func (d *memDisk) ReadSectors(sector int64, n int, cb func([]byte, error)) {
	out := make([]byte, n)
	copy(out, d.data[sector*512:])
	d.eng.After(20*sim.Microsecond, func() { cb(out, nil) })
}
func (d *memDisk) ReadSectorsInto(sector int64, dst []byte, cb func(error)) {
	copy(dst, d.data[sector*512:])
	d.eng.After(20*sim.Microsecond, func() { cb(nil) })
}
func (d *memDisk) WriteSectors(sector int64, data []byte, cb func(error)) {
	copy(d.data[sector*512:], data)
	d.eng.After(20*sim.Microsecond, func() { cb(nil) })
}
func (d *memDisk) Flush(cb func(error)) { d.eng.After(20*sim.Microsecond, func() { cb(nil) }) }
func (d *memDisk) SectorCount() int64   { return int64(len(d.data) / 512) }

func TestSQLDiskModeMissesToStorage(t *testing.T) {
	eng := sim.NewEngine()
	cpus := sim.NewCPUPool(eng, "domU", 4)
	disk := &memDisk{eng: eng, data: make([]byte, 64<<20)}
	pool := bufpool.New(eng, disk, bufpool.Config{CapacityBytes: 1 << 20})
	db, err := NewSQLDB(eng, cpus, SQLConfig{Tables: 4, Rows: 50_000, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	rng := sim.NewRand(5)
	for i := 0; i < 200; i++ {
		db.PointSelect(rng.Intn(4), rng.Int63n(50_000), func(_ []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			done++
		})
	}
	eng.Run()
	if done != 200 {
		t.Fatalf("%d of 200 selects", done)
	}
	if pool.Stats().Misses == 0 {
		t.Fatal("working set larger than cache produced no misses")
	}
}

func TestSQLServerWireProtocol(t *testing.T) {
	eng, client, server := twoHosts(t)
	db, _ := NewSQLDB(eng, server.CPUs, SQLConfig{Tables: 2, Rows: 1000})
	if _, err := NewSQLServer(server.Stack, 3306, db); err != nil {
		t.Fatal(err)
	}
	var got []byte
	client.Stack.Dial(server.Stack.IP(), 3306, func(c *netstack.Conn, err error) {
		c.OnData(func(b []byte) { got = append(got, b...) })
		c.Send([]byte("P 1 42\nR 0 5 10\nbogus\n"))
	})
	if !eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	s := string(got)
	// Error replies are synchronous while query replies complete async,
	// so assert contents rather than ordering.
	if !strings.Contains(s, "D 200\n") {
		t.Fatalf("point reply missing: %.40q", s)
	}
	if !strings.Contains(s, "D 2000\n") {
		t.Fatal("range reply missing")
	}
	if !strings.Contains(s, "E bad query") {
		t.Fatal("bad query not rejected")
	}
}

func TestDocStoreRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	disk := &memDisk{eng: eng, data: make([]byte, 64<<20)}
	pool := bufpool.New(eng, disk, bufpool.Config{CapacityBytes: 16 << 20})
	fs := fsim.New(eng, pool, nil, fsim.DefaultCosts())
	cpus := sim.NewCPUPool(eng, "domU", 2)
	ds := NewDocStore(eng, fs, cpus)

	var got []byte
	ds.Insert(7, 4<<20, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		ds.Read(7, func(doc []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = doc
		})
	})
	eng.Run()
	if len(got) != 4<<20 {
		t.Fatalf("doc size = %d", len(got))
	}
	if ins, rd := ds.Ops(); ins != 1 || rd != 1 {
		t.Fatalf("ops = %d/%d", ins, rd)
	}
}

func TestDHCPMessageRoundTrip(t *testing.T) {
	m := &DHCPMessage{
		Op: 1, XID: 0xdeadbeef, ClientMAC: netpkt.XenMAC(3, 0),
		MsgType: DHCPRequest, RequestedIP: netpkt.IPv4(10, 0, 0, 100), LeaseSecs: 3600,
	}
	g, err := ParseDHCP(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.XID != m.XID || g.MsgType != m.MsgType || g.RequestedIP != m.RequestedIP ||
		g.ClientMAC != m.ClientMAC || g.LeaseSecs != 3600 {
		t.Fatalf("round trip: %+v", g)
	}
}

func TestDHCPMessageValidation(t *testing.T) {
	if _, err := ParseDHCP(make([]byte, 100)); err == nil {
		t.Fatal("short message parsed")
	}
	b := (&DHCPMessage{Op: 1, MsgType: DHCPDiscover}).Marshal()
	b[237] = 0 // break magic
	if _, err := ParseDHCP(b); err == nil {
		t.Fatal("bad magic parsed")
	}
}

func TestDHCPDORAExchange(t *testing.T) {
	eng, client, server := twoHosts(t)
	srv, err := NewDHCPServer(server.Stack, netpkt.IPv4(10, 0, 0, 100), 50)
	if err != nil {
		t.Fatal(err)
	}
	mac := client.NIC.MAC()
	var offered, acked netpkt.IP
	client.Stack.BindUDP(DHCPClientPort, func(p netstack.UDPPacket) {
		m, err := ParseDHCP(p.Data)
		if err != nil || m.ClientMAC != mac {
			return
		}
		switch m.MsgType {
		case DHCPOffer:
			offered = m.YourIP
			req := &DHCPMessage{Op: 1, XID: 2, ClientMAC: mac, MsgType: DHCPRequest, RequestedIP: m.YourIP}
			client.Stack.SendUDP(netpkt.BroadcastIP, DHCPServerPort, DHCPClientPort, req.Marshal())
		case DHCPAck:
			acked = m.YourIP
		}
	})
	disc := &DHCPMessage{Op: 1, XID: 1, ClientMAC: mac, MsgType: DHCPDiscover}
	client.Stack.SendUDP(netpkt.BroadcastIP, DHCPServerPort, DHCPClientPort, disc.Marshal())
	if !eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	if offered != netpkt.IPv4(10, 0, 0, 100) || acked != offered {
		t.Fatalf("DORA: offered=%v acked=%v", offered, acked)
	}
	offers, acks, naks := srv.Counts()
	if offers != 1 || acks != 1 || naks != 0 {
		t.Fatalf("server counts = %d/%d/%d", offers, acks, naks)
	}
}

func TestDHCPNakForForeignRequest(t *testing.T) {
	eng, client, server := twoHosts(t)
	srv, _ := NewDHCPServer(server.Stack, netpkt.IPv4(10, 0, 0, 100), 50)
	naked := false
	client.Stack.BindUDP(DHCPClientPort, func(p netstack.UDPPacket) {
		if m, err := ParseDHCP(p.Data); err == nil && m.MsgType == DHCPNak {
			naked = true
		}
	})
	// REQUEST without a prior lease.
	req := &DHCPMessage{Op: 1, XID: 9, ClientMAC: client.NIC.MAC(),
		MsgType: DHCPRequest, RequestedIP: netpkt.IPv4(10, 0, 0, 150)}
	client.Stack.SendUDP(netpkt.BroadcastIP, DHCPServerPort, DHCPClientPort, req.Marshal())
	if !eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	if !naked {
		t.Fatal("no NAK for unleased request")
	}
	if _, _, naks := srv.Counts(); naks != 1 {
		t.Fatal("nak not counted")
	}
}

func TestDHCPPoolExhaustion(t *testing.T) {
	eng, client, server := twoHosts(t)
	srv, _ := NewDHCPServer(server.Stack, netpkt.IPv4(10, 0, 0, 100), 2)
	for i := 0; i < 4; i++ {
		disc := &DHCPMessage{Op: 1, XID: uint32(i), ClientMAC: netpkt.XenMAC(uint16(i), 9), MsgType: DHCPDiscover}
		client.Stack.SendUDP(netpkt.BroadcastIP, DHCPServerPort, DHCPClientPort, disc.Marshal())
	}
	if !eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	offers, _, _ := srv.Counts()
	if offers != 2 || srv.Leases() != 2 {
		t.Fatalf("offers=%d leases=%d, want 2/2", offers, srv.Leases())
	}
}
