// Package evblock exercises the kitelint event-handler blocking check:
// callbacks registered on the event machinery may not block the
// simulation goroutine or re-enter the scheduler.
package evblock

import (
	"sync"
	"time"

	"kite/internal/sim"
	"kite/internal/xen"
)

type server struct {
	mu  sync.Mutex
	ch  chan int
	eng *sim.Engine
}

func (s *server) install(d *xen.Domain, port xen.Port) {
	_ = d.SetHandler(port, s.onEvent)
	s.eng.Schedule(0, func() {
		s.ch <- 1 // want `sends on a channel`
	})
	s.eng.After(0, s.tick)
}

func (s *server) onEvent() {
	s.mu.Lock() // want `calls blocking \(\*sync\.Mutex\)\.Lock`
	defer s.mu.Unlock()
	s.drain()
}

// drain is reached transitively from the registered handler.
func (s *server) drain() {
	for v := range s.ch { // want `ranges over a channel`
		_ = v
	}
}

func (s *server) tick() {
	time.Sleep(time.Millisecond) // want `calls blocking time\.Sleep`
	s.eng.Step()                 // want `re-enters the scheduler via Step`
	go s.nop()                   // want `launches a goroutine`
}

func (s *server) nop() {}

// offPath is never registered as a handler; blocking here is fine.
func (s *server) offPath() {
	<-s.ch
}
