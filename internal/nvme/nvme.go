// Package nvme models the testbed's NVMe SSD (Samsung 970 EVO Plus 500 GB,
// Table 2): a block device with multiple parallel channels, per-command
// base latency, and direction-dependent bandwidth caps. Data is stored for
// real (sparse 4 KiB blocks), so storage-path tests verify end-to-end
// integrity, not just timing.
package nvme

import (
	"fmt"

	"kite/internal/sim"
)

// SectorSize is the logical block size.
const SectorSize = 512

// blockSize is the sparse-store granularity.
const blockSize = 4096

// Op is a device command type.
type Op int

// Command types.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Config describes the device.
type Config struct {
	Name          string
	CapacityBytes int64
	Channels      int      // parallel flash channels (queue-depth parallelism)
	ReadLatency   sim.Time // per-command base
	WriteLatency  sim.Time // per-command base (write cache absorbs)
	FlushLatency  sim.Time
	ReadBps       int64 // sustained read bandwidth
	WriteBps      int64 // sustained write bandwidth
	// RandomPenalty is added to a command's completion latency when it
	// does not continue the previous command's LBA range (flash
	// translation + NAND page open). It overlaps across queued commands —
	// parallel random I/O scales until the bus saturates.
	RandomPenalty sim.Time
	// CmdOverhead is per-command time on the shared bus (submission,
	// doorbell, completion) that does NOT overlap — what makes many small
	// commands slower than one merged command (§3.3's batching win).
	CmdOverhead sim.Time
}

// Default970EvoPlus returns the testbed device model.
func Default970EvoPlus() Config {
	return Config{
		Name:          "nvme0n1",
		CapacityBytes: 500 << 30,
		Channels:      8,
		ReadLatency:   65 * sim.Microsecond,
		WriteLatency:  20 * sim.Microsecond,
		FlushLatency:  150 * sim.Microsecond,
		ReadBps:       3_500_000_000,
		WriteBps:      3_200_000_000,
		RandomPenalty: 260 * sim.Microsecond,
		CmdOverhead:   8 * sim.Microsecond,
	}
}

// Stats counts device activity.
type Stats struct {
	ReadOps, WriteOps, FlushOps uint64
	ReadBytes, WriteBytes       uint64
}

// Device is the simulated SSD.
type Device struct {
	eng *sim.Engine
	cfg Config
	bdf string

	blocks map[int64][]byte // sparse store
	// busBusyUntil serializes data transfers: bandwidth is a device-wide
	// resource. Per-command base latency overlaps across commands
	// (channel/queue parallelism).
	busBusyUntil sim.Time
	lastEnd      int64 // sector following the previous command (seq detection)
	stats        Stats
}

// New creates a device with the given PCI BDF.
func New(eng *sim.Engine, cfg Config, bdf string) *Device {
	return &Device{
		eng:    eng,
		cfg:    cfg,
		bdf:    bdf,
		blocks: make(map[int64][]byte),
	}
}

// BDF returns the PCI address for passthrough assignment.
func (d *Device) BDF() string { return d.bdf }

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// CapacitySectors returns the number of logical sectors.
func (d *Device) CapacitySectors() int64 { return d.cfg.CapacityBytes / SectorSize }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// completionTime books the data transfer on the shared bus and returns
// when the command finishes (transfer end plus overlappable base latency).
// Non-sequential commands pay the random-access penalty on the bus.
func (d *Device) completionTime(op Op, sector int64, n int) sim.Time {
	var bps int64
	var lat sim.Time
	if op == OpRead {
		bps, lat = d.cfg.ReadBps, d.cfg.ReadLatency
	} else {
		bps, lat = d.cfg.WriteBps, d.cfg.WriteLatency
	}
	start := d.eng.Now()
	if d.busBusyUntil > start {
		start = d.busBusyUntil
	}
	xfer := d.cfg.CmdOverhead + sim.Time(int64(n)*int64(sim.Second)/bps)
	if sector != d.lastEnd {
		lat += d.cfg.RandomPenalty
	}
	d.lastEnd = sector + int64(n/SectorSize)
	d.busBusyUntil = start + xfer
	return d.busBusyUntil + lat
}

// Read reads n bytes starting at sector into a fresh buffer; cb fires at
// command completion.
func (d *Device) Read(sector int64, n int, cb func(data []byte, err error)) {
	if err := d.check(sector, n); err != nil {
		d.eng.After(0, func() { cb(nil, err) })
		return
	}
	d.stats.ReadOps++
	d.stats.ReadBytes += uint64(n)
	done := d.completionTime(OpRead, sector, n)
	d.eng.Schedule(done, func() { cb(d.readBytes(sector, n), nil) })
}

// Write stores data at sector; cb fires at command completion.
func (d *Device) Write(sector int64, data []byte, cb func(err error)) {
	if err := d.check(sector, len(data)); err != nil {
		d.eng.After(0, func() { cb(err) })
		return
	}
	d.stats.WriteOps++
	d.stats.WriteBytes += uint64(len(data))
	// Writes land in the store immediately (write cache); timing models
	// the command completion.
	d.writeBytes(sector, data)
	done := d.completionTime(OpWrite, sector, len(data))
	d.eng.Schedule(done, func() { cb(nil) })
}

// Flush completes when all in-flight commands have drained.
func (d *Device) Flush(cb func(err error)) {
	d.stats.FlushOps++
	latest := d.eng.Now()
	if d.busBusyUntil > latest {
		latest = d.busBusyUntil
	}
	// The flush must also outlast the base latency of in-flight writes.
	latest += d.cfg.WriteLatency
	d.eng.Schedule(latest+d.cfg.FlushLatency, func() { cb(nil) })
}

func (d *Device) check(sector int64, n int) error {
	if sector < 0 || n < 0 || (sector*SectorSize)+int64(n) > d.cfg.CapacityBytes {
		return fmt.Errorf("nvme: access beyond device (sector %d, %d bytes)", sector, n)
	}
	if n%SectorSize != 0 {
		return fmt.Errorf("nvme: unaligned length %d", n)
	}
	return nil
}

func (d *Device) readBytes(sector int64, n int) []byte {
	out := make([]byte, n)
	off := sector * SectorSize
	for i := 0; i < n; {
		blk := (off + int64(i)) / blockSize
		in := int((off + int64(i)) % blockSize)
		run := blockSize - in
		if run > n-i {
			run = n - i
		}
		if b := d.blocks[blk]; b != nil {
			copy(out[i:i+run], b[in:in+run])
		}
		i += run
	}
	return out
}

func (d *Device) writeBytes(sector int64, data []byte) {
	off := sector * SectorSize
	for i := 0; i < len(data); {
		blk := (off + int64(i)) / blockSize
		in := int((off + int64(i)) % blockSize)
		run := blockSize - in
		if run > len(data)-i {
			run = len(data) - i
		}
		b := d.blocks[blk]
		if b == nil {
			b = make([]byte, blockSize)
			d.blocks[blk] = b
		}
		copy(b[in:in+run], data[i:i+run])
		i += run
	}
}
