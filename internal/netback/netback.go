// Package netback implements the network backend driver of a driver
// domain — the component Kite had to build from scratch (Table 1, 2791
// LOC). Each VIF instance serves one netfront: the Tx path drains
// guest-originated frames to the bridge via a dedicated *pusher* thread,
// and the Rx path copies bridge-delivered frames into posted guest buffers
// via a dedicated *soft_start* thread, so the event handler itself never
// monopolizes the CPU (§3.2, §4.2). Two cost profiles exist: KiteCosts
// (rumprun threads) and LinuxCosts (softirq + kthread path).
//
// Frames move through pooled buffers end to end: guest Tx frames are
// grant-copied straight into a framepool.Buf handed to the bridge, and
// bridge-delivered Rx frames are copied from their Buf into guest-posted
// pages — through a persistent-grant mapping cache mirroring blkback §3.3,
// so steady-state Rx skips the per-burst hypercall entirely.
package netback

import (
	"fmt"

	"kite/internal/bridge"
	"kite/internal/framepool"
	"kite/internal/metrics"
	"kite/internal/netif"
	"kite/internal/sim"
	"kite/internal/xen"
)

// Costs parameterizes the backend's software path per OS.
type Costs struct {
	PerPacketTx sim.Time // guest→world processing per frame (beyond copies)
	PerPacketRx sim.Time // world→guest processing per frame (beyond copies)
	WakeLatency sim.Time // handler→worker-thread dispatch latency
	// InHandler disables the dedicated threads and processes rings inside
	// the event handler itself — the design the paper rejects (§3.2); kept
	// as an ablation knob.
	InHandler bool
	// PersistentRx caches grant mappings of the frontend's (recycled) Rx
	// pages so steady-state guest-bound copies are plain memcpys instead of
	// grant-copy hypercalls — the §3.3 persistent-grant idea applied to the
	// network Rx path. Enabled in both profiles (like blkback's cache).
	PersistentRx bool
	// RxQueueFrames bounds the guest-bound queue; overflow drops (this is
	// where UDP overload loss materializes).
	RxQueueFrames int
}

// KiteCosts returns the rumprun backend profile: cheap cooperative thread
// wakeups, lean NetBSD driver path.
func KiteCosts() Costs {
	return Costs{
		// Per-frame path tuned so a single-vCPU domain forwards ~7.3 Gbps
		// of MTU frames — the bottleneck Figure 6 measures.
		PerPacketTx:   450 * sim.Nanosecond,
		PerPacketRx:   450 * sim.Nanosecond,
		WakeLatency:   2 * sim.Microsecond,
		PersistentRx:  true,
		RxQueueFrames: 2048,
	}
}

// LinuxCosts returns the Ubuntu driver-domain profile: softirq + kthread
// scheduling on the wake path and a heavier per-frame path (netfilter
// hooks, qdisc, skb management).
func LinuxCosts() Costs {
	return Costs{
		PerPacketTx:   470 * sim.Nanosecond,
		PerPacketRx:   470 * sim.Nanosecond,
		WakeLatency:   9 * sim.Microsecond,
		PersistentRx:  true,
		RxQueueFrames: 2048,
	}
}

// Stats counts per-VIF activity.
type Stats struct {
	TxFrames, TxBytes uint64 // guest -> world
	RxFrames, RxBytes uint64 // world -> guest
	RxQueueDrops      uint64
	RxNoBufDrops      uint64
	TxErrors          uint64
	// RxPersistHits/Misses count Rx grant resolutions served from /
	// added to the persistent mapping cache.
	RxPersistHits   uint64
	RxPersistMisses uint64
}

// VIF is one netback instance: the virtual interface paired with exactly
// one netfront (§3.2: one instance per virtual channel).
type VIF struct {
	eng      *sim.Engine
	dom      *xen.Domain // the driver domain
	frontDom xen.DomID
	name     string
	costs    Costs
	pool     *framepool.Pool

	ch   *netif.Channel
	port xen.Port
	br   *bridge.Bridge

	pusher    *sim.Task
	softStart *sim.Task

	rxQueue sim.FIFO[*framepool.Buf]

	// pgrants caches mappings of the frontend's Rx grant refs (which the
	// frontend recycles for the device's lifetime), keyed by ref.
	pgrants map[xen.GrantRef]*xen.Mapping

	// Reusable batch scratch: request/op/buffer slices grow to the burst
	// high-water mark and are then reused forever (zero steady-state
	// allocations per burst).
	txReqs []netif.TxRequest
	rxReqs []netif.RxRequest
	ops    []xen.CopyOp
	bufs   []*framepool.Buf

	// txPending holds bridge-bound frames whose hypervisor copy has been
	// issued; txDone flushes them when the copy matures. One coalesced
	// event covers a whole pusher burst instead of one event per frame.
	txPending sim.FIFO[timedFrame]
	txDone    *sim.Batch

	dead  bool
	down  bool // administratively down (ifconfig vifX.Y down)
	stats Stats
}

// timedFrame is a frame due for bridge input at a virtual time; the FIFO
// holds one buffer reference per entry.
type timedFrame struct {
	at    sim.Time
	frame *framepool.Buf
}

// NewVIF creates a connected netback instance. The caller (the backend
// driver) has already read ring refs and the event channel from xenstore;
// here the rings are mapped (hypercalls charged) and the event channel is
// bound.
func NewVIF(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *netif.Channel, frontPort xen.Port, br *bridge.Bridge, costs Costs,
	pool *framepool.Pool) (*VIF, error) {

	if pool == nil {
		pool = framepool.New()
	}
	v := &VIF{
		eng:      eng,
		dom:      dom,
		frontDom: frontDom,
		name:     fmt.Sprintf("vif%d.%d", frontDom, devid),
		costs:    costs,
		pool:     pool,
		ch:       ch,
		br:       br,
		pgrants:  make(map[xen.GrantRef]*xen.Mapping),
	}
	// Map the two ring pages (2 map hypercalls, charged to the backend).
	dom.CPUs.Charge(dom.Hypervisor().Costs.Base + 2*dom.Hypervisor().Costs.GrantMapPage)

	port, err := dom.BindInterdomain(frontDom, frontPort)
	if err != nil {
		return nil, fmt.Errorf("netback: %s: %w", v.name, err)
	}
	v.port = port
	if err := dom.SetHandler(port, v.onEvent); err != nil {
		return nil, err
	}

	// Per-VIF workers spread across the domain's vCPUs (§3.1: multicore
	// driver domains scale to several guests/NICs).
	cpu := dom.CPUs.CPU(int(frontDom) % dom.CPUs.Len())
	v.pusher = sim.NewTask(eng, cpu, v.name+"/pusher", costs.WakeLatency, v.drainTx)
	v.softStart = sim.NewTask(eng, cpu, v.name+"/soft_start", costs.WakeLatency, v.drainRx)
	v.txDone = sim.NewBatch(eng, v.flushTx)
	return v, nil
}

// Name returns the VIF name (vif<dom>.<dev>).
func (v *VIF) Name() string { return v.name }

// PortName implements bridge.Port.
func (v *VIF) PortName() string { return v.name }

// Stats returns a snapshot of the counters.
func (v *VIF) Stats() Stats { return v.stats }

// SetInHandler toggles the in-handler processing ablation on a live VIF.
func (v *VIF) SetInHandler(on bool) { v.costs.InHandler = on }

// SetUp sets the interface's administrative state (ifconfig up/down): a
// downed VIF forwards no traffic in either direction.
func (v *VIF) SetUp(up bool) { v.down = !up }

// Up reports the administrative state.
func (v *VIF) Up() bool { return !v.down }

// PusherRuns exposes thread activity for the threaded-model ablation.
func (v *VIF) PusherRuns() (wakes, runs uint64) { return v.pusher.Wakes(), v.pusher.Runs() }

// Shutdown quiesces the instance (backend teardown or domain restart):
// queued frames are released, persistent Rx mappings are unmapped.
func (v *VIF) Shutdown() {
	if v.dead {
		return
	}
	v.dead = true
	_ = v.dom.Close(v.port)
	for v.rxQueue.Len() > 0 {
		v.rxQueue.Pop().Release()
	}
	for v.txPending.Len() > 0 {
		v.txPending.Pop().frame.Release()
	}
	if len(v.pgrants) > 0 {
		ms := make([]*xen.Mapping, 0, len(v.pgrants))
		for _, m := range v.pgrants {
			if m.Live() {
				ms = append(ms, m)
			}
		}
		_ = v.dom.Hypervisor().UnmapGrantBatch(v.dom, ms)
		v.pgrants = make(map[xen.GrantRef]*xen.Mapping)
	}
}

// onEvent is the frontend notification handler. Per the paper's design it
// only wakes the worker threads — unless the InHandler ablation is active,
// in which case the rings are drained right here, blocking further
// notifications for the duration.
func (v *VIF) onEvent() {
	if v.dead {
		return
	}
	if v.costs.InHandler {
		v.drainTx()
		v.drainRx()
		return
	}
	if v.ch.Tx.RequestAvailable() {
		v.pusher.Wake()
	}
	if v.rxQueue.Len() > 0 && v.ch.Rx.RequestAvailable() {
		v.softStart.Wake()
	}
}

// drainTx is the pusher thread body: move guest frames to the bridge. Each
// frame is grant-copied once, directly into a pooled buffer that then
// travels the bridge/NAT/NIC path.
func (v *VIF) drainTx() {
	if v.dead || v.down {
		return
	}
	hv := v.dom.Hypervisor()
	for {
		// Gather a batch of requests into the reusable scratch.
		reqs := v.txReqs[:0]
		for {
			req, ok := v.ch.Tx.TakeRequest()
			if !ok {
				break
			}
			reqs = append(reqs, req)
		}
		v.txReqs = reqs[:0]
		if len(reqs) == 0 {
			if v.ch.Tx.FinalCheckForRequests() {
				continue
			}
			break
		}
		// One batched hypervisor copy for the whole run of requests, each
		// landing in its own pooled buffer. bufs[i] is nil for a request
		// rejected up front (malformed length).
		ops := v.ops[:0]
		bufs := v.bufs[:0]
		for _, req := range reqs {
			if req.Len < 0 || req.Len > framepool.MaxFrame {
				bufs = append(bufs, nil)
				continue
			}
			b := v.pool.Get()
			ops = append(ops, xen.CopyOp{
				Src: xen.CopyPtr{Dom: v.frontDom, Ref: req.Ref, Offset: req.Offset},
				Dst: xen.CopyPtr{Data: b.Extend(req.Len)},
				Len: req.Len,
			})
			bufs = append(bufs, b)
		}
		err := hv.CopyGrant(v.dom, ops)
		done := v.dom.CPUs.Charge(sim.Time(len(reqs)) * v.costs.PerPacketTx)
		for i, req := range reqs {
			status := int8(netif.StatusOK)
			b := bufs[i]
			if b == nil || err != nil {
				status = netif.StatusError
				v.stats.TxErrors++
				if b != nil {
					b.Release()
				}
			} else {
				v.stats.TxFrames++
				v.stats.TxBytes += uint64(req.Len)
				v.txPending.Push(timedFrame{at: done, frame: b})
			}
			v.ch.Tx.PushResponse(netif.TxResponse{ID: req.ID, Status: status})
		}
		v.ops = ops[:0]
		v.bufs = bufs[:0]
		clearBufs(bufs)
		// One coalesced wake delivers the whole burst to the bridge when
		// the batched copy and per-frame processing complete.
		if v.txPending.Len() > 0 {
			v.txDone.Arm(done)
		}
		if v.ch.Tx.PushResponsesAndCheckNotify() {
			v.dom.Notify(v.port)
		}
	}
}

// clearBufs zeroes the recycled scratch slots so the scratch slice does not
// pin buffers that have already been handed off or released.
func clearBufs(bufs []*framepool.Buf) {
	for i := range bufs {
		bufs[i] = nil
	}
}

// flushTx hands every matured guest frame to the bridge in FIFO order and
// re-arms for the next burst still in flight.
func (v *VIF) flushTx() {
	if v.dead {
		return
	}
	now := v.eng.Now()
	for v.txPending.Len() > 0 && v.txPending.Peek().at <= now {
		v.br.Input(v, v.txPending.Pop().frame)
	}
	if p := v.txPending.Peek(); p != nil {
		v.txDone.Arm(p.at)
	}
}

// Deliver implements bridge.Port: queue a guest-bound frame (consuming the
// bridge's reference) and wake the soft_start thread.
func (v *VIF) Deliver(frame *framepool.Buf) {
	if v.dead || v.down {
		frame.Release()
		return
	}
	if v.rxQueue.Len() >= v.costs.RxQueueFrames {
		v.stats.RxQueueDrops++
		frame.Release()
		return
	}
	v.rxQueue.Push(frame)
	if v.costs.InHandler {
		v.drainRx()
		return
	}
	v.softStart.Wake()
}

// drainRx is the soft_start thread body: copy queued frames into posted
// guest Rx buffers, preferring the persistent mapping cache.
func (v *VIF) drainRx() {
	if v.dead {
		return
	}
	hv := v.dom.Hypervisor()
	notify := false
	for v.rxQueue.Len() > 0 {
		batch := v.bufs[:0]
		reqs := v.rxReqs[:0]
		for v.rxQueue.Len() > 0 {
			req, ok := v.ch.Rx.TakeRequest()
			if !ok {
				break
			}
			reqs = append(reqs, req)
			batch = append(batch, v.rxQueue.Pop())
		}
		v.rxReqs = reqs[:0]
		if len(reqs) == 0 {
			v.bufs = batch[:0]
			// No posted buffers. Re-arm the request event threshold before
			// sleeping, or the frontend's next buffer post would suppress
			// its notification and strand the queued frames forever.
			if v.ch.Rx.FinalCheckForRequests() {
				continue
			}
			break
		}
		// Copy each frame into its guest page: through the persistent
		// mapping when cached (plain memcpy), falling back to a batched
		// grant copy for uncached refs.
		ops := v.ops[:0]
		var memcpyBytes int
		for i, frame := range batch {
			if m := v.rxMapping(reqs[i].Ref); m != nil {
				copy(m.Page.Data[:frame.Len()], frame.Bytes())
				memcpyBytes += frame.Len()
				continue
			}
			ops = append(ops, xen.CopyOp{
				Src: xen.CopyPtr{Data: frame.Bytes()},
				Dst: xen.CopyPtr{Dom: v.frontDom, Ref: reqs[i].Ref},
				Len: frame.Len(),
			})
		}
		err := hv.CopyGrant(v.dom, ops)
		cost := sim.Time(len(reqs)) * v.costs.PerPacketRx
		cost += sim.Time(memcpyBytes) * hv.Costs.CopyBytePerKB / 1024
		v.dom.CPUs.Charge(cost)
		for i, req := range reqs {
			status := int8(netif.StatusOK)
			if err != nil {
				status = netif.StatusError
			} else {
				v.stats.RxFrames++
				v.stats.RxBytes += uint64(batch[i].Len())
			}
			v.ch.Rx.PushResponse(netif.RxResponse{ID: req.ID, Offset: 0, Len: batch[i].Len(), Status: status})
			batch[i].Release()
		}
		v.ops = ops[:0]
		v.bufs = batch[:0]
		clearBufs(batch)
		if v.ch.Rx.PushResponsesAndCheckNotify() {
			notify = true
		}
	}
	if notify {
		v.dom.Notify(v.port)
	}
}

// rxMapping resolves an Rx grant ref through the persistent cache,
// mirroring blkback's mapRef: a hit costs nothing (the page stays mapped),
// a miss pays one map hypercall and populates the cache. Returns nil when
// persistence is disabled or the map fails (caller falls back to a grant
// copy).
func (v *VIF) rxMapping(ref xen.GrantRef) *xen.Mapping {
	if !v.costs.PersistentRx {
		return nil
	}
	if m := v.pgrants[ref]; m != nil && m.Live() {
		v.stats.RxPersistHits++
		metrics.NetRxPersistHits.Add(1)
		return m
	}
	m, err := v.dom.Hypervisor().MapGrant(v.dom, v.frontDom, ref)
	if err != nil {
		return nil
	}
	v.stats.RxPersistMisses++
	metrics.NetRxPersistMisses.Add(1)
	v.pgrants[ref] = m
	return m
}
