package sim

// Task models a wakeable kernel thread with run-to-completion semantics —
// the execution model Kite uses inside rumprun's non-preemptive scheduler.
// An event handler calls Wake; the body runs once per wake batch on the
// owning CPU and is expected to drain whatever queue it serves. Wakes that
// arrive while the body is running coalesce into exactly one re-run, which
// is the same "wake only if sleeping" behaviour the paper describes for the
// pusher and soft_start threads.
type Task struct {
	eng  *Engine
	cpu  *CPU
	name string
	body func()
	runF func() // cached t.run method value; scheduling it never allocates

	wakeLatency Time // handler-to-thread dispatch latency (scheduler cost)

	scheduled bool // a run is queued but not started
	running   bool // body currently executing
	rewake    bool // Wake arrived while running
	wakes     uint64
	runs      uint64
}

// NewTask creates a task whose body runs on cpu each time it is woken.
// wakeLatency is the scheduling delay between Wake and the body starting
// (dispatch/IPI/scheduler cost of the hosting OS).
func NewTask(eng *Engine, cpu *CPU, name string, wakeLatency Time, body func()) *Task {
	if body == nil {
		panic("sim: task needs a body")
	}
	t := &Task{eng: eng, cpu: cpu, name: name, body: body, wakeLatency: wakeLatency}
	t.runF = t.run
	return t
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// CPU returns the CPU the task runs on.
func (t *Task) CPU() *CPU { return t.cpu }

// Wakes returns how many times Wake was called.
func (t *Task) Wakes() uint64 { return t.wakes }

// Runs returns how many times the body actually executed.
func (t *Task) Runs() uint64 { return t.runs }

// Wake requests a body run. If a run is already queued the wake coalesces;
// if the body is currently running, one follow-up run is queued so work
// enqueued mid-run is not lost.
//
// The wake latency is mostly *delay* (the scheduler getting around to the
// thread), not CPU work: only a fraction of it is charged as busy time, so
// a domain handling many small wakeups is not falsely CPU-saturated.
func (t *Task) Wake() {
	t.wakes++
	if t.running {
		t.rewake = true
		return
	}
	if t.scheduled {
		return
	}
	t.scheduled = true
	done := t.cpu.Charge(dispatchCost) // scheduler/dispatch work (cycles)
	at := t.eng.Now() + t.wakeLatency  // sleep-to-run latency (delay)
	if done > at {
		at = done
	}
	t.eng.Schedule(at, t.runF)
}

// dispatchCost is the CPU work of one thread wakeup — roughly constant
// across OSes; what differs per OS is the wake *latency*.
const dispatchCost = 300 * Nanosecond

func (t *Task) run() {
	t.scheduled = false
	t.running = true
	t.runs++
	t.body()
	t.running = false
	if t.rewake {
		// Work arrived while the body ran: the thread never slept, so the
		// re-run costs only a loop iteration, not a scheduler dispatch.
		t.rewake = false
		t.scheduled = true
		t.cpu.Exec(dispatchCost, t.runF)
	}
}
