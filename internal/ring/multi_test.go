package ring

import "testing"

func TestNewMultiValidates(t *testing.T) {
	for _, bad := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("queue count %d did not panic", bad)
				}
			}()
			NewMulti[req, rsp](bad, 8)
		}()
	}
	m := NewMulti[req, rsp](4, 8)
	if m.NumQueues() != 4 {
		t.Fatalf("NumQueues = %d, want 4", m.NumQueues())
	}
	for i := 0; i < 4; i++ {
		if m.Queue(i).Size() != 8 {
			t.Fatalf("queue %d size = %d, want 8", i, m.Queue(i).Size())
		}
	}
}

// TestMultiRingQueueIndependence verifies queues share no state: filling
// one queue leaves the others empty, and per-queue notification thresholds
// are independent.
func TestMultiRingQueueIndependence(t *testing.T) {
	m := NewMulti[req, rsp](3, 4)
	q0 := m.Queue(0)
	for i := 0; i < 4; i++ {
		if !q0.PushRequest(req{i}) {
			t.Fatalf("queue 0 push %d failed", i)
		}
	}
	if !q0.Full() {
		t.Fatal("queue 0 not full")
	}
	for i := 1; i < 3; i++ {
		if m.Queue(i).Full() || m.Queue(i).FreeRequests() != 4 {
			t.Fatalf("queue %d perturbed by queue 0 fill", i)
		}
	}
	// Notify state is per-queue: queue 1's first publish must notify even
	// though queue 0 already published without a re-arm.
	q0.PushRequestsAndCheckNotify()
	q1 := m.Queue(1)
	q1.PushRequest(req{0})
	if !q1.PushRequestsAndCheckNotify() {
		t.Fatal("queue 1 first publish did not request notify")
	}
}

// TestMultiRingStatsAggregate checks Stats sums per-queue counters in
// queue order.
func TestMultiRingStatsAggregate(t *testing.T) {
	m := NewMulti[req, rsp](2, 8)
	for q := 0; q < 2; q++ {
		r := m.Queue(q)
		for i := 0; i <= q; i++ { // 1 req on queue 0, 2 on queue 1
			r.PushRequest(req{i})
		}
		r.PushRequestsAndCheckNotify()
		for {
			rq, ok := r.TakeRequest()
			if !ok {
				break
			}
			r.PushResponse(rsp{rq.id, 0})
		}
		r.PushResponsesAndCheckNotify()
	}
	reqs, rsps, _, _ := m.Stats()
	if reqs != 3 || rsps != 3 {
		t.Fatalf("aggregate stats = %d reqs / %d rsps, want 3/3", reqs, rsps)
	}
	if m.Inflight() != 0 {
		t.Fatalf("aggregate inflight = %d, want 0", m.Inflight())
	}
}
