package core

import (
	"fmt"
	"runtime"
	"testing"

	"kite/internal/netstack"
)

// BenchmarkFleet sweeps the tenant count of a fleet-mode network driver
// domain: N single-queue guests share four DRR service lanes (one per
// cluster shard), and every iteration pushes one frame per tenant
// through its lane to the external client. Wall-clock time per wave
// tracks how the shared-lane data plane scales with the fleet size:
// lanes, demux bitmaps, and flow-table lookups are all O(1) per frame
// (the residual growth is the event heap and window sync), and the
// steady state allocates nothing at any scale. `make bench` snapshots
// the sweep into BENCH_net.json next to the forward-path families.
func BenchmarkFleet(b *testing.B) {
	for _, guests := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("guests=%d", guests), func(b *testing.B) {
			rig, err := NewFleetRig(FleetConfig{
				Guests: guests, Lanes: 4, Seed: 0xf1ee7,
			})
			if err != nil {
				b.Fatal(err)
			}
			sys := rig.Testbed.System
			if c := sys.Cluster; c != nil {
				c.SetWorkers(min(c.Shards(), runtime.NumCPU()))
			}
			delivered := 0
			rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) { delivered++ })
			payload := pattern(128)
			eng := sys.Eng
			wave := func(w int) {
				for _, g := range rig.Guests {
					g.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+w%64), payload)
				}
			}
			for w := 0; w < 8; w++ { // warm pools, slots, FDB, lane lists
				wave(w)
				eng.Run()
			}
			delivered = 0
			simStart := eng.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				wave(n)
				eng.Run()
			}
			b.StopTimer()
			if delivered != b.N*guests {
				b.Fatalf("delivered %d of %d", delivered, b.N*guests)
			}
			simElapsed := (eng.Now() - simStart).Seconds()
			b.ReportMetric(float64(b.N*guests)/simElapsed, "simframes/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*guests), "ns/frame")
		})
	}
}
