package framepool

import (
	"bytes"
	"testing"
)

func TestGetReleaseRecycles(t *testing.T) {
	p := New()
	b := p.Get()
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", p.Outstanding())
	}
	b.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", p.Outstanding())
	}
	b2 := p.Get()
	if b2 != b {
		t.Fatalf("expected LIFO recycle of the same buffer")
	}
	if b2.Len() != 0 {
		t.Fatalf("recycled buffer not reset: len %d", b2.Len())
	}
	b2.Release()
	if p.Gets() != 2 || p.Recycled() != 2 {
		t.Fatalf("gets=%d recycled=%d, want 2/2", p.Gets(), p.Recycled())
	}
}

func TestRetainRelease(t *testing.T) {
	p := New()
	b := p.Get()
	b.Retain()
	b.Release()
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding = %d after one of two releases, want 1", p.Outstanding())
	}
	b.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", p.Outstanding())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := New()
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
	}()
	b.Release()
}

func TestExtendPrependTrim(t *testing.T) {
	p := New()
	b := p.Get()
	copy(b.Extend(5), "hello")
	copy(b.Prepend(3), "abc")
	if !bytes.Equal(b.Bytes(), []byte("abchello")) {
		t.Fatalf("payload = %q", b.Bytes())
	}
	b.Trim(3)
	if !bytes.Equal(b.Bytes(), []byte("abc")) {
		t.Fatalf("after trim payload = %q", b.Bytes())
	}
	b.Release()
}

func TestExtendOverflowPanics(t *testing.T) {
	p := New()
	b := p.Get()
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("Extend past capacity did not panic")
		}
	}()
	b.Extend(MaxFrame + 1)
}

func TestPrependUnderflowPanics(t *testing.T) {
	p := New()
	b := p.Get()
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("Prepend past headroom did not panic")
		}
	}()
	b.Prepend(Headroom + 1)
}

func TestFrom(t *testing.T) {
	p := New()
	b := p.From([]byte("payload"))
	if !bytes.Equal(b.Bytes(), []byte("payload")) {
		t.Fatalf("From payload = %q", b.Bytes())
	}
	b.Release()
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	p := New()
	// Warm the free list.
	p.Get().Release()
	allocs := testing.AllocsPerRun(100, func() {
		b := p.Get()
		copy(b.Extend(64), "x")
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Release allocates %.1f/op, want 0", allocs)
	}
}

func TestArenaPartitioning(t *testing.T) {
	p := New()
	a0, a1 := p.NewArena(), p.NewArena()
	b0, b1 := a0.Get(), a1.Get()
	if p.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2 (arena gets must hit parent accounting)", p.Outstanding())
	}
	b0.Release()
	b1.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after arena releases, want 0", p.Outstanding())
	}
	if a0.Free() != 1 || a1.Free() != 1 || len(p.free) != 0 {
		t.Fatalf("buffers not parked in their own arenas: a0=%d a1=%d shared=%d",
			a0.Free(), a1.Free(), len(p.free))
	}
	// A buffer stays bound to its arena across reuse.
	if got := a0.Get(); got != b0 {
		t.Fatal("arena did not recycle its own buffer LIFO")
	} else {
		got.Release()
	}
}

func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	p := New()
	a := p.NewArena()
	a.Get().Release()
	allocs := testing.AllocsPerRun(100, func() {
		b := a.Get()
		copy(b.Extend(64), "x")
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena Get/Release allocates %.1f/op, want 0", allocs)
	}
}
