// Package simdet exercises the kitelint determinism analyzer: wall-clock
// reads, the process-global math/rand source, unordered map iteration, and
// unjustified goroutines or sync imports inside a //kite:deterministic
// package.
//
//kite:deterministic
package simdet

import (
	"math/rand"
	"sync" // want `sync primitives order goroutines outside the window barrier`
	"sync/atomic"
	"time"
)

func clock() time.Time {
	return time.Now() // want `reads the wall clock`
}

func roll() int {
	return rand.Intn(6) // want `seeded per-process`
}

func iterate(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

func iterateJustified(m map[string]int) int {
	n := 0
	for range m { //kite:orderok count is order-insensitive
		n++
	}
	return n
}

// Duration arithmetic stays legal: only clock reads are banned.
func window(d time.Duration) time.Duration { return 2 * d }

func spawn(fn func()) {
	go fn() // want `goroutines can leak scheduling into the timeline`
}

func spawnJustified(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //kite:shardsafe test fixture: joined before the window ends
		defer wg.Done()
		fn()
	}()
	wg.Wait()
}

// Atomic counter adds commute, so sync/atomic stays exempt.
func count(c *atomic.Uint64) { c.Add(1) }
