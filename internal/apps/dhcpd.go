package apps

import (
	"encoding/binary"
	"fmt"

	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// DHCP message types (RFC 2131 option 53).
const (
	DHCPDiscover = 1
	DHCPOffer    = 2
	DHCPRequest  = 3
	DHCPAck      = 5
	DHCPNak      = 6
)

// DHCP ports.
const (
	DHCPServerPort = 67
	DHCPClientPort = 68
)

// dhcpMagic is the options magic cookie.
var dhcpMagic = [4]byte{99, 130, 83, 99}

// DHCPMessage is a (simplified but wire-shaped) RFC 2131 message: the
// fixed 240-byte header plus option 53 (type), 50 (requested IP) and 51
// (lease time).
type DHCPMessage struct {
	Op          byte // 1 request, 2 reply
	XID         uint32
	ClientMAC   netpkt.MAC
	YourIP      netpkt.IP
	ServerIP    netpkt.IP
	MsgType     byte
	RequestedIP netpkt.IP
	LeaseSecs   uint32
}

// Marshal serializes the message.
func (m *DHCPMessage) Marshal() []byte {
	b := make([]byte, 240, 260)
	b[0] = m.Op
	b[1] = 1 // htype ethernet
	b[2] = 6 // hlen
	binary.BigEndian.PutUint32(b[4:8], m.XID)
	copy(b[16:20], m.YourIP[:])
	copy(b[20:24], m.ServerIP[:])
	copy(b[28:34], m.ClientMAC[:])
	copy(b[236:240], dhcpMagic[:])
	b = append(b, 53, 1, m.MsgType)
	if m.RequestedIP != (netpkt.IP{}) {
		b = append(b, 50, 4)
		b = append(b, m.RequestedIP[:]...)
	}
	if m.LeaseSecs != 0 {
		lease := make([]byte, 4)
		binary.BigEndian.PutUint32(lease, m.LeaseSecs)
		b = append(b, 51, 4)
		b = append(b, lease...)
	}
	b = append(b, 255) // end option
	return b
}

// ParseDHCP deserializes a message.
func ParseDHCP(b []byte) (*DHCPMessage, error) {
	if len(b) < 241 {
		return nil, fmt.Errorf("apps: dhcp message too short (%d bytes)", len(b))
	}
	if [4]byte(b[236:240]) != dhcpMagic {
		return nil, fmt.Errorf("apps: dhcp magic cookie missing")
	}
	m := &DHCPMessage{
		Op:  b[0],
		XID: binary.BigEndian.Uint32(b[4:8]),
	}
	copy(m.YourIP[:], b[16:20])
	copy(m.ServerIP[:], b[20:24])
	copy(m.ClientMAC[:], b[28:34])
	// Walk options.
	for i := 240; i < len(b); {
		opt := b[i]
		if opt == 255 {
			break
		}
		if opt == 0 {
			i++
			continue
		}
		if i+1 >= len(b) {
			return nil, fmt.Errorf("apps: truncated dhcp option %d", opt)
		}
		n := int(b[i+1])
		if i+2+n > len(b) {
			return nil, fmt.Errorf("apps: truncated dhcp option %d body", opt)
		}
		val := b[i+2 : i+2+n]
		switch opt {
		case 53:
			if n >= 1 {
				m.MsgType = val[0]
			}
		case 50:
			if n == 4 {
				copy(m.RequestedIP[:], val)
			}
		case 51:
			if n == 4 {
				m.LeaseSecs = binary.BigEndian.Uint32(val)
			}
		}
		i += 2 + n
	}
	return m, nil
}

// DHCPServer is the unikernelized OpenDHCP stand-in (§5.5): a lease pool
// served over broadcast UDP.
type DHCPServer struct {
	stack *netstack.Stack

	poolStart netpkt.IP
	poolSize  int
	leases    map[netpkt.MAC]netpkt.IP
	nextFree  int

	// PerMessage models lease lookup + config handling.
	PerMessage sim.Time

	offers, acks, naks uint64
}

// NewDHCPServer starts the daemon on the stack's port 67, leasing
// addresses poolStart..poolStart+poolSize-1.
func NewDHCPServer(stack *netstack.Stack, poolStart netpkt.IP, poolSize int) (*DHCPServer, error) {
	s := &DHCPServer{
		stack:      stack,
		poolStart:  poolStart,
		poolSize:   poolSize,
		leases:     make(map[netpkt.MAC]netpkt.IP),
		PerMessage: 320 * sim.Microsecond, // lease-database update per message
	}
	if err := stack.BindUDP(DHCPServerPort, s.handle); err != nil {
		return nil, err
	}
	return s, nil
}

// Counts returns (offers, acks, naks).
func (s *DHCPServer) Counts() (offers, acks, naks uint64) { return s.offers, s.acks, s.naks }

// Leases returns the number of active leases.
func (s *DHCPServer) Leases() int { return len(s.leases) }

func (s *DHCPServer) addr(i int) netpkt.IP {
	ip := s.poolStart
	ip[3] += byte(i)
	return ip
}

func (s *DHCPServer) leaseFor(mac netpkt.MAC) (netpkt.IP, bool) {
	if ip, ok := s.leases[mac]; ok {
		return ip, true
	}
	if s.nextFree >= s.poolSize {
		return netpkt.IP{}, false
	}
	ip := s.addr(s.nextFree)
	s.nextFree++
	s.leases[mac] = ip
	return ip, true
}

func (s *DHCPServer) handle(p netstack.UDPPacket) {
	s.stack.CPUs().Charge(s.PerMessage)
	m, err := ParseDHCP(p.Data)
	if err != nil || m.Op != 1 {
		return
	}
	reply := &DHCPMessage{Op: 2, XID: m.XID, ClientMAC: m.ClientMAC, ServerIP: s.stack.IP(), LeaseSecs: 3600}
	switch m.MsgType {
	case DHCPDiscover:
		ip, ok := s.leaseFor(m.ClientMAC)
		if !ok {
			return // pool exhausted: silence, client retries
		}
		s.offers++
		reply.MsgType = DHCPOffer
		reply.YourIP = ip
	case DHCPRequest:
		ip, ok := s.leases[m.ClientMAC]
		if !ok || (m.RequestedIP != (netpkt.IP{}) && m.RequestedIP != ip) {
			s.naks++
			reply.MsgType = DHCPNak
		} else {
			s.acks++
			reply.MsgType = DHCPAck
			reply.YourIP = ip
		}
	default:
		return
	}
	// Replies go to broadcast (the client has no address yet).
	s.stack.SendUDP(netpkt.BroadcastIP, DHCPClientPort, DHCPServerPort, reply.Marshal())
}
