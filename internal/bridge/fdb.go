package bridge

import (
	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/timewheel"
)

// The forwarding database is sharded so a driver domain serving hundreds
// of guests keeps O(1) learned-MAC lookup on the data path at any table
// size. A single Go map would do the same asymptotically, but its buckets
// allocate on growth mid-traffic, its iteration order is nondeterministic
// (poisonous for the byte-identical summaries), and a fleet's worth of
// entries all contend on one structure. Instead the FDB is a power-of-two
// array of shards — selected by the top bits of a Toeplitz hash over the
// MAC (the same hash family RSS steering uses, netpkt.RSS) — each shard an
// open-addressing linear-probe table of value-typed entries with
// backward-shift deletion. Lookups and learns in steady state touch one
// cache line per probe and never allocate; growth doubles a shard and
// rehashes (amortized, control-plane-adjacent), and aging/eviction scans
// slots in index order so every walk is deterministic.

const (
	fdbShardBits = 3
	fdbShardCnt  = 1 << fdbShardBits
	// fdbMinSlots is each shard's initial capacity; power of two.
	fdbMinSlots = 64
)

// fdbEntry is one learned MAC. Entries live by value inside the shard's
// slot array; hash caches the full Toeplitz hash so growth and
// backward-shift deletion never re-derive it.
type fdbEntry struct {
	mac      netpkt.MAC
	used     bool
	port     Port
	hash     uint32
	lastSeen sim.Time
	// node is the entry's aging-wheel node. It moves with the entry through
	// growth rehashing and backward-shift deletion (entries copy by value);
	// deletion simply orphans the node, which the next aging pass reaps.
	node timewheel.Handle
}

// fdbShard is one open-addressing table: linear probing on the low hash
// bits, load factor capped at 3/4.
type fdbShard struct {
	slots []fdbEntry
	count int
}

// fdb is the sharded forwarding database.
type fdb struct {
	hash   netpkt.RSS
	shards [fdbShardCnt]fdbShard
	// wheel ages entries by last activity: one O(1) node insert per learned
	// MAC, no wheel traffic on refresh, and an aging pass costs O(entries
	// actually due) instead of a full-table sweep.
	wheel *timewheel.Wheel
}

// fdbSeed keys the FDB's Toeplitz tables. Fixed so every run spreads MACs
// identically; independent from the rig's RSS seed on purpose — steering
// collisions must not imply FDB probe collisions.
const fdbSeed = 0xFDB0_5EED_0000_0001

// fdbWheelGran × fdbWheelBuckets is the wheel rotation; aging cutoffs well
// inside one rotation probe each healthy entry at most once per cutoff.
const (
	fdbWheelGran    = sim.Second
	fdbWheelBuckets = 256
)

func (f *fdb) init() {
	f.hash = netpkt.NewRSS(fdbSeed)
	f.wheel = timewheel.New(fdbWheelGran, fdbWheelBuckets)
}

// macKey packs a MAC into the wheel's uint64 key space.
func macKey(mac netpkt.MAC) uint64 {
	return uint64(mac[0])<<40 | uint64(mac[1])<<32 | uint64(mac[2])<<24 |
		uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])
}

// keyMAC unpacks macKey.
func keyMAC(k uint64) netpkt.MAC {
	return netpkt.MAC{byte(k >> 40), byte(k >> 32), byte(k >> 24),
		byte(k >> 16), byte(k >> 8), byte(k)}
}

// macHash pads the 6-byte MAC into the Toeplitz window.
//
//kite:hotpath
func (f *fdb) macHash(mac netpkt.MAC) uint32 {
	var in [12]byte
	copy(in[0:6], mac[:])
	return f.hash.Hash12(&in)
}

// shardOf selects by the top hash bits; the probe index uses the low bits,
// so shard choice and slot choice are decorrelated.
func (f *fdb) shardOf(h uint32) *fdbShard {
	return &f.shards[h>>(32-fdbShardBits)]
}

// lookup returns the port mac was learned on, or nil. O(expected 1): one
// probe run in one shard, no allocation.
//
//kite:hotpath
func (f *fdb) lookup(mac netpkt.MAC) Port {
	h := f.macHash(mac)
	s := f.shardOf(h)
	if len(s.slots) == 0 {
		return nil
	}
	mask := uint32(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &s.slots[i]
		if !e.used {
			return nil
		}
		if e.mac == mac {
			return e.port
		}
	}
}

// learn records mac behind port, refreshing lastSeen. Reports whether the
// entry is new or moved ports (the Learned counter's trigger). Steady
// state is one probe run and no allocation; a shard past 3/4 load doubles
// first (amortized growth, the map-free analogue of bucket splitting).
//
//kite:hotpath
func (f *fdb) learn(mac netpkt.MAC, port Port, now sim.Time) bool {
	h := f.macHash(mac)
	s := f.shardOf(h)
	if len(s.slots) == 0 || (s.count+1)*4 > len(s.slots)*3 {
		s.grow()
	}
	mask := uint32(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &s.slots[i]
		if !e.used {
			*e = fdbEntry{mac: mac, used: true, port: port, hash: h, lastSeen: now,
				node: f.wheel.Add(macKey(mac), now)}
			s.count++
			return true
		}
		if e.mac == mac {
			moved := e.port != port
			e.port = port
			e.lastSeen = now
			return moved
		}
	}
}

// grow doubles the shard (or seeds it at fdbMinSlots) and rehashes every
// live entry. Amortized over insertions; never on the pure-lookup path.
func (s *fdbShard) grow() {
	old := s.slots
	n := 2 * len(old)
	if n < fdbMinSlots {
		n = fdbMinSlots
	}
	s.slots = make([]fdbEntry, n) //kite:alloc-ok amortized shard doubling to the fleet high-water mark
	mask := uint32(n - 1)
	for i := range old {
		e := &old[i]
		if !e.used {
			continue
		}
		for j := e.hash & mask; ; j = (j + 1) & mask {
			if !s.slots[j].used {
				s.slots[j] = *e
				break
			}
		}
	}
}

// deleteAt removes the entry at slot i using backward-shift deletion:
// subsequent entries in the probe run slide back over the hole so no
// tombstones accumulate and lookup probe runs stay short forever.
func (s *fdbShard) deleteAt(i uint32) {
	mask := uint32(len(s.slots) - 1)
	s.count--
	hole := i
	for {
		s.slots[hole] = fdbEntry{}
		j := hole
		for {
			j = (j + 1) & mask
			e := &s.slots[j]
			if !e.used {
				return
			}
			// e may move into the hole only if its home slot is at or
			// before the hole in cyclic probe order — otherwise the move
			// would strand it ahead of its home.
			if (j-(e.hash&mask))&mask >= (j-hole)&mask {
				s.slots[hole] = *e
				hole = j
				break
			}
		}
	}
}

// removeEntry locates mac's slot and backward-shift deletes it.
func (f *fdb) removeEntry(mac netpkt.MAC) bool {
	h := f.macHash(mac)
	s := f.shardOf(h)
	if len(s.slots) == 0 {
		return false
	}
	mask := uint32(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &s.slots[i]
		if !e.used {
			return false
		}
		if e.mac == mac {
			s.deleteAt(i)
			return true
		}
	}
}

// removePort flushes every entry learned on port: shard by shard, slot by
// slot in index order (deterministic). Restarting a shard's scan after a
// delete is safe because backward-shift only moves entries to lower probe
// positions; rescanning from the hole catches any entry shifted into
// already-visited territory.
func (f *fdb) removePort(port Port) int {
	flushed := 0
	for si := range f.shards {
		s := &f.shards[si]
		for i := uint32(0); int(i) < len(s.slots); {
			e := &s.slots[i]
			if e.used && e.port == port {
				s.deleteAt(i)
				flushed++
				continue // the shift may have refilled slot i
			}
			i++
		}
	}
	return flushed
}

// entryOf returns mac's live entry, or nil.
func (f *fdb) entryOf(mac netpkt.MAC) *fdbEntry {
	h := f.macHash(mac)
	s := f.shardOf(h)
	if len(s.slots) == 0 {
		return nil
	}
	mask := uint32(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &s.slots[i]
		if !e.used {
			return nil
		}
		if e.mac == mac {
			return e
		}
	}
}

// age evicts every entry idle longer than maxIdle and returns how many
// were dropped — the FDB's periodic GC, keeping a fleet's worth of
// short-lived guests from pinning table space forever. The wheel pass
// probes only entries whose last activity has fallen behind the cutoff
// (plus any orphaned nodes that came due), so a fleet of busy guests pays
// nothing here; the evicted set is exactly what a full sweep would drop.
func (f *fdb) age(now, maxIdle sim.Time) int {
	dropped := 0
	f.wheel.Advance(now-maxIdle-1,
		func(h timewheel.Handle, key uint64) sim.Time {
			e := f.entryOf(keyMAC(key))
			if e == nil || e.node != h {
				return timewheel.Gone
			}
			return e.lastSeen
		},
		func(key uint64) {
			f.removeEntry(keyMAC(key))
			dropped++
		})
	return dropped
}

// len returns the number of learned entries across all shards.
func (f *fdb) len() int {
	n := 0
	for i := range f.shards {
		n += f.shards[i].count
	}
	return n
}
