// Package netback implements the network backend driver of a driver
// domain — the component Kite had to build from scratch (Table 1, 2791
// LOC). Each VIF instance serves one netfront: the Tx path drains
// guest-originated frames to the bridge via a dedicated *pusher* thread,
// and the Rx path copies bridge-delivered frames into posted guest buffers
// via a dedicated *soft_start* thread, so the event handler itself never
// monopolizes the CPU (§3.2, §4.2). Two cost profiles exist: KiteCosts
// (rumprun threads) and LinuxCosts (softirq + kthread path).
package netback

import (
	"fmt"

	"kite/internal/bridge"
	"kite/internal/mem"
	"kite/internal/netif"
	"kite/internal/sim"
	"kite/internal/xen"
)

// Costs parameterizes the backend's software path per OS.
type Costs struct {
	PerPacketTx sim.Time // guest→world processing per frame (beyond copies)
	PerPacketRx sim.Time // world→guest processing per frame
	WakeLatency sim.Time // handler→worker-thread dispatch latency
	// InHandler disables the dedicated threads and processes rings inside
	// the event handler itself — the design the paper rejects (§3.2); kept
	// as an ablation knob.
	InHandler bool
	// RxQueueFrames bounds the guest-bound queue; overflow drops (this is
	// where UDP overload loss materializes).
	RxQueueFrames int
}

// KiteCosts returns the rumprun backend profile: cheap cooperative thread
// wakeups, lean NetBSD driver path.
func KiteCosts() Costs {
	return Costs{
		// Per-frame path tuned so a single-vCPU domain forwards ~7.3 Gbps
		// of MTU frames — the bottleneck Figure 6 measures.
		PerPacketTx:   450 * sim.Nanosecond,
		PerPacketRx:   450 * sim.Nanosecond,
		WakeLatency:   2 * sim.Microsecond,
		RxQueueFrames: 2048,
	}
}

// LinuxCosts returns the Ubuntu driver-domain profile: softirq + kthread
// scheduling on the wake path and a heavier per-frame path (netfilter
// hooks, qdisc, skb management).
func LinuxCosts() Costs {
	return Costs{
		PerPacketTx:   470 * sim.Nanosecond,
		PerPacketRx:   470 * sim.Nanosecond,
		WakeLatency:   9 * sim.Microsecond,
		RxQueueFrames: 2048,
	}
}

// Stats counts per-VIF activity.
type Stats struct {
	TxFrames, TxBytes uint64 // guest -> world
	RxFrames, RxBytes uint64 // world -> guest
	RxQueueDrops      uint64
	RxNoBufDrops      uint64
	TxErrors          uint64
}

// VIF is one netback instance: the virtual interface paired with exactly
// one netfront (§3.2: one instance per virtual channel).
type VIF struct {
	eng      *sim.Engine
	dom      *xen.Domain // the driver domain
	frontDom xen.DomID
	name     string
	costs    Costs

	ch   *netif.Channel
	port xen.Port
	br   *bridge.Bridge

	pusher    *sim.Task
	softStart *sim.Task

	rxQueue sim.FIFO[[]byte]
	scratch []*mem.Page

	// txPending holds bridge-bound frames whose hypervisor copy has been
	// issued; txDone flushes them when the copy matures. One coalesced
	// event covers a whole pusher burst instead of one event per frame.
	txPending sim.FIFO[timedFrame]
	txDone    *sim.Batch

	dead  bool
	down  bool // administratively down (ifconfig vifX.Y down)
	stats Stats
}

// timedFrame is a frame due for bridge input at a virtual time.
type timedFrame struct {
	at    sim.Time
	frame []byte
}

// NewVIF creates a connected netback instance. The caller (the backend
// driver) has already read ring refs and the event channel from xenstore;
// here the rings are mapped (hypercalls charged) and the event channel is
// bound.
func NewVIF(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *netif.Channel, frontPort xen.Port, br *bridge.Bridge, costs Costs) (*VIF, error) {

	v := &VIF{
		eng:      eng,
		dom:      dom,
		frontDom: frontDom,
		name:     fmt.Sprintf("vif%d.%d", frontDom, devid),
		costs:    costs,
		ch:       ch,
		br:       br,
	}
	// Map the two ring pages (2 map hypercalls, charged to the backend).
	dom.CPUs.Charge(dom.Hypervisor().Costs.Base + 2*dom.Hypervisor().Costs.GrantMapPage)

	port, err := dom.BindInterdomain(frontDom, frontPort)
	if err != nil {
		return nil, fmt.Errorf("netback: %s: %w", v.name, err)
	}
	v.port = port
	if err := dom.SetHandler(port, v.onEvent); err != nil {
		return nil, err
	}

	// Scratch pages for hypervisor copies of guest Tx frames.
	v.scratch, err = dom.Arena.AllocN(netif.RingSize)
	if err != nil {
		return nil, fmt.Errorf("netback: %s: %w", v.name, err)
	}

	// Per-VIF workers spread across the domain's vCPUs (§3.1: multicore
	// driver domains scale to several guests/NICs).
	cpu := dom.CPUs.CPU(int(frontDom) % dom.CPUs.Len())
	v.pusher = sim.NewTask(eng, cpu, v.name+"/pusher", costs.WakeLatency, v.drainTx)
	v.softStart = sim.NewTask(eng, cpu, v.name+"/soft_start", costs.WakeLatency, v.drainRx)
	v.txDone = sim.NewBatch(eng, v.flushTx)
	return v, nil
}

// Name returns the VIF name (vif<dom>.<dev>).
func (v *VIF) Name() string { return v.name }

// PortName implements bridge.Port.
func (v *VIF) PortName() string { return v.name }

// Stats returns a snapshot of the counters.
func (v *VIF) Stats() Stats { return v.stats }

// SetInHandler toggles the in-handler processing ablation on a live VIF.
func (v *VIF) SetInHandler(on bool) { v.costs.InHandler = on }

// SetUp sets the interface's administrative state (ifconfig up/down): a
// downed VIF forwards no traffic in either direction.
func (v *VIF) SetUp(up bool) { v.down = !up }

// Up reports the administrative state.
func (v *VIF) Up() bool { return !v.down }

// PusherRuns exposes thread activity for the threaded-model ablation.
func (v *VIF) PusherRuns() (wakes, runs uint64) { return v.pusher.Wakes(), v.pusher.Runs() }

// Shutdown quiesces the instance (backend teardown or domain restart).
func (v *VIF) Shutdown() {
	if v.dead {
		return
	}
	v.dead = true
	_ = v.dom.Close(v.port)
	v.rxQueue.Clear()
	v.txPending.Clear()
}

// onEvent is the frontend notification handler. Per the paper's design it
// only wakes the worker threads — unless the InHandler ablation is active,
// in which case the rings are drained right here, blocking further
// notifications for the duration.
func (v *VIF) onEvent() {
	if v.dead {
		return
	}
	if v.costs.InHandler {
		v.drainTx()
		v.drainRx()
		return
	}
	if v.ch.Tx.RequestAvailable() {
		v.pusher.Wake()
	}
	if v.rxQueue.Len() > 0 && v.ch.Rx.RequestAvailable() {
		v.softStart.Wake()
	}
}

// drainTx is the pusher thread body: move guest frames to the bridge.
func (v *VIF) drainTx() {
	if v.dead || v.down {
		return
	}
	hv := v.dom.Hypervisor()
	for {
		// Gather a batch of requests.
		var reqs []netif.TxRequest
		for {
			req, ok := v.ch.Tx.TakeRequest()
			if !ok {
				break
			}
			reqs = append(reqs, req)
		}
		if len(reqs) == 0 {
			if v.ch.Tx.FinalCheckForRequests() {
				continue
			}
			break
		}
		// One batched hypervisor copy for the whole run of requests.
		ops := make([]xen.CopyOp, 0, len(reqs))
		for i, req := range reqs {
			ops = append(ops, xen.CopyOp{
				Src: xen.CopyPtr{Dom: v.frontDom, Ref: req.Ref, Offset: req.Offset},
				Dst: xen.CopyPtr{Local: v.scratch[i%len(v.scratch)]},
				Len: req.Len,
			})
		}
		err := hv.CopyGrant(v.dom, ops)
		done := v.dom.CPUs.Charge(sim.Time(len(reqs)) * v.costs.PerPacketTx)
		for i, req := range reqs {
			status := int8(netif.StatusOK)
			if err != nil {
				status = netif.StatusError
				v.stats.TxErrors++
			} else {
				frame := v.scratch[i%len(v.scratch)].CopyFrom(0, req.Len)
				v.stats.TxFrames++
				v.stats.TxBytes += uint64(req.Len)
				v.txPending.Push(timedFrame{at: done, frame: frame})
			}
			v.ch.Tx.PushResponse(netif.TxResponse{ID: req.ID, Status: status})
		}
		// One coalesced wake delivers the whole burst to the bridge when
		// the batched copy and per-frame processing complete.
		if v.txPending.Len() > 0 {
			v.txDone.Arm(done)
		}
		if v.ch.Tx.PushResponsesAndCheckNotify() {
			v.dom.Notify(v.port)
		}
	}
}

// flushTx hands every matured guest frame to the bridge in FIFO order and
// re-arms for the next burst still in flight.
func (v *VIF) flushTx() {
	if v.dead {
		return
	}
	now := v.eng.Now()
	for v.txPending.Len() > 0 && v.txPending.Peek().at <= now {
		v.br.Input(v, v.txPending.Pop().frame)
	}
	if p := v.txPending.Peek(); p != nil {
		v.txDone.Arm(p.at)
	}
}

// Deliver implements bridge.Port: queue a guest-bound frame and wake the
// soft_start thread.
func (v *VIF) Deliver(frame []byte) {
	if v.dead || v.down {
		return
	}
	if v.rxQueue.Len() >= v.costs.RxQueueFrames {
		v.stats.RxQueueDrops++
		return
	}
	v.rxQueue.Push(frame)
	if v.costs.InHandler {
		v.drainRx()
		return
	}
	v.softStart.Wake()
}

// drainRx is the soft_start thread body: copy queued frames into posted
// guest Rx buffers.
func (v *VIF) drainRx() {
	if v.dead {
		return
	}
	hv := v.dom.Hypervisor()
	notify := false
	for v.rxQueue.Len() > 0 {
		var batch [][]byte
		var reqs []netif.RxRequest
		for v.rxQueue.Len() > 0 {
			req, ok := v.ch.Rx.TakeRequest()
			if !ok {
				break
			}
			reqs = append(reqs, req)
			batch = append(batch, v.rxQueue.Pop())
		}
		if len(reqs) == 0 {
			// No posted buffers. Re-arm the request event threshold before
			// sleeping, or the frontend's next buffer post would suppress
			// its notification and strand the queued frames forever.
			if v.ch.Rx.FinalCheckForRequests() {
				continue
			}
			break
		}
		ops := make([]xen.CopyOp, 0, len(reqs))
		for i, frame := range batch {
			ops = append(ops, xen.CopyOp{
				Src: xen.CopyPtr{Local: v.stage(frame)},
				Dst: xen.CopyPtr{Dom: v.frontDom, Ref: reqs[i].Ref},
				Len: len(frame),
			})
		}
		err := hv.CopyGrant(v.dom, ops)
		v.dom.CPUs.Charge(sim.Time(len(reqs)) * v.costs.PerPacketRx)
		for i, req := range reqs {
			status := int8(netif.StatusOK)
			if err != nil {
				status = netif.StatusError
			} else {
				v.stats.RxFrames++
				v.stats.RxBytes += uint64(len(batch[i]))
			}
			v.ch.Rx.PushResponse(netif.RxResponse{ID: req.ID, Offset: 0, Len: len(batch[i]), Status: status})
		}
		if v.ch.Rx.PushResponsesAndCheckNotify() {
			notify = true
		}
	}
	if notify {
		v.dom.Notify(v.port)
	}
}

// stage writes a frame into a scratch page so the hypervisor copy has a
// page-aligned source (the bridge hands us plain buffers).
func (v *VIF) stage(frame []byte) *mem.Page {
	p := v.scratch[0]
	// Rotate scratch so concurrent ops in one batch do not overwrite each
	// other before CopyGrant executes.
	v.scratch = append(v.scratch[1:], p)
	p.CopyInto(0, frame)
	return p
}
