package sim

// This file is the parallel deterministic event core: a Cluster partitions
// one simulation into per-shard Engines (one heap each), executes them in
// conservative lookahead windows, and merges cross-shard effects at a
// deterministic barrier. The design is classic conservative parallel DES
// (Chandy-Misra-Bryant specialized to a fixed minimum link latency):
//
//   - Every cross-shard interaction travels as a *post* with an explicit
//     delay >= the cluster's lookahead. Physical latencies (NIC wire +
//     propagation delay, event-channel upcall latency, NVMe command fetch)
//     give the lookahead a natural lower bound, so posts model real
//     hand-off delays rather than artificial slack.
//   - A window runs every shard independently up to the exclusive horizon
//     `globalMinNextEvent + lookahead`. Any post created inside the window
//     carries at >= now + lookahead >= horizon, so it can only mature in a
//     later window: shards never observe each other mid-window, which is
//     what makes the parallel execution race-free *by construction* and
//     bit-identical to the serial execution of the same windows.
//   - At the barrier, outboxes are merged into per-shard inboxes ordered by
//     the total (timestamp, priority, source shard, source sequence) key,
//     so merge order never depends on goroutine scheduling.
//
// Worker goroutines are an execution detail, not a semantic one: a Cluster
// produces the same event timeline at any worker count and any GOMAXPROCS,
// which the determinism matrix in internal/experiments locks in under the
// race detector.
//
// Each shard also owns a partitioned RNG (splitmix-derived from the cluster
// seed and the shard index), so stochastic elements bound to a shard draw
// from a stream that is independent of how other shards interleave.

import (
	"fmt"
	"sync" //kite:shardsafe WaitGroup is only used at the window barrier
)

// Cross-shard post priorities: at an equal timestamp, lower runs first.
// Data hand-offs outrank buffer recycling so a frame is always delivered
// before the pool slot it vacated is reused.
//
// PriRelease posts are resource returns (buffer recycling, carrier
// reclamation): order-insensitive among themselves and free of timeline
// effects. The barrier executes them directly in merge order instead of
// queueing one inbox event per return — returning a resource one window
// early only ever *adds* availability, so the event timeline is unchanged
// while the per-frame recycle traffic costs no shard events at all. A
// release fn must therefore be pure local bookkeeping: it may not read the
// clock, schedule, or post.
const (
	PriData    uint8 = 100
	PriRelease uint8 = 200
)

// postRec is one staged cross-shard event. Records live in outbox/inbox
// slices whose spare capacity is recycled, so steady-state posting does not
// allocate.
type postRec struct {
	at  Time
	pri uint8
	src uint16 // source shard (merge tie-break)
	seq uint64 // per-source post sequence (final tie-break)
	fn  func(any)
	arg any
}

// before is the deterministic merge order: (timestamp, priority, source
// shard, source sequence). The key is unique — two posts can never compare
// equal — so the merged order is total and independent of arrival order.
func (p *postRec) before(o *postRec) bool {
	if p.at != o.at {
		return p.at < o.at
	}
	if p.pri != o.pri {
		return p.pri < o.pri
	}
	if p.src != o.src {
		return p.src < o.src
	}
	return p.seq < o.seq
}

// Cluster coordinates a set of shard Engines under conservative lookahead
// windows. Shard 0 is the "home" shard by convention (setup, devices, and
// anything not pinned elsewhere); calling Run/Step/RunUntil on any shard
// engine drives the whole cluster.
type Cluster struct {
	shards    []*Engine
	rngs      []*Rand
	lookahead Time
	workers   int // max goroutines per window; <=1 means serial

	windows uint64 // barrier count
	posted  uint64 // cross-shard posts merged
}

// NewCluster builds n shard engines sharing one virtual clock, with the
// given conservative lookahead (the minimum cross-shard post delay) and a
// seed for the partitioned per-shard RNGs. Workers defaults to 1 (serial);
// SetWorkers raises it.
func NewCluster(n int, lookahead Time, seed uint64) *Cluster {
	if n < 1 {
		panic("sim: cluster needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	c := &Cluster{lookahead: lookahead, workers: 1}
	for i := 0; i < n; i++ {
		e := NewEngine()
		e.cluster = c
		e.shard = i
		e.outbox = make([][]postRec, n)
		c.shards = append(c.shards, e)
		// Partitioned RNG: each shard's stream is derived from (seed, shard)
		// through the splitmix increment, so streams are decorrelated and
		// stable no matter how many shards run or in what order.
		c.rngs = append(c.rngs, NewRand(seed^(uint64(i+1)*0x9e3779b97f4a7c15)))
	}
	return c
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i's engine.
func (c *Cluster) Shard(i int) *Engine { return c.shards[i] }

// Rand returns shard i's partitioned RNG.
func (c *Cluster) Rand(i int) *Rand { return c.rngs[i] }

// Lookahead returns the minimum cross-shard post delay.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// Windows returns how many lookahead windows (barriers) have run.
func (c *Cluster) Windows() uint64 { return c.windows }

// Posted returns how many cross-shard posts have been merged.
func (c *Cluster) Posted() uint64 { return c.posted }

// SetWorkers bounds the goroutines used per window. n <= 1 executes shards
// serially in shard order; higher values run shards concurrently. The event
// timeline is identical either way.
func (c *Cluster) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(c.shards) {
		n = len(c.shards)
	}
	c.workers = n
}

// Workers returns the configured per-window worker bound.
func (c *Cluster) Workers() int { return c.workers }

// nextTime returns the globally earliest pending event time.
func (c *Cluster) nextTime() (Time, bool) {
	var best Time
	found := false
	for _, s := range c.shards {
		if t, ok := s.nextLocal(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// nextActive returns the globally earliest pending event time, how many
// shards have pending events, and — when exactly one does — that shard.
// The sole-active case feeds the express path below.
func (c *Cluster) nextActive() (Time, *Engine, int) {
	var best Time
	var sole *Engine
	n := 0
	for _, s := range c.shards {
		if t, ok := s.nextLocal(); ok {
			if n == 0 || t < best {
				best = t
			}
			sole = s
			n++
		}
	}
	if n != 1 {
		sole = nil
	}
	return best, sole, n
}

// runExpress drives a lone active shard without lookahead windows. While
// every other shard is empty, the only possible source of new events
// anywhere is s itself, so s may run arbitrarily far ahead — until it
// stages a data post, whose destination then has a future event that could
// eventually boomerang back. Release-only posts do not end the sprint: they
// carry no events (the barrier executes them as pure bookkeeping, in the
// same staged order), so shards stay empty no matter how many are staged.
// The express path is decided purely by event state, so the timeline is
// identical to the windowed execution at any worker count.
func (c *Cluster) runExpress(s *Engine, limit Time, budget uint64) uint64 {
	c.windows++
	done := s.runFree(limit, budget)
	c.merge()
	return done
}

// runWindow executes every shard up to the exclusive horizon, then merges
// outboxes at the barrier. budget caps the events executed (approximately,
// in parallel mode: each shard sees the full remaining budget). It returns
// the number of events executed.
func (c *Cluster) runWindow(horizon Time, budget uint64) uint64 {
	c.windows++
	var done uint64
	if c.workers <= 1 || len(c.shards) == 1 {
		for _, s := range c.shards {
			done += s.runTo(horizon, budget-done)
			if done >= budget {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for _, s := range c.shards {
			wg.Add(1)
			go func(s *Engine) { //kite:shardsafe shards share nothing mid-window; the barrier below orders all cross-shard effects
				defer wg.Done()
				s.windowDone = s.runTo(horizon, budget)
			}(s)
		}
		wg.Wait()
		for _, s := range c.shards {
			done += s.windowDone
		}
	}
	c.merge()
	return done
}

// merge is the deterministic barrier: every outbox drains into its
// destination shard's inbox, and each inbox is re-sorted by the total
// (timestamp, priority, source shard, source sequence) key. Keys are unique,
// so the resulting order does not depend on which shard finished first.
func (c *Cluster) merge() {
	// A window that staged no posts has nothing to drain and changed no
	// inbox; consumed inbox prefixes stay in place until the next
	// post-carrying barrier compacts them. The per-engine counters are
	// written only by their own shard mid-window, so summing them here —
	// after the window's goroutines have joined — is race-free.
	staged := uint64(0)
	for _, s := range c.shards {
		staged += s.stagedPosts
		s.stagedPosts = 0
	}
	if staged == 0 {
		return
	}
	for di, dst := range c.shards {
		// Compact the consumed prefix so the slice acts as a recycled ring.
		if dst.inboxHead > 0 {
			n := copy(dst.inbox, dst.inbox[dst.inboxHead:])
			for i := n; i < len(dst.inbox); i++ {
				dst.inbox[i] = postRec{} // drop fn/arg refs held by spare slots
			}
			dst.inbox = dst.inbox[:n]
			dst.inboxHead = 0
		}
		grew := false
		for _, src := range c.shards {
			ob := src.outbox[di]
			if len(ob) == 0 {
				continue
			}
			for i := range ob {
				p := &ob[i]
				if p.pri == PriRelease {
					// Resource returns run at the barrier itself, in the same
					// deterministic (dst, src, seq) order the merge visits
					// them; no shard goroutine is live here, so touching the
					// destination shard's free lists is race-free.
					p.fn(p.arg)
				} else {
					dst.inbox = append(dst.inbox, *p) //kite:alloc-ok inbox grows to the burst high-water mark, then recycles
					grew = true
				}
				*p = postRec{}
			}
			src.outbox[di] = ob[:0]
			c.posted += uint64(len(ob))
		}
		if grew {
			sortPosts(dst.inbox)
		}
	}
}

// sortPosts is an allocation-free insertion sort. Inboxes are short (a
// window's worth of hand-offs) and largely sorted already, which is the
// regime where insertion sort beats sort.Slice without its closure
// allocation.
func sortPosts(ps []postRec) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && p.before(&ps[j]) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// timeMax is the express-path "no limit" horizon.
const timeMax = Time(1<<63 - 1)

// Run executes windows until no events remain anywhere.
func (c *Cluster) Run() {
	for {
		t, sole, n := c.nextActive()
		if n == 0 {
			return
		}
		if sole != nil {
			c.runExpress(sole, timeMax, ^uint64(0))
			continue
		}
		c.runWindow(t+c.lookahead, ^uint64(0))
	}
}

// Step executes the single globally earliest pending event and merges the
// barrier immediately — the window protocol with a one-event window. Setup
// code (RunReady) uses this; it produces the same timeline as Run.
func (c *Cluster) Step() bool {
	var best *Engine
	var bt Time
	for _, s := range c.shards {
		if t, ok := s.nextLocal(); ok && (best == nil || t < bt) {
			best, bt = s, t
		}
	}
	if best == nil {
		return false
	}
	best.stepLocal(bt + 1)
	c.merge()
	return true
}

// RunUntil executes every event with timestamp <= t, then advances all
// shard clocks to exactly t.
func (c *Cluster) RunUntil(t Time) {
	for {
		next, sole, n := c.nextActive()
		if n == 0 || next > t {
			break
		}
		if sole != nil {
			c.runExpress(sole, t+1, ^uint64(0))
			continue
		}
		h := next + c.lookahead
		if h > t+1 {
			h = t + 1
		}
		c.runWindow(h, ^uint64(0))
	}
	for _, s := range c.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// RunCapped runs until the cluster drains or ~maxEvents have been executed,
// reporting whether it drained. Like Engine.RunCapped it is a livelock
// guard, not a precise budget: parallel windows may overshoot slightly.
func (c *Cluster) RunCapped(maxEvents uint64) bool {
	var done uint64
	for done < maxEvents {
		t, sole, n := c.nextActive()
		if n == 0 {
			return true
		}
		if sole != nil {
			done += c.runExpress(sole, timeMax, maxEvents-done)
			continue
		}
		done += c.runWindow(t+c.lookahead, maxEvents-done)
	}
	_, ok := c.nextTime()
	return !ok
}

// Pending sums scheduled-but-unexecuted events across all shards.
func (c *Cluster) Pending() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.heap) + (len(s.inbox) - s.inboxHead)
	}
	return n
}

// Processed sums executed events across all shards.
func (c *Cluster) Processed() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.processed
	}
	return n
}

// Post stages fn(arg) to run on dst after delay, carrying pri as the
// equal-timestamp merge rank. delay must be at least the cluster lookahead —
// that bound is exactly what lets shards run a window without peeking at
// each other. Posting is allocation-free in steady state: the record is a
// value in a recycled outbox slice, fn should be a long-lived func value,
// and arg a pointer (pointer-to-interface conversions do not allocate).
//
//kite:hotpath
func (e *Engine) Post(dst *Engine, delay Time, pri uint8, fn func(any), arg any) {
	c := e.cluster
	if c == nil || dst.cluster != c {
		panic("sim: Post requires both engines in one cluster")
	}
	if delay < c.lookahead {
		panic(fmt.Sprintf("sim: post delay %v below cluster lookahead %v", delay, c.lookahead))
	}
	e.postSeq++
	e.stagedPosts++
	if pri != PriRelease {
		e.dataPosts++
	}
	e.outbox[dst.shard] = append(e.outbox[dst.shard], //kite:alloc-ok outbox grows to the burst high-water mark, then recycles
		postRec{at: e.now + delay, pri: pri, src: uint16(e.shard), seq: e.postSeq, fn: fn, arg: arg})
}

// Cluster returns the cluster this engine belongs to, or nil for a
// standalone engine.
func (e *Engine) Cluster() *Cluster { return e.cluster }

// ShardID returns this engine's shard index within its cluster (0 for a
// standalone engine).
func (e *Engine) ShardID() int { return e.shard }

// nextLocal returns the earliest locally pending event time (heap or
// inbox).
func (e *Engine) nextLocal() (Time, bool) {
	hasHeap := len(e.heap) > 0
	hasIn := e.inboxHead < len(e.inbox)
	switch {
	case hasHeap && hasIn:
		ht, it := e.heap[0].at, e.inbox[e.inboxHead].at
		if it < ht {
			return it, true
		}
		return ht, true
	case hasHeap:
		return e.heap[0].at, true
	case hasIn:
		return e.inbox[e.inboxHead].at, true
	}
	return 0, false
}

// stepLocal executes the earliest local event strictly before horizon,
// reporting whether one ran. At an equal timestamp the local heap runs
// before relayed posts: a shard's own causally earlier work precedes
// foreign hand-offs landing at the same instant.
func (e *Engine) stepLocal(horizon Time) bool {
	useHeap := false
	useIn := false
	var at Time
	if len(e.heap) > 0 && e.heap[0].at < horizon {
		useHeap = true
		at = e.heap[0].at
	}
	if e.inboxHead < len(e.inbox) {
		if p := &e.inbox[e.inboxHead]; p.at < horizon && (!useHeap || p.at < at) {
			useIn = true
			useHeap = false
		}
	}
	switch {
	case useHeap:
		e.stepHeap()
	case useIn:
		p := e.inbox[e.inboxHead]
		e.inbox[e.inboxHead] = postRec{} // release fn/arg from the recycled slot
		e.inboxHead++
		e.now = p.at
		e.processed++
		p.fn(p.arg)
	default:
		return false
	}
	return true
}

// runTo executes local events strictly before horizon, up to budget, and
// returns how many ran. Once the inbox is drained — almost immediately, an
// inbox only ever holds last window's hand-offs — the loop drops into a
// heap-only fast path as tight as the standalone engine's, so shard
// execution pays the merge bookkeeping only while merged posts remain.
func (e *Engine) runTo(horizon Time, budget uint64) uint64 {
	var done uint64
	for e.inboxHead < len(e.inbox) {
		if done >= budget || !e.stepLocal(horizon) {
			return done
		}
		done++
	}
	for done < budget && len(e.heap) > 0 && e.heap[0].at < horizon {
		e.stepHeap()
		done++
	}
	return done
}

// runFree executes local events with timestamps strictly before limit, up
// to budget, stopping after any event that stages a data post. Only the
// express path (runExpress) may call it: the no-peeking guarantee shards
// normally get from the lookahead horizon instead comes from every other
// shard being empty.
func (e *Engine) runFree(limit Time, budget uint64) uint64 {
	var done uint64
	seq := e.dataPosts
	for e.inboxHead < len(e.inbox) {
		if done >= budget || e.dataPosts != seq || !e.stepLocal(limit) {
			return done
		}
		done++
	}
	for done < budget && e.dataPosts == seq && len(e.heap) > 0 && e.heap[0].at < limit {
		e.stepHeap()
		done++
	}
	return done
}
