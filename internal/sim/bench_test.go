package sim

import (
	"fmt"
	"testing"
)

// TestScheduleStepZeroAllocs is the tentpole's acceptance proof: once the
// heap has reached its high-water mark, a Schedule+Step round trip touches
// only recycled storage. The callback is a long-lived func value, as hot
// callers (Task, Batch, the evtchn upcall) now hold.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Prime the heap to its high-water mark so append never grows.
	for i := 0; i < 1024; i++ {
		e.Schedule(e.Now()+Time(i%7), fn)
	}
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+10, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestBatchArmZeroAllocs verifies the coalesced-wake path stays
// allocation-free: arming an already-armed batch is free, and even the
// fire/flush cycle reuses the cached closure.
func TestBatchArmZeroAllocs(t *testing.T) {
	e := NewEngine()
	b := NewBatch(e, func() {})
	b.Arm(0)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		b.Arm(e.Now() + 5)
		b.Arm(e.Now() + 1) // earlier deadline: schedules the superseding event
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Batch Arm+flush allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTaskWakeZeroAllocs verifies a task wake cycle (the pusher/soft_start
// wake path) does not allocate in steady state.
func TestTaskWakeZeroAllocs(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, "c0")
	task := NewTask(e, cpu, "t", Microsecond, func() {})
	task.Wake()
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		task.Wake()
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Task wake cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSchedule measures raw Schedule throughput against a drained
// queue (heap depth ~1).
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}
}

// BenchmarkScheduleStepDepth sweeps the standing heap depth: each
// iteration schedules one event and pops one with `depth` other events
// resident, which is the regime the full testbed runs in (hundreds to
// thousands of in-flight timers and wakes).
func BenchmarkScheduleStepDepth(b *testing.B) {
	for _, depth := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			e := NewEngine()
			fn := func() {}
			r := NewRand(uint64(depth))
			for i := 0; i < depth; i++ {
				e.Schedule(Time(r.Intn(1_000_000)), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Schedule(e.Now()+Time(r.Intn(1000)), fn)
				e.Step()
			}
		})
	}
}

// BenchmarkStepDrain measures pure pop throughput: fill the heap with
// randomly ordered events, then drain it.
func BenchmarkStepDrain(b *testing.B) {
	fn := func() {}
	r := NewRand(42)
	at := make([]Time, b.N)
	for i := range at {
		at[i] = Time(r.Intn(1 << 30))
	}
	e := NewEngine()
	for _, t := range at {
		e.Schedule(t, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for e.Step() {
	}
}

// BenchmarkTaskWake measures the coalesced thread-wake cycle used by every
// backend worker in the repository.
func BenchmarkTaskWake(b *testing.B) {
	e := NewEngine()
	cpu := NewCPU(e, "c0")
	task := NewTask(e, cpu, "t", Microsecond, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Wake()
		e.Run()
	}
}
