package metrics

import "sync/atomic"

// Counter is a process-wide telemetry counter. Increments are atomic so
// parallel experiment legs may share one counter: addition commutes, so
// totals are identical for any interleaving (the same argument that lets
// the runner's event counter stay deterministic under -parallel). Counters
// feed operator-facing telemetry only — never experiment results, which
// must come from per-simulation state.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Process-wide data-path counters, printed in the kitebench summary.
var (
	// FramePoolGets counts frame buffers handed out by all framepools.
	FramePoolGets Counter
	// FramePoolRecycles counts buffers returned to a framepool free list.
	FramePoolRecycles Counter
	// NetRxPersistHits counts netback Rx grants served from a persistent
	// mapping cache (no map hypercall).
	NetRxPersistHits Counter
	// NetRxPersistMisses counts netback Rx grants that had to be mapped.
	NetRxPersistMisses Counter
	// BlkPoolGets counts sector buffers handed out by all blkpools.
	BlkPoolGets Counter
	// BlkPoolRecycles counts sector buffers returned to a blkpool free list.
	BlkPoolRecycles Counter
	// NVMeVecReads counts scatter-gather read commands issued to NVMe
	// device models (one per merged blkback device op).
	NVMeVecReads Counter
	// NVMeVecWrites counts scatter-gather write commands issued to NVMe
	// device models.
	NVMeVecWrites Counter
	// NetQueueTxFrames counts guest→world frames processed by netback
	// per-queue pushers (all queues of all VIFs; adds commute, so the total
	// is queue-count- and interleaving-invariant for a given workload).
	NetQueueTxFrames Counter
	// NetQueueRxFrames counts world→guest frames processed by netback
	// per-queue soft_start workers.
	NetQueueRxFrames Counter
	// BlkQueueRequests counts ring requests drained by blkback per-queue
	// workers across all queues.
	BlkQueueRequests Counter
)
