package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core). Every
// stochastic element in the simulation draws from an explicitly seeded
// Rand so that experiment runs are reproducible bit-for-bit; math/rand's
// global state is never used.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Seed zero is remapped so
// the generator never gets stuck at zero.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0,n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0,n). n must be > 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal value (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns base scaled by a uniform factor in [1-f, 1+f]. It is used
// to add bounded run-to-run noise to cost constants so repeated experiment
// runs produce realistic (small) relative standard deviations like Table 4.
func (r *Rand) Jitter(base Time, f float64) Time {
	if f <= 0 {
		return base
	}
	scale := 1 + f*(2*r.Float64()-1)
	return Time(float64(base) * scale)
}

// Bytes fills b with random bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
