package sim

// This file is the coalesced-wake API: FIFO, an allocation-free ring
// queue for burst payloads, and Batch, which keeps at most one engine
// event pending no matter how many items are waiting behind it. Together
// they let a producer that used to schedule one closure-carrying event per
// frame or segment (netback's pusher/soft_start, the NIC's wire model,
// blkback's completion path) enqueue payloads for free and pay for a
// single wake per burst.

// FIFO is a growable ring-buffer queue. Push and Pop are O(1) and
// allocation-free once the buffer has reached its high-water mark — the
// spare slots act as the payload free-list, mirroring the engine's event
// heap. The zero value is ready to use.
type FIFO[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return q.n }

// Push appends v at the tail.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// Pop removes and returns the head item; it panics on an empty queue.
func (q *FIFO[T]) Pop() T {
	if q.n == 0 {
		panic("sim: Pop on empty FIFO")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references held by the recycled slot
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}

// Peek returns a pointer to the head item without removing it, or nil when
// the queue is empty. The pointer is invalidated by the next Push or Pop.
func (q *FIFO[T]) Peek() *T {
	if q.n == 0 {
		return nil
	}
	return &q.buf[q.head]
}

// Clear drops all queued items, releasing their references.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.n = 0, 0
}

func (q *FIFO[T]) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 16
	}
	buf := make([]T, size) //kite:alloc-ok amortized doubling; capacity is monotone
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Batch coalesces bursts of deadline-driven work into single engine
// events. A producer calls Arm(at) after queueing work due at time at;
// Batch guarantees the flush callback runs at the earliest armed deadline
// while keeping at most one *live* event in the engine, and the callback
// closure is created once at construction — so arming is allocation-free
// regardless of burst size. The flush callback drains whatever work has
// matured and re-arms for the next deadline if any remains.
//
// Like everything in sim, a Batch belongs to exactly one engine/goroutine.
type Batch struct {
	eng   *Engine
	flush func()
	fire  func() // cached; scheduling it never allocates
	armed bool
	due   Time
}

// NewBatch creates a batch that runs flush when an armed deadline matures.
func NewBatch(eng *Engine, flush func()) *Batch {
	if flush == nil {
		panic("sim: batch needs a flush callback")
	}
	b := &Batch{eng: eng, flush: flush}
	b.fire = b.onFire
	return b
}

// Armed reports whether a flush is pending.
func (b *Batch) Armed() bool { return b.armed }

// Arm schedules the flush to run no later than virtual time at (clamped to
// now). Arming an already-armed batch with an equal or later deadline is
// free — the pending flush covers it; an earlier deadline schedules a
// superseding event and the out-paced one becomes a no-op when it fires.
func (b *Batch) Arm(at Time) {
	if at < b.eng.Now() {
		at = b.eng.Now()
	}
	if b.armed && b.due <= at {
		return
	}
	b.armed = true
	b.due = at
	b.eng.Schedule(at, b.fire)
}

func (b *Batch) onFire() {
	// A stale event — superseded by an earlier Arm or already serviced by
	// a prior flush — finds the batch disarmed or not yet due and yields.
	if !b.armed || b.eng.Now() < b.due {
		return
	}
	b.armed = false
	b.flush()
}
