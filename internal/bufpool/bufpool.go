// Package bufpool implements the guest's page cache over a paravirtual
// disk: fixed-size chunks with LRU eviction, read-through with miss
// coalescing, and write-back with dirty-chunk clustering. The storage
// macrobenchmarks (sysbench fileio, filebench, MySQL-on-disk) exercise the
// blkfront/blkback path through this cache exactly like the page cache on
// the paper's DomU, and "flush the read buffer ... use total I/O size
// bigger than main memory" (§5.4) translates to bounded capacity here.
package bufpool

import (
	"container/list"
	"fmt"
	"sort"

	"kite/internal/sim"
)

// Disk is the cache's backing device; blkfront.Device satisfies it. The
// data slice a ReadSectors callback receives is only valid during the
// callback (it is pooled by the frontend); the cache therefore fills its
// chunks with ReadSectorsInto and never retains a disk-owned buffer.
type Disk interface {
	ReadSectors(sector int64, n int, cb func(data []byte, err error))
	ReadSectorsInto(sector int64, dst []byte, cb func(err error))
	WriteSectors(sector int64, data []byte, cb func(err error))
	Flush(cb func(err error))
	SectorCount() int64
}

// SectorSize mirrors the disk's logical block.
const SectorSize = 512

// Stats counts cache activity.
type Stats struct {
	Hits, Misses uint64
	Evictions    uint64
	Writebacks   uint64
	ReadBytes    uint64
	WriteBytes   uint64
}

// Config describes a pool.
type Config struct {
	// ChunkBytes is the cache granularity (must be a multiple of
	// SectorSize). Default 16 KiB.
	ChunkBytes int
	// CapacityBytes bounds resident cache memory. Default 64 MiB.
	CapacityBytes int64
	// CPUs and costs model the guest's page-cache software path.
	CPUs      *sim.CPUPool
	HitCost   sim.Time // per chunk touched in cache
	PerKBCost sim.Time // memcpy per KiB moved to/from the caller
}

type chunkState int

const (
	chunkLoading chunkState = iota
	chunkValid
)

type chunk struct {
	no      int64
	state   chunkState
	data    []byte
	dirty   bool
	waiters []func(error)
	lruElem *list.Element
	wb      bool // writeback in flight
	refs    int  // scheduled hit callbacks still holding data; pins eviction
}

// Pool is one page cache instance.
type Pool struct {
	eng  *sim.Engine
	disk Disk
	cfg  Config

	chunks map[int64]*chunk
	lru    *list.List // front = most recent

	// bufFree recycles chunk-sized byte slices: chunk payloads come from
	// and return to it on eviction, and writeback staging borrows from it,
	// so the steady-state cache allocates no fresh chunk buffers.
	bufFree [][]byte

	stats Stats
}

// New creates a pool over disk.
func New(eng *sim.Engine, disk Disk, cfg Config) *Pool {
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = 16 << 10
	}
	if cfg.ChunkBytes%SectorSize != 0 {
		panic(fmt.Sprintf("bufpool: chunk size %d not sector aligned", cfg.ChunkBytes))
	}
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 64 << 20
	}
	return &Pool{
		eng:    eng,
		disk:   disk,
		cfg:    cfg,
		chunks: make(map[int64]*chunk),
		lru:    list.New(),
	}
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// getBuf hands out a chunk-sized buffer; contents are stale, callers must
// fully overwrite it.
func (p *Pool) getBuf() []byte {
	if n := len(p.bufFree); n > 0 {
		b := p.bufFree[n-1]
		p.bufFree = p.bufFree[:n-1]
		return b
	}
	return make([]byte, p.cfg.ChunkBytes)
}

func (p *Pool) putBuf(b []byte) {
	p.bufFree = append(p.bufFree, b)
}

// dropChunk removes a chunk from the cache and recycles its payload.
func (p *Pool) dropChunk(c *chunk) {
	if c.lruElem != nil {
		p.lru.Remove(c.lruElem)
		c.lruElem = nil
	}
	delete(p.chunks, c.no)
	if c.data != nil {
		p.putBuf(c.data)
		c.data = nil
	}
}

// Resident returns the current cached byte count.
func (p *Pool) Resident() int64 { return int64(len(p.chunks)) * int64(p.cfg.ChunkBytes) }

// SizeBytes returns the byte size of the underlying disk.
func (p *Pool) SizeBytes() int64 { return p.disk.SectorCount() * SectorSize }

// DropCaches discards all clean chunks (the benchmark scripts' `echo 3 >
// drop_caches` between runs). Dirty chunks survive.
func (p *Pool) DropCaches() {
	for _, c := range p.chunks {
		if c.state == chunkValid && !c.dirty && !c.wb && c.refs == 0 {
			p.dropChunk(c)
		}
	}
}

// chargeThen bills the page-cache CPU work and runs fn at its completion
// time. Cached operations therefore consume real virtual time — without
// this, an all-hit workload would spin at a single simulated instant.
func (p *Pool) chargeThen(bytes int, chunks int, fn func()) {
	if p.cfg.CPUs == nil {
		p.eng.After(sim.Time(chunks)*200, fn) // uncharged pools still advance time
		return
	}
	done := p.cfg.CPUs.Charge(sim.Time(chunks)*p.cfg.HitCost + sim.Time(bytes)*p.cfg.PerKBCost/1024)
	p.eng.Schedule(done, fn)
}

func (p *Pool) touch(c *chunk) {
	if c.lruElem != nil {
		p.lru.MoveToFront(c.lruElem)
	}
}

// Read copies n bytes at byte offset off; cb receives a fresh buffer.
func (p *Pool) Read(off int64, n int, cb func(data []byte, err error)) {
	out := make([]byte, n)
	p.ReadInto(off, out, func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(out, nil)
	})
}

// ReadInto copies len(dst) bytes at byte offset off into dst, sparing the
// per-call output allocation of Read.
func (p *Pool) ReadInto(off int64, dst []byte, cb func(err error)) {
	n := len(dst)
	out := dst
	if err := p.validate(off, n); err != nil {
		p.eng.After(0, func() { cb(err) })
		return
	}
	cs := int64(p.cfg.ChunkBytes)
	first := off / cs
	last := (off + int64(n) - 1) / cs
	remaining := int(last - first + 1)
	var failed error
	oneDone := func(err error) {
		if err != nil && failed == nil {
			failed = err
		}
		remaining--
		if remaining == 0 {
			if failed != nil {
				cb(failed)
				return
			}
			p.chargeThen(n, int(last-first+1), func() { cb(nil) })
		}
	}
	p.stats.ReadBytes += uint64(n)
	for no := first; no <= last; no++ {
		no := no
		p.withChunk(no, func(c *chunk, err error) {
			if err == nil {
				lo := no * cs
				srcFrom := int64(0)
				dstFrom := lo - off
				if dstFrom < 0 {
					srcFrom = -dstFrom
					dstFrom = 0
				}
				count := cs - srcFrom
				if dstFrom+count > int64(n) {
					count = int64(n) - dstFrom
				}
				copy(out[dstFrom:dstFrom+count], c.data[srcFrom:srcFrom+count])
				p.touch(c)
			}
			oneDone(err)
		})
	}
}

// Write stores data at byte offset off (write-back: completion means the
// data is in cache; Sync persists it).
func (p *Pool) Write(off int64, data []byte, cb func(err error)) {
	n := len(data)
	if err := p.validate(off, n); err != nil {
		p.eng.After(0, func() { cb(err) })
		return
	}
	cs := int64(p.cfg.ChunkBytes)
	first := off / cs
	last := (off + int64(n) - 1) / cs
	remaining := int(last - first + 1)
	var failed error
	oneDone := func(err error) {
		if err != nil && failed == nil {
			failed = err
		}
		remaining--
		if remaining == 0 {
			err := failed
			p.chargeThen(n, int(last-first+1), func() { cb(err) })
		}
	}
	p.stats.WriteBytes += uint64(n)
	for no := first; no <= last; no++ {
		no := no
		lo := no * cs
		srcFrom := lo - off
		dstFrom := int64(0)
		if srcFrom < 0 {
			dstFrom = -srcFrom
			srcFrom = 0
		}
		count := cs - dstFrom
		if srcFrom+count > int64(n) {
			count = int64(n) - srcFrom
		}
		fullOverwrite := dstFrom == 0 && count == cs

		if fullOverwrite {
			// No need to read the old contents.
			c := p.chunks[no]
			if c == nil {
				c = &chunk{no: no, state: chunkValid, data: p.getBuf()}
				p.chunks[no] = c
				c.lruElem = p.lru.PushFront(c)
				p.maybeEvict()
			}
			if c.state == chunkLoading {
				c.waiters = append(c.waiters, func(err error) {
					if err != nil {
						oneDone(err)
						return
					}
					copy(c.data, data[srcFrom:srcFrom+count])
					c.dirty = true
					oneDone(nil)
				})
				continue
			}
			copy(c.data, data[srcFrom:srcFrom+count])
			c.dirty = true
			p.touch(c)
			p.eng.After(0, func() { oneDone(nil) })
			continue
		}
		p.withChunk(no, func(c *chunk, err error) {
			if err == nil {
				copy(c.data[dstFrom:dstFrom+count], data[srcFrom:srcFrom+count])
				c.dirty = true
				p.touch(c)
			}
			oneDone(err)
		})
	}
}

// withChunk runs fn with the chunk resident (read-through on miss).
func (p *Pool) withChunk(no int64, fn func(*chunk, error)) {
	c := p.chunks[no]
	if c != nil {
		if c.state == chunkValid {
			p.stats.Hits++
			// Completion is asynchronous even on a hit, like a page-cache
			// read returning to userspace. The reference pins the chunk's
			// data against eviction (which would recycle the buffer) until
			// the callback has run.
			c.refs++
			p.eng.After(0, func() {
				c.refs--
				fn(c, nil)
			})
			return
		}
		// Loading: piggyback.
		p.stats.Hits++
		c.waiters = append(c.waiters, func(err error) {
			if err != nil {
				fn(nil, err)
				return
			}
			fn(c, nil)
		})
		return
	}
	p.stats.Misses++
	c = &chunk{no: no, state: chunkLoading, data: p.getBuf()}
	p.chunks[no] = c
	c.lruElem = p.lru.PushFront(c)
	p.maybeEvict()
	cs := int64(p.cfg.ChunkBytes)
	p.disk.ReadSectorsInto(no*cs/SectorSize, c.data, func(err error) {
		if err != nil {
			p.dropChunk(c)
			fn(nil, err)
			for _, w := range c.waiters {
				w(err)
			}
			return
		}
		c.state = chunkValid
		fn(c, nil)
		for _, w := range c.waiters {
			w(nil)
		}
		c.waiters = nil
	})
}

// maybeEvict keeps residency under capacity: clean LRU chunks are dropped;
// dirty LRU chunks get a writeback started and are dropped on completion.
func (p *Pool) maybeEvict() {
	for p.Resident() > p.cfg.CapacityBytes {
		e := p.lru.Back()
		if e == nil {
			return
		}
		c := e.Value.(*chunk)
		if c.state == chunkLoading || c.wb || c.refs > 0 {
			// Move it off the back so we can examine others; it will be
			// reconsidered later.
			p.lru.MoveToFront(e)
			return
		}
		if c.dirty {
			p.writeback(c, func() {
				if c.dirty || c.refs > 0 {
					// Re-dirtied or re-referenced while the writeback was
					// in flight: the data must survive; a later
					// sync/eviction will retry.
					return
				}
				p.dropChunk(c)
				p.stats.Evictions++
			})
			return
		}
		p.dropChunk(c)
		p.stats.Evictions++
	}
}

func (p *Pool) writeback(c *chunk, then func()) {
	c.wb = true
	c.dirty = false
	p.stats.Writebacks++
	cs := int64(p.cfg.ChunkBytes)
	// Stage through a recycled buffer so a concurrent overwrite of the
	// chunk cannot race the in-flight disk write.
	data := p.getBuf()
	copy(data, c.data)
	p.disk.WriteSectors(c.no*cs/SectorSize, data, func(err error) {
		p.putBuf(data)
		c.wb = false
		if err != nil {
			c.dirty = true // keep it; a later sync retries
		}
		if then != nil {
			then()
		}
	})
}

// Sync writes every dirty chunk back and issues a device flush.
// Writebacks are issued in ascending chunk order: map iteration order
// would vary run to run and leak into the device's event schedule,
// breaking bit-for-bit determinism.
func (p *Pool) Sync(cb func(err error)) {
	var dirty []*chunk
	for _, c := range p.chunks {
		if c.dirty && c.state == chunkValid && !c.wb {
			dirty = append(dirty, c)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].no < dirty[j].no })
	remaining := len(dirty)
	if remaining == 0 {
		p.disk.Flush(func(err error) { cb(err) })
		return
	}
	for _, c := range dirty {
		p.writeback(c, func() {
			remaining--
			if remaining == 0 {
				p.disk.Flush(func(err error) { cb(err) })
			}
		})
	}
}

// DirtyChunks returns how many chunks await writeback.
func (p *Pool) DirtyChunks() int {
	n := 0
	for _, c := range p.chunks {
		if c.dirty {
			n++
		}
	}
	return n
}

func (p *Pool) validate(off int64, n int) error {
	if off < 0 || n <= 0 {
		return fmt.Errorf("bufpool: bad range (off %d, %d bytes)", off, n)
	}
	if off+int64(n) > p.SizeBytes() {
		return fmt.Errorf("bufpool: range beyond disk (off %d + %d)", off, n)
	}
	return nil
}
