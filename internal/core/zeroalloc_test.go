//go:build !race

// The race detector instruments allocations, so the exact-zero assertions
// here only hold in normal builds; `go test -race` skips this file.

package core

import (
	"testing"

	"kite/internal/netstack"
)

// TestForwardPathZeroAlloc asserts the tentpole property: after warmup
// (pool population, FIFO/map high-water marks, ARP and grant caches), one
// forwarded frame allocates nothing on the heap in either direction —
// guest→netfront→netback→bridge→NIC→client (Tx) and the reverse (Rx).
func TestForwardPathZeroAlloc(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 0xa110c)
	if err != nil {
		t.Fatal(err)
	}
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {})
	rig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {})
	payload := pattern(1400)
	eng := rig.System.Eng

	tx := func() {
		rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, 9001, payload)
		eng.Run()
	}
	rx := func() {
		rig.Client.Stack.SendUDP(rig.GuestIP, 9001, 9000, payload)
		eng.Run()
	}
	for i := 0; i < 300; i++ {
		tx()
		rx()
	}

	if allocs := testing.AllocsPerRun(100, tx); allocs != 0 {
		t.Errorf("Tx direction: %.1f allocs per forwarded frame, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, rx); allocs != 0 {
		t.Errorf("Rx direction: %.1f allocs per forwarded frame, want 0", allocs)
	}
	if n := rig.System.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked", n)
	}
}

// TestForwardPathZeroAllocMQ asserts the multi-queue variant of the same
// property: with 4 vif queues (4 driver-domain vCPUs, per-queue framepool
// arenas and grant caches), the steady-state forwarded frame still
// allocates nothing in either direction.
func TestForwardPathZeroAllocMQ(t *testing.T) {
	rig, err := NewNetworkRigCfg(NetworkRigConfig{Kind: KindKite, Seed: 0xa110c4, Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := rig.Guest.Net.NumQueues(); n != 4 {
		t.Fatalf("negotiated %d queues, want 4", n)
	}
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {})
	rig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {})
	payload := pattern(1400)
	eng := rig.System.Eng

	// Warm every queue: 64 source ports hash across all four queues,
	// populating each queue's Tx slots, arenas, and persistent mappings.
	// The frontend cycles its 256 posted Rx buffers round-robin, so each
	// queue needs >256 Rx frames before the backend's persistent-grant
	// cache stops missing.
	for i := 0; i < 1300; i++ {
		rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i%64), payload)
		eng.Run()
		rig.Client.Stack.SendUDP(rig.GuestIP, 9001, uint16(9000+i%64), payload)
		eng.Run()
	}
	for port := 0; port < 4; port++ {
		port := uint16(9001 + port*16)
		tx := func() {
			rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, port, payload)
			eng.Run()
		}
		rx := func() {
			rig.Client.Stack.SendUDP(rig.GuestIP, 9001, port, payload)
			eng.Run()
		}
		if allocs := testing.AllocsPerRun(50, tx); allocs != 0 {
			t.Errorf("Tx srcport %d: %.1f allocs per frame, want 0", port, allocs)
		}
		if allocs := testing.AllocsPerRun(50, rx); allocs != 0 {
			t.Errorf("Rx srcport %d: %.1f allocs per frame, want 0", port, allocs)
		}
	}
	if n := rig.System.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked", n)
	}
}

// TestBlockPathZeroAlloc asserts the storage tentpole property: once pools,
// persistent grants, and the NVMe sparse store are warm, a 256 KiB write
// and a 256 KiB read through the full PV storage pipeline allocate nothing
// on the heap — requests ride pooled records with pre-bound closures,
// merged device ops hand the device an iovec of grant-mapped views, and
// read completions borrow pooled sector buffers.
func TestBlockPathZeroAlloc(t *testing.T) {
	rig, err := NewStorageRig(StorageRigConfig{Kind: KindKite, Seed: 0xb10c, DiskBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	const ioBytes = 256 << 10
	payload := pattern(ioBytes)
	eng := rig.System.Eng
	wcb := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	rcb := func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	write := func() {
		rig.Guest.Disk.WriteSectors(0, payload, wcb)
		eng.Run()
	}
	read := func() {
		rig.Guest.Disk.ReadSectors(0, ioBytes, rcb)
		eng.Run()
	}
	for i := 0; i < 100; i++ { // warm pools, grants, and the sparse store
		write()
		read()
	}

	if allocs := testing.AllocsPerRun(100, write); allocs != 0 {
		t.Errorf("write path: %.1f allocs per 256 KiB write, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, read); allocs != 0 {
		t.Errorf("read path: %.1f allocs per 256 KiB read, want 0", allocs)
	}
	if n := rig.System.BlkPool.Outstanding(); n != 0 {
		t.Fatalf("%d sector buffers leaked", n)
	}
}

// TestBlockPathZeroAllocMQ asserts the same property with 4 vbd hardware
// queues: a 256 KiB op that straddles a 512 KiB stripe boundary (so its
// chunks ride two queues with separate rings, page pools, and blkback
// shards) still allocates nothing once warm.
func TestBlockPathZeroAllocMQ(t *testing.T) {
	rig, err := NewStorageRig(StorageRigConfig{
		Kind: KindKite, Seed: 0xb10c4, DiskBytes: 1 << 30, Queues: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := rig.Guest.Disk.NumQueues(); n != 4 {
		t.Fatalf("negotiated %d queues, want 4", n)
	}
	const ioBytes = 256 << 10
	payload := pattern(ioBytes)
	eng := rig.System.Eng
	wcb := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	rcb := func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// sector 896 puts the op across the stripe-0/stripe-1 boundary; the
	// warmup loop also touches stripes 2 and 3 so all four queues' pools
	// and persistent grants are populated.
	write := func() {
		rig.Guest.Disk.WriteSectors(896, payload, wcb)
		eng.Run()
	}
	read := func() {
		rig.Guest.Disk.ReadSectors(896, ioBytes, rcb)
		eng.Run()
	}
	for i := 0; i < 100; i++ {
		write()
		read()
		base := int64(2048 + (i%2)*1024) // stripes 2 and 3
		rig.Guest.Disk.WriteSectors(base, payload[:4096], wcb)
		eng.Run()
	}

	if allocs := testing.AllocsPerRun(100, write); allocs != 0 {
		t.Errorf("striped write: %.1f allocs per 256 KiB write, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, read); allocs != 0 {
		t.Errorf("striped read: %.1f allocs per 256 KiB read, want 0", allocs)
	}
	if n := rig.System.BlkPool.Outstanding(); n != 0 {
		t.Fatalf("%d sector buffers leaked", n)
	}
}
