package netpkt

import (
	"testing"
)

// TestToeplitzKnownVectors pins the Toeplitz construction against the
// Microsoft RSS verification-suite vectors (the first 16 key bytes of the
// canonical 40-byte key suffice for 12-byte inputs).
func TestToeplitzKnownVectors(t *testing.T) {
	var r RSS
	copy(r.key[:], []byte{
		0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
		0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	})
	r.buildTables()
	// Source 66.9.149.187:2794 -> destination 161.142.100.80:1766.
	in := [12]byte{66, 9, 149, 187, 161, 142, 100, 80, 2794 >> 8, 2794 & 0xff, 1766 >> 8, 1766 & 0xff}
	if h := r.toeplitz(&in); h != 0x51ccc178 {
		t.Fatalf("4-tuple hash = %#x, want 0x51ccc178", h)
	}
	// Same addresses, 2-tuple (zero ports is not the published 2-tuple
	// vector — that one omits the port bytes entirely — so check the other
	// published 4-tuple vector instead).
	in2 := [12]byte{199, 92, 111, 2, 65, 69, 140, 83, 14230 >> 8, 14230 & 0xff, 4739 >> 8, 4739 & 0xff}
	if h := r.toeplitz(&in2); h != 0xc626b0ea {
		t.Fatalf("4-tuple hash #2 = %#x, want 0xc626b0ea", h)
	}
}

func udpFrame(src, dst IP, srcPort, dstPort uint16) []byte {
	u := UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	ip := IPv4Header{TTL: 64, Proto: ProtoUDP, Src: src, Dst: dst}
	f := Frame{Dst: MAC{1}, Src: MAC{2}, EtherType: EtherTypeIPv4,
		Payload: ip.Marshal(u.Marshal([]byte("payload")))}
	return f.Marshal()
}

func TestRSSDeterministicAndFlowAffine(t *testing.T) {
	r1 := NewRSS(0x5eed)
	r2 := NewRSS(0x5eed)
	other := NewRSS(0xdead) // different seed
	frame := udpFrame(IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), 9001, 9000)
	h1, ok1 := r1.FrameHash(frame)
	h2, ok2 := r2.FrameHash(frame)
	if !ok1 || !ok2 || h1 != h2 {
		t.Fatalf("same seed, same frame: %#x/%v vs %#x/%v", h1, ok1, h2, ok2)
	}
	if ho, _ := other.FrameHash(frame); ho == h1 {
		t.Fatal("different seeds produced identical hash (astronomically unlikely)")
	}
	// Every packet of a flow maps to the same queue, at any queue count.
	for _, n := range []int{1, 2, 4, 8} {
		q := r1.Queue(frame, n)
		if q < 0 || q >= n {
			t.Fatalf("queue %d out of range [0,%d)", q, n)
		}
		if again := r1.Queue(frame, n); again != q {
			t.Fatalf("flow not sticky: %d then %d", q, again)
		}
	}
}

func TestRSSSpreadsFlows(t *testing.T) {
	r := NewRSS(0x5eed)
	const queues = 4
	var hit [queues]int
	for port := uint16(9000); port < 9064; port++ {
		f := udpFrame(IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), port, 7)
		hit[r.Queue(f, queues)]++
	}
	for q, n := range hit {
		if n == 0 {
			t.Fatalf("queue %d received none of 64 distinct flows: %v", q, hit)
		}
	}
}

func TestRSSNonIPGoesToQueueZero(t *testing.T) {
	r := NewRSS(0x5eed)
	arp := Frame{Dst: Broadcast, Src: MAC{2}, EtherType: EtherTypeARP,
		Payload: (&ARP{Op: ARPRequest}).Marshal()}
	if q := r.Queue(arp.Marshal(), 8); q != 0 {
		t.Fatalf("ARP steered to queue %d, want 0", q)
	}
	if _, ok := r.FrameHash([]byte{1, 2, 3}); ok {
		t.Fatal("runt frame hashed")
	}
}

func TestRSSZeroAlloc(t *testing.T) {
	r := NewRSS(0x5eed)
	frame := udpFrame(IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), 9001, 9000)
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		sink += r.Queue(frame, 4)
	})
	if allocs != 0 {
		t.Fatalf("steering allocates %.1f/frame, want 0", allocs)
	}
	_ = sink
}
