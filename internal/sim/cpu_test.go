package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCPUChargeSerializes(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	if end := c.Charge(100); end != 100 {
		t.Fatalf("first charge completes at %v, want 100", end)
	}
	if end := c.Charge(50); end != 150 {
		t.Fatalf("second charge completes at %v, want 150 (serialized)", end)
	}
}

func TestCPUIdleGapResetsStart(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	c.Charge(10)
	e.RunUntil(1000)
	if end := c.Charge(10); end != 1010 {
		t.Fatalf("charge after idle completes at %v, want 1010", end)
	}
}

func TestCPUZeroChargeNoTime(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	c.Charge(40)
	if end := c.Charge(0); end != 40 {
		t.Fatalf("zero charge returned %v, want 40", end)
	}
	if c.BusyTotal() != 40 {
		t.Fatalf("busy total = %v, want 40", c.BusyTotal())
	}
}

func TestCPUNegativeChargePanics(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	c.Charge(-1)
}

func TestCPUExecRunsAtCompletion(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	var at Time = -1
	c.Exec(70, func() { at = e.Now() })
	e.Run()
	if at != 70 {
		t.Fatalf("Exec callback at %v, want 70", at)
	}
}

func TestCPUUtilizationWindow(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	c.Charge(250)
	e.RunUntil(1000)
	got := c.WindowUtilization()
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	c.ResetWindow()
	e.RunUntil(2000)
	if u := c.WindowUtilization(); u != 0 {
		t.Fatalf("utilization after reset with no work = %v, want 0", u)
	}
}

func TestCPUUtilizationCapsAtOne(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	c.Charge(5000) // work extends past the window end
	e.RunUntil(1000)
	if u := c.WindowUtilization(); u > 1 {
		t.Fatalf("utilization = %v, want <= 1", u)
	}
}

func TestCPUPoolPicksEarliestFree(t *testing.T) {
	e := NewEngine()
	p := NewCPUPool(e, "pool", 2)
	p.Charge(100) // lands on cpu0
	end := p.Charge(100)
	if end != 100 {
		t.Fatalf("second pool charge completes at %v, want 100 (parallel CPU)", end)
	}
	end = p.Charge(100) // both busy until 100 now
	if end != 200 {
		t.Fatalf("third pool charge completes at %v, want 200", end)
	}
}

func TestCPUPoolSizeValidation(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size pool did not panic")
		}
	}()
	NewCPUPool(e, "bad", 0)
}

// Property: total busy time equals the sum of charges, and completion times
// are non-decreasing for a sequence of charges issued at one instant.
func TestCPUAccountingProperty(t *testing.T) {
	prop := func(costs []uint16) bool {
		e := NewEngine()
		c := NewCPU(e, "p")
		var sum Time
		last := Time(0)
		for _, raw := range costs {
			cost := Time(raw)
			end := c.Charge(cost)
			if end < last {
				return false
			}
			last = end
			sum += cost
		}
		return c.BusyTotal() == sum && last == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskCoalescesWakes(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	runs := 0
	task := NewTask(e, c, "worker", 10, func() { runs++ })
	task.Wake()
	task.Wake()
	task.Wake()
	e.Run()
	if runs != 1 {
		t.Fatalf("3 wakes before running produced %d runs, want 1 (coalesced)", runs)
	}
	if task.Wakes() != 3 {
		t.Fatalf("wake count = %d, want 3", task.Wakes())
	}
}

func TestTaskRewakeDuringRun(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	var task *Task
	runs := 0
	task = NewTask(e, c, "worker", 0, func() {
		runs++
		if runs == 1 {
			task.Wake() // work arrived while we were running
		}
	})
	task.Wake()
	e.Run()
	if runs != 2 {
		t.Fatalf("wake during run produced %d runs, want 2", runs)
	}
}

func TestTaskWakeLatencyDelays(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	var ranAt Time = -1
	task := NewTask(e, c, "worker", 10*Microsecond, func() { ranAt = e.Now() })
	task.Wake()
	e.Run()
	if ranAt != 10*Microsecond {
		t.Fatalf("task body ran at %v, want the 10us wake latency", ranAt)
	}
	// Only the dispatch cost is charged as CPU work, not the full latency.
	if c.BusyTotal() != dispatchCost {
		t.Fatalf("wake charged %v of CPU, want %v (dispatch only)", c.BusyTotal(), dispatchCost)
	}
}

func TestTaskNilBodyPanics(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "test")
	defer func() {
		if recover() == nil {
			t.Fatal("nil body did not panic")
		}
	}()
	NewTask(e, c, "bad", 0, nil)
}

func TestTaskDrainsQueueExactlyOnce(t *testing.T) {
	// Model the pusher pattern: producer enqueues items and wakes; the task
	// drains the queue. Every item must be processed exactly once.
	e := NewEngine()
	c := NewCPU(e, "dd")
	var queue []int
	var got []int
	task := NewTask(e, c, "pusher", 5, func() {})
	*task = *NewTask(e, c, "pusher", 5, func() {
		for len(queue) > 0 {
			got = append(got, queue[0])
			queue = queue[1:]
			c.Charge(3)
		}
	})
	for i := 0; i < 20; i++ {
		i := i
		e.Schedule(Time(i*2), func() {
			queue = append(queue, i)
			task.Wake()
		})
	}
	e.Run()
	if len(got) != 20 {
		t.Fatalf("drained %d items, want 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("items out of order: %v", got)
		}
	}
}
