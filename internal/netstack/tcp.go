package netstack

import (
	"fmt"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// MSS is the TCP maximum segment size over the testbed's 1500-byte MTU.
const MSS = netpkt.MTU - netpkt.IPHeaderLen - netpkt.TCPHeaderLen

// rtoMin/rtoMax clamp the adaptive retransmission timeout (RFC 6298
// style, scaled to the sub-millisecond RTTs of a local 10GbE testbed).
const (
	rtoMin = 3 * sim.Millisecond
	rtoMax = 60 * sim.Millisecond
)

// delayedAckTimeout bounds how long an ACK for a single segment is held.
const delayedAckTimeout = 2 * sim.Millisecond

type connKey struct {
	remote     netpkt.IP
	remotePort uint16
	localPort  uint16
}

type connState int

const (
	stateSynSent connState = iota
	stateSynRcvd
	stateEstablished
	stateClosed
)

// Conn is one TCP connection endpoint. Handlers run on the simulation
// goroutine; OnData receives in-order payload bytes.
type Conn struct {
	stack *Stack
	key   connKey
	state connState

	iss            uint32
	sndUna, sndNxt uint32
	sndMax         uint32 // highest sequence ever sent (survives rewinds)
	rcvNxt         uint32
	peerWnd        int
	cwnd, ssthresh int    // Reno-lite congestion control
	sendQ          []byte // bytes from sndUna upward (unacked + unsent)

	finQueued, finSent, finAcked bool
	finSeq                       uint32
	peerFin                      bool

	rtoArmed   bool
	rtoBackoff uint
	ackTimerOn bool
	lastAck    uint32
	dupAcks    int
	ackPending int

	// RTT estimation (RFC 6298, with Karn's rule via sampleValid).
	srtt, rttvar sim.Time
	sampleSeq    uint32
	sampleTime   sim.Time
	sampleValid  bool

	onData   func([]byte)
	onClose  func(err error)
	dialCB   func(*Conn, error)
	acceptCB func(*Conn) // held between SYN and the handshake-completing ACK

	retransmits uint64
	fastRetrans uint64
	rtoRetrans  uint64
	bytesSent   uint64
	bytesRecv   uint64
}

// RemoteIP returns the peer address.
func (c *Conn) RemoteIP() netpkt.IP { return c.key.remote }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// Retransmits returns how many go-back-N recoveries the sender performed.
func (c *Conn) Retransmits() uint64 { return c.retransmits }

// BytesSent returns payload bytes accepted from the application.
func (c *Conn) BytesSent() uint64 { return c.bytesSent }

// BytesReceived returns payload bytes delivered to the application.
func (c *Conn) BytesReceived() uint64 { return c.bytesRecv }

// OnData installs the receive callback.
func (c *Conn) OnData(fn func([]byte)) { c.onData = fn }

// OnClose installs the close/error callback (fires once).
func (c *Conn) OnClose(fn func(err error)) { c.onClose = fn }

// Established reports whether the connection is open for data.
func (c *Conn) Established() bool { return c.state == stateEstablished }

func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// Listen installs an accept callback for a local port. The callback runs
// when a connection completes its handshake.
func (s *Stack) Listen(port uint16, accept func(*Conn)) error {
	if _, taken := s.listeners[port]; taken {
		return fmt.Errorf("netstack: tcp port %d already listening on %s", port, s.Name)
	}
	s.listeners[port] = accept
	return nil
}

// Dial opens a connection to dst:port; cb fires with the established
// connection or an error (reset).
func (s *Stack) Dial(dst netpkt.IP, port uint16, cb func(*Conn, error)) *Conn {
	key := connKey{remote: dst, remotePort: port, localPort: s.EphemeralPort()}
	c := &Conn{
		stack: s, key: key, state: stateSynSent,
		iss:      uint32(s.rng.Uint64()),
		peerWnd:  0xffff,
		cwnd:     10 * MSS,
		ssthresh: 1 << 30,
		dialCB:   cb,
	}
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.sndMax = c.sndNxt
	s.conns[key] = c
	s.cpus.Charge(s.costs.Syscall)
	c.sendSegment(netpkt.TCPSyn, c.iss, nil)
	c.armRTO()
	return c
}

// Send queues application data on the connection.
func (c *Conn) Send(data []byte) {
	if c.state == stateClosed {
		return
	}
	s := c.stack
	s.cpus.Charge(s.costs.Syscall + sim.Time(len(data))*s.costs.PerKB/1024)
	c.sendQ = append(c.sendQ, data...)
	c.bytesSent += uint64(len(data))
	c.pump()
}

// Close queues a FIN after pending data drains.
func (c *Conn) Close() {
	if c.state == stateClosed || c.finQueued {
		return
	}
	c.finQueued = true
	c.pump()
}

func (c *Conn) window() int {
	w := c.stack.TCPWindow
	if c.peerWnd < w {
		w = c.peerWnd
	}
	if c.cwnd < w {
		w = c.cwnd
	}
	if w < MSS {
		w = MSS
	}
	return w
}

// onLoss shrinks the congestion window (multiplicative decrease). toOne
// models an RTO (window collapses to one segment so the lost head always
// fits the bottleneck queue).
func (c *Conn) onLoss(toOne bool) {
	half := int(c.sndNxt-c.sndUna) / 2
	if half < 2*MSS {
		half = 2 * MSS
	}
	c.ssthresh = half
	if toOne {
		c.cwnd = MSS
	} else {
		c.cwnd = half
	}
}

// rto returns the current adaptive timeout. Before the first RTT sample
// the timeout is conservative (RFC 6298 starts at a full second; scaled
// down for a local testbed) so loaded first exchanges never spuriously
// fire.
func (c *Conn) rto() sim.Time {
	t := c.srtt + 4*c.rttvar
	if c.srtt == 0 {
		t = 25 * sim.Millisecond
	}
	t <<= c.rtoBackoff
	if t < rtoMin {
		t = rtoMin
	}
	if t > rtoMax {
		t = rtoMax
	}
	return t
}

// sampleRTT folds one measurement into the smoothed estimators.
func (c *Conn) sampleRTT(m sim.Time) {
	if c.srtt == 0 {
		c.srtt = m
		c.rttvar = m / 2
		return
	}
	d := c.srtt - m
	if d < 0 {
		d = -d
	}
	c.rttvar = (3*c.rttvar + d) / 4
	c.srtt = (7*c.srtt + m) / 8
}

// onAckProgress grows the congestion window: slow start below ssthresh,
// then one MSS per window (additive increase).
func (c *Conn) onAckProgress(acked int) {
	if c.cwnd < c.ssthresh {
		c.cwnd += acked
	} else {
		c.cwnd += MSS * MSS / c.cwnd
	}
	if max := c.stack.TCPWindow; c.cwnd > max {
		c.cwnd = max
	}
}

// pump transmits as much queued data as the window allows, then a FIN if
// one is queued.
func (c *Conn) pump() {
	if c.state == stateClosed || c.state == stateSynSent {
		return
	}
	inFlight := int(c.sndNxt - c.sndUna)
	for inFlight < c.window() && inFlight < len(c.sendQ) {
		n := len(c.sendQ) - inFlight
		if n > MSS {
			n = MSS
		}
		if inFlight+n > c.window() {
			n = c.window() - inFlight
		}
		if n <= 0 {
			break
		}
		seg := c.sendQ[inFlight : inFlight+n]
		flags := uint8(netpkt.TCPAck)
		if inFlight+n == len(c.sendQ) {
			flags |= netpkt.TCPPsh
		}
		c.sendSegment(flags, c.sndNxt, seg)
		if !c.sampleValid {
			c.sampleSeq = c.sndNxt + uint32(n)
			c.sampleTime = c.stack.eng.Now()
			c.sampleValid = true
		}
		c.sndNxt += uint32(n)
		if seqLT(c.sndMax, c.sndNxt) {
			c.sndMax = c.sndNxt
		}
		inFlight += n
	}
	if c.finQueued && !c.finSent && inFlight == len(c.sendQ) {
		c.finSeq = c.sndNxt
		c.sendSegment(netpkt.TCPFin|netpkt.TCPAck, c.sndNxt, nil)
		c.sndNxt++
		if seqLT(c.sndMax, c.sndNxt) {
			c.sndMax = c.sndNxt
		}
		c.finSent = true
	}
	if c.sndNxt != c.sndUna {
		c.armRTO()
	}
}

func (c *Conn) sendSegment(flags uint8, seq uint32, payload []byte) {
	h := netpkt.TCPHeader{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  c.advertWindow(),
	}
	s := c.stack
	b := s.l4(netpkt.TCPHeaderLen + len(payload))
	h.HeaderInto(b)
	copy(b[netpkt.TCPHeaderLen:], payload)
	s.sendIP(netpkt.ProtoTCP, c.key.remote, b)
}

func (c *Conn) advertWindow() uint16 {
	w := c.stack.TCPWindow
	if w > 0xffff {
		w = 0xffff
	}
	return uint16(w)
}

func (c *Conn) armRTO() {
	if c.rtoArmed || c.state == stateClosed {
		return
	}
	c.rtoArmed = true
	c.stack.eng.After(c.rto(), func() {
		c.rtoArmed = false
		if c.state == stateClosed {
			return
		}
		if c.sndNxt == c.sndUna && !(c.finSent && !c.finAcked) && c.state != stateSynSent {
			return // everything acked; timer expires idle
		}
		// Go-back-N: rewind and resend from the window start with the
		// congestion window collapsed so the head segment gets through.
		c.retransmits++
		c.rtoRetrans++
		c.rtoBackoff++ // exponential backoff until a fresh sample arrives
		c.sampleValid = false
		if c.state == stateSynSent {
			c.sendSegment(netpkt.TCPSyn, c.iss, nil)
		} else {
			c.onLoss(true)
			c.sndNxt = c.sndUna
			c.finSent = false
			c.pump()
		}
		c.armRTO()
	})
}

func (s *Stack) handleTCP(h *netpkt.IPv4Header, body []byte) {
	t, payload, ok := netpkt.DecodeTCP(body)
	if !ok {
		return
	}
	key := connKey{remote: h.Src, remotePort: t.SrcPort, localPort: t.DstPort}
	c := s.conns[key]

	if c == nil {
		if t.Flags&netpkt.TCPSyn != 0 && t.Flags&netpkt.TCPAck == 0 {
			s.acceptSyn(key, &t)
			return
		}
		if t.Flags&netpkt.TCPRst == 0 {
			s.sendRST(key, &t)
		}
		return
	}
	c.handleSegment(&t, payload)
}

func (s *Stack) acceptSyn(key connKey, t *netpkt.TCPHeader) {
	accept := s.listeners[key.localPort]
	if accept == nil {
		s.sendRST(key, t)
		return
	}
	c := &Conn{
		stack: s, key: key, state: stateSynRcvd,
		iss:      uint32(s.rng.Uint64()),
		peerWnd:  int(t.Window),
		cwnd:     10 * MSS,
		ssthresh: 1 << 30,
		rcvNxt:   t.Seq + 1,
	}
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.sndMax = c.sndNxt
	s.conns[key] = c
	c.acceptCB = accept
	c.sendSegment(netpkt.TCPSyn|netpkt.TCPAck, c.iss, nil)
	c.armRTO()
}

func (s *Stack) sendRST(key connKey, t *netpkt.TCPHeader) {
	h := netpkt.TCPHeader{
		SrcPort: key.localPort, DstPort: key.remotePort,
		Seq: t.Ack, Ack: t.Seq + 1, Flags: netpkt.TCPRst | netpkt.TCPAck,
	}
	b := s.l4(netpkt.TCPHeaderLen)
	h.HeaderInto(b)
	s.sendIP(netpkt.ProtoTCP, key.remote, b)
}

func (c *Conn) handleSegment(t *netpkt.TCPHeader, payload []byte) {
	s := c.stack
	if t.Flags&netpkt.TCPRst != 0 {
		c.teardown(fmt.Errorf("netstack: connection reset by %s", c.key.remote))
		return
	}
	c.peerWnd = int(t.Window)

	switch c.state {
	case stateSynSent:
		if t.Flags&(netpkt.TCPSyn|netpkt.TCPAck) == netpkt.TCPSyn|netpkt.TCPAck && t.Ack == c.iss+1 {
			c.state = stateEstablished
			c.sndUna = t.Ack
			c.rcvNxt = t.Seq + 1
			c.sendAckNow()
			if c.dialCB != nil {
				cb := c.dialCB
				c.dialCB = nil
				cb(c, nil)
			}
			c.pump()
		}
		return
	case stateSynRcvd:
		if t.Flags&netpkt.TCPAck != 0 && t.Ack == c.iss+1 {
			c.state = stateEstablished
			c.sndUna = t.Ack
			if c.acceptCB != nil {
				cb := c.acceptCB
				c.acceptCB = nil
				cb(c)
			}
			// fall through: the ACK may carry data
		} else {
			return
		}
	}

	// ACK processing.
	if t.Flags&netpkt.TCPAck != 0 {
		c.processAck(t.Ack)
	}

	// Data processing (in-order only; out-of-order triggers dup ACK).
	if len(payload) > 0 {
		switch {
		case t.Seq == c.rcvNxt:
			c.rcvNxt += uint32(len(payload))
			c.bytesRecv += uint64(len(payload))
			s.cpus.Charge(s.costs.Syscall + sim.Time(len(payload))*s.costs.PerKB/1024)
			if c.onData != nil {
				c.onData(payload)
			}
			c.scheduleAck(t.Flags&netpkt.TCPPsh != 0)
		case seqLT(t.Seq, c.rcvNxt):
			c.sendAckNow() // duplicate data; re-ack
		default:
			c.sendAckNow() // hole; dup ACK asks for retransmit
		}
	}

	// FIN processing (only when in order).
	if t.Flags&netpkt.TCPFin != 0 && t.Seq+uint32(len(payload)) == c.rcvNxt {
		c.rcvNxt++
		c.peerFin = true
		c.sendAckNow()
		c.teardown(nil)
	}
}

func (c *Conn) processAck(ack uint32) {
	// Validate against the highest sequence ever sent: after a go-back-N
	// rewind, ACKs for pre-rewind data are still legitimate and must
	// advance the window (otherwise a delayed ACK deadlocks the sender).
	if seqLT(c.sndUna, ack) && seqLE(ack, c.sndMax) {
		advanced := ack - c.sndUna
		dataAcked := advanced
		if c.finSent && ack == c.finSeq+1 {
			c.finAcked = true
			dataAcked--
		}
		if int(dataAcked) > len(c.sendQ) {
			dataAcked = uint32(len(c.sendQ))
		}
		c.sendQ = c.sendQ[dataAcked:]
		c.sndUna = ack
		if seqLT(c.sndNxt, ack) {
			c.sndNxt = ack // the rewound send pointer cannot trail sndUna
		}
		if c.sampleValid && !seqLT(ack, c.sampleSeq) {
			c.sampleRTT(c.stack.eng.Now() - c.sampleTime)
			c.sampleValid = false
			c.rtoBackoff = 0
		}
		c.dupAcks = 0
		c.lastAck = ack
		c.onAckProgress(int(dataAcked))
		c.pump()
		if c.finSent && c.finAcked && c.peerFin {
			c.teardown(nil)
		}
		return
	}
	if ack == c.lastAck && c.sndNxt != c.sndUna {
		c.dupAcks++
		if c.dupAcks == 3 { // fast retransmit
			c.dupAcks = 0
			c.retransmits++
			c.fastRetrans++
			c.sampleValid = false // Karn: the timed segment is ambiguous now
			c.onLoss(false)
			c.sndNxt = c.sndUna
			c.finSent = false
			c.pump()
		}
	}
}

func (c *Conn) scheduleAck(push bool) {
	c.ackPending++
	if push || c.ackPending >= 2 {
		c.sendAckNow()
		return
	}
	// Delayed ACK: one timer per connection (as in real TCP — multiple
	// stale timers would emit duplicate ACKs and trigger spurious fast
	// retransmits at the peer).
	if c.ackTimerOn {
		return
	}
	c.ackTimerOn = true
	c.stack.eng.After(delayedAckTimeout, func() {
		c.ackTimerOn = false
		if c.ackPending > 0 && c.state != stateClosed {
			c.sendAckNow()
		}
	})
}

func (c *Conn) sendAckNow() {
	c.ackPending = 0
	c.sendSegment(netpkt.TCPAck, c.sndNxt, nil)
}

func (c *Conn) teardown(err error) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	delete(c.stack.conns, c.key)
	if c.onClose != nil {
		fn := c.onClose
		c.onClose = nil
		fn(err)
	}
	if c.dialCB != nil {
		cb := c.dialCB
		c.dialCB = nil
		cb(nil, err)
	}
}

// DebugConns renders each live connection's sender/receiver state; used
// by tests to diagnose stalls.
func (s *Stack) DebugConns() []string {
	var out []string
	for k, c := range s.conns {
		out = append(out, fmt.Sprintf(
			"%s: lport=%d rport=%d state=%d inflight=%d sendQ=%d finQ=%v finSent=%v finAcked=%v peerFin=%v rto=%v retrans=%d",
			k.remote, k.localPort, k.remotePort, c.state,
			int(c.sndNxt-c.sndUna), len(c.sendQ), c.finQueued, c.finSent,
			c.finAcked, c.peerFin, c.rtoArmed, c.retransmits))
	}
	return out
}

// TotalRetransmits sums retransmissions across live connections (stale
// closed connections are not counted).
func (s *Stack) TotalRetransmits() uint64 {
	var total uint64
	for _, c := range s.conns {
		total += c.retransmits
	}
	return total
}

// RetransBreakdown returns (fast, rto) retransmission counts.
func (s *Stack) RetransBreakdown() (fast, rto uint64) {
	for _, c := range s.conns {
		fast += c.fastRetrans
		rto += c.rtoRetrans
	}
	return
}
