package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"kite/internal/lint/analysis"
)

// Poolref proves the framepool/blkpool ownership discipline that the
// zero-copy pipeline (PRs 2–4) depends on: every buffer obtained from a
// pool Get must, on every control-flow path, end in exactly one ownership
// transfer — a Release back to the pool, or an escape that hands the
// reference to someone else (passed to a function, stored, returned,
// Retained). A path that drops the last reference leaks the frame forever
// (the pools never garbage-collect); a second Release corrupts the
// free list and resurfaces as cross-flow data corruption.
//
// The analysis is path-sensitive over the AST, built on the shared flow
// engine (flow.go): each acquisition site is abstract-interpreted through
// the enclosing function with a small state set {owned, released,
// escaped}. Branches fork the set, merges union it, loops run to a
// two-iteration fixpoint. Functions using goto or labeled branches are
// skipped (none exist in this module). Aliasing is handled conservatively:
// copying the buffer into another variable counts as an escape and ends
// tracking.
var Poolref = &analysis.Analyzer{
	Name: "poolref",
	Doc:  "pool Get results must be released exactly once or handed off on every path",
	Run:  runPoolref,
}

// poolGetFuncs are the acquisition points that return an owned *Buf.
var poolGetFuncs = map[string]bool{
	"(*kite/internal/framepool.Pool).Get":  true,
	"(*kite/internal/framepool.Pool).From": true,
	"(*kite/internal/framepool.Arena).Get": true,
	"(*kite/internal/blkpool.Pool).Get":    true,
	"(*kite/internal/blkpool.Arena).Get":   true,
}

func runPoolref(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolOwnership(pass, fd.Body)
		}
	}
	return nil
}

// Ownership states, used as bits in a set.
const (
	stNone     = 1 << iota // before the acquisition site executes
	stOwned                // holding the sole reference
	stReleased             // given back to the pool
	stEscaped              // handed off; no longer our responsibility
)

// acquisition is one tracked `b := pool.Get(...)` site.
type acquisition struct {
	site *ast.AssignStmt
	obj  types.Object // the variable bound to the result
	get  *ast.CallExpr
}

func checkPoolOwnership(pass *analysis.Pass, body *ast.BlockStmt) {
	if hasJumps(body) {
		return
	}
	info := pass.Pkg.Info
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return true
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || !poolGetFuncs[fn.FullName()] {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			acqs = append(acqs, acquisition{site: s, obj: obj, get: call})
		}
		return true
	})
	for _, a := range acqs {
		w := &ownerWalk{pass: pass, info: info, acq: a}
		(&flowExec{client: w}).run(body, stNone)
	}
}

// ownerWalk interprets one function body for one acquisition site; it is
// the poolref flowClient.
type ownerWalk struct {
	pass *analysis.Pass
	info *types.Info
	acq  acquisition

	leaked  bool // leak reported (once per acquisition)
	doubled bool // double-release reported (once per acquisition)
}

// exit checks a function-exit state set (a return, or falling off the
// end of the body).
func (w *ownerWalk) exit(states int, pos token.Pos) {
	if states&stOwned != 0 && !w.leaked {
		w.leaked = true
		w.pass.Reportf(w.acq.get.Pos(),
			"poolref: buffer acquired here is not released or handed off on every path (leak at %s)",
			w.pass.Module.Fset.Position(pos))
	}
}

func (w *ownerWalk) release(states int, pos token.Pos) int {
	if states&stReleased != 0 && !w.doubled {
		w.doubled = true
		w.pass.Reportf(pos, "poolref: buffer may already be released when Release is called here (double release)")
	}
	out := states &^ stOwned &^ stReleased
	if states&(stOwned|stReleased) != 0 {
		out |= stReleased
	}
	return out
}

// stmt handles the statements with ownership-specific semantics: the
// tracked acquisition, reassignment of the tracked variable, and deferred
// Release.
func (w *ownerWalk) stmt(s ast.Stmt, in int) (int, bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		if st == w.acq.site {
			// The tracked Get executes: every surviving path now owns
			// the buffer. (Re-entry from an enclosing loop re-acquires;
			// an Owned state surviving to here was already reported at
			// the loop's back edge via the fixpoint exit check.)
			return stOwned, true
		}
		in = w.scan(st, in)
		// Reassigning the tracked variable ends tracking (aliasing).
		for _, l := range st.Lhs {
			if id, ok := l.(*ast.Ident); ok && w.isTracked(id) {
				return stEscaped, true
			}
		}
		return in, true
	case *ast.DeferStmt:
		// A deferred Release runs on every subsequent exit path, so model
		// it as an immediate release: later returns see Released (no
		// leak), and a later explicit Release is a genuine double free.
		if recvIdent(st.Call) != nil && w.isTracked(recvIdent(st.Call)) {
			if name := methodName(st.Call); name == "Release" {
				return w.release(in, st.Pos()), true
			}
		}
		return w.scan(st, in), true
	}
	return in, false
}

// scan processes every use of the tracked variable in a statement that has
// no interesting control flow of its own.
func (w *ownerWalk) scan(n ast.Node, in int) int {
	if n == nil {
		return in
	}
	out := in
	handled := map[*ast.Ident]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			// Capture by a closure escapes the buffer.
			if usesObj(e.Body, w.info, w.acq.obj) {
				out = stEscaped
			}
			return false
		case *ast.CallExpr:
			if id := recvIdent(e); id != nil && w.isTracked(id) {
				handled[id] = true
				switch methodName(e) {
				case "Release":
					out = w.release(out, e.Pos())
				case "Retain":
					out = stEscaped
				}
			}
		case *ast.SelectorExpr:
			// Field reads / other method receivers: not a transfer.
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && w.isTracked(id) {
				handled[id] = true
			}
		case *ast.BinaryExpr:
			// Comparisons (b == nil) are not transfers.
			for _, side := range []ast.Expr{e.X, e.Y} {
				if id, ok := ast.Unparen(side).(*ast.Ident); ok && w.isTracked(id) {
					handled[id] = true
				}
			}
		case *ast.Ident:
			if w.isTracked(e) && !handled[e] {
				// Any other use — argument, store, return value, send,
				// composite literal, &b — hands the reference off.
				out = stEscaped
			}
		}
		return true
	})
	return out
}

func (w *ownerWalk) isTracked(id *ast.Ident) bool {
	return w.info.Uses[id] == w.acq.obj || w.info.Defs[id] == w.acq.obj
}

// recvIdent returns the receiver identifier of a method call `id.M(...)`,
// or nil.
func recvIdent(call *ast.CallExpr) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return id
}

// methodName returns the selector name of a method call, or "".
func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// usesObj reports whether any identifier under n resolves to obj.
func usesObj(n ast.Node, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}
