GO ?= go

.PHONY: verify build test race vet bench

# verify is the tree-must-be-green gate: vet, build everything, then the
# full test suite under the race detector (which also exercises the
# parallel experiment runner's determinism tests).
verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
