// Package fsim is the extent-based filesystem the storage macrobenchmarks
// run on inside DomU: files map to extents on the paravirtual disk, data
// moves through the bufpool page cache, and the operation mix of
// filebench/sysbench (create, open, read, write, append, stat, delete)
// is supported. Metadata lives in memory — the experiments measure the
// data path through blkfront/blkback, which is fully real; a journaled
// on-disk metadata format would only add noise (documented in DESIGN.md).
package fsim

import (
	"fmt"
	"sort"

	"kite/internal/bufpool"
	"kite/internal/sim"
)

// Grain is the extent allocation granularity.
const Grain = 64 << 10

// extent is a contiguous byte range on the disk.
type extent struct {
	off, len int64
}

// allocator hands out disk extents first-fit with coalescing free.
type allocator struct {
	free []extent // sorted by offset
}

func newAllocator(total int64) *allocator {
	return &allocator{free: []extent{{0, total}}}
}

// alloc returns a contiguous range of n bytes, preferring one adjacent to
// hint (so growing files stay sequential).
func (a *allocator) alloc(n, hint int64) (int64, error) {
	// Try extension at hint first.
	if hint > 0 {
		for i, e := range a.free {
			if e.off == hint && e.len >= n {
				a.take(i, n)
				return hint, nil
			}
		}
	}
	for i, e := range a.free {
		if e.len >= n {
			off := e.off
			a.take(i, n)
			return off, nil
		}
	}
	return 0, fmt.Errorf("fsim: no space for %d bytes", n)
}

func (a *allocator) take(i int, n int64) {
	a.free[i].off += n
	a.free[i].len -= n
	if a.free[i].len == 0 {
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// release returns a range, coalescing with neighbours.
func (a *allocator) release(off, n int64) {
	a.free = append(a.free, extent{off, n})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].off < a.free[j].off })
	out := a.free[:1]
	for _, e := range a.free[1:] {
		last := &out[len(out)-1]
		if last.off+last.len == e.off {
			last.len += e.len
		} else {
			out = append(out, e)
		}
	}
	a.free = out
}

func (a *allocator) freeBytes() int64 {
	var total int64
	for _, e := range a.free {
		total += e.len
	}
	return total
}

// File is one file's metadata.
type File struct {
	name    string
	size    int64
	cap     int64
	extents []extent
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file's logical size.
func (f *File) Size() int64 { return f.size }

// Stats counts filesystem operations.
type Stats struct {
	Creates, Deletes, Opens, Closes uint64
	Reads, Writes, Appends, Stats   uint64
	BytesRead, BytesWritten         uint64
}

// FS is one mounted filesystem.
type FS struct {
	eng   *sim.Engine
	pool  *bufpool.Pool
	cpus  *sim.CPUPool
	costs Costs

	files map[string]*File
	alloc *allocator
	stats Stats
}

// Costs models the filesystem's software path (namei, extent lookup).
type Costs struct {
	PerOp sim.Time // metadata/op overhead
}

// DefaultCosts returns the DomU ext4-ish cost profile.
func DefaultCosts() Costs { return Costs{PerOp: 1500 * sim.Nanosecond} }

// New mounts a filesystem over a bufpool-backed disk.
func New(eng *sim.Engine, pool *bufpool.Pool, cpus *sim.CPUPool, costs Costs) *FS {
	return &FS{
		eng: eng, pool: pool, cpus: cpus, costs: costs,
		files: make(map[string]*File),
		alloc: newAllocator(pool.SizeBytes()),
	}
}

// Stats returns a snapshot of the counters.
func (fs *FS) Stats() Stats { return fs.stats }

// FreeBytes returns unallocated disk space.
func (fs *FS) FreeBytes() int64 { return fs.alloc.freeBytes() }

func (fs *FS) charge() {
	if fs.cpus != nil {
		fs.cpus.Charge(fs.costs.PerOp)
	}
}

// Create makes an empty file.
func (fs *FS) Create(name string) (*File, error) {
	fs.charge()
	fs.stats.Creates++
	if _, exists := fs.files[name]; exists {
		return nil, fmt.Errorf("fsim: %s exists", name)
	}
	f := &File{name: name}
	fs.files[name] = f
	return f, nil
}

// Open looks a file up.
func (fs *FS) Open(name string) (*File, error) {
	fs.charge()
	fs.stats.Opens++
	f := fs.files[name]
	if f == nil {
		return nil, fmt.Errorf("fsim: %s does not exist", name)
	}
	return f, nil
}

// Close releases a handle (bookkeeping only; kept for workload fidelity).
func (fs *FS) Close(f *File) {
	fs.charge()
	fs.stats.Closes++
}

// Stat returns a file's size.
func (fs *FS) Stat(name string) (int64, bool) {
	fs.charge()
	fs.stats.Stats++
	f := fs.files[name]
	if f == nil {
		return 0, false
	}
	return f.size, true
}

// List returns all file names (sorted).
func (fs *FS) List() []string {
	fs.charge()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Delete removes a file and frees its extents.
func (fs *FS) Delete(name string) error {
	fs.charge()
	fs.stats.Deletes++
	f := fs.files[name]
	if f == nil {
		return fmt.Errorf("fsim: %s does not exist", name)
	}
	for _, e := range f.extents {
		fs.alloc.release(e.off, e.len)
	}
	delete(fs.files, name)
	return nil
}

// grow ensures capacity for size bytes.
func (fs *FS) grow(f *File, size int64) error {
	for f.cap < size {
		need := size - f.cap
		n := (need + Grain - 1) / Grain * Grain
		hint := int64(0)
		if len(f.extents) > 0 {
			last := f.extents[len(f.extents)-1]
			hint = last.off + last.len
		}
		off, err := fs.alloc.alloc(n, hint)
		if err != nil {
			return err
		}
		if len(f.extents) > 0 {
			last := &f.extents[len(f.extents)-1]
			if last.off+last.len == off {
				last.len += n
				f.cap += n
				continue
			}
		}
		f.extents = append(f.extents, extent{off, n})
		f.cap += n
	}
	return nil
}

// runs translates a file byte range into disk ranges.
func (f *File) runs(off, n int64) []extent {
	var out []extent
	pos := int64(0)
	for _, e := range f.extents {
		if n <= 0 {
			break
		}
		if off < pos+e.len {
			start := off - pos
			if start < 0 {
				start = 0
			}
			count := e.len - start
			if count > n {
				count = n
			}
			out = append(out, extent{e.off + start, count})
			off += count
			n -= count
		}
		pos += e.len
	}
	return out
}

// Write stores data at offset off, growing the file as needed.
func (fs *FS) Write(f *File, off int64, data []byte, cb func(err error)) {
	fs.charge()
	fs.stats.Writes++
	fs.stats.BytesWritten += uint64(len(data))
	end := off + int64(len(data))
	if err := fs.grow(f, end); err != nil {
		fs.eng.After(0, func() { cb(err) })
		return
	}
	if end > f.size {
		f.size = end
	}
	runs := f.runs(off, int64(len(data)))
	remaining := len(runs)
	if remaining == 0 {
		fs.eng.After(0, func() { cb(nil) })
		return
	}
	var failed error
	consumed := int64(0)
	for _, r := range runs {
		chunk := data[consumed : consumed+r.len]
		consumed += r.len
		fs.pool.Write(r.off, chunk, func(err error) {
			if err != nil && failed == nil {
				failed = err
			}
			remaining--
			if remaining == 0 {
				cb(failed)
			}
		})
	}
}

// Append adds data at the end of the file.
func (fs *FS) Append(f *File, data []byte, cb func(err error)) {
	fs.stats.Appends++
	fs.Write(f, f.size, data, cb)
}

// Read returns n bytes from offset off (short reads at EOF).
func (fs *FS) Read(f *File, off int64, n int, cb func(data []byte, err error)) {
	fs.charge()
	fs.stats.Reads++
	if off >= f.size {
		fs.eng.After(0, func() { cb(nil, nil) })
		return
	}
	if off+int64(n) > f.size {
		n = int(f.size - off)
	}
	fs.stats.BytesRead += uint64(n)
	runs := f.runs(off, int64(n))
	out := make([]byte, n)
	remaining := len(runs)
	if remaining == 0 {
		fs.eng.After(0, func() { cb(out, nil) })
		return
	}
	var failed error
	pos := int64(0)
	for _, r := range runs {
		dst := out[pos : pos+r.len]
		pos += r.len
		fs.pool.ReadInto(r.off, dst, func(err error) {
			if err != nil && failed == nil {
				failed = err
			}
			remaining--
			if remaining == 0 {
				if failed != nil {
					cb(nil, failed)
					return
				}
				cb(out, nil)
			}
		})
	}
}

// Sync flushes the cache and the device.
func (fs *FS) Sync(cb func(err error)) {
	fs.charge()
	fs.pool.Sync(cb)
}

// Pool exposes the underlying cache (benchmarks reset it between runs).
func (fs *FS) Pool() *bufpool.Pool { return fs.pool }
