package workload

import (
	"fmt"

	"kite/internal/blkfront"
	"kite/internal/fsim"
	"kite/internal/sim"
)

// DDResult reports one dd run (Fig 11).
type DDResult struct {
	Direction string // "read" or "write"
	Bytes     int64
	Duration  sim.Time
	MBps      float64
}

// ddQueueDepth models the buffer cache's write-behind/readahead: dd on a
// block device keeps several requests in flight, which is what lets both
// driver domains reach device speed (Fig 11's parity).
const ddQueueDepth = 4

// ddStream drives sequential I/O at ddQueueDepth outstanding requests.
func ddStream(disk *blkfront.Device, direction string, totalBytes int64, bs int,
	issue func(off int64, n int, cb func(error)), done func(DDResult)) {

	eng := disk.Engine()
	start := eng.Now()
	var nextOff int64
	var completed int64
	inflight := 0
	failed := false
	var pump func()
	pump = func() {
		for inflight < ddQueueDepth && nextOff < totalBytes && !failed {
			n := bs
			if int64(n) > totalBytes-nextOff {
				n = int(totalBytes - nextOff)
			}
			off := nextOff
			nextOff += int64(n)
			inflight++
			issue(off, n, func(err error) {
				inflight--
				if err != nil {
					failed = true
				} else {
					completed += int64(n)
				}
				if completed >= totalBytes || (failed && inflight == 0) {
					if failed {
						done(DDResult{Direction: direction})
						return
					}
					dur := eng.Now() - start
					done(DDResult{Direction: direction, Bytes: completed,
						Duration: dur, MBps: mbps(completed, dur)})
					return
				}
				pump()
			})
		}
	}
	pump()
}

// DDWrite streams totalBytes of zeroes to the raw vbd in bs-sized
// sequential operations (dd if=/dev/zero of=/dev/xvdb bs=..).
func DDWrite(disk *blkfront.Device, totalBytes int64, bs int, done func(DDResult)) {
	buf := make([]byte, bs)
	ddStream(disk, "write", totalBytes, bs, func(off int64, n int, cb func(error)) {
		disk.WriteSectors(off/512, buf[:n], cb)
	}, done)
}

// DDRead streams totalBytes from the raw vbd sequentially (dd
// if=/dev/xvdb of=/dev/null bs=..).
func DDRead(disk *blkfront.Device, totalBytes int64, bs int, done func(DDResult)) {
	ddStream(disk, "read", totalBytes, bs, func(off int64, n int, cb func(error)) {
		disk.ReadSectors(off/512, n, func(_ []byte, err error) { cb(err) })
	}, done)
}

func mbps(bytes int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(bytes) / dur.Seconds() / (1 << 20)
}

// FileIOConfig shapes a sysbench-fileio run (Fig 12): sysbench prepares
// `Files` files totalling TotalBytes, then performs random reads and
// writes in a 3:2 ratio with the given block size and concurrency.
type FileIOConfig struct {
	Files      int
	TotalBytes int64
	BlockSize  int
	Threads    int
	Duration   sim.Time
	Seed       uint64
}

// FileIOResult reports the run.
type FileIOResult struct {
	Threads    int
	BlockSize  int
	Reads      int
	Writes     int
	Bytes      int64
	MBps       float64
	AvgLatency sim.Time
}

// SysbenchFileIO prepares the files and runs the random rw mix.
func SysbenchFileIO(eng *sim.Engine, fs *fsim.FS, cfg FileIOConfig, done func(FileIOResult)) {
	fileSize := cfg.TotalBytes / int64(cfg.Files)
	fileSize -= fileSize % int64(cfg.BlockSize)
	if fileSize < int64(cfg.BlockSize) {
		fileSize = int64(cfg.BlockSize)
	}
	files := make([]*fsim.File, cfg.Files)

	// Prepare phase: create the files (sysbench prepare). Writing in
	// large chunks keeps setup fast; data content is irrelevant.
	prepChunk := 1 << 20
	if prepChunk > int(fileSize) {
		prepChunk = int(fileSize)
	}
	var prepFile func(i int)
	run := func() {
		start := eng.Now()
		reads, writes := 0, 0
		var bytesMoved int64
		var latSum sim.Time
		ops := 0
		finished := 0
		worker := func(idx int) {
			rng := sim.NewRand((cfg.Seed | 1) ^ uint64(idx)*0x9e37)
			var step func()
			writesSinceSync := 0
			step = func() {
				if eng.Now()-start >= cfg.Duration {
					finished++
					if finished == cfg.Threads {
						dur := eng.Now() - start
						res := FileIOResult{
							Threads: cfg.Threads, BlockSize: cfg.BlockSize,
							Reads: reads, Writes: writes, Bytes: bytesMoved,
							MBps: mbps(bytesMoved, dur),
						}
						if ops > 0 {
							res.AvgLatency = latSum / sim.Time(ops)
						}
						done(res)
					}
					return
				}
				f := files[rng.Intn(len(files))]
				maxOff := f.Size() - int64(cfg.BlockSize)
				if maxOff < 0 {
					maxOff = 0
				}
				off := rng.Int63n(maxOff/int64(cfg.BlockSize)+1) * int64(cfg.BlockSize)
				opStart := eng.Now()
				fin := func() {
					latSum += eng.Now() - opStart
					ops++
					bytesMoved += int64(cfg.BlockSize)
					step()
				}
				if rng.Intn(5) < 3 { // 3:2 read:write
					reads++
					fs.Read(f, off, cfg.BlockSize, func([]byte, error) { fin() })
				} else {
					writes++
					writesSinceSync++
					if writesSinceSync >= 100 {
						// sysbench's default --file-fsync-freq=100.
						writesSinceSync = 0
						fs.Write(f, off, make([]byte, cfg.BlockSize), func(error) {
							fs.Sync(func(error) { fin() })
						})
						return
					}
					fs.Write(f, off, make([]byte, cfg.BlockSize), func(error) { fin() })
				}
			}
			step()
		}
		for i := 0; i < cfg.Threads; i++ {
			worker(i)
		}
	}
	// Between prepare and run: sync dirty data, then flush the read
	// buffer (§5.4's drop_caches), so the run starts cold.
	startRun := func() {
		fs.Sync(func(error) {
			fs.Pool().DropCaches()
			run()
		})
	}
	prepFile = func(i int) {
		if i == cfg.Files {
			startRun()
			return
		}
		f, err := fs.Create(fmt.Sprintf("sbtest.%d", i))
		if err != nil {
			done(FileIOResult{})
			return
		}
		files[i] = f
		var off int64
		var fill func()
		fill = func() {
			if off >= fileSize {
				prepFile(i + 1)
				return
			}
			n := int64(prepChunk)
			if n > fileSize-off {
				n = fileSize - off
			}
			fs.Write(f, off, make([]byte, n), func(error) {
				off += n
				fill()
			})
		}
		fill()
	}
	prepFile(0)
}
