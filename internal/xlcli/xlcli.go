// Package xlcli implements the xl-flavoured scenario interpreter behind
// cmd/kitexl: commands mirroring the artifact appendix's workflow
// (§A.3/§A.4 — pci-assignable-add, create, list, destroy) plus probes
// (ping, ifconfig, brconfig, run). Lines starting with '#' are comments.
package xlcli

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kite/internal/core"
	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/xen"
)

// Interp executes scenario commands against one simulated testbed.
type Interp struct {
	tb       *core.Testbed
	nd       *core.NetworkDomain
	sd       *core.StorageDomain
	guests   map[string]*core.Guest
	assigned map[string]bool
	out      io.Writer
}

// New creates an interpreter writing command output to out.
func New(seed uint64, out io.Writer) *Interp {
	return &Interp{
		tb:       core.NewTestbed(seed),
		guests:   make(map[string]*core.Guest),
		assigned: make(map[string]bool),
		out:      out,
	}
}

// Testbed exposes the underlying testbed (tests peek at it).
func (st *Interp) Testbed() *core.Testbed { return st.tb }

// RunScript executes every line of a script, stopping at the first error.
func (st *Interp) RunScript(r io.Reader) error {
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := st.Exec(line); err != nil {
			return fmt.Errorf("line %d (%q): %w", lineNo, line, err)
		}
	}
	return scanner.Err()
}

// Exec runs one command line.
func (st *Interp) Exec(line string) error {
	fields := strings.Fields(line)
	opts := map[string]string{}
	var pos []string
	for _, f := range fields[1:] {
		if k, v, ok := strings.Cut(f, "="); ok {
			opts[k] = v
		} else {
			opts[f] = ""
			pos = append(pos, f)
		}
	}
	sys := st.tb.System
	switch fields[0] {
	case "pci-assignable-add":
		if len(pos) != 1 {
			return fmt.Errorf("usage: pci-assignable-add <bdf>")
		}
		st.assigned[pos[0]] = true
		fmt.Fprintf(st.out, "device %s made assignable\n", pos[0])
		return nil

	case "create":
		if len(pos) == 0 {
			return fmt.Errorf("create what?")
		}
		switch pos[0] {
		case "network":
			if !st.assigned[st.tb.ServerNIC.BDF()] {
				return fmt.Errorf("NIC %s not assignable (pci-assignable-add first)", st.tb.ServerNIC.BDF())
			}
			cfg := core.NetworkDomainConfig{Kind: parseKind(opts["kind"]), NIC: st.tb.ServerNIC}
			_, cfg.Boot = opts["boot"]
			if gw, ok := opts["nat"]; ok {
				ip, err := parseIP(gw)
				if err != nil {
					return err
				}
				cfg.NAT, cfg.GatewayIP = true, ip
			}
			nd, err := sys.CreateNetworkDomain(cfg)
			if err != nil {
				return err
			}
			st.nd = nd
			sys.RunReady(nd.Ready, 2_000_000)
			fmt.Fprintf(st.out, "network domain %s up (domid %d) at t=%.1fs\n",
				nd.Profile.Name, nd.Dom.ID, sys.Eng.Now().Seconds())
			return nil
		case "storage":
			if !st.assigned[st.tb.NVMe.BDF()] {
				return fmt.Errorf("NVMe %s not assignable", st.tb.NVMe.BDF())
			}
			cfg := core.StorageDomainConfig{Kind: parseKind(opts["kind"]), Device: st.tb.NVMe}
			_, cfg.Boot = opts["boot"]
			sd, err := sys.CreateStorageDomain(cfg)
			if err != nil {
				return err
			}
			st.sd = sd
			sys.RunReady(sd.Ready, 2_000_000)
			fmt.Fprintf(st.out, "storage domain %s up (domid %d)\n", sd.Profile.Name, sd.Dom.ID)
			return nil
		case "guest":
			name := opts["name"]
			if name == "" {
				return fmt.Errorf("guest needs name=")
			}
			cfg := core.GuestConfig{Name: name, Seed: uint64(len(st.guests)) + 5}
			if _, ok := opts["net"]; ok {
				if st.nd == nil {
					return fmt.Errorf("no network domain yet")
				}
				cfg.Net = st.nd
				ip, err := parseIP(opts["ip"])
				if err != nil {
					return err
				}
				cfg.IP = ip
			}
			if mbStr, ok := opts["disk"]; ok {
				if st.sd == nil {
					return fmt.Errorf("no storage domain yet")
				}
				mb, err := strconv.Atoi(mbStr)
				if err != nil {
					return fmt.Errorf("bad disk size %q", mbStr)
				}
				cfg.Storage = st.sd
				cfg.DiskBytes = int64(mb) << 20
			}
			g, err := sys.CreateGuest(cfg)
			if err != nil {
				return err
			}
			if !sys.RunReady(g.Ready, 2_000_000) {
				return fmt.Errorf("guest %s devices never connected", name)
			}
			st.guests[name] = g
			fmt.Fprintf(st.out, "guest %s up (domid %d)\n", name, g.Dom.ID)
			return nil
		case "dhcpvm":
			if st.nd == nil {
				return fmt.Errorf("no network domain yet")
			}
			ip, err := parseIP(opts["ip"])
			if err != nil {
				return err
			}
			start, count, err := parsePool(opts["pool"])
			if err != nil {
				return err
			}
			vm, err := sys.CreateDHCPDaemonVM(st.nd, ip, start, count)
			if err != nil {
				return err
			}
			sys.RunReady(vm.Guest.Ready, 2_000_000)
			st.guests["dhcp-vm"] = vm.Guest
			fmt.Fprintf(st.out, "dhcp daemon VM up (domid %d), pool %v+%d\n", vm.Guest.Dom.ID, start, count)
			return nil
		}
		return fmt.Errorf("unknown create target %q", pos[0])

	case "ifconfig":
		if st.nd == nil {
			return fmt.Errorf("no network domain")
		}
		out, err := st.nd.Ifconfig(fields[1:]...)
		if err != nil {
			return err
		}
		fmt.Fprint(st.out, out)
		return nil

	case "brconfig":
		if st.nd == nil {
			return fmt.Errorf("no network domain")
		}
		out, err := st.nd.Brconfig(fields[1:]...)
		if err != nil {
			return err
		}
		fmt.Fprint(st.out, out)
		return nil

	case "ping":
		if len(pos) != 1 {
			return fmt.Errorf("usage: ping <ip>")
		}
		ip, err := parseIP(pos[0])
		if err != nil {
			return err
		}
		var rtt sim.Time = -1
		st.tb.Client.Stack.Ping(ip, 56, func(d sim.Time) { rtt = d })
		if !sys.RunReady(func() bool { return rtt >= 0 }, 2_000_000) {
			return fmt.Errorf("no reply from %v", ip)
		}
		fmt.Fprintf(st.out, "64 bytes from %v: time=%.3f ms\n", ip, rtt.Millis())
		return nil

	case "run":
		if len(pos) != 1 {
			return fmt.Errorf("usage: run <ms>")
		}
		ms, err := strconv.Atoi(pos[0])
		if err != nil {
			return err
		}
		sys.Eng.RunFor(sim.Time(ms) * sim.Millisecond)
		fmt.Fprintf(st.out, "t=%.3fs\n", sys.Eng.Now().Seconds())
		return nil

	case "list":
		fmt.Fprintf(st.out, "%-16s %-5s %-6s %-8s\n", "Name", "ID", "VCPUs", "Mem(MB)")
		for _, d := range sortedDomains(sys) {
			fmt.Fprintf(st.out, "%-16s %-5d %-6d %-8d\n", d.Name, d.ID, d.CPUs.Len(),
				int64(d.Arena.Capacity())*4096>>20)
		}
		return nil

	case "destroy":
		if len(pos) != 1 {
			return fmt.Errorf("usage: destroy <name>")
		}
		for _, d := range sys.HV.Domains() {
			if d.Name == pos[0] {
				if err := sys.HV.DestroyDomain(d.ID); err != nil {
					return err
				}
				sys.Eng.RunFor(sim.Millisecond)
				fmt.Fprintf(st.out, "destroyed %s\n", pos[0])
				return nil
			}
		}
		return fmt.Errorf("no domain named %q", pos[0])
	}
	return fmt.Errorf("unknown command %q", fields[0])
}

func parseKind(s string) core.DriverKind {
	if s == "linux" {
		return core.KindLinux
	}
	return core.KindKite
}

func parseIP(s string) (netpkt.IP, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return netpkt.IP{}, fmt.Errorf("bad IP %q", s)
	}
	return netpkt.IPv4(byte(a), byte(b), byte(c), byte(d)), nil
}

func parsePool(s string) (netpkt.IP, int, error) {
	ipStr, countStr, ok := strings.Cut(s, ":")
	if !ok {
		return netpkt.IP{}, 0, fmt.Errorf("pool wants <start>:<count>")
	}
	ip, err := parseIP(ipStr)
	if err != nil {
		return netpkt.IP{}, 0, err
	}
	count, err := strconv.Atoi(countStr)
	if err != nil {
		return netpkt.IP{}, 0, err
	}
	return ip, count, nil
}

func sortedDomains(sys *core.System) []*xen.Domain {
	domains := sys.HV.Domains()
	for i := 0; i < len(domains); i++ {
		for j := i + 1; j < len(domains); j++ {
			if domains[j].ID < domains[i].ID {
				domains[i], domains[j] = domains[j], domains[i]
			}
		}
	}
	return domains
}
