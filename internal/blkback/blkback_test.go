package blkback

import (
	"bytes"
	"testing"

	"kite/internal/blkfront"
	"kite/internal/blkif"
	"kite/internal/nvme"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

type rig struct {
	eng   *sim.Engine
	hv    *xen.Hypervisor
	bus   *xenbus.Bus
	reg   *blkif.Registry
	dd    *xen.Domain
	guest *xen.Domain
	dev   *nvme.Device
	drv   *Driver
	front *blkfront.Device
}

// buildRig assembles a storage driver domain exporting a 1 GiB vbd window
// to one guest.
func buildRig(t *testing.T, costs Costs) *rig {
	t.Helper()
	eng := sim.NewEngine()
	hv := xen.New(eng)
	hv.CreateDomain(xen.DomainConfig{Name: "dom0", VCPUs: 2, MemBytes: 256 << 20, Privileged: true,
		IRQLatency: 6 * sim.Microsecond})
	store := xenstore.New(eng)
	bus := xenbus.New(store)
	reg := blkif.NewRegistry()

	dd := hv.CreateDomain(xen.DomainConfig{Name: "blk-dd", VCPUs: 1, MemBytes: 64 << 20,
		IRQLatency: 3 * sim.Microsecond})
	guest := hv.CreateDomain(xen.DomainConfig{Name: "domU", VCPUs: 4, MemBytes: 128 << 20,
		IRQLatency: 6 * sim.Microsecond})

	dev := nvme.New(eng, nvme.Default970EvoPlus(), "04:00.0")
	if err := hv.AssignPCI("04:00.0", dd.ID); err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(eng, dd, bus, reg, dev, costs)

	// Toolstack: add the vbd with a 1 GiB window starting at sector 2048.
	bus.AddDevice(xenbus.DeviceSpec{
		Type: "vbd", FrontDom: xenbus.DomID(guest.ID), BackDom: xenbus.DomID(dd.ID),
		DevID: 51712, BackExtra: map[string]string{"params": "2048:2097152"},
	})
	front := blkfront.New(eng, blkfront.Config{
		Dom: guest, Bus: bus, Registry: reg, DevID: 51712, BackDom: dd.ID,
	})
	r := &rig{eng: eng, hv: hv, bus: bus, reg: reg, dd: dd, guest: guest,
		dev: dev, drv: drv, front: front}
	if !eng.RunCapped(100000) {
		t.Fatal("handshake livelocked")
	}
	return r
}

func TestHandshakeAndNegotiation(t *testing.T) {
	r := buildRig(t, KiteCosts())
	if !r.front.Ready() {
		t.Fatal("frontend not connected")
	}
	if r.front.SectorCount() != 2097152 {
		t.Fatalf("vbd sectors = %d", r.front.SectorCount())
	}
	if !r.front.Persistent() {
		t.Fatal("persistent grants not negotiated")
	}
	if r.front.MaxIndirect() != blkif.MaxSegsIndirect {
		t.Fatalf("indirect limit = %d", r.front.MaxIndirect())
	}
	if len(r.drv.Instances()) != 1 {
		t.Fatalf("instances = %d", len(r.drv.Instances()))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := buildRig(t, KiteCosts())
	data := make([]byte, 16384)
	sim.NewRand(42).Bytes(data)
	wrote := false
	var got []byte
	r.front.WriteSectors(100, data, func(err error) {
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		wrote = true
		r.front.ReadSectors(100, len(data), func(b []byte, err error) {
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			got = append([]byte(nil), b...) // b is pooled, valid only in the callback
		})
	})
	if !r.eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	if !wrote || !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
	// Window translation: the bytes must live at base+100 on the device.
	// (Peek via a raw device read.)
	var raw []byte
	r.dev.Read(2048+100, len(data), func(b []byte, err error) { raw = b })
	r.eng.RunCapped(100000)
	if !bytes.Equal(raw, data) {
		t.Fatal("vbd window translation wrong")
	}
}

func TestLargeIOUsesIndirect(t *testing.T) {
	r := buildRig(t, KiteCosts())
	data := make([]byte, 128<<10) // 32 segments: indirect territory
	sim.NewRand(7).Bytes(data)
	var got []byte
	r.front.WriteSectors(0, data, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		r.front.ReadSectors(0, len(data), func(b []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = append([]byte(nil), b...) // b is pooled, valid only in the callback
		})
	})
	if !r.eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large i/o corrupted")
	}
	st := r.front.Stats()
	if st.IndirectRequests < 2 {
		t.Fatalf("expected indirect requests, got %d", st.IndirectRequests)
	}
	// 128 KiB fits one indirect request each way; without indirect it
	// would need 3 ring requests per direction.
	if st.RingRequests != 2 {
		t.Fatalf("ring requests = %d, want 2 (one indirect per direction)", st.RingRequests)
	}
}

func TestNoIndirectFallsBackToSplit(t *testing.T) {
	costs := KiteCosts()
	costs.Indirect = false
	r := buildRig(t, costs)
	if r.front.MaxIndirect() != 0 {
		t.Fatal("indirect advertised despite being disabled")
	}
	data := make([]byte, 128<<10)
	var done bool
	r.front.WriteSectors(0, data, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	if !r.eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	if !done {
		t.Fatal("write never completed")
	}
	// 128 KiB / 44 KiB -> 3 direct requests.
	if st := r.front.Stats(); st.RingRequests != 3 || st.IndirectRequests != 0 {
		t.Fatalf("requests = %+v, want 3 direct", st)
	}
}

func TestPersistentGrantsReduceMapTraffic(t *testing.T) {
	run := func(persistent bool) (maps uint64, hits uint64) {
		costs := KiteCosts()
		costs.Persistent = persistent
		r := buildRig(t, costs)
		data := make([]byte, 44<<10)
		round := 0
		var loop func()
		loop = func() {
			r.front.WriteSectors(0, data, func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				round++
				if round < 20 {
					loop()
				}
			})
		}
		r.hv.ResetStats()
		loop()
		if !r.eng.RunCapped(2_000_000) {
			t.Fatal("livelock")
		}
		return r.hv.Stats().GrantMaps, r.drv.Instances()[0].Stats().PersistentHits
	}
	mapsOn, hitsOn := run(true)
	mapsOff, hitsOff := run(false)
	if hitsOn == 0 || hitsOff != 0 {
		t.Fatalf("persistent hits on=%d off=%d", hitsOn, hitsOff)
	}
	if mapsOn*4 > mapsOff {
		t.Fatalf("persistent grants saved too little: maps on=%d off=%d", mapsOn, mapsOff)
	}
}

func TestBatchingMergesConsecutiveRequests(t *testing.T) {
	run := func(batch bool) (deviceOps, merged uint64) {
		costs := KiteCosts()
		costs.Batch = batch
		costs.Indirect = false // force multiple 44 KiB requests
		r := buildRig(t, costs)
		data := make([]byte, 176<<10) // 4 consecutive direct requests
		done := false
		r.front.WriteSectors(0, data, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
		if !r.eng.RunCapped(2_000_000) {
			t.Fatal("livelock")
		}
		if !done {
			t.Fatal("write never completed")
		}
		st := r.drv.Instances()[0].Stats()
		return st.DeviceOps, st.MergedRequests
	}
	opsOn, mergedOn := run(true)
	opsOff, mergedOff := run(false)
	if mergedOn == 0 || mergedOff != 0 {
		t.Fatalf("merged on=%d off=%d", mergedOn, mergedOff)
	}
	if opsOn >= opsOff {
		t.Fatalf("batching did not reduce device ops: on=%d off=%d", opsOn, opsOff)
	}
}

func TestFlushBarrier(t *testing.T) {
	r := buildRig(t, KiteCosts())
	flushed := false
	r.front.WriteSectors(0, make([]byte, 4096), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		r.front.Flush(func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			flushed = true
		})
	})
	if !r.eng.RunCapped(500000) {
		t.Fatal("livelock")
	}
	if !flushed {
		t.Fatal("flush never completed")
	}
	if r.dev.Stats().FlushOps != 1 {
		t.Fatal("flush not forwarded to device")
	}
}

func TestOutOfRangeIORejected(t *testing.T) {
	r := buildRig(t, KiteCosts())
	var gotErr error
	called := false
	r.front.ReadSectors(r.front.SectorCount()-1, 8192, func(_ []byte, err error) {
		called = true
		gotErr = err
	})
	if !r.eng.RunCapped(100000) {
		t.Fatal("livelock")
	}
	if !called || gotErr == nil {
		t.Fatal("out-of-range read not rejected")
	}
}

func TestManyOutstandingRequestsRespectRing(t *testing.T) {
	// Issue far more requests than ring slots; the frontend must queue and
	// everything must complete with data intact.
	r := buildRig(t, KiteCosts())
	const n = 100
	completed := 0
	payloads := make([][]byte, n)
	rng := sim.NewRand(13)
	for i := 0; i < n; i++ {
		payloads[i] = make([]byte, 4096)
		rng.Bytes(payloads[i])
		i := i
		r.front.WriteSectors(int64(i*8), payloads[i], func(err error) {
			if err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			completed++
		})
	}
	if !r.eng.RunCapped(5_000_000) {
		t.Fatal("livelock")
	}
	if completed != n {
		t.Fatalf("completed %d of %d writes", completed, n)
	}
	// Verify a few back.
	checked := 0
	for _, i := range []int{0, 37, 99} {
		i := i
		r.front.ReadSectors(int64(i*8), 4096, func(b []byte, err error) {
			if err != nil || !bytes.Equal(b, payloads[i]) {
				t.Fatalf("verify %d failed", i)
			}
			checked++
		})
	}
	r.eng.RunCapped(1_000_000)
	if checked != 3 {
		t.Fatal("verification reads incomplete")
	}
}

func TestRequestThreadWakes(t *testing.T) {
	r := buildRig(t, KiteCosts())
	done := false
	r.front.WriteSectors(0, make([]byte, 4096), func(error) { done = true })
	r.eng.RunCapped(500000)
	if !done {
		t.Fatal("write incomplete")
	}
	inst := r.drv.Instances()[0]
	if _, runs := inst.ThreadRuns(); runs == 0 {
		t.Fatal("request thread never ran")
	}
}

func TestFrontendCloseCleansUp(t *testing.T) {
	r := buildRig(t, KiteCosts())
	// Generate persistent mappings first.
	done := false
	r.front.WriteSectors(0, make([]byte, 44<<10), func(error) { done = true })
	r.eng.RunCapped(500000)
	if !done {
		t.Fatal("priming write incomplete")
	}
	fp := xenbus.FrontendPath(xenbus.DomID(r.guest.ID), "vbd", 51712)
	if err := r.bus.SwitchState(fp, xenbus.StateClosed); err != nil {
		t.Fatal(err)
	}
	if !r.eng.RunCapped(100000) {
		t.Fatal("teardown livelocked")
	}
	if len(r.drv.Instances()) != 0 {
		t.Fatal("instance survived frontend close")
	}
}

func TestBadParamsRejected(t *testing.T) {
	r := buildRig(t, KiteCosts())
	// Add a vbd whose window exceeds the device.
	r.bus.AddDevice(xenbus.DeviceSpec{
		Type: "vbd", FrontDom: xenbus.DomID(r.guest.ID), BackDom: xenbus.DomID(r.dd.ID),
		DevID: 51728, BackExtra: map[string]string{"params": "0:99999999999"},
	})
	if !r.eng.RunCapped(100000) {
		t.Fatal("livelock")
	}
	bp := xenbus.BackendPath(xenbus.DomID(r.dd.ID), "vbd", xenbus.DomID(r.guest.ID), 51728)
	if r.bus.State(bp) != xenbus.StateClosed {
		t.Fatalf("oversized vbd state = %v, want Closed", r.bus.State(bp))
	}
}
